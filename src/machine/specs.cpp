#include "machine/specs.h"

namespace hsw {

const UarchSpec& sandy_bridge_spec() {
  static const UarchSpec spec{
      .name = "Sandy Bridge",
      .decode_per_cycle = 4,
      .allocation_queue = 28,
      .execute_uops_per_cycle = 6,
      .retire_uops_per_cycle = 4,
      .scheduler_entries = 54,
      .rob_entries = 168,
      .int_registers = 160,
      .fp_registers = 144,
      .simd_isa = "AVX",
      .fpu_width = "2x 256 bit (1x add, 1x mul)",
      .flops_per_cycle_sp = 16,
      .flops_per_cycle_dp = 8,
      .load_buffers = 64,
      .store_buffers = 36,
      .l1_load_bytes_per_cycle = 16,
      .l1_store_bytes_per_cycle = 16,
      .l2_bytes_per_cycle = 32,
      .memory_channels = "4x DDR3-1600",
      .memory_bw_gbps = 51.2,
      .qpi_speed_gts = 8.0,
      .qpi_bw_gbps = 32.0,
  };
  return spec;
}

const UarchSpec& haswell_spec() {
  static const UarchSpec spec{
      .name = "Haswell",
      .decode_per_cycle = 4,
      .allocation_queue = 56,
      .execute_uops_per_cycle = 8,
      .retire_uops_per_cycle = 4,
      .scheduler_entries = 60,
      .rob_entries = 192,
      .int_registers = 168,
      .fp_registers = 168,
      .simd_isa = "AVX2",
      .fpu_width = "2x 256 bit FMA",
      .flops_per_cycle_sp = 32,
      .flops_per_cycle_dp = 16,
      .load_buffers = 72,
      .store_buffers = 42,
      .l1_load_bytes_per_cycle = 32,
      .l1_store_bytes_per_cycle = 32,
      .l2_bytes_per_cycle = 64,
      .memory_channels = "4x DDR4-2133",
      .memory_bw_gbps = 68.2,
      .qpi_speed_gts = 9.6,
      .qpi_bw_gbps = 38.4,
  };
  return spec;
}

const TestSystemSpec& test_system_spec() {
  static const TestSystemSpec spec{};
  return spec;
}

}  // namespace hsw
