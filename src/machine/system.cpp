#include "machine/system.h"

#include <sstream>

#include "obs/line_stats.h"
#include "util/units.h"

namespace hsw {
namespace {

TopologyConfig topo_config(const SystemConfig& c) {
  TopologyConfig t;
  t.sku = c.sku;
  t.sockets = c.sockets;
  t.snoop_mode = c.snoop_mode;
  return t;
}

ProtocolFeatures features_of(const SystemConfig& c) {
  ProtocolFeatures f = c.feature_override
                           ? *c.feature_override
                           : ProtocolFeatures::for_mode(c.snoop_mode);
  f.protocol = c.protocol;
  return f;
}

}  // namespace

SystemConfig SystemConfig::source_snoop() { return SystemConfig{}; }

SystemConfig SystemConfig::home_snoop() {
  SystemConfig c;
  c.snoop_mode = SnoopMode::kHomeSnoop;
  return c;
}

SystemConfig SystemConfig::cluster_on_die() {
  SystemConfig c;
  c.snoop_mode = SnoopMode::kCod;
  return c;
}

SystemConfig SystemConfig::for_mode(SnoopMode mode) {
  switch (mode) {
    case SnoopMode::kSourceSnoop: return source_snoop();
    case SnoopMode::kHomeSnoop: return home_snoop();
    case SnoopMode::kCod: return cluster_on_die();
  }
  return source_snoop();
}

std::optional<SnoopMode> parse_snoop_mode(std::string_view name) {
  if (name == "source") return SnoopMode::kSourceSnoop;
  if (name == "home") return SnoopMode::kHomeSnoop;
  if (name == "cod") return SnoopMode::kCod;
  return std::nullopt;
}

std::optional<Protocol> parse_protocol(std::string_view name) {
  if (name == "mesif") return Protocol::kMesif;
  if (name == "mesi") return Protocol::kMesi;
  if (name == "moesi") return Protocol::kMoesi;
  if (name == "dragon") return Protocol::kDragon;
  return std::nullopt;
}

std::optional<Mesif> parse_mesif(std::string_view name) {
  if (name == "M") return Mesif::kModified;
  if (name == "O") return Mesif::kOwned;
  if (name == "E") return Mesif::kExclusive;
  if (name == "S") return Mesif::kShared;
  if (name == "I") return Mesif::kInvalid;
  if (name == "F") return Mesif::kForward;
  return std::nullopt;
}

std::string SystemConfig::describe() const {
  std::ostringstream out;
  out << sockets << "x " << to_string(sku) << ", " << to_string(snoop_mode);
  // MESIF is the hardware protocol; only the what-if families are called out
  // (keeps the default description — and the goldens embedding it — stable).
  if (protocol != Protocol::kMesif) out << ", " << to_string(protocol);
  out << ", L3 " << format_bytes(geometry.l3_slice_bytes) << "/slice, "
      << timing.core_ghz << " GHz";
  return out.str();
}

System::System(const SystemConfig& config)
    : config_(config),
      state_(topo_config(config), config.timing, config.geometry,
             features_of(config)),
      engine_(state_) {}

void System::attach_metrics(metrics::MetricsRegistry& registry) {
  using metrics::MFamily;
  const int sockets = state_.topo.socket_count();
  const std::size_t qpi_links =
      sockets < 2 ? 1
                  : static_cast<std::size_t>(sockets) *
                        static_cast<std::size_t>(sockets - 1) / 2;
  registry.size_family(MFamily::kQpiLinkCrossings, qpi_links);
  registry.size_family(MFamily::kQpiLinkBytes, qpi_links);
  registry.size_family(MFamily::kImcChannelReadBytes, state_.channel_count());
  registry.size_family(MFamily::kImcChannelWriteBytes, state_.channel_count());
  const auto nodes = static_cast<std::size_t>(state_.topo.node_count());
  registry.size_family(MFamily::kRingStopCbo, nodes);
  registry.size_family(MFamily::kRingStopHa, nodes);
  state_.metrics = &registry;
}

void System::detach_metrics() {
  if (state_.metrics == nullptr) return;
  state_.update_structural_gauges(*state_.metrics);
  state_.metrics->take_final_sample();
  state_.metrics = nullptr;
}

void System::attach_linestats(obs::LineStatsRecorder& recorder) {
  state_.linestats = &recorder;
}

void System::detach_linestats() {
  if (state_.linestats == nullptr) return;
  state_.linestats->finalize();
  state_.linestats = nullptr;
}

std::uint64_t System::node_l3_bytes(int node) const {
  const NumaNode& n = state_.topo.node(node);
  return static_cast<std::uint64_t>(n.local_slices.size()) *
         config_.geometry.l3_slice_bytes;
}

double System::node_dram_bandwidth_gbps(int node) const {
  // DDR4-2133: 2133 MT/s * 8 B = 17.064 GB/s per channel.
  const NumaNode& n = state_.topo.node(node);
  const double channels = static_cast<double>(n.imcs.size()) *
                          config_.geometry.channels_per_imc;
  return channels * 17.064;
}

}  // namespace hsw
