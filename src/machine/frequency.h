// Frequency-variability models: AVX base frequency and uncore frequency
// scaling (paper §III-A, §V-B, §VII).
//
// The paper disables Turbo Boost and pins the cores to 2.5 GHz, yet still
// observes two hardware-controlled frequency effects it cannot disable:
//
//  * 256-bit (AVX) workloads drop the core to the 2.1 GHz AVX base
//    frequency, with transitions the paper blames for the "unusually high
//    variability" of the L1/L2 bandwidth measurements;
//  * the uncore frequency is scaled with demand ("uncore frequency
//    scaling"), which the paper credits for the non-reproducible L3
//    bandwidth boosts (278 GB/s typical, up to 343 GB/s) and the
//    measurement-to-measurement jumps it explicitly filtered out of the
//    figures.
//
// hswsim's headline numbers are produced at fixed frequencies, exactly like
// the paper's selected curves; this model quantifies the variability band
// around them (bench/variability.cpp).
#pragma once

#include "util/rng.h"

namespace hsw {

struct FrequencyModel {
  double nominal_core_ghz = 2.5;
  double avx_base_ghz = 2.1;      // footnote 3
  double uncore_nominal_ghz = 2.8;
  double uncore_min_ghz = 1.2;
  double uncore_max_ghz = 3.4;    // boost headroom observed as 343/278

  // Core frequency for a workload with the given fraction of 256-bit ops.
  // The hardware switches licences with hysteresis; sustained AVX runs at
  // the AVX base, scalar/SSE at nominal, mixtures in between.
  [[nodiscard]] double core_ghz(double avx_fraction) const {
    if (avx_fraction <= 0.0) return nominal_core_ghz;
    if (avx_fraction >= 1.0) return avx_base_ghz;
    return nominal_core_ghz -
           (nominal_core_ghz - avx_base_ghz) * avx_fraction;
  }

  // Uncore frequency chosen by the hardware for a given L3/ring utilization
  // in [0, 1].  Demand-driven: idle uncore parks low, saturated uncore runs
  // at the boost ceiling.
  [[nodiscard]] double uncore_ghz(double utilization) const {
    if (utilization <= 0.0) return uncore_min_ghz;
    if (utilization >= 1.0) return uncore_max_ghz;
    return uncore_min_ghz + (uncore_max_ghz - uncore_min_ghz) * utilization;
  }

  // Multiplier on L3/ring bandwidth relative to the calibration point.
  [[nodiscard]] double l3_bandwidth_scale(double utilization) const {
    return uncore_ghz(utilization) / uncore_nominal_ghz;
  }

  // Multiplier on L3/ring latency relative to the calibration point.
  [[nodiscard]] double l3_latency_scale(double utilization) const {
    return uncore_nominal_ghz / uncore_ghz(utilization);
  }

  // One "measurement run" of a bandwidth experiment: the uncore dithers
  // around the demand-driven operating point, occasionally latching the
  // boost ceiling for a whole run — the paper's irreproducible fast runs.
  struct RunSample {
    double bandwidth_scale = 1.0;
    bool boosted = false;
  };
  [[nodiscard]] RunSample sample_run(double utilization, Xoshiro256& rng,
                                     double boost_probability = 0.15) const {
    RunSample sample;
    if (rng.bernoulli(boost_probability)) {
      sample.boosted = true;
      sample.bandwidth_scale = uncore_max_ghz / uncore_nominal_ghz;
    } else {
      // +/-2% dither around the operating point.
      const double jitter = 1.0 + (rng.uniform() - 0.5) * 0.04;
      sample.bandwidth_scale = l3_bandwidth_scale(utilization) * jitter;
    }
    return sample;
  }
};

}  // namespace hsw
