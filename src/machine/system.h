// Public facade of the simulated machine.
//
// `System` assembles topology, caches, agents and the coherence engine per a
// `SystemConfig`, and exposes the operations the benchmark kit needs:
// single-line reads/writes/flushes issued from a chosen core, NUMA-aware
// allocation, placement helpers, and the perf counters.
//
// The default configuration is the paper's test system (Table II): two
// 12-core Haswell-EP packages at 2.5 GHz, 4x DDR4-2133 per socket, two QPI
// links at 9.6 GT/s.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "coh/engine.h"
#include "coh/state.h"

namespace hsw {

struct SystemConfig {
  DieSku sku = DieSku::kTwelveCore;
  int sockets = 2;
  SnoopMode snoop_mode = SnoopMode::kSourceSnoop;
  // Coherence-protocol family the engine runs (orthogonal to the snoop
  // mode, which picks who launches the snoops).  MESIF is the hardware.
  Protocol protocol = Protocol::kMesif;
  TimingParams timing = TimingParams::haswell_ep();
  CacheGeometry geometry;
  // When set, overrides the feature flags derived from `snoop_mode`
  // (used by the ablation benches).
  std::optional<ProtocolFeatures> feature_override;

  // Named presets matching the paper's three BIOS configurations.
  static SystemConfig source_snoop();   // default: Early Snoop enabled
  static SystemConfig home_snoop();     // Early Snoop disabled
  static SystemConfig cluster_on_die(); // COD enabled
  // The preset for a given snoop mode (the three above, by enum).
  static SystemConfig for_mode(SnoopMode mode);

  [[nodiscard]] std::string describe() const;
};

// --- name parsing ------------------------------------------------------------
// Shared by the CLI, the benches, and the examples; returns nullopt on
// unknown names instead of exiting — callers own the error policy.

// "source" | "home" | "cod" (the paper's three BIOS configurations).
[[nodiscard]] std::optional<SnoopMode> parse_snoop_mode(std::string_view name);
// "mesif" | "mesi" | "moesi" | "dragon" (the protocol family).
[[nodiscard]] std::optional<Protocol> parse_protocol(std::string_view name);
// Single-letter line-state names "M" | "O" | "E" | "S" | "I" | "F".
[[nodiscard]] std::optional<Mesif> parse_mesif(std::string_view name);

class System {
 public:
  explicit System(const SystemConfig& config = SystemConfig::source_snoop());

  // --- memory operations (single cache line each) ---------------------------
  AccessResult read(int core, PhysAddr addr) { return engine_.read(core, addr); }
  AccessResult write(int core, PhysAddr addr) { return engine_.write(core, addr); }
  double flush_line(PhysAddr addr) { return engine_.flush_line(addr); }

  // --- placement helpers -----------------------------------------------------
  // Drain a core's L1+L2 into its node's L3 (silent for clean lines).
  void evict_core_caches(int core) { engine_.evict_core_caches(core); }
  // Evict a node's whole L3 to memory (silent for clean lines, preserving
  // stale directory state like real hardware).
  void flush_node_l3(int node) { engine_.flush_node_l3(node); }
  // Drop every cached line without any writeback or directory traffic
  // (experiment isolation only; not a hardware operation).
  void drop_all_caches() { state_.drop_all_caches(); }

  // NUMA-aware allocation (libnuma equivalent).
  MemRegion alloc_on_node(int node, std::uint64_t bytes) {
    return state_.address_space.alloc(node, bytes);
  }

  // --- introspection -----------------------------------------------------------
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] const SystemTopology& topology() const { return state_.topo; }
  [[nodiscard]] const TimingParams& timing() const { return state_.timing; }
  [[nodiscard]] int core_count() const { return state_.topo.core_count(); }
  [[nodiscard]] int node_count() const { return state_.topo.node_count(); }
  CounterSet& counters() { return state_.counters; }
  [[nodiscard]] const CounterSet& counters() const { return state_.counters; }

  // L3 capacity visible to one node (the inclusive-L3 domain in COD).
  [[nodiscard]] std::uint64_t node_l3_bytes(int node) const;
  // Aggregate DRAM bandwidth per node in GB/s (4x DDR4-2133 per socket).
  [[nodiscard]] double node_dram_bandwidth_gbps(int node) const;

  // Attach a tracer to the coherence engine (nullptr detaches).  Every
  // subsequent access emits a span tree / component attribution.
  void set_tracer(trace::Tracer* tracer) { engine_.set_tracer(tracer); }
  [[nodiscard]] trace::Tracer* tracer() const { return engine_.tracer(); }

  // Attach an uncore-PMU-style metrics registry.  Sizes the per-link /
  // per-channel / per-ring-stop families from this machine's topology, so
  // every report carries the full index space even for untouched resources.
  // Detach runs a final structural census and records a closing sample
  // before clearing the engine's pointer.
  void attach_metrics(metrics::MetricsRegistry& registry);
  void detach_metrics();
  [[nodiscard]] metrics::MetricsRegistry* metrics() const {
    return state_.metrics;
  }

  // Attach a per-line coherence flight recorder (obs/line_stats.h).  Same
  // detached-hot-path contract as the tracer and the metrics registry.
  // Detach finalizes the recorder (closes open episodes and residency
  // intervals) before clearing the engine's pointer.
  void attach_linestats(obs::LineStatsRecorder& recorder);
  void detach_linestats();
  [[nodiscard]] obs::LineStatsRecorder* linestats() const {
    return state_.linestats;
  }

  // Direct engine/state access for white-box tests and the bandwidth model.
  MachineState& state() { return state_; }
  [[nodiscard]] const MachineState& state() const { return state_; }

 private:
  SystemConfig config_;
  MachineState state_;
  CoherenceEngine engine_;
};

}  // namespace hsw
