// Static architecture specification tables.
//
// Table I of the paper compares the Sandy Bridge and Haswell
// micro-architectures; Table II documents the test system.  These are data,
// not measurements — kept here so the table1/table2 bench binaries print
// them from one authoritative place and the core model can consume the few
// values that matter to it (FLOPS/cycle, load/store widths).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace hsw {

struct UarchSpec {
  std::string_view name;
  int decode_per_cycle;
  int allocation_queue;      // entries (per thread for SNB)
  int execute_uops_per_cycle;
  int retire_uops_per_cycle;
  int scheduler_entries;
  int rob_entries;
  int int_registers;
  int fp_registers;
  std::string_view simd_isa;
  std::string_view fpu_width;
  int flops_per_cycle_sp;
  int flops_per_cycle_dp;
  int load_buffers;
  int store_buffers;
  int l1_load_bytes_per_cycle;   // per port; two load ports
  int l1_store_bytes_per_cycle;
  int l2_bytes_per_cycle;
  std::string_view memory_channels;
  double memory_bw_gbps;
  double qpi_speed_gts;
  double qpi_bw_gbps;
};

[[nodiscard]] const UarchSpec& sandy_bridge_spec();
[[nodiscard]] const UarchSpec& haswell_spec();

struct TestSystemSpec {
  std::string_view processor = "2x Intel Xeon E5-2680 v3 (Haswell-EP)";
  int cores_per_socket = 12;
  double base_ghz = 2.5;
  double avx_base_ghz = 2.1;
  std::string_view l1 = "32 KiB per core, 8-way";
  std::string_view l2 = "256 KiB per core, 8-way";
  std::string_view l3 = "30 MiB (12 x 2.5 MiB slices), 20-way, inclusive";
  std::string_view memory = "4x DDR4-2133 per socket (68.3 GB/s)";
  std::string_view qpi = "2 links @ 9.6 GT/s (38.4 GB/s per direction)";
  std::string_view bios_modes =
      "Early Snoop auto (source snoop) | disabled (home snoop) | COD";
};

[[nodiscard]] const TestSystemSpec& test_system_spec();

}  // namespace hsw
