// Physical address layout and NUMA-aware allocation.
//
// The benchmarks need libnuma-style placement: "allocate this buffer on node
// N".  The simulator encodes the home node in address bits [46:44] and hands
// out bump-allocated, line-aligned regions per node.  Lower bits interleave
// consecutive lines across the home node's DRAM channels, matching the
// 64-byte channel-interleave of the real machine.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "mem/line.h"

namespace hsw {

inline constexpr unsigned kNodeShift = 44;  // address bit of the node id
inline constexpr unsigned kMaxNodes = 8;

constexpr int home_node_of(PhysAddr addr) {
  return static_cast<int>((addr >> kNodeShift) & (kMaxNodes - 1));
}
constexpr int home_node_of_line(LineAddr line) {
  return static_cast<int>((line >> (kNodeShift - kLineBits)) & (kMaxNodes - 1));
}

// A contiguous, line-aligned physical region homed on one NUMA node.
struct MemRegion {
  PhysAddr base = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] LineAddr first_line() const { return line_of(base); }
  [[nodiscard]] std::uint64_t line_count() const { return bytes / kLineSize; }
  [[nodiscard]] PhysAddr addr_at(std::uint64_t offset) const {
    return base + offset;
  }
  [[nodiscard]] bool contains(PhysAddr addr) const {
    return addr >= base && addr < base + bytes;
  }
};

// Bump allocator, one arena per NUMA node.  There is no free(): benchmark
// runs allocate fresh regions and reset the whole machine between
// experiments, exactly like a fresh process on real hardware.
class AddressSpace {
 public:
  MemRegion alloc(int node, std::uint64_t bytes) {
    if (node < 0 || node >= static_cast<int>(kMaxNodes)) {
      throw std::out_of_range("node id out of range");
    }
    // Round up to whole lines.
    bytes = (bytes + kLineSize - 1) & ~(kLineSize - 1);
    auto& cursor = cursors_[static_cast<std::size_t>(node)];
    const PhysAddr base =
        (static_cast<PhysAddr>(node) << kNodeShift) | cursor;
    if (cursor + bytes >= (1ull << kNodeShift)) {
      throw std::bad_alloc();
    }
    cursor += bytes;
    return MemRegion{base, bytes};
  }

  void reset() { cursors_.fill(0); }

 private:
  std::array<std::uint64_t, kMaxNodes> cursors_{};
};

}  // namespace hsw
