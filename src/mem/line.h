// Cache-line addressing and MESIF states.
//
// All coherence bookkeeping works on 64-byte line granularity.  A `LineAddr`
// is a physical address shifted right by 6; the full physical address layout
// (home-node encoding, channel interleave) lives in mem/address.h.
#pragma once

#include <cstdint>
#include <string_view>

namespace hsw {

inline constexpr std::uint64_t kLineSize = 64;
inline constexpr unsigned kLineBits = 6;

using PhysAddr = std::uint64_t;
using LineAddr = std::uint64_t;

constexpr LineAddr line_of(PhysAddr addr) { return addr >> kLineBits; }
constexpr PhysAddr addr_of(LineAddr line) { return line << kLineBits; }

// Coherence line states (paper §IV-A).  The vocabulary is the union over
// the protocol family (see coh/protocol.h): MESIF uses I/S/F/E/M (`forward`
// designates the single shared copy responsible for cache-to-cache
// forwarding); MOESI and Dragon add `owned` — a dirty-shared state whose
// holder forwards data without writing memory back until eviction.  kOwned
// is appended after kModified so the MESIF encoding (and everything keyed
// on it: goldens, censuses, the differential oracle) is unchanged.
enum class Mesif : std::uint8_t {
  kInvalid,
  kShared,
  kForward,
  kExclusive,
  kModified,
  kOwned,
};

constexpr bool is_valid(Mesif s) { return s != Mesif::kInvalid; }
constexpr bool is_dirty(Mesif s) {
  return s == Mesif::kModified || s == Mesif::kOwned;
}
// States that obligate the holder to respond with data to a snoop.
constexpr bool can_forward(Mesif s) {
  return s == Mesif::kModified || s == Mesif::kExclusive ||
         s == Mesif::kForward || s == Mesif::kOwned;
}

constexpr std::string_view to_string(Mesif s) {
  switch (s) {
    case Mesif::kInvalid: return "I";
    case Mesif::kShared: return "S";
    case Mesif::kForward: return "F";
    case Mesif::kExclusive: return "E";
    case Mesif::kModified: return "M";
    case Mesif::kOwned: return "O";
  }
  return "?";
}

// In-memory directory states stored in the ECC bits (2 bits per line,
// paper §IV-A / Kottapalli et al.).
enum class DirState : std::uint8_t {
  kRemoteInvalid,  // no copy outside the home node: serve without snoops
  kSnoopAll,       // a (potentially modified) copy may exist remotely
  kShared,         // multiple clean copies exist; memory copy is valid
};

constexpr std::string_view to_string(DirState s) {
  switch (s) {
    case DirState::kRemoteInvalid: return "remote-invalid";
    case DirState::kSnoopAll: return "snoop-all";
    case DirState::kShared: return "shared";
  }
  return "?";
}

}  // namespace hsw
