// Set-associative cache tag/state array.
//
// A purely functional model (no data payloads — the simulator only tracks
// placement and coherence state).  One class serves L1D, L2, L3 slices and
// the HitME directory cache; the per-line metadata carries the MESIF state,
// the core-valid bit vector (used by L3/CBo), and a small payload byte (used
// by the HitME cache for its presence vector).
//
// Replacement is true LRU by default; tree-PLRU is available to study how
// far the approximation changes eviction patterns (the L3 uses an
// approximation on real silicon).
//
// Layout: structure-of-arrays.  Tags, MESIF states, core-valid vectors,
// payload bytes and recency counters live in parallel flat stripes indexed
// `set * assoc + way`.  The scan itself runs over a packed stripe of 8-bit
// partial tags (one byte per way, eight ways per 64-bit word): a lookup
// XORs the set's packed word against the probe's splatted partial tag and
// uses the SWAR zero-byte trick to produce a candidate-way bitmask in a
// handful of ALU ops, with no per-way loop.  Candidates (usually exactly
// one) are verified against the full 8-byte tag stripe, so partial-tag
// collisions cost one extra compare and can never produce a wrong hit.
// The per-set valid-way bitmask rejects empty sets before any tag is read
// and gates stale bytes left by erase.  The cold metadata stripes (state,
// core-valid, payload, LRU) are only dereferenced on a hit.  lookup() and
// the scan helpers are header-inline because they dominate the whole
// simulator's profile.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "mem/line.h"

// The tag-scan dispatch below is deliberately bigger than GCC's -O2
// inlining budget (one unrolled body per supported associativity); without
// the hint every lookup pays an out-of-line call on its hottest path.
#if defined(__GNUC__) || defined(__clang__)
#define HSW_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define HSW_ALWAYS_INLINE inline
#endif

namespace hsw {

enum class Replacement : std::uint8_t { kLru, kTreePlru };

// Value snapshot of one cached line's metadata.  The array itself stores
// the fields striped (see the layout note above); CacheEntry is the
// materialized form handed to callers that keep copies (victims, flush
// callbacks, peeks).
struct CacheEntry {
  LineAddr line = 0;
  Mesif state = Mesif::kInvalid;
  std::uint32_t core_valid = 0;  // CBo core-valid bits (L3 only)
  std::uint8_t payload = 0;      // HitME presence vector
};

class CacheArray {
 public:
  // Mutable handle to one resident line: direct pointers into the metadata
  // stripes.  Invalidated by any subsequent insert/erase/flush on the array
  // (same lifetime rule the old CacheEntry* had).  A default-constructed
  // Ref is "miss" and converts to false.
  class Ref {
   public:
    Ref() = default;
    explicit operator bool() const { return state_ != nullptr; }
    [[nodiscard]] LineAddr line() const { return line_; }
    [[nodiscard]] Mesif& state() const { return *state_; }
    [[nodiscard]] std::uint32_t& core_valid() const { return *core_valid_; }
    [[nodiscard]] std::uint8_t& payload() const { return *payload_; }
    [[nodiscard]] CacheEntry entry() const {
      return CacheEntry{line_, *state_, *core_valid_, *payload_};
    }

   private:
    friend class CacheArray;
    Ref(LineAddr line, Mesif* state, std::uint32_t* core_valid,
        std::uint8_t* payload)
        : line_(line), state_(state), core_valid_(core_valid),
          payload_(payload) {}
    LineAddr line_ = 0;
    Mesif* state_ = nullptr;
    std::uint32_t* core_valid_ = nullptr;
    std::uint8_t* payload_ = nullptr;
  };

  // `capacity_bytes` must be a multiple of `associativity * kLineSize` and
  // yield a power-of-two set count.
  CacheArray(std::uint64_t capacity_bytes, unsigned associativity,
             Replacement replacement = Replacement::kLru);

  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(set_count_) * assoc_ * kLineSize;
  }
  [[nodiscard]] unsigned associativity() const { return assoc_; }
  [[nodiscard]] std::size_t set_count() const { return set_count_; }

  // Looks up a line; touch=true refreshes recency.  Returns a false Ref on
  // miss.
  Ref lookup(LineAddr line, bool touch = true) {
    const std::size_t idx = set_index(line);
    const std::uint64_t match = match_mask(idx, line);
    if (match == 0) return Ref{};
    const auto w = static_cast<std::size_t>(std::countr_zero(match));
    if (touch) touch_way(idx, w);
    return ref_at(idx * assoc_ + w, line);
  }

  [[nodiscard]] std::optional<CacheEntry> peek(LineAddr line) const {
    const std::size_t idx = set_index(line);
    const std::uint64_t match = match_mask(idx, line);
    if (match == 0) return std::nullopt;
    const auto slot =
        idx * assoc_ + static_cast<std::size_t>(std::countr_zero(match));
    return CacheEntry{line, states_[slot], core_valid_[slot], payload_[slot]};
  }
  [[nodiscard]] bool contains(LineAddr line) const {
    return match_mask(set_index(line), line) != 0;
  }

  // Inserts `line` (must not be present), evicting the replacement victim if
  // the set is full.  The victim (if any, and if it was valid) is returned so
  // the caller can handle writebacks / inclusive back-invalidations.
  struct InsertResult {
    Ref entry;
    std::optional<CacheEntry> victim;
  };
  InsertResult insert(LineAddr line, Mesif state);

  // Invalidates a line if present; returns the prior entry.
  std::optional<CacheEntry> erase(LineAddr line);

  // Invalidates everything, invoking `on_evict` for each valid entry
  // (used by the benchmark's cache-flush placement step).  Templated on the
  // callable so per-flush std::function allocation never happens.
  template <typename OnEvict>
  void flush(OnEvict&& on_evict) {
    for (std::size_t idx = 0; idx < set_count_; ++idx) {
      std::uint64_t mask = valid_mask_[idx];
      while (mask != 0) {
        const auto w = static_cast<std::size_t>(std::countr_zero(mask));
        mask &= mask - 1;
        const std::size_t slot = idx * assoc_ + w;
        on_evict(CacheEntry{tags_[slot], states_[slot], core_valid_[slot],
                            payload_[slot]});
      }
      valid_mask_[idx] = 0;
    }
  }

  [[nodiscard]] std::size_t valid_count() const;

  // One structural-census pass: per-line-state counts plus the
  // core-valid-filter population, walking only the valid-way bitmasks
  // (O(sets + valid lines)).  Feeds the metrics occupancy gauges.
  struct Census {
    std::array<std::size_t, 6> by_state{};  // indexed by Mesif value
    std::size_t valid = 0;
    std::size_t core_valid_bits = 0;

    Census& operator+=(const Census& other) {
      for (std::size_t i = 0; i < by_state.size(); ++i) {
        by_state[i] += other.by_state[i];
      }
      valid += other.valid;
      core_valid_bits += other.core_valid_bits;
      return *this;
    }
  };
  [[nodiscard]] Census census() const;

  // Victim the true-LRU / PLRU way would choose for this set right now, or
  // nullopt if the set still has an invalid way.  Exposed for tests.
  [[nodiscard]] std::optional<CacheEntry> replacement_victim(
      LineAddr line_in_set) const;

 private:
  [[nodiscard]] std::size_t set_index(LineAddr line) const {
    return static_cast<std::size_t>(line) & set_mask_;
  }
  // The partial tag folds the line bits above the set index (the bits that
  // actually distinguish lines within one set) into one byte.
  [[nodiscard]] std::uint8_t ptag_of(LineAddr line) const {
    return static_cast<std::uint8_t>(line >> set_shift_);
  }
  // Bitmask of ways in set `idx` holding `line` (0 or a single bit: insert
  // rejects duplicates).  The valid mask front-door makes the empty-set
  // case one load; the candidate scan is the SWAR zero-byte trick over the
  // packed partial-tag words — the borrow-propagation false positives it
  // can produce (and genuine partial-tag collisions) are filtered by the
  // full-tag verification of each candidate, so the result is exact.
  [[nodiscard]] HSW_ALWAYS_INLINE std::uint64_t match_mask(
      std::size_t idx, LineAddr line) const {
    constexpr std::uint64_t kLanes = 0x0101010101010101ull;
    constexpr std::uint64_t kHighBits = 0x8080808080808080ull;
    const std::uint64_t valid = valid_mask_[idx];
    if (valid == 0) return 0;
    const std::uint64_t splat = kLanes * ptag_of(line);
    const std::uint8_t* const pt = ptags_.data() + idx * pstride_;
    const LineAddr* const tags = tags_.data() + idx * assoc_;
    for (unsigned k = 0; k < pwords_; ++k) {  // one iteration for assoc <= 8
      std::uint64_t v;
      std::memcpy(&v, pt + 8 * k, 8);
      const std::uint64_t x = v ^ splat;  // zero byte == candidate lane
      std::uint64_t z = (x - kLanes) & ~x & kHighBits;
      while (z != 0) {  // candidate lanes, almost always exactly one
        const auto w =
            8 * k + (static_cast<unsigned>(std::countr_zero(z)) >> 3);
        z &= z - 1;
        if (((valid >> w) & 1) != 0 && tags[w] == line) {
          return std::uint64_t{1} << w;
        }
      }
    }
    return 0;
  }
  [[nodiscard]] Ref ref_at(std::size_t slot, LineAddr line) {
    return Ref{line, states_.data() + slot, core_valid_.data() + slot,
               payload_.data() + slot};
  }
  // Index of the way to replace in the set (all ways valid).
  [[nodiscard]] std::size_t victim_way(std::size_t set_idx) const;
  void touch_way(std::size_t set_idx, std::size_t way) {
    lru_[set_idx * assoc_ + way] = ++clock_;
    if (replacement_ == Replacement::kTreePlru) touch_plru(set_idx, way);
  }
  void touch_plru(std::size_t set_idx, std::size_t way);

  unsigned assoc_;
  std::size_t set_count_;
  std::size_t set_mask_;
  std::uint64_t full_mask_;  // all `assoc_` way bits set
  Replacement replacement_;
  // Packed partial-tag stripe: one byte per way, `pstride_` bytes per set
  // (assoc rounded up to whole 64-bit words; pad lanes are gated off by the
  // valid mask).  This is the only stripe the scan reads on a miss.
  std::vector<std::uint8_t> ptags_;
  std::size_t pstride_ = 8;
  unsigned pwords_ = 1;     // pstride_ / 8
  unsigned set_shift_ = 0;  // log2(set_count_), for ptag_of
  // Parallel `set * assoc + way` stripes (see the layout note above).  The
  // scan dereferences tags_ only to verify partial-tag candidates; the
  // others are hit-path-only.
  std::vector<LineAddr> tags_;
  std::vector<Mesif> states_;
  std::vector<std::uint32_t> core_valid_;
  std::vector<std::uint8_t> payload_;
  std::vector<std::uint64_t> lru_;  // larger == more recent
  // Per-set bitmask of valid ways: the miss fast path for lookup/peek/
  // contains, and insert's free-way scan (one countr_one instead of a tag
  // walk).
  std::vector<std::uint64_t> valid_mask_;
  // Tree-PLRU state: one bit-tree per set, stored as an integer of
  // (assoc-1) bits (assoc must be a power of two for PLRU).
  std::vector<std::uint32_t> plru_;
  std::uint64_t clock_ = 0;
};

}  // namespace hsw
