// Set-associative cache tag/state array.
//
// A purely functional model (no data payloads — the simulator only tracks
// placement and coherence state).  One class serves L1D, L2, L3 slices and
// the HitME directory cache; the per-line metadata carries the MESIF state,
// the core-valid bit vector (used by L3/CBo), and a small payload byte (used
// by the HitME cache for its presence vector).
//
// Replacement is true LRU by default; tree-PLRU is available to study how
// far the approximation changes eviction patterns (the L3 uses an
// approximation on real silicon).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mem/line.h"

namespace hsw {

enum class Replacement : std::uint8_t { kLru, kTreePlru };

struct CacheEntry {
  LineAddr line = 0;
  Mesif state = Mesif::kInvalid;
  std::uint32_t core_valid = 0;  // CBo core-valid bits (L3 only)
  std::uint8_t payload = 0;      // HitME presence vector
};

class CacheArray {
 public:
  // `capacity_bytes` must be a multiple of `associativity * kLineSize` and
  // yield a power-of-two set count.
  CacheArray(std::uint64_t capacity_bytes, unsigned associativity,
             Replacement replacement = Replacement::kLru);

  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(sets_.size()) * assoc_ * kLineSize;
  }
  [[nodiscard]] unsigned associativity() const { return assoc_; }
  [[nodiscard]] std::size_t set_count() const { return sets_.size(); }

  // Looks up a line; touch=true refreshes recency.  Returns nullptr on miss.
  CacheEntry* lookup(LineAddr line, bool touch = true);
  [[nodiscard]] const CacheEntry* peek(LineAddr line) const;
  [[nodiscard]] bool contains(LineAddr line) const { return peek(line) != nullptr; }

  // Inserts `line` (must not be present), evicting the replacement victim if
  // the set is full.  The victim (if any, and if it was valid) is returned so
  // the caller can handle writebacks / inclusive back-invalidations.
  struct InsertResult {
    CacheEntry* entry = nullptr;
    std::optional<CacheEntry> victim;
  };
  InsertResult insert(LineAddr line, Mesif state);

  // Invalidates a line if present; returns the prior entry.
  std::optional<CacheEntry> erase(LineAddr line);

  // Invalidates everything, invoking `on_evict` for each valid entry
  // (used by the benchmark's cache-flush placement step).
  void flush(const std::function<void(const CacheEntry&)>& on_evict);

  [[nodiscard]] std::size_t valid_count() const;

  // Victim the true-LRU / PLRU way would choose for this set right now, or
  // nullptr if the set still has an invalid way.  Exposed for tests.
  [[nodiscard]] const CacheEntry* replacement_victim(LineAddr line_in_set) const;

 private:
  struct Way {
    CacheEntry entry;
    std::uint64_t lru = 0;  // larger == more recent
  };
  using Set = std::vector<Way>;

  [[nodiscard]] std::size_t set_index(LineAddr line) const {
    return static_cast<std::size_t>(line) & set_mask_;
  }
  Way* find_way(LineAddr line);
  [[nodiscard]] const Way* find_way(LineAddr line) const;
  // Index of the way to replace in `set` (all ways valid).
  [[nodiscard]] std::size_t victim_way(const Set& set, std::size_t set_idx) const;
  void touch_way(Set& set, std::size_t set_idx, std::size_t way);

  unsigned assoc_;
  std::size_t set_mask_;
  Replacement replacement_;
  std::vector<Set> sets_;
  // Tree-PLRU state: one bit-tree per set, stored as an integer of
  // (assoc-1) bits (assoc must be a power of two for PLRU).
  std::vector<std::uint32_t> plru_;
  std::uint64_t clock_ = 0;
};

}  // namespace hsw
