// Set-associative cache tag/state array.
//
// A purely functional model (no data payloads — the simulator only tracks
// placement and coherence state).  One class serves L1D, L2, L3 slices and
// the HitME directory cache; the per-line metadata carries the MESIF state,
// the core-valid bit vector (used by L3/CBo), and a small payload byte (used
// by the HitME cache for its presence vector).
//
// Replacement is true LRU by default; tree-PLRU is available to study how
// far the approximation changes eviction patterns (the L3 uses an
// approximation on real silicon).
//
// Layout: ways live in one flat array indexed `set * assoc + way` — every
// simulated access walks exactly one contiguous stripe of it, so lookup is
// a linear scan with no per-set indirection.  lookup() and the scan helpers
// are header-inline because they dominate the whole simulator's profile.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "mem/line.h"

namespace hsw {

enum class Replacement : std::uint8_t { kLru, kTreePlru };

struct CacheEntry {
  LineAddr line = 0;
  Mesif state = Mesif::kInvalid;
  std::uint32_t core_valid = 0;  // CBo core-valid bits (L3 only)
  std::uint8_t payload = 0;      // HitME presence vector
};

class CacheArray {
 public:
  // `capacity_bytes` must be a multiple of `associativity * kLineSize` and
  // yield a power-of-two set count.
  CacheArray(std::uint64_t capacity_bytes, unsigned associativity,
             Replacement replacement = Replacement::kLru);

  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(set_count_) * assoc_ * kLineSize;
  }
  [[nodiscard]] unsigned associativity() const { return assoc_; }
  [[nodiscard]] std::size_t set_count() const { return set_count_; }

  // Looks up a line; touch=true refreshes recency.  Returns nullptr on miss.
  CacheEntry* lookup(LineAddr line, bool touch = true) {
    const std::size_t idx = set_index(line);
    Way* const base = ways_.data() + idx * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
      Way& way = base[w];
      if (way.entry.line == line && is_valid(way.entry.state)) {
        if (touch) touch_way(idx, w);
        return &way.entry;
      }
    }
    return nullptr;
  }

  [[nodiscard]] const CacheEntry* peek(LineAddr line) const {
    const std::size_t idx = set_index(line);
    const Way* const base = ways_.data() + idx * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
      const Way& way = base[w];
      if (way.entry.line == line && is_valid(way.entry.state)) {
        return &way.entry;
      }
    }
    return nullptr;
  }
  [[nodiscard]] bool contains(LineAddr line) const { return peek(line) != nullptr; }

  // Inserts `line` (must not be present), evicting the replacement victim if
  // the set is full.  The victim (if any, and if it was valid) is returned so
  // the caller can handle writebacks / inclusive back-invalidations.
  struct InsertResult {
    CacheEntry* entry = nullptr;
    std::optional<CacheEntry> victim;
  };
  InsertResult insert(LineAddr line, Mesif state);

  // Invalidates a line if present; returns the prior entry.
  std::optional<CacheEntry> erase(LineAddr line);

  // Invalidates everything, invoking `on_evict` for each valid entry
  // (used by the benchmark's cache-flush placement step).  Templated on the
  // callable so per-flush std::function allocation never happens.
  template <typename OnEvict>
  void flush(OnEvict&& on_evict) {
    for (Way& way : ways_) {
      if (is_valid(way.entry.state)) {
        on_evict(std::as_const(way.entry));
        way.entry = CacheEntry{};
      }
    }
    valid_mask_.assign(set_count_, 0);
  }

  [[nodiscard]] std::size_t valid_count() const;

  // One structural-census pass: per-MESIF-state line counts plus the
  // core-valid-filter population, walking only the valid-way bitmasks
  // (O(sets + valid lines)).  Feeds the metrics occupancy gauges.
  struct Census {
    std::array<std::size_t, 5> by_state{};  // indexed by Mesif value
    std::size_t valid = 0;
    std::size_t core_valid_bits = 0;

    Census& operator+=(const Census& other) {
      for (std::size_t i = 0; i < by_state.size(); ++i) {
        by_state[i] += other.by_state[i];
      }
      valid += other.valid;
      core_valid_bits += other.core_valid_bits;
      return *this;
    }
  };
  [[nodiscard]] Census census() const;

  // Victim the true-LRU / PLRU way would choose for this set right now, or
  // nullptr if the set still has an invalid way.  Exposed for tests.
  [[nodiscard]] const CacheEntry* replacement_victim(LineAddr line_in_set) const;

 private:
  struct Way {
    CacheEntry entry;
    std::uint64_t lru = 0;  // larger == more recent
  };

  [[nodiscard]] std::size_t set_index(LineAddr line) const {
    return static_cast<std::size_t>(line) & set_mask_;
  }
  // Index of the way to replace in the set (all ways valid).
  [[nodiscard]] std::size_t victim_way(const Way* set, std::size_t set_idx) const;
  void touch_way(std::size_t set_idx, std::size_t way) {
    ways_[set_idx * assoc_ + way].lru = ++clock_;
    if (replacement_ == Replacement::kTreePlru) touch_plru(set_idx, way);
  }
  void touch_plru(std::size_t set_idx, std::size_t way);

  unsigned assoc_;
  std::size_t set_count_;
  std::size_t set_mask_;
  std::uint64_t full_mask_;  // all `assoc_` way bits set
  Replacement replacement_;
  // Flat `set * assoc + way` array (see the layout note above).
  std::vector<Way> ways_;
  // Per-set bitmask of valid ways: insert finds a free way with one bit
  // scan instead of walking the tags (the short-circuit past the victim
  // scan whenever an invalid way exists).
  std::vector<std::uint64_t> valid_mask_;
  // Tree-PLRU state: one bit-tree per set, stored as an integer of
  // (assoc-1) bits (assoc must be a power of two for PLRU).
  std::vector<std::uint32_t> plru_;
  std::uint64_t clock_ = 0;
};

}  // namespace hsw
