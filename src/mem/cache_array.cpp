#include "mem/cache_array.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace hsw {

CacheArray::CacheArray(std::uint64_t capacity_bytes, unsigned associativity,
                       Replacement replacement)
    : assoc_(associativity), replacement_(replacement) {
  if (associativity == 0 || capacity_bytes == 0 ||
      capacity_bytes % (static_cast<std::uint64_t>(associativity) * kLineSize) != 0) {
    throw std::invalid_argument("cache capacity must be a multiple of assoc * 64B");
  }
  const std::uint64_t set_count =
      capacity_bytes / (static_cast<std::uint64_t>(associativity) * kLineSize);
  if (!std::has_single_bit(set_count)) {
    throw std::invalid_argument("cache set count must be a power of two");
  }
  if (replacement == Replacement::kTreePlru && !std::has_single_bit(static_cast<std::uint64_t>(associativity))) {
    throw std::invalid_argument("tree-PLRU requires power-of-two associativity");
  }
  set_mask_ = static_cast<std::size_t>(set_count - 1);
  sets_.resize(static_cast<std::size_t>(set_count));
  for (Set& set : sets_) set.resize(assoc_);
  plru_.assign(sets_.size(), 0);
}

CacheArray::Way* CacheArray::find_way(LineAddr line) {
  Set& set = sets_[set_index(line)];
  for (Way& way : set) {
    if (is_valid(way.entry.state) && way.entry.line == line) return &way;
  }
  return nullptr;
}

const CacheArray::Way* CacheArray::find_way(LineAddr line) const {
  const Set& set = sets_[set_index(line)];
  for (const Way& way : set) {
    if (is_valid(way.entry.state) && way.entry.line == line) return &way;
  }
  return nullptr;
}

CacheEntry* CacheArray::lookup(LineAddr line, bool touch) {
  Way* way = find_way(line);
  if (!way) return nullptr;
  if (touch) {
    Set& set = sets_[set_index(line)];
    touch_way(set, set_index(line), static_cast<std::size_t>(way - set.data()));
  }
  return &way->entry;
}

const CacheEntry* CacheArray::peek(LineAddr line) const {
  const Way* way = find_way(line);
  return way ? &way->entry : nullptr;
}

CacheArray::InsertResult CacheArray::insert(LineAddr line, Mesif state) {
  assert(is_valid(state));
  assert(!contains(line) && "insert of an already-present line");
  const std::size_t idx = set_index(line);
  Set& set = sets_[idx];

  std::size_t target = assoc_;
  for (std::size_t w = 0; w < set.size(); ++w) {
    if (!is_valid(set[w].entry.state)) {
      target = w;
      break;
    }
  }

  InsertResult result;
  if (target == assoc_) {
    target = victim_way(set, idx);
    result.victim = set[target].entry;
  }
  set[target].entry = CacheEntry{line, state, 0, 0};
  touch_way(set, idx, target);
  result.entry = &set[target].entry;
  return result;
}

std::optional<CacheEntry> CacheArray::erase(LineAddr line) {
  Way* way = find_way(line);
  if (!way) return std::nullopt;
  CacheEntry prior = way->entry;
  way->entry = CacheEntry{};
  return prior;
}

void CacheArray::flush(const std::function<void(const CacheEntry&)>& on_evict) {
  for (Set& set : sets_) {
    for (Way& way : set) {
      if (is_valid(way.entry.state)) {
        on_evict(way.entry);
        way.entry = CacheEntry{};
      }
    }
  }
}

std::size_t CacheArray::valid_count() const {
  std::size_t n = 0;
  for (const Set& set : sets_) {
    for (const Way& way : set) {
      if (is_valid(way.entry.state)) ++n;
    }
  }
  return n;
}

const CacheEntry* CacheArray::replacement_victim(LineAddr line_in_set) const {
  const std::size_t idx = set_index(line_in_set);
  const Set& set = sets_[idx];
  for (const Way& way : set) {
    if (!is_valid(way.entry.state)) return nullptr;
  }
  return &set[victim_way(set, idx)].entry;
}

std::size_t CacheArray::victim_way(const Set& set, std::size_t set_idx) const {
  if (replacement_ == Replacement::kLru) {
    std::size_t victim = 0;
    for (std::size_t w = 1; w < set.size(); ++w) {
      if (set[w].lru < set[victim].lru) victim = w;
    }
    return victim;
  }
  // Tree-PLRU: walk the bit tree; a 0 bit points left, 1 points right.  The
  // victim is the leaf the pointers lead to.
  const std::uint32_t tree = plru_[set_idx];
  std::size_t node = 0;  // root of the implicit binary tree over ways
  std::size_t width = assoc_;
  std::size_t base = 0;
  while (width > 1) {
    const bool right = (tree >> node) & 1u;
    width /= 2;
    if (right) base += width;
    node = 2 * node + (right ? 2 : 1);
  }
  return base;
}

void CacheArray::touch_way(Set& set, std::size_t set_idx, std::size_t way) {
  set[way].lru = ++clock_;
  if (replacement_ != Replacement::kTreePlru) return;
  // Flip the tree pointers along the path to `way` to point away from it.
  std::uint32_t tree = plru_[set_idx];
  std::size_t node = 0;
  std::size_t width = assoc_;
  std::size_t base = 0;
  while (width > 1) {
    width /= 2;
    const bool in_right_half = way >= base + width;
    // Point the node away from the accessed half.
    if (in_right_half) {
      tree &= ~(1u << node);
      base += width;
      node = 2 * node + 2;
    } else {
      tree |= (1u << node);
      node = 2 * node + 1;
    }
  }
  plru_[set_idx] = tree;
}

}  // namespace hsw
