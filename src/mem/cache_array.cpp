#include "mem/cache_array.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace hsw {

CacheArray::CacheArray(std::uint64_t capacity_bytes, unsigned associativity,
                       Replacement replacement)
    : assoc_(associativity), replacement_(replacement) {
  if (associativity == 0 || capacity_bytes == 0 ||
      capacity_bytes % (static_cast<std::uint64_t>(associativity) * kLineSize) != 0) {
    throw std::invalid_argument("cache capacity must be a multiple of assoc * 64B");
  }
  const std::uint64_t set_count =
      capacity_bytes / (static_cast<std::uint64_t>(associativity) * kLineSize);
  if (!std::has_single_bit(set_count)) {
    throw std::invalid_argument("cache set count must be a power of two");
  }
  if (replacement == Replacement::kTreePlru && !std::has_single_bit(static_cast<std::uint64_t>(associativity))) {
    throw std::invalid_argument("tree-PLRU requires power-of-two associativity");
  }
  if (associativity > 64) {
    throw std::invalid_argument("associativity above 64 is unsupported");
  }
  set_count_ = static_cast<std::size_t>(set_count);
  set_mask_ = set_count_ - 1;
  full_mask_ = assoc_ == 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << assoc_) - 1;
  ways_.resize(set_count_ * assoc_);
  valid_mask_.assign(set_count_, 0);
  plru_.assign(set_count_, 0);
}

CacheArray::InsertResult CacheArray::insert(LineAddr line, Mesif state) {
  assert(is_valid(state));
  assert(!contains(line) && "insert of an already-present line");
  const std::size_t idx = set_index(line);
  Way* const set = ways_.data() + idx * assoc_;

  InsertResult result;
  std::size_t target;
  const std::uint64_t valid = valid_mask_[idx];
  if (valid != full_mask_) {
    // Free way available: its index is one bit scan away, no tag walk and
    // no victim scan (the first invalid way, matching a serial search).
    target = static_cast<std::size_t>(std::countr_one(valid));
  } else {
    target = victim_way(set, idx);
    result.victim = set[target].entry;
  }
  set[target].entry = CacheEntry{line, state, 0, 0};
  valid_mask_[idx] = valid | (std::uint64_t{1} << target);
  touch_way(idx, target);
  result.entry = &set[target].entry;
  return result;
}

std::optional<CacheEntry> CacheArray::erase(LineAddr line) {
  const std::size_t idx = set_index(line);
  Way* const set = ways_.data() + idx * assoc_;
  for (std::size_t w = 0; w < assoc_; ++w) {
    CacheEntry& entry = set[w].entry;
    if (entry.line == line && is_valid(entry.state)) {
      CacheEntry prior = entry;
      entry = CacheEntry{};
      valid_mask_[idx] &= ~(std::uint64_t{1} << w);
      return prior;
    }
  }
  return std::nullopt;
}

std::size_t CacheArray::valid_count() const {
  std::size_t n = 0;
  for (const Way& way : ways_) {
    if (is_valid(way.entry.state)) ++n;
  }
  return n;
}

CacheArray::Census CacheArray::census() const {
  Census census;
  for (std::size_t idx = 0; idx < set_count_; ++idx) {
    std::uint64_t mask = valid_mask_[idx];
    const Way* const set = ways_.data() + idx * assoc_;
    while (mask != 0) {
      const unsigned w = static_cast<unsigned>(std::countr_zero(mask));
      mask &= mask - 1;
      const CacheEntry& entry = set[w].entry;
      ++census.by_state[static_cast<std::size_t>(entry.state)];
      ++census.valid;
      census.core_valid_bits +=
          static_cast<std::size_t>(std::popcount(entry.core_valid));
    }
  }
  return census;
}

const CacheEntry* CacheArray::replacement_victim(LineAddr line_in_set) const {
  const std::size_t idx = set_index(line_in_set);
  if (valid_mask_[idx] != full_mask_) return nullptr;
  const Way* const set = ways_.data() + idx * assoc_;
  return &set[victim_way(set, idx)].entry;
}

std::size_t CacheArray::victim_way(const Way* set, std::size_t set_idx) const {
  if (replacement_ == Replacement::kLru) {
    std::size_t victim = 0;
    for (std::size_t w = 1; w < assoc_; ++w) {
      if (set[w].lru < set[victim].lru) victim = w;
    }
    return victim;
  }
  // Tree-PLRU: walk the bit tree; a 0 bit points left, 1 points right.  The
  // victim is the leaf the pointers lead to.
  const std::uint32_t tree = plru_[set_idx];
  std::size_t node = 0;  // root of the implicit binary tree over ways
  std::size_t width = assoc_;
  std::size_t base = 0;
  while (width > 1) {
    const bool right = (tree >> node) & 1u;
    width /= 2;
    if (right) base += width;
    node = 2 * node + (right ? 2 : 1);
  }
  return base;
}

void CacheArray::touch_plru(std::size_t set_idx, std::size_t way) {
  // Flip the tree pointers along the path to `way` to point away from it.
  std::uint32_t tree = plru_[set_idx];
  std::size_t node = 0;
  std::size_t width = assoc_;
  std::size_t base = 0;
  while (width > 1) {
    width /= 2;
    const bool in_right_half = way >= base + width;
    // Point the node away from the accessed half.
    if (in_right_half) {
      tree &= ~(1u << node);
      base += width;
      node = 2 * node + 2;
    } else {
      tree |= (1u << node);
      node = 2 * node + 1;
    }
  }
  plru_[set_idx] = tree;
}

}  // namespace hsw
