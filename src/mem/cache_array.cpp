#include "mem/cache_array.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace hsw {

CacheArray::CacheArray(std::uint64_t capacity_bytes, unsigned associativity,
                       Replacement replacement)
    : assoc_(associativity), replacement_(replacement) {
  if (associativity == 0 || capacity_bytes == 0 ||
      capacity_bytes % (static_cast<std::uint64_t>(associativity) * kLineSize) != 0) {
    throw std::invalid_argument("cache capacity must be a multiple of assoc * 64B");
  }
  const std::uint64_t set_count =
      capacity_bytes / (static_cast<std::uint64_t>(associativity) * kLineSize);
  if (!std::has_single_bit(set_count)) {
    throw std::invalid_argument("cache set count must be a power of two");
  }
  if (replacement == Replacement::kTreePlru && !std::has_single_bit(static_cast<std::uint64_t>(associativity))) {
    throw std::invalid_argument("tree-PLRU requires power-of-two associativity");
  }
  if (associativity > 64) {
    throw std::invalid_argument("associativity above 64 is unsupported");
  }
  set_count_ = static_cast<std::size_t>(set_count);
  set_mask_ = set_count_ - 1;
  set_shift_ = static_cast<unsigned>(std::countr_zero(set_count));
  full_mask_ = assoc_ == 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << assoc_) - 1;
  pwords_ = (assoc_ + 7) / 8;
  pstride_ = static_cast<std::size_t>(pwords_) * 8;
  ptags_.assign(set_count_ * pstride_, 0);
  const std::size_t slots = set_count_ * assoc_;
  tags_.assign(slots, 0);
  states_.assign(slots, Mesif::kInvalid);
  core_valid_.assign(slots, 0);
  payload_.assign(slots, 0);
  lru_.assign(slots, 0);
  valid_mask_.assign(set_count_, 0);
  plru_.assign(set_count_, 0);
}

CacheArray::InsertResult CacheArray::insert(LineAddr line, Mesif state) {
  assert(is_valid(state));
  assert(!contains(line) && "insert of an already-present line");
  const std::size_t idx = set_index(line);

  InsertResult result;
  std::size_t target;
  const std::uint64_t valid = valid_mask_[idx];
  if (valid != full_mask_) {
    // Free way available: its index is one bit scan away, no tag walk and
    // no victim scan (the first invalid way, matching a serial search).
    target = static_cast<std::size_t>(std::countr_one(valid));
  } else {
    target = victim_way(idx);
    const std::size_t slot = idx * assoc_ + target;
    result.victim = CacheEntry{tags_[slot], states_[slot], core_valid_[slot],
                               payload_[slot]};
  }
  const std::size_t slot = idx * assoc_ + target;
  tags_[slot] = line;
  ptags_[idx * pstride_ + target] = ptag_of(line);
  states_[slot] = state;
  core_valid_[slot] = 0;
  payload_[slot] = 0;
  valid_mask_[idx] = valid | (std::uint64_t{1} << target);
  touch_way(idx, target);
  result.entry = ref_at(slot, line);
  return result;
}

std::optional<CacheEntry> CacheArray::erase(LineAddr line) {
  const std::size_t idx = set_index(line);
  const std::uint64_t match = match_mask(idx, line);
  if (match == 0) return std::nullopt;
  const auto w = static_cast<std::size_t>(std::countr_zero(match));
  const std::size_t slot = idx * assoc_ + w;
  CacheEntry prior{tags_[slot], states_[slot], core_valid_[slot],
                   payload_[slot]};
  valid_mask_[idx] &= ~(std::uint64_t{1} << w);
  return prior;
}

std::size_t CacheArray::valid_count() const {
  std::size_t n = 0;
  for (const std::uint64_t mask : valid_mask_) {
    n += static_cast<std::size_t>(std::popcount(mask));
  }
  return n;
}

CacheArray::Census CacheArray::census() const {
  Census census;
  for (std::size_t idx = 0; idx < set_count_; ++idx) {
    std::uint64_t mask = valid_mask_[idx];
    while (mask != 0) {
      const auto w = static_cast<std::size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      const std::size_t slot = idx * assoc_ + w;
      ++census.by_state[static_cast<std::size_t>(states_[slot])];
      ++census.valid;
      census.core_valid_bits +=
          static_cast<std::size_t>(std::popcount(core_valid_[slot]));
    }
  }
  return census;
}

std::optional<CacheEntry> CacheArray::replacement_victim(
    LineAddr line_in_set) const {
  const std::size_t idx = set_index(line_in_set);
  if (valid_mask_[idx] != full_mask_) return std::nullopt;
  const std::size_t slot = idx * assoc_ + victim_way(idx);
  return CacheEntry{tags_[slot], states_[slot], core_valid_[slot],
                    payload_[slot]};
}

std::size_t CacheArray::victim_way(std::size_t set_idx) const {
  if (replacement_ == Replacement::kLru) {
    const std::uint64_t* const recency = lru_.data() + set_idx * assoc_;
    std::size_t victim = 0;
    for (std::size_t w = 1; w < assoc_; ++w) {
      if (recency[w] < recency[victim]) victim = w;
    }
    return victim;
  }
  // Tree-PLRU: walk the bit tree; a 0 bit points left, 1 points right.  The
  // victim is the leaf the pointers lead to.
  const std::uint32_t tree = plru_[set_idx];
  std::size_t node = 0;  // root of the implicit binary tree over ways
  std::size_t width = assoc_;
  std::size_t base = 0;
  while (width > 1) {
    const bool right = (tree >> node) & 1u;
    width /= 2;
    if (right) base += width;
    node = 2 * node + (right ? 2 : 1);
  }
  return base;
}

void CacheArray::touch_plru(std::size_t set_idx, std::size_t way) {
  // Flip the tree pointers along the path to `way` to point away from it.
  std::uint32_t tree = plru_[set_idx];
  std::size_t node = 0;
  std::size_t width = assoc_;
  std::size_t base = 0;
  while (width > 1) {
    width /= 2;
    const bool in_right_half = way >= base + width;
    // Point the node away from the accessed half.
    if (in_right_half) {
      tree &= ~(1u << node);
      base += width;
      node = 2 * node + 2;
    } else {
      tree |= (1u << node);
      node = 2 * node + 1;
    }
  }
  plru_[set_idx] = tree;
}

}  // namespace hsw
