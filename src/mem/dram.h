// DDR4 channel model with row-buffer (open-page) behaviour and the
// in-memory coherence directory.
//
// The paper's footnote 7 attributes sub-256 KiB memory-latency variation to
// "the portion of accesses that read from already open pages"; reproducing
// Fig. 7 therefore needs a row-buffer model, not a flat DRAM latency.  Each
// channel tracks the open row per bank: an access is a page hit (row already
// open), a page empty (bank precharged), or a page conflict (different row
// open, needs precharge + activate).
//
// The 2-bit in-memory directory (paper §IV-A) is stored alongside: real
// hardware keeps it in the ECC bits of each line, so reading memory always
// returns the directory state for free, and updating it costs a write.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/line.h"

namespace hsw {

enum class RowBufferOutcome : std::uint8_t { kHit, kEmpty, kConflict };

struct DramGeometry {
  unsigned banks = 16;
  std::uint64_t row_bytes = 8192;  // 8 KiB row per bank per channel

  [[nodiscard]] std::uint64_t lines_per_row() const { return row_bytes / kLineSize; }
};

// One DDR4 channel: per-bank open-row registers.
class DramChannel {
 public:
  explicit DramChannel(const DramGeometry& geometry = {});

  // Lifetime row-buffer outcome counts (reads and writes alike; every
  // directed access goes through access()).
  struct Stats {
    std::uint64_t page_hits = 0;
    std::uint64_t page_empties = 0;
    std::uint64_t page_conflicts = 0;

    [[nodiscard]] std::uint64_t accesses() const {
      return page_hits + page_empties + page_conflicts;
    }
    [[nodiscard]] double hit_rate() const {
      const std::uint64_t n = accesses();
      return n == 0 ? 0.0 : static_cast<double>(page_hits) / static_cast<double>(n);
    }
  };

  // `channel_line` is the line index within this channel's address space
  // (i.e. the node-relative line index divided by the channel count).
  RowBufferOutcome access(std::uint64_t channel_line);

  // Precharges all banks (e.g. after idle periods between measurements).
  void close_all();

  [[nodiscard]] const DramGeometry& geometry() const { return geometry_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  DramGeometry geometry_;
  std::vector<std::int64_t> open_row_;  // -1 == precharged
  Stats stats_;
};

// Sparse in-memory directory: 2 bits per line, default remote-invalid.
// Owned by each home agent for the lines it is home to.
class DirectoryStore {
 public:
  [[nodiscard]] DirState get(LineAddr line) const {
    auto it = states_.find(line);
    return it == states_.end() ? DirState::kRemoteInvalid : it->second;
  }

  // Returns true if the stored state changed (a real machine pays a memory
  // write for directory updates).
  bool set(LineAddr line, DirState state) {
    if (state == DirState::kRemoteInvalid) {
      return states_.erase(line) > 0;
    }
    auto [it, inserted] = states_.insert_or_assign(line, state);
    (void)it;
    return inserted || true;
  }

  void clear() { states_.clear(); }
  [[nodiscard]] std::size_t tracked_lines() const { return states_.size(); }

 private:
  std::unordered_map<LineAddr, DirState> states_;
};

}  // namespace hsw
