#include "mem/dram.h"

namespace hsw {

DramChannel::DramChannel(const DramGeometry& geometry) : geometry_(geometry) {
  open_row_.assign(geometry_.banks, -1);
}

RowBufferOutcome DramChannel::access(std::uint64_t channel_line) {
  const std::uint64_t lines_per_row = geometry_.lines_per_row();
  const std::uint64_t global_row = channel_line / lines_per_row;
  const auto bank = static_cast<std::size_t>(global_row % geometry_.banks);
  const auto row = static_cast<std::int64_t>(global_row / geometry_.banks);

  if (open_row_[bank] == row) {
    ++stats_.page_hits;
    return RowBufferOutcome::kHit;
  }
  const bool was_open = open_row_[bank] >= 0;
  open_row_[bank] = row;
  if (was_open) {
    ++stats_.page_conflicts;
    return RowBufferOutcome::kConflict;
  }
  ++stats_.page_empties;
  return RowBufferOutcome::kEmpty;
}

void DramChannel::close_all() {
  open_row_.assign(geometry_.banks, -1);
}

}  // namespace hsw
