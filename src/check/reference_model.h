// Timing-free reference coherence models for differential testing.
//
// A deliberately naive re-implementation of the protocol semantics in
// coh/engine.cpp: one flat map of line -> (per-core L1/L2 state, per-node L3
// state + core-valid bits, directory + HitME view) and nothing else.  No
// cache arrays, no replacement, no latency composition — just the state
// transitions and the counter semantics, written straight from the paper's
// protocol description so that a bug in the engine's cache plumbing and a
// bug in this model are unlikely to coincide.
//
// Since PR 7 the model is a *family*: it binds the same ProtocolPolicy
// tables the engine does (MESIF / MESI / MOESI / Dragon, coh/protocol.h)
// and mirrors each protocol's flows — the Owned dirty-shared demotions of
// MOESI and the update broadcasts of Dragon included.  On top of the state
// machine it carries a value oracle the engine does not have: every store
// stamps the line with a fresh serial, and only modeled writebacks copy the
// newest serial into the memory image.  After flush_all(), a correct
// protocol leaves memory holding every line's newest value; a protocol (or
// an injected fault) that loses a dirty copy leaves a stale serial behind.
//
// The model is only exact when the operation mix cannot cause capacity
// evictions (the differential driver keeps its working set far below every
// set's associativity); under that restriction L1-present implies
// L2-present and all replacement decisions are invisible.
//
// `ReferenceFault` deliberately mis-implements one transition so the
// sequence minimizer can be validated against a known divergence.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "coh/protocol.h"
#include "coh/state.h"
#include "mem/line.h"
#include "topo/topology.h"

namespace hsw::check {

// Injectable bugs (testing the tester).  Each one drops or distorts a
// single transition of the reference model.
enum class ReferenceFault : std::uint8_t {
  kNone,
  // flush_line forgets the writeback of dirty data (counters diverge).
  kFlushDropsWriteback,
  // An RFO never updates the in-memory directory (COD state diverges).
  kWriteSkipsDirectoryUpdate,
  // Memory grants are always Exclusive, ignoring shared copies.
  kReadAlwaysExclusive,
  // Owned lines are treated as clean on eviction/flush: the deferred MOESI
  // writeback is lost (counters and the memory image diverge).
  kMoesiLostOwnedWriteback,
  // A peer receiving a Dragon update broadcast keeps its stale states
  // instead of demoting to Shared (L3/core state diverges).
  kDragonDroppedUpdate,
};

// Counter semantics the reference predicts (subset of hsw::Ctr tracked by
// protocol transitions alone; DRAM page-hit/miss stay with the engine's
// row-buffer model).
struct ReferenceCounters {
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t l3_writebacks = 0;
  std::uint64_t l3_evictions = 0;
  std::uint64_t directory_updates = 0;
  std::uint64_t directory_lookups = 0;
  std::uint64_t core_snoops = 0;
  std::uint64_t snoops_sent = 0;
  std::uint64_t snoop_broadcasts = 0;
  std::uint64_t qpi_snoop_flits = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t hitme_hits = 0;
  std::uint64_t hitme_misses = 0;
  std::uint64_t hitme_allocs = 0;
};

// The full coherence-visible state of one line.
struct ReferenceLine {
  std::vector<Mesif> l1;              // [global core]
  std::vector<Mesif> l2;              // [global core]
  std::vector<Mesif> l3;              // [node], kInvalid = no entry
  std::vector<std::uint32_t> cv;      // [node], socket-local core-valid bits
  DirState dir = DirState::kRemoteInvalid;
  bool hitme = false;                 // home HitME cache holds the line
  std::uint8_t presence = 0;          // HitME node-presence vector
  // Value oracle (serial tokens, not bytes): `newest` is stamped by every
  // store, `mem` only advances when a modeled writeback carries the dirty
  // copy home.  The differential comparator ignores these; the cross-
  // protocol equivalence test reads them through memory_image().
  std::uint64_t mem_value = 0;
  std::uint64_t newest_value = 0;
  int last_writer = -1;
};

class ReferenceModel {
 public:
  ReferenceModel(const SystemTopology& topo, const ProtocolFeatures& features,
                 ReferenceFault fault = ReferenceFault::kNone);

  // Mirrors of the System / CoherenceEngine operations (state only).
  void read(int core, LineAddr line);
  void write(int core, LineAddr line);
  void flush_line(LineAddr line);
  void evict_core_caches(int core);
  void flush_node_l3(int node);

  // A line never touched is all-invalid; `line_state` materializes it.
  [[nodiscard]] const ReferenceLine& line_state(LineAddr line);
  [[nodiscard]] const ReferenceCounters& counters() const { return ctr_; }

  // Value-oracle API (cross-protocol equivalence) ----------------------------
  // Flushes every line the model has ever touched (deterministic order).
  void flush_all();
  struct MemoryCell {
    std::uint64_t value = 0;  // serial of the version memory holds
    int last_writer = -1;     // core that produced the line's newest version

    friend bool operator==(const MemoryCell&, const MemoryCell&) = default;
  };
  // The home-memory image of every touched line.  After flush_all() a
  // correct protocol reports value == the line's newest serial.
  [[nodiscard]] std::map<LineAddr, MemoryCell> memory_image() const;

 private:
  struct Fill {
    Mesif core_state = Mesif::kShared;
    Mesif node_state = Mesif::kForward;
  };

  ReferenceLine& at(LineAddr line);

  Fill ca_read(int core, LineAddr line);
  Fill home_read(int core, int req_node, LineAddr line);
  Fill ca_write(int core, LineAddr line);
  Fill home_write(int core, int req_node, LineAddr line);
  Fill ca_update(int core, LineAddr line);
  Fill home_update(int core, int req_node, LineAddr line);
  void fill_caches(int core, LineAddr line, const Fill& fill);

  struct PeerSnoop {
    bool forwarded = false;
    bool had_shared = false;
    bool dirty_forward = false;  // Owned forward: memory copy goes stale
  };
  PeerSnoop snoop_peer_read(int peer_node, LineAddr line);
  void snoop_peer_invalidate(int peer_node, LineAddr line);
  // Update snoop (Dragon): peer keeps its copies demoted to Shared.
  // Returns whether the peer held the line.
  bool snoop_peer_update(int peer_node, LineAddr line);
  // Demotes/erases a core's copy; returns true if it was dirty.
  bool snoop_core(int global_core, LineAddr line, Mesif demote_to);
  bool invalidate_core(int global_core, LineAddr line);
  void handle_l2_victim(int core, LineAddr line, Mesif victim_state,
                        bool l1_still_holds);
  void handle_l3_victim(int node, LineAddr line);
  void writeback(LineAddr line, bool clears_directory);

  // Dirtiness as the (possibly faulted) model sees it: Owned reads as clean
  // under kMoesiLostOwnedWriteback.
  [[nodiscard]] bool sees_dirty(Mesif s) const;

  // DirectoryStore::set() semantics: returns whether the home agent pays a
  // directory write (always true for non-remote-invalid states).
  bool dir_set(ReferenceLine& ls, DirState next);

  [[nodiscard]] bool directory_on() const { return features_.directory; }
  [[nodiscard]] bool hitme_on() const {
    return features_.directory && features_.hitme;
  }
  [[nodiscard]] bool source_snoop() const {
    return topo_.config().snoop_mode == SnoopMode::kSourceSnoop;
  }
  [[nodiscard]] std::uint32_t bit_of_core(int global_core) const {
    return 1u << static_cast<unsigned>(topo_.local_core(global_core));
  }

  const SystemTopology& topo_;
  ProtocolFeatures features_;
  const protocol::ProtocolPolicy& pol_;
  ReferenceFault fault_;
  ReferenceCounters ctr_;
  std::uint64_t op_serial_ = 0;
  std::unordered_map<LineAddr, ReferenceLine> lines_;
};

}  // namespace hsw::check
