// CLI wrapper around the golden CSV comparator.
//
//   golden_diff <golden.csv> <actual.csv> [--rel <tol>] [--abs <tol>]
//
// Exit code 0 when every cell matches under the tolerance, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "check/golden.h"

int main(int argc, char** argv) {
  hsw::check::GoldenTolerance tolerance;
  const char* golden = nullptr;
  const char* actual = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rel") == 0 && i + 1 < argc) {
      tolerance.rel = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--abs") == 0 && i + 1 < argc) {
      tolerance.abs = std::strtod(argv[++i], nullptr);
    } else if (!golden) {
      golden = argv[i];
    } else if (!actual) {
      actual = argv[i];
    } else {
      std::fprintf(stderr, "usage: golden_diff <golden.csv> <actual.csv> "
                           "[--rel <tol>] [--abs <tol>]\n");
      return 2;
    }
  }
  if (!golden || !actual) {
    std::fprintf(stderr, "usage: golden_diff <golden.csv> <actual.csv> "
                         "[--rel <tol>] [--abs <tol>]\n");
    return 2;
  }
  const hsw::check::GoldenDiff diff =
      hsw::check::compare_csv_files(golden, actual, tolerance);
  if (!diff.ok) {
    std::fprintf(stderr, "golden mismatch (%s vs %s): %s\n", golden, actual,
                 diff.message.c_str());
    std::fprintf(stderr,
                 "If the change is intentional, regenerate goldens with "
                 "scripts/update_goldens.sh (see EXPERIMENTS.md).\n");
    return 1;
  }
  return 0;
}
