// protocol_diff: differential-oracle smoke runner for scripts/check.sh.
//
// Replays one seeded random trace per coherence-protocol family through the
// real engine and its timing-free reference, diffing the full coherence-
// visible state after every step (the same machinery as the check_tests
// differential suite, one configuration per protocol so a shell script can
// gate on it in seconds).  Any divergence is ddmin-minimized and printed as
// a compilable replay literal.  Exit 0 = every protocol agrees, 1 = a
// divergence, 2 = bad flags.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "check/differential.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  std::int64_t steps = 400;
  std::int64_t seed = 1;
  hsw::CommandLine cli(
      "protocol_diff: engine-vs-reference smoke across every coherence "
      "protocol family");
  cli.add_int("steps", &steps, "trace length per protocol");
  cli.add_int("seed", &seed, "trace RNG seed");
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kHelp:
      return 0;
    case hsw::CommandLine::ParseStatus::kError:
      return 2;
    case hsw::CommandLine::ParseStatus::kOk:
      break;
  }
  if (steps <= 0) {
    std::fprintf(stderr, "--steps must be positive\n");
    return 2;
  }

  // One representative snoop-mode cell per protocol; the full grid runs in
  // check_tests.  COD + directory for MESIF (the paper machine's richest
  // configuration), plain source snoop for the rest.
  struct SmokeCell {
    hsw::Protocol protocol;
    hsw::SnoopMode mode;
  };
  const SmokeCell cells[] = {
      {hsw::Protocol::kMesif, hsw::SnoopMode::kCod},
      {hsw::Protocol::kMesi, hsw::SnoopMode::kSourceSnoop},
      {hsw::Protocol::kMoesi, hsw::SnoopMode::kSourceSnoop},
      {hsw::Protocol::kDragon, hsw::SnoopMode::kSourceSnoop},
  };

  bool ok = true;
  for (const SmokeCell& cell : cells) {
    hsw::check::DiffConfig config;
    config.protocol = cell.protocol;
    config.mode = cell.mode;
    config.seed = static_cast<std::uint64_t>(seed);
    config.steps = static_cast<int>(steps);

    const std::vector<hsw::check::DiffOp> trace =
        hsw::check::random_trace(config);
    const std::optional<hsw::check::Divergence> divergence =
        hsw::check::run_differential(config, trace);
    if (!divergence) {
      std::printf("protocol_diff: %-6s ok (%lld steps)\n",
                  std::string(hsw::to_string(cell.protocol)).c_str(),
                  static_cast<long long>(steps));
      continue;
    }
    ok = false;
    const std::vector<hsw::check::DiffOp> repro =
        hsw::check::minimize(config, trace);
    std::fprintf(stderr,
                 "protocol_diff: %s DIVERGED at step %zu:\n%s\n"
                 "minimized repro (%zu ops):\n%s\n",
                 std::string(hsw::to_string(cell.protocol)).c_str(),
                 divergence->failing_step, divergence->description.c_str(),
                 repro.size(), hsw::check::format_replay(config, repro).c_str());
  }
  return ok ? 0 : 1;
}
