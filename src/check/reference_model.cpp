#include "check/reference_model.h"

#include <algorithm>
#include <bit>

#include "mem/address.h"

namespace hsw::check {

ReferenceModel::ReferenceModel(const SystemTopology& topo,
                               const ProtocolFeatures& features,
                               ReferenceFault fault)
    : topo_(topo),
      features_(features),
      pol_(protocol::policy(features.protocol)),
      fault_(fault) {}

ReferenceLine& ReferenceModel::at(LineAddr line) {
  auto [it, inserted] = lines_.try_emplace(line);
  if (inserted) {
    ReferenceLine& ls = it->second;
    ls.l1.assign(static_cast<std::size_t>(topo_.core_count()), Mesif::kInvalid);
    ls.l2.assign(static_cast<std::size_t>(topo_.core_count()), Mesif::kInvalid);
    ls.l3.assign(static_cast<std::size_t>(topo_.node_count()), Mesif::kInvalid);
    ls.cv.assign(static_cast<std::size_t>(topo_.node_count()), 0);
  }
  return it->second;
}

const ReferenceLine& ReferenceModel::line_state(LineAddr line) {
  return at(line);
}

bool ReferenceModel::sees_dirty(Mesif s) const {
  if (fault_ == ReferenceFault::kMoesiLostOwnedWriteback && s == Mesif::kOwned) {
    return false;  // the injected bug: Owned pretends to be clean
  }
  return is_dirty(s);
}

bool ReferenceModel::dir_set(ReferenceLine& ls, DirState next) {
  if (next == DirState::kRemoteInvalid) {
    const bool changed = ls.dir != DirState::kRemoteInvalid;
    ls.dir = next;
    return changed;
  }
  // The sparse store reports a write for every non-RI set, even when the
  // stored state is unchanged (insert_or_assign path in DirectoryStore).
  ls.dir = next;
  return true;
}

void ReferenceModel::writeback(LineAddr line, bool clears_directory) {
  ++ctr_.dram_writes;
  ++ctr_.l3_writebacks;
  ReferenceLine& ls = at(line);
  // The dirty copy carries the line's newest version home.
  ls.mem_value = ls.newest_value;
  if (directory_on() && clears_directory) {
    if (dir_set(ls, DirState::kRemoteInvalid)) ++ctr_.directory_updates;
  }
}

bool ReferenceModel::snoop_core(int global_core, LineAddr line,
                                Mesif demote_to) {
  ++ctr_.core_snoops;
  ReferenceLine& ls = at(line);
  const auto c = static_cast<std::size_t>(global_core);
  bool dirty = false;
  for (Mesif* level : {&ls.l1[c], &ls.l2[c]}) {
    if (*level == Mesif::kInvalid) continue;
    dirty |= is_dirty(*level);
    *level = demote_to;
  }
  return dirty;
}

bool ReferenceModel::invalidate_core(int global_core, LineAddr line) {
  ReferenceLine& ls = at(line);
  const auto c = static_cast<std::size_t>(global_core);
  const bool dirty = is_dirty(ls.l1[c]) || is_dirty(ls.l2[c]);
  ls.l1[c] = Mesif::kInvalid;
  ls.l2[c] = Mesif::kInvalid;
  return dirty;
}

ReferenceModel::PeerSnoop ReferenceModel::snoop_peer_read(int peer_node,
                                                          LineAddr line) {
  ++ctr_.snoops_sent;
  ReferenceLine& ls = at(line);
  const auto n = static_cast<std::size_t>(peer_node);
  PeerSnoop result;
  if (ls.l3[n] == Mesif::kInvalid) return result;

  const protocol::SnoopReadReaction& rx = pol_.snoop_read(ls.l3[n]);
  result.had_shared = rx.responds_shared;
  if (!rx.forwards) return result;  // Shared answers without data

  if (rx.may_hold_newer) {
    const std::uint32_t cv = ls.cv[n];
    const bool multi = std::popcount(cv) > 1;
    if (features_.core_valid_bits && cv != 0 && !multi) {
      const int owner_local = std::countr_zero(cv);
      const int owner =
          topo_.global_core(topo_.node(peer_node).socket, owner_local);
      if (snoop_core(owner, line, Mesif::kShared)) {
        ls.l3[n] = Mesif::kModified;  // refreshed with the dirty data
      }
    }
  }
  if (is_dirty(ls.l3[n])) {
    if (pol_.writeback_on_read_snoop) {
      writeback(line, /*clears_directory=*/false);
    } else {
      result.dirty_forward = true;  // MOESI/Dragon: memory copy goes stale
    }
  }
  ls.l3[n] = pol_.next(ls.l3[n], protocol::Op::kSnoopRead);
  result.forwarded = true;
  return result;
}

void ReferenceModel::snoop_peer_invalidate(int peer_node, LineAddr line) {
  ++ctr_.snoops_sent;
  ReferenceLine& ls = at(line);
  const auto n = static_cast<std::size_t>(peer_node);
  if (ls.l3[n] == Mesif::kInvalid) return;
  std::uint32_t cv = ls.cv[n];
  while (cv != 0) {
    const int owner_local = std::countr_zero(cv);
    cv &= cv - 1;
    invalidate_core(topo_.global_core(topo_.node(peer_node).socket, owner_local),
                    line);
  }
  ls.l3[n] = Mesif::kInvalid;
  ls.cv[n] = 0;
}

bool ReferenceModel::snoop_peer_update(int peer_node, LineAddr line) {
  ++ctr_.snoops_sent;
  ReferenceLine& ls = at(line);
  const auto n = static_cast<std::size_t>(peer_node);
  if (ls.l3[n] == Mesif::kInvalid) return false;

  ++ctr_.updates_sent;
  std::uint32_t cv = ls.cv[n];
  while (cv != 0) {
    const int owner_local = std::countr_zero(cv);
    cv &= cv - 1;
    const int owner =
        topo_.global_core(topo_.node(peer_node).socket, owner_local);
    if (fault_ == ReferenceFault::kDragonDroppedUpdate) {
      ++ctr_.core_snoops;  // the injected bug: snooped but never demoted
    } else {
      snoop_core(owner, line, Mesif::kShared);
    }
  }
  if (fault_ != ReferenceFault::kDragonDroppedUpdate) {
    ls.l3[n] = pol_.next(ls.l3[n], protocol::Op::kSnoopUpdate);
  }
  return true;
}

void ReferenceModel::handle_l2_victim(int core, LineAddr line,
                                      Mesif victim_state, bool l1_still_holds) {
  if (!is_dirty(victim_state)) return;  // clean evictions are silent
  ReferenceLine& ls = at(line);
  const auto node = static_cast<std::size_t>(topo_.node_of_core(core));
  if (ls.l3[node] != Mesif::kInvalid) {
    // An already-dirty-shared (Owned) L3 entry keeps its sharing state.
    if (!is_dirty(ls.l3[node])) ls.l3[node] = victim_state;
    if (!l1_still_holds) ls.cv[node] &= ~bit_of_core(core);
  } else {
    ls.l3[node] = victim_state;
    ls.cv[node] = 0;  // fresh L3 entry: no core-valid bits
  }
}

void ReferenceModel::handle_l3_victim(int node, LineAddr line) {
  ++ctr_.l3_evictions;
  ReferenceLine& ls = at(line);
  const auto n = static_cast<std::size_t>(node);
  bool dirty = sees_dirty(ls.l3[n]);
  std::uint32_t cv = ls.cv[n];
  while (cv != 0) {
    const int owner_local = std::countr_zero(cv);
    cv &= cv - 1;
    dirty |= invalidate_core(
        topo_.global_core(topo_.node(node).socket, owner_local), line);
  }
  ls.l3[n] = Mesif::kInvalid;
  ls.cv[n] = 0;
  if (dirty) writeback(line, /*clears_directory=*/true);
}

void ReferenceModel::fill_caches(int core, LineAddr line, const Fill& fill) {
  ReferenceLine& ls = at(line);
  const auto node = static_cast<std::size_t>(topo_.node_of_core(core));
  const auto c = static_cast<std::size_t>(core);
  if (ls.l3[node] != Mesif::kInvalid) {
    ls.cv[node] |= bit_of_core(core);
  } else {
    ls.l3[node] = fill.node_state;
    ls.cv[node] = bit_of_core(core);
  }
  ls.l2[c] = fill.core_state;
  if (ls.l1[c] == Mesif::kInvalid || is_dirty(fill.core_state)) {
    ls.l1[c] = fill.core_state;
  }
}

// --- read --------------------------------------------------------------------

void ReferenceModel::read(int core, LineAddr line) {
  ReferenceLine& ls = at(line);
  const auto c = static_cast<std::size_t>(core);
  const auto node = static_cast<std::size_t>(topo_.node_of_core(core));
  // Reading a Shared line whose node L3 copy is also Shared costs an L3
  // round trip but changes no state (the MESIF forward-reclaim path).
  auto shared_hit = [&](Mesif state) {
    return pol_.has_forward && state == Mesif::kShared &&
           ls.l3[node] == Mesif::kShared;
  };
  if (ls.l1[c] != Mesif::kInvalid) {
    (void)shared_hit(ls.l1[c]);
    return;  // L1 hit (possibly via the L3 forward-reclaim path): no change
  }
  if (ls.l2[c] != Mesif::kInvalid) {
    if (shared_hit(ls.l2[c])) return;  // served by the L3, no L1 fill
    ls.l1[c] = ls.l2[c];
    return;
  }
  const Fill fill = ca_read(core, line);
  fill_caches(core, line, fill);
}

ReferenceModel::Fill ReferenceModel::ca_read(int core, LineAddr line) {
  ReferenceLine& ls = at(line);
  const int req_node = topo_.node_of_core(core);
  const auto n = static_cast<std::size_t>(req_node);

  Fill fill;
  fill.core_state = Mesif::kShared;
  if (ls.l3[n] != Mesif::kInvalid) {
    const std::uint32_t owners = ls.cv[n] & ~bit_of_core(core);
    const bool multi = std::popcount(ls.cv[n]) > 1;
    if (pol_.snoop_read(ls.l3[n]).may_hold_newer &&
        features_.core_valid_bits && owners != 0 && !multi) {
      const int owner_local = std::countr_zero(owners);
      const int owner =
          topo_.global_core(topo_.node(req_node).socket, owner_local);
      if (snoop_core(owner, line, Mesif::kShared)) {
        ls.l3[n] = Mesif::kModified;
      }
    }
    ls.cv[n] |= bit_of_core(core);
    fill.node_state = ls.l3[n];
    return fill;
  }
  return home_read(core, req_node, line);
}

ReferenceModel::Fill ReferenceModel::home_read(int core, int req_node,
                                               LineAddr line) {
  (void)core;
  ReferenceLine& ls = at(line);
  const int h = home_node_of_line(line);

  Fill fill;
  fill.core_state = Mesif::kShared;
  fill.node_state = pol_.clean_shared_grant;

  std::vector<int> peers;
  for (int n = 0; n < topo_.node_count(); ++n) {
    if (n != req_node && n != h) peers.push_back(n);
  }

  // `memory_valid` mirrors the engine: false for an Owned dirty forward
  // (MOESI/Dragon), which bars the HitME allocation and the directory's
  // `shared` state — both claim the memory copy is authoritative.
  auto record_forward_state = [&](int forwarder_node, bool memory_valid) {
    fill.node_state = pol_.clean_shared_grant;
    if (directory_on() && req_node != h) {
      if (hitme_on() && memory_valid) {
        const auto presence = static_cast<std::uint8_t>(
            (1u << static_cast<unsigned>(req_node)) |
            (1u << static_cast<unsigned>(forwarder_node)));
        if (ls.hitme) {
          ls.presence |= presence;
        } else {
          ls.hitme = true;
          ls.presence = presence;
          ++ctr_.hitme_allocs;
        }
        if (dir_set(ls, DirState::kSnoopAll)) ++ctr_.directory_updates;
      } else {
        const DirState next = (!hitme_on() && memory_valid)
                                  ? DirState::kShared
                                  : DirState::kSnoopAll;
        if (dir_set(ls, next)) ++ctr_.directory_updates;
      }
    }
  };
  auto record_memory_grant = [&](bool exclusive) {
    if (fault_ == ReferenceFault::kReadAlwaysExclusive) exclusive = true;
    fill.node_state = exclusive ? Mesif::kExclusive : Mesif::kShared;
    fill.core_state = exclusive ? Mesif::kExclusive : Mesif::kShared;
    if (directory_on() && req_node != h) {
      if (dir_set(ls, DirState::kSnoopAll)) ++ctr_.directory_updates;
    }
  };

  if (!directory_on()) {
    // Snoopy modes.  Source and home snoop differ only in timing and in
    // which agent's QPI link carries the snoop flits.
    std::vector<int> snooped = peers;
    if (h != req_node) snooped.insert(snooped.begin(), h);
    const int snoop_origin = source_snoop() ? req_node : h;
    bool any_shared = false;
    for (int p : snooped) {
      ++ctr_.snoop_broadcasts;
      if (topo_.crosses_qpi(snoop_origin, p)) ++ctr_.qpi_snoop_flits;
      const PeerSnoop snoop = snoop_peer_read(p, line);
      if (snoop.forwarded) {
        record_forward_state(p, !snoop.dirty_forward);
        return fill;
      }
      any_shared |= snoop.had_shared;
    }
    ++ctr_.dram_reads;
    record_memory_grant(!any_shared);
    if (any_shared) fill.node_state = pol_.clean_shared_grant;
    return fill;
  }

  // Directory-assisted home snoop (COD).
  bool home_had_shared = false;
  if (h != req_node) {
    const PeerSnoop local_snoop = snoop_peer_read(h, line);
    if (local_snoop.forwarded) {
      record_forward_state(h, !local_snoop.dirty_forward);
      return fill;
    }
    home_had_shared = local_snoop.had_shared;
  }

  if (hitme_on()) {
    if (ls.hitme) {
      ++ctr_.hitme_hits;
      ++ctr_.dram_reads;
      ls.presence |= static_cast<std::uint8_t>(
          1u << static_cast<unsigned>(req_node));
      record_memory_grant(/*exclusive=*/false);
      return fill;
    }
    ++ctr_.hitme_misses;
  }

  ++ctr_.directory_lookups;
  ++ctr_.dram_reads;
  if (ls.dir == DirState::kRemoteInvalid) {
    record_memory_grant(!home_had_shared);
    if (home_had_shared) fill.node_state = pol_.clean_shared_grant;
    return fill;
  }
  if (ls.dir == DirState::kShared) {
    record_memory_grant(/*exclusive=*/false);
    return fill;
  }

  // Snoop-all broadcast.
  bool any_shared = home_had_shared;
  for (int p : peers) {
    ++ctr_.snoop_broadcasts;
    if (topo_.crosses_qpi(h, p)) ++ctr_.qpi_snoop_flits;
    const PeerSnoop snoop = snoop_peer_read(p, line);
    if (snoop.forwarded) {
      record_forward_state(p, !snoop.dirty_forward);
      return fill;
    }
    any_shared |= snoop.had_shared;
  }
  record_memory_grant(!any_shared);
  if (any_shared) fill.node_state = pol_.clean_shared_grant;
  return fill;
}

// --- write -------------------------------------------------------------------

void ReferenceModel::write(int core, LineAddr line) {
  ReferenceLine& ls = at(line);
  // Value oracle: every store produces a fresh version, regardless of which
  // protocol path carries it.
  ls.newest_value = ++op_serial_;
  ls.last_writer = core;
  const auto c = static_cast<std::size_t>(core);
  if (ls.l1[c] != Mesif::kInvalid) {
    if (pol_.store_silent(ls.l1[c])) {
      ls.l1[c] = pol_.next(ls.l1[c], protocol::Op::kLocalStore);
      return;  // silent E->M upgrade
    }
  } else if (ls.l2[c] != Mesif::kInvalid) {
    if (pol_.store_silent(ls.l2[c])) {
      ls.l1[c] = Mesif::kModified;
      ls.l2[c] = Mesif::kShared;  // newest copy now in L1
      return;
    }
  }
  if (pol_.update_based) {
    const Fill fill = ca_update(core, line);
    fill_caches(core, line, fill);
    return;
  }
  Fill fill = ca_write(core, line);
  fill.core_state = Mesif::kModified;
  fill_caches(core, line, fill);
}

ReferenceModel::Fill ReferenceModel::ca_write(int core, LineAddr line) {
  ReferenceLine& ls = at(line);
  const int req_node = topo_.node_of_core(core);
  const auto n = static_cast<std::size_t>(req_node);

  Fill fill;
  fill.node_state = Mesif::kExclusive;
  if (ls.l3[n] != Mesif::kInvalid) {
    if (pol_.owns(ls.l3[n])) {
      std::uint32_t others = ls.cv[n] & ~bit_of_core(core);
      if (others != 0) {
        bool dirty = false;
        while (others != 0) {
          const int owner_local = std::countr_zero(others);
          others &= others - 1;
          dirty |= invalidate_core(
              topo_.global_core(topo_.node(req_node).socket, owner_local),
              line);
        }
        if (dirty) ls.l3[n] = Mesif::kModified;
      }
      ls.cv[n] = bit_of_core(core);
      fill.node_state = ls.l3[n];
      return fill;
    }
    // Shared/Forward/Owned at node level: upgrade through the home agent.
    std::uint32_t local_sharers = ls.cv[n] & ~bit_of_core(core);
    while (local_sharers != 0) {
      const int owner_local = std::countr_zero(local_sharers);
      local_sharers &= local_sharers - 1;
      invalidate_core(
          topo_.global_core(topo_.node(req_node).socket, owner_local), line);
    }
    Fill upgrade = home_write(core, req_node, line);
    if (ls.l3[n] != Mesif::kInvalid) {
      ls.l3[n] = Mesif::kExclusive;
      ls.cv[n] = bit_of_core(core);
    }
    upgrade.node_state = Mesif::kExclusive;
    return upgrade;
  }
  return home_write(core, req_node, line);
}

ReferenceModel::Fill ReferenceModel::home_write(int core, int req_node,
                                                LineAddr line) {
  (void)core;
  ReferenceLine& ls = at(line);
  const int h = home_node_of_line(line);

  Fill fill;
  fill.core_state = Mesif::kModified;
  fill.node_state = Mesif::kExclusive;

  const bool from_requester = source_snoop() && !directory_on();
  for (int p = 0; p < topo_.node_count(); ++p) {
    if (p == req_node) continue;
    ++ctr_.snoop_broadcasts;
    const int from = from_requester ? req_node : h;
    if (topo_.crosses_qpi(from, p)) ++ctr_.qpi_snoop_flits;
    snoop_peer_invalidate(p, line);
  }
  ++ctr_.dram_reads;

  if (directory_on() && fault_ != ReferenceFault::kWriteSkipsDirectoryUpdate) {
    const DirState next =
        req_node == h ? DirState::kRemoteInvalid : DirState::kSnoopAll;
    if (dir_set(ls, next)) ++ctr_.directory_updates;
    if (hitme_on()) {
      ls.hitme = false;
      ls.presence = 0;
    }
  }
  return fill;
}

// --- update-based store (Dragon) ---------------------------------------------

ReferenceModel::Fill ReferenceModel::ca_update(int core, LineAddr line) {
  ReferenceLine& ls = at(line);
  const int req_node = topo_.node_of_core(core);
  const auto n = static_cast<std::size_t>(req_node);

  // Write-allocate: a store miss first fills the line like a read.
  if (ls.l3[n] == Mesif::kInvalid) {
    const Fill read_fill = ca_read(core, line);
    fill_caches(core, line, read_fill);
  }

  const std::uint32_t others = ls.cv[n] & ~bit_of_core(core);
  if (pol_.owns(ls.l3[n])) {
    // Node-exclusive: the update never leaves the node; in-node sharers
    // keep their (refreshed, Shared) copies.
    std::uint32_t sharers = others;
    while (sharers != 0) {
      const int owner_local = std::countr_zero(sharers);
      sharers &= sharers - 1;
      snoop_core(topo_.global_core(topo_.node(req_node).socket, owner_local),
                 line, Mesif::kShared);
      ++ctr_.updates_sent;
    }
    ls.l3[n] = Mesif::kModified;
    ls.cv[n] |= bit_of_core(core);
    Fill fill;
    fill.node_state = ls.l3[n];
    fill.core_state = others != 0 ? Mesif::kOwned : Mesif::kModified;
    return fill;
  }
  return home_update(core, req_node, line);
}

ReferenceModel::Fill ReferenceModel::home_update(int core, int req_node,
                                                 LineAddr line) {
  ReferenceLine& ls = at(line);
  const int h = home_node_of_line(line);
  const auto n = static_cast<std::size_t>(req_node);

  const bool from_requester = source_snoop() && !directory_on();
  bool remote_copy = false;
  for (int p = 0; p < topo_.node_count(); ++p) {
    if (p == req_node) continue;
    ++ctr_.snoop_broadcasts;
    const int from = from_requester ? req_node : h;
    if (topo_.crosses_qpi(from, p)) ++ctr_.qpi_snoop_flits;
    remote_copy |= snoop_peer_update(p, line);
  }

  // In-node sharers are refreshed in place.
  std::uint32_t others = ls.cv[n] & ~bit_of_core(core);
  const bool local_sharers = others != 0;
  while (others != 0) {
    const int owner_local = std::countr_zero(others);
    others &= others - 1;
    snoop_core(topo_.global_core(topo_.node(req_node).socket, owner_local),
               line, Mesif::kShared);
    ++ctr_.updates_sent;
  }
  // The writer owns the newest data; surviving remote copies make the node
  // state Owned (dirty-shared) rather than Modified.
  ls.l3[n] = remote_copy ? Mesif::kOwned : Mesif::kModified;
  ls.cv[n] |= bit_of_core(core);

  Fill fill;
  fill.node_state = ls.l3[n];
  fill.core_state =
      (remote_copy || local_sharers) ? Mesif::kOwned : Mesif::kModified;

  if (directory_on()) {
    // Memory is stale after an update: `shared` is never recorded.
    const DirState next = (req_node == h && !remote_copy)
                              ? DirState::kRemoteInvalid
                              : DirState::kSnoopAll;
    if (dir_set(ls, next)) ++ctr_.directory_updates;
    if (hitme_on()) {
      ls.hitme = false;
      ls.presence = 0;
    }
  }
  return fill;
}

// --- flush / placement helpers ----------------------------------------------

void ReferenceModel::flush_line(LineAddr line) {
  ReferenceLine& ls = at(line);
  bool dirty = false;
  for (int node = 0; node < topo_.node_count(); ++node) {
    const auto n = static_cast<std::size_t>(node);
    if (ls.l3[n] == Mesif::kInvalid) continue;
    dirty |= sees_dirty(ls.l3[n]);
    std::uint32_t cv = ls.cv[n];
    while (cv != 0) {
      const int owner_local = std::countr_zero(cv);
      cv &= cv - 1;
      dirty |= invalidate_core(
          topo_.global_core(topo_.node(node).socket, owner_local), line);
    }
    ls.l3[n] = Mesif::kInvalid;
    ls.cv[n] = 0;
  }
  if (dirty && fault_ != ReferenceFault::kFlushDropsWriteback) {
    writeback(line, /*clears_directory=*/true);
  }
  if (directory_on()) {
    if (dir_set(ls, DirState::kRemoteInvalid)) ++ctr_.directory_updates;
    if (hitme_on()) {
      ls.hitme = false;
      ls.presence = 0;
    }
  }
}

void ReferenceModel::evict_core_caches(int core) {
  const auto c = static_cast<std::size_t>(core);
  // L1 drains first (all lines), then the L2 — and the engine's flush
  // callback sees the line still present in the level being flushed, which
  // matters for the core-valid clearing decision in handle_l2_victim.
  for (auto& [line, ls] : lines_) {
    if (ls.l1[c] == Mesif::kInvalid) continue;
    handle_l2_victim(core, line, ls.l1[c], /*l1_still_holds=*/true);
    ls.l1[c] = Mesif::kInvalid;
  }
  for (auto& [line, ls] : lines_) {
    if (ls.l2[c] == Mesif::kInvalid) continue;
    handle_l2_victim(core, line, ls.l2[c], /*l1_still_holds=*/false);
    ls.l2[c] = Mesif::kInvalid;
  }
}

void ReferenceModel::flush_node_l3(int node) {
  const auto n = static_cast<std::size_t>(node);
  for (auto& [line, ls] : lines_) {
    if (ls.l3[n] == Mesif::kInvalid) continue;
    handle_l3_victim(node, line);
  }
}

void ReferenceModel::flush_all() {
  std::vector<LineAddr> touched;
  touched.reserve(lines_.size());
  for (const auto& [line, ls] : lines_) touched.push_back(line);
  std::sort(touched.begin(), touched.end());
  for (const LineAddr line : touched) flush_line(line);
}

std::map<LineAddr, ReferenceModel::MemoryCell> ReferenceModel::memory_image()
    const {
  std::map<LineAddr, MemoryCell> image;
  for (const auto& [line, ls] : lines_) {
    image[line] = MemoryCell{ls.mem_value, ls.last_writer};
  }
  return image;
}

}  // namespace hsw::check
