#include "check/golden.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hsw::check {

namespace {

// Reads all CSV records; strips trailing \r so goldens survive CRLF checkouts.
bool read_records(const std::string& path, std::vector<std::string>& records,
                  std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::string record;
  while (std::getline(in, record)) {
    if (!record.empty() && record.back() == '\r') record.pop_back();
    records.push_back(record);
  }
  return true;
}

bool parse_number(const std::string& cell, double& value) {
  if (cell.empty()) return false;
  const char* begin = cell.c_str();
  char* end = nullptr;
  value = std::strtod(begin, &end);
  return end == begin + cell.size();
}

}  // namespace

std::vector<std::string> split_csv_record(const std::string& record) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < record.size(); ++i) {
    const char c = record[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < record.size() && record[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

bool cells_match(const std::string& golden, const std::string& actual,
                 const GoldenTolerance& tolerance) {
  double g = 0.0;
  double a = 0.0;
  if (parse_number(golden, g) && parse_number(actual, a)) {
    const double diff = std::fabs(g - a);
    const double scale = std::max(std::fabs(g), std::fabs(a));
    return diff <= tolerance.abs || diff <= tolerance.rel * scale;
  }
  return golden == actual;
}

GoldenDiff compare_csv_files(const std::string& golden_path,
                             const std::string& actual_path,
                             const GoldenTolerance& tolerance) {
  GoldenDiff result;
  std::vector<std::string> golden;
  std::vector<std::string> actual;
  if (!read_records(golden_path, golden, result.message) ||
      !read_records(actual_path, actual, result.message)) {
    return result;
  }
  if (golden.size() != actual.size()) {
    std::ostringstream out;
    out << "row count differs: golden " << golden.size() << " rows, actual "
        << actual.size() << " rows";
    result.message = out.str();
    return result;
  }
  for (std::size_t row = 0; row < golden.size(); ++row) {
    const std::vector<std::string> gcells = split_csv_record(golden[row]);
    const std::vector<std::string> acells = split_csv_record(actual[row]);
    if (gcells.size() != acells.size()) {
      std::ostringstream out;
      out << "row " << row + 1 << ": column count differs (golden "
          << gcells.size() << ", actual " << acells.size() << ")";
      result.message = out.str();
      return result;
    }
    for (std::size_t col = 0; col < gcells.size(); ++col) {
      if (!cells_match(gcells[col], acells[col], tolerance)) {
        std::ostringstream out;
        out << "row " << row + 1 << " col " << col + 1 << ": golden \""
            << gcells[col] << "\" vs actual \"" << acells[col] << "\"";
        result.message = out.str();
        return result;
      }
    }
  }
  result.ok = true;
  return result;
}

}  // namespace hsw::check
