#include "check/differential.h"

#include <algorithm>
#include <sstream>

#include "mem/address.h"
#include "metrics/registry.h"
#include "util/rng.h"

namespace hsw::check {

const char* to_string(DiffOp::Kind kind) {
  switch (kind) {
    case DiffOp::Kind::kRead: return "kRead";
    case DiffOp::Kind::kWrite: return "kWrite";
    case DiffOp::Kind::kFlush: return "kFlush";
    case DiffOp::Kind::kEvictCore: return "kEvictCore";
    case DiffOp::Kind::kFlushNode: return "kFlushNode";
  }
  return "?";
}

SystemConfig system_config_for(const DiffConfig& config) {
  SystemConfig sc;
  sc.snoop_mode = config.mode;
  sc.protocol = config.protocol;
  if (config.das) {
    ProtocolFeatures features = ProtocolFeatures::for_mode(config.mode);
    features.directory = true;
    features.hitme = false;
    sc.feature_override = features;
  }
  return sc;
}

namespace {

LineAddr region_base_line(int node) {
  return static_cast<LineAddr>(node) << (kNodeShift - kLineBits);
}

int last_node(const DiffConfig& config) {
  return config.mode == SnoopMode::kCod ? 3 : 1;
}

// Occupancy invariant of the metrics subsystem: the per-level MESIF
// occupancy gauges — refreshed by a census walk over every cache array's
// valid-way bitmask — must sum to the valid-line count each array maintains
// incrementally.  A mismatch means the bitmask, the entry states, and the
// counter have desynchronized (exactly the kind of structural drift the
// uncore gauges exist to expose).
std::optional<std::string> check_occupancy_gauges(
    System& sys, metrics::MetricsRegistry& registry) {
  using MG = metrics::MGauge;
  sys.state().update_structural_gauges(registry);
  const auto& gauges = registry.gauges();
  const auto occ_sum = [&](MG m, MG e, MG s, MG f, MG o) {
    return gauges[static_cast<std::size_t>(m)] +
           gauges[static_cast<std::size_t>(e)] +
           gauges[static_cast<std::size_t>(s)] +
           gauges[static_cast<std::size_t>(f)] +
           gauges[static_cast<std::size_t>(o)];
  };
  std::int64_t l1 = 0;
  std::int64_t l2 = 0;
  std::int64_t l3 = 0;
  for (const CoreCaches& cc : sys.state().cores) {
    l1 += static_cast<std::int64_t>(cc.l1.valid_count());
    l2 += static_cast<std::int64_t>(cc.l2.valid_count());
  }
  for (const auto& socket : sys.state().l3) {
    for (const CacheArray& slice : socket) {
      l3 += static_cast<std::int64_t>(slice.valid_count());
    }
  }
  const struct {
    const char* level;
    std::int64_t gauge_sum;
    std::int64_t valid;
  } checks[] = {
      {"L1",
       occ_sum(MG::kL1OccModified, MG::kL1OccExclusive, MG::kL1OccShared,
               MG::kL1OccForward, MG::kL1OccOwned),
       l1},
      {"L2",
       occ_sum(MG::kL2OccModified, MG::kL2OccExclusive, MG::kL2OccShared,
               MG::kL2OccForward, MG::kL2OccOwned),
       l2},
      {"L3",
       occ_sum(MG::kL3OccModified, MG::kL3OccExclusive, MG::kL3OccShared,
               MG::kL3OccForward, MG::kL3OccOwned),
       l3},
  };
  for (const auto& check : checks) {
    if (check.gauge_sum != check.valid) {
      std::ostringstream out;
      out << check.level << " MESIF occupancy gauges sum to "
          << check.gauge_sum << " but the arrays hold " << check.valid
          << " valid lines";
      return out.str();
    }
  }
  return std::nullopt;
}

// Per-step comparison of every coherence-visible fact the two models share.
std::optional<std::string> compare_states(System& sys, ReferenceModel& ref,
                                          const std::vector<LineAddr>& lines) {
  MachineState& m = sys.state();
  const SystemTopology& topo = m.topo;
  std::ostringstream out;
  auto fail = [&]() -> std::optional<std::string> { return out.str(); };

  for (const LineAddr line : lines) {
    const ReferenceLine& ls = ref.line_state(line);
    for (const NumaNode& node : topo.nodes()) {
      const std::optional<CacheEntry> entry =
          m.l3[static_cast<std::size_t>(node.socket)]
              [static_cast<std::size_t>(m.slice_for(node.id, line))]
                  .peek(line);
      const Mesif real = entry ? entry->state : Mesif::kInvalid;
      const std::uint32_t real_cv = entry ? entry->core_valid : 0;
      const auto n = static_cast<std::size_t>(node.id);
      if (real != ls.l3[n] || (real != Mesif::kInvalid && real_cv != ls.cv[n])) {
        out << "line 0x" << std::hex << line << std::dec << " node " << node.id
            << ": engine L3 " << to_string(real) << " cv=0x" << std::hex
            << real_cv << ", reference " << to_string(ls.l3[n]) << " cv=0x"
            << ls.cv[n] << std::dec;
        return fail();
      }
    }
    for (int core = 0; core < topo.core_count(); ++core) {
      const CoreCaches& cc = m.cores[static_cast<std::size_t>(core)];
      const std::optional<CacheEntry> e1 = cc.l1.peek(line);
      const std::optional<CacheEntry> e2 = cc.l2.peek(line);
      const Mesif real1 = e1 ? e1->state : Mesif::kInvalid;
      const Mesif real2 = e2 ? e2->state : Mesif::kInvalid;
      const auto c = static_cast<std::size_t>(core);
      if (real1 != ls.l1[c] || real2 != ls.l2[c]) {
        out << "line 0x" << std::hex << line << std::dec << " core " << core
            << ": engine L1/L2 " << to_string(real1) << "/" << to_string(real2)
            << ", reference " << to_string(ls.l1[c]) << "/"
            << to_string(ls.l2[c]);
        return fail();
      }
    }
    if (m.features.directory) {
      const DirState real_dir = m.home_of(line).ha->directory.get(line);
      if (real_dir != ls.dir) {
        out << "line 0x" << std::hex << line << std::dec
            << ": engine directory " << to_string(real_dir) << ", reference "
            << to_string(ls.dir);
        return fail();
      }
      if (m.features.hitme) {
        const auto real_hm = m.home_of(line).ha->hitme.peek(line);
        const bool real_present = real_hm.has_value();
        const std::uint8_t real_presence = real_hm ? real_hm->presence : 0;
        if (real_present != ls.hitme ||
            (real_present && real_presence != ls.presence)) {
          out << "line 0x" << std::hex << line << std::dec
              << ": engine HitME " << (real_present ? "present" : "absent")
              << " presence=0x" << std::hex << static_cast<unsigned>(real_presence)
              << ", reference " << (ls.hitme ? "present" : "absent")
              << " presence=0x" << static_cast<unsigned>(ls.presence) << std::dec;
          return fail();
        }
      }
    }
  }

  const CounterSet& ctr = sys.counters();
  const ReferenceCounters& rc = ref.counters();
  const struct {
    Ctr engine;
    std::uint64_t reference;
  } counter_pairs[] = {
      {Ctr::kDramReads, rc.dram_reads},
      {Ctr::kDramWrites, rc.dram_writes},
      {Ctr::kL3WritebacksToMem, rc.l3_writebacks},
      {Ctr::kL3Evictions, rc.l3_evictions},
      {Ctr::kDirectoryUpdates, rc.directory_updates},
      {Ctr::kDirectoryLookups, rc.directory_lookups},
      {Ctr::kCoreSnoops, rc.core_snoops},
      {Ctr::kSnoopsSent, rc.snoops_sent},
      {Ctr::kSnoopBroadcasts, rc.snoop_broadcasts},
      {Ctr::kQpiSnoopFlits, rc.qpi_snoop_flits},
      {Ctr::kUpdatesSent, rc.updates_sent},
      {Ctr::kHitmeHit, rc.hitme_hits},
      {Ctr::kHitmeMiss, rc.hitme_misses},
      {Ctr::kHitmeAlloc, rc.hitme_allocs},
  };
  for (const auto& pair : counter_pairs) {
    if (ctr.value(pair.engine) != pair.reference) {
      out << "counter " << ctr_name(pair.engine) << ": engine "
          << ctr.value(pair.engine) << ", reference " << pair.reference;
      return fail();
    }
  }
  return std::nullopt;
}

void apply_op(System& sys, ReferenceModel& ref, const DiffOp& op) {
  const PhysAddr addr = addr_of(op.line);
  switch (op.kind) {
    case DiffOp::Kind::kRead:
      sys.read(op.core, addr);
      ref.read(op.core, op.line);
      break;
    case DiffOp::Kind::kWrite:
      sys.write(op.core, addr);
      ref.write(op.core, op.line);
      break;
    case DiffOp::Kind::kFlush:
      sys.flush_line(addr);
      ref.flush_line(op.line);
      break;
    case DiffOp::Kind::kEvictCore:
      sys.evict_core_caches(op.core);
      ref.evict_core_caches(op.core);
      break;
    case DiffOp::Kind::kFlushNode: {
      const int node = sys.topology().node_of_core(op.core);
      sys.flush_node_l3(node);
      ref.flush_node_l3(node);
      break;
    }
  }
}

}  // namespace

std::vector<LineAddr> tracked_lines(const DiffConfig& config) {
  std::vector<LineAddr> lines;
  for (const int node : {0, last_node(config)}) {
    const LineAddr base = region_base_line(node);
    for (std::uint64_t i = 0; i < config.lines_per_region; ++i) {
      lines.push_back(base + i);
    }
  }
  return lines;
}

std::vector<DiffOp> random_trace(const DiffConfig& config) {
  Xoshiro256 rng(config.seed);
  const LineAddr base_a = region_base_line(0);
  const LineAddr base_b = region_base_line(last_node(config));
  const SystemTopology topo(
      TopologyConfig{DieSku::kTwelveCore, 2, config.mode});
  const auto cores = static_cast<std::uint64_t>(topo.core_count());

  std::vector<DiffOp> ops;
  ops.reserve(static_cast<std::size_t>(config.steps));
  for (int step = 0; step < config.steps; ++step) {
    DiffOp op;
    const LineAddr base = rng.bernoulli(0.5) ? base_a : base_b;
    op.line = base + rng.bounded(config.lines_per_region);
    op.core = static_cast<int>(rng.bounded(cores));
    const double dice = rng.uniform();
    if (dice < 0.45) {
      op.kind = DiffOp::Kind::kRead;
    } else if (dice < 0.85) {
      op.kind = DiffOp::Kind::kWrite;
    } else if (dice < 0.92) {
      op.kind = DiffOp::Kind::kFlush;
    } else if (dice < 0.97) {
      op.kind = DiffOp::Kind::kEvictCore;
    } else {
      op.kind = DiffOp::Kind::kFlushNode;
    }
    ops.push_back(op);
  }
  return ops;
}

std::optional<Divergence> run_differential(const DiffConfig& config,
                                           const std::vector<DiffOp>& ops) {
  System sys(system_config_for(config));
  ReferenceModel ref(sys.topology(), sys.state().features, config.fault);
  // Sampling interval 0: counters only, no time series.  Attaching here also
  // drags every engine metric site through the randomized op stream.
  metrics::MetricsRegistry registry(0, 0);
  sys.attach_metrics(registry);

  std::vector<LineAddr> lines = tracked_lines(config);
  for (const DiffOp& op : ops) {
    if (std::find(lines.begin(), lines.end(), op.line) == lines.end()) {
      lines.push_back(op.line);
    }
  }

  for (std::size_t step = 0; step < ops.size(); ++step) {
    apply_op(sys, ref, ops[step]);
    if (auto occupancy = check_occupancy_gauges(sys, registry)) {
      std::ostringstream desc;
      desc << "step " << step << " (" << to_string(ops[step].kind) << " core "
           << ops[step].core << " line 0x" << std::hex << ops[step].line
           << std::dec << "): " << *occupancy;
      return Divergence{step, desc.str()};
    }
    if (auto mismatch = compare_states(sys, ref, lines)) {
      std::ostringstream desc;
      desc << "step " << step << " (" << to_string(ops[step].kind) << " core "
           << ops[step].core << " line 0x" << std::hex << ops[step].line
           << std::dec << "): " << *mismatch;
      return Divergence{step, desc.str()};
    }
  }
  return std::nullopt;
}

std::vector<DiffOp> minimize(const DiffConfig& config,
                             std::vector<DiffOp> ops) {
  auto diverges = [&](const std::vector<DiffOp>& candidate) {
    return run_differential(config, candidate);
  };
  auto initial = diverges(ops);
  if (!initial) return ops;  // nothing to minimize
  // Ops after the failing step cannot matter.
  ops.resize(initial->failing_step + 1);

  std::size_t granularity = 2;
  while (ops.size() >= 2) {
    const std::size_t chunk =
        std::max<std::size_t>(1, ops.size() / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < ops.size(); start += chunk) {
      std::vector<DiffOp> candidate;
      candidate.reserve(ops.size());
      candidate.insert(candidate.end(), ops.begin(),
                       ops.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(
          candidate.end(),
          ops.begin() + static_cast<std::ptrdiff_t>(
                            std::min(start + chunk, ops.size())),
          ops.end());
      if (candidate.empty()) continue;
      if (auto div = diverges(candidate)) {
        candidate.resize(div->failing_step + 1);
        ops = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk == 1) break;  // 1-minimal: no single op can be removed
      granularity = std::min(ops.size(), granularity * 2);
    }
  }
  return ops;
}

std::string format_replay(const DiffConfig& config,
                          const std::vector<DiffOp>& ops) {
  std::ostringstream out;
  out << "// Replay with hsw::check::run_differential(config, ops):\n";
  out << "hsw::check::DiffConfig config;\n";
  out << "config.mode = hsw::SnoopMode::"
      << (config.mode == SnoopMode::kSourceSnoop ? "kSourceSnoop"
          : config.mode == SnoopMode::kHomeSnoop ? "kHomeSnoop"
                                                 : "kCod")
      << ";\n";
  if (config.protocol != Protocol::kMesif) {
    out << "config.protocol = hsw::Protocol::"
        << (config.protocol == Protocol::kMesi    ? "kMesi"
            : config.protocol == Protocol::kMoesi ? "kMoesi"
                                                  : "kDragon")
        << ";\n";
  }
  if (config.das) out << "config.das = true;\n";
  out << "std::vector<hsw::check::DiffOp> ops = {\n";
  for (const DiffOp& op : ops) {
    out << "    {hsw::check::DiffOp::Kind::" << to_string(op.kind) << ", "
        << op.core << ", 0x" << std::hex << op.line << std::dec << "ull},\n";
  }
  out << "};\n";
  return out.str();
}

}  // namespace hsw::check
