// Tolerance-aware CSV comparison for golden-figure regression tests.
//
// Goldens under tests/golden/ pin the quick-size output of every fig*/table*
// bench.  Cells that parse as numbers are compared with a relative/absolute
// epsilon (latencies and bandwidths are doubles that may legitimately move
// in the last printed digit); everything else — headers, size labels, state
// names, counter values formatted as integers — must match exactly.
#pragma once

#include <string>
#include <vector>

namespace hsw::check {

struct GoldenTolerance {
  double rel = 1e-3;  // |a-b| <= rel * max(|a|,|b|) passes
  double abs = 5e-3;  // ... or |a-b| <= abs (guards values near zero)
};

struct GoldenDiff {
  bool ok = false;
  std::string message;  // first mismatch, or load error
};

// Splits one RFC-4180 CSV record (quoted fields, embedded commas/quotes).
[[nodiscard]] std::vector<std::string> split_csv_record(
    const std::string& record);

// Compares two cells under the tolerance (numeric if both parse fully as
// doubles, exact string equality otherwise).
[[nodiscard]] bool cells_match(const std::string& golden,
                               const std::string& actual,
                               const GoldenTolerance& tolerance);

// Compares two CSV files cell by cell.
[[nodiscard]] GoldenDiff compare_csv_files(const std::string& golden_path,
                                           const std::string& actual_path,
                                           const GoldenTolerance& tolerance = {});

}  // namespace hsw::check
