// Differential coherence testing: replay random operation sequences through
// the real System/CoherenceEngine and the timing-free ReferenceModel, diff
// the complete coherence-visible state (per-core L1/L2 MESIF, per-node L3
// state + core-valid bits, directory + HitME view, protocol counters) after
// every step, and shrink any failing trace to a minimal repro.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/reference_model.h"
#include "machine/system.h"

namespace hsw::check {

struct DiffOp {
  enum class Kind : std::uint8_t {
    kRead,
    kWrite,
    kFlush,       // clflush of `line` (core unused)
    kEvictCore,   // drain `core`'s L1+L2 into its L3 (line unused)
    kFlushNode,   // evict the whole L3 of `core`'s node (line unused)
  };
  Kind kind = Kind::kRead;
  int core = 0;
  LineAddr line = 0;

  friend bool operator==(const DiffOp&, const DiffOp&) = default;
};

[[nodiscard]] const char* to_string(DiffOp::Kind kind);

struct DiffConfig {
  SnoopMode mode = SnoopMode::kSourceSnoop;
  // Coherence-protocol family both models run (every protocol × snoop-mode
  // cell is a valid differential configuration).
  Protocol protocol = Protocol::kMesif;
  // Directory-assisted snoop without the HitME cache (classic DAS ablation;
  // exercises the DirState::kShared paths).
  bool das = false;
  std::uint64_t seed = 1;
  int steps = 1200;
  // Lines per region; two regions (first and last node's memory).  Must stay
  // small enough that no cache in the system can suffer a capacity eviction,
  // otherwise the reference model's no-replacement assumption breaks.
  std::uint64_t lines_per_region = 48;
  ReferenceFault fault = ReferenceFault::kNone;
};

// The SystemConfig the differential run instantiates (paper topology with
// the requested snoop mode / ablation).
[[nodiscard]] SystemConfig system_config_for(const DiffConfig& config);

// The line addresses the two regions cover (and the comparator checks).
[[nodiscard]] std::vector<LineAddr> tracked_lines(const DiffConfig& config);

// Randomized trace over the two regions, same op mix as the invariant fuzz.
[[nodiscard]] std::vector<DiffOp> random_trace(const DiffConfig& config);

struct Divergence {
  std::size_t failing_step = 0;  // index into the replayed trace
  std::string description;
};

// Replays `ops` through a fresh System and a fresh ReferenceModel, comparing
// after every step.  Returns the first divergence, or nullopt if the models
// agree over the whole trace.
[[nodiscard]] std::optional<Divergence> run_differential(
    const DiffConfig& config, const std::vector<DiffOp>& ops);

// Delta-debugging (ddmin) shrink of a diverging trace: returns a subsequence
// that still diverges and from which no single chunk removal preserves the
// divergence.  `ops` must diverge under `config`.
[[nodiscard]] std::vector<DiffOp> minimize(const DiffConfig& config,
                                           std::vector<DiffOp> ops);

// Renders a trace as a compilable C++ literal (paste into a test to replay).
[[nodiscard]] std::string format_replay(const DiffConfig& config,
                                        const std::vector<DiffOp>& ops);

}  // namespace hsw::check
