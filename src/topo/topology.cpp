#include "topo/topology.h"

#include <cassert>
#include <stdexcept>

namespace hsw {
namespace {

// Crossing the buffered inter-ring queue costs roughly two ring hops.
constexpr double kBridgePenaltyHops = 2.0;

RingFabric build_fabric(DieSku sku) {
  switch (sku) {
    case DieSku::kEightCore:
      // cores 0-7, IMC0, QPI, PCIe on one ring.
      return RingFabric({Ring(11)}, {}, kBridgePenaltyHops);
    case DieSku::kTwelveCore:
      // ring0: cores 0-7 + IMC0 + QPI + PCIe; ring1: cores 8-11 + IMC1.
      return RingFabric({Ring(11), Ring(5)},
                        {RingBridge{{0, 0}, {1, 0}}, RingBridge{{0, 7}, {1, 3}}},
                        kBridgePenaltyHops);
    case DieSku::kEighteenCore:
      // ring0: cores 0-7 + IMC0 + QPI + PCIe; ring1: cores 8-17 + IMC1.
      return RingFabric({Ring(11), Ring(11)},
                        {RingBridge{{0, 0}, {1, 0}}, RingBridge{{0, 7}, {1, 9}}},
                        kBridgePenaltyHops);
  }
  throw std::invalid_argument("unknown DieSku");
}

}  // namespace

const char* to_string(DieSku sku) {
  switch (sku) {
    case DieSku::kEightCore: return "8-core die";
    case DieSku::kTwelveCore: return "12-core die";
    case DieSku::kEighteenCore: return "18-core die";
  }
  return "?";
}

int cores_per_die(DieSku sku) {
  switch (sku) {
    case DieSku::kEightCore: return 8;
    case DieSku::kTwelveCore: return 12;
    case DieSku::kEighteenCore: return 18;
  }
  return 0;
}

int imcs_per_die(DieSku sku) { return sku == DieSku::kEightCore ? 1 : 2; }

const char* to_string(SnoopMode mode) {
  switch (mode) {
    case SnoopMode::kSourceSnoop: return "source snoop (Early Snoop enabled)";
    case SnoopMode::kHomeSnoop: return "home snoop (Early Snoop disabled)";
    case SnoopMode::kCod: return "Cluster-on-Die";
  }
  return "?";
}

Die::Die(DieSku sku)
    : sku_(sku),
      core_count_(cores_per_die(sku)),
      imc_count_(imcs_per_die(sku)),
      fabric_(build_fabric(sku)) {
  core_stops_.reserve(static_cast<std::size_t>(core_count_));
  const int ring0_cores = core_count_ > 8 ? 8 : core_count_;
  for (int c = 0; c < ring0_cores; ++c) core_stops_.push_back(RingStop{0, c});
  for (int c = ring0_cores; c < core_count_; ++c) {
    core_stops_.push_back(RingStop{1, c - ring0_cores});
  }
  imc_stops_.push_back(RingStop{0, 8});  // IMC0 next to the last ring-0 core
  if (imc_count_ == 2) {
    imc_stops_.push_back(RingStop{1, core_count_ - ring0_cores});
  }
  qpi_stop_ = RingStop{0, 9};
}

RingStop Die::core_stop(int local_core) const {
  assert(local_core >= 0 && local_core < core_count_);
  return core_stops_[static_cast<std::size_t>(local_core)];
}

RingStop Die::slice_stop(int local_slice) const { return core_stop(local_slice); }

RingStop Die::imc_stop(int imc) const {
  assert(imc >= 0 && imc < imc_count_);
  return imc_stops_[static_cast<std::size_t>(imc)];
}

int Die::ring_of_core(int local_core) const { return core_stop(local_core).ring; }

std::vector<int> Die::cod_cluster_cores(int cluster) const {
  assert(cluster == 0 || cluster == 1);
  assert(supports_cod());
  std::vector<int> cores;
  const int half = core_count_ / 2;
  const int begin = cluster == 0 ? 0 : half;
  const int end = cluster == 0 ? half : core_count_;
  for (int c = begin; c < end; ++c) cores.push_back(c);
  return cores;
}

SystemTopology::SystemTopology(const TopologyConfig& config) : config_(config) {
  if (config.sockets < 1 || config.sockets > 2) {
    throw std::invalid_argument("SystemTopology supports 1 or 2 sockets");
  }
  for (int s = 0; s < config.sockets; ++s) dies_.emplace_back(config.sku);
  const Die& die0 = dies_.front();
  if (cod() && !die0.supports_cod()) {
    throw std::invalid_argument(
        "Cluster-on-Die requires a die with two memory controllers");
  }

  const int per_die = die0.core_count();
  core_to_node_.assign(static_cast<std::size_t>(per_die * config.sockets), 0);
  for (int s = 0; s < config.sockets; ++s) {
    if (cod()) {
      for (int cluster = 0; cluster < 2; ++cluster) {
        NumaNode node;
        node.id = s * 2 + cluster;
        node.socket = s;
        node.cluster = cluster;
        node.local_slices = dies_[static_cast<std::size_t>(s)].cod_cluster_cores(cluster);
        for (int local : node.local_slices) {
          node.cores.push_back(global_core(s, local));
          core_to_node_[static_cast<std::size_t>(global_core(s, local))] = node.id;
        }
        node.imcs = {cluster};
        nodes_.push_back(std::move(node));
      }
    } else {
      NumaNode node;
      node.id = s;
      node.socket = s;
      node.cluster = 0;
      for (int local = 0; local < per_die; ++local) {
        node.cores.push_back(global_core(s, local));
        node.local_slices.push_back(local);
        core_to_node_[static_cast<std::size_t>(global_core(s, local))] = node.id;
      }
      for (int imc = 0; imc < die0.imc_count(); ++imc) node.imcs.push_back(imc);
      nodes_.push_back(std::move(node));
    }
  }
}

int SystemTopology::core_count() const {
  return dies_.front().core_count() * config_.sockets;
}

const Die& SystemTopology::die(int socket) const {
  assert(socket >= 0 && socket < config_.sockets);
  return dies_[static_cast<std::size_t>(socket)];
}

int SystemTopology::socket_of_core(int core) const {
  assert(core >= 0 && core < core_count());
  return core / dies_.front().core_count();
}

int SystemTopology::local_core(int core) const {
  return core % dies_.front().core_count();
}

int SystemTopology::global_core(int socket, int local) const {
  return socket * dies_.front().core_count() + local;
}

const NumaNode& SystemTopology::node(int id) const {
  assert(id >= 0 && id < node_count());
  return nodes_[static_cast<std::size_t>(id)];
}

int SystemTopology::node_of_core(int core) const {
  assert(core >= 0 && core < core_count());
  return core_to_node_[static_cast<std::size_t>(core)];
}

int SystemTopology::internode_hops(int node_a, int node_b) const {
  const NumaNode& a = node(node_a);
  const NumaNode& b = node(node_b);
  if (a.id == b.id) return 0;
  if (a.socket == b.socket) return 1;  // on-chip cluster crossing
  // QPI attaches to ring 0, which hosts cluster 0.  A cluster-1 endpoint
  // pays one extra on-chip crossing to reach (or leave) the QPI agent.
  int hops = 1;  // the QPI crossing itself
  if (a.cluster == 1) ++hops;
  if (b.cluster == 1) ++hops;
  return hops;
}

bool SystemTopology::crosses_qpi(int node_a, int node_b) const {
  return node(node_a).socket != node(node_b).socket;
}

double SystemTopology::mean_core_to_ca_hops(int core) const {
  const int socket = socket_of_core(core);
  const Die& d = die(socket);
  const NumaNode& n = node(node_of_core(core));
  std::vector<RingStop> targets;
  targets.reserve(n.local_slices.size());
  for (int slice : n.local_slices) targets.push_back(d.slice_stop(slice));
  return d.fabric().mean_distance(d.core_stop(local_core(core)), targets);
}

double SystemTopology::mean_ca_to_imc_hops(int node_id) const {
  const NumaNode& n = node(node_id);
  const Die& d = die(n.socket);
  double total = 0.0;
  for (int slice : n.local_slices) {
    double per_slice = 0.0;
    for (int imc : n.imcs) {
      per_slice += d.fabric().distance(d.slice_stop(slice), d.imc_stop(imc));
    }
    total += per_slice / static_cast<double>(n.imcs.size());
  }
  return total / static_cast<double>(n.local_slices.size());
}

double SystemTopology::mean_core_to_imc_hops(int core) const {
  const int socket = socket_of_core(core);
  const Die& d = die(socket);
  const NumaNode& n = node(node_of_core(core));
  double total = 0.0;
  for (int imc : n.imcs) {
    total += d.fabric().distance(d.core_stop(local_core(core)), d.imc_stop(imc));
  }
  return total / static_cast<double>(n.imcs.size());
}

double SystemTopology::mean_qpi_to_imc_hops(int node_id) const {
  const NumaNode& n = node(node_id);
  const Die& d = die(n.socket);
  double total = 0.0;
  for (int imc : n.imcs) {
    total += d.fabric().distance(d.qpi_stop(), d.imc_stop(imc));
  }
  return total / static_cast<double>(n.imcs.size());
}

double SystemTopology::mean_ca_to_qpi_hops(int node_id) const {
  const NumaNode& n = node(node_id);
  const Die& d = die(n.socket);
  double total = 0.0;
  for (int slice : n.local_slices) {
    total += d.fabric().distance(d.slice_stop(slice), d.qpi_stop());
  }
  return total / static_cast<double>(n.local_slices.size());
}

}  // namespace hsw
