// Physical system topology: dies, sockets, NUMA nodes, QPI.
//
// Models the three Haswell-EP die variants (paper §III-B): an eight-core die
// with a single ring, and 12-/18-core dies with two rings coupled by buffered
// queues.  Each core is co-located with one L3 slice/CBo at the same ring
// stop.  The first ring additionally hosts the first memory controller (IMC0),
// the QPI agent, and PCIe; the second ring hosts IMC1.
//
// Cluster-on-Die (COD) partitions a die into two clusters with an equal
// number of cores, each owning one IMC.  Crucially — and this drives the
// paper's Table III asymmetry — the *cluster* split does not match the *ring*
// split on the 12-core die: cluster0 is cores 0-5 (all on ring0), cluster1 is
// cores 6-7 (ring0) plus 8-11 (ring1), served by IMC1 on ring1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topo/ring.h"

namespace hsw {

enum class DieSku : std::uint8_t {
  kEightCore,    // 1 ring, 1 IMC with all four channels
  kTwelveCore,   // 2 rings: 8 cores + 4 cores (the paper's test system)
  kEighteenCore  // 2 rings: 8 cores + 10 cores
};

[[nodiscard]] const char* to_string(DieSku sku);
[[nodiscard]] int cores_per_die(DieSku sku);
[[nodiscard]] int imcs_per_die(DieSku sku);

// One die (one socket).  Local core / slice ids are 0..cores-1.
class Die {
 public:
  explicit Die(DieSku sku);

  [[nodiscard]] DieSku sku() const { return sku_; }
  [[nodiscard]] int core_count() const { return core_count_; }
  [[nodiscard]] int imc_count() const { return imc_count_; }
  [[nodiscard]] const RingFabric& fabric() const { return fabric_; }

  [[nodiscard]] RingStop core_stop(int local_core) const;
  // L3 slice i (CBo i) shares core i's ring stop.
  [[nodiscard]] RingStop slice_stop(int local_slice) const;
  [[nodiscard]] RingStop imc_stop(int imc) const;
  [[nodiscard]] RingStop qpi_stop() const { return qpi_stop_; }

  // Which ring a local core sits on (0 or 1).
  [[nodiscard]] int ring_of_core(int local_core) const;

  // COD support: requires two IMCs (one per cluster).
  [[nodiscard]] bool supports_cod() const { return imc_count_ == 2; }
  // Local core ids belonging to COD cluster 0 / 1 (equal split, in id order).
  [[nodiscard]] std::vector<int> cod_cluster_cores(int cluster) const;

 private:
  DieSku sku_;
  int core_count_;
  int imc_count_;
  std::vector<RingStop> core_stops_;
  std::vector<RingStop> imc_stops_;
  RingStop qpi_stop_;
  RingFabric fabric_;
};

// Snoop behaviour of the platform (BIOS "Early Snoop" and COD knobs).
enum class SnoopMode : std::uint8_t {
  kSourceSnoop,  // default: CAs broadcast snoops on L3 miss
  kHomeSnoop,    // Early Snoop disabled: HAs send snoops
  kCod           // Cluster-on-Die: home snoop + directory + HitME cache
};

[[nodiscard]] const char* to_string(SnoopMode mode);

// A NUMA node as exposed to the operating system.
struct NumaNode {
  int id = 0;
  int socket = 0;
  int cluster = 0;                // 0 in non-COD
  std::vector<int> cores;         // global core ids
  std::vector<int> local_slices;  // local slice ids on the socket
  std::vector<int> imcs;          // local IMC ids owned by this node
};

struct TopologyConfig {
  DieSku sku = DieSku::kTwelveCore;
  int sockets = 2;
  SnoopMode snoop_mode = SnoopMode::kSourceSnoop;
};

// The full machine: `sockets` identical dies joined by QPI links between
// their ring-0 QPI agents, partitioned into NUMA nodes.
class SystemTopology {
 public:
  explicit SystemTopology(const TopologyConfig& config);

  [[nodiscard]] const TopologyConfig& config() const { return config_; }
  [[nodiscard]] bool cod() const { return config_.snoop_mode == SnoopMode::kCod; }
  [[nodiscard]] int socket_count() const { return config_.sockets; }
  [[nodiscard]] int core_count() const;
  [[nodiscard]] const Die& die(int socket) const;

  [[nodiscard]] int socket_of_core(int global_core) const;
  [[nodiscard]] int local_core(int global_core) const;
  [[nodiscard]] int global_core(int socket, int local_core) const;

  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const NumaNode& node(int id) const;
  [[nodiscard]] int node_of_core(int global_core) const;
  [[nodiscard]] std::span<const NumaNode> nodes() const { return nodes_; }

  // Coarse inter-node hop count: 0 same node, +1 per on-chip cluster
  // crossing, +1 per QPI crossing.  Matches the paper's Fig. 6 taxonomy
  // (node0-node2 = 1 hop, node0-node3 / node1-node2 = 2, node1-node3 = 3).
  [[nodiscard]] int internode_hops(int node_a, int node_b) const;
  // True when the path between the nodes crosses QPI (different sockets).
  [[nodiscard]] bool crosses_qpi(int node_a, int node_b) const;

  // Mean one-way ring distance from a core to the CA slices of its own node
  // (uniform address interleaving).  This is the quantity behind the
  // per-core L3 latency differences in COD mode (Table III columns).
  [[nodiscard]] double mean_core_to_ca_hops(int global_core) const;
  // Mean one-way ring distance from a node's CA slices to one of its IMCs.
  [[nodiscard]] double mean_ca_to_imc_hops(int node_id) const;
  // Mean one-way distance from a core to its node's IMC-adjacent HA.
  [[nodiscard]] double mean_core_to_imc_hops(int global_core) const;
  // Mean one-way distance from a node's CAs to the die's QPI agent.
  [[nodiscard]] double mean_ca_to_qpi_hops(int node_id) const;
  // Mean one-way distance from the die's QPI agent to the node's IMCs —
  // the home-side ring segment an incoming remote request traverses.
  [[nodiscard]] double mean_qpi_to_imc_hops(int node_id) const;

 private:
  TopologyConfig config_;
  std::vector<Die> dies_;
  std::vector<NumaNode> nodes_;
  std::vector<int> core_to_node_;
};

}  // namespace hsw
