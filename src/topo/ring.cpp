#include "topo/ring.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

namespace hsw {

Ring::Ring(int size) : size_(size) { assert(size > 0); }

int Ring::distance(int from, int to) const {
  assert(from >= 0 && from < size_ && to >= 0 && to < size_);
  const int forward = std::abs(to - from);
  return std::min(forward, size_ - forward);
}

double Ring::mean_distance(int from, std::span<const int> targets) const {
  if (targets.empty()) return 0.0;
  double total = 0.0;
  for (int t : targets) total += distance(from, t);
  return total / static_cast<double>(targets.size());
}

RingFabric::RingFabric(std::vector<Ring> rings, std::vector<RingBridge> bridges,
                       double bridge_penalty_hops)
    : rings_(std::move(rings)),
      bridges_(std::move(bridges)),
      bridge_penalty_hops_(bridge_penalty_hops) {
  assert(!rings_.empty());
}

double RingFabric::distance(RingStop from, RingStop to) const {
  if (from.ring == to.ring) {
    return rings_[static_cast<std::size_t>(from.ring)].distance(from.stop, to.stop);
  }
  assert(!bridges_.empty() && "cross-ring transfer without a bridge");
  // Choose whichever bridge minimises total path length.  Bridges store one
  // stop per ring; orient them relative to (from, to).
  double best = std::numeric_limits<double>::infinity();
  for (const RingBridge& bridge : bridges_) {
    const RingStop& near_side =
        bridge.side_a.ring == from.ring ? bridge.side_a : bridge.side_b;
    const RingStop& far_side =
        bridge.side_a.ring == to.ring ? bridge.side_a : bridge.side_b;
    assert(near_side.ring == from.ring && far_side.ring == to.ring);
    const double cost =
        rings_[static_cast<std::size_t>(from.ring)].distance(from.stop, near_side.stop) +
        bridge_penalty_hops_ +
        rings_[static_cast<std::size_t>(to.ring)].distance(far_side.stop, to.stop);
    best = std::min(best, cost);
  }
  return best;
}

double RingFabric::mean_distance(RingStop from,
                                 std::span<const RingStop> targets) const {
  if (targets.empty()) return 0.0;
  double total = 0.0;
  for (const RingStop& t : targets) total += distance(from, t);
  return total / static_cast<double>(targets.size());
}

}  // namespace hsw
