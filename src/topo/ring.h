// Bi-directional ring interconnect model.
//
// Haswell-EP connects cores, L3 slices (CBos), memory controllers, QPI and
// PCIe through one or two bi-directional rings (paper Fig. 1).  A ring is a
// cycle of `size` stops; a transfer between two stops takes the shorter
// direction, which is what the bi-directional design buys.  The 12- and
// 18-core dies have two rings coupled by two buffered queues; crossing a
// queue costs extra cycles and lands the message on the peer ring.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hsw {

// A stop index is a position on a ring, 0..size-1.
class Ring {
 public:
  explicit Ring(int size);

  [[nodiscard]] int size() const { return size_; }

  // Minimal hop count between two stops going the shorter way around.
  [[nodiscard]] int distance(int from, int to) const;

  // Mean distance from `from` to each stop in `targets` (uniform weighting,
  // which matches address-hash interleaving across L3 slices).
  [[nodiscard]] double mean_distance(int from, std::span<const int> targets) const;

 private:
  int size_;
};

// Location of an agent in a (possibly multi-ring) die.
struct RingStop {
  int ring = 0;  // which ring of the die
  int stop = 0;  // position on that ring
};

// A pair of buffered queues ("Sbox"es) coupling two rings.  Each queue has a
// stop on both rings; a cross-ring message picks the queue that minimises
// total distance.
struct RingBridge {
  RingStop side_a;  // stop on ring A
  RingStop side_b;  // stop on ring B
};

// Hop metric for a die with one or two rings.  `bridge_penalty_hops` is the
// extra cost of traversing the buffered inter-ring queue, expressed in
// equivalent ring hops.
class RingFabric {
 public:
  RingFabric(std::vector<Ring> rings, std::vector<RingBridge> bridges,
             double bridge_penalty_hops);

  [[nodiscard]] int ring_count() const { return static_cast<int>(rings_.size()); }
  [[nodiscard]] const Ring& ring(int i) const { return rings_[static_cast<std::size_t>(i)]; }

  // One-way distance (in hops; fractional because of the bridge penalty)
  // between two stops, possibly on different rings.
  [[nodiscard]] double distance(RingStop from, RingStop to) const;

  // Mean one-way distance from `from` to each stop in `targets`.
  [[nodiscard]] double mean_distance(RingStop from,
                                     std::span<const RingStop> targets) const;

  [[nodiscard]] bool crosses_bridge(RingStop from, RingStop to) const {
    return from.ring != to.ring;
  }

 private:
  std::vector<Ring> rings_;
  std::vector<RingBridge> bridges_;
  double bridge_penalty_hops_;
};

}  // namespace hsw
