// hswsim-report: inspect and diff the --metrics JSON run reports.
//
//   hswsim-report show FILE              summary table of one report
//   hswsim-report diff A B [--rel R] [--abs A] [--force]
//
// diff compares every metric key tolerance-aware with the same cell
// machinery the golden-figure regression uses (src/check/golden.h):
// numeric values within rel/abs epsilon pass, everything else must match
// exactly.  Manifest fields are provenance, not metrics — differences are
// printed but do not fail the diff, with one exception: reports from
// different coherence-protocol families are refused outright (the engine
// counters change meaning across transition tables) unless --force is
// given.  Exit 0 = reports match, 1 = metric mismatch or refused
// cross-protocol diff, 2 = usage or unreadable/invalid report.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "check/golden.h"
#include "metrics/report.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using FlatReport = std::map<std::string, std::string>;

int usage() {
  std::fprintf(stderr,
               "usage: hswsim-report show FILE\n"
               "       hswsim-report diff A B [--rel R] [--abs A] [--force]\n");
  return 2;
}

// Reports written before the protocol axis existed carry no manifest
// protocol; they could only have simulated MESIF.
[[nodiscard]] std::string protocol_of(const FlatReport& report) {
  const auto it = report.find("manifest.protocol");
  return it == report.end() ? std::string{"mesif"} : it->second;
}

bool load(const std::string& path, FlatReport* out) {
  auto parsed = hsw::metrics::parse_report_flat(path);
  if (!parsed) {
    std::fprintf(stderr, "hswsim-report: '%s' is not a readable metrics report\n",
                 path.c_str());
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

[[nodiscard]] std::string lookup(const FlatReport& report,
                                 const std::string& key) {
  const auto it = report.find(key);
  return it == report.end() ? std::string{} : it->second;
}

int show(const FlatReport& report, const std::string& path) {
  std::printf("metrics report %s (version %s)\n", path.c_str(),
              lookup(report, "hswsim_metrics_version").c_str());
  hsw::Table manifest({"manifest", "value"});
  for (const auto& [key, value] : report) {
    if (key.starts_with("manifest.")) {
      manifest.add_row({key.substr(sizeof("manifest.") - 1), value});
    }
  }
  manifest.add_row({"accesses", lookup(report, "accesses")});
  manifest.add_row({"streams", lookup(report, "streams")});
  std::printf("%s\n", manifest.to_string().c_str());

  hsw::Table counters({"counter", "value"});
  for (const auto& [key, value] : report) {
    const bool counter_like = key.starts_with("counters.") ||
                              key.starts_with("engine_counters.") ||
                              key.starts_with("meters.") ||
                              key.starts_with("gauges.");
    if (counter_like && value != "0" && value != "0.000000") {
      counters.add_row({key, value});
    }
  }
  std::printf("nonzero counters, meters, and final gauges\n%s\n",
              counters.to_string().c_str());
  return 0;
}

int diff(const FlatReport& a, const FlatReport& b, const std::string& path_a,
         const std::string& path_b, const hsw::check::GoldenTolerance& tol,
         bool force) {
  if (lookup(a, "hswsim_metrics_version") !=
      lookup(b, "hswsim_metrics_version")) {
    std::fprintf(stderr, "hswsim-report: version mismatch (%s vs %s)\n",
                 lookup(a, "hswsim_metrics_version").c_str(),
                 lookup(b, "hswsim_metrics_version").c_str());
    return 1;
  }
  if (protocol_of(a) != protocol_of(b)) {
    if (!force) {
      std::fprintf(stderr,
                   "hswsim-report: refusing to diff across coherence "
                   "protocols (%s ran %s, %s ran %s); the engine counters "
                   "are not comparable — pass --force to diff anyway\n",
                   path_a.c_str(), protocol_of(a).c_str(), path_b.c_str(),
                   protocol_of(b).c_str());
      return 1;
    }
    std::printf("note: cross-protocol diff forced (%s vs %s)\n",
                protocol_of(a).c_str(), protocol_of(b).c_str());
  }

  std::vector<std::string> keys;
  for (const auto& [key, value] : a) keys.push_back(key);
  for (const auto& [key, value] : b) {
    if (!a.contains(key)) keys.push_back(key);
  }

  hsw::Table table({"key", path_a, path_b});
  std::size_t mismatches = 0;
  std::size_t manifest_diffs = 0;
  constexpr std::size_t kMaxRows = 40;
  for (const std::string& key : keys) {
    const bool in_a = a.contains(key);
    const bool in_b = b.contains(key);
    const std::string va = in_a ? a.at(key) : "<missing>";
    const std::string vb = in_b ? b.at(key) : "<missing>";
    const bool match =
        in_a && in_b && hsw::check::cells_match(va, vb, tol);
    if (match) continue;
    if (key.starts_with("manifest.")) {
      ++manifest_diffs;
      continue;
    }
    ++mismatches;
    if (mismatches <= kMaxRows) table.add_row({key, va, vb});
  }

  if (manifest_diffs > 0) {
    std::printf("note: %zu manifest field(s) differ (provenance only)\n",
                manifest_diffs);
  }
  if (mismatches == 0) {
    std::printf("reports match (rel %g, abs %g)\n", tol.rel, tol.abs);
    return 0;
  }
  std::printf("%zu metric key(s) differ (rel %g, abs %g)%s\n%s", mismatches,
              tol.rel, tol.abs,
              mismatches > kMaxRows ? ", first 40 shown" : "",
              table.to_string().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  hsw::CommandLine cli(
      "inspect (show) or tolerance-diff (diff) hswsim --metrics reports");
  hsw::check::GoldenTolerance tol;
  bool force = false;
  cli.add_double("rel", &tol.rel, "relative tolerance for numeric values");
  cli.add_double("abs", &tol.abs, "absolute tolerance for numeric values");
  cli.add_bool("force", &force,
               "diff reports even when their coherence protocols differ");
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kHelp:
      return 0;
    case hsw::CommandLine::ParseStatus::kError:
      return 2;
    case hsw::CommandLine::ParseStatus::kOk:
      break;
  }
  const std::vector<std::string>& pos = cli.positional();
  if (pos.empty()) return usage();

  if (pos[0] == "show" && pos.size() == 2) {
    FlatReport report;
    if (!load(pos[1], &report)) return 2;
    return show(report, pos[1]);
  }
  if (pos[0] == "diff" && pos.size() == 3) {
    FlatReport a;
    FlatReport b;
    if (!load(pos[1], &a) || !load(pos[2], &b)) return 2;
    return diff(a, b, pos[1], pos[2], tol, force);
  }
  return usage();
}
