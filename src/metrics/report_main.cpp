// hswsim-report: inspect and diff the --metrics / --linestats JSON reports.
//
//   hswsim-report show FILE              summary table of one report (plus
//                                        a listing of which sections the
//                                        file carries)
//   hswsim-report lines FILE             flight-recorder sharing summary +
//                                        top contended lines
//   hswsim-report transitions FILE       per-level state-transition matrix
//   hswsim-report bottlenecks FILE       per-resource queueing telemetry
//                                        ranked by utilization
//   hswsim-report cache FILE             hswsim-serve result-cache stats
//                                        (hit/miss counters, occupancy,
//                                        resident entries in LRU order)
//   hswsim-report diff A B [--rel R] [--abs A] [--force]
//
// diff compares every metric key tolerance-aware with the same cell
// machinery the golden-figure regression uses (src/check/golden.h):
// numeric values within rel/abs epsilon pass, everything else must match
// exactly.  Linestats keys (patterns, residency, the transition matrix,
// top lines) flatten to dotted keys and diff through the same path.
// Manifest fields are provenance, not metrics — differences are printed
// but do not fail the diff, with one exception: reports from different
// coherence-protocol families are refused outright (the engine counters
// change meaning across transition tables) unless --force is given.
// Exit 0 = reports match, 1 = metric mismatch, refused cross-protocol
// diff, or a missing/malformed/unknown-version report, 2 = usage.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "check/golden.h"
#include "metrics/report.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using FlatReport = std::map<std::string, std::string>;

int usage() {
  std::fprintf(stderr,
               "usage: hswsim-report show FILE\n"
               "       hswsim-report lines FILE\n"
               "       hswsim-report transitions FILE\n"
               "       hswsim-report bottlenecks FILE\n"
               "       hswsim-report cache FILE\n"
               "       hswsim-report diff A B [--rel R] [--abs A] [--force]\n");
  return 2;
}

// Reports written before the protocol axis existed carry no manifest
// protocol; they could only have simulated MESIF.
[[nodiscard]] std::string protocol_of(const FlatReport& report) {
  const auto it = report.find("manifest.protocol");
  return it == report.end() ? std::string{"mesif"} : it->second;
}

// Loads and validates one report; 0 on success, 1 with a cause-specific
// message otherwise (CI greps these, so each failure mode names itself).
int load(const std::string& path, FlatReport* out) {
  using hsw::metrics::ReportLoadError;
  switch (hsw::metrics::load_report_flat(path, out)) {
    case ReportLoadError::kOk:
      return 0;
    case ReportLoadError::kUnreadable:
      std::fprintf(stderr,
                   "hswsim-report: cannot read '%s': no such file or not "
                   "readable\n",
                   path.c_str());
      return 1;
    case ReportLoadError::kMalformed:
      std::fprintf(stderr,
                   "hswsim-report: '%s' is not a valid report: malformed or "
                   "truncated JSON\n",
                   path.c_str());
      return 1;
    case ReportLoadError::kUnknownVersion:
      std::fprintf(stderr,
                   "hswsim-report: '%s' has an unknown report version "
                   "(expected hswsim_metrics_version, "
                   "hswsim_linestats_version, hswsim_resources_version, or "
                   "hswsim_cache_version = %d); regenerate the report with "
                   "this build\n",
                   path.c_str(), hsw::metrics::kReportVersion);
      return 1;
  }
  return 1;
}

[[nodiscard]] std::string lookup(const FlatReport& report,
                                 const std::string& key) {
  const auto it = report.find(key);
  return it == report.end() ? std::string{} : it->second;
}

// All report flavours share the version value; the key names the flavour.
[[nodiscard]] std::string version_of(const FlatReport& report) {
  for (const char* key : {"hswsim_metrics_version", "hswsim_linestats_version",
                          "hswsim_resources_version", "hswsim_cache_version"}) {
    const std::string version = lookup(report, key);
    if (!version.empty()) return version;
  }
  return {};
}

// The flight-recorder section is present in --linestats reports and in
// --metrics reports from runs that also set --linestats.
[[nodiscard]] bool has_linestats(const FlatReport& report) {
  return !lookup(report, "linestats.hswsim_linestats_version").empty();
}

int require_linestats(const FlatReport& report, const std::string& path) {
  if (has_linestats(report)) return 0;
  std::fprintf(stderr,
               "hswsim-report: %s has no linestats section; rerun the bench "
               "with --linestats (or --metrics together with --linestats)\n",
               path.c_str());
  return 1;
}

// The resources section is present in --resstats reports and in --metrics
// reports from simulated-engine runs that also set --resstats.
[[nodiscard]] bool has_resources(const FlatReport& report) {
  return !lookup(report, "resources.hswsim_resources_version").empty();
}

int require_resources(const FlatReport& report, const std::string& path) {
  if (has_resources(report)) return 0;
  std::fprintf(stderr,
               "hswsim-report: %s has no resources section; rerun the bench "
               "with --engine simulated and --resstats (or --metrics "
               "together with --resstats)\n",
               path.c_str());
  return 1;
}

// `bottlenecks` view: every simulated FIFO resource ranked by busy-fraction
// utilization (ties broken by total queueing wait), so the saturated box —
// the bottleneck — tops the table.
int bottlenecks_view(const FlatReport& report, const std::string& path) {
  if (require_resources(report, path) != 0) return 1;
  std::printf("resource telemetry %s (%s streams, %s ns simulated)\n",
              path.c_str(), lookup(report, "resources.streams").c_str(),
              lookup(report, "resources.elapsed_ns").c_str());

  struct Item {
    double utilization = 0.0;
    double wait_total = 0.0;
    std::vector<std::string> cells;
  };
  std::vector<Item> items;
  for (int i = 0;; ++i) {
    const std::string prefix = "resources.items." + std::to_string(i) + ".";
    const std::string name = lookup(report, prefix + "name");
    if (name.empty()) break;
    Item item;
    item.utilization = std::atof(lookup(report, prefix + "utilization").c_str());
    item.wait_total = std::atof(lookup(report, prefix + "wait_total_ns").c_str());
    item.cells = {name,
                  lookup(report, prefix + "utilization"),
                  lookup(report, prefix + "capacity_gbps"),
                  lookup(report, prefix + "busy_ns"),
                  lookup(report, prefix + "services"),
                  lookup(report, prefix + "arrivals_per_us"),
                  lookup(report, prefix + "wait_mean_ns"),
                  lookup(report, prefix + "wait_max_ns"),
                  lookup(report, prefix + "depth_mean"),
                  lookup(report, prefix + "depth_max")};
    items.push_back(std::move(item));
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) {
                     if (a.utilization != b.utilization) {
                       return a.utilization > b.utilization;
                     }
                     return a.wait_total > b.wait_total;
                   });

  hsw::Table table({"resource", "utilization", "capacity GB/s", "busy ns",
                    "services", "arrivals/us", "wait mean ns", "wait max ns",
                    "depth mean", "depth max"});
  for (const Item& item : items) table.add_row(item.cells);
  std::printf("resources by utilization (bottleneck first)\n%s\n",
              table.to_string().c_str());
  return 0;
}

// `lines` view: sharing-pattern census, per-state L3 residency, and the
// top contended lines ranked by invalidations + forwards.
int lines_view(const FlatReport& report, const std::string& path) {
  if (require_linestats(report, path) != 0) return 1;
  std::printf(
      "line stats %s (protocol %s, %s streams, %s accesses, %s lines)\n",
      path.c_str(), lookup(report, "linestats.protocol").c_str(),
      lookup(report, "linestats.streams").c_str(),
      lookup(report, "linestats.accesses").c_str(),
      lookup(report, "linestats.lines_tracked").c_str());

  hsw::Table patterns({"sharing pattern", "lines"});
  for (const char* name : {"private", "read_shared", "migratory", "ping_pong",
                           "false_shared", "mixed"}) {
    patterns.add_row(
        {name, lookup(report, std::string("linestats.patterns.") + name)});
  }
  std::printf("%s\n", patterns.to_string().c_str());

  hsw::Table residency({"state", "L3 residency ns"});
  for (const char* state : {"I", "S", "F", "E", "M", "O"}) {
    residency.add_row(
        {state, lookup(report, std::string("linestats.residency_ns.") + state)});
  }
  std::printf("%s\n", residency.to_string().c_str());

  hsw::Table top({"line", "stream", "pattern", "cores", "reads", "writes",
                  "inval", "fwd", "upd", "contention"});
  for (int i = 0;; ++i) {
    const std::string prefix =
        "linestats.top_lines." + std::to_string(i) + ".";
    const std::string line = lookup(report, prefix + "line");
    if (line.empty()) break;
    top.add_row({line, lookup(report, prefix + "stream"),
                 lookup(report, prefix + "pattern"),
                 lookup(report, prefix + "cores"),
                 lookup(report, prefix + "reads"),
                 lookup(report, prefix + "writes"),
                 lookup(report, prefix + "invalidations"),
                 lookup(report, prefix + "forwards"),
                 lookup(report, prefix + "updates"),
                 lookup(report, prefix + "contention")});
  }
  std::printf("top contended lines (by invalidations + forwards)\n%s\n",
              top.to_string().c_str());
  return 0;
}

// `transitions` view: every nonzero (level, from-state, bus-op, to-state)
// cell of the transition matrix.  Keys sort lexicographically — stable
// across runs, so the output diffs cleanly.
int transitions_view(const FlatReport& report, const std::string& path) {
  if (require_linestats(report, path) != 0) return 1;
  std::printf("state transitions %s (protocol %s)\n", path.c_str(),
              lookup(report, "linestats.protocol").c_str());
  hsw::Table table({"level", "from", "op", "to", "count"});
  const std::string prefix = "linestats.transitions.";
  for (const auto& [key, value] : report) {
    if (!key.starts_with(prefix)) continue;
    // Key tail: LEVEL.FROM.OP.TO (e.g. "L3.M.SnoopRead.S").
    std::vector<std::string> parts;
    std::string rest = key.substr(prefix.size());
    std::size_t pos = 0;
    while ((pos = rest.find('.')) != std::string::npos) {
      parts.push_back(rest.substr(0, pos));
      rest.erase(0, pos + 1);
    }
    parts.push_back(rest);
    if (parts.size() != 4) continue;
    table.add_row({parts[0], parts[1], parts[2], parts[3], value});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}

// `cache` view: the hswsim-serve result-cache stats dump (the daemon's
// --stats file, or a client's --stats-out capture): hit/miss counters,
// occupancy against the capacity cap, and the resident entries in
// LRU -> MRU order — the top row is the next eviction victim.
int cache_view(const FlatReport& report, const std::string& path) {
  if (lookup(report, "hswsim_cache_version").empty()) {
    std::fprintf(stderr,
                 "hswsim-report: %s is not a cache stats dump; write one "
                 "with hswsim-serve --stats FILE (on shutdown) or "
                 "hswsim-submit --stats-out FILE\n",
                 path.c_str());
    return 1;
  }
  std::printf("result-cache stats %s\n", path.c_str());

  const double hits = std::atof(lookup(report, "hits").c_str());
  const double misses = std::atof(lookup(report, "misses").c_str());
  const double lookups = hits + misses;
  char hit_rate[32];
  std::snprintf(hit_rate, sizeof hit_rate, "%.1f%%",
                lookups > 0.0 ? 100.0 * hits / lookups : 0.0);

  hsw::Table summary({"counter", "value"});
  summary.add_row({"entries", lookup(report, "entries")});
  summary.add_row({"bytes", lookup(report, "bytes")});
  summary.add_row({"capacity bytes", lookup(report, "capacity_bytes")});
  summary.add_row({"hits", lookup(report, "hits")});
  summary.add_row({"misses", lookup(report, "misses")});
  summary.add_row({"hit rate", lookups > 0.0 ? hit_rate : "n/a"});
  summary.add_row({"insertions", lookup(report, "insertions")});
  summary.add_row({"evictions", lookup(report, "evictions")});
  std::printf("%s\n", summary.to_string().c_str());

  hsw::Table entries({"#", "key (timing_fingerprint-spec_hash)", "bytes"});
  int count = 0;
  for (int i = 0;; ++i) {
    const std::string prefix = "items." + std::to_string(i) + ".";
    const std::string key = lookup(report, prefix + "key");
    if (key.empty()) break;
    entries.add_row({std::to_string(i), key, lookup(report, prefix + "bytes")});
    ++count;
  }
  if (count > 0) {
    std::printf("resident entries, LRU first (row 0 evicts next)\n%s\n",
                entries.to_string().c_str());
  } else {
    std::printf("no resident entries\n");
  }
  return 0;
}

int show(const FlatReport& report, const std::string& path) {
  std::printf("metrics report %s (version %s)\n", path.c_str(),
              version_of(report).c_str());

  // Which optional sections this file carries, so the reader knows which
  // views (lines / transitions / bottlenecks) will have data.
  const bool metrics = !lookup(report, "hswsim_metrics_version").empty();
  hsw::Table sections({"section", "present", "view"});
  sections.add_row({"metrics", metrics ? "yes" : "no", "show"});
  sections.add_row({"linestats", has_linestats(report) ? "yes" : "no",
                    "lines, transitions"});
  sections.add_row({"resources", has_resources(report) ? "yes" : "no",
                    "bottlenecks"});
  std::printf("%s\n", sections.to_string().c_str());

  hsw::Table manifest({"manifest", "value"});
  for (const auto& [key, value] : report) {
    if (key.starts_with("manifest.")) {
      manifest.add_row({key.substr(sizeof("manifest.") - 1), value});
    }
  }
  manifest.add_row({"accesses", lookup(report, "accesses")});
  manifest.add_row({"streams", lookup(report, "streams")});
  std::printf("%s\n", manifest.to_string().c_str());

  hsw::Table counters({"counter", "value"});
  for (const auto& [key, value] : report) {
    const bool counter_like = key.starts_with("counters.") ||
                              key.starts_with("engine_counters.") ||
                              key.starts_with("meters.") ||
                              key.starts_with("gauges.");
    if (counter_like && value != "0" && value != "0.000000") {
      counters.add_row({key, value});
    }
  }
  std::printf("nonzero counters, meters, and final gauges\n%s\n",
              counters.to_string().c_str());
  return 0;
}

int diff(const FlatReport& a, const FlatReport& b, const std::string& path_a,
         const std::string& path_b, const hsw::check::GoldenTolerance& tol,
         bool force) {
  if (version_of(a) != version_of(b)) {
    std::fprintf(stderr, "hswsim-report: version mismatch (%s vs %s)\n",
                 version_of(a).c_str(), version_of(b).c_str());
    return 1;
  }
  if (protocol_of(a) != protocol_of(b)) {
    if (!force) {
      std::fprintf(stderr,
                   "hswsim-report: refusing to diff across coherence "
                   "protocols (%s ran %s, %s ran %s); the engine counters "
                   "are not comparable — pass --force to diff anyway\n",
                   path_a.c_str(), protocol_of(a).c_str(), path_b.c_str(),
                   protocol_of(b).c_str());
      return 1;
    }
    std::printf("note: cross-protocol diff forced (%s vs %s)\n",
                protocol_of(a).c_str(), protocol_of(b).c_str());
  }

  std::vector<std::string> keys;
  for (const auto& [key, value] : a) keys.push_back(key);
  for (const auto& [key, value] : b) {
    if (!a.contains(key)) keys.push_back(key);
  }

  hsw::Table table({"key", path_a, path_b});
  std::size_t mismatches = 0;
  std::size_t manifest_diffs = 0;
  constexpr std::size_t kMaxRows = 40;
  for (const std::string& key : keys) {
    const bool in_a = a.contains(key);
    const bool in_b = b.contains(key);
    const std::string va = in_a ? a.at(key) : "<missing>";
    const std::string vb = in_b ? b.at(key) : "<missing>";
    const bool match =
        in_a && in_b && hsw::check::cells_match(va, vb, tol);
    if (match) continue;
    if (key.starts_with("manifest.")) {
      ++manifest_diffs;
      continue;
    }
    ++mismatches;
    if (mismatches <= kMaxRows) table.add_row({key, va, vb});
  }

  if (manifest_diffs > 0) {
    std::printf("note: %zu manifest field(s) differ (provenance only)\n",
                manifest_diffs);
  }
  if (mismatches == 0) {
    std::printf("reports match (rel %g, abs %g)\n", tol.rel, tol.abs);
    return 0;
  }
  std::printf("%zu metric key(s) differ (rel %g, abs %g)%s\n%s", mismatches,
              tol.rel, tol.abs,
              mismatches > kMaxRows ? ", first 40 shown" : "",
              table.to_string().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  hsw::CommandLine cli(
      "inspect (show) or tolerance-diff (diff) hswsim --metrics reports");
  hsw::check::GoldenTolerance tol;
  bool force = false;
  cli.add_double("rel", &tol.rel, "relative tolerance for numeric values");
  cli.add_double("abs", &tol.abs, "absolute tolerance for numeric values");
  cli.add_bool("force", &force,
               "diff reports even when their coherence protocols differ");
  switch (cli.parse_status(argc, argv)) {
    case hsw::CommandLine::ParseStatus::kHelp:
      return 0;
    case hsw::CommandLine::ParseStatus::kError:
      return 2;
    case hsw::CommandLine::ParseStatus::kOk:
      break;
  }
  const std::vector<std::string>& pos = cli.positional();
  if (pos.empty()) return usage();

  if (pos[0] == "show" && pos.size() == 2) {
    FlatReport report;
    if (load(pos[1], &report) != 0) return 1;
    return show(report, pos[1]);
  }
  if (pos[0] == "lines" && pos.size() == 2) {
    FlatReport report;
    if (load(pos[1], &report) != 0) return 1;
    return lines_view(report, pos[1]);
  }
  if (pos[0] == "transitions" && pos.size() == 2) {
    FlatReport report;
    if (load(pos[1], &report) != 0) return 1;
    return transitions_view(report, pos[1]);
  }
  if (pos[0] == "bottlenecks" && pos.size() == 2) {
    FlatReport report;
    if (load(pos[1], &report) != 0) return 1;
    return bottlenecks_view(report, pos[1]);
  }
  if (pos[0] == "cache" && pos.size() == 2) {
    FlatReport report;
    if (load(pos[1], &report) != 0) return 1;
    return cache_view(report, pos[1]);
  }
  if (pos[0] == "diff" && pos.size() == 3) {
    FlatReport a;
    FlatReport b;
    if (load(pos[1], &a) != 0 || load(pos[2], &b) != 0) return 1;
    return diff(a, b, pos[1], pos[2], tol, force);
  }
  return usage();
}
