// The metric vocabulary, modeled on the Haswell-EP *uncore* PMU event
// classes the paper validates against (CBo = caching agent / LLC slice,
// SAD = source address decoder, HA = home agent, QPI = socket link,
// iMC = integrated memory controller).  Every enumerator carries an
// uncore-style event name so reports read like `perf stat` on the real
// machine's uncore boxes.
//
// Four metric kinds:
//   MCtr    - scalar monotonic counters (event occurrences)
//   MGauge  - point-in-time structural state (MESIF occupancy, directory
//             population), refreshed by MachineState::update_structural_gauges
//   MMeter  - monotonic double accumulators (ring hops weighted by distance)
//   MFamily - indexed counter vectors (per QPI link, per DRAM channel,
//             per ring stop), sized from the topology at attach time
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hsw::metrics {

enum class MCtr : std::uint8_t {
  // CBo: eviction causes per cache level.  Clean victims leave silently
  // (no message, directory and core-valid bits go stale); Modified victims
  // cost a writeback.  The split is exactly the mechanism behind the
  // paper's stale-directory broadcasts (Table V).
  kL1VictimDirty,
  kL1VictimCleanSilent,
  kL2VictimDirty,
  kL2VictimCleanSilent,
  kL3VictimDirty,
  kL3VictimCleanSilent,
  // CBo: update broadcasts sent on stores to shared lines (Dragon; zero
  // under the invalidate-based protocols).
  kCboUpdateSent,
  // SAD: who decoded the request's home — the local or a remote node.
  kSadLocalHome,
  kSadRemoteHome,
  // HA: in-memory directory and HitME directory-cache activity.
  kHaDirectoryLookup,
  kHaDirectoryUpdate,
  kHaSnoopAllBroadcast,  // directory said snoop-all: speculative broadcast
  kHaStaleBroadcast,     // ...and nobody answered (directory was stale)
  kHaBypass,             // served without waiting on any snoop response
  kHaHitmeHit,
  kHaHitmeMiss,
  kHaHitmeAllocShared,   // AllocateShared fill on a cross-node forward
  kHaHitmeEvict,
  // iMC: row-buffer outcome of every directed DRAM read.
  kImcPageHit,
  kImcPageEmpty,
  kImcPageConflict,
  kCount,
};
inline constexpr std::size_t kMCtrCount = static_cast<std::size_t>(MCtr::kCount);

enum class MGauge : std::uint8_t {
  // Per-level line-state occupancy (valid lines per state, machine-wide).
  // Owned is populated only under MOESI/Dragon.
  kL1OccModified,
  kL1OccExclusive,
  kL1OccShared,
  kL1OccForward,
  kL1OccOwned,
  kL2OccModified,
  kL2OccExclusive,
  kL2OccShared,
  kL2OccForward,
  kL2OccOwned,
  kL3OccModified,
  kL3OccExclusive,
  kL3OccShared,
  kL3OccForward,
  kL3OccOwned,
  // Population of the L3 core-valid filters (set bits across all slices).
  kL3CoreValidBits,
  // HitME directory-cache and in-memory directory population.
  kHitmeEntries,
  kDirectoryTracked,
  kCount,
};
inline constexpr std::size_t kMGaugeCount =
    static_cast<std::size_t>(MGauge::kCount);

enum class MMeter : std::uint8_t {
  kRingHops,  // bidirectional-ring hops traversed, weighted by distance
  kCount,
};
inline constexpr std::size_t kMMeterCount =
    static_cast<std::size_t>(MMeter::kCount);

enum class MHist : std::uint8_t {
  kAccessNs,  // per-access latency, log-bucketed
  kCount,
};
inline constexpr std::size_t kMHistCount =
    static_cast<std::size_t>(MHist::kCount);

enum class MFamily : std::uint8_t {
  kQpiLinkCrossings,     // messages that crossed each socket link
  kQpiLinkBytes,         // ...and their payload bytes
  kImcChannelReadBytes,  // per DRAM channel, machine-wide channel index
  kImcChannelWriteBytes,
  kRingStopCbo,  // L3/CA pipeline visits per NUMA node's ring stop
  kRingStopHa,   // home-agent visits per NUMA node's ring stop
  kCount,
};
inline constexpr std::size_t kMFamilyCount =
    static_cast<std::size_t>(MFamily::kCount);

// QPI message payload accounting (request/snoop header vs. full-line data
// response).  Crossings count requests, snoops, and data returns — not the
// ack flits — so bytes/crossing stays interpretable.
inline constexpr std::uint64_t kQpiHeaderBytes = 8;
inline constexpr std::uint64_t kQpiDataBytes = 72;  // 64 B line + header

[[nodiscard]] std::string_view to_string(MCtr c);
[[nodiscard]] std::string_view to_string(MGauge g);
[[nodiscard]] std::string_view to_string(MMeter m);
[[nodiscard]] std::string_view to_string(MHist h);
[[nodiscard]] std::string_view to_string(MFamily f);

}  // namespace hsw::metrics
