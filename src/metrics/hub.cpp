#include "metrics/hub.h"

#include <algorithm>
#include <utility>

namespace hsw::metrics {

void MetricsHub::absorb(MetricsRegistry&& registry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  registries_.push_back(std::move(registry));
}

std::size_t MetricsHub::stream_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return registries_.size();
}

MergedMetrics MetricsHub::merged() const {
  std::vector<const MetricsRegistry*> order;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    order.reserve(registries_.size());
    for (const MetricsRegistry& r : registries_) order.push_back(&r);
  }
  std::sort(order.begin(), order.end(),
            [](const MetricsRegistry* a, const MetricsRegistry* b) {
              return a->stream() < b->stream();
            });

  MergedMetrics out;
  out.streams = order.size();
  for (const MetricsRegistry* r : order) {
    out.accesses += r->accesses();
    for (std::size_t i = 0; i < kMCtrCount; ++i) {
      out.counters[i] += r->counters()[i];
    }
    for (std::size_t i = 0; i < kMGaugeCount; ++i) {
      out.gauges[i] += r->gauges()[i];
    }
    for (std::size_t i = 0; i < kMMeterCount; ++i) {
      out.meters[i] += r->meters()[i];
    }
    for (std::size_t i = 0; i < kMHistCount; ++i) {
      out.histograms[i].merge(r->histograms()[i]);
    }
    for (std::size_t i = 0; i < kMFamilyCount; ++i) {
      const auto& src = r->families()[i];
      auto& dst = out.families[i];
      if (dst.size() < src.size()) dst.resize(src.size(), 0);
      for (std::size_t j = 0; j < src.size(); ++j) dst[j] += src[j];
    }
    for (std::size_t i = 0; i < out.engine.size(); ++i) {
      out.engine[i] += r->engine_counters()[i];
    }
    for (MetricsSample sample : r->samples()) {
      sample.stream = r->stream();
      out.samples.push_back(sample);
    }
  }
  // Per-registry samples are already seq-ordered; registries were folded in
  // stream order, so the series is sorted by (stream, seq) by construction.
  return out;
}

}  // namespace hsw::metrics
