// The per-stream metrics registry — the uncore-PMU counterpart of the
// tracer.  One registry is attached to one System at a time (one sweep
// point = one stream, mirroring trace::Tracer); a MetricsHub merges
// finished registries deterministically by stream id.
//
// Hot-path contract: with no registry attached, every instrumentation
// site in the engine reduces to a single null-pointer test (the same
// discipline trace::Tracer established).  All registry methods are plain
// array bumps — no allocation except family auto-sizing and sampling.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "metrics/events.h"
#include "metrics/sampler.h"
#include "sim/counters.h"
#include "util/stats.h"

namespace hsw::metrics {

class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::uint32_t stream = 0,
                           std::uint64_t sample_interval = kDefaultSampleInterval)
      : stream_(stream), sampler_(sample_interval) {}

  [[nodiscard]] std::uint32_t stream() const { return stream_; }

  // --- hot path -----------------------------------------------------------
  void bump(MCtr c, std::uint64_t delta = 1) {
    counters_[static_cast<std::size_t>(c)] += delta;
  }
  void meter(MMeter m, double delta) {
    meters_[static_cast<std::size_t>(m)] += delta;
  }
  void set_gauge(MGauge g, std::int64_t value) {
    gauges_[static_cast<std::size_t>(g)] = value;
  }
  void observe(MHist h, double value) {
    hists_[static_cast<std::size_t>(h)].add(value);
  }
  void bump_family(MFamily f, std::size_t index, std::uint64_t delta = 1) {
    auto& v = families_[static_cast<std::size_t>(f)];
    if (index >= v.size()) v.resize(index + 1, 0);
    v[index] += delta;
  }

  // Pre-sizes a family from the topology (attach time) so reports always
  // carry every link/channel/stop, including the never-touched ones.
  void size_family(MFamily f, std::size_t size) {
    auto& v = families_[static_cast<std::size_t>(f)];
    if (v.size() < size) v.resize(size, 0);
  }

  // --- sampling -----------------------------------------------------------
  // Counts one access; true when the caller should run a census + sample.
  [[nodiscard]] bool access_tick() { return sampler_.tick(); }
  void take_sample() { sampler_.snapshot(gauges_); }
  // Detach-time census (skipped for sampling-disabled or idle registries).
  void take_final_sample() {
    if (sampler_.interval() != 0 && sampler_.accesses() != 0) {
      sampler_.snapshot(gauges_);
    }
  }

  // Folds a measured section's engine counter delta into the report (the
  // engine's CounterSet is global, so the measurement harness hands the
  // registry exactly the slice it attributed to this stream).
  void capture_engine_counters(const CounterSet::Snapshot& delta) {
    for (std::size_t i = 0; i < delta.size(); ++i) engine_[i] += delta[i];
  }

  // --- merge access (MetricsHub / report writer) --------------------------
  [[nodiscard]] std::uint64_t accesses() const { return sampler_.accesses(); }
  [[nodiscard]] const std::array<std::uint64_t, kMCtrCount>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::array<std::int64_t, kMGaugeCount>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::array<double, kMMeterCount>& meters() const {
    return meters_;
  }
  [[nodiscard]] const std::array<LogHistogram, kMHistCount>& histograms()
      const {
    return hists_;
  }
  [[nodiscard]] const std::array<std::vector<std::uint64_t>, kMFamilyCount>&
  families() const {
    return families_;
  }
  [[nodiscard]] const CounterSet::Snapshot& engine_counters() const {
    return engine_;
  }
  [[nodiscard]] const std::vector<MetricsSample>& samples() const {
    return sampler_.samples();
  }

 private:
  std::uint32_t stream_;
  std::array<std::uint64_t, kMCtrCount> counters_{};
  std::array<std::int64_t, kMGaugeCount> gauges_{};
  std::array<double, kMMeterCount> meters_{};
  std::array<LogHistogram, kMHistCount> hists_{};
  std::array<std::vector<std::uint64_t>, kMFamilyCount> families_{};
  CounterSet::Snapshot engine_{};
  MetricsSampler sampler_;
};

}  // namespace hsw::metrics
