#include "metrics/report.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/json.h"

namespace hsw::metrics {
namespace {

// Fixed float formatting (same discipline as the trace exporters): %.6f is
// deterministic across platforms for the magnitudes we emit.
std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", value);
  return buf;
}

std::string escape(const std::string& s) { return json::escape(s); }

}  // namespace

std::string git_describe() {
  std::FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[256] = {};
  std::string out;
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

std::string render_manifest(const ReportManifest& manifest) {
  char buf[1024];
  std::snprintf(buf, sizeof buf,
                "  \"manifest\": {\n"
                "    \"tool\": \"%s\",\n"
                "    \"config\": \"%s\",\n"
                "    \"protocol\": \"%s\",\n"
                "    \"timing_hash\": \"%s\",\n"
                "    \"seed\": %llu,\n"
                "    \"jobs\": %u,\n"
                "    \"quick\": %s,\n"
                "    \"git\": \"%s\"\n"
                "  }",
                escape(manifest.tool).c_str(), escape(manifest.config).c_str(),
                escape(manifest.protocol).c_str(),
                escape(manifest.timing_hash).c_str(),
                static_cast<unsigned long long>(manifest.seed), manifest.jobs,
                manifest.quick ? "true" : "false",
                escape(manifest.git).c_str());
  return buf;
}

bool write_report(const std::string& path, const ReportManifest& manifest,
                  const MergedMetrics& m, const std::string& extra_section) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics report: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }

  std::fprintf(f, "{\n  \"hswsim_metrics_version\": %d,\n", kReportVersion);
  std::fprintf(f, "%s,\n", render_manifest(manifest).c_str());
  if (!extra_section.empty()) {
    std::fprintf(f, "%s,\n", extra_section.c_str());
  }
  std::fprintf(f, "  \"accesses\": %llu,\n",
               static_cast<unsigned long long>(m.accesses));
  std::fprintf(f, "  \"streams\": %zu,\n", m.streams);

  // Every counter, zeros included: a report's schema must not depend on
  // which paths a run happened to exercise.
  std::fprintf(f, "  \"counters\": {\n");
  for (std::size_t i = 0; i < kMCtrCount; ++i) {
    std::fprintf(f, "    \"%.*s\": %llu%s\n",
                 static_cast<int>(to_string(static_cast<MCtr>(i)).size()),
                 to_string(static_cast<MCtr>(i)).data(),
                 static_cast<unsigned long long>(m.counters[i]),
                 i + 1 < kMCtrCount ? "," : "");
  }
  std::fprintf(f, "  },\n");

  std::fprintf(f, "  \"engine_counters\": {\n");
  for (std::size_t i = 0; i < kCtrCount; ++i) {
    const std::string_view name = ctr_name(static_cast<Ctr>(i));
    std::fprintf(f, "    \"%.*s\": %llu%s\n", static_cast<int>(name.size()),
                 name.data(), static_cast<unsigned long long>(m.engine[i]),
                 i + 1 < kCtrCount ? "," : "");
  }
  std::fprintf(f, "  },\n");

  std::fprintf(f, "  \"meters\": {\n");
  for (std::size_t i = 0; i < kMMeterCount; ++i) {
    const std::string_view name = to_string(static_cast<MMeter>(i));
    std::fprintf(f, "    \"%.*s\": %s%s\n", static_cast<int>(name.size()),
                 name.data(), fmt(m.meters[i]).c_str(),
                 i + 1 < kMMeterCount ? "," : "");
  }
  std::fprintf(f, "  },\n");

  std::fprintf(f, "  \"families\": {\n");
  for (std::size_t i = 0; i < kMFamilyCount; ++i) {
    const std::string_view name = to_string(static_cast<MFamily>(i));
    std::fprintf(f, "    \"%.*s\": [", static_cast<int>(name.size()),
                 name.data());
    const auto& v = m.families[i];
    for (std::size_t j = 0; j < v.size(); ++j) {
      std::fprintf(f, "%s%llu", j == 0 ? "" : ", ",
                   static_cast<unsigned long long>(v[j]));
    }
    std::fprintf(f, "]%s\n", i + 1 < kMFamilyCount ? "," : "");
  }
  std::fprintf(f, "  },\n");

  std::fprintf(f, "  \"histograms\": {\n");
  for (std::size_t i = 0; i < kMHistCount; ++i) {
    const std::string_view name = to_string(static_cast<MHist>(i));
    const LogHistogram& hist = m.histograms[i];
    std::fprintf(f, "    \"%.*s\": {\n      \"total\": %llu,\n"
                 "      \"buckets\": [",
                 static_cast<int>(name.size()), name.data(),
                 static_cast<unsigned long long>(hist.total()));
    bool first = true;
    for (const auto& [key, count] : hist.buckets()) {
      std::fprintf(f, "%s\n        {\"lo\": %s, \"hi\": %s, \"count\": %llu}",
                   first ? "" : ",", fmt(LogHistogram::bucket_lower(key)).c_str(),
                   fmt(LogHistogram::bucket_upper(key)).c_str(),
                   static_cast<unsigned long long>(count));
      first = false;
    }
    std::fprintf(f, "%s]\n    }%s\n", first ? "" : "\n      ",
                 i + 1 < kMHistCount ? "," : "");
  }
  std::fprintf(f, "  },\n");

  std::fprintf(f, "  \"gauges\": {\n");
  for (std::size_t i = 0; i < kMGaugeCount; ++i) {
    const std::string_view name = to_string(static_cast<MGauge>(i));
    std::fprintf(f, "    \"%.*s\": %lld%s\n", static_cast<int>(name.size()),
                 name.data(), static_cast<long long>(m.gauges[i]),
                 i + 1 < kMGaugeCount ? "," : "");
  }
  std::fprintf(f, "  },\n");

  // The time series: a compact gauge-name legend once, then per-sample
  // value rows aligned with it.
  std::fprintf(f, "  \"sample_gauges\": [");
  for (std::size_t i = 0; i < kMGaugeCount; ++i) {
    const std::string_view name = to_string(static_cast<MGauge>(i));
    std::fprintf(f, "%s\"%.*s\"", i == 0 ? "" : ", ",
                 static_cast<int>(name.size()), name.data());
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"samples\": [");
  for (std::size_t s = 0; s < m.samples.size(); ++s) {
    const MetricsSample& sample = m.samples[s];
    std::fprintf(f, "%s\n    {\"stream\": %u, \"seq\": %llu, \"access\": %llu, \"g\": [",
                 s == 0 ? "" : ",", sample.stream,
                 static_cast<unsigned long long>(sample.seq),
                 static_cast<unsigned long long>(sample.access));
    for (std::size_t i = 0; i < kMGaugeCount; ++i) {
      std::fprintf(f, "%s%lld", i == 0 ? "" : ", ",
                   static_cast<long long>(sample.gauges[i]));
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "%s]\n}\n", m.samples.empty() ? "" : "\n  ");

  const bool io_error = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || io_error) {
    std::fprintf(stderr, "metrics report: write to '%s' failed\n",
                 path.c_str());
    return false;
  }
  return true;
}

ReportLoadError load_report_flat(const std::string& path,
                                 std::map<std::string, std::string>* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return ReportLoadError::kUnreadable;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  if (!json::parse_flat(text, out)) return ReportLoadError::kMalformed;
  // Any report flavour qualifies, but only at the schema version this
  // binary understands: a future version must be refused, not misread.
  const std::string expected = std::to_string(kReportVersion);
  for (const char* key : {"hswsim_metrics_version", "hswsim_linestats_version",
                          "hswsim_resources_version",
                          "hswsim_cache_version"}) {
    const auto it = out->find(key);
    if (it != out->end()) {
      return it->second == expected ? ReportLoadError::kOk
                                    : ReportLoadError::kUnknownVersion;
    }
  }
  return ReportLoadError::kUnknownVersion;
}

std::optional<std::map<std::string, std::string>> parse_report_flat(
    const std::string& path) {
  std::map<std::string, std::string> out;
  if (load_report_flat(path, &out) != ReportLoadError::kOk) {
    return std::nullopt;
  }
  return out;
}

}  // namespace hsw::metrics
