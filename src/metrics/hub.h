// Deterministic multi-stream merge, the metrics counterpart of
// trace::TraceSink.  Sweep workers absorb their finished per-point
// registries from any thread; merged() folds them in stream-id order, so
// the merged counters, meters (double summation order included), and the
// (stream, seq)-sorted sample series are byte-identical for any --jobs.
#pragma once

#include <mutex>
#include <vector>

#include "metrics/registry.h"

namespace hsw::metrics {

struct MergedMetrics {
  std::uint64_t accesses = 0;
  std::size_t streams = 0;
  std::array<std::uint64_t, kMCtrCount> counters{};
  // Element-wise sum of the final per-stream censuses (for a single-stream
  // run: the machine's final structural state).
  std::array<std::int64_t, kMGaugeCount> gauges{};
  std::array<double, kMMeterCount> meters{};
  std::array<LogHistogram, kMHistCount> histograms{};
  std::array<std::vector<std::uint64_t>, kMFamilyCount> families{};
  CounterSet::Snapshot engine{};
  std::vector<MetricsSample> samples;  // sorted by (stream, seq)
};

class MetricsHub {
 public:
  void absorb(MetricsRegistry&& registry);

  [[nodiscard]] MergedMetrics merged() const;
  [[nodiscard]] std::size_t stream_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<MetricsRegistry> registries_;
};

}  // namespace hsw::metrics
