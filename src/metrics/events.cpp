#include "metrics/events.h"

namespace hsw::metrics {

std::string_view to_string(MCtr c) {
  switch (c) {
    case MCtr::kL1VictimDirty: return "CBO_L1_VICTIM_M_WRITEBACK";
    case MCtr::kL1VictimCleanSilent: return "CBO_L1_VICTIM_CLEAN_SILENT";
    case MCtr::kL2VictimDirty: return "CBO_L2_VICTIM_M_WRITEBACK";
    case MCtr::kL2VictimCleanSilent: return "CBO_L2_VICTIM_CLEAN_SILENT";
    case MCtr::kL3VictimDirty: return "CBO_LLC_VICTIM_M_WRITEBACK";
    case MCtr::kL3VictimCleanSilent: return "CBO_LLC_VICTIM_CLEAN_SILENT";
    case MCtr::kCboUpdateSent: return "CBO_UPDATE_SENT";
    case MCtr::kSadLocalHome: return "SAD_REQ_LOCAL_HOME";
    case MCtr::kSadRemoteHome: return "SAD_REQ_REMOTE_HOME";
    case MCtr::kHaDirectoryLookup: return "HA_DIRECTORY_LOOKUP";
    case MCtr::kHaDirectoryUpdate: return "HA_DIRECTORY_UPDATE";
    case MCtr::kHaSnoopAllBroadcast: return "HA_SNOOP_ALL_BCAST";
    case MCtr::kHaStaleBroadcast: return "HA_DIRECTORY_STALE_BCAST";
    case MCtr::kHaBypass: return "HA_SNOOP_BYPASS";
    case MCtr::kHaHitmeHit: return "HA_HITME_HIT";
    case MCtr::kHaHitmeMiss: return "HA_HITME_MISS";
    case MCtr::kHaHitmeAllocShared: return "HA_HITME_ALLOCATE_SHARED";
    case MCtr::kHaHitmeEvict: return "HA_HITME_EVICT";
    case MCtr::kImcPageHit: return "IMC_PAGE_HIT";
    case MCtr::kImcPageEmpty: return "IMC_PAGE_EMPTY";
    case MCtr::kImcPageConflict: return "IMC_PAGE_CONFLICT";
    case MCtr::kCount: break;
  }
  return "?";
}

std::string_view to_string(MGauge g) {
  switch (g) {
    case MGauge::kL1OccModified: return "CBO_L1_OCC_M";
    case MGauge::kL1OccExclusive: return "CBO_L1_OCC_E";
    case MGauge::kL1OccShared: return "CBO_L1_OCC_S";
    case MGauge::kL1OccForward: return "CBO_L1_OCC_F";
    case MGauge::kL1OccOwned: return "CBO_L1_OCC_O";
    case MGauge::kL2OccModified: return "CBO_L2_OCC_M";
    case MGauge::kL2OccExclusive: return "CBO_L2_OCC_E";
    case MGauge::kL2OccShared: return "CBO_L2_OCC_S";
    case MGauge::kL2OccForward: return "CBO_L2_OCC_F";
    case MGauge::kL2OccOwned: return "CBO_L2_OCC_O";
    case MGauge::kL3OccModified: return "CBO_LLC_OCC_M";
    case MGauge::kL3OccExclusive: return "CBO_LLC_OCC_E";
    case MGauge::kL3OccShared: return "CBO_LLC_OCC_S";
    case MGauge::kL3OccForward: return "CBO_LLC_OCC_F";
    case MGauge::kL3OccOwned: return "CBO_LLC_OCC_O";
    case MGauge::kL3CoreValidBits: return "CBO_LLC_CORE_VALID_BITS";
    case MGauge::kHitmeEntries: return "HA_HITME_ENTRIES";
    case MGauge::kDirectoryTracked: return "HA_DIRECTORY_TRACKED_LINES";
    case MGauge::kCount: break;
  }
  return "?";
}

std::string_view to_string(MMeter m) {
  switch (m) {
    case MMeter::kRingHops: return "RING_HOPS";
    case MMeter::kCount: break;
  }
  return "?";
}

std::string_view to_string(MHist h) {
  switch (h) {
    case MHist::kAccessNs: return "ACCESS_LATENCY_NS";
    case MHist::kCount: break;
  }
  return "?";
}

std::string_view to_string(MFamily f) {
  switch (f) {
    case MFamily::kQpiLinkCrossings: return "QPI_LINK_CROSSINGS";
    case MFamily::kQpiLinkBytes: return "QPI_LINK_BYTES";
    case MFamily::kImcChannelReadBytes: return "IMC_CHANNEL_READ_BYTES";
    case MFamily::kImcChannelWriteBytes: return "IMC_CHANNEL_WRITE_BYTES";
    case MFamily::kRingStopCbo: return "RING_STOP_CBO_REQUESTS";
    case MFamily::kRingStopHa: return "RING_STOP_HA_REQUESTS";
    case MFamily::kCount: break;
  }
  return "?";
}

}  // namespace hsw::metrics
