// Versioned machine-readable run reports.
//
// write_report() emits one JSON document per bench run: a manifest
// (invocation + environment provenance), the merged uncore counters,
// engine protocol counters, per-link/channel/stop families, the access
// latency histogram, final gauges, and the sampled gauge time series.
// Field order and float formatting are fixed, so a report is
// byte-identical for any --jobs value — the metrics-determinism CTests
// compare them with `cmake -E compare_files` (manifest jobs line masked).
//
// parse_report_flat() reads a report back as a flat "dotted.path" -> raw
// token map — enough for the hswsim-report differ and the tests, without
// a JSON dependency.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "metrics/hub.h"

namespace hsw::metrics {

inline constexpr int kReportVersion = 1;

struct ReportManifest {
  std::string tool;         // bench binary name
  std::string config;       // bench summary line
  // Coherence-protocol family the run simulated (mesif|mesi|moesi|dragon).
  // The differ refuses to compare reports across protocols without --force:
  // every engine counter changes meaning when the transition tables change.
  std::string protocol = "mesif";
  std::string timing_hash;  // fingerprint over all TimingParams constants
  std::uint64_t seed = 1;
  unsigned jobs = 0;
  bool quick = false;
  std::string git;  // `git describe` of the build tree, or "unknown"
};

// Best-effort `git describe --always --dirty` (reports must stay writable
// outside a work tree: falls back to "unknown").
[[nodiscard]] std::string git_describe();

// The rendered `"manifest": {...}` block (two-space base indent, no
// trailing comma/newline).  Shared with report writers outside this
// module — the obs line-stats report carries the same provenance.
[[nodiscard]] std::string render_manifest(const ReportManifest& manifest);

// Writes the report; false (with a stderr message) when the file cannot
// be opened or written.  `extra_section` (if nonempty) is a pre-rendered
// top-level JSON member — `  "name": {...}` without trailing comma —
// spliced in after the manifest; rendering stays with the producing
// module, so metrics never links against it.
[[nodiscard]] bool write_report(const std::string& path,
                                const ReportManifest& manifest,
                                const MergedMetrics& merged,
                                const std::string& extra_section = {});

// Why a report failed to load — callers that face users (hswsim-report)
// need to distinguish these; tests pin the exit codes.
enum class ReportLoadError {
  kOk,
  kUnreadable,      // missing file / open failure
  kMalformed,       // not JSON we can parse
  kUnknownVersion,  // parsed, but no version-1 hswsim report marker
};

// Flattens a report produced by write_report (or obs::write_linestats_report)
// into dotted-path keys ("manifest.seed", "counters.HA_HITME_HIT",
// "linestats.patterns.ping_pong", ...).  Values are raw JSON scalars:
// numbers verbatim, strings unescaped.
[[nodiscard]] ReportLoadError load_report_flat(
    const std::string& path, std::map<std::string, std::string>* out);

// Convenience wrapper: nullopt on any load error.
[[nodiscard]] std::optional<std::map<std::string, std::string>>
parse_report_flat(const std::string& path);

}  // namespace hsw::metrics
