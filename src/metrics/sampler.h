// Periodic gauge sampling: every N simulated accesses the registry asks
// the machine for a structural census and the sampler appends it to a
// time series.  Samples are keyed (stream, seq) like trace records, so a
// multi-stream merge is deterministic for any worker-thread schedule.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "metrics/events.h"

namespace hsw::metrics {

// Default census cadence.  A census walks the valid-way bitmasks of every
// cache array (O(sets + valid lines)); once per ~1k accesses keeps the
// overhead well under the cost of the accesses themselves while still
// resolving L3 fill curves in sweep-sized runs.
inline constexpr std::uint64_t kDefaultSampleInterval = 1024;

struct MetricsSample {
  std::uint32_t stream = 0;  // filled in when a hub merges registries
  std::uint64_t seq = 0;     // per-stream sample index
  std::uint64_t access = 0;  // accesses completed when the census ran
  std::array<std::int64_t, kMGaugeCount> gauges{};
};

class MetricsSampler {
 public:
  explicit MetricsSampler(std::uint64_t interval) : interval_(interval) {}

  // Counts one access; true when a census is due (never for interval 0).
  [[nodiscard]] bool tick() {
    ++accesses_;
    return interval_ != 0 && accesses_ % interval_ == 0;
  }

  void snapshot(const std::array<std::int64_t, kMGaugeCount>& gauges) {
    // Skip duplicates (a final census landing exactly on the interval).
    if (!samples_.empty() && samples_.back().access == accesses_) return;
    MetricsSample s;
    s.seq = samples_.size();
    s.access = accesses_;
    s.gauges = gauges;
    samples_.push_back(s);
  }

  [[nodiscard]] std::uint64_t interval() const { return interval_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] const std::vector<MetricsSample>& samples() const {
    return samples_;
  }

 private:
  std::uint64_t interval_;
  std::uint64_t accesses_ = 0;
  std::vector<MetricsSample> samples_;
};

}  // namespace hsw::metrics
