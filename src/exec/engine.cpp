#include "exec/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mem/address.h"
#include "obs/resource_stats.h"
#include "sim/event_kernel.h"

namespace hsw::exec {
namespace {

// First-use bind of an attached recorder: adopt the run's resource
// vocabulary (names derived from the capacity-vector layout).
void bind_recorder(obs::ResourceStatsRecorder* resstats,
                   const std::vector<double>& capacities_gbps) {
  if (resstats == nullptr || resstats->bound()) return;
  resstats->bind(bw::resource_names(capacities_gbps.size()), capacities_gbps);
}

std::vector<double> service_times(const std::vector<double>& capacities_gbps) {
  std::vector<double> service_ns;
  service_ns.reserve(capacities_gbps.size());
  for (double gbps : capacities_gbps) {
    service_ns.push_back(gbps > 0.0 ? 64.0 / gbps : 0.0);
  }
  return service_ns;
}

// Fixed event vocabulary for the closed loops: a request slot of task
// `task` entering path stage `stage`, or (stage == kTailStage) the slot's
// tail — retire accounting plus reissue.  Trivially copyable, so the event
// kernel never allocates while scheduling.
struct LoopEvent {
  std::uint32_t task = 0;
  std::uint32_t stage = 0;
};
inline constexpr std::uint32_t kTailStage =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace

ClosedLoopResult run_closed_loop(const std::vector<StreamTask>& tasks,
                                 const std::vector<double>& capacities_gbps,
                                 const ClosedLoopConfig& config) {
  const std::vector<double> service_ns = service_times(capacities_gbps);

  // Calibrate each closed loop so that, uncontended, it retires exactly its
  // demand: a slot's cycle is (service visits + base latency + pad), there
  // are ceil(demand * cycle / 64) slots, and the pad stretches the cycle to
  // slots * 64 / demand — whole-slot quantization goes into idle time
  // instead of excess rate.
  struct Loop {
    int slots = 0;
    double tail_ns = 0.0;  // base latency + calibration pad
  };
  std::vector<Loop> loops(tasks.size());
  std::size_t total_slots = 0;
  for (std::size_t f = 0; f < tasks.size(); ++f) {
    const StreamTask& task = tasks[f];
    if (task.demand_gbps <= 0.0) continue;
    double service_sum = 0.0;
    for (const bw::Flow::Use& use : task.path) {
      service_sum +=
          service_ns[static_cast<std::size_t>(use.resource)] * use.weight;
    }
    const double base = std::max(0.0, task.latency_ns - service_sum);
    const double cycle = base + service_sum;
    const int slots = std::max(
        1, static_cast<int>(std::ceil(task.demand_gbps * cycle / 64.0 - 1e-9)));
    const double pad =
        std::max(0.0, static_cast<double>(slots) * 64.0 / task.demand_gbps -
                          cycle);
    loops[f] = {slots, base + pad};
    total_slots += static_cast<std::size_t>(slots);
  }

  EventKernel<LoopEvent> queue;
  // Each in-flight slot owns at most one pending event; a little slack
  // covers the staggered warmup burst.
  queue.reserve(total_slots + 16);
  std::vector<double> free_at(service_ns.size(), 0.0);
  std::vector<double> busy_ns(service_ns.size(), 0.0);
  const double warmup_ns = config.window_ns / 4.0;
  const double end_ns = warmup_ns + config.window_ns;
  std::vector<std::uint64_t> retired(tasks.size(), 0);
  std::vector<double> queued(tasks.size(), 0.0);
  bind_recorder(config.resstats, capacities_gbps);

  // Advances one request slot of task `f` through path stage `stage`;
  // stage == path.size() means the request pays its tail and reissues.
  auto advance = [&](std::size_t f, std::size_t stage) {
    const StreamTask& task = tasks[f];
    if (stage < task.path.size()) {
      const bw::Flow::Use& use = task.path[stage];
      const auto r = static_cast<std::size_t>(use.resource);
      const double start = std::max(queue.now(), free_at[r]);
      if (queue.now() > warmup_ns && queue.now() <= end_ns) {
        queued[f] += start - queue.now();
      }
      const double done = start + service_ns[r] * use.weight;
      busy_ns[r] += done - start;
      if (config.resstats != nullptr) {
        config.resstats->on_service(r, queue.now(), start, done,
                                    64.0 * use.weight);
      }
      free_at[r] = done;
      queue.schedule_at(done, task.core,
                        LoopEvent{static_cast<std::uint32_t>(f),
                                  static_cast<std::uint32_t>(stage + 1)});
      return;
    }
    queue.schedule_after(loops[f].tail_ns, task.core,
                         LoopEvent{static_cast<std::uint32_t>(f), kTailStage});
  };

  for (std::size_t f = 0; f < tasks.size(); ++f) {
    for (int s = 0; s < loops[f].slots; ++s) {
      // Stagger initial issues so the warmup is not synchronized.
      queue.schedule_at(static_cast<double>(s) * 0.7 +
                            static_cast<double>(f) * 0.3,
                        tasks[f].core,
                        LoopEvent{static_cast<std::uint32_t>(f), 0});
    }
  }
  // run_until advances the clock to its horizon even after the last event;
  // busy fractions must divide by the *drained* run length, so track it.
  double drained_ns = 0.0;
  queue.run_until(end_ns + 1e6, [&](const LoopEvent& event) {
    drained_ns = queue.now();
    const std::size_t f = event.task;
    if (event.stage == kTailStage) {
      if (queue.now() > warmup_ns && queue.now() <= end_ns) ++retired[f];
      if (queue.now() < end_ns) advance(f, 0);
      return;
    }
    advance(f, event.stage);
  });

  if (config.resstats != nullptr) config.resstats->finalize(drained_ns);

  ClosedLoopResult result;
  result.resource_busy_ns = std::move(busy_ns);
  result.elapsed_ns = drained_ns;
  result.gbps.resize(tasks.size());
  result.mean_queue_ns.resize(tasks.size());
  for (std::size_t f = 0; f < tasks.size(); ++f) {
    result.gbps[f] = static_cast<double>(retired[f]) * 64.0 / config.window_ns;
    result.total_gbps += result.gbps[f];
    result.lines_retired += retired[f];
    result.mean_queue_ns[f] =
        retired[f] ? queued[f] / static_cast<double>(retired[f]) : 0.0;
  }
  return result;
}

namespace {

// Fixed event vocabulary for program execution.  `a` is the program index
// for kIssue and the request-pool slot for kStage/kComplete; `b` is the
// path stage for kStage.
struct ProgEvent {
  enum class Type : std::uint8_t { kIssue, kStage, kComplete };
  Type type = Type::kIssue;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

}  // namespace

ProgramExecStats run_programs(System& system,
                              const std::vector<Program>& programs,
                              const ProgramExecConfig& config) {
  const bw::BandwidthModel model(system, config.model);
  const std::vector<double> service_ns = service_times(model.capacities());

  ProgramExecStats stats;
  stats.per_core.resize(programs.size());

  struct CoreState {
    std::size_t next = 0;        // next op index
    int outstanding = 0;         // in-flight accesses (window occupancy)
    bool issue_scheduled = false;
  };
  std::vector<CoreState> cores(programs.size());

  // One in-flight access: its resource path and residual latency.  Slots
  // recycle through a free list, so the flow's uses vector keeps its
  // capacity — steady-state execution performs no per-access allocation
  // (the old std::function design copied the flow vector into every stage
  // continuation, twice per event).
  struct Request {
    std::uint32_t program = 0;
    bw::Flow flow;
    double base_ns = 0.0;
  };
  std::vector<Request> requests;
  std::vector<std::uint32_t> free_requests;
  requests.reserve(programs.size() *
                   static_cast<std::size_t>(std::max(1, config.window)));
  const auto acquire_request = [&]() -> std::uint32_t {
    if (!free_requests.empty()) {
      const std::uint32_t id = free_requests.back();
      free_requests.pop_back();
      return id;
    }
    requests.emplace_back();
    return static_cast<std::uint32_t>(requests.size() - 1);
  };

  EventKernel<ProgEvent> queue;
  // Per program: at most `window` in-flight stage/complete events plus one
  // pending issue event.
  queue.reserve(programs.size() *
                (static_cast<std::size_t>(std::max(1, config.window)) + 1));
  std::vector<double> free_at(service_ns.size(), 0.0);

  ScopedInstrumentation attached(system, config.instrumentation);
  // The resource recorder has no System attach point: the engine owns the
  // FIFO servers, so it feeds the recorder directly from `advance`.
  obs::ResourceStatsRecorder* const resstats = config.instrumentation.resstats;
  bind_recorder(resstats, model.capacities());

  auto request_issue = [&](std::size_t p, double at) {
    CoreState& cs = cores[p];
    if (cs.issue_scheduled || cs.next >= programs[p].ops.size()) return;
    cs.issue_scheduled = true;
    queue.schedule_at(std::max(at, queue.now()), programs[p].core,
                      ProgEvent{ProgEvent::Type::kIssue,
                                static_cast<std::uint32_t>(p), 0});
  };

  // Drives one in-flight access through the resource path its service point
  // implies; the final stage pays the remaining (uncontended) latency and
  // frees the window slot.
  auto advance = [&](std::uint32_t req_id, std::size_t stage) {
    const Request& req = requests[req_id];
    const Program& prog = programs[req.program];
    CoreExecStats& cstats = stats.per_core[req.program];
    if (stage < req.flow.uses.size()) {
      const bw::Flow::Use& use = req.flow.uses[stage];
      const auto r = static_cast<std::size_t>(use.resource);
      const double start = std::max(queue.now(), free_at[r]);
      cstats.queue_ns += start - queue.now();
      const double done = start + service_ns[r] * use.weight;
      if (resstats != nullptr) {
        resstats->on_service(r, queue.now(), start, done, 64.0 * use.weight);
      }
      free_at[r] = done;
      queue.schedule_at(done, prog.core,
                        ProgEvent{ProgEvent::Type::kStage, req_id,
                                  static_cast<std::uint32_t>(stage + 1)});
      return;
    }
    queue.schedule_after(req.base_ns, prog.core,
                         ProgEvent{ProgEvent::Type::kComplete, req_id, 0});
  };

  auto try_issue = [&](std::size_t p) {
    const Program& prog = programs[p];
    CoreState& cs = cores[p];
    CoreExecStats& cstats = stats.per_core[p];
    cs.issue_scheduled = false;

    // Flushes are bookkeeping: execute in place, no latency, no slot.
    while (cs.next < prog.ops.size() &&
           prog.ops[cs.next].kind == OpKind::kFlush) {
      if (config.instrumentation.linestats != nullptr) {
        config.instrumentation.linestats->set_now(queue.now());
      }
      system.flush_line(prog.ops[cs.next].addr);
      ++cs.next;
      ++cstats.flushes;
      cstats.finish_ns = std::max(cstats.finish_ns, queue.now());
    }
    if (cs.next >= prog.ops.size() || cs.outstanding >= config.window) return;

    const Op op = prog.ops[cs.next++];
    // The engine access (and thus all coherence state mutation) happens at
    // issue time, in event order — this is what makes ownership migration
    // and invalidation patterns deterministic.  The flight recorder clocks
    // residency off the event queue, not the access latencies it would
    // otherwise accumulate serially.
    if (config.instrumentation.linestats != nullptr) {
      config.instrumentation.linestats->set_now(queue.now());
    }
    const AccessResult access = op.kind == OpKind::kWrite
                                    ? system.write(prog.core, op.addr)
                                    : system.read(prog.core, op.addr);
    ++cstats.accesses;
    cstats.access_ns += access.ns;
    ++cstats.by_source[static_cast<std::size_t>(access.source)];

    // The shared boxes this access occupies follow from where the engine
    // actually serviced it — the same path decomposition the analytic model
    // uses for a stream of this class.
    bw::StreamSpec spec;
    spec.core = prog.core;
    spec.write = op.kind == OpKind::kWrite;
    spec.source = access.source;
    spec.source_node = access.source_node;
    spec.home_node = home_node_of(op.addr);
    spec.latency_ns = access.ns;
    const std::uint32_t req_id = acquire_request();
    Request& req = requests[req_id];
    req.program = static_cast<std::uint32_t>(p);
    model.flow_into(spec, req.flow);
    double service_sum = 0.0;
    for (const bw::Flow::Use& use : req.flow.uses) {
      service_sum +=
          service_ns[static_cast<std::size_t>(use.resource)] * use.weight;
    }
    req.base_ns = std::max(0.0, access.ns - service_sum);

    ++cs.outstanding;
    advance(req_id, 0);
    request_issue(p, queue.now() + config.issue_ns);
  };

  for (std::size_t p = 0; p < programs.size(); ++p) {
    stats.per_core[p].core = programs[p].core;
    request_issue(p, 0.0);
  }
  queue.run([&](const ProgEvent& event) {
    switch (event.type) {
      case ProgEvent::Type::kIssue:
        try_issue(event.a);
        break;
      case ProgEvent::Type::kStage:
        advance(event.a, event.b);
        break;
      case ProgEvent::Type::kComplete: {
        const std::size_t p = requests[event.a].program;
        CoreState& cs = cores[p];
        --cs.outstanding;
        stats.per_core[p].finish_ns =
            std::max(stats.per_core[p].finish_ns, queue.now());
        free_requests.push_back(event.a);
        request_issue(p, queue.now());
        break;
      }
    }
  });

  // queue.now() after the drain is the makespan — the last completion (or
  // flush) the run processed — which closes the observation window.
  if (resstats != nullptr) resstats->finalize(queue.now());

  stats.counters = attached.release();
  for (const CoreExecStats& cstats : stats.per_core) {
    stats.accesses += cstats.accesses;
    stats.flushes += cstats.flushes;
    stats.access_ns += cstats.access_ns;
    stats.queue_ns += cstats.queue_ns;
    stats.makespan_ns = std::max(stats.makespan_ns, cstats.finish_ns);
    for (std::size_t s = 0; s < cstats.by_source.size(); ++s) {
      stats.by_source[s] += cstats.by_source[s];
    }
  }
  if (stats.makespan_ns > 0.0) {
    stats.aggregate_gbps =
        static_cast<double>(stats.accesses) * 64.0 / stats.makespan_ns;
  }
  return stats;
}

}  // namespace hsw::exec
