// Event-driven concurrent execution engine.
//
// The analytic bandwidth model (bw/model.h + bw/solver.h) is a fluid
// approximation: per-stream MLP-limited demands pushed through a max-min
// solver.  This module makes multi-core bandwidth and contention *emerge*
// from simulation instead: each core keeps a bounded window of outstanding
// misses (its MLP), every in-flight line visits the shared boxes on its
// path — ring stop, home agent / iMC channel, QPI link, inter-ring bridge —
// as FIFO servers with deterministic per-line service times, and
// back-pressure at a saturated box is what flattens the aggregate curve.
//
// Two entry points share that machinery:
//
//  * run_closed_loop() — saturated streaming: each stream is a closed loop
//    of request slots calibrated so its unloaded throughput equals the
//    MLP-limited demand exactly; contention then shows up as queueing.
//    `measure_bandwidth` uses it for BandwidthEngine::kSimulated, feeding
//    the *same* flows over the *same* resources as the analytic solver
//    (bw::BandwidthModel::flow_for / capacities), so the two engines can be
//    cross-checked point-for-point (validate_bw_model).
//
//  * run_programs() — true interleaving: per-core op sequences execute
//    against the real CoherenceEngine, so line ownership migrates,
//    directories update, and ping-pong / lock contention / false sharing
//    behave as protocol phenomena, not as fitted rates.  Ops issue in
//    event-time order; each access's resource path is derived from where
//    the engine actually serviced it.
//
// Everything is single-threaded on sim/event_queue with the (timestamp,
// core, seq) tie-break, so a run is a pure function of its inputs — the
// byte-identical CSV/trace/metrics guarantees of the sweep harness carry
// over to simulated mode unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "bw/model.h"
#include "core/instrumentation.h"
#include "machine/system.h"

namespace hsw::exec {

// --- closed-loop streaming ---------------------------------------------------

// One core's saturated stream: the MLP-limited standalone rate it would
// sustain alone, its unloaded per-line latency, and the shared resources on
// its path (indices into the capacity vector, weights = protocol bytes per
// payload byte).  Build it from bw::BandwidthModel::flow_for so both
// engines argue about the same flows.
struct StreamTask {
  int core = 0;
  double demand_gbps = 0.0;
  double latency_ns = 0.0;  // unloaded round trip per line (probe-measured)
  std::vector<bw::Flow::Use> path;
};

struct ClosedLoopConfig {
  // Measurement window (ns); throughput is counted over it after a warmup
  // of window/4.  The default keeps quantization error below 0.1% at
  // single-GB/s rates while a full Fig. 8 sweep stays interactive.
  double window_ns = 100'000.0;
  // Optional per-resource queueing telemetry (obs/resource_stats.h): one
  // on_service() per (request, resource) visit, one null-pointer test when
  // detached.  The closed loops have no System, so this is the only member
  // of the usual InstrumentationScope that applies here; callers with a
  // full scope (measure_bandwidth) pass scope.resstats through.  The
  // recorder must be fresh (one recorder accounts one run) — the engine
  // binds it to the capacity vector and finalizes it before returning.
  obs::ResourceStatsRecorder* resstats = nullptr;
};

struct ClosedLoopResult {
  std::vector<double> gbps;           // per task
  double total_gbps = 0.0;
  std::uint64_t lines_retired = 0;
  // Mean per-line queueing delay (waiting for busy resources, ns) — zero
  // when the task's path is uncontended.
  std::vector<double> mean_queue_ns;
  // Always-on per-resource busy residency over the whole run (indexed like
  // `capacities_gbps`) and the run length it is measured against — enough
  // to name each stream's bottleneck without attaching a recorder.
  std::vector<double> resource_busy_ns;
  double elapsed_ns = 0.0;
};

// Simulates the closed loops over shared FIFO resources.  Each task runs
// ceil(demand * cycle / 64) request slots with an idle pad calibrated so its
// unloaded rate equals `demand_gbps` exactly; `capacities_gbps` is indexed
// like StreamTask::path resources (bw::BandwidthModel::capacities()).
// Deterministic: same inputs, same result, independent of caller threading.
ClosedLoopResult run_closed_loop(const std::vector<StreamTask>& tasks,
                                 const std::vector<double>& capacities_gbps,
                                 const ClosedLoopConfig& config = {});

// --- concurrent program execution --------------------------------------------

enum class OpKind : std::uint8_t { kRead, kWrite, kFlush };

struct Op {
  OpKind kind = OpKind::kRead;
  PhysAddr addr = 0;
};

// One core's ordered op sequence.  Program order is preserved per core;
// cross-core order is whatever the event clock produces.
struct Program {
  int core = 0;
  std::vector<Op> ops;
};

struct ProgramExecConfig {
  // Outstanding misses per core (the MLP window).  1 reproduces the serial
  // dependent-load behaviour; 10 approximates a Haswell core's line-fill
  // capacity.
  int window = 10;
  // Minimum spacing between issue slots of one core (ns); one 2.5 GHz cycle
  // by default, so same-timestamp bursts from different cores interleave.
  double issue_ns = 0.4;
  // Resource capacities and protocol weights (same calibration as the
  // analytic model).
  bw::BwParams model;
  // Tracer/metrics attached around the whole run; the engine-counter delta
  // lands in ProgramExecStats::counters.
  InstrumentationScope instrumentation;
};

struct CoreExecStats {
  int core = 0;
  std::uint64_t accesses = 0;
  std::uint64_t flushes = 0;
  double access_ns = 0.0;   // summed unloaded access latencies
  double queue_ns = 0.0;    // summed waiting-for-resource delays
  double finish_ns = 0.0;   // completion time of the core's last op
  std::array<std::uint64_t, 7> by_source{};  // indexed by ServiceSource

  [[nodiscard]] double mean_access_ns() const {
    return accesses ? access_ns / static_cast<double>(accesses) : 0.0;
  }
};

struct ProgramExecStats {
  double makespan_ns = 0.0;  // completion time of the last op overall
  std::uint64_t accesses = 0;
  std::uint64_t flushes = 0;
  double access_ns = 0.0;
  double queue_ns = 0.0;
  // Lines moved per wall-clock: accesses * 64 B / makespan.
  double aggregate_gbps = 0.0;
  std::array<std::uint64_t, 7> by_source{};
  CounterSet::Snapshot counters{};
  std::vector<CoreExecStats> per_core;

  [[nodiscard]] double mean_access_ns() const {
    return accesses ? access_ns / static_cast<double>(accesses) : 0.0;
  }
  [[nodiscard]] double source_fraction(ServiceSource s) const {
    return accesses ? static_cast<double>(
                          by_source[static_cast<std::size_t>(s)]) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

// Interleaves the programs through `system`'s coherence engine under MLP
// back-pressure and shared-resource queueing.  Accesses mutate engine state
// at issue, in event-time order with the (timestamp, core, seq) tie-break,
// so the run is deterministic.  Flushes execute at issue, cost no latency,
// and do not occupy a window slot (clflush retires asynchronously).
ProgramExecStats run_programs(System& system,
                              const std::vector<Program>& programs,
                              const ProgramExecConfig& config = {});

}  // namespace hsw::exec
