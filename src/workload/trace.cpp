#include "workload/trace.h"

#include <cctype>
#include <istream>
#include <ostream>

namespace hsw {

ReplayStats replay(System& system, const Trace& trace) {
  ReplayStats stats;
  const CounterSet::Snapshot before = system.counters().snapshot();
  for (const TraceEvent& event : trace) {
    switch (event.op) {
      case TraceOp::kRead: {
        const AccessResult r = system.read(event.core, event.addr);
        stats.total_ns += r.ns;
        ++stats.by_source[static_cast<std::size_t>(r.source)];
        break;
      }
      case TraceOp::kWrite: {
        const AccessResult r = system.write(event.core, event.addr);
        stats.total_ns += r.ns;
        ++stats.by_source[static_cast<std::size_t>(r.source)];
        break;
      }
      case TraceOp::kFlush:
        system.flush_line(event.addr);
        break;
    }
    ++stats.events;
  }
  stats.counters = system.counters().diff(before);
  return stats;
}

void write_trace(std::ostream& out, const Trace& trace) {
  for (const TraceEvent& event : trace) {
    const char op = event.op == TraceOp::kRead    ? 'R'
                    : event.op == TraceOp::kWrite ? 'W'
                                                  : 'F';
    out << event.core << ' ' << op << ' ' << std::hex << event.addr
        << std::dec << '\n';
  }
}

bool read_trace(std::istream& in, Trace& trace) {
  std::int32_t core = 0;
  char op = 0;
  while (in >> core >> op) {
    PhysAddr addr = 0;
    if (!(in >> std::hex >> addr >> std::dec)) return false;
    TraceEvent event;
    event.core = core;
    switch (op) {
      case 'R': event.op = TraceOp::kRead; break;
      case 'W': event.op = TraceOp::kWrite; break;
      case 'F': event.op = TraceOp::kFlush; break;
      default: return false;
    }
    event.addr = addr;
    trace.push_back(event);
  }
  return in.eof();
}

Trace make_stream_trace(System& system, const std::vector<int>& cores,
                        std::uint64_t bytes_per_core, double write_fraction,
                        std::uint64_t seed) {
  Trace trace;
  Xoshiro256 rng(seed);
  std::vector<MemRegion> regions;
  regions.reserve(cores.size());
  for (int core : cores) {
    regions.push_back(system.alloc_on_node(
        system.topology().node_of_core(core), bytes_per_core));
  }
  const std::uint64_t lines = bytes_per_core / kLineSize;
  // Interleave the cores line-by-line, as concurrent streams would.
  for (std::uint64_t l = 0; l < lines; ++l) {
    for (std::size_t c = 0; c < cores.size(); ++c) {
      TraceEvent event;
      event.core = cores[c];
      event.op = rng.bernoulli(write_fraction) ? TraceOp::kWrite : TraceOp::kRead;
      event.addr = regions[c].addr_at(l * kLineSize);
      trace.push_back(event);
    }
  }
  return trace;
}

Trace make_chase_trace(System& system, const std::vector<int>& cores,
                       std::uint64_t bytes_per_core, std::uint64_t accesses,
                       std::uint64_t seed) {
  Trace trace;
  Xoshiro256 rng(seed);
  std::vector<MemRegion> regions;
  for (int core : cores) {
    regions.push_back(system.alloc_on_node(
        system.topology().node_of_core(core), bytes_per_core));
  }
  const std::uint64_t lines = bytes_per_core / kLineSize;
  for (std::uint64_t i = 0; i < accesses; ++i) {
    for (std::size_t c = 0; c < cores.size(); ++c) {
      TraceEvent event;
      event.core = cores[c];
      event.op = TraceOp::kRead;
      event.addr = regions[c].addr_at(rng.bounded(lines) * kLineSize);
      trace.push_back(event);
    }
  }
  return trace;
}

Trace make_producer_consumer_trace(System& system, int producer, int consumer,
                                   std::uint64_t block_bytes, int rounds,
                                   std::uint64_t /*seed*/) {
  Trace trace;
  const MemRegion region = system.alloc_on_node(
      system.topology().node_of_core(producer), block_bytes);
  const std::uint64_t lines = block_bytes / kLineSize;
  for (int round = 0; round < rounds; ++round) {
    for (std::uint64_t l = 0; l < lines; ++l) {
      trace.push_back(
          {producer, TraceOp::kWrite, region.addr_at(l * kLineSize)});
    }
    for (std::uint64_t l = 0; l < lines; ++l) {
      trace.push_back(
          {consumer, TraceOp::kRead, region.addr_at(l * kLineSize)});
    }
  }
  return trace;
}

Trace make_hotset_trace(System& system, const std::vector<int>& cores,
                        std::uint64_t hot_lines, std::uint64_t accesses,
                        double write_fraction, std::uint64_t seed) {
  Trace trace;
  Xoshiro256 rng(seed);
  const MemRegion region = system.alloc_on_node(0, hot_lines * kLineSize);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    TraceEvent event;
    event.core = cores[rng.bounded(cores.size())];
    event.op = rng.bernoulli(write_fraction) ? TraceOp::kWrite : TraceOp::kRead;
    event.addr = region.addr_at(rng.bounded(hot_lines) * kLineSize);
    trace.push_back(event);
  }
  return trace;
}

}  // namespace hsw
