#include "workload/trace.h"

#include <cctype>
#include <istream>
#include <ostream>

namespace hsw {

ReplayStats replay(System& system, const Trace& trace,
                   const InstrumentationScope& scope) {
  ReplayStats stats;
  ScopedInstrumentation attached(system, scope);
  for (const TraceEvent& event : trace) {
    switch (event.op) {
      case TraceOp::kRead: {
        const AccessResult r = system.read(event.core, event.addr);
        stats.total_ns += r.ns;
        ++stats.by_source[static_cast<std::size_t>(r.source)];
        break;
      }
      case TraceOp::kWrite: {
        const AccessResult r = system.write(event.core, event.addr);
        stats.total_ns += r.ns;
        ++stats.by_source[static_cast<std::size_t>(r.source)];
        break;
      }
      case TraceOp::kFlush:
        system.flush_line(event.addr);
        break;
    }
    ++stats.events;
  }
  stats.counters = attached.release();
  return stats;
}

exec::ProgramExecStats replay_concurrent(System& system, const Trace& trace,
                                         const ConcurrentReplayConfig& config) {
  // Split into per-core programs, preserving each core's program order.
  // Program slots are indexed by first appearance, but exec's event-time
  // interleaving is keyed by core id, so the split order does not matter.
  std::vector<exec::Program> programs;
  std::vector<std::size_t> slot_of(
      static_cast<std::size_t>(system.core_count()), SIZE_MAX);
  for (const TraceEvent& event : trace) {
    const auto core = static_cast<std::size_t>(event.core);
    if (slot_of[core] == SIZE_MAX) {
      slot_of[core] = programs.size();
      programs.push_back({event.core, {}});
    }
    exec::Op op;
    op.kind = event.op == TraceOp::kRead    ? exec::OpKind::kRead
              : event.op == TraceOp::kWrite ? exec::OpKind::kWrite
                                            : exec::OpKind::kFlush;
    op.addr = event.addr;
    programs[slot_of[core]].ops.push_back(op);
  }

  exec::ProgramExecConfig ec;
  ec.window = config.window;
  ec.model = config.model;
  ec.instrumentation = config.instrumentation;
  return exec::run_programs(system, programs, ec);
}

void write_trace(std::ostream& out, const Trace& trace) {
  for (const TraceEvent& event : trace) {
    const char op = event.op == TraceOp::kRead    ? 'R'
                    : event.op == TraceOp::kWrite ? 'W'
                                                  : 'F';
    out << event.core << ' ' << op << ' ' << std::hex << event.addr
        << std::dec << '\n';
  }
}

bool read_trace(std::istream& in, Trace& trace) {
  std::int32_t core = 0;
  char op = 0;
  while (in >> core >> op) {
    PhysAddr addr = 0;
    if (!(in >> std::hex >> addr >> std::dec)) return false;
    TraceEvent event;
    event.core = core;
    switch (op) {
      case 'R': event.op = TraceOp::kRead; break;
      case 'W': event.op = TraceOp::kWrite; break;
      case 'F': event.op = TraceOp::kFlush; break;
      default: return false;
    }
    event.addr = addr;
    trace.push_back(event);
  }
  return in.eof();
}

Trace make_stream_trace(System& system, const std::vector<int>& cores,
                        std::uint64_t bytes_per_core, double write_fraction,
                        std::uint64_t seed) {
  Trace trace;
  Xoshiro256 rng(seed);
  std::vector<MemRegion> regions;
  regions.reserve(cores.size());
  for (int core : cores) {
    regions.push_back(system.alloc_on_node(
        system.topology().node_of_core(core), bytes_per_core));
  }
  const std::uint64_t lines = bytes_per_core / kLineSize;
  // Interleave the cores line-by-line, as concurrent streams would.
  for (std::uint64_t l = 0; l < lines; ++l) {
    for (std::size_t c = 0; c < cores.size(); ++c) {
      TraceEvent event;
      event.core = cores[c];
      event.op = rng.bernoulli(write_fraction) ? TraceOp::kWrite : TraceOp::kRead;
      event.addr = regions[c].addr_at(l * kLineSize);
      trace.push_back(event);
    }
  }
  return trace;
}

Trace make_chase_trace(System& system, const std::vector<int>& cores,
                       std::uint64_t bytes_per_core, std::uint64_t accesses,
                       std::uint64_t seed) {
  Trace trace;
  Xoshiro256 rng(seed);
  std::vector<MemRegion> regions;
  for (int core : cores) {
    regions.push_back(system.alloc_on_node(
        system.topology().node_of_core(core), bytes_per_core));
  }
  const std::uint64_t lines = bytes_per_core / kLineSize;
  for (std::uint64_t i = 0; i < accesses; ++i) {
    for (std::size_t c = 0; c < cores.size(); ++c) {
      TraceEvent event;
      event.core = cores[c];
      event.op = TraceOp::kRead;
      event.addr = regions[c].addr_at(rng.bounded(lines) * kLineSize);
      trace.push_back(event);
    }
  }
  return trace;
}

Trace make_producer_consumer_trace(System& system, int producer, int consumer,
                                   std::uint64_t block_bytes, int rounds,
                                   std::uint64_t /*seed*/) {
  Trace trace;
  const MemRegion region = system.alloc_on_node(
      system.topology().node_of_core(producer), block_bytes);
  const std::uint64_t lines = block_bytes / kLineSize;
  for (int round = 0; round < rounds; ++round) {
    for (std::uint64_t l = 0; l < lines; ++l) {
      trace.push_back(
          {producer, TraceOp::kWrite, region.addr_at(l * kLineSize)});
    }
    for (std::uint64_t l = 0; l < lines; ++l) {
      trace.push_back(
          {consumer, TraceOp::kRead, region.addr_at(l * kLineSize)});
    }
  }
  return trace;
}

Trace make_pingpong_trace(System& system, int producer, int consumer,
                          int rounds) {
  Trace trace;
  const MemRegion region = system.alloc_on_node(
      system.topology().node_of_core(producer), kLineSize);
  const PhysAddr mailbox = region.addr_at(0);
  for (int round = 0; round < rounds; ++round) {
    trace.push_back({producer, TraceOp::kWrite, mailbox});
    trace.push_back({consumer, TraceOp::kRead, mailbox});
  }
  return trace;
}

Trace make_lock_trace(System& system, const std::vector<int>& cores,
                      std::uint64_t payload_lines, int acquisitions,
                      std::uint64_t seed) {
  Trace trace;
  Xoshiro256 rng(seed);
  const MemRegion lock = system.alloc_on_node(0, kLineSize);
  const MemRegion payload =
      system.alloc_on_node(0, std::max<std::uint64_t>(payload_lines, 1) *
                                  kLineSize);
  const PhysAddr lock_addr = lock.addr_at(0);
  for (int a = 0; a < acquisitions; ++a) {
    const int core = cores[rng.bounded(cores.size())];
    // Acquire: the CAS is a read + write on the lock line (the RMW brings
    // the line in M state to this core, invalidating the previous holder).
    trace.push_back({core, TraceOp::kRead, lock_addr});
    trace.push_back({core, TraceOp::kWrite, lock_addr});
    // Critical section over the protected block.
    for (std::uint64_t l = 0; l < payload_lines; ++l) {
      trace.push_back({core, TraceOp::kWrite, payload.addr_at(l * kLineSize)});
    }
    // Release store.
    trace.push_back({core, TraceOp::kWrite, lock_addr});
  }
  return trace;
}

Trace make_false_sharing_trace(System& system, const std::vector<int>& cores,
                               int writes_per_core, bool padded) {
  Trace trace;
  // One counter per core: packed into a single line (false sharing) or one
  // line each (padded).  Line granularity stands in for byte offsets — the
  // protocol traffic is identical.
  const MemRegion region = system.alloc_on_node(
      0, padded ? cores.size() * kLineSize : kLineSize);
  for (int w = 0; w < writes_per_core; ++w) {
    for (std::size_t c = 0; c < cores.size(); ++c) {
      trace.push_back({cores[c], TraceOp::kWrite,
                       region.addr_at(padded ? c * kLineSize : 0)});
    }
  }
  return trace;
}

Trace make_hotset_trace(System& system, const std::vector<int>& cores,
                        std::uint64_t hot_lines, std::uint64_t accesses,
                        double write_fraction, std::uint64_t seed) {
  Trace trace;
  Xoshiro256 rng(seed);
  const MemRegion region = system.alloc_on_node(0, hot_lines * kLineSize);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    TraceEvent event;
    event.core = cores[rng.bounded(cores.size())];
    event.op = rng.bernoulli(write_fraction) ? TraceOp::kWrite : TraceOp::kRead;
    event.addr = region.addr_at(rng.bounded(hot_lines) * kLineSize);
    trace.push_back(event);
  }
  return trace;
}

}  // namespace hsw
