// Memory-access traces: recording, synthesis, and replay.
//
// A trace is a flat sequence of (core, op, address) events.  Traces close
// the loop between the microbenchmarks and application-style evaluation:
// synthetic generators produce the canonical HPC access patterns (streams,
// pointer chases, producer-consumer sharing, hot-set contention), the
// replayer drives them through a System under any coherence configuration,
// and the statistics expose exactly the per-source breakdown the paper's
// perf-counter analysis uses.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "machine/system.h"
#include "util/rng.h"

namespace hsw {

enum class TraceOp : std::uint8_t { kRead, kWrite, kFlush };

struct TraceEvent {
  std::int32_t core = 0;
  TraceOp op = TraceOp::kRead;
  PhysAddr addr = 0;
};

using Trace = std::vector<TraceEvent>;

// --- replay ------------------------------------------------------------------

struct ReplayStats {
  std::uint64_t events = 0;
  double total_ns = 0.0;                       // sum of access latencies
  std::array<std::uint64_t, 7> by_source{};    // indexed by ServiceSource
  CounterSet::Snapshot counters{};             // deltas over the replay

  [[nodiscard]] double mean_ns() const {
    return events ? total_ns / static_cast<double>(events) : 0.0;
  }
  [[nodiscard]] double source_fraction(ServiceSource s) const {
    return events ? static_cast<double>(
                        by_source[static_cast<std::size_t>(s)]) /
                        static_cast<double>(events)
                  : 0.0;
  }
};

// Replays every event in order; flushes count toward `events` but not the
// latency sum (clflush retires asynchronously on real hardware).
ReplayStats replay(System& system, const Trace& trace);

// --- serialization -------------------------------------------------------------

// Compact text format: one `core op hex-addr` triple per line; ops R/W/F.
void write_trace(std::ostream& out, const Trace& trace);
// Parses the same format.  Returns false (and stops) on malformed input.
bool read_trace(std::istream& in, Trace& trace);

// --- generators -----------------------------------------------------------------

// Every generator owns its buffers: it allocates regions from `system` so
// the addresses are valid for replay on that system.

// Sequential streaming read/write over a per-core private buffer.
Trace make_stream_trace(System& system, const std::vector<int>& cores,
                        std::uint64_t bytes_per_core, double write_fraction,
                        std::uint64_t seed);

// Random dependent-load chase per core (latency-bound).
Trace make_chase_trace(System& system, const std::vector<int>& cores,
                       std::uint64_t bytes_per_core, std::uint64_t accesses,
                       std::uint64_t seed);

// Producer-consumer: `producer` writes a block, `consumer` reads it,
// repeatedly — the migratory pattern the HitME cache targets.
Trace make_producer_consumer_trace(System& system, int producer, int consumer,
                                   std::uint64_t block_bytes, int rounds,
                                   std::uint64_t seed);

// All cores hammer a small hot set with mixed reads/writes (lock-like
// contention); lines ping-pong between nodes.
Trace make_hotset_trace(System& system, const std::vector<int>& cores,
                        std::uint64_t hot_lines, std::uint64_t accesses,
                        double write_fraction, std::uint64_t seed);

}  // namespace hsw
