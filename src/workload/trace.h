// Memory-access traces: recording, synthesis, and replay.
//
// A trace is a flat sequence of (core, op, address) events.  Traces close
// the loop between the microbenchmarks and application-style evaluation:
// synthetic generators produce the canonical HPC access patterns (streams,
// pointer chases, producer-consumer sharing, hot-set contention, lock and
// false-sharing ping-pong), the replayers drive them through a System under
// any coherence configuration, and the statistics expose exactly the
// per-source breakdown the paper's perf-counter analysis uses.
//
// Two replayers: `replay` walks the flat event list in order (one access at
// a time, like a single load-to-use chain), `replay_concurrent` splits the
// trace into per-core programs and interleaves them through the exec engine
// — per-core order is preserved, cross-core order emerges from event time
// under MLP windows and resource back-pressure, which is what makes
// ping-pong, lock contention, and false sharing behave like the protocol
// phenomena they are.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/instrumentation.h"
#include "exec/engine.h"
#include "machine/system.h"
#include "util/rng.h"

namespace hsw {

enum class TraceOp : std::uint8_t { kRead, kWrite, kFlush };

struct TraceEvent {
  std::int32_t core = 0;
  TraceOp op = TraceOp::kRead;
  PhysAddr addr = 0;
};

using Trace = std::vector<TraceEvent>;

// --- replay ------------------------------------------------------------------

struct ReplayStats {
  std::uint64_t events = 0;
  double total_ns = 0.0;                       // sum of access latencies
  std::array<std::uint64_t, 7> by_source{};    // indexed by ServiceSource
  CounterSet::Snapshot counters{};             // deltas over the replay

  [[nodiscard]] double mean_ns() const {
    return events ? total_ns / static_cast<double>(events) : 0.0;
  }
  [[nodiscard]] double source_fraction(ServiceSource s) const {
    return events ? static_cast<double>(
                        by_source[static_cast<std::size_t>(s)]) /
                        static_cast<double>(events)
                  : 0.0;
  }
};

// Replays every event in order; flushes count toward `events` but not the
// latency sum (clflush retires asynchronously on real hardware).  The scope
// is attached for the whole replay (`ReplayStats::counters` is its delta).
ReplayStats replay(System& system, const Trace& trace,
                   const InstrumentationScope& scope = {});

// --- concurrent replay -------------------------------------------------------

struct ConcurrentReplayConfig {
  // Outstanding misses per core; 1 degenerates to per-core serial issue.
  int window = 10;
  // Resource capacities / protocol weights for the queueing layer.
  bw::BwParams model;
  // Attached around the whole interleaved run.
  InstrumentationScope instrumentation;
};

// Splits the trace into per-core programs (preserving each core's order) and
// interleaves them through exec::run_programs.  Deterministic: same trace,
// same stats, regardless of caller threading.
exec::ProgramExecStats replay_concurrent(
    System& system, const Trace& trace,
    const ConcurrentReplayConfig& config = {});

// --- serialization -------------------------------------------------------------

// Compact text format: one `core op hex-addr` triple per line; ops R/W/F.
void write_trace(std::ostream& out, const Trace& trace);
// Parses the same format.  Returns false (and stops) on malformed input.
bool read_trace(std::istream& in, Trace& trace);

// --- generators -----------------------------------------------------------------

// Every generator owns its buffers: it allocates regions from `system` so
// the addresses are valid for replay on that system.

// Sequential streaming read/write over a per-core private buffer.
Trace make_stream_trace(System& system, const std::vector<int>& cores,
                        std::uint64_t bytes_per_core, double write_fraction,
                        std::uint64_t seed);

// Random dependent-load chase per core (latency-bound).
Trace make_chase_trace(System& system, const std::vector<int>& cores,
                       std::uint64_t bytes_per_core, std::uint64_t accesses,
                       std::uint64_t seed);

// Producer-consumer: `producer` writes a block, `consumer` reads it,
// repeatedly — the migratory pattern the HitME cache targets.
Trace make_producer_consumer_trace(System& system, int producer, int consumer,
                                   std::uint64_t block_bytes, int rounds,
                                   std::uint64_t seed);

// All cores hammer a small hot set with mixed reads/writes (lock-like
// contention); lines ping-pong between nodes.
Trace make_hotset_trace(System& system, const std::vector<int>& cores,
                        std::uint64_t hot_lines, std::uint64_t accesses,
                        double write_fraction, std::uint64_t seed);

// The patterns below only make sense interleaved (replay_concurrent): their
// cost comes from cross-core timing, not from any single core's stream.

// Fine-grained producer-consumer ping-pong: the two cores alternate
// write/read on the *same* line every round (a mailbox word), the migratory
// pattern at its sharpest — each round is an ownership transfer.
Trace make_pingpong_trace(System& system, int producer, int consumer,
                          int rounds);

// Lock/atomics hot-line contention: every critical section is an RMW pair
// (read + write) on the lock line, `payload_lines` accesses to the protected
// block, then the release store.  All cores target one lock word, so the
// lock line ping-pongs in M state between nodes (Schweizer et al.'s
// contended-atomics regime).
Trace make_lock_trace(System& system, const std::vector<int>& cores,
                      std::uint64_t payload_lines, int acquisitions,
                      std::uint64_t seed);

// False sharing: each core repeatedly writes "its own" counter.  Unpadded
// (padded = false), all counters land in one cache line and every write
// invalidates the other writers; padded, each counter gets a private line
// and the writes are independent.  Replay both and diff the mean latencies
// to price the false sharing.
Trace make_false_sharing_trace(System& system, const std::vector<int>& cores,
                               int writes_per_core, bool padded);

}  // namespace hsw
