// Synthetic application models standing in for SPEC OMP2012 / SPEC MPI2007.
//
// The paper's Fig. 10 reports *relative runtime* of the SPEC suites under
// the three coherence configurations.  We cannot ship SPEC, so each
// application is modelled by its memory-access profile — the quantity that
// actually couples application performance to the coherence protocol.  The
// profiles are replayed against the simulator: per-access costs are probed
// from the configured System (so the protocol mode changes them exactly as
// it changes the microbenchmarks), then composed into a per-work-unit
// runtime.  Profile parameters were chosen to match each code's published
// characterisation (bandwidth-bound stencils, latency-bound irregular codes,
// sharing-heavy assembly/update phases in 362.fma3d and 371.applu331 — the
// two codes the paper singles out as COD-sensitive).
#pragma once

#include <string>
#include <vector>

#include "machine/system.h"

namespace hsw {

struct AppProfile {
  std::string name;
  std::string suite;  // "OMP2012" or "MPI2007"

  // Fraction of a work unit spent in pure compute (no memory dependence).
  double compute_fraction = 0.5;
  // Mix of the memory operations (fractions of all memory ops; remainder
  // after l2+l3+dram is L1-resident).
  double f_l2 = 0.1;
  double f_l3 = 0.1;
  double f_dram = 0.1;
  // Of the DRAM accesses, fraction homed on the thread's own NUMA node.
  // MPI ranks are ~fully local; non-NUMA-aware OpenMP codes are not.
  double numa_locality = 0.9;
  // Fraction of memory ops that read cache lines last written/forwarded by a
  // thread in another NUMA node (producer-consumer / reduction sharing).
  double sharing = 0.0;
  // Average memory-level parallelism of the DRAM accesses (1 = pointer
  // chasing, >6 = streaming with prefetch).
  double mlp = 4.0;
  // Per-thread streaming intensity: how close the code pushes its share of
  // the memory bandwidth (0 = latency bound, 1 = fully bandwidth bound).
  double bandwidth_bound = 0.3;
};

// The 14 SPEC OMP2012 application models.
[[nodiscard]] const std::vector<AppProfile>& spec_omp2012();
// The 13 SPEC MPI2007 application models.
[[nodiscard]] const std::vector<AppProfile>& spec_mpi2007();

struct AppRunResult {
  double runtime = 0.0;  // arbitrary units, comparable across configs
  double memory_time = 0.0;
  double sharing_time = 0.0;
};

// Estimates the runtime of one work unit of `app` on `config` with one
// thread per core.  OMP2012 threads share data across the whole machine;
// MPI2007 ranks only touch their own node's memory.
AppRunResult estimate_runtime(const AppProfile& app, const SystemConfig& config);

}  // namespace hsw
