#include "workload/apps.h"

#include <algorithm>

#include "bw/model.h"
#include "core/latency.h"

namespace hsw {
namespace {

// Compute time per work unit is config-independent by construction: it is
// anchored to a fixed reference memory-op cost, so only the memory side of
// the runtime responds to the coherence mode.
constexpr double kReferenceMemOpNs = 30.0;

std::vector<AppProfile> make_omp2012() {
  auto app = [](std::string name, double cf, double l2, double l3, double dram,
                double locality, double sharing, double mlp, double bwb) {
    return AppProfile{std::move(name), "OMP2012", cf,   l2,  l3,
                      dram,            locality,  sharing, mlp, bwb};
  };
  return {
      app("350.md", 0.80, 0.10, 0.04, 0.02, 0.85, 0.005, 4.0, 0.10),
      app("351.bwaves", 0.30, 0.10, 0.10, 0.30, 0.80, 0.010, 8.0, 0.90),
      app("352.nab", 0.60, 0.12, 0.15, 0.05, 0.85, 0.010, 4.0, 0.30),
      app("357.bt331", 0.45, 0.10, 0.12, 0.20, 0.80, 0.010, 6.0, 0.70),
      app("358.botsalgn", 0.70, 0.20, 0.05, 0.02, 0.85, 0.010, 3.0, 0.10),
      app("359.botsspar", 0.50, 0.12, 0.20, 0.10, 0.80, 0.020, 3.0, 0.30),
      app("360.ilbdc", 0.25, 0.08, 0.10, 0.35, 0.75, 0.010, 8.0, 0.95),
      app("362.fma3d", 0.40, 0.10, 0.12, 0.15, 0.70, 0.060, 3.0, 0.40),
      app("363.swim", 0.25, 0.08, 0.10, 0.35, 0.80, 0.005, 8.0, 0.95),
      app("367.imagick", 0.75, 0.15, 0.05, 0.03, 0.85, 0.005, 4.0, 0.20),
      app("370.mgrid331", 0.35, 0.10, 0.12, 0.30, 0.80, 0.010, 7.0, 0.80),
      app("371.applu331", 0.30, 0.10, 0.12, 0.12, 0.65, 0.090, 2.5, 0.30),
      app("372.smithwa", 0.60, 0.25, 0.08, 0.02, 0.85, 0.010, 3.0, 0.10),
      app("376.kdtree", 0.55, 0.10, 0.25, 0.06, 0.80, 0.020, 1.5, 0.10),
  };
}

std::vector<AppProfile> make_mpi2007() {
  auto app = [](std::string name, double cf, double l2, double l3, double dram,
                double mlp, double bwb) {
    AppProfile p{std::move(name), "MPI2007", cf, l2, l3, dram, 0.97, 0.008,
                 mlp, bwb};
    return p;
  };
  return {
      app("104.milc", 0.35, 0.10, 0.12, 0.28, 6.0, 0.80),
      app("107.leslie3d", 0.30, 0.10, 0.12, 0.30, 7.0, 0.85),
      app("113.GemsFDTD", 0.35, 0.10, 0.12, 0.28, 6.0, 0.80),
      app("115.fds4", 0.50, 0.12, 0.12, 0.15, 4.0, 0.50),
      app("121.pop2", 0.45, 0.10, 0.15, 0.15, 4.0, 0.50),
      app("122.tachyon", 0.80, 0.12, 0.05, 0.02, 3.0, 0.10),
      app("126.lammps", 0.65, 0.12, 0.10, 0.06, 4.0, 0.30),
      app("127.wrf2", 0.45, 0.10, 0.15, 0.18, 5.0, 0.60),
      app("128.GAPgeofem", 0.40, 0.10, 0.15, 0.22, 5.0, 0.70),
      app("129.tera_tf", 0.50, 0.10, 0.12, 0.18, 5.0, 0.60),
      app("130.socorro", 0.45, 0.10, 0.15, 0.18, 5.0, 0.60),
      app("132.zeusmp2", 0.40, 0.10, 0.12, 0.25, 6.0, 0.70),
      app("137.lu", 0.50, 0.12, 0.15, 0.12, 3.0, 0.40),
  };
}

// Probes the per-access costs of the configured machine.
struct MachineCosts {
  double l1 = 1.6;
  double l2 = 4.8;
  double l3 = 21.2;
  double dram_local = 96.4;
  double dram_remote = 146.0;
  double shared_line = 90.0;      // read of a line forwarded by another node
  double dram_bw_share = 5.2;     // GB/s per thread, all threads streaming
  double remote_bw_share = 1.4;   // GB/s per thread over QPI
};

MachineCosts probe_costs(const SystemConfig& config) {
  MachineCosts costs;
  costs.l1 = config.timing.l1_hit;
  costs.l2 = config.timing.l2_hit;

  const int nodes = config.snoop_mode == SnoopMode::kCod ? 4 : 2;

  auto probe = [&](int reader, Placement placement, std::uint64_t bytes) {
    System system(config);
    LatencyConfig lc;
    lc.reader_core = reader;
    lc.placement = placement;
    lc.buffer_bytes = bytes;
    lc.max_measured_lines = 2048;
    return measure_latency(system, lc).mean_ns;
  };

  // Local L3: own data evicted from the core caches.
  costs.l3 = probe(0,
                   Placement{.owner_core = 0, .memory_node = 0,
                             .state = Mesif::kModified, .sharers = {},
                             .level = CacheLevel::kL3},
                   512 * 1024);
  // Local / remote memory (cold lines, chase).
  costs.dram_local = probe(0,
                           Placement{.owner_core = 0, .memory_node = 0,
                                     .state = Mesif::kModified, .sharers = {},
                                     .level = CacheLevel::kMemory},
                           2 * 1024 * 1024);
  const int far_node = nodes - 1;
  costs.dram_remote = probe(0,
                            Placement{.owner_core = 0, .memory_node = far_node,
                                      .state = Mesif::kModified, .sharers = {},
                                      .level = CacheLevel::kMemory},
                            2 * 1024 * 1024);

  // Cross-node shared line: home in the neighbour node, forward copy in a
  // third node when one exists (the COD three-node transaction).
  {
    System system(config);
    const SystemTopology& topo = system.topology();
    const int home = 1 % nodes;
    const int fwd = nodes > 2 ? 2 : 1;
    Placement placement;
    placement.owner_core = topo.node(home).cores[1];
    placement.memory_node = home;
    placement.state = Mesif::kShared;
    placement.sharers = {topo.node(fwd).cores[1]};
    placement.level = CacheLevel::kL3;
    LatencyConfig lc;
    lc.reader_core = 0;
    lc.placement = placement;
    lc.buffer_bytes = 4 * 1024 * 1024;  // beyond the HitME coverage
    lc.max_measured_lines = 2048;
    costs.shared_line = measure_latency(system, lc).mean_ns;
  }

  // Fair bandwidth shares with every core streaming.
  {
    System system(config);
    const bw::BandwidthModel model(system);
    const int threads_per_node =
        static_cast<int>(system.topology().node(0).cores.size());
    bw::StreamSpec local;
    local.core = 0;
    local.source = ServiceSource::kLocalDram;
    local.source_node = 0;
    local.home_node = 0;
    local.latency_ns = costs.dram_local;
    std::vector<bw::StreamSpec> streams(
        static_cast<std::size_t>(threads_per_node), local);
    for (std::size_t i = 0; i < streams.size(); ++i) {
      streams[i].core = system.topology().node(0).cores[i];
    }
    const auto rates = model.concurrent(streams);
    costs.dram_bw_share = rates.front();

    bw::StreamSpec remote = local;
    remote.source = ServiceSource::kRemoteDram;
    remote.home_node = far_node;
    remote.source_node = far_node;
    remote.latency_ns = costs.dram_remote;
    remote.stale_directory = config.snoop_mode == SnoopMode::kCod;
    std::vector<bw::StreamSpec> remote_streams(
        static_cast<std::size_t>(threads_per_node), remote);
    for (std::size_t i = 0; i < remote_streams.size(); ++i) {
      remote_streams[i].core = system.topology().node(0).cores[i];
    }
    const auto remote_rates = model.concurrent(remote_streams);
    costs.remote_bw_share = remote_rates.front();
  }
  return costs;
}

}  // namespace

const std::vector<AppProfile>& spec_omp2012() {
  static const std::vector<AppProfile> apps = make_omp2012();
  return apps;
}

const std::vector<AppProfile>& spec_mpi2007() {
  static const std::vector<AppProfile> apps = make_mpi2007();
  return apps;
}

AppRunResult estimate_runtime(const AppProfile& app,
                              const SystemConfig& config) {
  const MachineCosts costs = probe_costs(config);

  // Effective per-line DRAM service time: latency hidden by the app's MLP,
  // floored by the thread's fair bandwidth share when it streams.
  // `pressure` scales how much of the thread's streaming intensity actually
  // lands on this path: a 90%-local app only puts 10% of its stream on QPI,
  // so it rarely saturates its cross-socket share.
  auto dram_time = [&](double latency, double bw_share, double pressure) {
    const double latency_limited = latency / std::max(app.mlp, 1.0);
    const double bw_limited = 64.0 / std::max(bw_share, 0.1);
    return std::max(latency_limited,
                    app.bandwidth_bound * pressure * bw_limited);
  };

  const double f_l1 =
      std::max(0.0, 1.0 - app.f_l2 - app.f_l3 - app.f_dram - app.sharing);
  const double mem_op =
      f_l1 * costs.l1 + app.f_l2 * costs.l2 + app.f_l3 * costs.l3 +
      app.f_dram *
          (app.numa_locality * dram_time(costs.dram_local,
                                         costs.dram_bw_share,
                                         app.numa_locality) +
           (1.0 - app.numa_locality) *
               dram_time(costs.dram_remote, costs.remote_bw_share,
                         1.0 - app.numa_locality)) +
      app.sharing * costs.shared_line;

  AppRunResult result;
  result.memory_time = mem_op;
  result.sharing_time = app.sharing * costs.shared_line;
  const double compute = app.compute_fraction /
                         (1.0 - app.compute_fraction) * kReferenceMemOpNs;
  result.runtime = compute + mem_op;
  return result;
}

}  // namespace hsw
