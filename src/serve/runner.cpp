#include "serve/runner.h"

#include <cstdio>

#include "core/sweep.h"
#include "util/json.h"

namespace hsw::serve {
namespace {

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", value);
  return buf;
}

}  // namespace

std::string run_experiment(const ExperimentSpec& spec,
                           const RunOptions& options) {
  SystemConfig system = spec.system_config();
  system.timing = options.timing;

  std::string out = "{\"hswsim_result_version\":";
  out += std::to_string(kResultVersion);
  out += ",\"kind\":\"";
  out += to_string(spec.kind);
  out += "\",\"spec_hash\":\"";
  out += spec.hash();
  out += "\",\"timing_hash\":\"";
  out += timing_fingerprint(options.timing, to_string(spec.protocol));
  out += "\",\"points\":[";

  const std::size_t total = spec.sizes.size();
  if (spec.kind == ExperimentKind::kLatency) {
    LatencySweepConfig config;
    config.system = system;
    config.reader_core = spec.core;
    config.placement = spec.placement();
    config.sizes = spec.sizes;
    config.max_measured_lines = spec.max_measured_lines;
    config.seed = spec.seed;
    config.sampling = spec.sampling();
    for (std::size_t i = 0; i < total; ++i) {
      const LatencySweepPoint point =
          latency_sweep_point(config, spec.sizes[i]);
      if (i != 0) out += ",";
      out += "{\"bytes\":" + std::to_string(point.bytes);
      out += ",\"mean_ns\":" + fmt(point.result.mean_ns);
      out += ",\"p50_ns\":" + fmt(point.result.p50_ns);
      out += ",\"p95_ns\":" + fmt(point.result.p95_ns);
      out += ",\"p99_ns\":" + fmt(point.result.p99_ns);
      out += ",\"lines\":" + std::to_string(point.result.lines_measured);
      out += ",\"source\":\"";
      out += to_string(point.result.dominant_source);
      out += "\"}";
      if (options.progress) options.progress(i + 1, total);
    }
  } else {
    BandwidthSweepConfig config;
    config.system = system;
    config.stream.core = spec.core;
    config.stream.placement = spec.placement();
    config.stream.write = spec.write;
    config.stream.width = spec.width;
    config.sizes = spec.sizes;
    config.seed = spec.seed;
    config.engine = spec.engine;
    config.sampling = spec.sampling();
    for (std::size_t i = 0; i < total; ++i) {
      const BandwidthSweepPoint point =
          bandwidth_sweep_point(config, spec.sizes[i]);
      if (i != 0) out += ",";
      out += "{\"bytes\":" + std::to_string(point.bytes);
      out += ",\"gbps\":" + fmt(point.gbps);
      out += ",\"source\":\"";
      out += to_string(point.source);
      out += "\",\"queue_ns\":" + fmt(point.mean_queue_ns);
      out += ",\"bottleneck\":\"" + json::escape(point.bottleneck) + "\"}";
      if (options.progress) options.progress(i + 1, total);
    }
  }
  out += "]}";
  return out;
}

}  // namespace hsw::serve
