// The experiment server: NDJSON requests in, NDJSON events out.
//
// The server is transport-independent — examples/hswsim_serve.cpp owns the
// socket (or stdio) plumbing and feeds one request line at a time into
// handle_request(), which emits zero or more single-line response events
// through the supplied sink.  Requests:
//
//   {"op":"submit","specs":[<spec>, ...]}   batch of ExperimentSpec docs
//   {"op":"stats"}                          cache stats snapshot
//   {"op":"ping"}                           liveness probe
//   {"op":"shutdown"}                       ask the daemon to exit
//
// Submit streams progress events per running spec as sweep points finish
// (the same heartbeat contract as the benches' --progress), then one result
// event per spec, in spec order:
//
//   {"event":"progress","spec":i,"done":d,"total":t}
//   {"event":"result","spec":i,"cached":b,"key":"...","bytes":n,"payload":{...}}
//
// Specs in a batch run concurrently on the shared ThreadPool; identical or
// previously seen specs are served from the content-addressed cache, and a
// cached payload is byte-identical to what a fresh simulation would emit
// (serve/runner.h).  Malformed requests produce {"event":"error",...} —
// never an exit: src/serve/ holds the library side of the facade rule (no
// exit(), no stdout).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "coh/timing.h"
#include "serve/cache.h"
#include "sim/thread_pool.h"

namespace hsw::serve {

struct ServerConfig {
  CacheConfig cache;
  // Timing calibration used for every simulation and for the cache keys.
  TimingParams timing = TimingParams::haswell_ep();
  // Worker threads for batch fan-out; 1 = serial, 0 = hardware concurrency.
  unsigned jobs = 1;
};

class Server {
 public:
  explicit Server(ServerConfig config);

  // Handles one request line, emitting response events through `emit`
  // (one complete line per call, without the trailing newline).  Returns
  // false when the request asks the daemon to shut down.  Thread-safe:
  // concurrent connections serialize on the scheduler, and `emit` is only
  // invoked under the server's emission lock for this call.
  bool handle_request(const std::string& line,
                      const std::function<void(const std::string&)>& emit);

  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

 private:
  ServerConfig config_;
  ResultCache cache_;
  ThreadPool pool_;
  // The pool is fork-join, not reentrant: one batch fans out at a time and
  // concurrent submits queue here.
  std::mutex pool_mutex_;
};

}  // namespace hsw::serve
