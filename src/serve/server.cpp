#include "serve/server.h"

#include <exception>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "serve/runner.h"
#include "util/json.h"

namespace hsw::serve {
namespace {

std::string error_event(const std::string& message) {
  return "{\"event\":\"error\",\"message\":\"" + json::escape(message) + "\"}";
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), cache_(config_.cache), pool_(config_.jobs) {}

bool Server::handle_request(
    const std::string& line,
    const std::function<void(const std::string&)>& emit) {
  // One emission lock per request: progress events arrive from pool worker
  // threads while the batch runs, and response lines must never interleave
  // mid-line.
  std::mutex emit_mutex;
  auto emit_sync = [&](const std::string& event) {
    const std::lock_guard<std::mutex> lock(emit_mutex);
    emit(event);
  };

  std::map<std::string, std::string> flat;
  if (!json::parse_flat(line, &flat)) {
    emit_sync(error_event("request is not valid JSON"));
    return true;
  }
  const auto op_it = flat.find("op");
  const std::string op = op_it == flat.end() ? "" : op_it->second;

  if (op == "ping") {
    emit_sync("{\"event\":\"pong\"}");
    return true;
  }
  if (op == "shutdown") {
    emit_sync("{\"event\":\"bye\"}");
    return false;
  }
  if (op == "stats") {
    emit_sync("{\"event\":\"stats\",\"payload\":" +
              cache_.stats_json(/*pretty=*/false) + "}");
    return true;
  }
  if (op != "submit") {
    emit_sync(error_event("unknown op '" + op + "'"));
    return true;
  }

  // Parse the batch up front: a submit is all-or-nothing, so a typo in spec
  // 3 cannot waste the simulation of specs 0-2.
  std::vector<ExperimentSpec> specs;
  for (std::size_t i = 0;; ++i) {
    const std::string prefix = "specs." + std::to_string(i) + ".";
    if (flat.lower_bound(prefix) == flat.end() ||
        !flat.lower_bound(prefix)->first.starts_with(prefix)) {
      break;
    }
    std::string error;
    const auto spec = spec_from_flat(flat, prefix, &error);
    if (!spec) {
      emit_sync(error_event("spec " + std::to_string(i) + ": " + error));
      return true;
    }
    specs.push_back(*spec);
  }
  if (specs.empty()) {
    emit_sync(error_event("submit carries no specs"));
    return true;
  }

  const std::size_t count = specs.size();
  std::vector<std::string> keys(count);
  std::vector<std::string> payloads(count);
  std::vector<bool> cached(count, false);
  std::vector<std::size_t> to_run;        // spec indices that must simulate
  std::map<std::string, std::size_t> first_for_key;
  std::vector<std::size_t> dup_of(count, count);

  for (std::size_t i = 0; i < count; ++i) {
    keys[i] = experiment_cache_key(specs[i], config_.timing);
    // Batch-local duplicates never touch the cache twice: the first
    // occurrence decides, later ones share its payload as cache-served.
    const auto seen = first_for_key.find(keys[i]);
    if (seen != first_for_key.end()) {
      dup_of[i] = seen->second;
      cached[i] = true;
      continue;
    }
    first_for_key.emplace(keys[i], i);
    if (auto hit = cache_.lookup(keys[i])) {
      payloads[i] = std::move(*hit);
      cached[i] = true;
    } else {
      to_run.push_back(i);
    }
  }

  if (!to_run.empty()) {
    std::vector<std::string> fresh(to_run.size());
    std::exception_ptr failure;
    {
      // The fork-join pool runs one wave at a time; a second client's batch
      // waits here rather than corrupting the first wave's epoch.
      const std::lock_guard<std::mutex> pool_lock(pool_mutex_);
      try {
        parallel_for_indexed(pool_, to_run.size(), [&](std::size_t u) {
          const std::size_t i = to_run[u];
          RunOptions options;
          options.timing = config_.timing;
          options.progress = [&emit_sync, i](std::size_t done,
                                             std::size_t total) {
            emit_sync("{\"event\":\"progress\",\"spec\":" + std::to_string(i) +
                      ",\"done\":" + std::to_string(done) +
                      ",\"total\":" + std::to_string(total) + "}");
          };
          fresh[u] = run_experiment(specs[i], options);
        });
      } catch (const std::exception& e) {
        failure = std::current_exception();
        emit_sync(error_event("experiment failed: " + std::string(e.what())));
      }
    }
    if (failure) return true;
    for (std::size_t u = 0; u < to_run.size(); ++u) {
      const std::size_t i = to_run[u];
      payloads[i] = std::move(fresh[u]);
      cache_.insert(keys[i], payloads[i]);
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    const std::string& payload =
        dup_of[i] < count ? payloads[dup_of[i]] : payloads[i];
    emit_sync("{\"event\":\"result\",\"spec\":" + std::to_string(i) +
              ",\"cached\":" + (cached[i] ? "true" : "false") +
              ",\"key\":\"" + keys[i] + "\",\"bytes\":" +
              std::to_string(payload.size()) + ",\"payload\":" + payload +
              "}");
  }
  return true;
}

}  // namespace hsw::serve
