// Spec execution: one ExperimentSpec in, one deterministic result document
// out.
//
// The result is a compact single-line JSON document (NDJSON-transport- and
// cache-friendly): fixed key order, %.6f float formatting, no timestamps or
// host details — so a cached payload is byte-identical to a fresh
// simulation of the same spec under the same timing calibration, which is
// the property the content-addressed cache and its tests assert.
//
// Library contract (like the rest of src/serve/): never exits, never
// prints.  Sweep configuration errors surface as std::invalid_argument from
// the sweep layer; the server turns them into error events.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "coh/timing.h"
#include "core/experiment.h"

namespace hsw::serve {

// Schema version stamped into every result payload.
inline constexpr int kResultVersion = 1;

struct RunOptions {
  // The timing calibration the experiment composes latencies from.  The
  // daemon runs the built-in calibration; tests inject perturbed constants
  // to prove the cache key tracks the fingerprint.
  TimingParams timing = TimingParams::haswell_ep();
  // Called after each sweep point with (points_done, points_total) — the
  // hook the server's streaming progress events (and the benches'
  // --progress heartbeat contract) attach to.  May be empty.
  std::function<void(std::size_t, std::size_t)> progress;
};

// Runs the spec's sweep serially (one point at a time; the server
// parallelizes across specs, not within one) and renders the payload.
[[nodiscard]] std::string run_experiment(const ExperimentSpec& spec,
                                         const RunOptions& options);

}  // namespace hsw::serve
