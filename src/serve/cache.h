// Content-addressed on-disk result cache with size-capped LRU eviction.
//
// Keys are experiment_cache_key() strings (timing fingerprint x canonical
// spec hash — hex plus a dash, so they double as file names); values are the
// serialized result payloads from serve/runner.h.  Each entry lives in
// `<dir>/<key>.json`; recency order and sizes are persisted in an index file
// rewritten on every mutation, so a reopened cache keeps both its contents
// and its LRU order across daemon restarts.
//
// All operations are mutex-guarded (the server looks up from concurrent
// connection threads).  Library contract: never exits, never prints; disk
// failures degrade to cache misses.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace hsw::serve {

// Schema version of the stats dump ("hswsim_cache_version"), the document
// `hswsim-report cache` renders.
inline constexpr int kCacheVersion = 1;

struct CacheConfig {
  std::string dir;
  // Total payload bytes to retain; least-recently-used entries are evicted
  // once an insert pushes past this (the entry being inserted survives even
  // when it exceeds the cap on its own).
  std::uint64_t capacity_bytes = 256ull * 1024 * 1024;
};

class ResultCache {
 public:
  // Creates `config.dir` if needed and loads the persisted index; entries
  // whose payload file vanished are dropped.
  explicit ResultCache(CacheConfig config);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Returns the payload and marks the entry most-recently-used; counts a
  // hit or a miss.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& key);

  // Stores the payload (most-recently-used), then evicts from the LRU end
  // until the total is back under the capacity.  Overwrites an existing
  // entry for the key.
  void insert(const std::string& key, const std::string& payload);

  // Versioned stats document: entries, bytes, capacity, counters, and the
  // entry list in LRU-to-MRU order.  `pretty` selects the indented form
  // (the shutdown dump hswsim-report reads); otherwise one line (the stats
  // event payload).
  [[nodiscard]] std::string stats_json(bool pretty) const;

  // Writes the pretty stats document to `path`; false on I/O failure.
  bool write_stats(const std::string& path) const;

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::uint64_t bytes() const;

 private:
  struct Entry {
    std::string key;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] std::string path_for(const std::string& key) const;
  void load_index();
  void persist_index() const;
  void evict_to_capacity();

  CacheConfig config_;
  mutable std::mutex mutex_;
  // LRU order: front = least recently used, back = most recently used.
  std::list<Entry> lru_;
  std::map<std::string, std::list<Entry>::iterator> by_key_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace hsw::serve
