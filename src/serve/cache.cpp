#include "serve/cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "util/json.h"

namespace hsw::serve {
namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool io_error = std::ferror(f) != 0;
  std::fclose(f);
  if (io_error) return std::nullopt;
  return text;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool io_error = std::ferror(f) != 0;
  return std::fclose(f) == 0 && !io_error && written == text.size();
}

}  // namespace

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config)) {
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  load_index();
}

std::string ResultCache::path_for(const std::string& key) const {
  std::string path = config_.dir;
  path += '/';
  path += key;
  path += ".json";
  return path;
}

void ResultCache::load_index() {
  const auto text = read_file(config_.dir + "/index");
  if (!text) return;
  std::size_t pos = 0;
  while (pos < text->size()) {
    std::size_t end = text->find('\n', pos);
    if (end == std::string::npos) end = text->size();
    const std::string line = text->substr(pos, end - pos);
    pos = end + 1;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    Entry entry;
    entry.key = line.substr(0, space);
    entry.bytes = std::strtoull(line.c_str() + space + 1, nullptr, 10);
    if (entry.key.empty() || by_key_.count(entry.key) != 0) continue;
    // An entry whose payload vanished (manual deletion, partial copy) is
    // silently dropped: the cache must only promise what it can serve.
    std::error_code ec;
    if (!std::filesystem::exists(path_for(entry.key), ec)) continue;
    bytes_ += entry.bytes;
    lru_.push_back(std::move(entry));
    by_key_.emplace(lru_.back().key, std::prev(lru_.end()));
  }
}

void ResultCache::persist_index() const {
  std::string out;
  for (const Entry& entry : lru_) {
    out += entry.key;
    out += ' ';
    out += std::to_string(entry.bytes);
    out += '\n';
  }
  write_file(config_.dir + "/index", out);
}

std::optional<std::string> ResultCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++misses_;
    return std::nullopt;
  }
  auto payload = read_file(path_for(key));
  if (!payload) {
    // Disk lost the payload: forget the entry and report a miss so the
    // caller re-simulates.
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    by_key_.erase(it);
    persist_index();
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.end(), lru_, it->second);
  persist_index();
  ++hits_;
  return payload;
}

void ResultCache::insert(const std::string& key, const std::string& payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!write_file(path_for(key), payload)) return;
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    by_key_.erase(it);
  }
  Entry entry;
  entry.key = key;
  entry.bytes = payload.size();
  bytes_ += entry.bytes;
  lru_.push_back(std::move(entry));
  by_key_.emplace(lru_.back().key, std::prev(lru_.end()));
  ++insertions_;
  evict_to_capacity();
  persist_index();
}

void ResultCache::evict_to_capacity() {
  // The newest entry always survives: evicting what was just inserted would
  // turn an oversized payload into an infinite miss loop.
  while (bytes_ > config_.capacity_bytes && lru_.size() > 1) {
    const Entry& victim = lru_.front();
    std::error_code ec;
    std::filesystem::remove(path_for(victim.key), ec);
    bytes_ -= victim.bytes;
    by_key_.erase(victim.key);
    lru_.pop_front();
    ++evictions_;
  }
}

std::string ResultCache::stats_json(bool pretty) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const char* nl = pretty ? "\n" : "";
  const char* in1 = pretty ? "  " : "";
  const char* in2 = pretty ? "    " : "";
  const char* sp = pretty ? " " : "";
  std::string out = "{";
  out += nl;
  auto field = [&](const char* name, const std::string& value, bool last) {
    out += in1;
    out += "\"";
    out += name;
    out += "\":";
    out += sp;
    out += value;
    if (!last) out += ",";
    out += nl;
  };
  field("hswsim_cache_version", std::to_string(kCacheVersion), false);
  field("entries", std::to_string(lru_.size()), false);
  field("bytes", std::to_string(bytes_), false);
  field("capacity_bytes", std::to_string(config_.capacity_bytes), false);
  field("hits", std::to_string(hits_), false);
  field("misses", std::to_string(misses_), false);
  field("insertions", std::to_string(insertions_), false);
  field("evictions", std::to_string(evictions_), false);
  out += in1;
  out += "\"items\":";
  out += sp;
  out += "[";
  bool first = true;
  for (const Entry& entry : lru_) {
    if (!first) out += ",";
    first = false;
    out += nl;
    out += in2;
    out += "{\"key\":";
    out += sp;
    out += '"';
    out += json::escape(entry.key);
    out += "\",";
    out += sp;
    out += "\"bytes\":";
    out += sp;
    out += std::to_string(entry.bytes);
    out += "}";
  }
  if (!first) {
    out += nl;
    out += in1;
  }
  out += "]";
  out += nl;
  out += "}";
  out += nl;
  return out;
}

bool ResultCache::write_stats(const std::string& path) const {
  return write_file(path, stats_json(/*pretty=*/true));
}

std::uint64_t ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ResultCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t ResultCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

}  // namespace hsw::serve
