// Running statistics and percentile estimation for benchmark results.
//
// The paper reports medians of repeated runs and notes run-to-run variation
// (uncore frequency scaling).  `Accumulator` keeps a full sample vector so we
// can report min/median/p95/max exactly, and `Welford` provides numerically
// stable streaming mean/variance for large event streams where storing every
// sample would be wasteful.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace hsw {

// Exact-sample accumulator; O(n) memory, exact order statistics.
class Accumulator {
 public:
  void add(double x);
  void clear();

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  // Linear-interpolated percentile; q in [0, 1].  Requires non-empty.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(0.5); }
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p95() const { return percentile(0.95); }
  [[nodiscard]] double p99() const { return percentile(0.99); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Log-bucketed histogram for latency distributions: O(1) memory per octave,
// deterministic bucket boundaries (derived from the binary exponent, so the
// same samples always land in the same buckets regardless of insertion or
// merge order).  Each power of two is split into kSubBuckets linear
// sub-buckets — ~9% relative resolution, plenty for telling a 130 ns local
// DRAM access from a 240 ns stale-directory broadcast.
class LogHistogram {
 public:
  static constexpr int kSubBuckets = 8;  // per power of two

  void add(double x, std::uint64_t weight = 1);
  void merge(const LogHistogram& other);
  void clear() { buckets_.clear(); total_ = 0; }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  // Lower/upper edge of a bucket by key (see bucket_of).
  [[nodiscard]] static double bucket_lower(int key);
  [[nodiscard]] static double bucket_upper(int key);
  [[nodiscard]] static int bucket_of(double x);
  // Quantile estimate via linear interpolation inside the bucket; q in
  // [0, 1].  Requires non-empty.
  [[nodiscard]] double quantile(double q) const;
  // Sorted (key -> count); keys order by bucket lower edge.
  [[nodiscard]] const std::map<int, std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::map<int, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

// Welford's online algorithm: O(1) memory streaming mean / variance.
class Welford {
 public:
  void add(double x);
  void merge(const Welford& other);
  void clear();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hsw
