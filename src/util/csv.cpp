#include "util/csv.h"

namespace hsw {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (out_) write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (!out_) return;
  write_row(cells);
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < columns_; ++i) {
    if (i) out_ << ',';
    if (i < cells.size()) out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace hsw
