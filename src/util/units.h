// Byte-size and time/bandwidth unit helpers.
//
// The paper's figures sweep data-set sizes from KiB to GiB and report
// latencies in nanoseconds and bandwidths in GB/s (decimal, as is customary
// for memory bandwidth).  These helpers keep the conversions in one place so
// that the rest of the code can carry plain `double` nanoseconds and
// `std::uint64_t` byte counts without ad-hoc constants.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hsw {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

// Decimal units used for bandwidth (GB/s in the paper is 1e9 bytes/second).
inline constexpr double kGB = 1e9;
inline constexpr double kMB = 1e6;

constexpr std::uint64_t kib(std::uint64_t n) { return n * kKiB; }
constexpr std::uint64_t mib(std::uint64_t n) { return n * kMiB; }
constexpr std::uint64_t gib(std::uint64_t n) { return n * kGiB; }

// Converts a byte count and a duration into GB/s (decimal).
constexpr double gbps(double bytes, double nanoseconds) {
  return nanoseconds > 0.0 ? bytes / nanoseconds : 0.0;  // B/ns == GB/s
}

// Formats a byte count with a binary suffix, e.g. "256 KiB", "2.5 MiB".
std::string format_bytes(std::uint64_t bytes);

// Formats nanoseconds with sensible precision, e.g. "21.2 ns", "1.6 ns".
std::string format_ns(double ns);

// Formats a decimal bandwidth, e.g. "26.2 GB/s".
std::string format_gbps(double gb_per_s);

// Parses strings like "64", "64KiB", "2.5MiB", "1GiB" (case-insensitive
// suffix, optional whitespace).  Returns nullopt on malformed input.
std::optional<std::uint64_t> parse_bytes(std::string_view text);

}  // namespace hsw
