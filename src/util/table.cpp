#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace hsw {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  align_.assign(header_.size(), Align::kRight);
  if (!align_.empty()) align_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::vector<std::vector<std::string>> Table::data_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(rows_.size());
  for (const Row& row : rows_) {
    if (!row.separator) rows.push_back(row.cells);
  }
  return rows;
}

void Table::set_align(std::size_t column, Align align) {
  if (column < align_.size()) align_[column] = align;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  std::ostringstream out;
  auto emit_rule = [&] {
    out << '+';
    for (std::size_t w : width) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = width[c] - text.size();
      if (align_[c] == Align::kLeft) {
        out << ' ' << text << std::string(pad, ' ') << ' ';
      } else {
        out << ' ' << std::string(pad, ' ') << text << ' ';
      }
      out << '|';
    }
    out << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_rule();
    } else {
      emit_row(row.cells);
    }
  }
  emit_rule();
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string cell(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace hsw
