#include "util/units.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hsw {
namespace {

std::string format_with_unit(double value, std::string_view unit) {
  char buf[64];
  // Two significant decimals for small values, fewer for large ones, and no
  // trailing ".0" noise for integral magnitudes.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f %.*s", value,
                  static_cast<int>(unit.size()), unit.data());
  } else if (std::fabs(value) >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f %.*s", value,
                  static_cast<int>(unit.size()), unit.data());
  } else if (std::fabs(value) >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f %.*s", value,
                  static_cast<int>(unit.size()), unit.data());
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %.*s", value,
                  static_cast<int>(unit.size()), unit.data());
  }
  return buf;
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= kGiB) {
    return format_with_unit(static_cast<double>(bytes) / static_cast<double>(kGiB), "GiB");
  }
  if (bytes >= kMiB) {
    return format_with_unit(static_cast<double>(bytes) / static_cast<double>(kMiB), "MiB");
  }
  if (bytes >= kKiB) {
    return format_with_unit(static_cast<double>(bytes) / static_cast<double>(kKiB), "KiB");
  }
  return format_with_unit(static_cast<double>(bytes), "B");
}

std::string format_ns(double ns) { return format_with_unit(ns, "ns"); }

std::string format_gbps(double gb_per_s) {
  return format_with_unit(gb_per_s, "GB/s");
}

std::optional<std::uint64_t> parse_bytes(std::string_view text) {
  // Trim surrounding whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.empty()) return std::nullopt;

  double value = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || value < 0.0) return std::nullopt;

  std::string_view suffix(ptr, static_cast<std::size_t>(end - ptr));
  while (!suffix.empty() && std::isspace(static_cast<unsigned char>(suffix.front()))) {
    suffix.remove_prefix(1);
  }

  auto iequal = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(a[i])) !=
          std::tolower(static_cast<unsigned char>(b[i]))) {
        return false;
      }
    }
    return true;
  };

  double multiplier = 1.0;
  if (suffix.empty() || iequal(suffix, "b")) {
    multiplier = 1.0;
  } else if (iequal(suffix, "k") || iequal(suffix, "kib") || iequal(suffix, "kb")) {
    multiplier = static_cast<double>(kKiB);
  } else if (iequal(suffix, "m") || iequal(suffix, "mib") || iequal(suffix, "mb")) {
    multiplier = static_cast<double>(kMiB);
  } else if (iequal(suffix, "g") || iequal(suffix, "gib") || iequal(suffix, "gb")) {
    multiplier = static_cast<double>(kGiB);
  } else {
    return std::nullopt;
  }
  const double bytes = value * multiplier;
  if (bytes > 9.2e18) return std::nullopt;
  return static_cast<std::uint64_t>(bytes);
}

}  // namespace hsw
