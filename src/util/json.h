// Minimal JSON helpers shared by the metrics report reader, the experiment
// spec round-trip, and the serve transport.
//
// parse_flat() is a recursive-descent reader for the documents this project
// writes (it is not a general-purpose parser).  Scalars land in the output
// map keyed by their dotted path ("manifest.seed", "sizes.0", ...); array
// elements use numeric path segments.  Strings are unescaped; numbers and
// keywords are kept as their literal token text so callers decide how to
// interpret them.
#pragma once

#include <map>
#include <string>

namespace hsw::json {

// Flattens one JSON document into dotted-path keys.  Returns false when the
// text is not a single well-formed document.
[[nodiscard]] bool parse_flat(const std::string& text,
                              std::map<std::string, std::string>* out);

// Escapes a string for embedding between double quotes in a JSON document
// (quotes, backslashes, newlines, tabs).
[[nodiscard]] std::string escape(const std::string& s);

}  // namespace hsw::json
