#include "util/json.h"

#include <cctype>
#include <cstddef>
#include <utility>

namespace hsw::json {
namespace {

class FlatParser {
 public:
  FlatParser(const std::string& text, std::map<std::string, std::string>& out)
      : text_(text), out_(out) {}

  bool parse() {
    skip_ws();
    if (!value("")) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value(const std::string& path) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object(path);
    if (c == '[') return array(path);
    if (c == '"') {
      std::string s;
      if (!string(&s)) return false;
      out_[path] = s;
      return true;
    }
    return scalar(path);
  }

  bool object(const std::string& path) {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      if (!value(path.empty() ? key : path + "." + key)) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(const std::string& path) {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    std::size_t index = 0;
    while (true) {
      if (!value(path + "." + std::to_string(index++))) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string(std::string* out) {
    if (peek() != '"') return false;
    ++pos_;
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char e = text_[pos_++];
        c = e == 'n' ? '\n' : e == 't' ? '\t' : e;
      }
      s += c;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    *out = std::move(s);
    return true;
  }

  bool scalar(const std::string& path) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out_[path] = text_.substr(start, pos_ - start);
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::map<std::string, std::string>& out_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_flat(const std::string& text,
                std::map<std::string, std::string>* out) {
  out->clear();
  FlatParser parser(text, *out);
  return parser.parse();
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace hsw::json
