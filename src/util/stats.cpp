#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace hsw {

void Accumulator::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Accumulator::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void Accumulator::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Accumulator::min() const {
  assert(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

double Accumulator::max() const {
  assert(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

double Accumulator::mean() const {
  assert(!samples_.empty());
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Accumulator::percentile(double q) const {
  assert(!samples_.empty());
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

int LogHistogram::bucket_of(double x) {
  if (!(x > 0.0)) return std::numeric_limits<int>::min();  // underflow bucket
  int exp = 0;
  const double frac = std::frexp(x, &exp);  // frac in [0.5, 1)
  auto sub = static_cast<int>((frac - 0.5) * (2 * kSubBuckets));
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return exp * kSubBuckets + sub;
}

double LogHistogram::bucket_lower(int key) {
  if (key == std::numeric_limits<int>::min()) return 0.0;
  // Floor division so negative exponents (sub-nanosecond values) map back
  // to the right octave.
  int exp = key / kSubBuckets;
  int sub = key % kSubBuckets;
  if (sub < 0) {
    sub += kSubBuckets;
    exp -= 1;
  }
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exp - 1);
}

double LogHistogram::bucket_upper(int key) {
  if (key == std::numeric_limits<int>::min()) return 0.0;
  return bucket_lower(key + 1);
}

void LogHistogram::add(double x, std::uint64_t weight) {
  buckets_[bucket_of(x)] += weight;
  total_ += weight;
}

void LogHistogram::merge(const LogHistogram& other) {
  for (const auto& [key, count] : other.buckets_) buckets_[key] += count;
  total_ += other.total_;
}

double LogHistogram::quantile(double q) const {
  assert(total_ > 0);
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (const auto& [key, count] : buckets_) {
    const double next = cumulative + static_cast<double>(count);
    if (next >= target) {
      const double lo = bucket_lower(key);
      const double hi = bucket_upper(key);
      const double frac =
          count == 0 ? 0.0 : (target - cumulative) / static_cast<double>(count);
      return lo + (hi - lo) * frac;
    }
    cumulative = next;
  }
  return bucket_upper(buckets_.rbegin()->first);
}

void Welford::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Welford::clear() { *this = Welford{}; }

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

}  // namespace hsw
