#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace hsw {

void Accumulator::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Accumulator::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void Accumulator::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Accumulator::min() const {
  assert(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

double Accumulator::max() const {
  assert(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

double Accumulator::mean() const {
  assert(!samples_.empty());
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Accumulator::percentile(double q) const {
  assert(!samples_.empty());
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void Welford::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Welford::clear() { *this = Welford{}; }

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

}  // namespace hsw
