// Tiny declarative command-line flag parser shared by benches and examples.
//
// Supports `--flag value`, `--flag=value`, and boolean `--flag` /
// `--no-flag`.  Unknown flags are reported as errors so typos in bench
// invocations do not silently fall back to defaults.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hsw {

class CommandLine {
 public:
  // `binary_summary` is printed at the top of --help output.
  explicit CommandLine(std::string binary_summary);

  void add_string(std::string name, std::string* target, std::string help);
  void add_int(std::string name, std::int64_t* target, std::string help);
  void add_double(std::string name, double* target, std::string help);
  void add_bool(std::string name, bool* target, std::string help);
  // Byte-size flag accepting "64KiB"-style values (see parse_bytes()).
  void add_bytes(std::string name, std::uint64_t* target, std::string help);

  // Post-parse validation hook.  Checks run in registration order after all
  // flags were assigned; a check that returns a message fails the parse with
  // ParseStatus::kError (message printed to stderr, like a bad flag value).
  // This is how binaries keep cross-flag policy ("--linestats requires full
  // sampling") inside the single ParseStatus exit path instead of sprinkling
  // exit() calls after parsing.
  void add_check(std::function<std::optional<std::string>()> check);

  // Result of parse_status(): callers that exit on failure should use a
  // nonzero exit code for kError (a typo must fail CI) and zero for kHelp.
  enum class ParseStatus { kOk, kHelp, kError };

  // Parses the arguments.  kHelp means --help/-h was given (help text was
  // printed to stdout); kError means a bad flag or value (message printed
  // to stderr).  Positional arguments are collected in `positional()`.
  ParseStatus parse_status(int argc, const char* const* argv);

  // Legacy boolean form: true on success, false on --help *or* error.
  bool parse(int argc, const char* const* argv) {
    return parse_status(argc, argv) == ParseStatus::kOk;
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] std::string help() const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    bool is_bool = false;
    std::function<bool(std::string_view)> assign;
  };

  std::string summary_;
  std::map<std::string, Flag, std::less<>> flags_;
  std::vector<std::function<std::optional<std::string>()>> checks_;
  std::vector<std::string> positional_;
};

}  // namespace hsw
