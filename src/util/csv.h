// Minimal CSV emission for machine-readable bench output.
//
// Bench binaries accept `--csv <path>` and dump their series through this
// writer so the figures can be re-plotted externally.  Fields containing
// separators/quotes/newlines are quoted per RFC 4180.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace hsw {

class CsvWriter {
 public:
  // Opens (truncates) `path` and writes the header row.  `ok()` reports
  // whether the stream is usable; writes to a failed stream are no-ops.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }
  void add_row(const std::vector<std::string>& cells);

  static std::string escape(std::string_view field);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace hsw
