// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic decision in the simulator (pointer-chase permutations,
// DRAM page-hit draws, workload access patterns) draws from an explicitly
// seeded xoshiro256** stream, so that simulations are bit-reproducible and
// independent components can own independent streams (via `split`).
#pragma once

#include <array>
#include <cstdint>

namespace hsw {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ull;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebull;
      s = t ^ (t >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Returns true with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  // Derives an independent-looking child stream (for per-component RNGs).
  Xoshiro256 split() { return Xoshiro256((*this)() ^ 0xd1b54a32d192ed03ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hsw
