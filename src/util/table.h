// ASCII table rendering for bench binaries.
//
// Every bench target prints the table/figure it reproduces in a layout that
// mirrors the paper, so `bench_output.txt` can be diffed against the paper's
// numbers by eye.  Cells are strings; alignment is per-column.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hsw {

class Table {
 public:
  enum class Align { kLeft, kRight };

  explicit Table(std::vector<std::string> header);

  // Adds a data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);
  // Adds a horizontal separator at the current position.
  void add_separator();
  void set_align(std::size_t column, Align align);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

  // Structured access for CSV export (golden-regression files): the header
  // row and every data row, separators skipped.
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] std::vector<std::vector<std::string>> data_rows() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> align_;
};

// Convenience: formats a double with `decimals` fraction digits.
std::string cell(double value, int decimals = 1);

}  // namespace hsw
