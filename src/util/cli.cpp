#include "util/cli.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "util/units.h"

namespace hsw {

CommandLine::CommandLine(std::string binary_summary)
    : summary_(std::move(binary_summary)) {}

void CommandLine::add_string(std::string name, std::string* target,
                             std::string help) {
  Flag flag;
  flag.help = std::move(help);
  flag.default_value = *target;
  flag.assign = [target](std::string_view v) {
    *target = std::string(v);
    return true;
  };
  flags_.emplace(std::move(name), std::move(flag));
}

void CommandLine::add_int(std::string name, std::int64_t* target,
                          std::string help) {
  Flag flag;
  flag.help = std::move(help);
  flag.default_value = std::to_string(*target);
  flag.assign = [target](std::string_view v) {
    std::int64_t value = 0;
    auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), value);
    if (ec != std::errc{} || ptr != v.data() + v.size()) return false;
    *target = value;
    return true;
  };
  flags_.emplace(std::move(name), std::move(flag));
}

void CommandLine::add_double(std::string name, double* target,
                             std::string help) {
  Flag flag;
  flag.help = std::move(help);
  flag.default_value = std::to_string(*target);
  flag.assign = [target](std::string_view v) {
    double value = 0.0;
    auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), value);
    if (ec != std::errc{} || ptr != v.data() + v.size()) return false;
    *target = value;
    return true;
  };
  flags_.emplace(std::move(name), std::move(flag));
}

void CommandLine::add_bool(std::string name, bool* target, std::string help) {
  Flag flag;
  flag.help = std::move(help);
  flag.default_value = *target ? "true" : "false";
  flag.is_bool = true;
  flag.assign = [target](std::string_view v) {
    if (v == "true" || v == "1" || v.empty()) {
      *target = true;
    } else if (v == "false" || v == "0") {
      *target = false;
    } else {
      return false;
    }
    return true;
  };
  flags_.emplace(std::move(name), std::move(flag));
}

void CommandLine::add_bytes(std::string name, std::uint64_t* target,
                            std::string help) {
  Flag flag;
  flag.help = std::move(help);
  flag.default_value = format_bytes(*target);
  flag.assign = [target](std::string_view v) {
    auto parsed = parse_bytes(v);
    if (!parsed) return false;
    *target = *parsed;
    return true;
  };
  flags_.emplace(std::move(name), std::move(flag));
}

void CommandLine::add_check(
    std::function<std::optional<std::string>()> check) {
  checks_.push_back(std::move(check));
}

CommandLine::ParseStatus CommandLine::parse_status(int argc,
                                                   const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", help().c_str());
      return ParseStatus::kHelp;
    }
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);

    std::string_view name = arg;
    std::optional<std::string_view> inline_value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }

    bool negated = false;
    auto it = flags_.find(name);
    if (it == flags_.end() && name.starts_with("no-")) {
      auto positive = flags_.find(name.substr(3));
      if (positive != flags_.end() && positive->second.is_bool) {
        it = positive;
        negated = true;
      }
    }
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%.*s\n%s",
                   static_cast<int>(name.size()), name.data(), help().c_str());
      return ParseStatus::kError;
    }

    Flag& flag = it->second;
    std::string_view value;
    if (negated) {
      value = "false";
    } else if (inline_value) {
      value = *inline_value;
    } else if (flag.is_bool) {
      value = "true";
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s requires a value\n", it->first.c_str());
        return ParseStatus::kError;
      }
      value = argv[++i];
    }
    if (!flag.assign(value)) {
      std::fprintf(stderr, "invalid value '%.*s' for flag --%s\n",
                   static_cast<int>(value.size()), value.data(),
                   it->first.c_str());
      return ParseStatus::kError;
    }
  }
  for (const auto& check : checks_) {
    if (auto message = check()) {
      std::fprintf(stderr, "%s\n", message->c_str());
      return ParseStatus::kError;
    }
  }
  return ParseStatus::kOk;
}

std::string CommandLine::help() const {
  std::ostringstream out;
  out << summary_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (!flag.is_bool) out << " <value>";
    out << "  (default: " << flag.default_value << ")\n      " << flag.help
        << "\n";
  }
  return out.str();
}

}  // namespace hsw
