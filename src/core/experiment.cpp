#include "core/experiment.h"

#include <charconv>
#include <cstdio>
#include <utility>

#include "topo/topology.h"
#include "util/json.h"

namespace hsw {
namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

std::string fmt_ratio(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_int(const std::string& text, int* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_f64(const std::string& text, double* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

// Is `rel` of the form `stem<digits>` (an array element path)?
bool is_index_key(std::string_view rel, std::string_view stem) {
  if (!rel.starts_with(stem)) return false;
  rel.remove_prefix(stem.size());
  if (rel.empty()) return false;
  for (const char c : rel) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

const char* to_string(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kLatency: return "latency";
    case ExperimentKind::kBandwidth: return "bandwidth";
  }
  return "?";
}

std::optional<ExperimentKind> parse_experiment_kind(std::string_view name) {
  if (name == "latency") return ExperimentKind::kLatency;
  if (name == "bandwidth") return ExperimentKind::kBandwidth;
  return std::nullopt;
}

const char* snoop_mode_token(SnoopMode mode) {
  switch (mode) {
    case SnoopMode::kSourceSnoop: return "source";
    case SnoopMode::kHomeSnoop: return "home";
    case SnoopMode::kCod: return "cod";
  }
  return "?";
}

const char* load_width_token(bw::LoadWidth width) {
  return width == bw::LoadWidth::kAvx256 ? "avx256" : "sse128";
}

std::optional<bw::LoadWidth> parse_load_width(std::string_view name) {
  if (name == "avx256") return bw::LoadWidth::kAvx256;
  if (name == "sse128") return bw::LoadWidth::kSse128;
  return std::nullopt;
}

std::string ExperimentSpec::canonical() const {
  std::string out = "{\"hswsim_spec_version\":";
  out += std::to_string(kSpecVersion);
  out += ",\"kind\":\"";
  out += to_string(kind);
  out += "\",\"mode\":\"";
  out += snoop_mode_token(mode);
  out += "\",\"protocol\":\"";
  out += to_string(protocol);
  out += "\",\"engine\":\"";
  out += to_string(engine);
  out += "\",\"seed\":";
  out += std::to_string(seed);
  out += ",\"sample_ratio\":";
  out += fmt_ratio(sample_ratio);
  out += ",\"sample_seed\":";
  out += std::to_string(sample_seed);
  out += ",\"core\":";
  out += std::to_string(core);
  out += ",\"write\":";
  out += write ? "true" : "false";
  out += ",\"width\":\"";
  out += load_width_token(width);
  out += "\",\"placement\":{\"owner_core\":";
  out += std::to_string(owner_core);
  out += ",\"memory_node\":";
  out += std::to_string(memory_node);
  out += ",\"state\":\"";
  out += to_string(state);
  out += "\",\"sharers\":[";
  for (std::size_t i = 0; i < sharers.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(sharers[i]);
  }
  out += "]},\"sizes\":[";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(sizes[i]);
  }
  out += "],\"max_measured_lines\":";
  out += std::to_string(max_measured_lines);
  out += "}";
  return out;
}

std::string ExperimentSpec::to_json() const {
  std::string out = "{\n";
  out += "  \"hswsim_spec_version\": " + std::to_string(kSpecVersion) + ",\n";
  out += std::string("  \"kind\": \"") + to_string(kind) + "\",\n";
  out += std::string("  \"mode\": \"") + snoop_mode_token(mode) + "\",\n";
  out += "  \"protocol\": \"" + std::string(to_string(protocol)) + "\",\n";
  out += std::string("  \"engine\": \"") + to_string(engine) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"sample_ratio\": " + fmt_ratio(sample_ratio) + ",\n";
  out += "  \"sample_seed\": " + std::to_string(sample_seed) + ",\n";
  out += "  \"core\": " + std::to_string(core) + ",\n";
  out += std::string("  \"write\": ") + (write ? "true" : "false") + ",\n";
  out += std::string("  \"width\": \"") + load_width_token(width) + "\",\n";
  out += "  \"placement\": {\n";
  out += "    \"owner_core\": " + std::to_string(owner_core) + ",\n";
  out += "    \"memory_node\": " + std::to_string(memory_node) + ",\n";
  out += "    \"state\": \"" + std::string(to_string(state)) + "\",\n";
  out += "    \"sharers\": [";
  for (std::size_t i = 0; i < sharers.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(sharers[i]);
  }
  out += "]\n  },\n";
  out += "  \"sizes\": [";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(sizes[i]);
  }
  out += "],\n";
  out += "  \"max_measured_lines\": " + std::to_string(max_measured_lines) +
         "\n}\n";
  return out;
}

std::string ExperimentSpec::hash() const {
  const std::string text = canonical();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char hex[32];
  const int n = std::snprintf(hex, sizeof hex, "%016llx",
                              static_cast<unsigned long long>(h));
  return std::string(hex, static_cast<std::size_t>(n));
}

SystemConfig ExperimentSpec::system_config() const {
  SystemConfig config = SystemConfig::for_mode(mode);
  config.protocol = protocol;
  return config;
}

SamplingConfig ExperimentSpec::sampling() const {
  SamplingConfig config;
  config.ratio = sample_ratio;
  config.seed = sample_seed;
  return config;
}

Placement ExperimentSpec::placement() const {
  Placement p;
  p.owner_core = owner_core;
  p.memory_node = memory_node;
  p.state = state;
  p.sharers = sharers;
  return p;
}

std::optional<ExperimentSpec> spec_from_flat(
    const std::map<std::string, std::string>& flat, const std::string& prefix,
    std::string* error) {
  auto get = [&](std::string_view key) -> const std::string* {
    const auto it = flat.find(prefix + std::string(key));
    return it == flat.end() ? nullptr : &it->second;
  };

  // Reject unknown keys first: a typo must not silently become a default.
  static constexpr std::string_view kScalarKeys[] = {
      "hswsim_spec_version", "kind",        "mode",
      "protocol",            "engine",      "seed",
      "sample_ratio",        "sample_seed", "core",
      "write",               "width",       "placement.owner_core",
      "placement.memory_node", "placement.state", "max_measured_lines"};
  for (auto it = flat.lower_bound(prefix); it != flat.end(); ++it) {
    const std::string& key = it->first;
    if (!key.starts_with(prefix)) break;
    const std::string_view rel = std::string_view(key).substr(prefix.size());
    bool known = false;
    for (const std::string_view k : kScalarKeys) {
      if (rel == k) { known = true; break; }
    }
    if (!known && !is_index_key(rel, "placement.sharers.") &&
        !is_index_key(rel, "sizes.")) {
      set_error(error, "experiment spec: unknown key '" + std::string(rel) +
                           "'");
      return std::nullopt;
    }
  }

  const std::string* version = get("hswsim_spec_version");
  if (version == nullptr) {
    set_error(error, "experiment spec: missing hswsim_spec_version");
    return std::nullopt;
  }
  if (*version != std::to_string(kSpecVersion)) {
    set_error(error, "experiment spec: unknown hswsim_spec_version '" +
                         *version + "'");
    return std::nullopt;
  }

  ExperimentSpec spec;
  if (const std::string* v = get("kind")) {
    const auto kind = parse_experiment_kind(*v);
    if (!kind) {
      set_error(error, "experiment spec: unknown kind '" + *v +
                           "' (latency|bandwidth)");
      return std::nullopt;
    }
    spec.kind = *kind;
  }
  if (const std::string* v = get("mode")) {
    const auto mode = parse_snoop_mode(*v);
    if (!mode) {
      set_error(error,
                "experiment spec: unknown mode '" + *v + "' (source|home|cod)");
      return std::nullopt;
    }
    spec.mode = *mode;
  }
  if (const std::string* v = get("protocol")) {
    const auto protocol = parse_protocol(*v);
    if (!protocol) {
      set_error(error, "experiment spec: unknown protocol '" + *v +
                           "' (mesif|mesi|moesi|dragon)");
      return std::nullopt;
    }
    spec.protocol = *protocol;
  }
  if (const std::string* v = get("engine")) {
    const auto engine = parse_bandwidth_engine(*v);
    if (!engine) {
      set_error(error, "experiment spec: unknown engine '" + *v +
                           "' (analytic|simulated)");
      return std::nullopt;
    }
    spec.engine = *engine;
  }
  if (const std::string* v = get("seed")) {
    if (!parse_u64(*v, &spec.seed)) {
      set_error(error, "experiment spec: bad seed '" + *v + "'");
      return std::nullopt;
    }
  }
  if (const std::string* v = get("sample_ratio")) {
    if (!parse_f64(*v, &spec.sample_ratio) || !(spec.sample_ratio > 0.0) ||
        spec.sample_ratio > 1.0) {
      set_error(error, "experiment spec: sample_ratio must be in (0, 1]");
      return std::nullopt;
    }
  }
  if (const std::string* v = get("sample_seed")) {
    if (!parse_u64(*v, &spec.sample_seed)) {
      set_error(error, "experiment spec: bad sample_seed '" + *v + "'");
      return std::nullopt;
    }
  }
  if (const std::string* v = get("write")) {
    if (*v == "true") {
      spec.write = true;
    } else if (*v == "false") {
      spec.write = false;
    } else {
      set_error(error, "experiment spec: bad write '" + *v + "'");
      return std::nullopt;
    }
  }
  if (const std::string* v = get("width")) {
    const auto width = parse_load_width(*v);
    if (!width) {
      set_error(error, "experiment spec: unknown width '" + *v +
                           "' (avx256|sse128)");
      return std::nullopt;
    }
    spec.width = *width;
  }
  if (const std::string* v = get("placement.state")) {
    const auto state = parse_mesif(*v);
    if (!state || (*state != Mesif::kModified && *state != Mesif::kExclusive &&
                   *state != Mesif::kShared)) {
      set_error(error,
                "experiment spec: placement state must be M, E, or S");
      return std::nullopt;
    }
    spec.state = *state;
  }

  // Core/node bounds come from the snoop-mode preset, not hardcoded values.
  const SystemConfig machine = SystemConfig::for_mode(spec.mode);
  const int cores = cores_per_die(machine.sku) * machine.sockets;
  const int nodes =
      machine.sockets * (machine.snoop_mode == SnoopMode::kCod ? 2 : 1);
  auto read_core = [&](std::string_view key, int* out) -> bool {
    const std::string* v = get(key);
    if (v == nullptr) return true;
    if (!parse_int(*v, out) || *out < 0 || *out >= cores) {
      set_error(error, "experiment spec: " + std::string(key) +
                           " must be in [0, " + std::to_string(cores) + ")");
      return false;
    }
    return true;
  };
  if (!read_core("core", &spec.core)) return std::nullopt;
  if (!read_core("placement.owner_core", &spec.owner_core)) return std::nullopt;
  if (const std::string* v = get("placement.memory_node")) {
    if (!parse_int(*v, &spec.memory_node) || spec.memory_node < 0 ||
        spec.memory_node >= nodes) {
      set_error(error, "experiment spec: placement.memory_node must be in [0, " +
                           std::to_string(nodes) + ")");
      return std::nullopt;
    }
  }
  spec.sharers.clear();
  for (std::size_t i = 0;; ++i) {
    const std::string* v = get("placement.sharers." + std::to_string(i));
    if (v == nullptr) break;
    int sharer = 0;
    if (!parse_int(*v, &sharer) || sharer < 0 || sharer >= cores) {
      set_error(error, "experiment spec: sharer '" + *v + "' out of range");
      return std::nullopt;
    }
    spec.sharers.push_back(sharer);
  }
  // An omitted "sizes" array keeps the default single point; a present one
  // replaces it (and an explicitly empty array is an error: json's flat view
  // cannot tell `[]` from an absent key, so the empty case only arises when
  // the first element fails to parse upstream).
  if (get("sizes.0") != nullptr) {
    spec.sizes.clear();
    for (std::size_t i = 0;; ++i) {
      const std::string* v = get("sizes." + std::to_string(i));
      if (v == nullptr) break;
      std::uint64_t bytes = 0;
      if (!parse_u64(*v, &bytes) || bytes < 4096 ||
          bytes > (1ull << 30)) {
        set_error(error, "experiment spec: size '" + *v +
                             "' must be in [4096, 1GiB]");
        return std::nullopt;
      }
      spec.sizes.push_back(bytes);
    }
  }
  if (const std::string* v = get("max_measured_lines")) {
    if (!parse_u64(*v, &spec.max_measured_lines) ||
        spec.max_measured_lines == 0) {
      set_error(error, "experiment spec: bad max_measured_lines '" + *v + "'");
      return std::nullopt;
    }
  }
  return spec;
}

std::optional<ExperimentSpec> spec_from_json(const std::string& text,
                                             std::string* error) {
  std::map<std::string, std::string> flat;
  if (!json::parse_flat(text, &flat)) {
    set_error(error, "experiment spec: not valid JSON");
    return std::nullopt;
  }
  return spec_from_flat(flat, "", error);
}

std::optional<ExperimentSpec> spec_from_file(const std::string& path,
                                             std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    set_error(error, "experiment spec: cannot read '" + path + "'");
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return spec_from_json(text, error);
}

std::string experiment_cache_key(const ExperimentSpec& spec,
                                 const TimingParams& timing) {
  return timing_fingerprint(timing, to_string(spec.protocol)) + "-" +
         spec.hash();
}

}  // namespace hsw
