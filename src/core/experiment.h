// The unified experiment vocabulary: one versioned document for every way
// this project asks "run a sweep".
//
// An ExperimentSpec names a latency or bandwidth size sweep the same way the
// benches and the metrics manifest already do — snoop mode, protocol family,
// engine, seed, set-sampling, stream placement — as a small versioned JSON
// document.  The benches accept it via --spec, hswsim-serve accepts batches
// of them over its socket, and the content-addressed result cache keys on
// it: `canonical()` is a whitespace-free, fixed-key-order serialization, so
// the spec hash is independent of how a client formatted the JSON, and
// `experiment_cache_key()` prefixes the timing fingerprint so any change to
// a calibration constant (or the protocol family) invalidates cached
// results.
//
// Library contract: nothing in here exits or prints.  Parse failures return
// nullopt with a message in `*error`; callers own the error policy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "coh/timing.h"
#include "core/bandwidth.h"
#include "core/placement.h"
#include "core/sampling.h"
#include "machine/system.h"

namespace hsw {

// Schema version stamped into every spec document ("hswsim_spec_version").
// A document at any other version must be refused, not misread.
inline constexpr int kSpecVersion = 1;

enum class ExperimentKind : std::uint8_t { kLatency, kBandwidth };

[[nodiscard]] const char* to_string(ExperimentKind kind);
[[nodiscard]] std::optional<ExperimentKind> parse_experiment_kind(
    std::string_view name);

// Short tokens used by the spec JSON (to_string(SnoopMode) is the long
// human-readable form; the spec wants the same tokens parse_snoop_mode
// accepts).
[[nodiscard]] const char* snoop_mode_token(SnoopMode mode);
[[nodiscard]] const char* load_width_token(bw::LoadWidth width);
[[nodiscard]] std::optional<bw::LoadWidth> parse_load_width(
    std::string_view name);

struct ExperimentSpec {
  ExperimentKind kind = ExperimentKind::kLatency;
  SnoopMode mode = SnoopMode::kSourceSnoop;
  Protocol protocol = Protocol::kMesif;
  // Bandwidth only (latency sweeps have no engine choice; the field still
  // participates in the hash so a spec is one unambiguous document).
  BandwidthEngine engine = BandwidthEngine::kAnalytic;
  std::uint64_t seed = 1;
  // Set-sampling (core/sampling.h): ratio 1 = exact.
  double sample_ratio = 1.0;
  std::uint64_t sample_seed = 0;
  // The measuring (latency) / streaming (bandwidth) core.
  int core = 0;
  // Bandwidth only: store stream instead of load stream.
  bool write = false;
  bw::LoadWidth width = bw::LoadWidth::kAvx256;
  // Placement of the buffer before measurement.  The cache level is always
  // "natural" (the sweep's size axis decides the level — see sweep.h), so
  // the spec carries no level field.
  int owner_core = 0;
  int memory_node = 0;
  Mesif state = Mesif::kModified;
  std::vector<int> sharers;
  // The size axis, bytes per point.
  std::vector<std::uint64_t> sizes = {64 * 1024};
  std::uint64_t max_measured_lines = 16384;

  bool operator==(const ExperimentSpec&) const = default;

  // Pretty serialization for files humans edit (round-trips through
  // spec_from_json).
  [[nodiscard]] std::string to_json() const;
  // Canonical serialization: single line, fixed key order, fixed number
  // formatting.  This is the hash input — two documents that parse to the
  // same spec always share it, regardless of key order or whitespace.
  [[nodiscard]] std::string canonical() const;
  // 64-bit FNV-1a over canonical(), as 16 hex chars.
  [[nodiscard]] std::string hash() const;

  // The machine this spec runs on: the snoop-mode preset with the spec's
  // protocol family.
  [[nodiscard]] SystemConfig system_config() const;
  [[nodiscard]] SamplingConfig sampling() const;
  [[nodiscard]] Placement placement() const;
};

// Parses one spec document.  nullopt on malformed JSON, unknown keys, an
// unsupported hswsim_spec_version, or out-of-range values; `*error` (when
// non-null) receives a one-line message.
[[nodiscard]] std::optional<ExperimentSpec> spec_from_json(
    const std::string& text, std::string* error);

// Same, over an already-flattened document (util/json.h), reading the keys
// under `prefix` (e.g. "specs.0." for a batch element; "" for a whole
// document).  This is what lets the server parse a batch without
// re-tokenizing each element.
[[nodiscard]] std::optional<ExperimentSpec> spec_from_flat(
    const std::map<std::string, std::string>& flat, const std::string& prefix,
    std::string* error);

// Reads and parses a spec file.
[[nodiscard]] std::optional<ExperimentSpec> spec_from_file(
    const std::string& path, std::string* error);

// The content-addressed cache key: timing_fingerprint(timing, protocol) and
// the canonical spec hash, dash-joined.  Any timing-constant change, any
// protocol change, and any spec-field change each produce a different key.
[[nodiscard]] std::string experiment_cache_key(const ExperimentSpec& spec,
                                               const TimingParams& timing);

}  // namespace hsw
