#include "core/sweep.h"

namespace hsw {

std::vector<std::uint64_t> sweep_sizes(std::uint64_t min_bytes,
                                       std::uint64_t max_bytes) {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t base = 1024; base <= max_bytes; base *= 2) {
    for (std::uint64_t size : {base, base + base / 2}) {
      if (size >= min_bytes && size <= max_bytes) sizes.push_back(size);
    }
  }
  return sizes;
}

std::vector<LatencySweepPoint> latency_sweep(const LatencySweepConfig& config) {
  std::vector<LatencySweepPoint> points;
  points.reserve(config.sizes.size());
  for (std::uint64_t bytes : config.sizes) {
    System system(config.system);
    LatencyConfig lc;
    lc.reader_core = config.reader_core;
    lc.placement = config.placement;
    lc.placement.level = CacheLevel::kL1L2;  // natural level by capacity
    lc.buffer_bytes = bytes;
    lc.max_measured_lines = config.max_measured_lines;
    lc.seed = config.seed;
    points.push_back({bytes, measure_latency(system, lc)});
  }
  return points;
}

std::vector<BandwidthSweepPoint> bandwidth_sweep(
    const BandwidthSweepConfig& config) {
  std::vector<BandwidthSweepPoint> points;
  points.reserve(config.sizes.size());
  for (std::uint64_t bytes : config.sizes) {
    System system(config.system);
    BandwidthConfig bc;
    StreamConfig stream = config.stream;
    stream.placement.level = CacheLevel::kL1L2;
    bc.streams = {stream};
    bc.buffer_bytes = bytes;
    bc.seed = config.seed;
    bc.model = config.model;
    const BandwidthResult result = measure_bandwidth(system, bc);
    points.push_back(
        {bytes, result.total_gbps, result.streams.front().source});
  }
  return points;
}

}  // namespace hsw
