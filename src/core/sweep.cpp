#include "core/sweep.h"

#include <optional>
#include <stdexcept>

#include "sim/thread_pool.h"

namespace hsw {
namespace {

// Sweeps force the natural level; a caller that configured one explicitly
// would be silently overridden, so reject it loudly instead.
void check_level_unset(const Placement& placement) {
  if (placement.level != CacheLevel::kL1L2) {
    throw std::invalid_argument(
        "sweep placements must leave `level` at its default: the data-set "
        "size decides the level (see sweep.h)");
  }
}

// Stream id for the point measuring `bytes`: base + position in the size
// axis.  Derived from configuration alone — never from worker scheduling —
// so traces merge identically for any job count.
std::uint32_t stream_for(const SweepTraceOptions& trace,
                         const std::vector<std::uint64_t>& sizes,
                         std::uint64_t bytes) {
  std::uint32_t stream = trace.stream_base;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == bytes) {
      stream += static_cast<std::uint32_t>(i);
      break;
    }
  }
  return stream;
}

std::optional<trace::Tracer> make_tracer(const SweepTraceOptions& trace,
                                         const std::vector<std::uint64_t>& sizes,
                                         std::uint64_t bytes) {
  if (!trace.enabled()) return std::nullopt;
  return trace::Tracer(trace.sink != nullptr ? trace::Tracer::Mode::kFull
                                             : trace::Tracer::Mode::kAttribution,
                       stream_for(trace, sizes, bytes), trace.capacity);
}

// Per-point metrics registry sharing the tracer's stream id, so the merged
// report lines up with the merged trace point-for-point.
std::optional<metrics::MetricsRegistry> make_registry(
    const SweepTraceOptions& trace, const std::vector<std::uint64_t>& sizes,
    std::uint64_t bytes) {
  if (!trace.metrics_enabled()) return std::nullopt;
  return metrics::MetricsRegistry(stream_for(trace, sizes, bytes),
                                  trace.metrics_interval);
}

// Per-point flight recorder, again on the shared stream id: the hub folds
// recorders by stream, keeping merged line stats independent of `jobs`.
std::optional<obs::LineStatsRecorder> make_recorder(
    const SweepTraceOptions& trace, Protocol protocol,
    const std::vector<std::uint64_t>& sizes, std::uint64_t bytes) {
  if (!trace.linestats_enabled()) return std::nullopt;
  return obs::LineStatsRecorder(protocol, stream_for(trace, sizes, bytes));
}

// Per-point resource recorder on the same shared stream id; fed by the
// simulated bandwidth engine's closed loops, folded by the hub in stream
// order.
std::optional<obs::ResourceStatsRecorder> make_resource_recorder(
    const SweepTraceOptions& trace, const std::vector<std::uint64_t>& sizes,
    std::uint64_t bytes) {
  if (!trace.resstats_enabled()) return std::nullopt;
  return obs::ResourceStatsRecorder(stream_for(trace, sizes, bytes));
}

}  // namespace

std::vector<std::uint64_t> sweep_sizes(std::uint64_t min_bytes,
                                       std::uint64_t max_bytes) {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t base = 1024; base <= max_bytes; base *= 2) {
    for (std::uint64_t size : {base, base + base / 2}) {
      if (size >= min_bytes && size <= max_bytes) sizes.push_back(size);
    }
  }
  return sizes;
}

LatencySweepPoint latency_sweep_point(const LatencySweepConfig& config,
                                      std::uint64_t bytes) {
  config.sampling.validate();
  // Under set-sampling the point runs on the scaled machine (every cache
  // keeps 1/2^k of its sets) against the equally scaled buffer; the means
  // estimate the full point, counters are scaled back to full-population
  // estimates below.  An inactive plan (ratio = 1, or a point below the
  // sampled-bytes floor) leaves everything untouched.
  const SamplingPlan plan = config.sampling.plan(bytes);
  SystemConfig machine = config.system;
  machine.geometry = plan.scaled(machine.geometry);
  System system(machine);
  std::optional<trace::Tracer> tracer =
      make_tracer(config.trace, config.sizes, bytes);
  LatencyConfig lc;
  lc.reader_core = config.reader_core;
  lc.placement = config.placement;
  lc.placement.level = CacheLevel::kL1L2;  // natural level by capacity
  lc.buffer_bytes = plan.scaled_bytes(bytes);
  lc.max_measured_lines = plan.scaled_measured_lines(config.max_measured_lines);
  lc.seed = plan.active() ? config.sampling.mix_seed(config.seed) : config.seed;
  lc.instrumentation.tracer = tracer ? &*tracer : nullptr;
  std::optional<metrics::MetricsRegistry> registry =
      make_registry(config.trace, config.sizes, bytes);
  lc.instrumentation.metrics = registry ? &*registry : nullptr;
  std::optional<obs::LineStatsRecorder> recorder = make_recorder(
      config.trace, machine.protocol, config.sizes, bytes);
  lc.instrumentation.linestats = recorder ? &*recorder : nullptr;
  LatencySweepPoint point{bytes, measure_latency(system, lc)};
  plan.scale_counters(point.result.counters);
  if (config.trace.sink != nullptr && tracer) {
    config.trace.sink->absorb(std::move(*tracer));
  }
  if (registry) config.trace.metrics->absorb(std::move(*registry));
  if (recorder) config.trace.linestats->absorb(std::move(*recorder));
  return point;
}

std::vector<LatencySweepPoint> latency_sweep(const LatencySweepConfig& config) {
  check_level_unset(config.placement);
  std::vector<LatencySweepPoint> points(config.sizes.size());
  ThreadPool pool(config.jobs);
  parallel_for_indexed(pool, config.sizes.size(), [&](std::size_t i) {
    points[i] = latency_sweep_point(config, config.sizes[i]);
  });
  return points;
}

BandwidthSweepPoint bandwidth_sweep_point(const BandwidthSweepConfig& config,
                                          std::uint64_t bytes) {
  config.sampling.validate();
  // Same scaled-machine scheme as latency_sweep_point; rates derive from
  // probe means and the unscaled bandwidth model, so they need no
  // rescaling.
  const SamplingPlan plan = config.sampling.plan(bytes);
  SystemConfig machine = config.system;
  machine.geometry = plan.scaled(machine.geometry);
  System system(machine);
  std::optional<trace::Tracer> tracer =
      make_tracer(config.trace, config.sizes, bytes);
  BandwidthConfig bc;
  StreamConfig stream = config.stream;
  stream.placement.level = CacheLevel::kL1L2;
  bc.streams = {stream};
  bc.buffer_bytes = plan.scaled_bytes(bytes);
  bc.seed = plan.active() ? config.sampling.mix_seed(config.seed) : config.seed;
  bc.model = config.model;
  bc.engine = config.engine;
  bc.instrumentation.tracer = tracer ? &*tracer : nullptr;
  std::optional<metrics::MetricsRegistry> registry =
      make_registry(config.trace, config.sizes, bytes);
  bc.instrumentation.metrics = registry ? &*registry : nullptr;
  std::optional<obs::LineStatsRecorder> recorder = make_recorder(
      config.trace, machine.protocol, config.sizes, bytes);
  bc.instrumentation.linestats = recorder ? &*recorder : nullptr;
  std::optional<obs::ResourceStatsRecorder> resources =
      make_resource_recorder(config.trace, config.sizes, bytes);
  bc.instrumentation.resstats = resources ? &*resources : nullptr;
  const BandwidthResult result = measure_bandwidth(system, bc);
  if (config.trace.sink != nullptr && tracer) {
    config.trace.sink->absorb(std::move(*tracer));
  }
  if (registry) config.trace.metrics->absorb(std::move(*registry));
  if (recorder) config.trace.linestats->absorb(std::move(*recorder));
  if (resources) config.trace.resstats->absorb(std::move(*resources));
  BandwidthSweepPoint point;
  point.bytes = bytes;
  point.gbps = result.total_gbps;
  point.source = result.streams.front().source;
  point.mean_queue_ns = result.streams.front().queue_ns;
  point.bottleneck = result.streams.front().bottleneck;
  return point;
}

std::vector<BandwidthSweepPoint> bandwidth_sweep(
    const BandwidthSweepConfig& config) {
  check_level_unset(config.stream.placement);
  std::vector<BandwidthSweepPoint> points(config.sizes.size());
  ThreadPool pool(config.jobs);
  parallel_for_indexed(pool, config.sizes.size(), [&](std::size_t i) {
    points[i] = bandwidth_sweep_point(config, config.sizes[i]);
  });
  return points;
}

}  // namespace hsw
