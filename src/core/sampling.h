// Set-sampling: simulate a fraction of every cache's sets.
//
// Sweep cost is linear in the lines placed per point, and the figures'
// multi-MiB tails spend most of that time re-simulating statistically
// interchangeable cache sets.  Set sampling simulates a 1/2^k slice of
// the machine: every cache level keeps its associativity and line size
// but holds sets/2^k sets, and the sweep point's buffer is scaled by the
// same factor.  Because victim selection, core-valid tracking, and
// directory state are all per-set, each surviving set sees a load process
// distributionally identical to a full-machine set — the estimate's error
// comes from drawing fewer sets, not from distorted per-set behaviour
// (the property set-dueling monitors on real chips rely on).  Latencies
// and rates are means over sets, so they need no rescaling; PMU-style
// counter totals are scaled by 2^k.
//
// Sampling error grows as per-set populations shrink, and is worst at
// sharp capacity transitions (a set is all-hits or all-misses, and few
// sampled sets estimate the mix badly).  The guard rail is a floor on the
// sampled working set: a point's denominator is reduced — down to 1, i.e.
// exact simulation — until the scaled buffer is at least
// `min_sampled_bytes`.  Small points are cheap to simulate exactly; the
// expensive tail gets the full reduction.
//
// The requested ratio is rounded to the nearest power-of-two reciprocal
// (1/2 .. 1/32) so every cache keeps a power-of-two set count; 1/32 still
// leaves the 64-set L1 with two sets.  `seed` re-randomizes the
// placement/chase realization the sampled machine draws — estimates are a
// pure function of (ratio, seed).
//
// ratio = 1 (default) is not an approximation: no geometry or seed is
// touched and sweeps are byte-identical to an unsampled build (pinned by
// the golden suites).  bench/validate_sampling.cpp checks sampled sweeps
// stay within 2% of the full run across the L3/memory transition.
//
// Known approximations under sampling: the HitME directory cache and the
// timing parameters are not scaled, so sampled runs are least exact where
// HitME capacity effects dominate.  (DRAM rows *are* scaled with the sets;
// see SamplingPlan::scaled.)  Don't use sampling to study HitME sizing;
// see EXPERIMENTS.md "Performance".
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "coh/state.h"
#include "sim/counters.h"

namespace hsw {

// The sampling decision for one sweep point: how much the machine and the
// buffer shrink.  Derived from SamplingConfig::plan(bytes).
struct SamplingPlan {
  std::uint64_t denominator = 1;  // power of two; 1 = exact

  [[nodiscard]] bool active() const { return denominator > 1; }

  // Multiplier that turns sampled event counts into full-population
  // estimates.
  [[nodiscard]] double scale() const {
    return static_cast<double>(denominator);
  }

  // The sampled machine: same associativity and line size, 1/denominator
  // of the sets at every cache level.  DRAM rows shrink by the same factor
  // so the chase's (bank, row) visit process matches the full machine —
  // with full-size rows the smaller buffer would see inflated open-page
  // hit rates, which shows up as a systematic low bias that grows with the
  // denominator (~0.6% per doubling on the remote-memory latency curves).
  [[nodiscard]] CacheGeometry scaled(CacheGeometry g) const {
    g.l1_bytes /= denominator;
    g.l2_bytes /= denominator;
    g.l3_slice_bytes /= denominator;
    g.dram.row_bytes = std::max<std::uint64_t>(
        g.dram.row_bytes / denominator, kLineSize);
    return g;
  }

  // The sampled working set: the same fraction of lines.
  [[nodiscard]] std::uint64_t scaled_bytes(std::uint64_t bytes) const {
    return std::max<std::uint64_t>(bytes / denominator, 64);
  }

  // The sampled measurement window.  Latency measures the first N lines of
  // the chase order — the same order placement walked, so the prefix is
  // the oldest-placed (most conflict-evicted) sub-population.  Keeping the
  // measured *fraction* constant keeps that position bias identical to the
  // full run; measuring the full-run line count against the smaller buffer
  // would average over a broader (younger, more resident) slice and bias
  // the estimate low.
  [[nodiscard]] std::uint64_t scaled_measured_lines(std::uint64_t lines) const {
    if (!active()) return lines;
    return std::max<std::uint64_t>(lines / denominator, 256);
  }

  // Scales a perf-counter delta to estimate the full-population counts.
  // No-op on an exact plan so snapshots stay exact integers.
  void scale_counters(CounterSet::Snapshot& counters) const {
    if (!active()) return;
    const double s = scale();
    for (std::uint64_t& v : counters) {
      v = static_cast<std::uint64_t>(std::llround(static_cast<double>(v) * s));
    }
  }
};

struct SamplingConfig {
  // Requested fraction of sets to simulate, in (0, 1].  1 disables
  // sampling; anything else is rounded to the nearest 1/2^k, k in 1..5.
  double ratio = 1.0;
  // Re-randomizes which per-set realization the sampled machine draws.
  std::uint64_t seed = 0;
  // Floor on the sampled working set: a point's denominator is halved
  // until scaled buffer >= this, so small points (where few sampled sets
  // would estimate capacity transitions badly) run exactly.
  std::uint64_t min_sampled_bytes = 4 * 1024 * 1024;

  [[nodiscard]] bool active() const { return ratio < 1.0; }

  // Rounded denominator before the per-point floor: a power of two, 2..32.
  [[nodiscard]] std::uint64_t requested_denominator() const {
    if (!active()) return 1;
    const double k = std::round(std::log2(1.0 / ratio));
    return 1ull << static_cast<unsigned>(std::clamp(k, 1.0, 5.0));
  }

  // The sampling decision for a point measuring `bytes`.
  [[nodiscard]] SamplingPlan plan(std::uint64_t bytes) const {
    std::uint64_t d = requested_denominator();
    while (d > 1 && bytes / d < min_sampled_bytes) d /= 2;
    return SamplingPlan{d};
  }

  // Folds the sampling seed into an experiment seed so distinct sampling
  // seeds draw independent realizations (SplitMix64 finalizer — full
  // avalanche, so seeds 0 and 1 are as unrelated as any other pair).
  [[nodiscard]] std::uint64_t mix_seed(std::uint64_t experiment_seed) const {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return experiment_seed ^ (z ^ (z >> 31));
  }

  // Ratio outside (0, 1] is a configuration error; throws so a CLI typo
  // (e.g. --sample-ratio 3) cannot silently produce nonsense.
  void validate() const {
    if (!(ratio > 0.0) || ratio > 1.0) {
      throw std::invalid_argument("sampling ratio must be in (0, 1]");
    }
  }
};

}  // namespace hsw
