#include "core/bandwidth.h"

#include <algorithm>
#include <array>

#include "exec/engine.h"

namespace hsw {
namespace {

struct Probe {
  double mean_ns = 0.0;
  ServiceSource source = ServiceSource::kL1;
  int source_node = 0;
  std::uint64_t broadcasts = 0;
};

Probe run_probe(System& system, const StreamConfig& stream,
                const std::vector<LineAddr>& order, std::uint64_t lines,
                const InstrumentationScope& scope) {
  ScopedInstrumentation attached(system, scope);
  Probe probe;
  std::array<std::uint64_t, 7> counts{};
  std::array<int, 7> nodes{};
  double total = 0.0;
  for (std::uint64_t i = 0; i < lines; ++i) {
    const AccessResult access =
        stream.write ? system.write(stream.core, addr_of(order[i]))
                     : system.read(stream.core, addr_of(order[i]));
    total += access.ns;
    ++counts[static_cast<std::size_t>(access.source)];
    nodes[static_cast<std::size_t>(access.source)] = access.source_node;
  }
  const CounterSet::Snapshot delta = attached.release();
  probe.broadcasts = delta[static_cast<std::size_t>(Ctr::kSnoopBroadcasts)];
  probe.mean_ns = lines ? total / static_cast<double>(lines) : 0.0;
  std::size_t best = 0;
  for (std::size_t s = 1; s < counts.size(); ++s) {
    if (counts[s] > counts[best]) best = s;
  }
  probe.source = static_cast<ServiceSource>(best);
  probe.source_node = nodes[best];
  return probe;
}

// Simulated engine: the same flows the analytic solver would see, run as
// calibrated closed loops over the same resource capacities.  Returns the
// per-stream rates; per-stream queueing and bottleneck attribution come
// from the closed-loop result and the tasks' paths.
std::vector<double> simulate_rates(const bw::BandwidthModel& model,
                                   const std::vector<bw::StreamSpec>& specs,
                                   const BandwidthConfig& config,
                                   std::vector<double>* queue_ns,
                                   std::vector<std::string>* bottleneck) {
  std::vector<exec::StreamTask> tasks;
  tasks.reserve(specs.size());
  for (const bw::StreamSpec& spec : specs) {
    const bw::Flow flow = model.flow_for(spec);
    exec::StreamTask task;
    task.core = spec.core;
    task.demand_gbps = flow.demand;
    task.latency_ns = spec.latency_ns;
    task.path = flow.uses;
    tasks.push_back(std::move(task));
  }
  exec::ClosedLoopConfig loop;
  loop.window_ns = config.window_ns;
  loop.resstats = config.instrumentation.resstats;
  const exec::ClosedLoopResult sim =
      exec::run_closed_loop(tasks, model.capacities(), loop);
  *queue_ns = sim.mean_queue_ns;

  // Bottleneck attribution: the busiest resource on each stream's own path
  // (global busy residency, so a stream sees the box it actually shares).
  const std::vector<std::string> names =
      bw::resource_names(model.capacities().size());
  bottleneck->assign(specs.size(), std::string{});
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    double best = -1.0;
    for (const bw::Flow::Use& use : tasks[i].path) {
      const auto r = static_cast<std::size_t>(use.resource);
      if (r < sim.resource_busy_ns.size() && sim.resource_busy_ns[r] > best) {
        best = sim.resource_busy_ns[r];
        (*bottleneck)[i] = names[r];
      }
    }
  }
  return sim.gbps;
}

}  // namespace

std::optional<BandwidthEngine> parse_bandwidth_engine(std::string_view name) {
  if (name == "analytic" || name == "a") return BandwidthEngine::kAnalytic;
  if (name == "simulated" || name == "sim") return BandwidthEngine::kSimulated;
  return std::nullopt;
}

const char* to_string(BandwidthEngine engine) {
  return engine == BandwidthEngine::kAnalytic ? "analytic" : "simulated";
}

BandwidthResult measure_bandwidth(System& system,
                                  const BandwidthConfig& config) {
  BandwidthResult result;
  std::vector<bw::StreamSpec> specs;
  specs.reserve(config.streams.size());

  std::uint64_t seed = config.seed;
  for (const StreamConfig& stream : config.streams) {
    const MemRegion region =
        system.alloc_on_node(stream.placement.memory_node, config.buffer_bytes);

    const std::vector<LineAddr> order = chase_order(region, seed);
    place_lines(system, order, stream.placement);
    const std::uint64_t lines =
        std::min<std::uint64_t>(order.size(), config.probe_lines);

    Probe probe =
        run_probe(system, stream, order, lines, config.instrumentation);
    if (config.steady_state &&
        (stream.placement.level == CacheLevel::kMemory ||
         probe.source == ServiceSource::kLocalDram ||
         probe.source == ServiceSource::kRemoteDram)) {
      // Steady state for streaming loads: the first pass warmed the reader's
      // caches; drain them the silent way (no directory updates, like
      // natural capacity evictions in an out-of-cache stream) and measure
      // the second pass.
      system.evict_core_caches(stream.core);
      system.flush_node_l3(system.topology().node_of_core(stream.core));
      probe =
          run_probe(system, stream, order, lines, config.instrumentation);
    }

    bw::StreamSpec spec;
    spec.core = stream.core;
    spec.write = stream.write;
    spec.width = stream.width;
    spec.source = probe.source;
    spec.source_node = probe.source_node;
    spec.home_node = stream.placement.memory_node;
    spec.latency_ns = probe.mean_ns;
    // A memory stream whose re-reads trigger snoop broadcasts is running on
    // stale snoop-all directory state.
    spec.stale_directory = system.topology().cod() &&
                           (probe.source == ServiceSource::kLocalDram ||
                            probe.source == ServiceSource::kRemoteDram) &&
                           probe.broadcasts > lines / 2;
    specs.push_back(spec);

    StreamResult sr;
    sr.probe_latency_ns = probe.mean_ns;
    sr.source = probe.source;
    sr.source_node = probe.source_node;
    sr.stale_directory = spec.stale_directory;
    result.streams.push_back(sr);
    ++seed;
  }

  const bw::BandwidthModel model(system, config.model);
  std::vector<double> queue_ns(specs.size(), 0.0);
  std::vector<std::string> bottleneck(specs.size());
  const std::vector<double> rates =
      config.engine == BandwidthEngine::kSimulated
          ? simulate_rates(model, specs, config, &queue_ns, &bottleneck)
          : model.concurrent(specs);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    result.streams[i].gbps = rates[i];
    result.streams[i].queue_ns = queue_ns[i];
    result.streams[i].bottleneck = bottleneck[i];
    result.total_gbps += rates[i];
  }
  return result;
}

}  // namespace hsw
