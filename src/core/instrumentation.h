// Shared instrumentation wiring for every measurement path.
//
// Before this header existed, LatencyConfig, BandwidthConfig, and the replay
// helpers each carried their own `trace::Tracer*` / `metrics::MetricsRegistry*`
// pair and hand-rolled the attach / run / detach / capture-counters dance.
// InstrumentationScope is that pair as one value, and ScopedInstrumentation
// is the dance as one RAII object: construct it around a measured section
// and the tracer and registry are attached to the engine; destruction (or an
// explicit release()) detaches both and captures the engine-counter delta
// into the registry.  Every subsystem — latency, bandwidth, replay, and the
// concurrent exec engine — takes the same scope, so observability is wired
// once, not re-implemented per measurement kind.
#pragma once

#include "machine/system.h"

namespace hsw::obs {
class ResourceStatsRecorder;
}  // namespace hsw::obs

namespace hsw {

// A (possibly empty) set of observers for a measured section.  All fields
// are optional and non-owning; a default-constructed scope is "run dark"
// and costs the engine one null-pointer test per instrumentation site.
struct InstrumentationScope {
  // Receives a span tree / component attribution per access.
  trace::Tracer* tracer = nullptr;
  // Receives uncore-PMU-style events, and the engine-counter delta of the
  // section when the scope is released.
  metrics::MetricsRegistry* metrics = nullptr;
  // Receives per-line state transitions, residency time, and accessor
  // history (the coherence flight recorder, obs/line_stats.h).
  obs::LineStatsRecorder* linestats = nullptr;
  // Receives per-resource queueing telemetry — busy residency, waits, and
  // queue depths at every shared FIFO server (obs/resource_stats.h).  Fed
  // directly by the event-driven exec engine, which owns the FIFO servers;
  // it has no System attach point, so ScopedInstrumentation leaves it
  // alone.
  obs::ResourceStatsRecorder* resstats = nullptr;

  [[nodiscard]] bool any() const {
    return tracer != nullptr || metrics != nullptr || linestats != nullptr ||
           resstats != nullptr;
  }
};

// RAII attach/detach around a measured section:
//
//   CounterSet::Snapshot delta;
//   {
//     ScopedInstrumentation attached(system, scope);
//     ... issue accesses ...
//     delta = attached.release();   // or let the destructor detach
//   }
//
// release() detaches the tracer and registry, captures the engine-counter
// delta over the section into the registry (if one is attached), and
// returns that delta; it is idempotent, and the destructor calls it.
class ScopedInstrumentation {
 public:
  ScopedInstrumentation(System& system, const InstrumentationScope& scope)
      : system_(system),
        scope_(scope),
        before_(system.counters().snapshot()) {
    system_.set_tracer(scope_.tracer);
    if (scope_.metrics != nullptr) system_.attach_metrics(*scope_.metrics);
    if (scope_.linestats != nullptr) {
      system_.attach_linestats(*scope_.linestats);
    }
  }
  ~ScopedInstrumentation() { release(); }

  ScopedInstrumentation(const ScopedInstrumentation&) = delete;
  ScopedInstrumentation& operator=(const ScopedInstrumentation&) = delete;

  CounterSet::Snapshot release() {
    if (!released_) {
      released_ = true;
      system_.set_tracer(nullptr);
      if (scope_.metrics != nullptr) system_.detach_metrics();
      if (scope_.linestats != nullptr) system_.detach_linestats();
      delta_ = system_.counters().diff(before_);
      if (scope_.metrics != nullptr) {
        scope_.metrics->capture_engine_counters(delta_);
      }
    }
    return delta_;
  }

 private:
  System& system_;
  InstrumentationScope scope_;
  CounterSet::Snapshot before_;
  CounterSet::Snapshot delta_{};
  bool released_ = false;
};

}  // namespace hsw
