#include "core/placement.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace hsw {

const char* to_string(CacheLevel level) {
  switch (level) {
    case CacheLevel::kL1L2: return "L1/L2";
    case CacheLevel::kL3: return "L3";
    case CacheLevel::kMemory: return "memory";
  }
  return "?";
}

std::vector<LineAddr> chase_order(const MemRegion& region, std::uint64_t seed) {
  std::vector<LineAddr> lines(region.line_count());
  std::iota(lines.begin(), lines.end(), region.first_line());
  Xoshiro256 rng(seed);
  // Fisher-Yates shuffle: a uniformly random single-cycle visiting order is
  // what the real benchmark's pointer chain provides.
  for (std::size_t i = lines.size(); i > 1; --i) {
    std::swap(lines[i - 1], lines[rng.bounded(i)]);
  }
  return lines;
}

void place(System& system, const MemRegion& region, const Placement& placement,
           std::uint64_t seed) {
  const std::vector<LineAddr> order = chase_order(region, seed);
  place_lines(system, order, placement);
}

void place_lines(System& system, std::span<const LineAddr> order,
                 const Placement& placement) {
  // 1. Establish the owner's copy in the requested state.
  for (LineAddr line : order) system.write(placement.owner_core, addr_of(line));
  if (placement.state == Mesif::kExclusive ||
      placement.state == Mesif::kShared) {
    for (LineAddr line : order) system.flush_line(addr_of(line));
    for (LineAddr line : order) system.read(placement.owner_core, addr_of(line));
  }

  // 2. Spread shared copies; the last reader's node receives Forward.
  if (placement.state == Mesif::kShared) {
    for (int sharer : placement.sharers) {
      for (LineAddr line : order) system.read(sharer, addr_of(line));
    }
  }

  // 3. Push the lines down to the requested level.
  if (placement.level == CacheLevel::kL3 ||
      placement.level == CacheLevel::kMemory) {
    system.evict_core_caches(placement.owner_core);
    for (int sharer : placement.sharers) system.evict_core_caches(sharer);
  }
  if (placement.level == CacheLevel::kMemory) {
    // Evict the involved nodes' L3s.  Clean lines drop silently, which is
    // exactly what leaves the in-memory directory stale (Table V).
    const SystemTopology& topo = system.topology();
    std::vector<int> nodes{topo.node_of_core(placement.owner_core)};
    for (int sharer : placement.sharers) {
      nodes.push_back(topo.node_of_core(sharer));
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    for (int node : nodes) system.flush_node_l3(node);
  }
}

}  // namespace hsw
