// Bandwidth microbenchmark.
//
// Each stream is (a) placed like a latency experiment, (b) probed with a
// short chase to classify where its data is serviced and at what latency,
// then (c) the streams' sustained rates are computed by the selected engine.
// Memory-resident streams are probed in steady state: the probe pass runs,
// the reader's caches are drained the silent way, and a second pass is
// measured — this is what exposes the COD stale-directory broadcasts that
// throttle remote streams (Table VIII).
//
// Two engines share the public API:
//
//  * kAnalytic (default) — MLP demand + max-min contention (bw/model.h).
//    Closed-form, instant, and what every golden figure was recorded with.
//  * kSimulated — event-driven closed loops over the same flows and resource
//    capacities (exec/engine.h): contention emerges from FIFO queueing at
//    ring stops, iMC channels, QPI links, and bridges instead of from the
//    fluid solver.  Deterministic, so sweep outputs stay byte-identical for
//    any job count.  validate_bw_model cross-checks the two engines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bw/model.h"
#include "core/instrumentation.h"
#include "core/placement.h"
#include "machine/system.h"

namespace hsw {

// How measure_bandwidth turns per-stream probes into sustained rates.
enum class BandwidthEngine : std::uint8_t {
  kAnalytic,   // fluid max-min model (bw/solver.h)
  kSimulated,  // event-driven queueing (exec/engine.h)
};

// "analytic" | "simulated" (also accepts the shorthands "a" | "sim").
// Returns nullopt on anything else — no exit() in library paths.
[[nodiscard]] std::optional<BandwidthEngine> parse_bandwidth_engine(
    std::string_view name);
[[nodiscard]] const char* to_string(BandwidthEngine engine);

struct StreamConfig {
  int core = 0;
  Placement placement;
  bool write = false;
  bw::LoadWidth width = bw::LoadWidth::kAvx256;
};

struct BandwidthConfig {
  std::vector<StreamConfig> streams;
  std::uint64_t buffer_bytes = 512 * 1024;
  std::uint64_t probe_lines = 2048;
  std::uint64_t seed = 1;
  // Memory streams: probe the steady state (second pass after a silent
  // cache drain), which exposes stale-directory broadcasts on re-reads.
  // Disable to measure the first pass over freshly placed data.
  bool steady_state = true;
  bw::BwParams model;
  BandwidthEngine engine = BandwidthEngine::kAnalytic;
  // kSimulated only: measurement window per point (exec::ClosedLoopConfig).
  double window_ns = 100'000.0;
  // Attached to the coherence engine around the probe passes only
  // (placement and drain traffic is not traced); also receives the
  // engine-counter delta of every probe.
  InstrumentationScope instrumentation;
};

struct StreamResult {
  double gbps = 0.0;
  double probe_latency_ns = 0.0;
  ServiceSource source = ServiceSource::kL1;
  int source_node = 0;
  bool stale_directory = false;
  // kSimulated only: mean per-line delay spent queued at saturated
  // resources (0 when uncontended, or under kAnalytic).
  double queue_ns = 0.0;
  // kSimulated only: name of the busiest shared resource on this stream's
  // path (RING_n / IMC_n / QPI_s / BRIDGE_s), from the closed loops'
  // always-on busy accounting.  Empty under kAnalytic.
  std::string bottleneck;
};

struct BandwidthResult {
  double total_gbps = 0.0;
  std::vector<StreamResult> streams;
};

BandwidthResult measure_bandwidth(System& system, const BandwidthConfig& config);

}  // namespace hsw
