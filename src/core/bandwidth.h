// Bandwidth microbenchmark.
//
// Each stream is (a) placed like a latency experiment, (b) probed with a
// short chase to classify where its data is serviced and at what latency,
// then (c) the streams' sustained rates are computed by the MLP +
// max-min-contention model (bw/model.h).  Memory-resident streams are probed
// in steady state: the probe pass runs, the reader's caches are drained the
// silent way, and a second pass is measured — this is what exposes the COD
// stale-directory broadcasts that throttle remote streams (Table VIII).
#pragma once

#include <cstdint>
#include <vector>

#include "bw/model.h"
#include "core/placement.h"
#include "machine/system.h"

namespace hsw {

struct StreamConfig {
  int core = 0;
  Placement placement;
  bool write = false;
  bw::LoadWidth width = bw::LoadWidth::kAvx256;
};

struct BandwidthConfig {
  std::vector<StreamConfig> streams;
  std::uint64_t buffer_bytes = 512 * 1024;
  std::uint64_t probe_lines = 2048;
  std::uint64_t seed = 1;
  // Memory streams: probe the steady state (second pass after a silent
  // cache drain), which exposes stale-directory broadcasts on re-reads.
  // Disable to measure the first pass over freshly placed data.
  bool steady_state = true;
  bw::BwParams model;
  // Attached to the engine around the probe passes only (placement and
  // drain traffic is not traced).
  trace::Tracer* tracer = nullptr;
  // Metrics registry covering the probe passes (same scope as the tracer);
  // also receives the engine-counter delta of every probe.
  metrics::MetricsRegistry* metrics = nullptr;
};

struct StreamResult {
  double gbps = 0.0;
  double probe_latency_ns = 0.0;
  ServiceSource source = ServiceSource::kL1;
  int source_node = 0;
  bool stale_directory = false;
};

struct BandwidthResult {
  double total_gbps = 0.0;
  std::vector<StreamResult> streams;
};

BandwidthResult measure_bandwidth(System& system, const BandwidthConfig& config);

}  // namespace hsw
