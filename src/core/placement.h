// Data placement and coherence-state control (the paper's §V-B).
//
// The paper's central methodological contribution: before each measurement,
// every cache line of the working set is put into a fully specified
// combination of (owning core / sharing cores, cache level, MESIF state):
//
//   * modified   — the placer writes the data;
//   * exclusive  — write, clflush, read (the clflush removes the modified
//                  copy and updates memory, the re-read installs E);
//   * shared/forward — place exclusive, then other cores read it; the order
//                  of the reads determines which node holds the Forward copy
//                  (the most recent reader).
//
// The cache *level* is controlled the way the paper does it: a data set that
// exceeds a level naturally lives in the next one, and explicit cache
// flushes push lines down (core caches -> L3 -> memory) without disturbing
// the coherence state machinery (clean evictions stay silent).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "machine/system.h"
#include "mem/line.h"

namespace hsw {

enum class CacheLevel : std::uint8_t { kL1L2, kL3, kMemory };

[[nodiscard]] const char* to_string(CacheLevel level);

struct Placement {
  // Core that establishes the initial (M or E) copy.
  int owner_core = 0;
  // NUMA node whose memory backs the buffer (libnuma affinity).
  int memory_node = 0;
  // Target coherence state: kModified, kExclusive, or kShared (which also
  // creates a Forward copy).
  Mesif state = Mesif::kModified;
  // For state kShared: cores that read the data after the owner, in order.
  // The last reader's node ends up holding the Forward copy.
  std::vector<int> sharers;
  // Where the data should reside before measurement.
  CacheLevel level = CacheLevel::kL1L2;
};

// Applies `placement` to every line of `region`.  Lines are visited in a
// deterministic shuffled order so DRAM row-buffer state is realistic.
void place(System& system, const MemRegion& region, const Placement& placement,
           std::uint64_t seed = 1);

// Applies `placement` to exactly the given lines, in the given order.  The
// experiments use this with their already-computed chase order so the
// permutation is derived once per measurement instead of once per pass.
void place_lines(System& system, std::span<const LineAddr> order,
                 const Placement& placement);

// Builds the paper's pointer-chase order: a pseudo-random permutation of the
// region's lines (each line visited exactly once per pass).
std::vector<LineAddr> chase_order(const MemRegion& region, std::uint64_t seed = 1);

}  // namespace hsw
