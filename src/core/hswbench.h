// Umbrella header: the public API of the hswsim benchmark kit.
//
// One include gives you the whole experiment surface:
//
//   machine      System, SystemConfig (source_snoop / home_snoop /
//                cluster_on_die presets, for_mode), parse_snoop_mode,
//                parse_mesif, topology and timing introspection
//   experiments  measure_latency (LatencyConfig), measure_bandwidth
//                (BandwidthConfig; engine = kAnalytic | kSimulated,
//                parse_bandwidth_engine), latency_sweep / bandwidth_sweep
//   specs        ExperimentSpec — the one versioned JSON document naming a
//                sweep (kind, mode, protocol, engine, seed, sampling,
//                placement, sizes).  spec_from_json / to_json round-trip;
//                canonical() + hash() feed the content-addressed result
//                cache (experiment_cache_key x timing_fingerprint).  The
//                benches load it via --spec; hswsim-serve accepts batches
//                of it over NDJSON (src/serve/)
//   model        bw::BandwidthModel (MLP demand + max-min contention),
//                bw::max_min_rates
//   exec         exec::run_closed_loop / exec::run_programs — the
//                event-driven concurrent engine behind kSimulated and
//                replay_concurrent
//   workloads    Trace generators + replay / replay_concurrent
//                (link hswsim_workload for these)
//   observability InstrumentationScope {tracer, metrics, linestats} — one
//                struct wired through every config above; trace::TraceSink,
//                metrics::MetricsHub, and obs::LineStatsHub collect across
//                sweep points (the latter is the per-line coherence flight
//                recorder: transition matrix, state residency, sharing-
//                pattern classification — obs/line_stats.h)
//   output       Table, format_ns / format_gbps / format_bytes, kib/mib/gib
//
// Quickstart (examples/quickstart.cpp is the runnable version):
//
//   #include "core/hswbench.h"
//   hsw::System system(hsw::SystemConfig::source_snoop());
//   hsw::LatencyConfig cfg;
//   cfg.reader_core = 0;
//   cfg.placement = {.owner_core = 1, .memory_node = 0,
//                    .state = hsw::Mesif::kModified};
//   cfg.buffer_bytes = hsw::kib(64);
//   auto r = hsw::measure_latency(system, cfg);   // ~53 ns: core-to-core
//
// To observe an experiment, attach an InstrumentationScope:
//
//   trace::Tracer tracer(trace::Tracer::Mode::kFull, /*stream=*/0);
//   metrics::MetricsRegistry registry(/*stream=*/0);
//   cfg.instrumentation = {&tracer, &registry};
//   // after the run: tracer holds span trees, registry the PMU-style
//   // samples plus the engine-counter delta of the measured section.
//
// To cross-check the analytic bandwidth model against the event-driven
// engine on the same streams:
//
//   hsw::BandwidthConfig bc;            // ... add streams ...
//   bc.engine = hsw::BandwidthEngine::kSimulated;
//   auto sim = hsw::measure_bandwidth(system, bc);
//
// See examples/ for complete programs, EXPERIMENTS.md for the experiment
// catalogue, and DESIGN.md for the architecture.
//
// --- The facade rule: the library never exits, never prints -----------------
//
// Everything under src/ is a library: no function behind this header (or in
// src/serve/) calls exit(), prints to stdout, or writes usage text to
// stderr.  Errors surface as values — std::optional from the name parsers
// (parse_snoop_mode, parse_protocol, parse_mesif, parse_bandwidth_engine,
// parse_experiment_kind, spec_from_json), error enums from the report
// loaders (ReportLoadError), std::invalid_argument from configuration
// validation — and the *binaries* own the policy: the benches route every
// flag error (bad values, invalid combinations, the MESIF pin, output-path
// probes) through CommandLine checks so ParseStatus::kError is the single
// argument-error exit path, and hswsim-serve turns the same parse failures
// into {"event":"error"} lines instead of dying.  Code that wants to embed
// the kit (a server, a notebook binding, a fuzzer) must never lose its
// process to a typo'd config.
#pragma once

#include "bw/model.h"
#include "bw/solver.h"
#include "core/bandwidth.h"
#include "core/experiment.h"
#include "core/instrumentation.h"
#include "core/latency.h"
#include "core/placement.h"
#include "core/sweep.h"
#include "exec/engine.h"
#include "machine/specs.h"
#include "machine/system.h"
#include "metrics/hub.h"
#include "metrics/report.h"
#include "obs/line_stats.h"
#include "trace/sink.h"
#include "util/table.h"
#include "util/units.h"
