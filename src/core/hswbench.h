// Umbrella header: the public API of the hswsim benchmark kit.
//
// Quickstart:
//
//   #include "core/hswbench.h"
//   hsw::System system(hsw::SystemConfig::source_snoop());
//   hsw::LatencyConfig cfg;
//   cfg.reader_core = 0;
//   cfg.placement = {.owner_core = 1, .memory_node = 0,
//                    .state = hsw::Mesif::kModified};
//   cfg.buffer_bytes = hsw::kib(64);
//   auto r = hsw::measure_latency(system, cfg);   // ~53 ns: core-to-core
//
// See examples/ for complete programs and DESIGN.md for the architecture.
#pragma once

#include "bw/model.h"
#include "bw/solver.h"
#include "core/bandwidth.h"
#include "core/latency.h"
#include "core/placement.h"
#include "core/sweep.h"
#include "machine/specs.h"
#include "machine/system.h"
#include "util/table.h"
#include "util/units.h"
