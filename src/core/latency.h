// Latency microbenchmark (pointer chasing with placement control).
//
// Mirrors the paper's methodology: place every line of a buffer into a
// specified (core, level, state), then chase through the buffer from the
// measuring core with dependent single-line loads and report the mean
// per-load latency.  Perf-counter deltas over the measured section identify
// where the data was actually serviced from (the Fig. 7 analysis).
#pragma once

#include <array>
#include <cstdint>

#include "core/placement.h"
#include "machine/system.h"

namespace hsw {

struct LatencyConfig {
  int reader_core = 0;
  Placement placement;
  std::uint64_t buffer_bytes = 64 * 1024;
  // Upper bound on measured loads (placement always covers the full buffer).
  std::uint64_t max_measured_lines = 32768;
  std::uint64_t seed = 1;
};

struct LatencyResult {
  double mean_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  std::uint64_t lines_measured = 0;
  // Distribution of accesses over service sources, indexed by ServiceSource.
  std::array<std::uint64_t, 7> source_counts{};
  ServiceSource dominant_source = ServiceSource::kL1;
  // Perf-counter deltas over the measured section only.
  CounterSet::Snapshot counters{};

  [[nodiscard]] double source_fraction(ServiceSource s) const {
    if (lines_measured == 0) return 0.0;
    return static_cast<double>(source_counts[static_cast<std::size_t>(s)]) /
           static_cast<double>(lines_measured);
  }
};

// Places the buffer and measures one chase pass.  The system should be
// freshly constructed (or quiesced) — placement assumes it owns the caches.
LatencyResult measure_latency(System& system, const LatencyConfig& config);

}  // namespace hsw
