// Latency microbenchmark (pointer chasing with placement control).
//
// Mirrors the paper's methodology: place every line of a buffer into a
// specified (core, level, state), then chase through the buffer from the
// measuring core with dependent single-line loads and report the mean
// per-load latency.  Perf-counter deltas over the measured section identify
// where the data was actually serviced from (the Fig. 7 analysis).
#pragma once

#include <array>
#include <cstdint>

#include "core/instrumentation.h"
#include "core/placement.h"
#include "machine/system.h"
#include "trace/span.h"
#include "util/stats.h"

namespace hsw {

struct LatencyConfig {
  int reader_core = 0;
  Placement placement;
  std::uint64_t buffer_bytes = 64 * 1024;
  // Upper bound on measured loads (placement always covers the full buffer).
  std::uint64_t max_measured_lines = 32768;
  std::uint64_t seed = 1;
  // Attached to the engine for the measured section only (placement traffic
  // is not traced).  The tracer enables per-component attribution in the
  // result; the registry also receives the engine-counter delta at the end.
  InstrumentationScope instrumentation;
};

struct LatencyResult {
  double mean_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  // Order statistics over the measured loads (exact, not histogram-derived).
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  std::uint64_t lines_measured = 0;
  // Log-bucketed latency distribution of the measured loads.
  LogHistogram histogram;
  // Distribution of accesses over service sources, indexed by ServiceSource.
  std::array<std::uint64_t, 7> source_counts{};
  ServiceSource dominant_source = ServiceSource::kL1;
  // Perf-counter deltas over the measured section only.
  CounterSet::Snapshot counters{};
  // Summed per-component critical-path latency over all measured loads;
  // filled only when a tracer was attached (has_attribution).  Divide by
  // lines_measured for the per-load mean.
  bool has_attribution = false;
  std::array<double, trace::kComponentCount> component_ns{};

  [[nodiscard]] double source_fraction(ServiceSource s) const {
    if (lines_measured == 0) return 0.0;
    return static_cast<double>(source_counts[static_cast<std::size_t>(s)]) /
           static_cast<double>(lines_measured);
  }
  [[nodiscard]] double mean_component_ns(trace::Component c) const {
    if (lines_measured == 0) return 0.0;
    return component_ns[static_cast<std::size_t>(c)] /
           static_cast<double>(lines_measured);
  }
};

// Places the buffer and measures one chase pass.  The system should be
// freshly constructed (or quiesced) — placement assumes it owns the caches.
LatencyResult measure_latency(System& system, const LatencyConfig& config);

}  // namespace hsw
