// Data-set-size sweeps: the x-axes of the paper's Figures 4-9.
//
// A sweep constructs a fresh System per point (measurements must not inherit
// cache or directory state from the previous size), places the buffer with
// the natural level (capacity decides which level holds the data, exactly as
// on hardware), and measures latency or bandwidth.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/bandwidth.h"
#include "core/latency.h"
#include "machine/system.h"

namespace hsw {

// Log-spaced sizes between min and max (inclusive): {1, 1.5}x powers of two,
// e.g. 16K, 24K, 32K, 48K, 64K ...
std::vector<std::uint64_t> sweep_sizes(std::uint64_t min_bytes,
                                       std::uint64_t max_bytes);

struct LatencySweepPoint {
  std::uint64_t bytes = 0;
  LatencyResult result;
};

struct LatencySweepConfig {
  SystemConfig system;
  int reader_core = 0;
  // Level is forced to kL1L2 ("natural"); state/owner/sharers/node apply.
  Placement placement;
  std::vector<std::uint64_t> sizes;
  std::uint64_t max_measured_lines = 16384;
  std::uint64_t seed = 1;
};

std::vector<LatencySweepPoint> latency_sweep(const LatencySweepConfig& config);

struct BandwidthSweepPoint {
  std::uint64_t bytes = 0;
  double gbps = 0.0;
  ServiceSource source = ServiceSource::kL1;
};

struct BandwidthSweepConfig {
  SystemConfig system;
  StreamConfig stream;
  std::vector<std::uint64_t> sizes;
  std::uint64_t seed = 1;
  bw::BwParams model;
};

std::vector<BandwidthSweepPoint> bandwidth_sweep(const BandwidthSweepConfig& config);

}  // namespace hsw
