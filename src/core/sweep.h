// Data-set-size sweeps: the x-axes of the paper's Figures 4-9.
//
// A sweep constructs a fresh System per point (measurements must not inherit
// cache or directory state from the previous size), places the buffer with
// the natural level (capacity decides which level holds the data, exactly as
// on hardware), and measures latency or bandwidth.
//
// Points are independent — each one owns its System — so sweeps run the
// size axis in parallel when `jobs > 1`.  Results land in slots indexed by
// size, making the output bit-identical to the serial path for any job
// count (the determinism the regression harness relies on).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/bandwidth.h"
#include "core/latency.h"
#include "core/sampling.h"
#include "machine/system.h"
#include "metrics/hub.h"
#include "obs/line_stats.h"
#include "obs/resource_stats.h"
#include "trace/sink.h"

namespace hsw {

// Tracing options shared by the sweep drivers.  Each sweep point gets its
// own Tracer with stream id `stream_base + size_index`; ids are derived from
// the point's position in `sizes`, never from scheduling, so the merged
// trace is byte-identical for any `jobs` value.  Benches give each plan a
// disjoint stream_base (plan_index * kStreamsPerPlan).
struct SweepTraceOptions {
  // When set, full span trees are retained and absorbed into the sink
  // (thread-safe) as each point finishes.
  trace::TraceSink* sink = nullptr;
  // Attribution-only mode: per-access component breakdowns are aggregated
  // into LatencyResult::component_ns without retaining records.
  bool attribution = false;
  std::uint32_t stream_base = 0;
  std::size_t capacity = trace::Tracer::kDefaultCapacity;
  // When set, each sweep point also runs an uncore-metrics registry (stream
  // id shared with the tracer) absorbed into the hub as the point finishes;
  // the hub's merge is keyed by stream id, so the merged report is
  // byte-identical for any job count.
  metrics::MetricsHub* metrics = nullptr;
  std::uint64_t metrics_interval = metrics::kDefaultSampleInterval;
  // When set, each sweep point also runs a per-line coherence flight
  // recorder (stream id shared with the tracer) absorbed into the hub as
  // the point finishes; the hub folds recorders in stream-id order, so the
  // merged line stats are byte-identical for any job count.
  obs::LineStatsHub* linestats = nullptr;
  // When set, each bandwidth sweep point under the simulated engine also
  // runs a per-resource queueing recorder (stream id shared with the
  // tracer); same stream-id-ordered fold, same any-jobs byte identity.
  obs::ResourceStatsHub* resstats = nullptr;

  [[nodiscard]] bool enabled() const { return sink != nullptr || attribution; }
  [[nodiscard]] bool metrics_enabled() const { return metrics != nullptr; }
  [[nodiscard]] bool linestats_enabled() const { return linestats != nullptr; }
  [[nodiscard]] bool resstats_enabled() const { return resstats != nullptr; }
};

inline constexpr std::uint32_t kStreamsPerPlan = 4096;

// Log-spaced sizes between min and max (inclusive): {1, 1.5}x powers of two,
// e.g. 16K, 24K, 32K, 48K, 64K ...
std::vector<std::uint64_t> sweep_sizes(std::uint64_t min_bytes,
                                       std::uint64_t max_bytes);

struct LatencySweepPoint {
  std::uint64_t bytes = 0;
  LatencyResult result;
};

struct LatencySweepConfig {
  SystemConfig system;
  int reader_core = 0;
  // The sweep overrides `placement.level` with kL1L2 ("natural"): the data
  // set's size, not a flush step, decides which level holds it — that is
  // the whole point of sweeping.  The field must be left at its default;
  // a sweep with an explicit level throws std::invalid_argument.  The
  // state/owner/sharers/node fields apply unchanged.
  Placement placement;
  std::vector<std::uint64_t> sizes;
  std::uint64_t max_measured_lines = 16384;
  std::uint64_t seed = 1;
  // Worker threads for the size axis; 1 = serial, 0 = hardware_concurrency.
  unsigned jobs = 1;
  SweepTraceOptions trace;
  // Set-sampling applied to every point (core/sampling.h); default exact.
  SamplingConfig sampling;
};

// Measures a single size on a fresh System (the unit of work the parallel
// sweep and the bench fan-out both dispatch).
LatencySweepPoint latency_sweep_point(const LatencySweepConfig& config,
                                      std::uint64_t bytes);

std::vector<LatencySweepPoint> latency_sweep(const LatencySweepConfig& config);

struct BandwidthSweepPoint {
  std::uint64_t bytes = 0;
  double gbps = 0.0;
  ServiceSource source = ServiceSource::kL1;
  // Simulated engine only: mean per-line queueing delay and the busiest
  // resource on the stream's path (empty / 0 under the analytic engine).
  double mean_queue_ns = 0.0;
  std::string bottleneck;
};

struct BandwidthSweepConfig {
  SystemConfig system;
  // `stream.placement.level` follows the same rule as the latency sweep:
  // it must stay at its default (the sweep forces the natural level).
  StreamConfig stream;
  std::vector<std::uint64_t> sizes;
  std::uint64_t seed = 1;
  bw::BwParams model;
  // Analytic (default) or event-driven simulated rates; see bandwidth.h.
  // Simulated points are deterministic too, so the jobs guarantee holds.
  BandwidthEngine engine = BandwidthEngine::kAnalytic;
  // Worker threads for the size axis; 1 = serial, 0 = hardware_concurrency.
  unsigned jobs = 1;
  SweepTraceOptions trace;
  // Set-sampling applied to every point (core/sampling.h); default exact.
  SamplingConfig sampling;
};

BandwidthSweepPoint bandwidth_sweep_point(const BandwidthSweepConfig& config,
                                          std::uint64_t bytes);

std::vector<BandwidthSweepPoint> bandwidth_sweep(const BandwidthSweepConfig& config);

}  // namespace hsw
