#include "core/latency.h"

#include <algorithm>

namespace hsw {

LatencyResult measure_latency(System& system, const LatencyConfig& config) {
  const MemRegion region =
      system.alloc_on_node(config.placement.memory_node, config.buffer_bytes);

  // Placement and measurement chase the same deterministic order (computed
  // once — it used to be derived twice from the same seed).
  const std::vector<LineAddr> order = chase_order(region, config.seed);
  place_lines(system, order, config.placement);

  const std::uint64_t measured =
      std::min<std::uint64_t>(order.size(), config.max_measured_lines);

  LatencyResult result;
  result.lines_measured = measured;
  ScopedInstrumentation attached(system, config.instrumentation);

  Accumulator samples;
  double total = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  for (std::uint64_t i = 0; i < measured; ++i) {
    const AccessResult access = system.read(config.reader_core, addr_of(order[i]));
    total += access.ns;
    if (i == 0) {
      min_ns = max_ns = access.ns;
    } else {
      min_ns = std::min(min_ns, access.ns);
      max_ns = std::max(max_ns, access.ns);
    }
    samples.add(access.ns);
    result.histogram.add(access.ns);
    ++result.source_counts[static_cast<std::size_t>(access.source)];
    if (access.attribution != nullptr) {
      result.has_attribution = true;
      for (std::size_t c = 0; c < trace::kComponentCount; ++c) {
        result.component_ns[c] += access.attribution->component_ns[c];
      }
    }
  }
  result.counters = attached.release();
  result.mean_ns = measured ? total / static_cast<double>(measured) : 0.0;
  result.min_ns = min_ns;
  result.max_ns = max_ns;
  if (!samples.empty()) {
    result.p50_ns = samples.p50();
    result.p95_ns = samples.p95();
    result.p99_ns = samples.p99();
  }

  std::size_t best = 0;
  for (std::size_t s = 1; s < result.source_counts.size(); ++s) {
    if (result.source_counts[s] > result.source_counts[best]) best = s;
  }
  result.dominant_source = static_cast<ServiceSource>(best);
  return result;
}

}  // namespace hsw
