#include "bw/queueing.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace hsw::bw {

QueueingSimulator::QueueingSimulator(std::vector<double> capacities_gbps) {
  service_ns_.reserve(capacities_gbps.size());
  for (double gbps : capacities_gbps) {
    service_ns_.push_back(gbps > 0.0 ? 64.0 / gbps : 0.0);
  }
}

QueueingResult QueueingSimulator::run(const std::vector<QueueFlow>& flows,
                                      double window_ns) {
  EventQueue queue;
  std::vector<double> free_at(service_ns_.size(), 0.0);
  const double warmup_ns = window_ns / 4.0;
  const double end_ns = warmup_ns + window_ns;
  std::vector<std::uint64_t> retired(flows.size(), 0);

  // One closed-loop "request slot" per outstanding line of each flow.
  struct Slot {
    std::size_t flow;
  };

  // Advances `slot` through visit `stage`; stage == visits.size() means the
  // request is travelling home (base latency), after which it reissues.
  std::function<void(Slot, std::size_t)> advance =
      [&](Slot slot, std::size_t stage) {
        const QueueFlow& flow = flows[slot.flow];
        if (stage < flow.visits.size()) {
          const QueueFlow::Visit& visit = flow.visits[stage];
          const auto r = static_cast<std::size_t>(visit.resource);
          const double start = std::max(queue.now(), free_at[r]);
          const double done = start + service_ns_[r] * visit.weight;
          free_at[r] = done;
          queue.schedule_at(done, [&, slot, stage] { advance(slot, stage + 1); });
          return;
        }
        // Retire after the uncontended part of the round trip, then reissue.
        queue.schedule_after(flow.base_latency_ns, [&, slot] {
          if (queue.now() > warmup_ns && queue.now() <= end_ns) {
            ++retired[slot.flow];
          }
          if (queue.now() < end_ns) advance(slot, 0);
        });
      };

  for (std::size_t f = 0; f < flows.size(); ++f) {
    const int slots =
        std::max(1, static_cast<int>(std::llround(flows[f].mlp)));
    for (int s = 0; s < slots; ++s) {
      // Stagger initial issues so the warmup is not synchronized.
      queue.schedule_at(static_cast<double>(s) * 0.7 +
                            static_cast<double>(f) * 0.3,
                        [&, f] { advance(Slot{f}, 0); });
    }
  }
  queue.run_until(end_ns + 1e6);

  QueueingResult result;
  result.simulated_ns = window_ns;
  result.gbps.resize(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    result.gbps[f] = static_cast<double>(retired[f]) * 64.0 / window_ns;
    result.lines_retired += retired[f];
  }
  return result;
}

}  // namespace hsw::bw
