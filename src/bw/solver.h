// Max-min fair bandwidth allocation (progressive filling / water-filling).
//
// Concurrent memory streams share ring segments, QPI links, and DRAM
// channels.  Measured aggregate bandwidths on real hardware are well
// approximated by max-min fairness: every flow's rate rises uniformly until
// either its own demand (concurrency limit) or some shared resource
// saturates, at which point the flows through that resource are frozen and
// the rest keep growing.  This reproduces the saturating shapes of the
// paper's Tables VII/VIII (e.g. local reads: 10.6 -> 63 GB/s, flat beyond
// six cores).
#pragma once

#include <vector>

namespace hsw::bw {

struct Flow {
  // Maximum rate this flow could sustain alone (GB/s): the MLP-limited
  // single-stream rate.
  double demand = 0.0;
  // Indices into the capacity vector of every resource on the flow's path.
  // `weight` scales the flow's consumption of that resource (e.g. a write
  // stream consumes DRAM capacity at ~2.4x its application rate because of
  // RFO reads plus writebacks).
  struct Use {
    int resource = 0;
    double weight = 1.0;
  };
  std::vector<Use> uses;
};

// Returns the max-min fair rate (GB/s) of each flow given per-resource
// capacities (GB/s).  Flows with zero demand get zero.  Runs in
// O(iterations * flows * uses); iterations <= flows + resources.
std::vector<double> max_min_rates(const std::vector<Flow>& flows,
                                  const std::vector<double>& capacities);

}  // namespace hsw::bw
