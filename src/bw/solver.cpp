#include "bw/solver.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace hsw::bw {

std::vector<double> max_min_rates(const std::vector<Flow>& flows,
                                  const std::vector<double>& capacities) {
  const std::size_t n = flows.size();
  std::vector<double> rate(n, 0.0);
  std::vector<bool> frozen(n, false);
  std::vector<double> remaining = capacities;

  // All unfrozen flows grow at the same additional rate `delta` per round.
  for (std::size_t round = 0; round < n + capacities.size() + 1; ++round) {
    // Smallest step until some unfrozen flow reaches its demand.
    double delta = std::numeric_limits<double>::infinity();
    bool any_unfrozen = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f]) continue;
      any_unfrozen = true;
      delta = std::min(delta, flows[f].demand - rate[f]);
    }
    if (!any_unfrozen) break;

    // Smallest step until some resource saturates.  A resource constrains
    // the uniform growth by remaining / (sum of weights of unfrozen flows).
    std::vector<double> unfrozen_weight(capacities.size(), 0.0);
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f]) continue;
      for (const Flow::Use& use : flows[f].uses) {
        unfrozen_weight[static_cast<std::size_t>(use.resource)] += use.weight;
      }
    }
    for (std::size_t r = 0; r < capacities.size(); ++r) {
      if (unfrozen_weight[r] > 0.0) {
        delta = std::min(delta, remaining[r] / unfrozen_weight[r]);
      }
    }
    if (delta < 0.0) delta = 0.0;

    // Apply the step.
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f]) continue;
      rate[f] += delta;
      for (const Flow::Use& use : flows[f].uses) {
        remaining[static_cast<std::size_t>(use.resource)] -= delta * use.weight;
      }
    }

    // Freeze flows that met their demand or sit on a saturated resource.
    constexpr double kEps = 1e-9;
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f]) continue;
      if (rate[f] + kEps >= flows[f].demand) {
        frozen[f] = true;
        continue;
      }
      for (const Flow::Use& use : flows[f].uses) {
        if (remaining[static_cast<std::size_t>(use.resource)] <= kEps) {
          frozen[f] = true;
          break;
        }
      }
    }
  }
  return rate;
}

}  // namespace hsw::bw
