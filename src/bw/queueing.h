// Event-driven queueing cross-check for the analytic bandwidth model.
//
// The max-min solver (solver.h) is a fluid approximation.  This module
// simulates the same flows discretely: every core keeps `mlp` requests in
// flight; each request visits the resources on its path in order, where a
// resource is a FIFO server with a deterministic per-line service time
// (64 B / capacity), then pays the flow's base latency and retires, letting
// the core issue the next request.  Throughput measured over a window gives
// an independent estimate of each flow's bandwidth — tests assert the two
// models agree, and the validate_bw_model bench prints the comparison.
//
// This is intentionally a different formalism from the solver: agreement is
// evidence the fluid model didn't bake in its own conclusion.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace hsw::bw {

struct QueueFlow {
  // Outstanding requests the issuing core sustains.
  double mlp = 8.0;
  // Unloaded round-trip latency excluding the resource service times (ns).
  double base_latency_ns = 80.0;
  // Resource indices visited, in order.  `weight` multiplies the service
  // time (protocol overhead bytes per payload byte).
  struct Visit {
    int resource = 0;
    double weight = 1.0;
  };
  std::vector<Visit> visits;
};

struct QueueingResult {
  std::vector<double> gbps;      // per flow
  double simulated_ns = 0.0;
  std::uint64_t lines_retired = 0;
};

class QueueingSimulator {
 public:
  // `capacities_gbps[i]` is resource i's line rate; its deterministic
  // service time per 64-B line is 64 / capacity ns.
  explicit QueueingSimulator(std::vector<double> capacities_gbps);

  // Runs until `window_ns` of simulated time passed (after a warmup of
  // window/4) and reports the per-flow throughput.
  QueueingResult run(const std::vector<QueueFlow>& flows, double window_ns);

 private:
  std::vector<double> service_ns_;
};

}  // namespace hsw::bw
