// Bandwidth model: single-stream rates + shared-resource contention.
//
// A stream's standalone rate is limited by the core's memory-level
// parallelism: roughly (outstanding lines x 64 B) / effective latency, capped
// by the data-path width for cache-resident sets.  The effective latency
// comes from the coherence engine, so protocol-mode changes (home snoop's
// higher local-memory latency, COD's lower one) propagate into bandwidth
// exactly as the paper observes.
//
// Concurrent streams then share ring, QPI, bridge, and DRAM resources under
// max-min fairness (solver.h).  Protocol overhead is modelled as *weight*:
// e.g. a source-snoop remote read moves ~2.3 bytes across QPI per payload
// byte (snoop broadcasts + responses), which is why the paper measures only
// 16.8 GB/s of the 38.4 GB/s link in the default mode but 30.6 GB/s with
// Early Snoop disabled.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bw/solver.h"
#include "coh/engine.h"
#include "machine/system.h"

namespace hsw::bw {

enum class LoadWidth { kSse128, kAvx256 };

// Calibration constants of the bandwidth model (paper Figs. 8/9, Tables
// VI-VIII; see DESIGN.md §6).
struct BwParams {
  // Core data-path limits (GB/s) including pipeline efficiency.
  double l1_read_avx = 127.2;
  double l1_read_sse = 77.1;
  double l2_read_avx = 69.1;
  double l2_read_sse = 48.2;
  double l1l2_write_fraction = 0.55;  // store-port width is half the load width

  // Outstanding-line counts (memory-level parallelism).
  double l3_concurrency = 8.7;        // L1-miss fill buffers reaching L3
  // Remote cache-to-cache streams: the prefetcher ramps deeper the longer
  // the latency, so the effective outstanding-line count grows with it:
  // conc = base + slope * latency_ns (12.6 lines at 86 ns, 14.3 at 104 ns).
  double remote_cache_conc_base = 4.2;
  double remote_cache_conc_slope = 0.097;  // lines per ns
  double mem_concurrency_local = 10.45;
  double mem_concurrency_remote = 14.0;  // deeper prefetch across nodes
  // Part of the load-to-use latency that does not occupy the request
  // tracker (return/completion tail): memory streams are limited by tracker
  // occupancy, not full latency.
  double mem_return_overhead = 36.0;
  double l3_per_core_cap = 29.5;      // uncore request-token rate per core
  double l3_write_per_core = 15.0;
  double dram_write_per_core = 7.7;

  // Shared resources.
  double l3_slice_gbps = 24.3;        // ring stop bandwidth per slice
  double l3_write_amplification = 1.75;  // RFO + writeback on the ring
  double dram_efficiency = 0.92;      // scheduling losses on 4 channels
  double dram_efficiency_cod = 0.95;  // 2-channel node schedules better
  double dram_write_amplification = 2.42;
  double qpi_raw_gbps = 38.4;         // per direction (both links)
  double bridge_gbps = 18.8;          // inter-ring queue, cross-node traffic

  // QPI protocol weight = bytes moved per payload byte.
  double qpi_weight_source_snoop = 2.29;  // broadcasts + responses
  double qpi_weight_home_snoop = 1.25;
  double qpi_weight_directory_clean = 1.25;
  double qpi_weight_directory_stale = 2.45;  // stale-dir broadcast per line
  double qpi_weight_per_extra_hop = 0.15;
};

// One core's stream, classified by where its data is serviced.
struct StreamSpec {
  int core = 0;
  bool write = false;
  LoadWidth width = LoadWidth::kAvx256;
  ServiceSource source = ServiceSource::kL1;
  int source_node = 0;      // node that supplies the data
  int home_node = 0;        // home node of the buffer
  double latency_ns = 1.6;  // measured per-line latency of this stream
  // COD only: the stream's lines have snoop-all directory state although no
  // cache holds them (silent evictions) — every re-read broadcasts.
  bool stale_directory = false;
};

// Human-readable names for the shared-resource indices of a capacity
// vector with `capacity_count` entries.  A count matching the model's
// layout (2 x nodes + 2 QPI directions + 2 bridges) gets the semantic
// names — RING_<node>, IMC_<node>, QPI_<socket>, BRIDGE_<socket> — and
// anything else (hand-built solver scenarios) falls back to RES_<i>, so
// per-resource telemetry can always label what it measured.
[[nodiscard]] std::vector<std::string> resource_names(
    std::size_t capacity_count);

class BandwidthModel {
 public:
  explicit BandwidthModel(const System& system, const BwParams& params = {});

  // Standalone rate of one stream (GB/s).
  [[nodiscard]] double single_stream(const StreamSpec& spec) const;
  // Max-min fair rates of concurrent streams (GB/s each).
  [[nodiscard]] std::vector<double> concurrent(
      std::span<const StreamSpec> specs) const;

  [[nodiscard]] const BwParams& params() const { return params_; }

  // The stream's demand (MLP-limited standalone rate) plus the shared
  // resources on its path, as fed to the max-min solver.  Public so the
  // event-driven exec engine simulates the *same* flows over the *same*
  // resources — agreement between the two formalisms is then a statement
  // about contention modelling, not about divergent path decompositions.
  [[nodiscard]] Flow flow_for(const StreamSpec& spec) const;
  // Allocation-free variant: rewrites `flow` in place (the uses vector
  // keeps its capacity across calls), for the exec engine's pooled
  // requests.
  void flow_into(const StreamSpec& spec, Flow& flow) const;
  // Per-resource capacities (GB/s), indexed like Flow::Use::resource.
  [[nodiscard]] const std::vector<double>& capacities() const {
    return capacities_;
  }

 private:
  [[nodiscard]] double demand(const StreamSpec& spec) const;

  // Resource indices.
  [[nodiscard]] int res_l3_ring(int node) const { return node; }
  [[nodiscard]] int res_dram(int node) const { return nodes_ + node; }
  [[nodiscard]] int res_qpi(int to_socket) const { return 2 * nodes_ + to_socket; }
  [[nodiscard]] int res_bridge(int socket) const {
    return 2 * nodes_ + 2 + socket;
  }
  [[nodiscard]] double qpi_weight(const StreamSpec& spec) const;

  const System& system_;
  BwParams params_;
  int nodes_;
  std::vector<double> capacities_;
};

}  // namespace hsw::bw
