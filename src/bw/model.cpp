#include "bw/model.h"

#include <algorithm>
#include <cassert>

#include "bw/solver.h"

namespace hsw::bw {

std::vector<std::string> resource_names(std::size_t capacity_count) {
  std::vector<std::string> names;
  names.reserve(capacity_count);
  // Layout mirror of the BandwidthModel constructor: [0, nodes) ring stops,
  // [nodes, 2*nodes) iMC/DRAM per node, then one QPI direction and one
  // bridge per socket.
  if (capacity_count >= 6 && capacity_count % 2 == 0) {
    const std::size_t nodes = (capacity_count - 4) / 2;
    for (std::size_t n = 0; n < nodes; ++n) {
      names.push_back("RING_" + std::to_string(n));
    }
    for (std::size_t n = 0; n < nodes; ++n) {
      names.push_back("IMC_" + std::to_string(n));
    }
    for (std::size_t s = 0; s < 2; ++s) {
      names.push_back("QPI_" + std::to_string(s));
    }
    for (std::size_t s = 0; s < 2; ++s) {
      names.push_back("BRIDGE_" + std::to_string(s));
    }
    return names;
  }
  for (std::size_t i = 0; i < capacity_count; ++i) {
    names.push_back("RES_" + std::to_string(i));
  }
  return names;
}

BandwidthModel::BandwidthModel(const System& system, const BwParams& params)
    : system_(system), params_(params), nodes_(system.node_count()) {
  const bool cod = system_.topology().cod();
  capacities_.assign(static_cast<std::size_t>(2 * nodes_ + 2 + 2), 0.0);
  for (int n = 0; n < nodes_; ++n) {
    const NumaNode& node = system_.topology().node(n);
    capacities_[static_cast<std::size_t>(res_l3_ring(n))] =
        params_.l3_slice_gbps * static_cast<double>(node.local_slices.size());
    const double channels = static_cast<double>(node.imcs.size()) *
                            system_.config().geometry.channels_per_imc;
    const double eff = cod ? params_.dram_efficiency_cod : params_.dram_efficiency;
    capacities_[static_cast<std::size_t>(res_dram(n))] = channels * 17.064 * eff;
  }
  for (int s = 0; s < 2; ++s) {
    capacities_[static_cast<std::size_t>(res_qpi(s))] = params_.qpi_raw_gbps;
    capacities_[static_cast<std::size_t>(res_bridge(s))] = params_.bridge_gbps;
  }
}

double BandwidthModel::qpi_weight(const StreamSpec& spec) const {
  double weight = 0.0;
  switch (system_.config().snoop_mode) {
    case SnoopMode::kSourceSnoop:
      weight = params_.qpi_weight_source_snoop;
      break;
    case SnoopMode::kHomeSnoop:
      weight = params_.qpi_weight_home_snoop;
      break;
    case SnoopMode::kCod:
      weight = spec.stale_directory ? params_.qpi_weight_directory_stale
                                    : params_.qpi_weight_directory_clean;
      break;
  }
  const int req_node = system_.topology().node_of_core(spec.core);
  const int hops = system_.topology().internode_hops(req_node, spec.source_node);
  if (hops > 1) {
    weight += params_.qpi_weight_per_extra_hop * static_cast<double>(hops - 1);
  }
  return weight;
}

double BandwidthModel::demand(const StreamSpec& spec) const {
  const double write_scale = spec.write ? params_.l1l2_write_fraction : 1.0;
  switch (spec.source) {
    case ServiceSource::kL1:
      return write_scale * (spec.width == LoadWidth::kAvx256
                                ? params_.l1_read_avx
                                : params_.l1_read_sse);
    case ServiceSource::kL2:
      return write_scale * (spec.width == LoadWidth::kAvx256
                                ? params_.l2_read_avx
                                : params_.l2_read_sse);
    case ServiceSource::kL3:
    case ServiceSource::kCoreFwd: {
      if (spec.write) return params_.l3_write_per_core;
      const double mlp = params_.l3_concurrency * 64.0 / spec.latency_ns;
      return std::min(mlp, params_.l3_per_core_cap);
    }
    case ServiceSource::kRemoteFwd: {
      const double conc = params_.remote_cache_conc_base +
                          params_.remote_cache_conc_slope * spec.latency_ns;
      return conc * 64.0 / spec.latency_ns;
    }
    case ServiceSource::kLocalDram:
    case ServiceSource::kRemoteDram: {
      if (spec.write) return params_.dram_write_per_core;
      const int req_node = system_.topology().node_of_core(spec.core);
      const bool remote = req_node != spec.home_node;
      const double conc = remote ? params_.mem_concurrency_remote
                                 : params_.mem_concurrency_local;
      const double occupancy =
          std::max(spec.latency_ns - params_.mem_return_overhead, 10.0);
      return conc * 64.0 / occupancy;
    }
  }
  return 0.0;
}

Flow BandwidthModel::flow_for(const StreamSpec& spec) const {
  Flow flow;
  flow_into(spec, flow);
  return flow;
}

void BandwidthModel::flow_into(const StreamSpec& spec, Flow& flow) const {
  flow.uses.clear();
  flow.demand = demand(spec);

  const SystemTopology& topo = system_.topology();
  const int req_node = topo.node_of_core(spec.core);
  const NumaNode& requester = topo.node(req_node);

  // Core-private levels use no shared resources.
  if (spec.source == ServiceSource::kL1 || spec.source == ServiceSource::kL2) {
    return;
  }

  // Every CA transaction rides the requester node's ring.
  const double ring_weight =
      spec.write ? params_.l3_write_amplification : 1.0;
  flow.uses.push_back({res_l3_ring(req_node), ring_weight});

  const bool from_dram = spec.source == ServiceSource::kLocalDram ||
                         spec.source == ServiceSource::kRemoteDram;
  if (from_dram) {
    const double dram_weight =
        spec.write ? params_.dram_write_amplification : 1.0;
    flow.uses.push_back({res_dram(spec.home_node), dram_weight});
  } else if (spec.source == ServiceSource::kRemoteFwd) {
    // The forwarding node's ring carries the data out of its L3.
    flow.uses.push_back({res_l3_ring(spec.source_node), 1.0});
  }

  // Transport: QPI when crossing sockets, inter-ring bridges for each
  // on-chip cluster crossing.
  const int data_node = from_dram ? spec.home_node : spec.source_node;
  if (data_node != req_node) {
    const NumaNode& source = topo.node(data_node);
    if (source.socket != requester.socket) {
      flow.uses.push_back({res_qpi(requester.socket), qpi_weight(spec)});
      if (source.cluster == 1) flow.uses.push_back({res_bridge(source.socket), 1.0});
      if (requester.cluster == 1) {
        flow.uses.push_back({res_bridge(requester.socket), 1.0});
      }
    } else {
      flow.uses.push_back({res_bridge(requester.socket), 1.0});
    }
  }
}

double BandwidthModel::single_stream(const StreamSpec& spec) const {
  std::vector<StreamSpec> one{spec};
  return concurrent(one).front();
}

std::vector<double> BandwidthModel::concurrent(
    std::span<const StreamSpec> specs) const {
  std::vector<Flow> flows;
  flows.reserve(specs.size());
  for (const StreamSpec& spec : specs) flows.push_back(flow_for(spec));
  return max_min_rates(flows, capacities_);
}

}  // namespace hsw::bw
