// Physical-address to L3-slice (CBo) hash.
//
// Haswell-EP distributes physical addresses over the L3 slices of a node with
// an undocumented hash (paper cites [16, Section 2.3]).  What matters for the
// reproduction is that (a) the mapping is uniform, so ring distances average
// out over a data set, and (b) all cores of a node agree on the responsible
// CA for a line.  We use a Fibonacci-style mixer reduced modulo the node's
// slice count.
#pragma once

#include <cstdint>

#include "mem/line.h"

namespace hsw {

// Mixes the line address into a well-distributed 64-bit value.
constexpr std::uint64_t mix_line(LineAddr line) {
  std::uint64_t x = line * 0x9e3779b97f4a7c15ull;
  x ^= x >> 32;
  x *= 0xd6e8feb86659fd93ull;
  x ^= x >> 32;
  return x;
}

// Index into a node's slice list for `line`; `slice_count` > 0.
constexpr int slice_index(LineAddr line, int slice_count) {
  return static_cast<int>(mix_line(line) % static_cast<std::uint64_t>(slice_count));
}

}  // namespace hsw
