#include "coh/timing.h"

namespace hsw {

TimingParams TimingParams::haswell_ep() { return TimingParams{}; }

}  // namespace hsw
