#include "coh/state.h"

#include <bit>
#include <cassert>

#include "coh/slice_hash.h"

namespace hsw {

MachineState::MachineState(const TopologyConfig& topo_config,
                           const TimingParams& timing_params,
                           const CacheGeometry& geometry_params,
                           const ProtocolFeatures& feature_flags)
    : topo(topo_config),
      timing(timing_params),
      geometry(geometry_params),
      features(feature_flags) {
  const int n_cores = topo.core_count();
  cores.reserve(static_cast<std::size_t>(n_cores));
  for (int c = 0; c < n_cores; ++c) cores.emplace_back(geometry);

  for (int s = 0; s < topo.socket_count(); ++s) {
    const Die& d = topo.die(s);
    auto& slices = l3.emplace_back();
    for (int slice = 0; slice < d.core_count(); ++slice) {
      slices.emplace_back(geometry.l3_slice_bytes, geometry.l3_assoc);
    }
    auto& socket_agents = agents.emplace_back();
    for (int imc = 0; imc < d.imc_count(); ++imc) {
      socket_agents.emplace_back(geometry);
    }
  }

  core_to_ca_hops_.resize(static_cast<std::size_t>(n_cores));
  for (int c = 0; c < n_cores; ++c) {
    core_to_ca_hops_[static_cast<std::size_t>(c)] = topo.mean_core_to_ca_hops(c);
  }
  ca_to_imc_hops_.resize(static_cast<std::size_t>(topo.node_count()));
  for (int n = 0; n < topo.node_count(); ++n) {
    ca_to_imc_hops_[static_cast<std::size_t>(n)] = topo.mean_ca_to_imc_hops(n);
  }
}

int MachineState::slice_for(int node_id, LineAddr line) const {
  const NumaNode& n = topo.node(node_id);
  const int idx = slice_index(line, static_cast<int>(n.local_slices.size()));
  return n.local_slices[static_cast<std::size_t>(idx)];
}

CacheArray& MachineState::l3_slice(int socket, int local_slice) {
  return l3[static_cast<std::size_t>(socket)][static_cast<std::size_t>(local_slice)];
}

MachineState::HomeRef MachineState::home_of(LineAddr line) {
  HomeRef ref;
  ref.node = home_node_of_line(line);
  assert(ref.node < topo.node_count() && "address homed on a non-existent node");
  const NumaNode& n = topo.node(ref.node);
  ref.socket = n.socket;
  // Consecutive lines stripe across all channels of the node (64-B channel
  // interleave), so a streaming access pattern spreads over every channel.
  const auto n_channels =
      static_cast<std::uint64_t>(n.imcs.size()) * geometry.channels_per_imc;
  assert(std::has_single_bit(n_channels));
  const std::uint64_t ch_index = line & (n_channels - 1);
  const auto imc_pos = static_cast<std::size_t>(ch_index / geometry.channels_per_imc);
  ref.imc = n.imcs[imc_pos];
  ref.ha = &agents[static_cast<std::size_t>(ref.socket)][static_cast<std::size_t>(ref.imc)];
  ref.channel = static_cast<int>(ch_index % geometry.channels_per_imc);
  ref.channel_line = line / n_channels;
  return ref;
}

void MachineState::update_structural_gauges(
    metrics::MetricsRegistry& registry) const {
  using metrics::MGauge;
  CacheArray::Census l1;
  CacheArray::Census l2;
  CacheArray::Census l3c;
  for (const CoreCaches& core : cores) {
    l1 += core.l1.census();
    l2 += core.l2.census();
  }
  for (const auto& socket : l3) {
    for (const CacheArray& slice : socket) l3c += slice.census();
  }

  const auto occ = [&](const CacheArray::Census& census, MGauge modified,
                       MGauge exclusive, MGauge shared, MGauge forward,
                       MGauge owned) {
    const auto count = [&](Mesif s) {
      return static_cast<std::int64_t>(
          census.by_state[static_cast<std::size_t>(s)]);
    };
    registry.set_gauge(modified, count(Mesif::kModified));
    registry.set_gauge(exclusive, count(Mesif::kExclusive));
    registry.set_gauge(shared, count(Mesif::kShared));
    registry.set_gauge(forward, count(Mesif::kForward));
    registry.set_gauge(owned, count(Mesif::kOwned));
  };
  occ(l1, MGauge::kL1OccModified, MGauge::kL1OccExclusive, MGauge::kL1OccShared,
      MGauge::kL1OccForward, MGauge::kL1OccOwned);
  occ(l2, MGauge::kL2OccModified, MGauge::kL2OccExclusive, MGauge::kL2OccShared,
      MGauge::kL2OccForward, MGauge::kL2OccOwned);
  occ(l3c, MGauge::kL3OccModified, MGauge::kL3OccExclusive,
      MGauge::kL3OccShared, MGauge::kL3OccForward, MGauge::kL3OccOwned);
  registry.set_gauge(MGauge::kL3CoreValidBits,
                     static_cast<std::int64_t>(l3c.core_valid_bits));

  std::size_t hitme_entries = 0;
  std::size_t directory_tracked = 0;
  for (const auto& socket : agents) {
    for (const HomeAgentState& agent : socket) {
      hitme_entries += agent.hitme.valid_entries();
      directory_tracked += agent.directory.tracked_lines();
    }
  }
  registry.set_gauge(MGauge::kHitmeEntries,
                     static_cast<std::int64_t>(hitme_entries));
  registry.set_gauge(MGauge::kDirectoryTracked,
                     static_cast<std::int64_t>(directory_tracked));
}

void MachineState::drop_all_caches() {
  auto drop = [](CacheArray& array) {
    array.flush([](const CacheEntry&) {});
  };
  for (CoreCaches& core : cores) {
    drop(core.l1);
    drop(core.l2);
  }
  for (auto& socket : l3) {
    for (CacheArray& slice : socket) drop(slice);
  }
}

}  // namespace hsw
