// Coherence transaction engine.
//
// Implements the protocol flows of paper §IV on top of MachineState:
//   * requester-side CA handling (L3 hit paths, core-valid-bit snoops),
//   * source snoop: the requester CA broadcasts snoops on an L3 miss,
//   * home snoop: the home agent snoops after receiving the request,
//   * directory-assisted mode (COD): the 2-bit in-memory directory gates
//     broadcasts — but only after the DRAM read returns it — and the HitME
//     cache short-circuits snoops for clean-shared migratory lines
//     (AllocateShared policy).
//
// Each access returns the composed latency: component costs are summed along
// the serial path and max()-ed across parallel legs (e.g. a DRAM read racing
// the snoop responses the home agent must collect).
//
// The engine is protocol-polymorphic: state transitions and response classes
// come from the ProtocolPolicy bound at construction (coh/protocol.h, chosen
// by ProtocolFeatures::protocol).  MESIF is the default and reproduces the
// original hard-coded flows bit for bit; MESI drops the Forward state, MOESI
// suppresses clean-sharer writebacks via Owned, and Dragon replaces the
// invalidation broadcast with an update broadcast.
#pragma once

#include <cstdint>

#include "coh/protocol.h"
#include "coh/state.h"
#include "obs/line_stats.h"
#include "trace/tracer.h"

namespace hsw {

enum class ServiceSource : std::uint8_t {
  kL1,          // own L1D
  kL2,          // own L2
  kL3,          // a CA in the requester's node (incl. in-node core forwards)
  kCoreFwd,     // dirty data from another core in the requester's node
  kRemoteFwd,   // cache-to-cache forward from another node
  kLocalDram,   // memory of the requester's own node
  kRemoteDram,  // memory of another node
};

[[nodiscard]] const char* to_string(ServiceSource source);

struct AccessResult {
  double ns = 0.0;
  ServiceSource source = ServiceSource::kL1;
  int source_node = 0;  // node that supplied the data
  // Per-component latency breakdown of this access.  nullptr unless a tracer
  // is attached to the engine; points into the tracer and stays valid until
  // its next access.  Serial span costs sum, parallel legs max: the breakdown
  // recomposes to `ns` exactly (see trace/span.h).
  const trace::AccessAttribution* attribution = nullptr;
};

class CoherenceEngine {
 public:
  explicit CoherenceEngine(MachineState& machine)
      : m_(machine), pol_(protocol::policy(machine.features.protocol)) {}

  // A demand load of one cache line by `core`.
  AccessResult read(int core, PhysAddr addr);
  // A store (read-for-ownership if needed); line ends Modified in the core.
  AccessResult write(int core, PhysAddr addr);
  // clflush semantics: the line leaves every cache in the system, dirty data
  // is written back to the home memory, directory returns to remote-invalid.
  double flush_line(PhysAddr addr);

  // Placement helpers used by the benchmark kit -----------------------------
  // Drains `core`'s L1+L2 into its node's L3: dirty lines write back (which
  // clears the core-valid bit), clean lines are dropped *silently* (the
  // core-valid bit stays set — the source of the paper's E-state penalty).
  void evict_core_caches(int core);
  // Evicts every line from a node's L3 slices: dirty lines write back to
  // their home memory; clean lines are dropped silently, which leaves stale
  // snoop-all directory state behind (the paper's Table V effect).
  void flush_node_l3(int node);

  // Attaches a tracer (nullptr detaches).  With a tracer the engine emits a
  // span tree per access naming the protocol components on the critical path;
  // without one the only added cost per flow is a null-pointer check.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] trace::Tracer* tracer() const { return tracer_; }

 private:
  AccessResult read_impl(int core, PhysAddr addr);
  AccessResult write_impl(int core, PhysAddr addr);
  double flush_impl(PhysAddr addr);
  struct Fill {
    double ns = 0.0;             // from the start of the CA transaction
    Mesif core_state = Mesif::kShared;
    Mesif node_state = Mesif::kShared;  // state for the requester node's L3
    ServiceSource source = ServiceSource::kL3;
    int source_node = 0;
  };

  // Requester-node CA transaction (after L1/L2 missed).
  Fill ca_read(int core, LineAddr line);
  Fill ca_write(int core, LineAddr line);
  // Update-based store (Dragon): write-allocates via a read fill if needed,
  // then updates every sharer in place instead of invalidating it.
  Fill ca_update(int core, LineAddr line);
  // Miss at the requester CA: go to the home agent / broadcast.
  Fill home_read(int core, int req_node, LineAddr line);
  // Read-for-ownership through the home agent: fetches data (if needed) and
  // invalidates every other node's copies.
  Fill home_write(int core, int req_node, LineAddr line);
  // Update broadcast through the home agent (Dragon): peers keep their
  // copies demoted to Shared; no DRAM data read is needed.
  Fill home_update(int core, int req_node, LineAddr line);

  // Snoop of one peer node's CA for a read.  Applies state transitions
  // (owner demotes to S, dirty data scheduled for writeback).  Returns
  // whether the peer had a forwardable copy and the peer-side handling time
  // (slice lookup plus any core snoop / dirty-data extraction).
  struct PeerSnoop {
    bool forwarded = false;  // peer supplies the data
    bool had_shared = false; // peer holds a non-forwardable S copy
    bool dirty_forward = false;  // data forwarded without a memory writeback
                                 // (MOESI/Dragon Owned): memory copy stale
    double handling_ns = 0.0;
  };
  PeerSnoop snoop_peer_read(int peer_node, LineAddr line);
  // Invalidating snoop (RFO): removes the peer's copies; dirty data is
  // written back to memory.  Returns handling time.
  double snoop_peer_invalidate(int peer_node, LineAddr line);
  // Update snoop (Dragon): refreshes the peer's copies in place, demoting
  // them to Shared.  Returns handling time; sets `had_copy` when the peer
  // held the line.
  double snoop_peer_update(int peer_node, LineAddr line, bool* had_copy);

  // Snoops a single core's L1/L2 (core-valid bit chase).  If the core holds
  // the line Modified, the copy is demoted to `demote_to` and the L3 entry
  // is refreshed with the dirty data (state -> M).  Returns the extra
  // latency beyond the CBo round trip (data extraction), plus whether dirty
  // data was found and where.
  struct CoreSnoop {
    bool dirty = false;
    double data_ns = 0.0;
  };
  // `op` names the bus-level cause for the flight recorder's transition
  // matrix (kSnoopRead for read snoops, kSnoopUpdate for updates, ...).
  CoreSnoop snoop_core(int global_core, LineAddr line, Mesif demote_to,
                       obs::LineOp op);
  // Removes the line from a core's L1/L2.  Returns true if it was dirty.
  bool invalidate_core(int global_core, LineAddr line, obs::LineOp op);

  // DRAM access for `line` at its home; returns latency and counts the
  // row-buffer outcome.
  double dram_read(MachineState::HomeRef& home);
  void dram_write(MachineState::HomeRef& home);
  // Dirty data leaves a cache for memory (back-invalidation, M-forward
  // writeback, clflush).  Updates the home directory to remote-invalid when
  // `clears_directory` (an explicit writeback tells the HA the remote copy
  // is gone; a silent clean eviction does not).
  void writeback(LineAddr line, bool clears_directory);

  // Fill plumbing -------------------------------------------------------------
  // `op` is the demand operation behind the fill (kLocalRead / kLocalStore).
  void fill_caches(int core, LineAddr line, const Fill& fill, obs::LineOp op);
  void handle_l1_victim(int core, const CacheEntry& victim);
  void handle_l2_victim(int core, const CacheEntry& victim);
  void handle_l3_victim(int socket, int node, const CacheEntry& victim);

  // Timing helpers ------------------------------------------------------------
  // Core -> responsible CA -> back, plus the CBo pipeline (an L3 access).
  [[nodiscard]] double l3_path(int core) const;
  // One-way transport between agents in two nodes (0 within a node).
  [[nodiscard]] double link_ns(int node_a, int node_b) const;
  // Ring segment from a node's CAs to its home agent.
  [[nodiscard]] double ca_to_ha(int node) const;
  // Total request transport from the requester CA to the home agent: the
  // local ring for in-node requests, or link + home-side ring ingress.
  [[nodiscard]] double request_to_ha(int req_node, int home_node) const;

  // Tracing helpers (no-ops when no tracer is attached) ----------------------
  void trace_l3_path(int core);
  // One leaf for the transport between two nodes' agents (kQpi across
  // sockets, kRing inside one).
  void trace_link(const char* name, int from, int to);
  // The request_to_ha() sum as a group span with per-segment children.
  void trace_request_to_ha(int req_node, int home_node);

  // Metrics helpers (no-ops when no registry is attached) --------------------
  // One counter bump behind the null check; keeps call sites one-liners.
  void metric(metrics::MCtr c) {
    if (m_.metrics != nullptr) m_.metrics->bump(c);
  }
  // Flight-recorder helper (no-op when no recorder is attached): one
  // observed state change of a cache entry.  `unit` is the node for kL3
  // and the global core for kL1/kL2.
  void obs_transition(obs::Level level, int unit, LineAddr line, Mesif from,
                      obs::LineOp op, Mesif to) {
    if (m_.linestats != nullptr) {
      m_.linestats->on_transition(level, unit, line, from, op, to);
    }
  }
  // Access epilogue: latency histogram + periodic structural census.
  void metrics_access(double ns);
  // SAD decode + HA ring-stop accounting at the home agent, mirroring the
  // request_to_ha() transport composition.
  void metric_request_to_ha(int req_node, int home_node);
  // One message crossing the socket link (no-op for same-socket pairs).
  void metric_qpi(int from_node, int to_node, std::uint64_t bytes);

  [[nodiscard]] bool directory_on() const { return m_.features.directory; }
  [[nodiscard]] bool hitme_on() const {
    return m_.features.directory && m_.features.hitme;
  }
  [[nodiscard]] bool source_snoop() const {
    return m_.topo.config().snoop_mode == SnoopMode::kSourceSnoop;
  }

  MachineState& m_;
  const protocol::ProtocolPolicy& pol_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace hsw
