// MESIF transition tables.
//
// The coherence engine's hot paths used to classify states with if/switch
// ladders (`state == kExclusive || state == kModified`, a five-way switch in
// the read-snoop handler).  This header freezes those decisions into small
// constexpr arrays indexed by state — one load instead of a compare chain —
// and gives the protocol a single authoritative definition that a different
// protocol (plain MESI, MOESI) could swap out without touching the engine's
// timing or directory plumbing.
//
// The tables encode *state transitions and response classes* only.  Side
// effects that depend on machine context (core-valid chasing, writebacks,
// directory updates) stay in the engine; the tables tell it which class of
// handling a state requires.
//
// Semantics (paper §II-B, Table I):
//   - A read snoop demotes every valid supplier state to Shared; F/E/M
//     respond with data (F is the designated forwarder; E/M own the line),
//     S answers "shared" without data, I misses.
//   - An invalidating snoop (RFO) kills every state.
//   - A store hit completes silently only in E/M (E->M is the silent
//     upgrade the L3 cannot observe); S/F must issue an RFO through the CA.
//   - A load hit never changes the holder's state.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "mem/line.h"

namespace hsw::protocol {

// Protocol-relevant operations observed by a cache holding a line.
enum class Op : std::uint8_t {
  kLocalRead,        // own core load hit
  kLocalStore,       // own core store hit
  kSnoopRead,        // peer read snoop (data request, demote to Shared)
  kSnoopInvalidate,  // peer RFO / invalidating snoop
};

inline constexpr std::size_t kStateCount = 5;
inline constexpr std::size_t kOpCount = 4;

constexpr std::size_t idx(Mesif s) { return static_cast<std::size_t>(s); }
constexpr std::size_t idx(Op op) { return static_cast<std::size_t>(op); }

// next_state[state][op].  Rows follow Mesif declaration order (I,S,F,E,M),
// columns follow Op order (local read, local store, snoop read, snoop inv).
// A kLocalStore column entry equal to the row's state means the store does
// NOT complete silently in that state (ownership must come from the CA);
// the engine consults store_hit_is_silent() before applying it.
inline constexpr std::array<std::array<Mesif, kOpCount>, kStateCount>
    kNextState = {{
        // load               store              snoop-read        snoop-inv
        {Mesif::kInvalid, Mesif::kInvalid, Mesif::kInvalid, Mesif::kInvalid},
        {Mesif::kShared, Mesif::kShared, Mesif::kShared, Mesif::kInvalid},
        {Mesif::kForward, Mesif::kForward, Mesif::kShared, Mesif::kInvalid},
        {Mesif::kExclusive, Mesif::kModified, Mesif::kShared, Mesif::kInvalid},
        {Mesif::kModified, Mesif::kModified, Mesif::kShared, Mesif::kInvalid},
    }};

constexpr Mesif next_state(Mesif s, Op op) { return kNextState[idx(s)][idx(op)]; }

// How a valid entry reacts to a peer read snoop.
struct SnoopReadReaction {
  bool forwards = false;        // supplies the data (F designated, E/M owner)
  bool responds_shared = false; // "I have a clean copy" without data
  bool may_hold_newer = false;  // a core above may hold a silently upgraded
                                // Modified copy: chase the core-valid bit
};

inline constexpr std::array<SnoopReadReaction, kStateCount> kSnoopRead = {{
    /* I */ {false, false, false},
    /* S */ {false, true, false},
    /* F */ {true, false, false},
    /* E */ {true, false, true},
    /* M */ {true, false, true},
}};

constexpr const SnoopReadReaction& snoop_read_reaction(Mesif s) {
  return kSnoopRead[idx(s)];
}

// Store hits complete without a CA transaction only when the node already
// owns the line.  E->M is the silent upgrade; M stays M.
inline constexpr std::array<bool, kStateCount> kStoreHitSilent = {
    false, false, false, true, true};

constexpr bool store_hit_is_silent(Mesif s) { return kStoreHitSilent[idx(s)]; }

// Node-level ownership: states in which the L3 entry guarantees no other
// node holds a copy, so a write needs only in-node invalidations.
inline constexpr std::array<bool, kStateCount> kNodeOwns = {
    false, false, false, true, true};

constexpr bool node_owns(Mesif s) { return kNodeOwns[idx(s)]; }

}  // namespace hsw::protocol
