// Coherence-protocol policy tables (MESIF / MESI / MOESI / Dragon).
//
// The coherence engine's hot paths used to classify states with if/switch
// ladders (`state == kExclusive || state == kModified`, a five-way switch in
// the read-snoop handler).  This header freezes those decisions into small
// constexpr arrays indexed by state — one load instead of a compare chain —
// and, since PR 7, generalises them into a `ProtocolPolicy`: one table set
// per protocol over a shared six-state vocabulary (I/S/F/E/M/O, mem/line.h)
// and a five-op bus/mesh vocabulary covering both invalidate-based actions
// (read snoop, RFO) and the update broadcast Dragon uses instead of
// invalidations.  The engine binds one policy per System and consults it for
// every transition; swapping protocols touches no timing or directory
// plumbing.
//
// The tables encode *state transitions and response classes* only.  Side
// effects that depend on machine context (core-valid chasing, writebacks,
// directory updates, update broadcasts) stay in the engine; the tables tell
// it which class of handling a state requires.
//
// Per-protocol semantics:
//   - MESIF (paper §II-B, Table I): a read snoop demotes every valid
//     supplier state to Shared; F/E/M respond with data (F is the designated
//     forwarder; E/M own the line), S answers "shared" without data, I
//     misses.  A dirty supplier writes memory back when demoting.  An
//     invalidating snoop (RFO) kills every state.  A store hit completes
//     silently only in E/M (E->M is the silent upgrade the L3 cannot
//     observe); S/F must issue an RFO through the CA.  A load hit never
//     changes the holder's state.  Clean shared fills grant Forward.
//   - MESI: MESIF minus the Forward state — clean shared fills grant plain
//     Shared and shared hits never reclaim a forwarder, everything else
//     identical.
//   - MOESI: a dirty supplier demotes to Owned instead of writing memory
//     back; Owned keeps forwarding (staying Owned) and defers its writeback
//     to eviction or flush.  Owned is dirty-shared: stores in O are NOT
//     silent (sharers exist) and O is not node-owning.
//   - Dragon (update-based): stores to shared lines broadcast updates
//     instead of invalidations; peers keep their copies (demoted to Shared)
//     and the writer becomes Owned (sharers remain) or Modified (exclusive).
//     kSnoopUpdate is the op a holder observes when a peer broadcasts such
//     an update.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "mem/line.h"

namespace hsw {

// Selectable coherence protocol, wired through SystemConfig exactly like
// SnoopMode (`--protocol mesif|mesi|moesi|dragon`).
enum class Protocol : std::uint8_t {
  kMesif,
  kMesi,
  kMoesi,
  kDragon,
};

inline constexpr std::size_t kProtocolCount = 4;

constexpr std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::kMesif: return "mesif";
    case Protocol::kMesi: return "mesi";
    case Protocol::kMoesi: return "moesi";
    case Protocol::kDragon: return "dragon";
  }
  return "?";
}

namespace protocol {

// Protocol-relevant operations observed by a cache holding a line.
enum class Op : std::uint8_t {
  kLocalRead,        // own core load hit
  kLocalStore,       // own core store hit
  kSnoopRead,        // peer read snoop (data request, demote the supplier)
  kSnoopInvalidate,  // peer RFO / invalidating snoop
  kSnoopUpdate,      // peer update broadcast (Dragon): keep a Shared copy
};

inline constexpr std::size_t kStateCount = 6;
inline constexpr std::size_t kOpCount = 5;

constexpr std::size_t idx(Mesif s) { return static_cast<std::size_t>(s); }
constexpr std::size_t idx(Op op) { return static_cast<std::size_t>(op); }

// How a valid entry reacts to a peer read snoop.
struct SnoopReadReaction {
  bool forwards = false;        // supplies the data (F designated, E/M/O owner)
  bool responds_shared = false; // "I have a clean copy" without data
  bool may_hold_newer = false;  // a core above may hold a silently upgraded
                                // Modified copy: chase the core-valid bit
};

// One protocol = one set of indexed tables plus the flow-class flags the
// engine needs where transitions alone cannot decide (writeback policy,
// update broadcasts, the state a clean shared fill grants).
//
// Table layout: rows follow Mesif declaration order (I,S,F,E,M,O), columns
// follow Op order.  A kLocalStore column entry equal to the row's state
// means the store does NOT complete silently in that state (ownership must
// come from the CA); the engine consults store_silent() before applying it.
// Rows for states a protocol never produces (O under MESIF/MESI, F outside
// MESIF) are filled with the family-wide conventional transitions so an
// out-of-protocol state still behaves sanely instead of corrupting the
// index.
struct ProtocolPolicy {
  Protocol id = Protocol::kMesif;
  std::string_view name = "mesif";
  // Clean shared fills grant the Forward state and shared hits may reclaim
  // a forwarder through the L3 (MESIF only).
  bool has_forward = false;
  // A dirty supplier demoting on a read snoop writes memory back (MESIF,
  // MESI).  When false (MOESI, Dragon) the supplier keeps the only valid
  // copy in state Owned and the writeback happens on eviction/flush.
  bool writeback_on_read_snoop = false;
  // Stores to shared lines broadcast updates instead of invalidations
  // (Dragon).
  bool update_based = false;
  // State granted by a fill that observed other sharers, and by a shared
  // memory grant: kForward for MESIF, kShared otherwise.
  Mesif clean_shared_grant = Mesif::kShared;

  std::array<std::array<Mesif, kOpCount>, kStateCount> next_state_table{};
  std::array<SnoopReadReaction, kStateCount> snoop_read_table{};
  std::array<bool, kStateCount> store_silent_table{};
  std::array<bool, kStateCount> node_owns_table{};

  constexpr Mesif next(Mesif s, Op op) const {
    return next_state_table[idx(s)][idx(op)];
  }
  constexpr const SnoopReadReaction& snoop_read(Mesif s) const {
    return snoop_read_table[idx(s)];
  }
  // Store hits complete without a CA transaction only when the holder
  // already owns the line exclusively.  E->M is the silent upgrade; M stays
  // M; O always negotiates (invalidate- or update-broadcast) with the CA.
  constexpr bool store_silent(Mesif s) const { return store_silent_table[idx(s)]; }
  // Node-level ownership: states in which the L3 entry guarantees no other
  // node holds a copy, so a write needs only in-node invalidations.
  constexpr bool owns(Mesif s) const { return node_owns_table[idx(s)]; }
};

// Shared row fragments.  All four protocols agree on I/S/F/E behaviour for
// the invalidate ops and on the responder classes; they differ in what a
// dirty supplier becomes on a read snoop (S vs O) and in the flow flags.

inline constexpr ProtocolPolicy kMesifPolicy = {
    Protocol::kMesif,
    "mesif",
    /*has_forward=*/true,
    /*writeback_on_read_snoop=*/true,
    /*update_based=*/false,
    /*clean_shared_grant=*/Mesif::kForward,
    // load               store              snoop-read        snoop-inv
    //                                                         snoop-update
    {{
        {Mesif::kInvalid, Mesif::kInvalid, Mesif::kInvalid, Mesif::kInvalid,
         Mesif::kInvalid},
        {Mesif::kShared, Mesif::kShared, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kForward, Mesif::kForward, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kExclusive, Mesif::kModified, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kModified, Mesif::kModified, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kOwned, Mesif::kOwned, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
    }},
    {{
        /* I */ {false, false, false},
        /* S */ {false, true, false},
        /* F */ {true, false, false},
        /* E */ {true, false, true},
        /* M */ {true, false, true},
        /* O */ {true, false, false},
    }},
    /*store_silent=*/{false, false, false, true, true, false},
    /*node_owns=*/{false, false, false, true, true, false},
};

inline constexpr ProtocolPolicy kMesiPolicy = {
    Protocol::kMesi,
    "mesi",
    /*has_forward=*/false,
    /*writeback_on_read_snoop=*/true,
    /*update_based=*/false,
    /*clean_shared_grant=*/Mesif::kShared,
    kMesifPolicy.next_state_table,
    kMesifPolicy.snoop_read_table,
    kMesifPolicy.store_silent_table,
    kMesifPolicy.node_owns_table,
};

inline constexpr ProtocolPolicy kMoesiPolicy = {
    Protocol::kMoesi,
    "moesi",
    /*has_forward=*/false,
    /*writeback_on_read_snoop=*/false,
    /*update_based=*/false,
    /*clean_shared_grant=*/Mesif::kShared,
    // M demotes to Owned on a read snoop (no writeback); Owned keeps
    // forwarding and stays Owned.
    {{
        {Mesif::kInvalid, Mesif::kInvalid, Mesif::kInvalid, Mesif::kInvalid,
         Mesif::kInvalid},
        {Mesif::kShared, Mesif::kShared, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kForward, Mesif::kForward, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kExclusive, Mesif::kModified, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kModified, Mesif::kModified, Mesif::kOwned, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kOwned, Mesif::kOwned, Mesif::kOwned, Mesif::kInvalid,
         Mesif::kShared},
    }},
    kMesifPolicy.snoop_read_table,
    kMesifPolicy.store_silent_table,
    kMesifPolicy.node_owns_table,
};

inline constexpr ProtocolPolicy kDragonPolicy = {
    Protocol::kDragon,
    "dragon",
    /*has_forward=*/false,
    /*writeback_on_read_snoop=*/false,
    /*update_based=*/true,
    /*clean_shared_grant=*/Mesif::kShared,
    // Dragon's Sc/Sm map onto S/O.  A read snoop demotes M to Owned (the
    // supplier keeps the dirty copy, Sm); an update broadcast demotes the
    // previous owner to Shared — the updating writer is the new owner.
    {{
        {Mesif::kInvalid, Mesif::kInvalid, Mesif::kInvalid, Mesif::kInvalid,
         Mesif::kInvalid},
        {Mesif::kShared, Mesif::kShared, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kForward, Mesif::kForward, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kExclusive, Mesif::kModified, Mesif::kShared, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kModified, Mesif::kModified, Mesif::kOwned, Mesif::kInvalid,
         Mesif::kShared},
        {Mesif::kOwned, Mesif::kOwned, Mesif::kOwned, Mesif::kInvalid,
         Mesif::kShared},
    }},
    kMesifPolicy.snoop_read_table,
    kMesifPolicy.store_silent_table,
    kMesifPolicy.node_owns_table,
};

inline constexpr std::array<const ProtocolPolicy*, kProtocolCount> kPolicies =
    {&kMesifPolicy, &kMesiPolicy, &kMoesiPolicy, &kDragonPolicy};

constexpr const ProtocolPolicy& policy(Protocol p) {
  return *kPolicies[static_cast<std::size_t>(p)];
}

// --- MESIF free functions ---------------------------------------------------
// The original PR 6 API, kept as thin views over the MESIF policy: the
// engine's default path, the protocol unit tests, and the frozen-legacy
// `BM_MesifTransitionTable` benchmark all read these.

inline constexpr auto& kNextState = kMesifPolicy.next_state_table;
inline constexpr auto& kSnoopRead = kMesifPolicy.snoop_read_table;
inline constexpr auto& kStoreHitSilent = kMesifPolicy.store_silent_table;
inline constexpr auto& kNodeOwns = kMesifPolicy.node_owns_table;

constexpr Mesif next_state(Mesif s, Op op) { return kMesifPolicy.next(s, op); }

constexpr const SnoopReadReaction& snoop_read_reaction(Mesif s) {
  return kMesifPolicy.snoop_read(s);
}

constexpr bool store_hit_is_silent(Mesif s) {
  return kMesifPolicy.store_silent(s);
}

constexpr bool node_owns(Mesif s) { return kMesifPolicy.owns(s); }

}  // namespace protocol
}  // namespace hsw
