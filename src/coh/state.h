// Aggregate mutable state of the simulated machine.
//
// Ownership layout mirrors the hardware: every core owns a private L1D and
// L2; every socket owns one L3 tag array per slice (the CBo/CA co-located
// with each core); every memory controller hosts a home agent with its DRAM
// channels, the in-memory directory for the lines it is home to, and the
// HitME directory cache.  The coherence engine (engine.h) is the only writer.
#pragma once

#include <cstdint>
#include <vector>

#include "coh/hitme.h"
#include "coh/protocol.h"
#include "coh/timing.h"
#include "mem/address.h"
#include "mem/cache_array.h"
#include "mem/dram.h"
#include "metrics/registry.h"
#include "sim/counters.h"
#include "topo/topology.h"

namespace hsw::obs {
class LineStatsRecorder;
}  // namespace hsw::obs

namespace hsw {

struct CacheGeometry {
  std::uint64_t l1_bytes = 32 * 1024;
  unsigned l1_assoc = 8;
  std::uint64_t l2_bytes = 256 * 1024;
  unsigned l2_assoc = 8;
  std::uint64_t l3_slice_bytes = 2560 * 1024;  // 2.5 MiB per slice
  unsigned l3_assoc = 20;
  unsigned channels_per_imc = 2;
  DramGeometry dram;
  HitmeConfig hitme;
};

// Protocol feature switches.  The defaults follow the BIOS semantics the
// paper describes; ablation benches override individual flags.
struct ProtocolFeatures {
  // In-memory 2-bit directory consulted by the home agent.  The paper infers
  // it is off in both 2-socket non-COD modes and on in COD.
  bool directory = false;
  // HitME directory cache (requires directory).
  bool hitme = false;
  // Core-valid bits in the L3 (the E-state snoop penalty).  Always on in
  // real hardware; exposed for the ablation study.
  bool core_valid_bits = true;
  // Coherence protocol the engine runs (coh/protocol.h).  Orthogonal to the
  // snoop mode: every (protocol x snoop-config) cell is a valid machine.
  Protocol protocol = Protocol::kMesif;

  static ProtocolFeatures for_mode(SnoopMode mode) {
    ProtocolFeatures f;
    f.directory = mode == SnoopMode::kCod;
    f.hitme = mode == SnoopMode::kCod;
    return f;
  }
};

struct CoreCaches {
  CacheArray l1;
  CacheArray l2;

  CoreCaches(const CacheGeometry& g)
      : l1(g.l1_bytes, g.l1_assoc), l2(g.l2_bytes, g.l2_assoc) {}
};

struct HomeAgentState {
  DirectoryStore directory;
  HitmeCache hitme;
  std::vector<DramChannel> channels;

  HomeAgentState(const CacheGeometry& g) : hitme(g.hitme) {
    for (unsigned c = 0; c < g.channels_per_imc; ++c) {
      channels.emplace_back(g.dram);
    }
  }
};

class MachineState {
 public:
  MachineState(const TopologyConfig& topo_config, const TimingParams& timing,
               const CacheGeometry& geometry, const ProtocolFeatures& features);

  SystemTopology topo;
  TimingParams timing;
  CacheGeometry geometry;
  ProtocolFeatures features;

  std::vector<CoreCaches> cores;                    // [global core]
  std::vector<std::vector<CacheArray>> l3;          // [socket][local slice]
  std::vector<std::vector<HomeAgentState>> agents;  // [socket][local imc]
  AddressSpace address_space;
  CounterSet counters;
  // Uncore-PMU-style metrics registry (nullptr = detached; the engine's
  // instrumentation sites then cost one null-pointer test, same contract
  // as the tracer).  Attached via System::attach_metrics.
  metrics::MetricsRegistry* metrics = nullptr;
  // Per-line coherence flight recorder (nullptr = detached, same one-branch
  // contract).  Attached via System::attach_linestats.
  obs::LineStatsRecorder* linestats = nullptr;

  // --- lookups --------------------------------------------------------------
  // Local slice id of the CA responsible for `line` within `node`.
  [[nodiscard]] int slice_for(int node, LineAddr line) const;
  CacheArray& l3_slice(int socket, int local_slice);
  // Home agent (imc index within the home node) for `line`.
  struct HomeRef {
    int node;
    int socket;
    int imc;           // local imc id on the socket
    HomeAgentState* ha;
    int channel;       // channel index within the imc
    std::uint64_t channel_line;  // line index within that channel
  };
  [[nodiscard]] HomeRef home_of(LineAddr line);

  // Machine-wide flat channel index (socket-major, then imc, then channel)
  // for the per-channel metric families.
  [[nodiscard]] std::size_t channel_index(const HomeRef& home) const {
    const std::size_t imcs = agents.empty() ? 0 : agents[0].size();
    return (static_cast<std::size_t>(home.socket) * imcs +
            static_cast<std::size_t>(home.imc)) *
               geometry.channels_per_imc +
           static_cast<std::size_t>(home.channel);
  }
  [[nodiscard]] std::size_t channel_count() const {
    const std::size_t imcs = agents.empty() ? 0 : agents[0].size();
    return agents.size() * imcs * geometry.channels_per_imc;
  }

  // Runs one structural census (every cache array's valid-way bitmask, the
  // HitME caches, the directories) and refreshes the registry's occupancy
  // gauges.  Called by the engine at sampling ticks and at detach.
  void update_structural_gauges(metrics::MetricsRegistry& registry) const;

  // Precomputed mean ring distances (hops), used by the timing composition.
  [[nodiscard]] double core_to_ca_hops(int global_core) const {
    return core_to_ca_hops_[static_cast<std::size_t>(global_core)];
  }
  [[nodiscard]] double ca_to_imc_hops(int node) const {
    return ca_to_imc_hops_[static_cast<std::size_t>(node)];
  }

  // Removes every cached copy everywhere without touching directory state
  // for clean lines (used between experiments; mirrors a quiescent machine).
  void drop_all_caches();

 private:
  std::vector<double> core_to_ca_hops_;
  std::vector<double> ca_to_imc_hops_;
};

}  // namespace hsw
