// Timing parameters of the memory subsystem.
//
// Every latency the simulator reports is *composed* from these constants by
// the transaction engine (sum along the protocol path, max across parallel
// legs such as a DRAM read racing a snoop round-trip).  The constants are
// calibrated so the composed values land on the paper's measurements for the
// 2.5 GHz Xeon E5-2680 v3 test system (Figures 4-7, Tables III-V); the
// calibration is checked by tests/machine/calibration_test.cpp.
//
// Units: nanoseconds (1 core cycle @2.5 GHz = 0.4 ns).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace hsw {

struct TimingParams {
  // --- core-local hierarchy -------------------------------------------------
  double l1_hit = 1.6;   // 4 cycles load-to-use (paper §VI-A)
  double l2_hit = 4.8;   // 12 cycles
  // Fixed part of an L3 access (L2 miss handling, CBo tag lookup, data
  // return) excluding the ring traversal, which is distance-dependent.
  double l3_base = 9.26;
  // One ring hop (CBo-to-CBo segment, includes arbitration).
  double ring_hop = 1.86;

  // --- core snoops (CBo -> core -> CBo) ------------------------------------
  // Round trip for a CBo snooping a core in the same node (tag check in the
  // core's L1/L2, response back).  The paper's E-state penalty: 44.4 - 21.2.
  double core_snoop_local = 23.2;
  // Core snoop issued by a CBo on behalf of an external (QPI / other-node)
  // request; partially overlapped with packet processing: 104 - 86.
  double core_snoop_external = 18.0;
  // Extra time to move dirty data out of the owning core's L1 / L2
  // (53 = 21.2 + 23.2 + 8.6 and 49 = 21.2 + 23.2 + 4.6).
  double core_data_l1 = 8.6;
  double core_data_l2 = 4.6;

  // --- on-die agents ---------------------------------------------------------
  // CA -> HA handoff excluding ring distance (queueing, HA ingress).
  double ca_to_ha_fixed = 4.0;
  // HA request processing (conflict checks, tracker allocation).
  double ha_processing = 6.0;
  // Completion + data return from the HA to the requesting core
  // (memory-served data).
  double response_return = 14.0;
  // Data return tail for direct cache-to-cache forwards (no HA completion
  // on the critical path).
  double cache_fwd_return = 6.0;
  // Peer-CA slice lookup when handling an external snoop.
  double snoop_ca_lookup = 8.8;
  // HA fast path when the directory allows serving without waiting for any
  // snoop response (no tracker dependency on snoop completion).
  double ha_bypass_savings = 6.4;

  // --- DRAM ------------------------------------------------------------------
  double dram_page_hit = 33.0;       // CAS only
  double dram_page_empty = 41.0;     // ACT + CAS
  double dram_page_conflict = 45.0;  // PRE + ACT + CAS
  // Directory update write scheduling overhead (in-memory directory).
  double dir_update = 2.0;

  // --- cross-socket / cross-cluster -----------------------------------------
  // One-way QPI traversal: local ring egress + link + remote ring ingress.
  double qpi_oneway = 25.0;
  // One-way crossing between the two on-die clusters in COD mode (buffered
  // queue + peer-ring segment), beyond plain ring hops.
  double cluster_oneway = 3.2;

  // --- COD directory machinery ----------------------------------------------
  double hitme_lookup = 1.0;   // directory-cache probe at the HA
  // HA snoop broadcast fan-out cost per peer node beyond the first (pipelined).
  double broadcast_fanout = 4.0;
  // Serialized snoop-response collection at the HA, per peer response
  // (directory mode only).
  double broadcast_collect = 4.0;
  // Completion-ordering overhead when a broadcast makes a *third* node
  // forward the data (requester != home != forwarder): the HA must observe
  // the snoop response and complete the transaction (paper §IX: "complex
  // transactions ... that involve three nodes ... severe degradations").
  double three_node_penalty = 20.0;

  // The nominal clock for cycle conversion.
  double core_ghz = 2.5;

  [[nodiscard]] double cycles(double ns) const { return ns * core_ghz; }

  // The paper's test system (2x Xeon E5-2680 v3 class, DDR4-2133).
  static TimingParams haswell_ep();
};

// Visits every timing constant as (name, reference-to-field).  `Params` may
// be const or mutable, so the same visitor serves both the configuration
// dump (table2 / golden CSVs) and the perturbation sweep in
// tests/check/timing_sensitivity_test.cpp.  New fields must be added here —
// the sensitivity test counts them against sizeof(TimingParams).
template <typename Params, typename Fn>
void for_each_timing_field(Params& t, Fn&& fn) {
  fn("l1_hit", t.l1_hit);
  fn("l2_hit", t.l2_hit);
  fn("l3_base", t.l3_base);
  fn("ring_hop", t.ring_hop);
  fn("core_snoop_local", t.core_snoop_local);
  fn("core_snoop_external", t.core_snoop_external);
  fn("core_data_l1", t.core_data_l1);
  fn("core_data_l2", t.core_data_l2);
  fn("ca_to_ha_fixed", t.ca_to_ha_fixed);
  fn("ha_processing", t.ha_processing);
  fn("response_return", t.response_return);
  fn("cache_fwd_return", t.cache_fwd_return);
  fn("snoop_ca_lookup", t.snoop_ca_lookup);
  fn("ha_bypass_savings", t.ha_bypass_savings);
  fn("dram_page_hit", t.dram_page_hit);
  fn("dram_page_empty", t.dram_page_empty);
  fn("dram_page_conflict", t.dram_page_conflict);
  fn("dir_update", t.dir_update);
  fn("qpi_oneway", t.qpi_oneway);
  fn("cluster_oneway", t.cluster_oneway);
  fn("hitme_lookup", t.hitme_lookup);
  fn("broadcast_fanout", t.broadcast_fanout);
  fn("broadcast_collect", t.broadcast_collect);
  fn("three_node_penalty", t.three_node_penalty);
  fn("core_ghz", t.core_ghz);
}

// Stable 64-bit FNV-1a hash over every timing constant (round-trip-exact
// %.17g text).  Stamped into metrics run reports so two reports can only
// compare clean when they came from identical timing calibrations.  The
// optional `protocol` tag is mixed in as well: two runs that compose the
// same constants under different coherence-protocol families produce
// different event mixes, so their reports must not fingerprint-match.
[[nodiscard]] inline std::string timing_fingerprint(
    const TimingParams& t, std::string_view protocol = {}) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&](const char* data, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= 0x100000001b3ull;
    }
  };
  for_each_timing_field(t, [&](const char* name, double value) {
    char buf[64];
    const int n = std::snprintf(buf, sizeof buf, "%s=%.17g;", name, value);
    mix(buf, static_cast<std::size_t>(n));
  });
  if (!protocol.empty()) {
    mix("protocol=", 9);
    mix(protocol.data(), protocol.size());
    mix(";", 1);
  }
  char hex[32];
  const int n = std::snprintf(hex, sizeof hex, "%016llx",
                              static_cast<unsigned long long>(h));
  return std::string(hex, static_cast<std::size_t>(n));
}

}  // namespace hsw
