// The "HitME" directory cache (Moga et al., implemented in Haswell-EP).
//
// A tiny (14 KiB per home agent) cache of 8-bit node-presence vectors for
// *migratory* lines — lines that have been forwarded between caching agents
// in different NUMA nodes.  The AllocateShared policy (paper §VI-C concludes
// it is what Haswell implements) allocates an entry whenever a line is handed
// to a remote node in Forward state; the in-memory directory is then set to
// snoop-all, while the HitME entry remembers that the copies are clean and
// lets the HA forward the valid memory copy without waiting for snoops.
#pragma once

#include <cstdint>
#include <optional>

#include "mem/cache_array.h"
#include "mem/line.h"

namespace hsw {

struct HitmeConfig {
  // 14 KiB / ~3.5 B per entry (tag + presence + valid) = 4096 entries.
  unsigned entries = 4096;
  unsigned associativity = 8;
};

class HitmeCache {
 public:
  explicit HitmeCache(const HitmeConfig& config = {});

  struct Entry {
    std::uint8_t presence = 0;  // bit i => node i has a copy
  };

  // Probe; refreshes recency on hit.
  [[nodiscard]] std::optional<Entry> lookup(LineAddr line);
  // Recency-neutral probe for inspection (tests, differential checker).
  [[nodiscard]] std::optional<Entry> peek(LineAddr line) const;
  [[nodiscard]] bool contains(LineAddr line) const { return array_.contains(line); }

  // Allocates or updates an entry.  Returns true if an existing (different)
  // line was evicted to make room.
  bool put(LineAddr line, std::uint8_t presence);
  void erase(LineAddr line);
  void clear();

  [[nodiscard]] std::size_t valid_entries() const { return array_.valid_count(); }
  [[nodiscard]] std::uint64_t capacity_entries() const {
    return array_.capacity_bytes() / kLineSize;
  }

 private:
  CacheArray array_;
};

}  // namespace hsw
