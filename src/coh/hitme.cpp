#include "coh/hitme.h"

namespace hsw {

HitmeCache::HitmeCache(const HitmeConfig& config)
    // CacheArray measures capacity in 64-B lines; we only use its tag + LRU
    // machinery, so "capacity" here is entries * kLineSize.
    : array_(static_cast<std::uint64_t>(config.entries) * kLineSize,
             config.associativity) {}

std::optional<HitmeCache::Entry> HitmeCache::lookup(LineAddr line) {
  const CacheArray::Ref entry = array_.lookup(line);
  if (!entry) return std::nullopt;
  return Entry{entry.payload()};
}

std::optional<HitmeCache::Entry> HitmeCache::peek(LineAddr line) const {
  const std::optional<CacheEntry> entry = array_.peek(line);
  if (!entry) return std::nullopt;
  return Entry{entry->payload};
}

bool HitmeCache::put(LineAddr line, std::uint8_t presence) {
  if (const CacheArray::Ref existing = array_.lookup(line)) {
    existing.payload() = presence;
    return false;
  }
  auto result = array_.insert(line, Mesif::kShared);
  result.entry.payload() = presence;
  return result.victim.has_value();
}

void HitmeCache::erase(LineAddr line) { array_.erase(line); }

void HitmeCache::clear() {
  array_.flush([](const CacheEntry&) {});
}

}  // namespace hsw
