#include "coh/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>
#include <vector>

#include "coh/protocol.h"
#include "coh/slice_hash.h"
#include "mem/address.h"

namespace hsw {

namespace {
constexpr std::uint32_t bit_of(int socket_local_core) {
  return 1u << static_cast<unsigned>(socket_local_core);
}

constexpr const char* kNodeName[kMaxNodes] = {"node0", "node1", "node2",
                                              "node3", "node4", "node5",
                                              "node6", "node7"};

using TComp = trace::Component;
using TJoin = trace::Tracer::Join;
using MC = metrics::MCtr;
}  // namespace

const char* to_string(ServiceSource source) {
  switch (source) {
    case ServiceSource::kL1: return "L1";
    case ServiceSource::kL2: return "L2";
    case ServiceSource::kL3: return "L3";
    case ServiceSource::kCoreFwd: return "core-forward";
    case ServiceSource::kRemoteFwd: return "remote-forward";
    case ServiceSource::kLocalDram: return "local DRAM";
    case ServiceSource::kRemoteDram: return "remote DRAM";
  }
  return "?";
}

// --- timing helpers ----------------------------------------------------------

double CoherenceEngine::l3_path(int core) const {
  return m_.timing.l3_base +
         2.0 * m_.core_to_ca_hops(core) * m_.timing.ring_hop;
}

double CoherenceEngine::link_ns(int node_a, int node_b) const {
  if (node_a == node_b) return 0.0;
  const NumaNode& a = m_.topo.node(node_a);
  const NumaNode& b = m_.topo.node(node_b);
  if (a.socket == b.socket) return m_.timing.cluster_oneway;
  double ns = m_.timing.qpi_oneway;
  if (a.cluster == 1) ns += m_.timing.cluster_oneway;
  if (b.cluster == 1) ns += m_.timing.cluster_oneway;
  return ns;
}

double CoherenceEngine::ca_to_ha(int node) const {
  return m_.ca_to_imc_hops(node) * m_.timing.ring_hop;
}

double CoherenceEngine::request_to_ha(int req_node, int home_node) const {
  if (req_node == home_node) return ca_to_ha(home_node);
  if (!m_.topo.crosses_qpi(req_node, home_node)) {
    // Same die: the bridge crossing is in link_ns(); ride the peer ring to
    // the home agent.
    return link_ns(req_node, home_node) + ca_to_ha(home_node);
  }
  return link_ns(req_node, home_node) +
         m_.topo.mean_qpi_to_imc_hops(home_node) * m_.timing.ring_hop;
}

// --- tracing helpers ---------------------------------------------------------
// Every emitted leaf carries the exact double the surrounding arithmetic
// adds, and emissions follow the order of the additions, so folding the span
// tree (trace/span.h) replays the engine's own FP operation sequence and
// recomposes each access's ns bit-for-bit.

void CoherenceEngine::trace_l3_path(int core) {
  // CBo / ring utilization metrics ride the same call sites as the trace
  // (every L3-path transaction passes through here exactly once).
  if (metrics::MetricsRegistry* const mm = m_.metrics) {
    mm->meter(metrics::MMeter::kRingHops, 2.0 * m_.core_to_ca_hops(core));
    mm->bump_family(metrics::MFamily::kRingStopCbo,
                    static_cast<std::size_t>(m_.topo.node_of_core(core)));
  }
  if (tracer_ == nullptr) return;
  tracer_->leaf(TComp::kCbo, "cbo_pipeline", m_.timing.l3_base);
  tracer_->leaf(TComp::kRing, "ring_round_trip",
                2.0 * m_.core_to_ca_hops(core) * m_.timing.ring_hop);
}

void CoherenceEngine::trace_link(const char* name, int from, int to) {
  if (tracer_ == nullptr) return;
  const bool qpi = from != to && m_.topo.crosses_qpi(from, to);
  tracer_->leaf(qpi ? TComp::kQpi : TComp::kRing, name, link_ns(from, to));
}

void CoherenceEngine::trace_request_to_ha(int req_node, int home_node) {
  if (tracer_ == nullptr) return;
  tracer_->open_group(TComp::kRing, "request_to_ha");
  if (req_node == home_node) {
    tracer_->leaf(TComp::kRing, "ca_to_ha_ring", ca_to_ha(home_node));
  } else if (!m_.topo.crosses_qpi(req_node, home_node)) {
    trace_link("cluster_link", req_node, home_node);
    tracer_->leaf(TComp::kRing, "ca_to_ha_ring", ca_to_ha(home_node));
  } else {
    trace_link("qpi_link", req_node, home_node);
    tracer_->leaf(TComp::kRing, "qpi_to_imc_ring",
                  m_.topo.mean_qpi_to_imc_hops(home_node) * m_.timing.ring_hop);
  }
  tracer_->close_group(request_to_ha(req_node, home_node));
}

// --- metrics helpers ---------------------------------------------------------
// The uncore-PMU counterpart of the tracing helpers above: each site costs
// one null-pointer test when no registry is attached (System::attach_metrics).

void CoherenceEngine::metrics_access(double ns) {
  metrics::MetricsRegistry& mm = *m_.metrics;
  mm.observe(metrics::MHist::kAccessNs, ns);
  if (mm.access_tick()) {
    m_.update_structural_gauges(mm);
    mm.take_sample();
  }
}

void CoherenceEngine::metric_request_to_ha(int req_node, int home_node) {
  metrics::MetricsRegistry* const mm = m_.metrics;
  if (mm == nullptr) return;
  mm->bump(req_node == home_node ? MC::kSadLocalHome : MC::kSadRemoteHome);
  mm->bump_family(metrics::MFamily::kRingStopHa,
                  static_cast<std::size_t>(home_node));
  if (req_node == home_node || !m_.topo.crosses_qpi(req_node, home_node)) {
    mm->meter(metrics::MMeter::kRingHops, m_.ca_to_imc_hops(home_node));
  } else {
    mm->meter(metrics::MMeter::kRingHops,
              m_.topo.mean_qpi_to_imc_hops(home_node));
    metric_qpi(req_node, home_node, metrics::kQpiHeaderBytes);
  }
}

void CoherenceEngine::metric_qpi(int from_node, int to_node,
                                 std::uint64_t bytes) {
  metrics::MetricsRegistry* const mm = m_.metrics;
  if (mm == nullptr || from_node == to_node ||
      !m_.topo.crosses_qpi(from_node, to_node)) {
    return;
  }
  int a = m_.topo.node(from_node).socket;
  int b = m_.topo.node(to_node).socket;
  if (a > b) std::swap(a, b);
  // Upper-triangle socket-pair index: one logical link per socket pair.
  const int sockets = m_.topo.socket_count();
  const auto link = static_cast<std::size_t>(a * (2 * sockets - a - 1) / 2 +
                                             (b - a - 1));
  mm->bump_family(metrics::MFamily::kQpiLinkCrossings, link);
  mm->bump_family(metrics::MFamily::kQpiLinkBytes, link, bytes);
}

// --- DRAM --------------------------------------------------------------------

double CoherenceEngine::dram_read(MachineState::HomeRef& home) {
  m_.counters.bump(Ctr::kDramReads);
  auto& channel = home.ha->channels[static_cast<std::size_t>(home.channel)];
  double ns = m_.timing.dram_page_conflict;
  const char* outcome = "dram_page_conflict";
  const RowBufferOutcome rb = channel.access(home.channel_line);
  switch (rb) {
    case RowBufferOutcome::kHit:
      m_.counters.bump(Ctr::kDramPageHit);
      ns = m_.timing.dram_page_hit;
      outcome = "dram_page_hit";
      break;
    case RowBufferOutcome::kEmpty:
      m_.counters.bump(Ctr::kDramPageMiss);
      ns = m_.timing.dram_page_empty;
      outcome = "dram_page_empty";
      break;
    case RowBufferOutcome::kConflict:
      m_.counters.bump(Ctr::kDramPageMiss);
      break;
  }
  if (metrics::MetricsRegistry* const mm = m_.metrics) {
    constexpr MC kPageCtr[] = {MC::kImcPageHit, MC::kImcPageEmpty,
                               MC::kImcPageConflict};
    mm->bump(kPageCtr[static_cast<std::size_t>(rb)]);
    mm->bump_family(metrics::MFamily::kImcChannelReadBytes,
                    m_.channel_index(home), kLineSize);
  }
  if (tracer_ != nullptr) tracer_->leaf(TComp::kDram, outcome, ns);
  return ns;
}

void CoherenceEngine::dram_write(MachineState::HomeRef& home) {
  m_.counters.bump(Ctr::kDramWrites);
  auto& channel = home.ha->channels[static_cast<std::size_t>(home.channel)];
  (void)channel.access(home.channel_line);
  if (m_.metrics != nullptr) {
    m_.metrics->bump_family(metrics::MFamily::kImcChannelWriteBytes,
                            m_.channel_index(home), kLineSize);
  }
}

void CoherenceEngine::writeback(LineAddr line, bool clears_directory) {
  // Off the requester's critical path: a zero-cost marker in the trace.
  if (tracer_ != nullptr) tracer_->leaf(TComp::kDram, "writeback", 0.0);
  auto home = m_.home_of(line);
  dram_write(home);
  m_.counters.bump(Ctr::kL3WritebacksToMem);
  if (directory_on() && clears_directory) {
    if (home.ha->directory.set(line, DirState::kRemoteInvalid)) {
      m_.counters.bump(Ctr::kDirectoryUpdates);
      metric(MC::kHaDirectoryUpdate);
    }
  }
}

// --- core snoops ---------------------------------------------------------------

CoherenceEngine::CoreSnoop CoherenceEngine::snoop_core(int global_core,
                                                       LineAddr line,
                                                       Mesif demote_to,
                                                       obs::LineOp op) {
  m_.counters.bump(Ctr::kCoreSnoops);
  CoreCaches& cc = m_.cores[static_cast<std::size_t>(global_core)];
  CoreSnoop result;
  // Both levels must be demoted: a store fill leaves the line in L1 *and*
  // L2, and a snoop that only downgraded one of them would leave a stale
  // Modified copy behind.
  auto handle = [&](obs::Level level, CacheArray& cache, double data_ns) {
    const CacheArray::Ref entry = cache.lookup(line, /*touch=*/false);
    if (!entry) return false;
    if (is_dirty(entry.state()) && !result.dirty) {
      result.dirty = true;
      result.data_ns = data_ns;
    }
    obs_transition(level, global_core, line, entry.state(), op, demote_to);
    if (demote_to == Mesif::kInvalid) {
      cache.erase(line);
    } else {
      entry.state() = demote_to;
    }
    return true;
  };
  handle(obs::Level::kL1, cc.l1, m_.timing.core_data_l1);
  handle(obs::Level::kL2, cc.l2, m_.timing.core_data_l2);
  return result;  // not found anywhere: silently evicted, clean, no data
}

bool CoherenceEngine::invalidate_core(int global_core, LineAddr line,
                                      obs::LineOp op) {
  CoreCaches& cc = m_.cores[static_cast<std::size_t>(global_core)];
  bool dirty = false;
  if (auto prior = cc.l1.erase(line)) {
    dirty |= is_dirty(prior->state);
    obs_transition(obs::Level::kL1, global_core, line, prior->state, op,
                   Mesif::kInvalid);
  }
  if (auto prior = cc.l2.erase(line)) {
    dirty |= is_dirty(prior->state);
    obs_transition(obs::Level::kL2, global_core, line, prior->state, op,
                   Mesif::kInvalid);
  }
  return dirty;
}

// --- peer CA snoops ------------------------------------------------------------
// Callers wrap each call in an open_group/close_group pair; the leaves
// emitted here are the group's children and sum to handling_ns exactly.

CoherenceEngine::PeerSnoop CoherenceEngine::snoop_peer_read(int peer_node,
                                                            LineAddr line) {
  m_.counters.bump(Ctr::kSnoopsSent);
  if (m_.metrics != nullptr) {
    m_.metrics->bump_family(metrics::MFamily::kRingStopCbo,
                            static_cast<std::size_t>(peer_node));
  }
  const NumaNode& node = m_.topo.node(peer_node);
  const int slice = m_.slice_for(peer_node, line);
  CacheArray& l3 = m_.l3_slice(node.socket, slice);

  PeerSnoop result;
  result.handling_ns = m_.timing.snoop_ca_lookup;
  if (tracer_ != nullptr) {
    tracer_->leaf(TComp::kCbo, "snoop_ca_lookup", m_.timing.snoop_ca_lookup);
  }
  const CacheArray::Ref entry = l3.lookup(line, /*touch=*/false);
  if (!entry) return result;

  const Mesif found = entry.state();
  const protocol::SnoopReadReaction& rx = pol_.snoop_read(found);
  result.had_shared = rx.responds_shared;
  if (!rx.forwards) return result;  // Shared answers without data; I misses.

  if (rx.may_hold_newer) {
    const std::uint32_t cv = entry.core_valid();
    const bool multi = std::popcount(cv) > 1;
    if (m_.features.core_valid_bits && cv != 0 && !multi) {
      // Exactly one core may hold a newer copy: chase the core-valid bit.
      const int owner_local = std::countr_zero(cv);
      const int owner = m_.topo.global_core(node.socket, owner_local);
      result.handling_ns += m_.timing.core_snoop_external;
      if (tracer_ != nullptr) {
        tracer_->leaf(TComp::kCoreSnoop, "core_valid_snoop",
                      m_.timing.core_snoop_external);
      }
      CoreSnoop cs = snoop_core(owner, line, Mesif::kShared,
                                obs::LineOp::kSnoopRead);
      if (cs.dirty) {
        result.handling_ns += cs.data_ns;
        if (tracer_ != nullptr) {
          tracer_->leaf(TComp::kCore, "core_data_extract", cs.data_ns);
        }
        entry.state() = Mesif::kModified;  // refreshed with the dirty data
      }
    }
  }
  // The peer's copy was possibly dirty.  Under a writeback-on-demote policy
  // (MESIF/MESI) forwarding a Modified line writes it back to the home
  // memory before the demotion to Shared; under MOESI/Dragon the supplier
  // keeps the only valid copy in Owned and the memory copy goes stale.
  if (is_dirty(entry.state())) {
    if (pol_.writeback_on_read_snoop) {
      writeback(line, /*clears_directory=*/false);
    } else {
      result.dirty_forward = true;
    }
  }
  entry.state() = pol_.next(entry.state(), protocol::Op::kSnoopRead);
  // One transition for the whole snoop: the state the snoop found (before
  // any core-valid refresh) to the state it left behind.
  obs_transition(obs::Level::kL3, peer_node, line, found,
                 obs::LineOp::kSnoopRead, entry.state());
  result.forwarded = true;
  return result;
}

double CoherenceEngine::snoop_peer_invalidate(int peer_node, LineAddr line) {
  m_.counters.bump(Ctr::kSnoopsSent);
  if (m_.metrics != nullptr) {
    m_.metrics->bump_family(metrics::MFamily::kRingStopCbo,
                            static_cast<std::size_t>(peer_node));
  }
  const NumaNode& node = m_.topo.node(peer_node);
  const int slice = m_.slice_for(peer_node, line);
  CacheArray& l3 = m_.l3_slice(node.socket, slice);

  double handling = m_.timing.snoop_ca_lookup;
  if (tracer_ != nullptr) {
    tracer_->leaf(TComp::kCbo, "snoop_ca_lookup", m_.timing.snoop_ca_lookup);
  }
  const CacheArray::Ref entry = l3.lookup(line, /*touch=*/false);
  if (!entry) return handling;

  std::uint32_t cv = entry.core_valid();
  bool dirty = is_dirty(entry.state());
  while (cv != 0) {
    const int owner_local = std::countr_zero(cv);
    cv &= cv - 1;
    dirty |= invalidate_core(m_.topo.global_core(node.socket, owner_local),
                             line, obs::LineOp::kSnoopInvalidate);
  }
  if (entry.core_valid() != 0) {
    handling += m_.timing.core_snoop_external;
    if (tracer_ != nullptr) {
      tracer_->leaf(TComp::kCoreSnoop, "core_valid_snoop",
                    m_.timing.core_snoop_external);
    }
  }
  if (dirty) {
    // The dirty data migrates to the requester (M transfer); account the
    // extraction cost but leave memory untouched.
    handling += m_.timing.core_data_l2;
    if (tracer_ != nullptr) {
      tracer_->leaf(TComp::kCore, "dirty_transfer", m_.timing.core_data_l2);
    }
  }
  obs_transition(obs::Level::kL3, peer_node, line, entry.state(),
                 obs::LineOp::kSnoopInvalidate, Mesif::kInvalid);
  l3.erase(line);
  return handling;
}

double CoherenceEngine::snoop_peer_update(int peer_node, LineAddr line,
                                          bool* had_copy) {
  m_.counters.bump(Ctr::kSnoopsSent);
  if (m_.metrics != nullptr) {
    m_.metrics->bump_family(metrics::MFamily::kRingStopCbo,
                            static_cast<std::size_t>(peer_node));
  }
  const NumaNode& node = m_.topo.node(peer_node);
  const int slice = m_.slice_for(peer_node, line);
  CacheArray& l3 = m_.l3_slice(node.socket, slice);

  double handling = m_.timing.snoop_ca_lookup;
  if (tracer_ != nullptr) {
    tracer_->leaf(TComp::kCbo, "snoop_ca_lookup", m_.timing.snoop_ca_lookup);
  }
  const CacheArray::Ref entry = l3.lookup(line, /*touch=*/false);
  if (!entry) return handling;

  *had_copy = true;
  m_.counters.bump(Ctr::kUpdatesSent);
  metric(MC::kCboUpdateSent);
  // Every core copy is refreshed in place and demoted to Shared: the peers
  // keep reading their (now clean w.r.t. the new owner) copies without a
  // miss — the whole point of the update protocol.
  std::uint32_t cv = entry.core_valid();
  if (cv != 0) {
    handling += m_.timing.core_snoop_external;
    if (tracer_ != nullptr) {
      tracer_->leaf(TComp::kCoreSnoop, "core_valid_snoop",
                    m_.timing.core_snoop_external);
    }
    while (cv != 0) {
      const int owner_local = std::countr_zero(cv);
      cv &= cv - 1;
      snoop_core(m_.topo.global_core(node.socket, owner_local), line,
                 Mesif::kShared, obs::LineOp::kSnoopUpdate);
    }
  }
  const Mesif found = entry.state();
  entry.state() = pol_.next(found, protocol::Op::kSnoopUpdate);
  obs_transition(obs::Level::kL3, peer_node, line, found,
                 obs::LineOp::kSnoopUpdate, entry.state());
  return handling;
}

// --- victim / fill plumbing -----------------------------------------------------

void CoherenceEngine::handle_l1_victim(int core, const CacheEntry& victim) {
  metric(is_dirty(victim.state) ? MC::kL1VictimDirty : MC::kL1VictimCleanSilent);
  obs_transition(obs::Level::kL1, core, victim.line, victim.state,
                 obs::LineOp::kEvict, Mesif::kInvalid);
  CoreCaches& cc = m_.cores[static_cast<std::size_t>(core)];
  if (const CacheArray::Ref in_l2 = cc.l2.lookup(victim.line, /*touch=*/false)) {
    // The dirty state travels down as-is: a MESIF/MESI victim is Modified,
    // a Dragon Owned victim must stay Owned (sharers still exist).
    if (is_dirty(victim.state)) {
      obs_transition(obs::Level::kL2, core, victim.line, in_l2.state(),
                     obs::LineOp::kWriteback, victim.state);
      in_l2.state() = victim.state;
    }
    return;
  }
  if (is_dirty(victim.state)) {
    obs_transition(obs::Level::kL2, core, victim.line, Mesif::kInvalid,
                   obs::LineOp::kWriteback, victim.state);
    auto ins = cc.l2.insert(victim.line, victim.state);
    if (ins.victim) handle_l2_victim(core, *ins.victim);
  }
  // Clean lines not present in L2 are dropped: the inclusive L3 has a copy.
}

void CoherenceEngine::handle_l2_victim(int core, const CacheEntry& victim) {
  metric(is_dirty(victim.state) ? MC::kL2VictimDirty : MC::kL2VictimCleanSilent);
  obs_transition(obs::Level::kL2, core, victim.line, victim.state,
                 obs::LineOp::kEvict, Mesif::kInvalid);
  const int node = m_.topo.node_of_core(core);
  const int socket = m_.topo.socket_of_core(core);
  const int local = m_.topo.local_core(core);
  CacheArray& l3 = m_.l3_slice(socket, m_.slice_for(node, victim.line));
  const CacheArray::Ref entry = l3.lookup(victim.line, /*touch=*/false);
  if (is_dirty(victim.state)) {
    // Write back to the L3: refreshes the data and clears the core-valid
    // bit (paper §VI-A: "the write back to the L3 also clears the core
    // valid bit") — unless the core's L1 still holds the line (an L2
    // capacity victim of a non-inclusive L2), in which case the CBo must
    // keep tracking the core.
    if (entry) {
      // An already-dirty-shared L3 entry (Owned) keeps its sharing state;
      // a clean entry takes the victim's dirty state (Modified, or Owned
      // under MOESI/Dragon where sharers survive).
      if (!is_dirty(entry.state())) {
        obs_transition(obs::Level::kL3, node, victim.line, entry.state(),
                       obs::LineOp::kWriteback, victim.state);
        entry.state() = victim.state;
      }
      if (!m_.cores[static_cast<std::size_t>(core)].l1.contains(victim.line)) {
        entry.core_valid() &= ~bit_of(local);
      }
    } else {
      obs_transition(obs::Level::kL3, node, victim.line, Mesif::kInvalid,
                     obs::LineOp::kWriteback, victim.state);
      auto ins = l3.insert(victim.line, victim.state);
      if (ins.victim) handle_l3_victim(socket, node, *ins.victim);
    }
  }
  // Clean (E/S/F) lines are evicted *silently*: the core-valid bit in the
  // L3 stays set, which later forces a useless core snoop (the paper's
  // E-state latency penalty).
}

void CoherenceEngine::handle_l3_victim(int socket, int node,
                                       const CacheEntry& victim) {
  m_.counters.bump(Ctr::kL3Evictions);
  obs_transition(obs::Level::kL3, node, victim.line, victim.state,
                 obs::LineOp::kEvict, Mesif::kInvalid);
  // Inclusive L3: back-invalidate every core copy in this node.  Owned
  // victims (MOESI/Dragon) pay their deferred writeback here.
  bool dirty = is_dirty(victim.state);
  std::uint32_t cv = victim.core_valid;
  while (cv != 0) {
    const int owner_local = std::countr_zero(cv);
    cv &= cv - 1;
    dirty |= invalidate_core(m_.topo.global_core(socket, owner_local),
                             victim.line, obs::LineOp::kEvict);
  }
  metric(dirty ? MC::kL3VictimDirty : MC::kL3VictimCleanSilent);
  if (dirty) {
    // Explicit writeback: the home agent learns the exclusive copy is gone.
    writeback(victim.line, /*clears_directory=*/true);
  }
  // Clean evictions are silent: if the line was homed in another node, the
  // in-memory directory keeps saying snoop-all (Table V's stale-directory
  // broadcast penalty).
}

void CoherenceEngine::fill_caches(int core, LineAddr line, const Fill& fill,
                                  obs::LineOp op) {
  const int node = m_.topo.node_of_core(core);
  const int socket = m_.topo.socket_of_core(core);
  const int local = m_.topo.local_core(core);

  CacheArray& l3 = m_.l3_slice(socket, m_.slice_for(node, line));
  if (const CacheArray::Ref entry = l3.lookup(line)) {
    entry.core_valid() |= bit_of(local);
  } else {
    obs_transition(obs::Level::kL3, node, line, Mesif::kInvalid, op,
                   fill.node_state);
    auto ins = l3.insert(line, fill.node_state);
    if (ins.victim) handle_l3_victim(socket, node, *ins.victim);
    ins.entry.core_valid() = bit_of(local);
  }

  CoreCaches& cc = m_.cores[static_cast<std::size_t>(core)];
  if (const CacheArray::Ref in_l2 = cc.l2.lookup(line)) {
    obs_transition(obs::Level::kL2, core, line, in_l2.state(), op,
                   fill.core_state);
    in_l2.state() = fill.core_state;
  } else {
    obs_transition(obs::Level::kL2, core, line, Mesif::kInvalid, op,
                   fill.core_state);
    auto ins = cc.l2.insert(line, fill.core_state);
    if (ins.victim) handle_l2_victim(core, *ins.victim);
  }
  if (!cc.l1.contains(line)) {
    obs_transition(obs::Level::kL1, core, line, Mesif::kInvalid, op,
                   fill.core_state);
    auto ins = cc.l1.insert(line, fill.core_state);
    if (ins.victim) handle_l1_victim(core, *ins.victim);
  } else if (is_dirty(fill.core_state)) {
    const CacheArray::Ref e1 = cc.l1.lookup(line);
    obs_transition(obs::Level::kL1, core, line, e1.state(), op,
                   fill.core_state);
    e1.state() = fill.core_state;
  }
}

// --- read ----------------------------------------------------------------------

AccessResult CoherenceEngine::read(int core, PhysAddr addr) {
  AccessResult result;
  if (tracer_ == nullptr) {
    result = read_impl(core, addr);
  } else {
    tracer_->begin_access('R', core, line_of(addr));
    result = read_impl(core, addr);
    result.attribution = tracer_->end_access(result.ns, to_string(result.source));
  }
  if (m_.metrics != nullptr) metrics_access(result.ns);
  if (m_.linestats != nullptr) {
    m_.linestats->on_access(core, line_of(addr), /*is_write=*/false, result.ns);
  }
  return result;
}

AccessResult CoherenceEngine::read_impl(int core, PhysAddr addr) {
  const LineAddr line = line_of(addr);
  const int req_node = m_.topo.node_of_core(core);
  CoreCaches& cc = m_.cores[static_cast<std::size_t>(core)];

  auto shared_hit_needs_l3 = [&](Mesif state) {
    if (!pol_.has_forward || state != Mesif::kShared) return false;
    // Reading a Shared line whose Forward copy lives in another node
    // notifies the responsible CA to reclaim the forward state (paper
    // Table IV / Fig. 9): the access costs a full L3 round trip.  Only
    // MESIF has a forward state to reclaim.
    const int socket = m_.topo.socket_of_core(core);
    const CacheArray& l3 =
        m_.l3[static_cast<std::size_t>(socket)]
            [static_cast<std::size_t>(m_.slice_for(req_node, line))];
    const std::optional<CacheEntry> entry = l3.peek(line);
    return entry && entry->state == Mesif::kShared;
  };

  if (const CacheArray::Ref e1 = cc.l1.lookup(line)) {
    if (shared_hit_needs_l3(e1.state())) {
      m_.counters.bump(Ctr::kLoadsL3Hit);
      trace_l3_path(core);
      return {l3_path(core), ServiceSource::kL3, req_node, nullptr};
    }
    m_.counters.bump(Ctr::kLoadsL1Hit);
    if (tracer_ != nullptr) {
      tracer_->leaf(TComp::kCore, "l1_hit", m_.timing.l1_hit);
    }
    return {m_.timing.l1_hit, ServiceSource::kL1, req_node, nullptr};
  }
  if (const CacheArray::Ref e2 = cc.l2.lookup(line)) {
    if (shared_hit_needs_l3(e2.state())) {
      m_.counters.bump(Ctr::kLoadsL3Hit);
      trace_l3_path(core);
      return {l3_path(core), ServiceSource::kL3, req_node, nullptr};
    }
    obs_transition(obs::Level::kL1, core, line, Mesif::kInvalid,
                   obs::LineOp::kLocalRead, e2.state());
    auto ins = cc.l1.insert(line, e2.state());
    if (ins.victim) handle_l1_victim(core, *ins.victim);
    m_.counters.bump(Ctr::kLoadsL2Hit);
    if (tracer_ != nullptr) {
      tracer_->leaf(TComp::kCore, "l2_hit", m_.timing.l2_hit);
    }
    return {m_.timing.l2_hit, ServiceSource::kL2, req_node, nullptr};
  }

  Fill fill = ca_read(core, line);
  fill_caches(core, line, fill, obs::LineOp::kLocalRead);
  switch (fill.source) {
    case ServiceSource::kL3:
    case ServiceSource::kCoreFwd:
      m_.counters.bump(Ctr::kLoadsL3Hit);
      break;
    case ServiceSource::kRemoteFwd:
      m_.counters.bump(Ctr::kLoadsRemoteFwd);
      break;
    case ServiceSource::kLocalDram:
      m_.counters.bump(Ctr::kLoadsLocalDram);
      break;
    case ServiceSource::kRemoteDram:
      m_.counters.bump(Ctr::kLoadsRemoteDram);
      break;
    default:
      break;
  }
  return {fill.ns, fill.source, fill.source_node, nullptr};
}

CoherenceEngine::Fill CoherenceEngine::ca_read(int core, LineAddr line) {
  const int req_node = m_.topo.node_of_core(core);
  const int socket = m_.topo.socket_of_core(core);
  const int local = m_.topo.local_core(core);
  CacheArray& l3 = m_.l3_slice(socket, m_.slice_for(req_node, line));

  Fill fill;
  fill.ns = l3_path(core);
  fill.source = ServiceSource::kL3;
  fill.source_node = req_node;
  fill.core_state = Mesif::kShared;

  if (const CacheArray::Ref entry = l3.lookup(line)) {
    trace_l3_path(core);
    const std::uint32_t owners = entry.core_valid() & ~bit_of(local);
    const bool multi = std::popcount(entry.core_valid()) > 1;
    if (pol_.snoop_read(entry.state()).may_hold_newer &&
        m_.features.core_valid_bits && owners != 0 && !multi) {
      // A single other core may hold the line Modified (stores upgrade E->M
      // silently) — and exclusive lines are evicted silently, so the bit may
      // be stale.  Either way the CA must snoop (44.4 ns case).
      const int owner_local = std::countr_zero(owners);
      const int owner = m_.topo.global_core(socket, owner_local);
      fill.ns += m_.timing.core_snoop_local;
      if (tracer_ != nullptr) {
        tracer_->leaf(TComp::kCoreSnoop, "core_snoop_local",
                      m_.timing.core_snoop_local);
      }
      CoreSnoop cs = snoop_core(owner, line, Mesif::kShared,
                                obs::LineOp::kSnoopRead);
      if (cs.dirty) {
        fill.ns += cs.data_ns;
        if (tracer_ != nullptr) {
          tracer_->leaf(TComp::kCore, "core_data_extract", cs.data_ns);
        }
        obs_transition(obs::Level::kL3, req_node, line, entry.state(),
                       obs::LineOp::kLocalRead, Mesif::kModified);
        entry.state() = Mesif::kModified;  // L3 refreshed with dirty data
        fill.source = ServiceSource::kCoreFwd;
      }
    }
    entry.core_valid() |= bit_of(local);
    fill.node_state = entry.state();
    return fill;
  }
  return home_read(core, req_node, line);
}

CoherenceEngine::Fill CoherenceEngine::home_read(int core, int req_node,
                                                 LineAddr line) {
  const TimingParams& t = m_.timing;
  auto home = m_.home_of(line);
  const int h = home.node;
  const double lat0 = l3_path(core);
  trace_l3_path(core);

  Fill fill;
  fill.core_state = Mesif::kShared;
  fill.node_state = pol_.clean_shared_grant;

  // Peer nodes other than requester and home.
  std::vector<int> peers;
  for (int n = 0; n < m_.topo.node_count(); ++n) {
    if (n != req_node && n != h) peers.push_back(n);
  }

  const double t_req_at_ha =
      lat0 + request_to_ha(req_node, h) + t.ca_to_ha_fixed;
  metric_request_to_ha(req_node, h);

  // Completion helpers.
  auto served_by_memory = [&](double ready_ns) {
    if (tracer_ != nullptr) {
      trace_link("data_return", h, req_node);
      tracer_->leaf(TComp::kCbo, "response_return", t.response_return);
    }
    metric_qpi(h, req_node, metrics::kQpiDataBytes);
    fill.ns = ready_ns + link_ns(h, req_node) + t.response_return;
    fill.source = h == req_node ? ServiceSource::kLocalDram
                                : ServiceSource::kRemoteDram;
    fill.source_node = h;
  };
  auto served_by_forward = [&](double data_sent_ns, int from_node) {
    if (tracer_ != nullptr) {
      trace_link("cache_fwd", from_node, req_node);
      tracer_->leaf(TComp::kCbo, "cache_fwd_return", t.cache_fwd_return);
    }
    metric_qpi(from_node, req_node, metrics::kQpiDataBytes);
    fill.ns = data_sent_ns + link_ns(from_node, req_node) + t.cache_fwd_return;
    fill.source = from_node == req_node ? ServiceSource::kL3
                                        : ServiceSource::kRemoteFwd;
    fill.source_node = from_node;
  };
  // `memory_valid` says whether the home memory copy is authoritative after
  // the forward: true when the supplier was clean or wrote back while
  // demoting (always, under MESIF/MESI), false for an Owned dirty forward
  // (MOESI/Dragon) — then neither the HitME cache (whose hit path serves
  // from memory) nor the directory's `shared` state may claim validity.
  auto record_forward_state = [&](int forwarder_node, bool memory_valid) {
    fill.node_state = pol_.clean_shared_grant;
    if (directory_on() && req_node != h) {
      // AllocateShared: a line handed to a remote node in forward/shared
      // state enters the HitME cache; the in-memory directory goes snoop-all.
      if (hitme_on() && memory_valid) {
        const auto presence = static_cast<std::uint8_t>(
            (1u << static_cast<unsigned>(req_node)) |
            (1u << static_cast<unsigned>(forwarder_node)));
        if (auto prior = home.ha->hitme.lookup(line)) {
          home.ha->hitme.put(line, prior->presence | presence);
        } else {
          if (home.ha->hitme.put(line, presence)) {
            m_.counters.bump(Ctr::kHitmeEvict);
            metric(MC::kHaHitmeEvict);
          }
          m_.counters.bump(Ctr::kHitmeAlloc);
          metric(MC::kHaHitmeAllocShared);
        }
        if (tracer_ != nullptr) tracer_->leaf(TComp::kHitme, "hitme_track", 0.0);
        // The directory ECC write happens in the background here: the data
        // comes cache-to-cache from the forwarder, so the HA's state update
        // is not on the requester's critical path (unlike memory grants).
        if (home.ha->directory.set(line, DirState::kSnoopAll)) {
          m_.counters.bump(Ctr::kDirectoryUpdates);
          metric(MC::kHaDirectoryUpdate);
          if (tracer_ != nullptr) {
            tracer_->leaf(TComp::kDirectory, "dir_update_background", 0.0);
          }
        }
      } else {
        // Classic DAS without a directory cache: clean forwards record the
        // `shared` state, which keeps the memory copy authoritative.  A
        // dirty Owned forward must keep snoop-all instead (stale memory).
        const DirState next = (!hitme_on() && memory_valid)
                                  ? DirState::kShared
                                  : DirState::kSnoopAll;
        if (home.ha->directory.set(line, next)) {
          m_.counters.bump(Ctr::kDirectoryUpdates);
          metric(MC::kHaDirectoryUpdate);
          if (tracer_ != nullptr) {
            tracer_->leaf(TComp::kDirectory, "dir_update_background", 0.0);
          }
        }
      }
    }
  };
  auto record_memory_grant = [&](bool exclusive) {
    fill.node_state = exclusive ? Mesif::kExclusive : Mesif::kShared;
    fill.core_state = exclusive ? Mesif::kExclusive : Mesif::kShared;
    if (directory_on() && req_node != h) {
      if (home.ha->directory.set(line, DirState::kSnoopAll)) {
        m_.counters.bump(Ctr::kDirectoryUpdates);
        metric(MC::kHaDirectoryUpdate);
        if (tracer_ != nullptr) {
          tracer_->leaf(TComp::kDirectory, "dir_update_ecc", t.dir_update);
        }
        fill.ns += t.dir_update;
      }
    }
  };

  if (!directory_on()) {
    // ---- snoopy modes (source snoop / home snoop without directory) -------
    // The home node's CA is a snoop target like any other peer.
    std::vector<int> snooped = peers;
    if (h != req_node) snooped.insert(snooped.begin(), h);

    if (source_snoop()) {
      // The requester CA broadcasts at lat0; responses race the DRAM read.
      if (tracer_ != nullptr) tracer_->open_parallel("source_snoop_race");
      double slowest_response_at_ha = t_req_at_ha;
      bool any_shared = false;
      for (int p : snooped) {
        m_.counters.bump(Ctr::kSnoopBroadcasts);
        if (m_.topo.crosses_qpi(req_node, p)) {
          m_.counters.bump(Ctr::kQpiSnoopFlits);
        }
        metric_qpi(req_node, p, metrics::kQpiHeaderBytes);
        if (tracer_ != nullptr) {
          tracer_->open_leg(kNodeName[p]);
          trace_link("snoop_out", req_node, p);
          tracer_->open_group(TComp::kCbo, "peer_ca_handling");
        }
        PeerSnoop snoop = snoop_peer_read(p, line);
        if (tracer_ != nullptr) tracer_->close_group(snoop.handling_ns);
        const double response_at_peer = lat0 + link_ns(req_node, p) + snoop.handling_ns;
        if (snoop.forwarded) {
          if (tracer_ != nullptr) {
            tracer_->close_leg();
            tracer_->close_parallel(TJoin::kWinner);
          }
          served_by_forward(response_at_peer, p);
          record_forward_state(p, !snoop.dirty_forward);
          return fill;
        }
        any_shared |= snoop.had_shared;
        if (tracer_ != nullptr) {
          trace_link("response_to_ha", p, h);
          tracer_->close_leg();
        }
        slowest_response_at_ha =
            std::max(slowest_response_at_ha, response_at_peer + link_ns(p, h));
      }
      if (tracer_ != nullptr) {
        tracer_->open_leg("memory");
        trace_request_to_ha(req_node, h);
        tracer_->leaf(TComp::kHa, "ca_to_ha_fixed", t.ca_to_ha_fixed);
        tracer_->leaf(TComp::kHa, "ha_processing", t.ha_processing);
      }
      const double dram_ready = t_req_at_ha + t.ha_processing + dram_read(home);
      if (tracer_ != nullptr) {
        tracer_->close_leg();
        tracer_->close_parallel(TJoin::kAll);
      }
      served_by_memory(std::max(dram_ready, slowest_response_at_ha));
      record_memory_grant(/*exclusive=*/!any_shared);
      if (any_shared) fill.node_state = pol_.clean_shared_grant;
      return fill;
    }

    // Home snoop: the HA broadcasts after receiving and processing the
    // request — the paper's "delayed snoop broadcast".
    if (tracer_ != nullptr) {
      trace_request_to_ha(req_node, h);
      tracer_->leaf(TComp::kHa, "ca_to_ha_fixed", t.ca_to_ha_fixed);
      tracer_->leaf(TComp::kHa, "ha_processing", t.ha_processing);
      tracer_->open_parallel("home_snoop_race");
    }
    const double snoop_base = t_req_at_ha + t.ha_processing;
    double slowest_response = snoop_base;
    bool any_shared = false;
    int fanout = 0;
    for (int p : snooped) {
      m_.counters.bump(Ctr::kSnoopBroadcasts);
      if (m_.topo.crosses_qpi(h, p)) m_.counters.bump(Ctr::kQpiSnoopFlits);
      metric_qpi(h, p, metrics::kQpiHeaderBytes);
      const double stagger = t.broadcast_fanout * fanout++;
      if (tracer_ != nullptr) {
        tracer_->open_leg(kNodeName[p]);
        tracer_->leaf(TComp::kHa, "broadcast_fanout", stagger);
        trace_link("snoop_out", h, p);
        tracer_->open_group(TComp::kCbo, "peer_ca_handling");
      }
      PeerSnoop snoop = snoop_peer_read(p, line);
      if (tracer_ != nullptr) tracer_->close_group(snoop.handling_ns);
      const double launch = snoop_base + stagger;
      const double handled_at_peer = launch + link_ns(h, p) + snoop.handling_ns;
      if (snoop.forwarded) {
        if (tracer_ != nullptr) {
          tracer_->close_leg();
          tracer_->close_parallel(TJoin::kWinner);
        }
        served_by_forward(handled_at_peer, p);
        record_forward_state(p, !snoop.dirty_forward);
        return fill;
      }
      any_shared |= snoop.had_shared;
      if (tracer_ != nullptr) {
        trace_link("response_to_ha", p, h);
        tracer_->close_leg();
      }
      slowest_response = std::max(slowest_response, handled_at_peer + link_ns(p, h));
    }
    if (tracer_ != nullptr) tracer_->open_leg("memory");
    const double dram_ready = t_req_at_ha + t.ha_processing + dram_read(home);
    if (tracer_ != nullptr) {
      tracer_->close_leg();
      tracer_->close_parallel(TJoin::kAll);
    }
    served_by_memory(std::max(dram_ready, slowest_response));
    record_memory_grant(/*exclusive=*/!any_shared);
    if (any_shared) fill.node_state = pol_.clean_shared_grant;
    return fill;
  }

  // ---- directory-assisted home snoop (COD) ---------------------------------
  if (tracer_ != nullptr) {
    trace_request_to_ha(req_node, h);
    tracer_->leaf(TComp::kHa, "ca_to_ha_fixed", t.ca_to_ha_fixed);
    tracer_->leaf(TComp::kHa, "ha_processing", t.ha_processing);
  }
  // 1. The home node's CA is snooped locally, independent of the directory
  //    state (Moga et al.; paper §VI-C).  The in-memory directory only
  //    tracks copies *outside* the home node, so a Shared copy found here
  //    must veto any exclusive grant below.
  bool home_had_shared = false;
  if (h != req_node) {
    if (tracer_ != nullptr) {
      tracer_->open_parallel("home_node_ca_snoop");
      tracer_->open_leg(kNodeName[h]);
      tracer_->open_group(TComp::kCbo, "peer_ca_handling");
    }
    PeerSnoop local_snoop = snoop_peer_read(h, line);
    if (tracer_ != nullptr) {
      tracer_->close_group(local_snoop.handling_ns);
      tracer_->close_leg();
    }
    if (local_snoop.forwarded) {
      if (tracer_ != nullptr) tracer_->close_parallel(TJoin::kWinner);
      const double data_at =
          t_req_at_ha + t.ha_processing + local_snoop.handling_ns;
      served_by_forward(data_at, h);
      record_forward_state(h, !local_snoop.dirty_forward);
      return fill;
    }
    // The local CA had nothing to forward: its lookup ran in the HA's
    // shadow, off the critical path.
    if (tracer_ != nullptr) tracer_->close_parallel(TJoin::kNone);
    home_had_shared = local_snoop.had_shared;
  }

  // 2. HitME probe.
  if (tracer_ != nullptr) {
    tracer_->leaf(TComp::kHitme, "hitme_lookup", t.hitme_lookup);
  }
  const double probe_done = t_req_at_ha + t.ha_processing + t.hitme_lookup;
  if (hitme_on()) {
    if (auto entry = home.ha->hitme.lookup(line)) {
      // Clean-shared migratory line: the memory copy is valid; forward it
      // without waiting for snoop responses.
      m_.counters.bump(Ctr::kHitmeHit);
      metric(MC::kHaHitmeHit);
      metric(MC::kHaBypass);
      if (tracer_ != nullptr) {
        tracer_->leaf(TComp::kHitme, "hitme_hit", 0.0);
        tracer_->open_parallel("hitme_shortcut");
        tracer_->open_leg("memory");
      }
      const double dram_ready = probe_done + dram_read(home) - t.ha_bypass_savings;
      if (tracer_ != nullptr) {
        tracer_->leaf(TComp::kHa, "ha_bypass_savings", -t.ha_bypass_savings);
        tracer_->close_leg();
        tracer_->close_parallel(TJoin::kAll);
      }
      served_by_memory(std::max(dram_ready, probe_done));
      home.ha->hitme.put(
          line, static_cast<std::uint8_t>(
                    entry->presence | (1u << static_cast<unsigned>(req_node))));
      record_memory_grant(/*exclusive=*/false);
      return fill;
    }
    m_.counters.bump(Ctr::kHitmeMiss);
    metric(MC::kHaHitmeMiss);
  }

  // 3. In-memory directory: available only once the DRAM read returns
  //    (the 2-bit state lives in the ECC bits of the data).
  m_.counters.bump(Ctr::kDirectoryLookups);
  metric(MC::kHaDirectoryLookup);
  const double dram_ready = probe_done + dram_read(home);
  const DirState dir = home.ha->directory.get(line);
  if (dir == DirState::kRemoteInvalid) {
    metric(MC::kHaBypass);
    if (tracer_ != nullptr) {
      tracer_->leaf(TComp::kDirectory, "dir_remote_invalid", 0.0);
      tracer_->leaf(TComp::kHa, "ha_bypass_savings", -t.ha_bypass_savings);
    }
    served_by_memory(dram_ready - t.ha_bypass_savings);
    record_memory_grant(/*exclusive=*/!home_had_shared);
    if (home_had_shared) fill.node_state = pol_.clean_shared_grant;
    return fill;
  }
  if (dir == DirState::kShared) {
    // Classic DAS shared state (no-HitME ablation): memory copy valid.
    metric(MC::kHaBypass);
    if (tracer_ != nullptr) {
      tracer_->leaf(TComp::kDirectory, "dir_shared", 0.0);
      tracer_->leaf(TComp::kHa, "ha_bypass_savings", -t.ha_bypass_savings);
    }
    served_by_memory(dram_ready - t.ha_bypass_savings);
    record_memory_grant(/*exclusive=*/false);
    return fill;
  }

  // snoop-all: broadcast to the remaining peers, *after* the directory
  // lookup completed (this is the Table V stale-directory penalty).
  metric(MC::kHaSnoopAllBroadcast);
  if (tracer_ != nullptr) {
    tracer_->leaf(TComp::kDirectory, "dir_snoop_all", 0.0);
    tracer_->open_parallel("stale_directory_broadcast");
  }
  double slowest_response = dram_ready;
  bool any_shared = home_had_shared;
  int fanout = 0;
  for (int p : peers) {
    m_.counters.bump(Ctr::kSnoopBroadcasts);
    if (m_.topo.crosses_qpi(h, p)) m_.counters.bump(Ctr::kQpiSnoopFlits);
    const double stagger = t.broadcast_fanout * fanout++;
    if (tracer_ != nullptr) {
      tracer_->open_leg(kNodeName[p]);
      tracer_->leaf(TComp::kHa, "broadcast_fanout", stagger);
      trace_link("snoop_out", h, p);
      tracer_->open_group(TComp::kCbo, "peer_ca_handling");
    }
    PeerSnoop snoop = snoop_peer_read(p, line);
    if (tracer_ != nullptr) tracer_->close_group(snoop.handling_ns);
    const double launch = dram_ready + stagger;
    const double handled_at_peer = launch + link_ns(h, p) + snoop.handling_ns;
    if (snoop.forwarded) {
      // A third node supplies the data: the HA still has to collect the
      // response and complete the transaction before the load can retire.
      if (tracer_ != nullptr) {
        tracer_->leaf(TComp::kHa, "three_node_penalty", t.three_node_penalty);
        tracer_->close_leg();
        tracer_->close_parallel(TJoin::kWinner);
      }
      served_by_forward(handled_at_peer + t.three_node_penalty, p);
      record_forward_state(p, !snoop.dirty_forward);
      return fill;
    }
    any_shared |= snoop.had_shared;
    if (tracer_ != nullptr) {
      trace_link("response_to_ha", p, h);
      tracer_->close_leg();
    }
    slowest_response = std::max(slowest_response, handled_at_peer + link_ns(p, h));
  }
  // Nobody answered: the directory was stale (silent L3 evictions).  Serve
  // from memory after the HA has collected and processed all responses.
  metric(MC::kHaStaleBroadcast);
  if (tracer_ != nullptr) {
    tracer_->close_parallel(TJoin::kAll);
    tracer_->leaf(TComp::kHa, "broadcast_collect",
                  t.broadcast_collect * static_cast<double>(peers.size()));
  }
  slowest_response += t.broadcast_collect * static_cast<double>(peers.size());
  served_by_memory(slowest_response);
  record_memory_grant(/*exclusive=*/!any_shared);
  if (any_shared) fill.node_state = pol_.clean_shared_grant;
  return fill;
}

// --- write ---------------------------------------------------------------------

AccessResult CoherenceEngine::write(int core, PhysAddr addr) {
  AccessResult result;
  if (tracer_ == nullptr) {
    result = write_impl(core, addr);
  } else {
    tracer_->begin_access('W', core, line_of(addr));
    result = write_impl(core, addr);
    result.attribution = tracer_->end_access(result.ns, to_string(result.source));
  }
  if (m_.metrics != nullptr) metrics_access(result.ns);
  if (m_.linestats != nullptr) {
    m_.linestats->on_access(core, line_of(addr), /*is_write=*/true, result.ns);
  }
  return result;
}

AccessResult CoherenceEngine::write_impl(int core, PhysAddr addr) {
  const LineAddr line = line_of(addr);
  const int req_node = m_.topo.node_of_core(core);
  CoreCaches& cc = m_.cores[static_cast<std::size_t>(core)];

  if (const CacheArray::Ref e1 = cc.l1.lookup(line)) {
    if (pol_.store_silent(e1.state())) {
      // Silent E->M upgrade: the L3 still believes the line is Exclusive.
      obs_transition(obs::Level::kL1, core, line, e1.state(),
                     obs::LineOp::kLocalStore,
                     pol_.next(e1.state(), protocol::Op::kLocalStore));
      e1.state() = pol_.next(e1.state(), protocol::Op::kLocalStore);
      m_.counters.bump(Ctr::kLoadsL1Hit);
      if (tracer_ != nullptr) {
        tracer_->leaf(TComp::kCore, "l1_store_upgrade", m_.timing.l1_hit);
      }
      return {m_.timing.l1_hit, ServiceSource::kL1, req_node, nullptr};
    }
  } else if (const CacheArray::Ref e2 = cc.l2.lookup(line)) {
    if (pol_.store_silent(e2.state())) {
      // Net L2 effect of the upgrade: the newest copy moves to L1 and the
      // L2 keeps a Shared shadow.
      obs_transition(obs::Level::kL2, core, line, e2.state(),
                     obs::LineOp::kLocalStore, Mesif::kShared);
      e2.state() = pol_.next(e2.state(), protocol::Op::kLocalStore);
      obs_transition(obs::Level::kL1, core, line, Mesif::kInvalid,
                     obs::LineOp::kLocalStore, Mesif::kModified);
      auto ins = cc.l1.insert(line, Mesif::kModified);
      if (ins.victim) handle_l1_victim(core, *ins.victim);
      cc.l2.lookup(line).state() = Mesif::kShared;  // newest copy now in L1
      m_.counters.bump(Ctr::kLoadsL2Hit);
      if (tracer_ != nullptr) {
        tracer_->leaf(TComp::kCore, "l2_store_upgrade", m_.timing.l2_hit);
      }
      return {m_.timing.l2_hit, ServiceSource::kL2, req_node, nullptr};
    }
  }

  // Shared or missing: read-for-ownership through the CA — or, under an
  // update-based protocol (Dragon), an update broadcast that leaves every
  // sharer's copy in place.
  if (pol_.update_based) {
    Fill fill = ca_update(core, line);
    fill_caches(core, line, fill, obs::LineOp::kLocalStore);
    return {fill.ns, fill.source, fill.source_node, nullptr};
  }
  Fill fill = ca_write(core, line);
  fill.core_state = Mesif::kModified;
  fill_caches(core, line, fill, obs::LineOp::kLocalStore);
  return {fill.ns, fill.source, fill.source_node, nullptr};
}

CoherenceEngine::Fill CoherenceEngine::ca_write(int core, LineAddr line) {
  const int req_node = m_.topo.node_of_core(core);
  const int socket = m_.topo.socket_of_core(core);
  const int local = m_.topo.local_core(core);
  CacheArray& l3 = m_.l3_slice(socket, m_.slice_for(req_node, line));

  Fill fill;
  fill.ns = l3_path(core);
  fill.source = ServiceSource::kL3;
  fill.source_node = req_node;
  fill.node_state = Mesif::kExclusive;

  if (const CacheArray::Ref entry = l3.lookup(line)) {
    if (pol_.owns(entry.state())) {
      // Node already owns the line: invalidate other in-node core copies.
      trace_l3_path(core);
      std::uint32_t others = entry.core_valid() & ~bit_of(local);
      if (others != 0) {
        fill.ns += m_.timing.core_snoop_local;
        if (tracer_ != nullptr) {
          tracer_->leaf(TComp::kCoreSnoop, "core_snoop_local",
                        m_.timing.core_snoop_local);
        }
        bool dirty = false;
        while (others != 0) {
          const int owner_local = std::countr_zero(others);
          others &= others - 1;
          dirty |= invalidate_core(m_.topo.global_core(socket, owner_local),
                                   line, obs::LineOp::kSnoopInvalidate);
        }
        if (dirty) {
          obs_transition(obs::Level::kL3, req_node, line, entry.state(),
                         obs::LineOp::kLocalStore, Mesif::kModified);
          entry.state() = Mesif::kModified;
        }
      }
      entry.core_valid() = bit_of(local);
      fill.node_state = entry.state();
      return fill;
    }
    // Shared/Forward at node level: other nodes may hold copies — obtain
    // global ownership through the home agent, then upgrade in place.
    std::uint32_t local_sharers = entry.core_valid() & ~bit_of(local);
    while (local_sharers != 0) {
      const int owner_local = std::countr_zero(local_sharers);
      local_sharers &= local_sharers - 1;
      invalidate_core(m_.topo.global_core(socket, owner_local), line,
                      obs::LineOp::kSnoopInvalidate);
    }
    Fill upgrade = home_write(core, req_node, line);
    if (const CacheArray::Ref still = l3.lookup(line)) {
      obs_transition(obs::Level::kL3, req_node, line, still.state(),
                     obs::LineOp::kLocalStore, Mesif::kExclusive);
      still.state() = Mesif::kExclusive;
      still.core_valid() = bit_of(local);
    }
    upgrade.node_state = Mesif::kExclusive;
    return upgrade;
  }
  return home_write(core, req_node, line);
}

CoherenceEngine::Fill CoherenceEngine::home_write(int core, int req_node,
                                                  LineAddr line) {
  const TimingParams& t = m_.timing;
  auto home = m_.home_of(line);
  const int h = home.node;
  const double lat0 = l3_path(core);
  trace_l3_path(core);

  Fill fill;
  fill.core_state = Mesif::kModified;
  fill.node_state = Mesif::kExclusive;

  std::vector<int> snooped;
  for (int n = 0; n < m_.topo.node_count(); ++n) {
    if (n != req_node) snooped.push_back(n);
  }

  const double t_req_at_ha =
      lat0 + request_to_ha(req_node, h) + t.ca_to_ha_fixed;
  metric_request_to_ha(req_node, h);

  // Invalidate every other node's copies; the slowest acknowledgement and
  // the DRAM read (for the data) gate completion.  In source snoop the
  // invalidations launch from the requester CA; otherwise from the HA.
  const bool from_requester = source_snoop() && !directory_on();
  const double snoop_base =
      from_requester ? lat0 : t_req_at_ha + t.ha_processing;

  if (tracer_ != nullptr) {
    if (!from_requester) {
      trace_request_to_ha(req_node, h);
      tracer_->leaf(TComp::kHa, "ca_to_ha_fixed", t.ca_to_ha_fixed);
      tracer_->leaf(TComp::kHa, "ha_processing", t.ha_processing);
    }
    tracer_->open_parallel("ownership_race");
  }

  double slowest_ack = t_req_at_ha;
  int fanout = 0;
  bool dirty_transfer = false;
  for (int p : snooped) {
    m_.counters.bump(Ctr::kSnoopBroadcasts);
    const int from = from_requester ? req_node : h;
    if (m_.topo.crosses_qpi(from, p)) m_.counters.bump(Ctr::kQpiSnoopFlits);
    metric_qpi(from, p, metrics::kQpiHeaderBytes);
    const double stagger = t.broadcast_fanout * fanout++;
    if (tracer_ != nullptr) {
      tracer_->open_leg(kNodeName[p]);
      tracer_->leaf(TComp::kHa, "broadcast_fanout", stagger);
      trace_link("invalidate_out", from, p);
      tracer_->open_group(TComp::kCbo, "peer_invalidate");
    }
    const double handling = snoop_peer_invalidate(p, line);
    if (tracer_ != nullptr) {
      tracer_->close_group(handling);
      trace_link("ack_to_ha", p, h);
      tracer_->close_leg();
    }
    dirty_transfer |= handling > t.snoop_ca_lookup + t.core_snoop_external;
    const double launch = snoop_base + stagger;
    slowest_ack =
        std::max(slowest_ack, launch + link_ns(from, p) + handling + link_ns(p, h));
  }

  if (tracer_ != nullptr) {
    tracer_->open_leg("memory");
    if (from_requester) {
      trace_request_to_ha(req_node, h);
      tracer_->leaf(TComp::kHa, "ca_to_ha_fixed", t.ca_to_ha_fixed);
      tracer_->leaf(TComp::kHa, "ha_processing", t.ha_processing);
    }
  }
  const double dram_ready = t_req_at_ha + t.ha_processing + dram_read(home);
  if (tracer_ != nullptr) {
    tracer_->close_leg();
    tracer_->close_parallel(TJoin::kAll);
    trace_link("data_return", h, req_node);
    tracer_->leaf(TComp::kCbo, "response_return", t.response_return);
  }
  metric_qpi(h, req_node, metrics::kQpiDataBytes);
  fill.ns = std::max(dram_ready, slowest_ack) + link_ns(h, req_node) +
            t.response_return;
  fill.source = h == req_node ? ServiceSource::kLocalDram
                              : ServiceSource::kRemoteDram;
  if (dirty_transfer) fill.source = ServiceSource::kRemoteFwd;
  fill.source_node = h;

  if (directory_on()) {
    const DirState next =
        req_node == h ? DirState::kRemoteInvalid : DirState::kSnoopAll;
    if (home.ha->directory.set(line, next)) {
      m_.counters.bump(Ctr::kDirectoryUpdates);
      metric(MC::kHaDirectoryUpdate);
      // The in-memory directory lives in the line's ECC bits: the HA must
      // schedule the state write before completing the ownership grant.
      if (tracer_ != nullptr) {
        tracer_->leaf(TComp::kDirectory, "dir_update_ecc", t.dir_update);
      }
      fill.ns += t.dir_update;
    }
    if (hitme_on()) home.ha->hitme.erase(line);
  }
  return fill;
}

// --- update-based store (Dragon) -------------------------------------------------

CoherenceEngine::Fill CoherenceEngine::ca_update(int core, LineAddr line) {
  const int req_node = m_.topo.node_of_core(core);
  const int socket = m_.topo.socket_of_core(core);
  const int local = m_.topo.local_core(core);
  CacheArray& l3 = m_.l3_slice(socket, m_.slice_for(req_node, line));

  // Dragon write-allocates: a store miss first fills the line like a read,
  // then runs the update against the now-present copy.
  double miss_ns = 0.0;
  ServiceSource miss_source = ServiceSource::kL3;
  int miss_source_node = req_node;
  bool missed = false;
  if (!l3.lookup(line, /*touch=*/false)) {
    Fill read_fill = ca_read(core, line);
    fill_caches(core, line, read_fill, obs::LineOp::kLocalRead);
    miss_ns = read_fill.ns;
    miss_source = read_fill.source;
    miss_source_node = read_fill.source_node;
    missed = true;
  }

  const CacheArray::Ref entry = l3.lookup(line);
  assert(entry && "write-allocate must leave an L3 entry behind");
  std::uint32_t others = entry.core_valid() & ~bit_of(local);

  if (pol_.owns(entry.state())) {
    // Node-exclusive: no other node holds a copy, so the update never
    // leaves the node.  Mirrors the owned path of ca_write, except in-node
    // sharers keep their (refreshed, Shared) copies instead of dying.
    trace_l3_path(core);
    Fill fill;
    fill.ns = miss_ns + l3_path(core);
    fill.source = missed ? miss_source : ServiceSource::kL3;
    fill.source_node = missed ? miss_source_node : req_node;
    if (others != 0) {
      fill.ns += m_.timing.core_snoop_local;
      if (tracer_ != nullptr) {
        tracer_->leaf(TComp::kCoreSnoop, "core_snoop_local",
                      m_.timing.core_snoop_local);
      }
      std::uint32_t sharers = others;
      while (sharers != 0) {
        const int owner_local = std::countr_zero(sharers);
        sharers &= sharers - 1;
        snoop_core(m_.topo.global_core(socket, owner_local), line,
                   Mesif::kShared, obs::LineOp::kSnoopUpdate);
        m_.counters.bump(Ctr::kUpdatesSent);
        metric(MC::kCboUpdateSent);
      }
    }
    obs_transition(obs::Level::kL3, req_node, line, entry.state(),
                   obs::LineOp::kLocalStore, Mesif::kModified);
    entry.state() = Mesif::kModified;
    entry.core_valid() |= bit_of(local);
    fill.node_state = entry.state();
    fill.core_state = others != 0 ? Mesif::kOwned : Mesif::kModified;
    return fill;
  }

  // Copies may exist in other nodes: broadcast the update through the HA.
  Fill fill = home_update(core, req_node, line);
  fill.ns += miss_ns;
  if (missed) {
    fill.source = miss_source;
    fill.source_node = miss_source_node;
  }
  return fill;
}

CoherenceEngine::Fill CoherenceEngine::home_update(int core, int req_node,
                                                   LineAddr line) {
  const TimingParams& t = m_.timing;
  auto home = m_.home_of(line);
  const int h = home.node;
  const double lat0 = l3_path(core);
  trace_l3_path(core);

  const int socket = m_.topo.socket_of_core(core);
  const int local = m_.topo.local_core(core);
  CacheArray& l3 = m_.l3_slice(socket, m_.slice_for(req_node, line));

  Fill fill;
  fill.source = ServiceSource::kL3;
  fill.source_node = req_node;

  std::vector<int> snooped;
  for (int n = 0; n < m_.topo.node_count(); ++n) {
    if (n != req_node) snooped.push_back(n);
  }

  const double t_req_at_ha =
      lat0 + request_to_ha(req_node, h) + t.ca_to_ha_fixed;
  metric_request_to_ha(req_node, h);

  // The update rides the same transport as an invalidation broadcast — but
  // it carries the line's data, peers keep their copies, and no DRAM data
  // read gates completion (the writer supplies the data).
  const bool from_requester = source_snoop() && !directory_on();
  const double snoop_base =
      from_requester ? lat0 : t_req_at_ha + t.ha_processing;

  if (tracer_ != nullptr) {
    if (!from_requester) {
      trace_request_to_ha(req_node, h);
      tracer_->leaf(TComp::kHa, "ca_to_ha_fixed", t.ca_to_ha_fixed);
      tracer_->leaf(TComp::kHa, "ha_processing", t.ha_processing);
    }
    tracer_->open_parallel("update_race");
  }

  double slowest_ack = t_req_at_ha;
  int fanout = 0;
  bool remote_copy = false;
  for (int p : snooped) {
    m_.counters.bump(Ctr::kSnoopBroadcasts);
    const int from = from_requester ? req_node : h;
    if (m_.topo.crosses_qpi(from, p)) m_.counters.bump(Ctr::kQpiSnoopFlits);
    metric_qpi(from, p, metrics::kQpiDataBytes);
    const double stagger = t.broadcast_fanout * fanout++;
    if (tracer_ != nullptr) {
      tracer_->open_leg(kNodeName[p]);
      tracer_->leaf(TComp::kHa, "broadcast_fanout", stagger);
      trace_link("update_out", from, p);
      tracer_->open_group(TComp::kCbo, "peer_update");
    }
    bool had_copy = false;
    const double handling = snoop_peer_update(p, line, &had_copy);
    remote_copy |= had_copy;
    if (tracer_ != nullptr) {
      tracer_->close_group(handling);
      trace_link("ack_to_ha", p, h);
      tracer_->close_leg();
    }
    const double launch = snoop_base + stagger;
    slowest_ack =
        std::max(slowest_ack, launch + link_ns(from, p) + handling + link_ns(p, h));
  }

  if (tracer_ != nullptr) {
    tracer_->open_leg("memory");
    if (from_requester) {
      trace_request_to_ha(req_node, h);
      tracer_->leaf(TComp::kHa, "ca_to_ha_fixed", t.ca_to_ha_fixed);
      tracer_->leaf(TComp::kHa, "ha_processing", t.ha_processing);
    }
  }
  const double ha_ready = t_req_at_ha + t.ha_processing;
  if (tracer_ != nullptr) {
    tracer_->close_leg();
    tracer_->close_parallel(TJoin::kAll);
    trace_link("ack_return", h, req_node);
    tracer_->leaf(TComp::kCbo, "response_return", t.response_return);
  }
  metric_qpi(h, req_node, metrics::kQpiHeaderBytes);
  fill.ns = std::max(ha_ready, slowest_ack) + link_ns(h, req_node) +
            t.response_return;

  // In-node sharers are refreshed in place like ca_write's local pass
  // (which invalidates them at no extra accounted cost).
  const CacheArray::Ref entry = l3.lookup(line);
  assert(entry && "home_update requires a present L3 entry");
  std::uint32_t others = entry.core_valid() & ~bit_of(local);
  const bool local_sharers = others != 0;
  while (others != 0) {
    const int owner_local = std::countr_zero(others);
    others &= others - 1;
    snoop_core(m_.topo.global_core(socket, owner_local), line, Mesif::kShared,
               obs::LineOp::kSnoopUpdate);
    m_.counters.bump(Ctr::kUpdatesSent);
    metric(MC::kCboUpdateSent);
  }
  // The writer owns the newest data.  Remote copies survive the update, so
  // the node state is Owned (dirty-shared) rather than Modified.
  obs_transition(obs::Level::kL3, req_node, line, entry.state(),
                 obs::LineOp::kLocalStore,
                 remote_copy ? Mesif::kOwned : Mesif::kModified);
  entry.state() = remote_copy ? Mesif::kOwned : Mesif::kModified;
  entry.core_valid() |= bit_of(local);
  fill.node_state = entry.state();
  fill.core_state =
      (remote_copy || local_sharers) ? Mesif::kOwned : Mesif::kModified;

  if (directory_on()) {
    // Memory is stale after an update, so `shared` is never recorded: the
    // only safe states are remote-invalid (everything lives at home) and
    // snoop-all.
    const DirState next = (req_node == h && !remote_copy)
                              ? DirState::kRemoteInvalid
                              : DirState::kSnoopAll;
    if (home.ha->directory.set(line, next)) {
      m_.counters.bump(Ctr::kDirectoryUpdates);
      metric(MC::kHaDirectoryUpdate);
      if (tracer_ != nullptr) {
        tracer_->leaf(TComp::kDirectory, "dir_update_ecc", t.dir_update);
      }
      fill.ns += t.dir_update;
    }
    if (hitme_on()) home.ha->hitme.erase(line);
  }
  return fill;
}

// --- flush / placement helpers ---------------------------------------------------

double CoherenceEngine::flush_line(PhysAddr addr) {
  if (tracer_ == nullptr) return flush_impl(addr);
  tracer_->begin_access('F', /*core=*/-1, line_of(addr));
  const double ns = flush_impl(addr);
  tracer_->end_access(ns, "flush");
  return ns;
}

double CoherenceEngine::flush_impl(PhysAddr addr) {
  const LineAddr line = line_of(addr);
  bool dirty = false;
  for (const NumaNode& node : m_.topo.nodes()) {
    CacheArray& l3 = m_.l3_slice(node.socket, m_.slice_for(node.id, line));
    if (auto entry = l3.erase(line)) {
      dirty |= is_dirty(entry->state);
      obs_transition(obs::Level::kL3, node.id, line, entry->state,
                     obs::LineOp::kFlush, Mesif::kInvalid);
      std::uint32_t cv = entry->core_valid;
      while (cv != 0) {
        const int owner_local = std::countr_zero(cv);
        cv &= cv - 1;
        dirty |= invalidate_core(m_.topo.global_core(node.socket, owner_local),
                                 line, obs::LineOp::kFlush);
      }
    }
  }
  if (dirty) writeback(line, /*clears_directory=*/true);
  if (directory_on()) {
    auto home = m_.home_of(line);
    if (home.ha->directory.set(line, DirState::kRemoteInvalid)) {
      m_.counters.bump(Ctr::kDirectoryUpdates);
      metric(MC::kHaDirectoryUpdate);
    }
    if (hitme_on()) home.ha->hitme.erase(line);
  }
  if (tracer_ != nullptr) {
    tracer_->leaf(TComp::kCbo, "flush_l3", m_.timing.l3_base);
    if (dirty) {
      tracer_->leaf(TComp::kDram, "flush_dram_write", m_.timing.dram_page_empty);
    }
  }
  return m_.timing.l3_base + (dirty ? m_.timing.dram_page_empty : 0.0);
}

void CoherenceEngine::evict_core_caches(int core) {
  CoreCaches& cc = m_.cores[static_cast<std::size_t>(core)];
  // L1 first so dirty L1 lines land in the L3 via the same path as L2 lines.
  cc.l1.flush([&](const CacheEntry& entry) { handle_l2_victim(core, entry); });
  cc.l2.flush([&](const CacheEntry& entry) { handle_l2_victim(core, entry); });
}

void CoherenceEngine::flush_node_l3(int node) {
  const NumaNode& n = m_.topo.node(node);
  for (int slice : n.local_slices) {
    m_.l3_slice(n.socket, slice).flush([&](const CacheEntry& entry) {
      handle_l3_victim(n.socket, node, entry);
    });
  }
}

}  // namespace hsw
