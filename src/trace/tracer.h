// Per-stream transaction tracer: the engine-facing span builder.
//
// One Tracer instance belongs to one System (the engine is single-threaded
// per System; parallel sweeps give every sweep point its own System and its
// own Tracer, identified by a deterministically assigned stream id).  The
// engine emits spans through the builder methods while it composes an
// access's latency; all methods are no-ops unless an access is open, so
// placement helpers (writebacks, evictions) can run with a tracer attached
// without producing orphan spans.
//
// Finished records land in a bounded per-tracer buffer (oldest records are
// dropped first once `capacity` is reached — deterministically, since each
// stream's record sequence does not depend on scheduling).  A TraceSink
// (sink.h) later absorbs the buffers of many tracers and merges them by
// (stream, seq) into a stable order.
//
// Modes:
//   kAttribution — per-access component breakdown only; the span tree is
//                  built in scratch storage and recycled (no retention).
//   kFull        — breakdown plus retained TraceRecords for export.
//
// When no tracer is attached the engine's hot path stays a null-pointer
// check per flow (guarded by the simbench tracing-overhead benchmarks).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "trace/span.h"

namespace hsw::trace {

class Tracer {
 public:
  enum class Mode : std::uint8_t { kAttribution, kFull };

  explicit Tracer(Mode mode = Mode::kFull, std::uint32_t stream = 0,
                  std::size_t capacity = kDefaultCapacity)
      : mode_(mode), stream_(stream), capacity_(capacity) {}

  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  // --- engine-facing emission API -------------------------------------------
  void begin_access(char op, int core, std::uint64_t line);
  void leaf(Component comp, const char* name, double cost);
  void open_group(Component comp, const char* name);
  void close_group(double total);
  void open_parallel(const char* name);
  void open_leg(const char* name);
  void close_leg();

  // How a parallel race resolved: every leg gates the join (snoop responses
  // collected at the HA), only the most recently closed leg gates it (a
  // cache-to-cache forward won), or none do (an off-critical-path aside).
  enum class Join : std::uint8_t { kAll, kWinner, kNone };
  void close_parallel(Join join);

  // Finishes the open access.  Returns the attribution of this access; the
  // pointer stays valid until the next begin_access on this tracer.
  const AccessAttribution* end_access(double ns, const char* source);

  [[nodiscard]] bool recording() const { return recording_; }

  // --- results ---------------------------------------------------------------
  [[nodiscard]] const AccessAttribution& last_attribution() const {
    return attribution_;
  }
  // kFull only; nullptr if nothing recorded yet.
  [[nodiscard]] const TraceRecord* last_record() const {
    return records_.empty() ? nullptr : &records_.back();
  }
  [[nodiscard]] const std::deque<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint32_t stream() const { return stream_; }
  [[nodiscard]] Mode mode() const { return mode_; }

  // Moves the retained records out (used by TraceSink::absorb).
  std::deque<TraceRecord> take_records();

 private:
  // Returns the span list currently receiving emissions.
  std::vector<Span>& sink_spans();

  Mode mode_;
  std::uint32_t stream_;
  std::size_t capacity_;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;

  bool recording_ = false;
  TraceRecord current_;
  // Stack of open containers (group / parallel / leg) into current_.spans.
  // Indices into a flat ownership chain would dangle across vector growth,
  // so open containers are kept as detached nodes and spliced on close.
  std::vector<Span> open_;

  AccessAttribution attribution_;
  std::deque<TraceRecord> records_;
};

}  // namespace hsw::trace
