#include "trace/sink.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace hsw::trace {

namespace {

// Deterministic double formatting: the same double always prints the same
// bytes, so traces diff cleanly across job counts.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

struct JsonWriter {
  std::FILE* f;
  bool first = true;

  void event_prefix() {
    std::fprintf(f, "%s  ", first ? "\n" : ",\n");
    first = false;
  }

  void complete(const char* name, std::uint32_t pid, unsigned tid, double ts,
                double dur, const char* cat, const std::string& args) {
    event_prefix();
    std::fprintf(f,
                 "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
                 "\"ts\":%s,\"dur\":%s,\"cat\":\"%s\"%s}",
                 name, pid, tid, fmt(ts).c_str(), fmt(std::max(dur, 0.0)).c_str(),
                 cat, args.c_str());
  }

  void instant(const char* name, std::uint32_t pid, unsigned tid, double ts,
               const char* cat, const std::string& args) {
    event_prefix();
    std::fprintf(f,
                 "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,"
                 "\"tid\":%u,\"ts\":%s,\"cat\":\"%s\"%s}",
                 name, pid, tid, fmt(ts).c_str(), cat, args.c_str());
  }

  void meta(const char* kind, std::uint32_t pid, unsigned tid,
            const std::string& name) {
    event_prefix();
    if (tid == 0 && std::string(kind) == "process_name") {
      std::fprintf(f,
                   "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                   "\"args\":{\"name\":\"%s\"}}",
                   pid, name.c_str());
    } else {
      std::fprintf(f,
                   "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                   "\"args\":{\"name\":\"%s\"}}",
                   kind, pid, tid, name.c_str());
    }
  }
};

std::string cost_args(double cost, bool gating) {
  std::string args = ",\"args\":{\"cost_ns\":" + fmt(cost);
  if (!gating) args += ",\"critical_path\":false";
  args += "}";
  return args;
}

// Emits the span tree of one record.  Mirrors fold(): serial spans advance
// the cursor, parallel legs fork at it (each leg on its own track).
double emit_spans(JsonWriter& w, const std::vector<Span>& spans, double t,
                  double base, std::uint32_t pid, unsigned tid,
                  unsigned& next_leg_tid) {
  for (const Span& span : spans) {
    switch (span.kind) {
      case Span::Kind::kLeaf:
        if (span.cost > 0.0) {
          w.complete(span.name, pid, tid, base + t, span.cost,
                     to_string(span.comp), cost_args(span.cost, true));
        } else {
          w.instant(span.name, pid, tid, base + t, to_string(span.comp),
                    cost_args(span.cost, true));
        }
        t += span.cost;
        break;
      case Span::Kind::kGroup: {
        w.complete(span.name, pid, tid, base + t, span.cost,
                   to_string(span.comp), cost_args(span.cost, true));
        unsigned sub = next_leg_tid;
        emit_spans(w, span.children, 0.0, base + t, pid, tid, sub);
        t += span.cost;
        break;
      }
      case Span::Kind::kParallel: {
        const double join = fold(t, span);
        w.complete(span.name, pid, tid, base + t, join - t, "parallel",
                   cost_args(join - t, true));
        for (const Span& leg : span.children) {
          const unsigned leg_tid = next_leg_tid++;
          const double leg_end = fold(t, leg.children);
          w.complete(leg.name, pid, leg_tid, base + t, leg_end - t, "leg",
                     cost_args(leg_end - t, leg.gating));
          unsigned sub = next_leg_tid;
          emit_spans(w, leg.children, t, base, pid, leg_tid, sub);
          next_leg_tid = std::max(next_leg_tid, sub);
        }
        t = join;
        break;
      }
      case Span::Kind::kLeg:
        t = emit_spans(w, span.children, t, base, pid, tid, next_leg_tid);
        break;
    }
  }
  return t;
}

}  // namespace

void TraceSink::absorb(Tracer&& tracer) {
  std::deque<TraceRecord> records = tracer.take_records();
  const std::lock_guard<std::mutex> lock(mutex_);
  dropped_ += tracer.dropped();
  records_.insert(records_.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
}

std::vector<TraceRecord> TraceSink::merged() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceRecord> sorted = records_;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              if (a.stream != b.stream) return a.stream < b.stream;
              return a.seq < b.seq;
            });
  return sorted;
}

std::uint64_t TraceSink::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::size_t TraceSink::record_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

bool TraceSink::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return false;
  }
  const std::vector<TraceRecord> records = merged();

  std::fprintf(f, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
  JsonWriter w{f};

  // One viewer "process" per stream; transactions laid end to end with a
  // small gap so consecutive accesses are visually distinct.
  std::map<std::uint32_t, double> stream_cursor;
  std::map<std::uint32_t, bool> stream_named;
  constexpr double kGap = 20.0;

  for (const TraceRecord& r : records) {
    if (!stream_named[r.stream]) {
      stream_named[r.stream] = true;
      w.meta("process_name", r.stream, 0,
             "stream " + std::to_string(r.stream));
    }
    double& cursor = stream_cursor[r.stream];
    char title[128];
    std::snprintf(title, sizeof(title),
                  "%c core%d line 0x%" PRIx64 " \\u2192 %s", r.op, r.core,
                  r.line, r.source);
    std::string args = ",\"args\":{\"ns\":" + fmt(r.ns) +
                       ",\"seq\":" + std::to_string(r.seq) + "}";
    w.complete(title, r.stream, 0, cursor, r.ns, "transaction", args);
    unsigned next_leg_tid = 1;
    emit_spans(w, r.spans, 0.0, cursor, r.stream, 0, next_leg_tid);
    cursor += r.ns + kGap;
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

bool TraceSink::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "stream,seq,op,core,line,source,total_ns,depth,kind,component,"
               "name,cost_ns,begin_ns,gating\n");

  struct Row {
    std::FILE* f;
    const TraceRecord* r;

    void emit(const std::vector<Span>& spans, double t, int depth,
              bool gating) {
      for (const Span& span : spans) {
        const char* kind = "leaf";
        double end = t;
        switch (span.kind) {
          case Span::Kind::kLeaf: end = t + span.cost; break;
          case Span::Kind::kGroup: kind = "group"; end = t + span.cost; break;
          case Span::Kind::kParallel:
            kind = "parallel";
            end = fold(t, span);
            break;
          case Span::Kind::kLeg:
            kind = "leg";
            end = fold(t, span.children);
            break;
        }
        std::fprintf(f, "%u,%" PRIu64 ",%c,%d,0x%" PRIx64 ",%s,%s,%d,%s,%s,"
                        "\"%s\",%s,%s,%d\n",
                     r->stream, r->seq, r->op, r->core, r->line, r->source,
                     fmt(r->ns).c_str(), depth, kind,
                     span.kind == Span::Kind::kParallel ||
                             span.kind == Span::Kind::kLeg
                         ? ""
                         : to_string(span.comp),
                     span.name, fmt(end - t).c_str(), fmt(t).c_str(),
                     gating ? 1 : 0);
        switch (span.kind) {
          case Span::Kind::kLeaf:
            break;
          case Span::Kind::kGroup:
            emit(span.children, t, depth + 1, gating);
            break;
          case Span::Kind::kParallel:
            for (const Span& leg : span.children) {
              std::vector<Span> one{leg};
              emit(one, t, depth + 1, gating && leg.gating);
            }
            break;
          case Span::Kind::kLeg:
            emit(span.children, t, depth + 1, gating);
            break;
        }
        if (span.kind != Span::Kind::kLeg) t = end;
      }
    }
  };

  const std::vector<TraceRecord> records = merged();
  for (const TraceRecord& r : records) {
    Row row{f, &r};
    row.emit(r.spans, 0.0, 0, true);
  }
  std::fclose(f);
  return true;
}

bool TraceSink::write(const std::string& path) const {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    return write_csv(path);
  }
  return write_chrome_json(path);
}

}  // namespace hsw::trace
