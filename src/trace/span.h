// Transaction-level protocol spans.
//
// Every simulated memory access composes its latency from ~25 timing
// constants (coh/timing.h): costs are summed along the serial protocol path
// and max()-ed across parallel legs (a DRAM read racing snoop responses).
// The engine used to throw that composition away and return only a scalar
// `ns`; a Span tree preserves it, naming each leg of the protocol —
// which ring segment, which QPI crossing, which directory or HitME probe,
// which DRAM read (and its page outcome) an access actually paid for.
//
// The tree replays the engine's arithmetic *exactly*:
//
//   * a kLeaf holds the very double the engine added to its running total;
//   * a kGroup holds a pre-summed quantity the engine added as one term
//     (e.g. a peer CBo's handling time); its children fold from zero and
//     must reproduce the group's cost bit for bit;
//   * a kParallel node holds racing kLeg children that fork at the current
//     time; the join is the max over the *gating* legs (legs that lost the
//     race to a cache-to-cache forward are kept for visibility but marked
//     non-gating and excluded from the join).
//
// fold() re-runs the same left-associated additions and the same max() the
// engine ran, so `fold(record) == AccessResult.ns` holds with exact double
// equality — the attribution invariant tests/trace/ enforces.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hsw::trace {

// Protocol component a span's cost is attributed to.
enum class Component : std::uint8_t {
  kCore,       // L1/L2 hits and dirty-data extraction out of a core
  kCbo,        // CBo pipeline / CA slice tag lookups
  kRing,       // on-die ring segments (core->CBo, CA->HA, cluster bridge)
  kQpi,        // QPI link crossings
  kHa,         // home-agent ingress, processing, completion, broadcasts
  kDirectory,  // in-memory directory lookups / ECC-bit updates
  kHitme,      // HitME directory-cache probes
  kDram,       // DRAM reads and writebacks
  kCoreSnoop,  // core-valid-bit snoops (CBo -> core round trips)
  kCount,
};

inline constexpr std::size_t kComponentCount =
    static_cast<std::size_t>(Component::kCount);

[[nodiscard]] const char* to_string(Component c);

struct Span {
  enum class Kind : std::uint8_t {
    kLeaf,      // one cost term, added serially
    kGroup,     // pre-summed cost added as one term; children fold from 0
    kParallel,  // racing legs forking at the current time; join = max
    kLeg,       // one leg of a kParallel parent
  };

  Kind kind = Kind::kLeaf;
  Component comp = Component::kCore;
  const char* name = "";  // static string supplied by the engine
  double cost = 0.0;      // kLeaf: term added; kGroup: pre-summed total
  bool gating = true;     // kLeg only: participates in the join max
  std::vector<Span> children;
};

// One traced memory transaction.  (stream, seq) is the transaction id: the
// stream is assigned deterministically by the dispatcher (e.g. sweep-point
// index), the sequence number counts accesses within the stream — so merged
// traces are stable for any `--jobs` value.
struct TraceRecord {
  std::uint32_t stream = 0;
  std::uint64_t seq = 0;
  char op = 'R';  // 'R' read, 'W' write, 'F' flush
  int core = -1;
  std::uint64_t line = 0;       // line address (addr >> 6)
  double ns = 0.0;              // the engine's reported latency
  const char* source = "";      // ServiceSource name
  std::vector<Span> spans;      // top-level serial chain; fold(0, spans) == ns
};

// Replays the engine's arithmetic over a span (sequence): left-associated
// additions for serial terms, max over gating legs for parallel joins.
[[nodiscard]] double fold(double t, const Span& span);
[[nodiscard]] double fold(double t, const std::vector<Span>& spans);

// True iff every kGroup's children fold (from zero) to exactly its cost and
// fold(0, record.spans) == record.ns with exact double equality.
[[nodiscard]] bool recomposes_exactly(const TraceRecord& record);

// Critical-path latency attribution: per-component buckets over the spans
// the access actually waited for (losing parallel legs excluded; a kGroup's
// cost is attributed through its children).  `total` replays the fold and
// equals the access's `ns` exactly; the per-component buckets are display
// aggregations and may differ from `total` by floating-point reassociation
// (a few ulps).
struct AccessAttribution {
  std::array<double, kComponentCount> component_ns{};
  double total = 0.0;

  [[nodiscard]] double component(Component c) const {
    return component_ns[static_cast<std::size_t>(c)];
  }
};

[[nodiscard]] AccessAttribution attribute(const std::vector<Span>& spans);

}  // namespace hsw::trace
