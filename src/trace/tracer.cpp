#include "trace/tracer.h"

#include <cassert>
#include <utility>

namespace hsw::trace {

void Tracer::begin_access(char op, int core, std::uint64_t line) {
  // A dangling open access (an engine path that returned without closing)
  // would silently corrupt the next record; drop it loudly in debug builds.
  assert(!recording_ && "begin_access with an access still open");
  current_ = TraceRecord{};
  current_.stream = stream_;
  current_.seq = seq_++;
  current_.op = op;
  current_.core = core;
  current_.line = line;
  open_.clear();
  recording_ = true;
}

std::vector<Span>& Tracer::sink_spans() {
  return open_.empty() ? current_.spans : open_.back().children;
}

void Tracer::leaf(Component comp, const char* name, double cost) {
  if (!recording_) return;
  Span span;
  span.kind = Span::Kind::kLeaf;
  span.comp = comp;
  span.name = name;
  span.cost = cost;
  sink_spans().push_back(std::move(span));
}

void Tracer::open_group(Component comp, const char* name) {
  if (!recording_) return;
  Span span;
  span.kind = Span::Kind::kGroup;
  span.comp = comp;
  span.name = name;
  open_.push_back(std::move(span));
}

void Tracer::close_group(double total) {
  if (!recording_) return;
  assert(!open_.empty() && open_.back().kind == Span::Kind::kGroup);
  Span span = std::move(open_.back());
  open_.pop_back();
  span.cost = total;
  sink_spans().push_back(std::move(span));
}

void Tracer::open_parallel(const char* name) {
  if (!recording_) return;
  Span span;
  span.kind = Span::Kind::kParallel;
  span.name = name;
  open_.push_back(std::move(span));
}

void Tracer::open_leg(const char* name) {
  if (!recording_) return;
  assert(!open_.empty() && open_.back().kind == Span::Kind::kParallel);
  Span span;
  span.kind = Span::Kind::kLeg;
  span.name = name;
  open_.push_back(std::move(span));
}

void Tracer::close_leg() {
  if (!recording_) return;
  assert(!open_.empty() && open_.back().kind == Span::Kind::kLeg);
  Span span = std::move(open_.back());
  open_.pop_back();
  assert(!open_.empty() && open_.back().kind == Span::Kind::kParallel);
  open_.back().children.push_back(std::move(span));
}

void Tracer::close_parallel(Join join) {
  if (!recording_) return;
  assert(!open_.empty() && open_.back().kind == Span::Kind::kParallel);
  Span span = std::move(open_.back());
  open_.pop_back();
  switch (join) {
    case Join::kAll:
      break;
    case Join::kWinner:
      // The engine returned through the most recently closed leg (a
      // cache-to-cache forward): earlier legs happened — their state
      // transitions are real — but never gated the requester.
      for (std::size_t i = 0; i + 1 < span.children.size(); ++i) {
        span.children[i].gating = false;
      }
      break;
    case Join::kNone:
      for (Span& leg : span.children) leg.gating = false;
      break;
  }
  sink_spans().push_back(std::move(span));
}

const AccessAttribution* Tracer::end_access(double ns, const char* source) {
  if (!recording_) return nullptr;
  assert(open_.empty() && "end_access with containers still open");
  recording_ = false;
  current_.ns = ns;
  current_.source = source;
  attribution_ = attribute(current_.spans);
  if (mode_ == Mode::kFull) {
    if (records_.size() >= capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(std::move(current_));
  }
  return &attribution_;
}

std::deque<TraceRecord> Tracer::take_records() {
  return std::exchange(records_, {});
}

}  // namespace hsw::trace
