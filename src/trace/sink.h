// Trace collection and export.
//
// A TraceSink absorbs the bounded record buffers of many Tracers (one per
// sweep point / System, each with its own deterministically assigned stream
// id) and merges them into a stable order keyed by (stream, seq).  Worker
// threads may absorb in any order — the merge sorts, so the exported bytes
// are identical for any `--jobs` value (asserted by the trace_determinism
// CTest).
//
// Exporters:
//   * write_chrome_json — Chrome-trace/Perfetto JSON ("traceEvents").  Open
//     the file at https://ui.perfetto.dev; one process per stream, the main
//     protocol path on track 0 and each racing leg on its own track.  The
//     viewer's microsecond is one simulated nanosecond.
//   * write_csv — one row per span for scripted analysis.
//   * write — dispatches on the file extension (.csv -> CSV, else JSON).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "trace/tracer.h"

namespace hsw::trace {

class TraceSink {
 public:
  // Moves `tracer`'s retained records into the sink (thread-safe).
  void absorb(Tracer&& tracer);

  // All absorbed records sorted by (stream, seq).
  [[nodiscard]] std::vector<TraceRecord> merged() const;

  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t record_count() const;

  // Both return false (with a message on stderr) if the file cannot be
  // written.
  bool write_chrome_json(const std::string& path) const;
  bool write_csv(const std::string& path) const;
  bool write(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceRecord> records_;
  std::uint64_t dropped_ = 0;
};

}  // namespace hsw::trace
