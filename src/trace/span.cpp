#include "trace/span.h"

#include <algorithm>

namespace hsw::trace {

const char* to_string(Component c) {
  switch (c) {
    case Component::kCore: return "core";
    case Component::kCbo: return "cbo";
    case Component::kRing: return "ring";
    case Component::kQpi: return "qpi";
    case Component::kHa: return "ha";
    case Component::kDirectory: return "directory";
    case Component::kHitme: return "hitme";
    case Component::kDram: return "dram";
    case Component::kCoreSnoop: return "core-snoop";
    case Component::kCount: break;
  }
  return "?";
}

double fold(double t, const Span& span) {
  switch (span.kind) {
    case Span::Kind::kLeaf:
    case Span::Kind::kGroup:
      // A group's cost was pre-summed by the engine and added as one term;
      // its children are validated separately (recomposes_exactly).
      return t + span.cost;
    case Span::Kind::kParallel: {
      // Legs fork at `t`; the join is the max over gating legs.  `t` itself
      // is the floor: the engine's running max always starts at the fork
      // time (an empty parallel node, or one with only non-gating legs,
      // leaves the clock unchanged).
      double join = t;
      for (const Span& leg : span.children) {
        if (leg.gating) join = std::max(join, fold(t, leg.children));
      }
      return join;
    }
    case Span::Kind::kLeg:
      return fold(t, span.children);
  }
  return t;
}

double fold(double t, const std::vector<Span>& spans) {
  for (const Span& span : spans) t = fold(t, span);
  return t;
}

namespace {

bool groups_consistent(const std::vector<Span>& spans) {
  for (const Span& span : spans) {
    if (span.kind == Span::Kind::kGroup &&
        fold(0.0, span.children) != span.cost) {
      return false;
    }
    if (!groups_consistent(span.children)) return false;
  }
  return true;
}

// Walks the spans with the running absolute time `t`, adding every
// critical-path leaf cost to its component bucket.  Returns the new time
// (identical to fold()).
double attribute_walk(double t, const std::vector<Span>& spans,
                      AccessAttribution& out);

double attribute_walk(double t, const Span& span, AccessAttribution& out) {
  switch (span.kind) {
    case Span::Kind::kLeaf:
      out.component_ns[static_cast<std::size_t>(span.comp)] += span.cost;
      return t + span.cost;
    case Span::Kind::kGroup:
      // Attribute through the children: a peer CBo's handling time splits
      // into its slice lookup, core snoop, and data-extraction parts.
      attribute_walk(0.0, span.children, out);
      return t + span.cost;
    case Span::Kind::kParallel: {
      // Only the winning gating leg is on the critical path; the fork time
      // itself is the floor (if no leg outlasts it, the access never waited
      // on the race).  Ties keep the first leg reaching the max, matching
      // the engine's std::max accumulation.
      const Span* winner = nullptr;
      double join = t;
      for (const Span& leg : span.children) {
        if (!leg.gating) continue;
        const double end = fold(t, leg.children);
        if (end > join) {
          winner = &leg;
          join = end;
        }
      }
      if (winner != nullptr) attribute_walk(t, winner->children, out);
      return join;
    }
    case Span::Kind::kLeg:
      return attribute_walk(t, span.children, out);
  }
  return t;
}

double attribute_walk(double t, const std::vector<Span>& spans,
                      AccessAttribution& out) {
  for (const Span& span : spans) t = attribute_walk(t, span, out);
  return t;
}

}  // namespace

bool recomposes_exactly(const TraceRecord& record) {
  if (!groups_consistent(record.spans)) return false;
  return fold(0.0, record.spans) == record.ns;
}

AccessAttribution attribute(const std::vector<Span>& spans) {
  AccessAttribution attribution;
  attribution.total = attribute_walk(0.0, spans, attribution);
  return attribution;
}

}  // namespace hsw::trace
