#include "sim/counters.h"

namespace hsw {
namespace {

constexpr std::array<std::string_view, kCtrCount> kNames = {
    "mem_load_uops_retired.l1_hit",
    "mem_load_uops_retired.l2_hit",
    "mem_load_uops_retired.l3_hit",
    "mem_load_uops_l3_miss_retired.local_dram",
    "mem_load_uops_l3_miss_retired.remote_dram",
    "mem_load_uops_l3_miss_retired.remote_fwd",
    "uncore_cbo.snoops_sent",
    "uncore_ha.snoop_broadcasts",
    "uncore_ha.directory_lookups",
    "uncore_ha.directory_updates",
    "uncore_ha.hitme_hit",
    "uncore_ha.hitme_miss",
    "uncore_ha.hitme_alloc",
    "uncore_ha.hitme_evict",
    "uncore_qpi.data_flits",
    "uncore_qpi.snoop_flits",
    "uncore_imc.cas_count_read",
    "uncore_imc.cas_count_write",
    "uncore_imc.page_hit",
    "uncore_imc.page_miss",
    "uncore_cbo.l3_evictions",
    "uncore_cbo.l3_writebacks",
    "uncore_cbo.core_snoops",
    "uncore_cbo.updates_sent",
};

}  // namespace

std::string_view ctr_name(Ctr c) {
  return kNames[static_cast<std::size_t>(c)];
}

std::optional<std::uint64_t> CounterSet::value(std::string_view name) const {
  for (std::size_t i = 0; i < kCtrCount; ++i) {
    if (kNames[i] == name) return values_[i];
  }
  return std::nullopt;
}

CounterSet::Snapshot CounterSet::diff(const Snapshot& before) const {
  Snapshot result{};
  for (std::size_t i = 0; i < kCtrCount; ++i) {
    result[i] = values_[i] - before[i];
  }
  return result;
}

std::map<std::string, std::uint64_t> CounterSet::named() const {
  std::map<std::string, std::uint64_t> result;
  for (std::size_t i = 0; i < kCtrCount; ++i) {
    if (values_[i] != 0) result.emplace(std::string(kNames[i]), values_[i]);
  }
  return result;
}

}  // namespace hsw
