#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace hsw {

void EventQueue::schedule_at(SimTime when, std::int32_t key, Action action) {
  assert(when >= now_ && "cannot schedule into the past");
  heap_.push(Event{when, key, next_seq_++, std::move(action)});
}

void EventQueue::schedule_after(SimTime delay, std::int32_t key, Action action) {
  assert(delay >= 0.0);
  schedule_at(now_ + delay, key, std::move(action));
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (!heap_.empty() && executed < max_events) {
    // priority_queue::top() is const&; move out via const_cast is UB-adjacent,
    // so copy the action handle (std::function) instead.
    Event event = heap_.top();
    heap_.pop();
    now_ = event.when;
    event.action();
    ++executed;
  }
  return executed;
}

std::uint64_t EventQueue::run_until(SimTime until) {
  std::uint64_t executed = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    Event event = heap_.top();
    heap_.pop();
    now_ = event.when;
    event.action();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

void EventQueue::clear() {
  heap_ = {};
  now_ = 0.0;
  next_seq_ = 0;
}

}  // namespace hsw
