#include "sim/event_queue.h"

namespace hsw {

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  return kernel_.run([](Action& action) { action(); }, max_events);
}

std::uint64_t EventQueue::run_until(SimTime until) {
  return kernel_.run_until(until, [](Action& action) { action(); });
}

}  // namespace hsw
