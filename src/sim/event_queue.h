// Discrete-event simulation kernel.
//
// The latency microbenchmarks are sequential (one outstanding access), but
// the aggregate-bandwidth experiments model many cores with overlapping
// transactions.  The kernel is a classic calendar: events are (time, key,
// seq, action) tuples popped in time order; ties break first by the caller's
// `key` (the exec engine passes the issuing core id, so same-timestamp
// bursts from multiple cores interleave in core order, independent of the
// order the events happened to be scheduled in), then by insertion order —
// the simulation is deterministic either way.  Time is carried in
// nanoseconds as `double`, matching the paper's reporting unit (one core
// cycle @2.5 GHz = 0.4 ns).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hsw {

using SimTime = double;  // nanoseconds since simulation start

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedules `action` at absolute time `when` (must be >= now()).  `key`
  // orders same-timestamp events (smaller first); events with equal keys
  // keep insertion order.
  void schedule_at(SimTime when, Action action) {
    schedule_at(when, 0, std::move(action));
  }
  void schedule_at(SimTime when, std::int32_t key, Action action);
  // Schedules `action` `delay` nanoseconds from now.
  void schedule_after(SimTime delay, Action action) {
    schedule_after(delay, 0, std::move(action));
  }
  void schedule_after(SimTime delay, std::int32_t key, Action action);

  // Runs events until the queue drains or `max_events` is hit.  Returns the
  // number of events executed.
  std::uint64_t run(std::uint64_t max_events = ~0ull);
  // Runs events with time <= `until`.
  std::uint64_t run_until(SimTime until);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  void clear();

 private:
  struct Event {
    SimTime when;
    std::int32_t key;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hsw
