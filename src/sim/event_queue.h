// Discrete-event simulation kernel (type-erased front end).
//
// The latency microbenchmarks are sequential (one outstanding access), but
// the aggregate-bandwidth experiments model many cores with overlapping
// transactions.  The kernel is a classic calendar: events are (time, key,
// seq, action) tuples popped in time order; ties break first by the caller's
// `key` (the exec engine passes the issuing core id, so same-timestamp
// bursts from multiple cores interleave in core order, independent of the
// order the events happened to be scheduled in), then by insertion order —
// the simulation is deterministic either way.  Time is carried in
// nanoseconds as `double`, matching the paper's reporting unit (one core
// cycle @2.5 GHz = 0.4 ns).
//
// EventQueue is the std::function convenience wrapper over
// sim/event_kernel.h's EventKernel; hot loops that schedule millions of
// events (the exec engine) use EventKernel directly with a POD payload so
// scheduling never heap-allocates.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/event_kernel.h"

namespace hsw {

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedules `action` at absolute time `when` (must be >= now()).  `key`
  // orders same-timestamp events (smaller first); events with equal keys
  // keep insertion order.
  void schedule_at(SimTime when, Action action) {
    schedule_at(when, 0, std::move(action));
  }
  void schedule_at(SimTime when, std::int32_t key, Action action) {
    kernel_.schedule_at(when, key, std::move(action));
  }
  // Schedules `action` `delay` nanoseconds from now.
  void schedule_after(SimTime delay, Action action) {
    schedule_after(delay, 0, std::move(action));
  }
  void schedule_after(SimTime delay, std::int32_t key, Action action) {
    kernel_.schedule_after(delay, key, std::move(action));
  }

  // Pre-sizes the calendar so steady-state scheduling never reallocates.
  void reserve(std::size_t events) { kernel_.reserve(events); }

  // Runs events until the queue drains or `max_events` is hit.  Returns the
  // number of events executed.
  std::uint64_t run(std::uint64_t max_events = ~0ull);
  // Runs events with time <= `until`.
  std::uint64_t run_until(SimTime until);

  [[nodiscard]] SimTime now() const { return kernel_.now(); }
  [[nodiscard]] bool empty() const { return kernel_.empty(); }
  [[nodiscard]] std::size_t pending() const { return kernel_.pending(); }
  // Resets the queue to a fresh state: pending events dropped, now() back
  // to 0, insertion-order tie-breaking restarted.
  void clear() { kernel_.clear(); }

 private:
  EventKernel<Action> kernel_;
};

}  // namespace hsw
