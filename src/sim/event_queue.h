// Discrete-event simulation kernel.
//
// The latency microbenchmarks are sequential (one outstanding access), but
// the aggregate-bandwidth experiments model many cores with overlapping
// transactions.  The kernel is a classic calendar: events are (time, seq,
// action) triples popped in time order; ties break by insertion order so the
// simulation is deterministic.  Time is carried in nanoseconds as `double`,
// matching the paper's reporting unit (one core cycle @2.5 GHz = 0.4 ns).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hsw {

using SimTime = double;  // nanoseconds since simulation start

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedules `action` at absolute time `when` (must be >= now()).
  void schedule_at(SimTime when, Action action);
  // Schedules `action` `delay` nanoseconds from now.
  void schedule_after(SimTime delay, Action action);

  // Runs events until the queue drains or `max_events` is hit.  Returns the
  // number of events executed.
  std::uint64_t run(std::uint64_t max_events = ~0ull);
  // Runs events with time <= `until`.
  std::uint64_t run_until(SimTime until);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  void clear();

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hsw
