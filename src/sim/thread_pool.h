// Deterministic fork-join thread pool for embarrassingly parallel loops.
//
// The pool is intentionally work-stealing-free: `for_indexed(count, body)`
// hands out indices 0..count-1 from a single atomic counter and each body
// invocation writes its result into a pre-sized slot chosen by index.  The
// *schedule* (which thread runs which index) is nondeterministic, but as
// long as bodies only write to their own slot the *output* is bit-identical
// to a serial loop — which is what lets the sweep harness promise identical
// tables for --jobs 1 and --jobs N.
//
// Exceptions thrown by a body are captured and the one with the lowest
// index is rethrown from for_indexed() after the loop drains, so error
// reporting is deterministic too.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace hsw {

class ThreadPool {
 public:
  // `threads` is the total worker count including the calling thread;
  // 0 picks std::thread::hardware_concurrency().  A pool of 1 spawns no
  // threads and runs every loop inline (the serial path).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  // Runs body(i) for every i in [0, count).  The calling thread
  // participates; returns once all indices have executed.  If any body
  // throws, the remaining indices still run and the lowest-index exception
  // is rethrown here.
  void for_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void run_items(const std::function<void(std::size_t)>& body,
                 std::size_t count);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;  // guarded by mutex_
  std::size_t count_ = 0;                                   // guarded by mutex_
  std::uint64_t epoch_ = 0;                                 // guarded by mutex_
  bool stop_ = false;                                       // guarded by mutex_
  std::size_t active_ = 0;                                  // guarded by mutex_
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  std::exception_ptr error_;                                // guarded by mutex_
  std::size_t error_index_ = std::numeric_limits<std::size_t>::max();
};

// Convenience wrapper accepting any callable without an explicit
// std::function conversion at every call site.
template <typename Body>
void parallel_for_indexed(ThreadPool& pool, std::size_t count, Body&& body) {
  if (pool.thread_count() <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool.for_indexed(count, std::function<void(std::size_t)>(std::ref(body)));
}

}  // namespace hsw
