// Allocation-free discrete-event kernel.
//
// EventKernel<Payload> is the engine under sim/event_queue.h's EventQueue
// and the exec engine's fixed-vocabulary event records.  It keeps the exact
// calendar semantics the PR 5 tie-break tests froze — events pop in
// (timestamp, key, seq) order, `key` ordering same-timestamp events and
// `seq` (insertion order) breaking key ties — but replaces
// std::priority_queue<Event{std::function}> with:
//
//  * a flat binary heap of POD-friendly records, popped by *moving* out of
//    the vector (priority_queue::top() forces a copy of every payload);
//  * epoch batching: all events sharing the front timestamp are drained
//    from the heap in one pass into a sorted epoch buffer and then consumed
//    by cursor, so the heap is touched once per distinct timestamp instead
//    of once per event.  Same-timestamp rescheduling — the dominant pattern
//    in the exec engine, where completions re-issue at now() — bypasses the
//    heap entirely via an ordered insert into the live epoch;
//  * reserve(), so steady-state scheduling never allocates.
//
// The payload is opaque: dispatch is a caller-supplied callable invoked as
// `dispatch(payload)` with now() already advanced to the event's timestamp.
// With a trivially-copyable Payload the kernel performs no per-event heap
// allocation at all.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace hsw {

using SimTime = double;  // nanoseconds since simulation start

template <typename Payload>
class EventKernel {
 public:
  // Pre-sizes the future heap (and the epoch buffer a quarter of it).
  void reserve(std::size_t events) {
    heap_.reserve(events);
    epoch_.reserve(events / 4 + 1);
  }

  // Schedules `payload` at absolute time `when` (must be >= now()).  `key`
  // orders same-timestamp events (smaller first); events with equal keys
  // keep insertion order.
  void schedule_at(SimTime when, std::int32_t key, Payload payload) {
    assert(when >= now_ && "cannot schedule into the past");
    Record rec{when, key, next_seq_++, std::move(payload)};
    if (cursor_ < epoch_.size() && when == now_) {
      // The live epoch already holds every other event of this timestamp in
      // (key, seq) order.  The new record's seq is larger than all of
      // theirs, so an upper-bound insert by key keeps the global order
      // exact: before larger keys, after equal ones.
      const auto pos = std::upper_bound(
          epoch_.begin() + static_cast<std::ptrdiff_t>(cursor_), epoch_.end(),
          rec.key,
          [](std::int32_t k, const Record& r) { return k < r.key; });
      epoch_.insert(pos, std::move(rec));
      return;
    }
    heap_.push_back(std::move(rec));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  void schedule_after(SimTime delay, std::int32_t key, Payload payload) {
    assert(delay >= 0.0);
    schedule_at(now_ + delay, key, std::move(payload));
  }

  // Runs events until the kernel drains or `max_events` is hit.  Returns
  // the number of events executed.
  template <typename Dispatch>
  std::uint64_t run(Dispatch&& dispatch, std::uint64_t max_events = ~0ull) {
    std::uint64_t executed = 0;
    while (executed < max_events) {
      if (cursor_ == epoch_.size() && !begin_epoch()) break;
      Payload payload = std::move(epoch_[cursor_++].payload);
      dispatch(payload);
      ++executed;
    }
    return executed;
  }

  // Runs events with time <= `until`; time advances to `until` even if
  // fewer events exist.
  template <typename Dispatch>
  std::uint64_t run_until(SimTime until, Dispatch&& dispatch) {
    std::uint64_t executed = 0;
    for (;;) {
      if (cursor_ == epoch_.size()) {
        if (heap_.empty() || heap_.front().when > until) break;
        begin_epoch();
      } else if (now_ > until) {
        // A prior bounded run() stopped mid-epoch beyond this horizon.
        break;
      }
      Payload payload = std::move(epoch_[cursor_++].payload);
      dispatch(payload);
      ++executed;
    }
    if (now_ < until) now_ = until;
    return executed;
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const {
    return heap_.empty() && cursor_ == epoch_.size();
  }
  [[nodiscard]] std::size_t pending() const {
    return heap_.size() + (epoch_.size() - cursor_);
  }
  void clear() {
    heap_.clear();
    epoch_.clear();
    cursor_ = 0;
    now_ = 0.0;
    next_seq_ = 0;
  }

 private:
  struct Record {
    SimTime when;
    std::int32_t key;
    std::uint64_t seq;
    Payload payload;
  };
  struct Later {
    bool operator()(const Record& a, const Record& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };

  // Drains every heap record sharing the front timestamp into the epoch
  // buffer.  Successive pops come out in (key, seq) order, so the buffer is
  // sorted without a sort.  Returns false when the kernel is drained.
  bool begin_epoch() {
    epoch_.clear();
    cursor_ = 0;
    if (heap_.empty()) return false;
    const SimTime when = heap_.front().when;
    now_ = when;
    do {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      epoch_.push_back(std::move(heap_.back()));
      heap_.pop_back();
    } while (!heap_.empty() && heap_.front().when == when);
    return true;
  }

  std::vector<Record> heap_;   // future timestamps, binary-heap ordered
  std::vector<Record> epoch_;  // the current timestamp, (key, seq)-sorted
  std::size_t cursor_ = 0;     // next epoch record to dispatch
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hsw
