// Simulated performance counters.
//
// The paper identifies the directory-cache behaviour (Fig. 7) by reading
// MEM_LOAD_UOPS_L3_MISS_RETIRED:REMOTE_DRAM / :REMOTE_FWD.  The simulator
// exposes the same style of named monotonic counters; benches read/diff them
// exactly the way `perf` users do on real hardware.
//
// Counters are enum-indexed (the coherence engine bumps several per memory
// operation and sweeps issue tens of millions of operations); the perf-style
// event names are attached for reporting.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace hsw {

enum class Ctr : std::uint8_t {
  kLoadsL1Hit,
  kLoadsL2Hit,
  kLoadsL3Hit,
  kLoadsLocalDram,
  kLoadsRemoteDram,
  kLoadsRemoteFwd,
  kSnoopsSent,
  kSnoopBroadcasts,
  kDirectoryLookups,
  kDirectoryUpdates,
  kHitmeHit,
  kHitmeMiss,
  kHitmeAlloc,
  kHitmeEvict,
  kQpiDataFlits,
  kQpiSnoopFlits,
  kDramReads,
  kDramWrites,
  kDramPageHit,
  kDramPageMiss,
  kL3Evictions,
  kL3WritebacksToMem,
  kCoreSnoops,
  kUpdatesSent,
  kCount,
};

inline constexpr std::size_t kCtrCount = static_cast<std::size_t>(Ctr::kCount);

// perf-style event name of a counter.
[[nodiscard]] std::string_view ctr_name(Ctr c);

class CounterSet {
 public:
  void bump(Ctr c, std::uint64_t delta = 1) {
    values_[static_cast<std::size_t>(c)] += delta;
  }
  [[nodiscard]] std::uint64_t value(Ctr c) const {
    return values_[static_cast<std::size_t>(c)];
  }
  // Lookup by perf-style name.  Returns nullopt for unknown names so typos
  // fail loudly instead of reading as a plausible zero.
  [[nodiscard]] std::optional<std::uint64_t> value(std::string_view name) const;
  void reset() { values_.fill(0); }

  // Snapshot/diff support, mirroring how perf-counter deltas are taken
  // around a measured region.
  using Snapshot = std::array<std::uint64_t, kCtrCount>;
  [[nodiscard]] Snapshot snapshot() const { return values_; }
  [[nodiscard]] Snapshot diff(const Snapshot& before) const;

  // Named non-zero values (for reports).
  [[nodiscard]] std::map<std::string, std::uint64_t> named() const;

 private:
  Snapshot values_{};
};

}  // namespace hsw
