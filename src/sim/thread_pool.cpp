#include "sim/thread_pool.h"

namespace hsw {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_items(const std::function<void(std::size_t)>& body,
                           std::size_t count) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (i < error_index_) {
        error_index_ = i;
        error_ = std::current_exception();
      }
    }
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
      // Take the mutex so the notify cannot race ahead of the waiter's
      // predicate check in for_indexed().
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      // A worker that wakes after the loop drained sees body_ == nullptr
      // and goes back to sleep; `active_` keeps for_indexed() from
      // returning (and a new loop from starting) while any worker is
      // still inside run_items with this loop's body.
      body = body_;
      count = count_;
      if (body) ++active_;
    }
    if (body) {
      run_items(*body, count);
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::for_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    error_index_ = std::numeric_limits<std::size_t>::max();
    ++epoch_;
  }
  start_cv_.notify_all();
  run_items(body, count);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock,
                [&] { return completed_.load() == count && active_ == 0; });
  body_ = nullptr;
  count_ = 0;
  if (error_) std::rethrow_exception(error_);
}

}  // namespace hsw
