#include "obs/resource_stats.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <numeric>

#include "metrics/report.h"

namespace hsw::obs {
namespace {

// Same fixed float discipline as metrics::write_report: %.6f everywhere a
// double reaches the report, so bytes never depend on locale or platform.
void appendf(std::string& out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
}

}  // namespace

void ResourceStatsRecorder::bind(std::vector<std::string> names,
                                 std::vector<double> capacities_gbps) {
  if (names.size() == names_.size() && !names_.empty()) return;
  names_ = std::move(names);
  capacities_ = std::move(capacities_gbps);
  capacities_.resize(names_.size(), 0.0);
  usage_.assign(names_.size(), ResourceUsage{});
}

void ResourceStatsRecorder::record_point(ResourceUsage& u, double ns) {
  if (u.series_events++ % u.series_stride != 0) return;
  if (u.depth_series.size() >= 2 * kDepthSeriesCap) {
    // Stride-doubling decimation: keep every other retained point.  The
    // survivors are a function of event order alone, so the series is
    // byte-identical for any --jobs value.
    for (std::size_t i = 0; 2 * i < u.depth_series.size(); ++i) {
      u.depth_series[i] = u.depth_series[2 * i];
    }
    u.depth_series.resize((u.depth_series.size() + 1) / 2);
    u.series_stride *= 2;
  }
  u.depth_series.push_back(DepthSample{ns, u.depth()});
}

void ResourceStatsRecorder::settle(ResourceUsage& u, double now) {
  // Departures that happened before `now` are depth boundaries: close the
  // area strip up to each one, drop the request, and sample the series.
  while (!u.pending.empty() && u.pending.front() <= now) {
    const double at = u.pending.front();
    u.depth_area += static_cast<double>(u.depth()) * (at - u.mark);
    u.mark = at;
    u.pending.pop_front();
    record_point(u, at);
  }
  u.depth_area += static_cast<double>(u.depth()) * (now - u.mark);
  u.mark = now;
}

void ResourceStatsRecorder::on_service(std::size_t resource, double arrival_ns,
                                       double start_ns, double done_ns,
                                       double bytes) {
  if (finalized_ || resource >= usage_.size()) return;
  ResourceUsage& u = usage_[resource];
  settle(u, arrival_ns);

  const double wait = start_ns - arrival_ns;
  u.services += 1;
  u.bytes += bytes;
  u.busy_ns += done_ns - start_ns;
  u.wait_ns += wait;
  u.wait_max_ns = std::max(u.wait_max_ns, wait);
  u.residence_ns += done_ns - arrival_ns;
  u.wait_hist.add(wait);

  // FIFO: departures leave in arrival order, so the sorted invariant of
  // `pending` holds by construction.
  u.pending.push_back(done_ns);
  u.depth_max = std::max(u.depth_max, u.depth());
  record_point(u, arrival_ns);
  last_ns_ = std::max(last_ns_, done_ns);
}

void ResourceStatsRecorder::finalize(double now_ns) {
  if (finalized_) return;
  finalized_ = true;
  const double end = std::max(now_ns, last_ns_);
  for (ResourceUsage& u : usage_) {
    settle(u, end);
    u.pending.clear();
  }
  elapsed_ns_ = end;
}

void ResourceStatsHub::absorb(ResourceStatsRecorder&& recorder) {
  recorder.finalize();
  const std::lock_guard<std::mutex> lock(mutex_);
  recorders_.push_back(std::move(recorder));
}

std::size_t ResourceStatsHub::stream_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorders_.size();
}

MergedResourceStats ResourceStatsHub::merged() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MergedResourceStats m;
  m.streams = recorders_.size();
  if (recorders_.empty()) return m;

  // Fold in stream-id order, not absorb order: workers finish sweep points
  // in scheduling order, and the merged report must not care.
  std::vector<std::size_t> order(recorders_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return recorders_[a].stream() < recorders_[b].stream();
                   });

  for (const std::size_t i : order) {
    const ResourceStatsRecorder& r = recorders_[i];
    if (m.names.empty() && r.bound()) {
      m.names = r.names();
      m.capacities_gbps = r.capacities_gbps();
      m.usage.assign(m.names.size(), ResourceUsage{});
    }
    m.elapsed_ns += r.elapsed_ns();
    const std::size_t count = std::min(m.usage.size(), r.usage().size());
    for (std::size_t res = 0; res < count; ++res) {
      const ResourceUsage& from = r.usage()[res];
      ResourceUsage& to = m.usage[res];
      to.busy_ns += from.busy_ns;
      to.services += from.services;
      to.bytes += from.bytes;
      to.wait_ns += from.wait_ns;
      to.wait_max_ns = std::max(to.wait_max_ns, from.wait_max_ns);
      to.residence_ns += from.residence_ns;
      to.wait_hist.merge(from.wait_hist);
      to.depth_area += from.depth_area;
      to.depth_max = std::max(to.depth_max, from.depth_max);
      if (m.streams == 1) to.depth_series = from.depth_series;
    }
  }
  return m;
}

std::string render_resources_section(const MergedResourceStats& m) {
  std::string out;
  out.reserve(4096);
  appendf(out, "  \"resources\": {\n");
  appendf(out, "    \"hswsim_resources_version\": %d,\n",
          kResourceStatsVersion);
  appendf(out, "    \"streams\": %zu,\n", m.streams);
  appendf(out, "    \"elapsed_ns\": %.6f,\n", m.elapsed_ns);
  appendf(out, "    \"items\": [");
  for (std::size_t r = 0; r < m.usage.size(); ++r) {
    const ResourceUsage& u = m.usage[r];
    appendf(out, "%s\n      {\"name\": \"%s\", \"capacity_gbps\": %.6f,\n",
            r == 0 ? "" : ",", m.names[r].c_str(), m.capacities_gbps[r]);
    appendf(out,
            "       \"busy_ns\": %.6f, \"utilization\": %.6f, "
            "\"services\": %llu, \"bytes\": %.6f,\n",
            u.busy_ns, m.utilization(r),
            static_cast<unsigned long long>(u.services), u.bytes);
    appendf(out,
            "       \"arrivals_per_us\": %.6f, \"mean_service_ns\": %.6f,\n",
            m.arrivals_per_us(r), u.mean_service_ns());
    appendf(out,
            "       \"wait_mean_ns\": %.6f, \"wait_max_ns\": %.6f, "
            "\"wait_total_ns\": %.6f,\n",
            u.mean_wait_ns(), u.wait_max_ns, u.wait_ns);
    appendf(out,
            "       \"depth_mean\": %.6f, \"depth_max\": %llu, "
            "\"littles_depth\": %.6f,\n",
            m.mean_depth(r), static_cast<unsigned long long>(u.depth_max),
            m.littles_depth(r));
    appendf(out, "       \"wait_hist\": [");
    bool first = true;
    for (const auto& [key, count] : u.wait_hist.buckets()) {
      appendf(out, "%s[%.6f, %.6f, %llu]", first ? "" : ", ",
              LogHistogram::bucket_lower(key), LogHistogram::bucket_upper(key),
              static_cast<unsigned long long>(count));
      first = false;
    }
    appendf(out, "],\n");
    appendf(out, "       \"depth_series\": [");
    for (std::size_t i = 0; i < u.depth_series.size(); ++i) {
      appendf(out, "%s[%.6f, %llu]", i == 0 ? "" : ", ",
              u.depth_series[i].ns,
              static_cast<unsigned long long>(u.depth_series[i].depth));
    }
    appendf(out, "]}");
  }
  appendf(out, "%s]\n", m.usage.empty() ? "" : "\n    ");
  appendf(out, "  }");
  return out;
}

bool write_resources_report(const std::string& path,
                            const metrics::ReportManifest& manifest,
                            const MergedResourceStats& m) {
  if (m.streams == 0) {
    std::fprintf(stderr,
                 "note: resources report '%s' has no samples — per-resource "
                 "telemetry is recorded by the simulated engine only (run "
                 "with --engine simulated)\n",
                 path.c_str());
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "resources report: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"hswsim_resources_version\": %d,\n",
               kResourceStatsVersion);
  std::fprintf(f, "%s,\n", metrics::render_manifest(manifest).c_str());
  std::fprintf(f, "%s\n}\n", render_resources_section(m).c_str());
  const bool io_error = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || io_error) {
    std::fprintf(stderr, "resources report: write to '%s' failed\n",
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace hsw::obs
