// Per-line coherence flight recorder.
//
// The tracer answers "what did this access pay for" and the metrics
// registry answers "how busy were the boxes"; this module answers the
// question between them: *how do individual cache lines behave under the
// protocol* — which states they live in, which transitions they take, and
// what sharing pattern their accessor history spells out.  It is the data
// layer a future adaptive invalidate-vs-update policy consumes (ROADMAP
// item 1) and the machine-readable form of the paper's state-transition
// methodology.
//
// A LineStatsRecorder attaches to the engine exactly like the tracer and
// the metrics registry: a raw pointer on MachineState, one null-pointer
// test per instrumentation site when detached (InstrumentationScope wires
// it through every measurement path).  While attached it records:
//
//   * a protocol-generic transition count matrix per cache level —
//     (state x bus-op -> state) over the shared I/S/F/E/M/O vocabulary of
//     coh/protocol.h, so one implementation covers MESIF/MESI/MOESI/Dragon;
//   * state-residency time at the L3 in simulated ns, per (line, node) —
//     which states lines actually live in (MOESI's Owned dwell time vs
//     MESIF's eager demotion to Shared is a one-line diff of two reports);
//   * an online per-line accessor history (episodes of consecutive
//     same-core accesses, ownership handoffs, read/write mix) that a
//     sharing-pattern classifier reduces to private / read_shared /
//     migratory / ping_pong / false_shared, plus contention counters
//     (invalidations, forwards, updates received) that rank the top-N
//     contended lines.
//
// Simulated time: by default the recorder advances its clock by each
// access's composed latency (the serial replay/measure paths).  The
// event-driven exec engine instead drives the clock explicitly via
// set_now() with its event-queue timestamps, so residency reflects the
// interleaved schedule.
//
// LineStatsHub is the cross-point merger (the obs counterpart of
// trace::TraceSink / metrics::MetricsHub): sweep workers absorb finished
// per-point recorders from any thread and merged() folds them in stream-id
// order, so reports are byte-identical for any --jobs value.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "coh/protocol.h"
#include "mem/address.h"
#include "mem/line.h"

namespace hsw::metrics {
struct ReportManifest;
}  // namespace hsw::metrics

namespace hsw::obs {

// Schema version of the "linestats" report section (standalone --linestats
// files and the section embedded in --metrics reports share it).
inline constexpr int kLineStatsVersion = 1;

// Lines kept in MergedLineStats::top_lines, ranked by contention.
inline constexpr std::size_t kTopLines = 16;

// Bus/mesh operations as observed by a cache entry holding (or receiving)
// a line.  The first five mirror protocol::Op — they index the same policy
// tables — and the last three are the cache-management flows the policy
// tables do not model (they always end in I or refresh a lower level).
enum class LineOp : std::uint8_t {
  kLocalRead,        // demand load (hit transition or fill)
  kLocalStore,       // demand store (hit upgrade, RFO fill, update-write)
  kSnoopRead,        // peer read snoop demoting a supplier
  kSnoopInvalidate,  // peer RFO / invalidating snoop
  kSnoopUpdate,      // peer update broadcast (Dragon)
  kWriteback,        // victim landing in the next level down
  kEvict,            // capacity eviction (incl. inclusive back-invalidation)
  kFlush,            // clflush removing the line everywhere
};

inline constexpr std::size_t kLineOpCount = 8;

[[nodiscard]] const char* to_string(LineOp op);

// Cache level a transition was observed at.
enum class Level : std::uint8_t { kL1, kL2, kL3 };

inline constexpr std::size_t kLevelCount = 3;

[[nodiscard]] const char* to_string(Level level);

// Sharing-pattern verdict for one line's accessor history.
enum class SharingPattern : std::uint8_t {
  kPrivate,      // one core only
  kReadShared,   // multiple cores, never written
  kMigratory,    // ownership migrates: each episode reads then writes (locks)
  kPingPong,     // pure-write and pure-read episodes alternate (mailboxes)
  kFalseShared,  // multiple writers, no reader overlap on the line
  kMixed,        // multi-core read/write without a dominant structure
};

inline constexpr std::size_t kSharingPatternCount = 6;

[[nodiscard]] const char* to_string(SharingPattern pattern);

// Everything recorded about one line.  An *episode* is a maximal run of
// consecutive accesses by one core; a *handoff* closes an episode because a
// different core touched the line.  The episode counters are what the
// classifier reads; the contention counters come from L3 snoop transitions.
struct LineRecord {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t core_mask = 0;  // bit per accessing core (cores >= 64 share bit 63)

  // Open-episode state (closed by finalize()).
  std::int32_t episode_core = -1;
  bool episode_read_first = false;
  bool episode_has_read = false;
  bool episode_has_write = false;

  std::uint64_t episodes = 0;
  std::uint64_t handoffs = 0;
  // Handoffs whose closing episode read the line before writing it — the
  // read-modify-write signature of migratory data (lock words).
  std::uint64_t rmw_handoffs = 0;
  std::uint64_t pure_read_episodes = 0;
  std::uint64_t pure_write_episodes = 0;
  std::uint64_t mixed_episodes = 0;

  // Contention received at the L3 (cross-node traffic aimed at this line).
  std::uint64_t invalidations = 0;  // invalidating snoops that hit a copy
  std::uint64_t forwards = 0;       // read snoops a holder answered with data
  std::uint64_t updates = 0;        // update broadcasts that refreshed a copy

  // Simulated ns this line's L3 entries spent in each state (summed over
  // nodes; only lines with at least one observed L3 transition accrue time).
  std::array<double, protocol::kStateCount> residency_ns{};

  [[nodiscard]] std::uint64_t contention() const {
    return invalidations + forwards + updates;
  }
  [[nodiscard]] int cores_seen() const;
};

// Classifies a finalized record (finalize() must have closed the open
// episode; classifying a live record undercounts the final episode).
[[nodiscard]] SharingPattern classify(const LineRecord& record);

// Per-measured-section recorder.  Single-threaded like the engine that
// feeds it; `stream` orders recorders in the hub merge exactly like tracer
// streams (derived from configuration, never from scheduling).
class LineStatsRecorder {
 public:
  explicit LineStatsRecorder(Protocol protocol, std::uint32_t stream = 0)
      : protocol_(protocol), pol_(&protocol::policy(protocol)),
        stream_(stream) {}

  // Engine access epilogue: classifier history + clock advance (unless an
  // external clock drives set_now).
  void on_access(int core, LineAddr line, bool is_write, double ns);

  // Event-driven execution: adopts `ns` as the recorder's clock and stops
  // advancing it from access latencies.  Monotonic per the event queue.
  void set_now(double ns) {
    external_clock_ = true;
    now_ = ns;
  }

  // One observed state change.  `unit` is the node id for kL3 entries and
  // the global core id for kL1/kL2 (only kL3 feeds residency/contention).
  void on_transition(Level level, int unit, LineAddr line, Mesif from,
                     LineOp op, Mesif to);

  // Closes open episodes and open residency intervals at the current clock.
  // Idempotent; System::detach_linestats and LineStatsHub::absorb call it.
  void finalize();

  [[nodiscard]] Protocol protocol() const { return protocol_; }
  [[nodiscard]] std::uint32_t stream() const { return stream_; }
  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] const std::map<LineAddr, LineRecord>& lines() const {
    return lines_;
  }
  [[nodiscard]] std::uint64_t transitions(Level level, Mesif from, LineOp op,
                                          Mesif to) const {
    return transitions_[transition_index(level, from, op, to)];
  }

  static constexpr std::size_t transition_index(Level level, Mesif from,
                                                LineOp op, Mesif to) {
    return ((static_cast<std::size_t>(level) * protocol::kStateCount +
             protocol::idx(from)) *
                kLineOpCount +
            static_cast<std::size_t>(op)) *
               protocol::kStateCount +
           protocol::idx(to);
  }
  static constexpr std::size_t kTransitionCells =
      kLevelCount * protocol::kStateCount * kLineOpCount *
      protocol::kStateCount;

 private:
  friend class LineStatsHub;

  void close_episode(LineRecord& record, bool handoff);

  Protocol protocol_;
  const protocol::ProtocolPolicy* pol_;
  std::uint32_t stream_ = 0;
  double now_ = 0.0;
  bool external_clock_ = false;
  bool finalized_ = false;
  std::uint64_t accesses_ = 0;
  std::map<LineAddr, LineRecord> lines_;
  std::array<std::uint64_t, kTransitionCells> transitions_{};
  // Open L3 residency intervals, keyed line * kMaxNodes + node.
  struct Residency {
    Mesif state = Mesif::kInvalid;
    double mark = 0.0;
  };
  std::map<std::uint64_t, Residency> l3_residency_;
};

// One ranked line in a merged report (lines from different streams are
// distinct: each sweep point owns its System and address space).
struct TopLine {
  std::uint32_t stream = 0;
  LineAddr line = 0;
  SharingPattern pattern = SharingPattern::kPrivate;
  LineRecord record;
};

struct MergedLineStats {
  Protocol protocol = Protocol::kMesif;
  std::size_t streams = 0;
  std::uint64_t accesses = 0;
  std::uint64_t lines_tracked = 0;
  std::array<std::uint64_t, kSharingPatternCount> patterns{};
  // Aggregate L3 residency over every tracked line.
  std::array<double, protocol::kStateCount> residency_ns{};
  std::array<std::uint64_t, LineStatsRecorder::kTransitionCells> transitions{};
  std::vector<TopLine> top_lines;  // contention-ranked, capped at kTopLines

  [[nodiscard]] std::uint64_t transition(Level level, Mesif from, LineOp op,
                                         Mesif to) const {
    return transitions[LineStatsRecorder::transition_index(level, from, op,
                                                           to)];
  }
};

// Deterministic multi-stream merge (the obs counterpart of
// metrics::MetricsHub).  absorb() finalizes the recorder; merged() folds
// recorders in stream-id order, so the report bytes never depend on worker
// scheduling.
class LineStatsHub {
 public:
  void absorb(LineStatsRecorder&& recorder);

  [[nodiscard]] MergedLineStats merged() const;
  [[nodiscard]] std::size_t stream_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<LineStatsRecorder> recorders_;
};

// Renders the versioned `"linestats": {...}` JSON section (two-space base
// indent, no trailing comma/newline): nonzero transition cells keyed
// "<from>.<op>.<to>" per level, the pattern census, aggregate residency,
// and the top-N contended lines.  Fixed field order and %.6f floats — the
// same byte-determinism discipline as metrics::write_report.
[[nodiscard]] std::string render_linestats_section(const MergedLineStats& m);

// Writes a standalone --linestats report: {version, manifest, linestats}.
// False (with a stderr message) when the file cannot be written.
[[nodiscard]] bool write_linestats_report(
    const std::string& path, const metrics::ReportManifest& manifest,
    const MergedLineStats& m);

}  // namespace hsw::obs
