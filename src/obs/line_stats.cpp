#include "obs/line_stats.h"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>
#include <numeric>

#include "metrics/report.h"

namespace hsw::obs {
namespace {

// Same fixed float discipline as metrics::write_report: %.6f everywhere a
// double reaches the report, so bytes never depend on locale or platform.
void appendf(std::string& out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
}

void append_residency(std::string& out, const char* indent,
                      const std::array<double, protocol::kStateCount>& ns) {
  appendf(out, "\"residency_ns\": {");
  for (std::size_t s = 0; s < protocol::kStateCount; ++s) {
    appendf(out, "%s\"%s\": %.6f", s == 0 ? "" : ", ",
            std::string(to_string(static_cast<Mesif>(s))).c_str(), ns[s]);
  }
  appendf(out, "}");
  (void)indent;
}

}  // namespace

const char* to_string(LineOp op) {
  switch (op) {
    case LineOp::kLocalRead: return "LocalRead";
    case LineOp::kLocalStore: return "LocalStore";
    case LineOp::kSnoopRead: return "SnoopRead";
    case LineOp::kSnoopInvalidate: return "SnoopInvalidate";
    case LineOp::kSnoopUpdate: return "SnoopUpdate";
    case LineOp::kWriteback: return "Writeback";
    case LineOp::kEvict: return "Evict";
    case LineOp::kFlush: return "Flush";
  }
  return "?";
}

const char* to_string(Level level) {
  switch (level) {
    case Level::kL1: return "L1";
    case Level::kL2: return "L2";
    case Level::kL3: return "L3";
  }
  return "?";
}

const char* to_string(SharingPattern pattern) {
  switch (pattern) {
    case SharingPattern::kPrivate: return "private";
    case SharingPattern::kReadShared: return "read_shared";
    case SharingPattern::kMigratory: return "migratory";
    case SharingPattern::kPingPong: return "ping_pong";
    case SharingPattern::kFalseShared: return "false_shared";
    case SharingPattern::kMixed: return "mixed";
  }
  return "?";
}

int LineRecord::cores_seen() const { return std::popcount(core_mask); }

SharingPattern classify(const LineRecord& record) {
  if (record.cores_seen() <= 1) return SharingPattern::kPrivate;
  if (record.writes == 0) return SharingPattern::kReadShared;
  if (record.reads == 0) return SharingPattern::kFalseShared;
  // Migratory data (lock words): ownership keeps moving and the typical
  // episode is a read-modify-write.  Checked before ping-pong because a
  // lock's read-then-write episodes also alternate between cores.
  if (record.handoffs >= 2 && record.rmw_handoffs * 2 >= record.handoffs) {
    return SharingPattern::kMigratory;
  }
  // Ping-pong (producer/consumer mailboxes): episodes are pure writes on
  // one side and pure reads on the other, never mixed.
  if (record.mixed_episodes == 0 && record.pure_read_episodes > 0 &&
      record.pure_write_episodes > 0) {
    return SharingPattern::kPingPong;
  }
  return SharingPattern::kMixed;
}

void LineStatsRecorder::close_episode(LineRecord& record, bool handoff) {
  if (record.episode_core < 0) return;
  record.episodes += 1;
  if (record.episode_has_read && record.episode_has_write) {
    record.mixed_episodes += 1;
  } else if (record.episode_has_read) {
    record.pure_read_episodes += 1;
  } else {
    record.pure_write_episodes += 1;
  }
  if (handoff) {
    record.handoffs += 1;
    if (record.episode_read_first && record.episode_has_write) {
      record.rmw_handoffs += 1;
    }
  }
  record.episode_core = -1;
  record.episode_read_first = false;
  record.episode_has_read = false;
  record.episode_has_write = false;
}

void LineStatsRecorder::on_access(int core, LineAddr line, bool is_write,
                                  double ns) {
  LineRecord& record = lines_[line];
  if (is_write) {
    record.writes += 1;
  } else {
    record.reads += 1;
  }
  record.core_mask |= std::uint64_t{1} << (core < 63 ? core : 63);
  if (record.episode_core != core) {
    close_episode(record, /*handoff=*/record.episode_core >= 0);
    record.episode_core = core;
    record.episode_read_first = !is_write;
  }
  record.episode_has_read |= !is_write;
  record.episode_has_write |= is_write;
  accesses_ += 1;
  if (!external_clock_) now_ += ns;
}

void LineStatsRecorder::on_transition(Level level, int unit, LineAddr line,
                                      Mesif from, LineOp op, Mesif to) {
  transitions_[transition_index(level, from, op, to)] += 1;
  if (level != Level::kL3) return;

  LineRecord& record = lines_[line];
  // Contention received: the cross-node traffic the top-N ranking keys on.
  if (op == LineOp::kSnoopInvalidate && from != Mesif::kInvalid) {
    record.invalidations += 1;
  } else if (op == LineOp::kSnoopRead && pol_->snoop_read(from).forwards) {
    record.forwards += 1;
  } else if (op == LineOp::kSnoopUpdate && from != Mesif::kInvalid) {
    record.updates += 1;
  }

  // Residency: close the open interval for this (line, node) L3 entry at
  // the current clock, then open one for the new state.
  const std::uint64_t key = line * kMaxNodes + static_cast<unsigned>(unit);
  const auto it = l3_residency_.find(key);
  if (it != l3_residency_.end()) {
    record.residency_ns[protocol::idx(it->second.state)] += now_ - it->second.mark;
    if (to == Mesif::kInvalid) {
      l3_residency_.erase(it);
    } else {
      it->second = Residency{to, now_};
    }
  } else if (to != Mesif::kInvalid) {
    l3_residency_[key] = Residency{to, now_};
  }
}

void LineStatsRecorder::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (auto& [line, record] : lines_) {
    close_episode(record, /*handoff=*/false);
  }
  for (const auto& [key, open] : l3_residency_) {
    lines_[key / kMaxNodes].residency_ns[protocol::idx(open.state)] +=
        now_ - open.mark;
  }
  l3_residency_.clear();
}

void LineStatsHub::absorb(LineStatsRecorder&& recorder) {
  recorder.finalize();
  const std::lock_guard<std::mutex> lock(mutex_);
  recorders_.push_back(std::move(recorder));
}

std::size_t LineStatsHub::stream_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorders_.size();
}

MergedLineStats LineStatsHub::merged() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MergedLineStats m;
  m.streams = recorders_.size();
  if (recorders_.empty()) return m;

  // Fold in stream-id order, not absorb order: workers finish sweeps in
  // scheduling order, and the merged report must not care.
  std::vector<std::size_t> order(recorders_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return recorders_[a].stream() < recorders_[b].stream();
                   });

  for (const std::size_t i : order) {
    const LineStatsRecorder& r = recorders_[i];
    if (i == order.front()) m.protocol = r.protocol();
    m.accesses += r.accesses();
    for (std::size_t c = 0; c < LineStatsRecorder::kTransitionCells; ++c) {
      m.transitions[c] += r.transitions_[c];
    }
    for (const auto& [line, record] : r.lines()) {
      m.lines_tracked += 1;
      m.patterns[static_cast<std::size_t>(classify(record))] += 1;
      for (std::size_t s = 0; s < protocol::kStateCount; ++s) {
        m.residency_ns[s] += record.residency_ns[s];
      }
      m.top_lines.push_back(TopLine{r.stream(), line, classify(record), record});
    }
  }

  std::stable_sort(m.top_lines.begin(), m.top_lines.end(),
                   [](const TopLine& a, const TopLine& b) {
                     if (a.record.contention() != b.record.contention()) {
                       return a.record.contention() > b.record.contention();
                     }
                     const std::uint64_t at = a.record.reads + a.record.writes;
                     const std::uint64_t bt = b.record.reads + b.record.writes;
                     if (at != bt) return at > bt;
                     if (a.stream != b.stream) return a.stream < b.stream;
                     return a.line < b.line;
                   });
  if (m.top_lines.size() > kTopLines) m.top_lines.resize(kTopLines);
  return m;
}

std::string render_linestats_section(const MergedLineStats& m) {
  std::string out;
  out.reserve(4096);
  appendf(out, "  \"linestats\": {\n");
  appendf(out, "    \"hswsim_linestats_version\": %d,\n", kLineStatsVersion);
  appendf(out, "    \"protocol\": \"%s\",\n",
          std::string(hsw::to_string(m.protocol)).c_str());
  appendf(out, "    \"streams\": %zu,\n", m.streams);
  appendf(out, "    \"accesses\": %llu,\n",
          static_cast<unsigned long long>(m.accesses));
  appendf(out, "    \"lines_tracked\": %llu,\n",
          static_cast<unsigned long long>(m.lines_tracked));

  appendf(out, "    \"patterns\": {");
  for (std::size_t p = 0; p < kSharingPatternCount; ++p) {
    appendf(out, "%s\"%s\": %llu", p == 0 ? "" : ", ",
            to_string(static_cast<SharingPattern>(p)),
            static_cast<unsigned long long>(m.patterns[p]));
  }
  appendf(out, "},\n");

  appendf(out, "    ");
  append_residency(out, "    ", m.residency_ns);
  appendf(out, ",\n");

  // Only nonzero cells: the full matrix is 3 x 6 x 8 x 6 and almost all of
  // it is structurally unreachable for any given protocol.  Cells print in
  // index order (level, from, op, to), so the section is deterministic.
  appendf(out, "    \"transitions\": {\n");
  for (std::size_t l = 0; l < kLevelCount; ++l) {
    appendf(out, "      \"%s\": {", to_string(static_cast<Level>(l)));
    bool first = true;
    for (std::size_t from = 0; from < protocol::kStateCount; ++from) {
      for (std::size_t op = 0; op < kLineOpCount; ++op) {
        for (std::size_t to = 0; to < protocol::kStateCount; ++to) {
          const std::uint64_t n = m.transition(
              static_cast<Level>(l), static_cast<Mesif>(from),
              static_cast<LineOp>(op), static_cast<Mesif>(to));
          if (n == 0) continue;
          appendf(out, "%s\n        \"%s.%s.%s\": %llu", first ? "" : ",",
                  std::string(to_string(static_cast<Mesif>(from))).c_str(),
                  to_string(static_cast<LineOp>(op)),
                  std::string(to_string(static_cast<Mesif>(to))).c_str(),
                  static_cast<unsigned long long>(n));
          first = false;
        }
      }
    }
    appendf(out, "%s}%s\n", first ? "" : "\n      ",
            l + 1 < kLevelCount ? "," : "");
  }
  appendf(out, "    },\n");

  appendf(out, "    \"top_lines\": [");
  for (std::size_t i = 0; i < m.top_lines.size(); ++i) {
    const TopLine& t = m.top_lines[i];
    appendf(out, "%s\n      {\"line\": \"0x%llx\", \"stream\": %u, "
            "\"pattern\": \"%s\", \"cores\": %d, \"reads\": %llu, "
            "\"writes\": %llu, \"invalidations\": %llu, \"forwards\": %llu, "
            "\"updates\": %llu, \"contention\": %llu,\n       ",
            i == 0 ? "" : ",",
            static_cast<unsigned long long>(t.line), t.stream,
            to_string(t.pattern), t.record.cores_seen(),
            static_cast<unsigned long long>(t.record.reads),
            static_cast<unsigned long long>(t.record.writes),
            static_cast<unsigned long long>(t.record.invalidations),
            static_cast<unsigned long long>(t.record.forwards),
            static_cast<unsigned long long>(t.record.updates),
            static_cast<unsigned long long>(t.record.contention()));
    append_residency(out, "       ", t.record.residency_ns);
    appendf(out, "}");
  }
  appendf(out, "%s]\n", m.top_lines.empty() ? "" : "\n    ");
  appendf(out, "  }");
  return out;
}

bool write_linestats_report(const std::string& path,
                            const metrics::ReportManifest& manifest,
                            const MergedLineStats& m) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "linestats report: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"hswsim_linestats_version\": %d,\n",
               kLineStatsVersion);
  std::fprintf(f, "%s,\n", metrics::render_manifest(manifest).c_str());
  std::fprintf(f, "%s\n}\n", render_linestats_section(m).c_str());
  const bool io_error = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || io_error) {
    std::fprintf(stderr, "linestats report: write to '%s' failed\n",
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace hsw::obs
