// Per-resource queueing telemetry for the event-driven exec engine.
//
// The tracer explains individual accesses, the metrics registry counts box
// events, and the line-stats recorder follows cache lines; this module
// watches the *shared FIFO servers* themselves — ring stops, iMC channels,
// QPI links, inter-ring bridges — and answers the queueing question behind
// every bandwidth figure in the paper: which box saturated first, and what
// did everyone else pay waiting for it.
//
// A ResourceStatsRecorder attaches through InstrumentationScope with the
// same detached-hot-path contract as its siblings: one null-pointer test
// per instrumentation site when off.  Both exec entry points
// (run_closed_loop and run_programs) feed it one on_service() call per
// (request, resource) visit, carrying the three timestamps the FIFO
// discipline already computes — arrival (the event clock when the request
// reached the box), service start (when the box freed up), and departure.
// From those it accumulates, per resource:
//
//   * busy residency in simulated ns (service intervals never overlap on a
//     FIFO server, so busy time is exactly the summed service time) and,
//     by subtraction from the observation window, idle residency;
//   * service counts and protocol bytes moved (64 B x path weight);
//   * waiting time: sum / max / log-bucketed histogram of (start - arrival);
//   * queue depth: the time-averaged number of requests present (waiting or
//     in service), its maximum, and an event-boundary time series decimated
//     deterministically to a bounded number of points.
//
// The mean depth is computed two independent ways — the incremental
// area-under-depth integral, and arrival rate x mean residence (Little's
// law, L = lambda W).  The two agree exactly for a drained run and within a
// boundary term otherwise; the unit tests assert it as an invariant, which
// pins the accounting against sign/window bugs.
//
// ResourceStatsHub is the cross-point merger (the counterpart of
// metrics::MetricsHub / obs::LineStatsHub): workers absorb finished
// per-stream recorders from any thread and merged() folds them in
// stream-id order, so the "resources" report section is byte-identical for
// any --jobs value.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.h"

namespace hsw::metrics {
struct ReportManifest;
}  // namespace hsw::metrics

namespace hsw::obs {

// Schema version of the "resources" report section (standalone --resstats
// files and the section embedded in --metrics reports share it).
inline constexpr int kResourceStatsVersion = 1;

// Retained points per resource in the event-boundary depth time series.
// When a run produces more depth-change events than this, every other
// retained point is dropped and the sampling stride doubles — the kept
// points depend only on event order, never on wall clock or scheduling.
inline constexpr std::size_t kDepthSeriesCap = 128;

// One (time, depth) point of the decimated queue-depth series.
struct DepthSample {
  double ns = 0.0;
  std::uint64_t depth = 0;
};

// Everything accumulated about one FIFO server.  The trailing members are
// live accounting state (open like LineRecord's open-episode fields);
// finalize() closes them at the end-of-run clock.
struct ResourceUsage {
  double busy_ns = 0.0;        // summed service time (never overlaps)
  std::uint64_t services = 0;  // requests serviced (== arrivals)
  double bytes = 0.0;          // protocol bytes moved (64 x path weight)
  double wait_ns = 0.0;        // summed (start - arrival)
  double wait_max_ns = 0.0;
  double residence_ns = 0.0;   // summed (done - arrival); lambda-W side
  LogHistogram wait_hist;      // log-bucketed waits, ns
  double depth_area = 0.0;     // integral of depth dt; L side of Little
  std::uint64_t depth_max = 0;
  std::vector<DepthSample> depth_series;

  // Open accounting state (closed by ResourceStatsRecorder::finalize).
  std::deque<double> pending;  // departure times of requests present, sorted
  double mark = 0.0;           // clock of the last depth-area update
  std::uint64_t series_events = 0;
  std::uint64_t series_stride = 1;

  [[nodiscard]] std::uint64_t depth() const { return pending.size(); }
  [[nodiscard]] double mean_service_ns() const {
    return services ? busy_ns / static_cast<double>(services) : 0.0;
  }
  [[nodiscard]] double mean_wait_ns() const {
    return services ? wait_ns / static_cast<double>(services) : 0.0;
  }
};

// Per-run recorder.  Single-threaded like the engine feeding it; `stream`
// orders recorders in the hub merge exactly like tracer streams (derived
// from configuration, never from scheduling).  One recorder accounts one
// run: its clock starts at 0 and finalize() closes the books — reusing a
// finalized recorder for a second run is refused (on_service becomes a
// no-op) because event time would restart behind the accounting marks.
class ResourceStatsRecorder {
 public:
  explicit ResourceStatsRecorder(std::uint32_t stream = 0) : stream_(stream) {}

  // Adopts the resource vocabulary (parallel name/capacity vectors indexed
  // like bw::Flow::Use::resource).  The engine calls this on first use; a
  // second bind with the same resource count is a no-op, a different count
  // resets the accounting (a recorder describes one machine shape).
  void bind(std::vector<std::string> names,
            std::vector<double> capacities_gbps);
  [[nodiscard]] bool bound() const { return !names_.empty(); }

  // One request visiting one FIFO server: it arrived (joined the queue) at
  // `arrival_ns`, occupied the server over [start_ns, done_ns), and moved
  // `bytes` protocol bytes.  Arrival times are nondecreasing per the event
  // queue; departures are nondecreasing per resource (FIFO).
  void on_service(std::size_t resource, double arrival_ns, double start_ns,
                  double done_ns, double bytes);

  // Closes the observation window at `now_ns` (or at the latest event seen,
  // whichever is later): drains completed departures, settles the depth
  // integral, and freezes the recorder.  Idempotent.
  void finalize(double now_ns);
  void finalize() { finalize(last_ns_); }

  [[nodiscard]] std::uint32_t stream() const { return stream_; }
  [[nodiscard]] bool finalized() const { return finalized_; }
  // Observation window length (0 until finalize).
  [[nodiscard]] double elapsed_ns() const { return elapsed_ns_; }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }
  [[nodiscard]] const std::vector<double>& capacities_gbps() const {
    return capacities_;
  }
  [[nodiscard]] const std::vector<ResourceUsage>& usage() const {
    return usage_;
  }

 private:
  friend class ResourceStatsHub;

  // Settles the depth integral of `u` up to `now`, retiring any departures
  // that happened first (each one is a depth boundary of its own).
  void settle(ResourceUsage& u, double now);
  void record_point(ResourceUsage& u, double ns);

  std::uint32_t stream_ = 0;
  bool finalized_ = false;
  double last_ns_ = 0.0;
  double elapsed_ns_ = 0.0;
  std::vector<std::string> names_;
  std::vector<double> capacities_;
  std::vector<ResourceUsage> usage_;
};

// The stream-order fold of every absorbed recorder.  Scalar fields sum;
// wait histograms merge (deterministic bucket keys); depth_max takes the
// max.  The depth time series is kept only for single-stream merges — a
// concatenation across independent runs would interleave unrelated clocks.
struct MergedResourceStats {
  std::size_t streams = 0;
  double elapsed_ns = 0.0;  // summed observation windows
  std::vector<std::string> names;
  std::vector<double> capacities_gbps;
  std::vector<ResourceUsage> usage;

  // Busy fraction of the observation window (the quantity cross-checked
  // against the analytic max-min utilization in validate_bw_model).
  [[nodiscard]] double utilization(std::size_t r) const {
    return elapsed_ns > 0.0 && r < usage.size() ? usage[r].busy_ns / elapsed_ns
                                                : 0.0;
  }
  // Time-averaged queue depth from the area integral (L)...
  [[nodiscard]] double mean_depth(std::size_t r) const {
    return elapsed_ns > 0.0 && r < usage.size()
               ? usage[r].depth_area / elapsed_ns
               : 0.0;
  }
  // ...and from Little's law (lambda x W = residence / elapsed).
  [[nodiscard]] double littles_depth(std::size_t r) const {
    return elapsed_ns > 0.0 && r < usage.size()
               ? usage[r].residence_ns / elapsed_ns
               : 0.0;
  }
  [[nodiscard]] double arrivals_per_us(std::size_t r) const {
    return elapsed_ns > 0.0 && r < usage.size()
               ? static_cast<double>(usage[r].services) * 1e3 / elapsed_ns
               : 0.0;
  }
};

// Deterministic multi-stream merge.  absorb() finalizes the recorder (at
// its latest event) if the engine has not already; merged() folds in
// stream-id order, so report bytes never depend on worker scheduling.
class ResourceStatsHub {
 public:
  void absorb(ResourceStatsRecorder&& recorder);

  [[nodiscard]] MergedResourceStats merged() const;
  [[nodiscard]] std::size_t stream_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<ResourceStatsRecorder> recorders_;
};

// Renders the versioned `"resources": {...}` JSON section (two-space base
// indent, no trailing comma/newline): one item per resource in index
// order, fixed field order, %.6f floats — the same byte-determinism
// discipline as metrics::write_report.
[[nodiscard]] std::string render_resources_section(
    const MergedResourceStats& m);

// Writes a standalone --resstats report: {version, manifest, resources}.
// False (with a stderr message) when the file cannot be written.  A merge
// with zero streams gets a stderr note (the run never fed a recorder —
// typically an analytic-engine run) but still writes a valid report.
[[nodiscard]] bool write_resources_report(
    const std::string& path, const metrics::ReportManifest& manifest,
    const MergedResourceStats& m);

}  // namespace hsw::obs
