#!/usr/bin/env bash
# One-shot verification: configure + build + full ctest in the default
# configuration, a trace-export smoke test, a tracing-overhead guard, then
# the whole ctest suite again under AddressSanitizer.
#
# Usage: scripts/check.sh [extra ctest args...]
#   HSWSIM_CHECK_SANITIZER=undefined|thread|address  (default: address)
#   HSWSIM_CHECK_SKIP_SANITIZER=1                    (default build only)
#   HSWSIM_CHECK_SKIP_PERF=1                         (skip overhead guard)
#   HSWSIM_PERF_TOLERANCE=<percent>                  (default: 2)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizer="${HSWSIM_CHECK_SANITIZER:-address}"

run_config() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "${ctest_args[@]}"
}

ctest_args=("$@")

echo "== default configuration =="
run_config "$repo_root/build"

echo "== trace smoke =="
# One traced run of the attribution bench must export a Perfetto JSON that
# names every protocol component the span taxonomy promises (the COD rows
# exercise directory, HitME, QPI, and DRAM in a single quick run), and a
# CSV export must carry the same spans row-wise.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
"$repo_root/build/bench/attribution_breakdown" --quick --seed 1 \
  --trace "$trace_dir/attribution.json" > /dev/null
for span in dir_remote_invalid hitme_lookup qpi_link dram_page; do
  grep -q "$span" "$trace_dir/attribution.json" \
    || { echo "trace smoke: span '$span' missing from JSON export"; exit 1; }
done
"$repo_root/build/bench/attribution_breakdown" --quick --seed 1 \
  --trace "$trace_dir/attribution.csv" > /dev/null
grep -q "hitme_lookup" "$trace_dir/attribution.csv" \
  || { echo "trace smoke: CSV export missing spans"; exit 1; }
echo "trace smoke: ok"

echo "== metrics smoke =="
# A --metrics run of the same bench must emit a report whose uncore
# counters capture the paper's two signature COD effects with nonzero
# counts (Table V stale broadcasts, Fig. 7 HitME hits), and
# hswsim-report must call a report equal to itself.
"$repo_root/build/bench/attribution_breakdown" --quick --seed 1 \
  --metrics "$trace_dir/attribution.metrics.json" > /dev/null
grep -Eq '"HA_DIRECTORY_STALE_BCAST": [1-9]' "$trace_dir/attribution.metrics.json" \
  || { echo "metrics smoke: HA_DIRECTORY_STALE_BCAST is zero or missing"; exit 1; }
grep -Eq '"HA_HITME_HIT": [1-9]' "$trace_dir/attribution.metrics.json" \
  || { echo "metrics smoke: HA_HITME_HIT is zero or missing"; exit 1; }
"$repo_root/build/src/metrics/hswsim-report" diff \
  "$trace_dir/attribution.metrics.json" "$trace_dir/attribution.metrics.json" \
  > /dev/null \
  || { echo "metrics smoke: hswsim-report diff report vs itself failed"; exit 1; }
echo "metrics smoke: ok"

echo "== simulated-engine smoke =="
# The event-driven bandwidth engine must (a) run the Fig. 8 quick sweep
# end to end under --engine simulated with byte-identical CSVs for any
# --jobs value, and (b) agree with the analytic solver point-for-point:
# validate_bw_model exits nonzero if any quick-sweep point diverges more
# than 10% or the simulated Table VII scaling dips before the knee.
"$repo_root/build/bench/fig8_bandwidth_source" --quick --seed 1 --jobs 1 \
  --engine simulated --csv "$trace_dir/fig8.sim.jobs1.csv" > /dev/null
"$repo_root/build/bench/fig8_bandwidth_source" --quick --seed 1 --jobs 8 \
  --engine simulated --csv "$trace_dir/fig8.sim.jobs8.csv" > /dev/null
cmp -s "$trace_dir/fig8.sim.jobs1.csv" "$trace_dir/fig8.sim.jobs8.csv" \
  || { echo "simulated smoke: --jobs 1 vs 8 CSVs differ"; exit 1; }
"$repo_root/build/bench/validate_bw_model" --quick > /dev/null \
  || { echo "simulated smoke: analytic-vs-simulated agreement gate failed"; exit 1; }
echo "simulated smoke: ok"

if [[ "${HSWSIM_CHECK_SKIP_PERF:-0}" != "1" ]]; then
  echo "== tracing-overhead guard =="
  # The disabled-tracing and disabled-metrics engine hot paths (a
  # null-pointer test per instrumentation site each) must stay within
  # HSWSIM_PERF_TOLERANCE percent of the numbers in BENCH_simcore.json.  Best-of-3
  # repetitions against a one-sided bound keeps machine noise out; slower
  # machines can raise the tolerance or skip with HSWSIM_CHECK_SKIP_PERF=1.
  "$repo_root/build/bench/simbench" \
    --benchmark_filter='BM_L1HitTracingOff|BM_MemoryReadTracingOff|BM_L1HitMetricsOff|BM_MemoryReadMetricsOff|BM_CacheLookupHit|BM_CacheInsertEvict' \
    --benchmark_repetitions=3 --benchmark_min_time=0.1 \
    --benchmark_out="$trace_dir/perf.json" --benchmark_out_format=json \
    > /dev/null 2>&1
  python3 - "$repo_root/BENCH_simcore.json" "$trace_dir/perf.json" \
      "${HSWSIM_PERF_TOLERANCE:-2}" <<'PY'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
def times(path):
    out = {}
    for b in json.load(open(path))["benchmarks"]:
        if b.get("run_type", "iteration") == "iteration":
            out.setdefault(b["name"].split("/")[0], []).append(b["cpu_time"])
    return out

baseline, fresh = times(baseline_path), times(fresh_path)
failed = False
for name, samples in sorted(fresh.items()):
    if name not in baseline:
        print(f"  {name}: no baseline in BENCH_simcore.json "
              "(regenerate via build/bench/simbench)")
        failed = True
        continue
    best, ref = min(samples), min(baseline[name])
    delta = (best / ref - 1.0) * 100.0
    verdict = "ok" if delta <= tol else "REGRESSION"
    print(f"  {name}: {best:.1f} ns vs baseline {ref:.1f} ns "
          f"({delta:+.1f}%, limit +{tol:.0f}%) {verdict}")
    failed |= delta > tol
sys.exit(1 if failed else 0)
PY
fi

if [[ "${HSWSIM_CHECK_SKIP_SANITIZER:-0}" != "1" ]]; then
  echo "== ${sanitizer} sanitizer configuration =="
  run_config "$repo_root/build-${sanitizer}" "-DHSWSIM_SANITIZE=${sanitizer}"
fi

echo "check.sh: all green"
