#!/usr/bin/env bash
# One-shot verification: configure + build + full ctest in the default
# configuration, then again under AddressSanitizer.
#
# Usage: scripts/check.sh [extra ctest args...]
#   HSWSIM_CHECK_SANITIZER=undefined|thread|address  (default: address)
#   HSWSIM_CHECK_SKIP_SANITIZER=1                    (default build only)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizer="${HSWSIM_CHECK_SANITIZER:-address}"

run_config() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "${ctest_args[@]}"
}

ctest_args=("$@")

echo "== default configuration =="
run_config "$repo_root/build"

if [[ "${HSWSIM_CHECK_SKIP_SANITIZER:-0}" != "1" ]]; then
  echo "== ${sanitizer} sanitizer configuration =="
  run_config "$repo_root/build-${sanitizer}" "-DHSWSIM_SANITIZE=${sanitizer}"
fi

echo "check.sh: all green"
