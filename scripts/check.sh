#!/usr/bin/env bash
# One-shot verification: configure + build + full ctest in the default
# configuration, a trace-export smoke test, a tracing-overhead guard, then
# the whole ctest suite again under AddressSanitizer.
#
# Usage: scripts/check.sh [extra ctest args...]
#   HSWSIM_CHECK_SANITIZER=undefined|thread|address  (default: address)
#   HSWSIM_CHECK_SKIP_SANITIZER=1                    (default build only)
#   HSWSIM_CHECK_SKIP_PERF=1                         (skip perf-ratio guard)
#   HSWSIM_PERF_TOLERANCE=<percent>                  (default: 50)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizer="${HSWSIM_CHECK_SANITIZER:-address}"

run_config() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "${ctest_args[@]}"
}

ctest_args=("$@")

echo "== default configuration =="
run_config "$repo_root/build"

echo "== trace smoke =="
# One traced run of the attribution bench must export a Perfetto JSON that
# names every protocol component the span taxonomy promises (the COD rows
# exercise directory, HitME, QPI, and DRAM in a single quick run), and a
# CSV export must carry the same spans row-wise.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
"$repo_root/build/bench/attribution_breakdown" --quick --seed 1 \
  --trace "$trace_dir/attribution.json" > /dev/null
for span in dir_remote_invalid hitme_lookup qpi_link dram_page; do
  grep -q "$span" "$trace_dir/attribution.json" \
    || { echo "trace smoke: span '$span' missing from JSON export"; exit 1; }
done
"$repo_root/build/bench/attribution_breakdown" --quick --seed 1 \
  --trace "$trace_dir/attribution.csv" > /dev/null
grep -q "hitme_lookup" "$trace_dir/attribution.csv" \
  || { echo "trace smoke: CSV export missing spans"; exit 1; }
echo "trace smoke: ok"

echo "== metrics smoke =="
# A --metrics run of the same bench must emit a report whose uncore
# counters capture the paper's two signature COD effects with nonzero
# counts (Table V stale broadcasts, Fig. 7 HitME hits), and
# hswsim-report must call a report equal to itself.
"$repo_root/build/bench/attribution_breakdown" --quick --seed 1 \
  --metrics "$trace_dir/attribution.metrics.json" > /dev/null
grep -Eq '"HA_DIRECTORY_STALE_BCAST": [1-9]' "$trace_dir/attribution.metrics.json" \
  || { echo "metrics smoke: HA_DIRECTORY_STALE_BCAST is zero or missing"; exit 1; }
grep -Eq '"HA_HITME_HIT": [1-9]' "$trace_dir/attribution.metrics.json" \
  || { echo "metrics smoke: HA_HITME_HIT is zero or missing"; exit 1; }
"$repo_root/build/src/metrics/hswsim-report" diff \
  "$trace_dir/attribution.metrics.json" "$trace_dir/attribution.metrics.json" \
  > /dev/null \
  || { echo "metrics smoke: hswsim-report diff report vs itself failed"; exit 1; }
echo "metrics smoke: ok"

echo "== line-stats smoke =="
# A --linestats run must emit a flight-recorder report hswsim-report can
# render (lines + transitions views), the report bytes must not depend on
# --jobs (beyond the masked manifest jobs line), and the sharing-pattern
# matrix bench must hold its own protocol-contrast gates.
"$repo_root/build/bench/fig4_latency_source" --quick --seed 1 --jobs 1 \
  --linestats "$trace_dir/fig4.jobs1.linestats.json" > /dev/null
"$repo_root/build/bench/fig4_latency_source" --quick --seed 1 --jobs 8 \
  --linestats "$trace_dir/fig4.jobs8.linestats.json" > /dev/null
for jobs in 1 8; do
  sed 's/"jobs": [0-9]*/"jobs": MASKED/' \
    "$trace_dir/fig4.jobs$jobs.linestats.json" \
    > "$trace_dir/fig4.jobs$jobs.linestats.masked"
done
cmp -s "$trace_dir/fig4.jobs1.linestats.masked" \
  "$trace_dir/fig4.jobs8.linestats.masked" \
  || { echo "line-stats smoke: --jobs 1 vs 8 reports differ"; exit 1; }
"$repo_root/build/src/metrics/hswsim-report" lines \
  "$trace_dir/fig4.jobs1.linestats.json" > /dev/null \
  || { echo "line-stats smoke: hswsim-report lines failed"; exit 1; }
"$repo_root/build/src/metrics/hswsim-report" transitions \
  "$trace_dir/fig4.jobs1.linestats.json" > /dev/null \
  || { echo "line-stats smoke: hswsim-report transitions failed"; exit 1; }
"$repo_root/build/bench/sharing_patterns" --quick --seed 1 > /dev/null \
  || { echo "line-stats smoke: sharing_patterns protocol gates failed"; exit 1; }
echo "line-stats smoke: ok"

echo "== protocol differential smoke =="
# Every coherence-protocol family (MESIF/MESI/MOESI/Dragon) replays a short
# seeded trace through the engine and its timing-free reference with
# full-state diffing after every step; any divergence fails the run with a
# minimized repro.  The full protocol x snoop-mode grid runs in check_tests
# (ctest -L protocol); this is the seconds-scale shell gate.
"$repo_root/build/src/check/protocol_diff" --steps 500 \
  || { echo "protocol smoke: engine diverged from a protocol reference"; exit 1; }
echo "protocol smoke: ok"

echo "== simulated-engine smoke =="
# The event-driven bandwidth engine must (a) run the Fig. 8 quick sweep
# end to end under --engine simulated with byte-identical CSVs for any
# --jobs value, and (b) agree with the analytic solver point-for-point:
# validate_bw_model exits nonzero if any quick-sweep point diverges more
# than 10% or the simulated Table VII scaling dips before the knee.
"$repo_root/build/bench/fig8_bandwidth_source" --quick --seed 1 --jobs 1 \
  --engine simulated --csv "$trace_dir/fig8.sim.jobs1.csv" > /dev/null
"$repo_root/build/bench/fig8_bandwidth_source" --quick --seed 1 --jobs 8 \
  --engine simulated --csv "$trace_dir/fig8.sim.jobs8.csv" > /dev/null
cmp -s "$trace_dir/fig8.sim.jobs1.csv" "$trace_dir/fig8.sim.jobs8.csv" \
  || { echo "simulated smoke: --jobs 1 vs 8 CSVs differ"; exit 1; }
"$repo_root/build/bench/validate_bw_model" --quick > /dev/null \
  || { echo "simulated smoke: analytic-vs-simulated agreement gate failed"; exit 1; }
# bottleneck_knee exits nonzero if the throughput knee and the first
# resource saturation land on different core counts for either snoop mode.
"$repo_root/build/bench/bottleneck_knee" --quick --seed 1 > /dev/null \
  || { echo "simulated smoke: bottleneck knee does not match first saturation"; exit 1; }
echo "simulated smoke: ok"

if [[ "${HSWSIM_CHECK_SKIP_PERF:-0}" != "1" ]]; then
  echo "== perf-ratio guard =="
  # Absolute ns/op is not gateable on shared/virtualized hardware: identical
  # code measures +-30% run to run (steal time, frequency, layout), so a
  # tight bound against BENCH_simcore.json flaps no matter the tolerance.
  # What IS stable is a same-run ratio — both sides of each pair run in one
  # process seconds apart, so machine state cancels.  The guard therefore
  # compares pair ratios against the same ratios in the committed
  # BENCH_simcore.json:
  #  * fast-path vs frozen-legacy pairs (BM_X / BM_XLegacy: cache array,
  #    event kernel, MESIF tables, aggregate access path) — catches a
  #    reintroduced per-event allocation or a broken tag-scan fast path,
  #    which show up as 2x+ ratio jumps;
  #  * instrumentation on/off pairs (attribution vs null tracer, metrics
  #    attached vs detached, flight recorder attached vs detached, resource
  #    telemetry attached vs detached) — catches overhead creep on the
  #    observability hot paths.
  # A genuine regression moves a ratio by 2x+; run-to-run ratio noise on
  # the ns-scale rows is up to ~25%, hence the generous default
  # HSWSIM_PERF_TOLERANCE (50%).  Raise it or set HSWSIM_CHECK_SKIP_PERF=1
  # on very noisy machines.
  "$repo_root/build/bench/simbench" \
    --benchmark_filter='TracingOff|Attribution|MetricsOn|MetricsOff|LineStatsOn|LineStatsOff|ResStatsOn|ResStatsOff|BM_Cache|BM_EventKernelChurn|BM_MesifTransition|BM_AccessThroughput' \
    --benchmark_repetitions=3 --benchmark_min_time=0.1 \
    --benchmark_out="$trace_dir/perf.json" --benchmark_out_format=json \
    > /dev/null 2>&1
  python3 - "$repo_root/BENCH_simcore.json" "$trace_dir/perf.json" \
      "${HSWSIM_PERF_TOLERANCE:-50}" <<'PY'
import json, statistics, sys

baseline_path, fresh_path = sys.argv[1], sys.argv[2]
tol = float(sys.argv[3])
PAIRS = [  # (numerator, denominator): gated on numerator/denominator growth
    ("BM_CacheLookupHit", "BM_CacheLookupHitLegacy"),
    ("BM_CacheLookupMiss", "BM_CacheLookupMissLegacy"),
    ("BM_CacheInsertEvict", "BM_CacheInsertEvictLegacy"),
    ("BM_CacheInsertPlru", "BM_CacheInsertPlruLegacy"),
    ("BM_CacheFillFlush", "BM_CacheFillFlushLegacy"),
    ("BM_EventKernelChurn", "BM_EventKernelChurnLegacy"),
    ("BM_AccessThroughput", "BM_AccessThroughputLegacy"),
    ("BM_MesifTransitionTable", "BM_MesifTransitionLadder"),
    ("BM_L1HitAttribution", "BM_L1HitTracingOff"),
    ("BM_MemoryReadAttribution", "BM_MemoryReadTracingOff"),
    ("BM_L1HitMetricsOn", "BM_L1HitMetricsOff"),
    ("BM_MemoryReadMetricsOn", "BM_MemoryReadMetricsOff"),
    ("BM_L1HitLineStatsOn", "BM_L1HitLineStatsOff"),
    ("BM_MemoryReadLineStatsOn", "BM_MemoryReadLineStatsOff"),
    ("BM_ClosedLoopResStatsOn", "BM_ClosedLoopResStatsOff"),
]

def times(path):
    out = {}
    for b in json.load(open(path))["benchmarks"]:
        if b.get("run_type", "iteration") == "iteration":
            out.setdefault(b["name"].split("/")[0], []).append(b["cpu_time"])
    return out

def ratio(table, num, den):
    if num not in table or den not in table:
        return None
    return statistics.median(table[num]) / statistics.median(table[den])

baseline, fresh = times(baseline_path), times(fresh_path)
failed = False
for num, den in PAIRS:
    base_r, fresh_r = ratio(baseline, num, den), ratio(fresh, num, den)
    if base_r is None:
        print(f"  {num}/{den}: missing from BENCH_simcore.json "
              "(regenerate via build/bench/simbench)")
        failed = True
        continue
    if fresh_r is None:
        print(f"  {num}/{den}: missing from the fresh run")
        failed = True
        continue
    delta = (fresh_r / base_r - 1.0) * 100.0
    verdict = "ok" if delta <= tol else "REGRESSION"
    print(f"  {num}/{den}: ratio {fresh_r:.2f} vs baseline {base_r:.2f} "
          f"({delta:+.1f}%, limit +{tol:.0f}%) {verdict}")
    failed |= delta > tol
sys.exit(1 if failed else 0)
PY
fi

echo "== experiment-server smoke =="
# The daemon end to end over its unix socket: the same 2-spec batch submits
# twice; round 1 simulates, round 2 must be 100% cache hits with payload
# files byte-identical to round 1's, the shutdown must be acknowledged and
# the daemon must exit 0, and the stats dump must render via
# `hswsim-report cache`.
serve_sock="$trace_dir/hswsim.sock"
cat > "$trace_dir/spec_lat.json" <<'SPEC'
{"hswsim_spec_version": 1, "kind": "latency", "sizes": [16384],
 "max_measured_lines": 256}
SPEC
cat > "$trace_dir/spec_bw.json" <<'SPEC'
{"hswsim_spec_version": 1, "kind": "bandwidth", "sizes": [1048576]}
SPEC
"$repo_root/build/examples/hswsim-serve" --socket "$serve_sock" \
  --cache-dir "$trace_dir/serve-cache" --jobs 2 \
  --stats "$trace_dir/serve-stats.json" 2> /dev/null &
serve_pid=$!
for _ in $(seq 1 100); do
  [[ -S "$serve_sock" ]] && break
  sleep 0.05
done
[[ -S "$serve_sock" ]] \
  || { echo "server smoke: daemon never opened its socket"; exit 1; }
mkdir -p "$trace_dir/round1" "$trace_dir/round2"
"$repo_root/build/examples/hswsim-submit" --socket "$serve_sock" \
  --payload-dir "$trace_dir/round1" \
  "$trace_dir/spec_lat.json" "$trace_dir/spec_bw.json" \
  > "$trace_dir/round1.out" \
  || { echo "server smoke: round 1 submit failed"; exit 1; }
"$repo_root/build/examples/hswsim-submit" --socket "$serve_sock" \
  --payload-dir "$trace_dir/round2" --shutdown \
  "$trace_dir/spec_lat.json" "$trace_dir/spec_bw.json" \
  > "$trace_dir/round2.out" \
  || { echo "server smoke: round 2 submit failed"; exit 1; }
[[ "$(grep -c 'cached=true' "$trace_dir/round2.out")" == "2" ]] \
  || { echo "server smoke: round 2 was not served 100% from the cache"; \
       cat "$trace_dir/round2.out"; exit 1; }
for i in 0 1; do
  cmp -s "$trace_dir/round1/result$i.json" "$trace_dir/round2/result$i.json" \
    || { echo "server smoke: cached payload $i differs from the fresh one"; \
         exit 1; }
done
wait "$serve_pid" \
  || { echo "server smoke: daemon did not exit cleanly on shutdown"; exit 1; }
"$repo_root/build/src/metrics/hswsim-report" cache \
  "$trace_dir/serve-stats.json" > /dev/null \
  || { echo "server smoke: hswsim-report cache cannot render the stats dump"; \
       exit 1; }
grep -q '"hits": 2' "$trace_dir/serve-stats.json" \
  || { echo "server smoke: stats dump does not show 2 hits"; exit 1; }
echo "server smoke: ok"

echo "== sampling agreement smoke =="
# Sampled sweeps must track exact runs within 2% on the quick Fig. 4/8
# grids, reproduce bit-identically per (ratio, seed), and leave
# under-floor points exact; the full-size sweep runs in CI via
# bench_validate_sampling_quick and here end to end.
"$repo_root/build/bench/validate_sampling" --quick > /dev/null \
  || { echo "sampling smoke: sampled-vs-full divergence gate failed"; exit 1; }
echo "sampling smoke: ok"

if [[ "${HSWSIM_CHECK_SKIP_SANITIZER:-0}" != "1" ]]; then
  echo "== ${sanitizer} sanitizer configuration =="
  run_config "$repo_root/build-${sanitizer}" "-DHSWSIM_SANITIZE=${sanitizer}"
fi

echo "check.sh: all green"
