#!/usr/bin/env bash
# Regenerates every golden CSV under tests/golden/ from a built tree.
#
# Run this after a deliberate model change (new timing calibration, protocol
# fix, table layout change), then review `git diff tests/golden/` like any
# other code change: every moved number should be explainable by the change
# you made.
#
# Usage: scripts/update_goldens.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
golden_dir="$repo_root/tests/golden"

if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: $build_dir/bench not found — configure and build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

benches=(
  fig4_latency_source fig5_latency_homesnoop fig6_latency_cod
  fig7_latency_shared fig8_bandwidth_source fig9_bandwidth_shared
  fig10_applications
  table1_uarch table2_system table3_latency_summary
  table4_shared_l3_matrix table5_memory_directory
  table6_bandwidth_summary table7_bandwidth_scaling table8_bandwidth_cod
  attribution_breakdown protocol_matrix sharing_patterns
)

for bench in "${benches[@]}"; do
  echo "golden: $bench"
  # The exact invocation the golden_* CTests replay (tests/golden/run_golden.cmake).
  "$build_dir/bench/$bench" --quick --seed 1 --jobs 2 \
    --csv "$golden_dir/$bench.csv" > /dev/null
done

echo "done — review with: git diff $golden_dir"
