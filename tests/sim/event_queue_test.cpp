#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace hsw {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(queue.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterIsRelative) {
  EventQueue queue;
  double fired_at = -1.0;
  queue.schedule_at(10.0, [&] {
    queue.schedule_after(5.0, [&] { fired_at = queue.now(); });
  });
  queue.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue queue;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) queue.schedule_after(1.0, chain);
  };
  queue.schedule_at(0.0, chain);
  EXPECT_EQ(queue.run(), 10u);
  EXPECT_DOUBLE_EQ(queue.now(), 9.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue queue;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    queue.schedule_at(t, [&fired, &queue] { fired.push_back(queue.now()); });
  }
  EXPECT_EQ(queue.run_until(2.5), 2u);
  EXPECT_DOUBLE_EQ(queue.now(), 2.5);
  EXPECT_EQ(queue.pending(), 2u);
  queue.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, MaxEventsBound) {
  EventQueue queue;
  for (int i = 0; i < 10; ++i) queue.schedule_at(i, [] {});
  EXPECT_EQ(queue.run(3), 3u);
  EXPECT_EQ(queue.pending(), 7u);
}

TEST(EventQueue, KeyOrdersSameTimestampEvents) {
  // The exec engine passes the issuing core id as the key: a same-timestamp
  // burst from several cores must run in core order, independent of the
  // order the events were scheduled in.
  EventQueue queue;
  std::vector<int> order;
  for (int core : {3, 1, 0, 2}) {
    queue.schedule_at(5.0, core, [&order, core] { order.push_back(core); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EqualKeysKeepInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    queue.schedule_at(1.0, 7, [&order, i] { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, TimeBeatsKey) {
  // A later timestamp with a smaller key must still run after an earlier
  // timestamp with a bigger key.
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(2.0, 0, [&] { order.push_back(20); });
  queue.schedule_at(1.0, 9, [&] { order.push_back(19); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{19, 20}));
}

TEST(EventQueue, MultiCoreBurstInterleavesDeterministically) {
  // Three "cores" each schedule a chain of same-timestamp events, shuffled
  // at scheduling time.  Replaying twice must give the identical total
  // order: (timestamp, key, seq) leaves nothing to scheduling luck.
  auto run_once = [] {
    EventQueue queue;
    std::vector<std::pair<double, int>> order;
    for (double t : {1.0, 2.0}) {
      for (int core : {2, 0, 1}) {
        for (int rep = 0; rep < 2; ++rep) {
          queue.schedule_at(t, core, [&order, t, core] {
            order.emplace_back(t, core);
          });
        }
      }
    }
    queue.run();
    return order;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  const std::vector<std::pair<double, int>> expected = {
      {1.0, 0}, {1.0, 0}, {1.0, 1}, {1.0, 1}, {1.0, 2}, {1.0, 2},
      {2.0, 0}, {2.0, 0}, {2.0, 1}, {2.0, 1}, {2.0, 2}, {2.0, 2}};
  EXPECT_EQ(a, expected);
}

TEST(EventQueue, ScheduleAfterCarriesKey) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(1.0, [&] {
    queue.schedule_after(1.0, 5, [&] { order.push_back(5); });
    queue.schedule_after(1.0, 2, [&] { order.push_back(2); });
  });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{2, 5}));
}

TEST(EventQueue, ClearResets) {
  EventQueue queue;
  queue.schedule_at(5.0, [] {});
  queue.run();
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
}

// clear() must drop *pending* events without running them — including the
// remainder of a live epoch when a bounded run() stopped mid-timestamp —
// and rewind the clock so earlier times are schedulable again.
TEST(EventQueue, ClearDropsPendingEventsWithoutRunningThem) {
  EventQueue queue;
  int ran = 0;
  for (int i = 0; i < 3; ++i) queue.schedule_at(1.0, [&] { ++ran; });
  queue.schedule_at(9.0, [&] { ++ran; });
  queue.run(1);  // stops mid-epoch: two 1.0 events + the 9.0 event pending
  EXPECT_EQ(queue.pending(), 3u);
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(ran, 1);
  // The clock rewound: times before the old now() are valid again.
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
  queue.schedule_at(0.5, [&] { ++ran; });
  queue.run();
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(queue.now(), 0.5);
}

// A cleared queue must behave exactly like a freshly constructed one: the
// insertion-order tie-break restarts, so re-running the same schedule
// reproduces the same dispatch order (the reuse pattern the exec engine
// relies on between measurement windows).
TEST(EventQueue, ClearRestartsInsertionOrderTieBreak) {
  EventQueue queue;
  auto run_schedule = [&] {
    std::vector<int> order;
    // Same (time, key) for all: only insertion order distinguishes them.
    for (int i = 0; i < 4; ++i) {
      queue.schedule_at(1.0, 7, [&order, i] { order.push_back(i); });
    }
    queue.run();
    return order;
  };
  const std::vector<int> fresh = run_schedule();
  queue.clear();
  const std::vector<int> reused = run_schedule();
  EXPECT_EQ(fresh, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(reused, fresh);
}

}  // namespace
}  // namespace hsw
