#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace hsw {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(queue.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterIsRelative) {
  EventQueue queue;
  double fired_at = -1.0;
  queue.schedule_at(10.0, [&] {
    queue.schedule_after(5.0, [&] { fired_at = queue.now(); });
  });
  queue.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue queue;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) queue.schedule_after(1.0, chain);
  };
  queue.schedule_at(0.0, chain);
  EXPECT_EQ(queue.run(), 10u);
  EXPECT_DOUBLE_EQ(queue.now(), 9.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue queue;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    queue.schedule_at(t, [&fired, &queue] { fired.push_back(queue.now()); });
  }
  EXPECT_EQ(queue.run_until(2.5), 2u);
  EXPECT_DOUBLE_EQ(queue.now(), 2.5);
  EXPECT_EQ(queue.pending(), 2u);
  queue.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, MaxEventsBound) {
  EventQueue queue;
  for (int i = 0; i < 10; ++i) queue.schedule_at(i, [] {});
  EXPECT_EQ(queue.run(3), 3u);
  EXPECT_EQ(queue.pending(), 7u);
}

TEST(EventQueue, ClearResets) {
  EventQueue queue;
  queue.schedule_at(5.0, [] {});
  queue.run();
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
}

}  // namespace
}  // namespace hsw
