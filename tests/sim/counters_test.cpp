#include "sim/counters.h"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

namespace hsw {
namespace {

TEST(Counters, BumpAndRead) {
  CounterSet counters;
  EXPECT_EQ(counters.value(Ctr::kDramReads), 0u);
  counters.bump(Ctr::kDramReads);
  counters.bump(Ctr::kDramReads, 4);
  EXPECT_EQ(counters.value(Ctr::kDramReads), 5u);
}

TEST(Counters, LookupByPerfName) {
  CounterSet counters;
  counters.bump(Ctr::kLoadsRemoteFwd, 3);
  const auto found = counters.value("mem_load_uops_l3_miss_retired.remote_fwd");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 3u);
}

TEST(Counters, LookupByUnknownNameIsDistinguishableFromZero) {
  CounterSet counters;
  // A typo'd event name must not read as a plausible zero: a zeroed valid
  // counter and an unknown name give different results.
  EXPECT_EQ(counters.value("mem_load_uops_retired.l1_hit"),
            std::optional<std::uint64_t>(0));
  EXPECT_EQ(counters.value("mem_load_uops_retired.l1_hti"), std::nullopt);
  EXPECT_EQ(counters.value("not.a.counter"), std::nullopt);
  EXPECT_EQ(counters.value(""), std::nullopt);
}

TEST(Counters, EveryCounterHasAUniqueName) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kCtrCount; ++i) {
    names.insert(ctr_name(static_cast<Ctr>(i)));
  }
  EXPECT_EQ(names.size(), kCtrCount);
}

TEST(Counters, DiffIsPerfStyleDelta) {
  CounterSet counters;
  counters.bump(Ctr::kSnoopsSent, 10);
  const auto before = counters.snapshot();
  counters.bump(Ctr::kSnoopsSent, 5);
  counters.bump(Ctr::kCoreSnoops, 2);
  const auto delta = counters.diff(before);
  EXPECT_EQ(delta[static_cast<std::size_t>(Ctr::kSnoopsSent)], 5u);
  EXPECT_EQ(delta[static_cast<std::size_t>(Ctr::kCoreSnoops)], 2u);
  EXPECT_EQ(delta[static_cast<std::size_t>(Ctr::kDramReads)], 0u);
}

TEST(Counters, ResetZeroesEverything) {
  CounterSet counters;
  counters.bump(Ctr::kHitmeHit, 7);
  counters.reset();
  EXPECT_EQ(counters.value(Ctr::kHitmeHit), 0u);
}

TEST(Counters, NamedReportsOnlyNonZero) {
  CounterSet counters;
  counters.bump(Ctr::kDramWrites, 2);
  const auto named = counters.named();
  EXPECT_EQ(named.size(), 1u);
  EXPECT_EQ(named.at("uncore_imc.cas_count_write"), 2u);
}

}  // namespace
}  // namespace hsw
