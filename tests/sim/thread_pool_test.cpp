#include "sim/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace hsw {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_indexed(pool, hits.size(),
                       [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  parallel_for_indexed(pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, MoreJobsThanItems) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  parallel_for_indexed(pool, hits.size(),
                       [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> order;
  parallel_for_indexed(pool, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: serial path, no races
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesTheLowestIndexException) {
  ThreadPool pool(4);
  try {
    parallel_for_indexed(pool, 100, [&](std::size_t i) {
      if (i == 7 || i == 60) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");
  }
}

TEST(ThreadPool, RemainingItemsStillRunAfterAThrow) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(parallel_for_indexed(pool, 200,
                                    [&](std::size_t i) {
                                      executed.fetch_add(1);
                                      if (i == 0) throw std::logic_error("x");
                                    }),
               std::logic_error);
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPool, ReusableAcrossLoops) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::size_t> values(64, 0);
    parallel_for_indexed(pool, values.size(),
                         [&](std::size_t i) { values[i] = i * i; });
    for (std::size_t i = 0; i < values.size(); ++i) EXPECT_EQ(values[i], i * i);
  }
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<std::size_t> sum{0};
  parallel_for_indexed(pool, 100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

}  // namespace
}  // namespace hsw
