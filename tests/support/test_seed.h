// Seed override for the randomized (property-based / differential) tests.
//
// Set HSWSIM_TEST_SEED=<n> to xor an extra seed into every randomized test,
// exploring a fresh slice of the input space without editing the hardcoded
// scenario lists.  Failures log the effective seed so a CI hit reproduces
// with: HSWSIM_TEST_SEED=<n> ctest -R <test> --output-on-failure
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace hswtest {

// The operator-supplied extra seed (0 when HSWSIM_TEST_SEED is unset or
// unparsable — xor with 0 keeps the checked-in scenario seeds).
inline std::uint64_t seed_override() {
  static const std::uint64_t value = [] {
    const char* env = std::getenv("HSWSIM_TEST_SEED");
    if (env == nullptr || *env == '\0') return std::uint64_t{0};
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 0);
    if (end == nullptr || *end != '\0') return std::uint64_t{0};
    return static_cast<std::uint64_t>(parsed);
  }();
  return value;
}

// Scenario seed with the environment override mixed in.
inline std::uint64_t effective_seed(std::uint64_t base) {
  return base ^ seed_override();
}

// One-line provenance string for failure messages.
inline std::string seed_note(std::uint64_t base) {
  return "seed " + std::to_string(effective_seed(base)) + " (base " +
         std::to_string(base) + ", HSWSIM_TEST_SEED=" +
         std::to_string(seed_override()) + ")";
}

}  // namespace hswtest
