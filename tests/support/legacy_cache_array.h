// The pre-SoA array-of-structures CacheArray, frozen as a reference model.
//
// This is the implementation the striped (structure-of-arrays) CacheArray
// in src/mem/cache_array.h replaced: one flat array of {entry, lru} ways
// scanned serially, with the identical LRU-clock and tree-PLRU replacement
// logic.  The differential test (tests/mem/cache_array_differential_test.cpp)
// drives both through randomized op interleavings and demands equal hits,
// metadata, and *exact* victim sequences; simbench pairs it against the SoA
// array to measure the layout's speedup.
//
// Deliberately not shared with src/: the point is an independent copy that
// does not evolve with the production array.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mem/cache_array.h"  // hsw::Replacement, hsw::CacheEntry
#include "mem/line.h"

namespace hswtest {

class LegacyCacheArray {
 public:
  LegacyCacheArray(std::uint64_t capacity_bytes, unsigned associativity,
                   hsw::Replacement replacement = hsw::Replacement::kLru)
      : assoc_(associativity), replacement_(replacement) {
    if (associativity == 0 || capacity_bytes == 0 ||
        capacity_bytes %
                (static_cast<std::uint64_t>(associativity) * hsw::kLineSize) !=
            0) {
      throw std::invalid_argument(
          "cache capacity must be a multiple of assoc * 64B");
    }
    const std::uint64_t set_count =
        capacity_bytes /
        (static_cast<std::uint64_t>(associativity) * hsw::kLineSize);
    if (!std::has_single_bit(set_count)) {
      throw std::invalid_argument("cache set count must be a power of two");
    }
    if (replacement == hsw::Replacement::kTreePlru &&
        !std::has_single_bit(static_cast<std::uint64_t>(associativity))) {
      throw std::invalid_argument("tree-PLRU requires power-of-two assoc");
    }
    if (associativity > 64) {
      throw std::invalid_argument("associativity above 64 is unsupported");
    }
    set_count_ = static_cast<std::size_t>(set_count);
    set_mask_ = set_count_ - 1;
    full_mask_ = assoc_ == 64 ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << assoc_) - 1;
    ways_.resize(set_count_ * assoc_);
    valid_mask_.assign(set_count_, 0);
    plru_.assign(set_count_, 0);
  }

  [[nodiscard]] unsigned associativity() const { return assoc_; }
  [[nodiscard]] std::size_t set_count() const { return set_count_; }

  hsw::CacheEntry* lookup(hsw::LineAddr line, bool touch = true) {
    const std::size_t idx = set_index(line);
    Way* const base = ways_.data() + idx * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
      Way& way = base[w];
      if (way.entry.line == line && hsw::is_valid(way.entry.state)) {
        if (touch) touch_way(idx, w);
        return &way.entry;
      }
    }
    return nullptr;
  }

  [[nodiscard]] const hsw::CacheEntry* peek(hsw::LineAddr line) const {
    const std::size_t idx = set_index(line);
    const Way* const base = ways_.data() + idx * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
      const Way& way = base[w];
      if (way.entry.line == line && hsw::is_valid(way.entry.state)) {
        return &way.entry;
      }
    }
    return nullptr;
  }
  [[nodiscard]] bool contains(hsw::LineAddr line) const {
    return peek(line) != nullptr;
  }

  struct InsertResult {
    hsw::CacheEntry* entry = nullptr;
    std::optional<hsw::CacheEntry> victim;
  };
  InsertResult insert(hsw::LineAddr line, hsw::Mesif state) {
    assert(hsw::is_valid(state));
    assert(!contains(line) && "insert of an already-present line");
    const std::size_t idx = set_index(line);
    Way* const set = ways_.data() + idx * assoc_;

    InsertResult result;
    std::size_t target;
    const std::uint64_t valid = valid_mask_[idx];
    if (valid != full_mask_) {
      target = static_cast<std::size_t>(std::countr_one(valid));
    } else {
      target = victim_way(set, idx);
      result.victim = set[target].entry;
    }
    set[target].entry = hsw::CacheEntry{line, state, 0, 0};
    valid_mask_[idx] = valid | (std::uint64_t{1} << target);
    touch_way(idx, target);
    result.entry = &set[target].entry;
    return result;
  }

  std::optional<hsw::CacheEntry> erase(hsw::LineAddr line) {
    const std::size_t idx = set_index(line);
    Way* const set = ways_.data() + idx * assoc_;
    for (std::size_t w = 0; w < assoc_; ++w) {
      hsw::CacheEntry& entry = set[w].entry;
      if (entry.line == line && hsw::is_valid(entry.state)) {
        hsw::CacheEntry prior = entry;
        entry = hsw::CacheEntry{};
        valid_mask_[idx] &= ~(std::uint64_t{1} << w);
        return prior;
      }
    }
    return std::nullopt;
  }

  template <typename OnEvict>
  void flush(OnEvict&& on_evict) {
    for (Way& way : ways_) {
      if (hsw::is_valid(way.entry.state)) {
        on_evict(std::as_const(way.entry));
        way.entry = hsw::CacheEntry{};
      }
    }
    valid_mask_.assign(set_count_, 0);
  }

  [[nodiscard]] std::size_t valid_count() const {
    std::size_t n = 0;
    for (const Way& way : ways_) {
      if (hsw::is_valid(way.entry.state)) ++n;
    }
    return n;
  }

  [[nodiscard]] const hsw::CacheEntry* replacement_victim(
      hsw::LineAddr line_in_set) const {
    const std::size_t idx = set_index(line_in_set);
    if (valid_mask_[idx] != full_mask_) return nullptr;
    const Way* const set = ways_.data() + idx * assoc_;
    return &set[victim_way(set, idx)].entry;
  }

 private:
  struct Way {
    hsw::CacheEntry entry;
    std::uint64_t lru = 0;  // larger == more recent
  };

  [[nodiscard]] std::size_t set_index(hsw::LineAddr line) const {
    return static_cast<std::size_t>(line) & set_mask_;
  }
  [[nodiscard]] std::size_t victim_way(const Way* set,
                                       std::size_t set_idx) const {
    if (replacement_ == hsw::Replacement::kLru) {
      std::size_t victim = 0;
      for (std::size_t w = 1; w < assoc_; ++w) {
        if (set[w].lru < set[victim].lru) victim = w;
      }
      return victim;
    }
    const std::uint32_t tree = plru_[set_idx];
    std::size_t node = 0;
    std::size_t width = assoc_;
    std::size_t base = 0;
    while (width > 1) {
      const bool right = (tree >> node) & 1u;
      width /= 2;
      if (right) base += width;
      node = 2 * node + (right ? 2 : 1);
    }
    return base;
  }
  void touch_way(std::size_t set_idx, std::size_t way) {
    ways_[set_idx * assoc_ + way].lru = ++clock_;
    if (replacement_ == hsw::Replacement::kTreePlru) touch_plru(set_idx, way);
  }
  void touch_plru(std::size_t set_idx, std::size_t way) {
    std::uint32_t tree = plru_[set_idx];
    std::size_t node = 0;
    std::size_t width = assoc_;
    std::size_t base = 0;
    while (width > 1) {
      width /= 2;
      const bool in_right_half = way >= base + width;
      if (in_right_half) {
        tree &= ~(1u << node);
        base += width;
        node = 2 * node + 2;
      } else {
        tree |= (1u << node);
        node = 2 * node + 1;
      }
    }
    plru_[set_idx] = tree;
  }

  unsigned assoc_;
  std::size_t set_count_;
  std::size_t set_mask_;
  std::uint64_t full_mask_;
  hsw::Replacement replacement_;
  std::vector<Way> ways_;
  std::vector<std::uint64_t> valid_mask_;
  std::vector<std::uint32_t> plru_;
  std::uint64_t clock_ = 0;
};

}  // namespace hswtest
