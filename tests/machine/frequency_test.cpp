#include "machine/frequency.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

TEST(Frequency, AvxLicenceEndpoints) {
  FrequencyModel model;
  EXPECT_DOUBLE_EQ(model.core_ghz(0.0), 2.5);
  EXPECT_DOUBLE_EQ(model.core_ghz(1.0), 2.1);  // paper footnote 3
  EXPECT_GT(model.core_ghz(0.5), 2.1);
  EXPECT_LT(model.core_ghz(0.5), 2.5);
}

TEST(Frequency, UncoreScalesWithUtilization) {
  FrequencyModel model;
  EXPECT_DOUBLE_EQ(model.uncore_ghz(0.0), model.uncore_min_ghz);
  EXPECT_DOUBLE_EQ(model.uncore_ghz(1.0), model.uncore_max_ghz);
  EXPECT_LT(model.uncore_ghz(0.3), model.uncore_ghz(0.7));
}

TEST(Frequency, LatencyAndBandwidthScalesAreReciprocal) {
  FrequencyModel model;
  for (double u : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_NEAR(model.l3_bandwidth_scale(u) * model.l3_latency_scale(u), 1.0,
                1e-12);
  }
}

TEST(Frequency, BoostHeadroomMatchesPaperRatio) {
  // 343 / 278 = 1.23: the boost ceiling over the typical operating point.
  FrequencyModel model;
  EXPECT_NEAR(model.uncore_max_ghz / model.uncore_nominal_ghz, 343.0 / 278.0,
              0.03);
}

TEST(Frequency, SampledRunsShowOccasionalBoosts) {
  FrequencyModel model;
  Xoshiro256 rng(5);
  int boosted = 0;
  double max_scale = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const auto sample = model.sample_run(1.0, rng);
    boosted += sample.boosted;
    max_scale = std::max(max_scale, sample.bandwidth_scale);
  }
  EXPECT_GT(boosted, 50);   // "occasionally"
  EXPECT_LT(boosted, 400);  // but not typically
  EXPECT_NEAR(max_scale, 343.0 / 278.0, 0.03);
}

TEST(Frequency, SamplesAreDeterministicPerSeed) {
  FrequencyModel model;
  Xoshiro256 a(9);
  Xoshiro256 b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(model.sample_run(0.8, a).bandwidth_scale,
                     model.sample_run(0.8, b).bandwidth_scale);
  }
}

}  // namespace
}  // namespace hsw
