// The paper's §III-B describes three die variants (8-, 12-, 18-core); the
// test system uses the 12-core die, but the model must build and behave
// sensibly for all of them.
#include <gtest/gtest.h>

#include "core/hswbench.h"

namespace hsw {
namespace {

SystemConfig config_for(DieSku sku, SnoopMode mode) {
  SystemConfig config;
  config.sku = sku;
  config.snoop_mode = mode;
  return config;
}

class SkuTest : public ::testing::TestWithParam<DieSku> {};

TEST_P(SkuTest, BuildsAndServesTheLatencyLadder) {
  System sys(config_for(GetParam(), SnoopMode::kSourceSnoop));
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  sys.write(0, a);
  EXPECT_DOUBLE_EQ(sys.read(0, a).ns, sys.timing().l1_hit);
  sys.evict_core_caches(0);
  const AccessResult l3 = sys.read(0, a);
  EXPECT_EQ(l3.source, ServiceSource::kL3);
  EXPECT_GT(l3.ns, sys.timing().l2_hit);
  const PhysAddr remote = sys.alloc_on_node(1, 64).base;
  EXPECT_EQ(sys.read(0, remote).source, ServiceSource::kRemoteDram);
}

TEST_P(SkuTest, CoreCountsAndL3Capacity) {
  System sys(config_for(GetParam(), SnoopMode::kSourceSnoop));
  const int per_die = cores_per_die(GetParam());
  EXPECT_EQ(sys.core_count(), 2 * per_die);
  EXPECT_EQ(sys.node_l3_bytes(0),
            static_cast<std::uint64_t>(per_die) * 2560 * 1024);
}

TEST_P(SkuTest, CrossSocketTransferWorks) {
  System sys(config_for(GetParam(), SnoopMode::kSourceSnoop));
  const int remote_core = cores_per_die(GetParam());  // first core, socket 1
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  sys.write(remote_core, a);
  const AccessResult r = sys.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kRemoteFwd);
  EXPECT_GT(r.ns, 80.0);
}

INSTANTIATE_TEST_SUITE_P(AllDies, SkuTest,
                         ::testing::Values(DieSku::kEightCore,
                                           DieSku::kTwelveCore,
                                           DieSku::kEighteenCore),
                         [](const ::testing::TestParamInfo<DieSku>& param_info) {
                           return std::to_string(cores_per_die(param_info.param)) +
                                  "core";
                         });

TEST(SkuCod, EighteenCoreSupportsCod) {
  System sys(config_for(DieSku::kEighteenCore, SnoopMode::kCod));
  EXPECT_EQ(sys.node_count(), 4);
  EXPECT_EQ(sys.topology().node(0).cores.size(), 9u);
  // Cross-cluster transfer on the big die.
  const PhysAddr a = sys.alloc_on_node(1, 64).base;
  const int owner = sys.topology().node(1).cores[0];
  sys.write(owner, a);
  sys.evict_core_caches(owner);
  const AccessResult r = sys.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kRemoteFwd);
}

TEST(SkuCod, EightCoreRejectsCod) {
  EXPECT_THROW(System(config_for(DieSku::kEightCore, SnoopMode::kCod)),
               std::invalid_argument);
}

TEST(SkuCod, LocalL3LatencyShrinksWithClusterOnEveryCodDie) {
  for (DieSku sku : {DieSku::kTwelveCore, DieSku::kEighteenCore}) {
    System non_cod(config_for(sku, SnoopMode::kSourceSnoop));
    System cod(config_for(sku, SnoopMode::kCod));
    auto l3 = [](System& sys) {
      const PhysAddr a = sys.alloc_on_node(0, 64).base;
      sys.write(0, a);
      sys.evict_core_caches(0);
      return sys.read(0, a).ns;
    };
    EXPECT_LT(l3(cod), l3(non_cod)) << to_string(sku);
  }
}

}  // namespace
}  // namespace hsw
