// Identities the composed latencies must satisfy by construction — these
// pin the *mechanism*, not just the calibrated value.  If a refactor of the
// engine changes which components a path sums, these fail even when the
// headline numbers still look plausible.
#include <gtest/gtest.h>

#include "core/hswbench.h"

namespace hsw {
namespace {

double one_line_read(System& sys, int reader, int owner, int node, char state,
                     bool evict) {
  const PhysAddr a = sys.alloc_on_node(node, 64).base;
  sys.write(owner, a);
  if (state == 'E') {
    sys.flush_line(a);
    sys.read(owner, a);
  }
  if (evict) sys.evict_core_caches(owner);
  return sys.read(reader, a).ns;
}

TEST(Composition, EStatePenaltyIsExactlyTheCoreSnoop) {
  System a(SystemConfig::source_snoop());
  System b(SystemConfig::source_snoop());
  const double with_snoop = one_line_read(a, 0, 2, 0, 'E', true);
  const double plain = one_line_read(b, 0, 0, 0, 'E', true);
  EXPECT_NEAR(with_snoop - plain, a.timing().core_snoop_local, 1e-9);
}

TEST(Composition, CoreForwardAddsDataExtraction) {
  System a(SystemConfig::source_snoop());
  System b(SystemConfig::source_snoop());
  // M in other core's L1 vs E-in-L3-with-snoop: differ by the L1 data
  // extraction plus the local/remote snoop-cost asymmetry.
  const double m_l1 = one_line_read(a, 0, 2, 0, 'M', false);
  const double e_l3 = one_line_read(b, 0, 2, 0, 'E', true);
  EXPECT_NEAR(m_l1 - e_l3, a.timing().core_data_l1, 1e-9);
}

TEST(Composition, RemoteCoreSnoopDelta) {
  System a(SystemConfig::source_snoop());
  System b(SystemConfig::source_snoop());
  // Remote E (core snoop) minus remote M-in-L3 (no snoop) = the external
  // core-snoop cost (paper: 104 - 86 = 18).
  const double remote_e = one_line_read(a, 0, 12, 1, 'E', true);
  const double remote_m = one_line_read(b, 0, 12, 1, 'M', true);
  EXPECT_NEAR(remote_e - remote_m, a.timing().core_snoop_external, 1e-9);
}

TEST(Composition, L1AndL2HitsAreExactlyTheConfiguredTimings) {
  System sys(SystemConfig::source_snoop());
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  sys.write(0, a);
  EXPECT_DOUBLE_EQ(sys.read(0, a).ns, sys.timing().l1_hit);
  // Evict from L1 only: read hits L2.
  sys.state().cores[0].l1.erase(line_of(a));
  EXPECT_DOUBLE_EQ(sys.read(0, a).ns, sys.timing().l2_hit);
}

TEST(Composition, L3PathScalesWithRingDistance) {
  // Two cores at different mean distances from their node's slices must
  // differ by exactly 2 * d(hops) * ring_hop.
  System probe(SystemConfig::cluster_on_die());
  const double d0 = probe.topology().mean_core_to_ca_hops(0);
  const double d8 = probe.topology().mean_core_to_ca_hops(8);
  System a(SystemConfig::cluster_on_die());
  System b(SystemConfig::cluster_on_die());
  const double l0 = one_line_read(a, 0, 1, 0, 'M', true);
  const double l8 = one_line_read(b, 8, 9, 1, 'M', true);
  EXPECT_NEAR(l0 - l8, 2.0 * (d0 - d8) * probe.timing().ring_hop, 1e-9);
}

TEST(Composition, HomeSnoopAddsHaIngressToRemoteCacheReads) {
  System source(SystemConfig::source_snoop());
  System home(SystemConfig::home_snoop());
  const double s = one_line_read(source, 0, 12, 1, 'M', true);
  const double h = one_line_read(home, 0, 12, 1, 'M', true);
  // Home snoop inserts the HA handoff + processing before the local snoop.
  EXPECT_NEAR(h - s,
              source.timing().ca_to_ha_fixed + source.timing().ha_processing +
                  source.topology().mean_qpi_to_imc_hops(1) *
                      source.timing().ring_hop,
              1e-9);
}

TEST(Composition, QpiRoundTripSeparatesLocalAndRemoteForwards) {
  // Remote M-in-L3 (86 ns class) minus local M-in-L3 (21.2 ns class) =
  // QPI round trip + peer handling - the local CA's own lookup time.
  System a(SystemConfig::source_snoop());
  System b(SystemConfig::source_snoop());
  const double remote = one_line_read(a, 0, 12, 1, 'M', true);
  const double local = one_line_read(b, 0, 0, 0, 'M', true);
  const TimingParams& t = a.timing();
  EXPECT_NEAR(remote - local,
              2.0 * t.qpi_oneway + t.snoop_ca_lookup + t.cache_fwd_return,
              1e-9);
}

}  // namespace
}  // namespace hsw
