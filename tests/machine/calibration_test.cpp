// Calibration against the paper's measurements (Figures 4-6, Table III).
//
// Every latency below is *composed* by the protocol engine from the
// TimingParams constants; this test pins the composition to the numbers
// Molka et al. measured on real silicon.  Tolerances: 3% for the directly
// calibrated core cases, wider (12-16%) for the COD corner cases where the
// paper itself reports ranges (see EXPERIMENTS.md for the full accounting).
#include <gtest/gtest.h>

#include "core/hswbench.h"

namespace hsw {
namespace {

// Places a single line and measures one read, like the scalar experiments
// behind Fig. 4-6.
double one_line(System& sys, int reader, int owner, int node, char state,
                bool evict_owner_to_l3) {
  const PhysAddr a = sys.alloc_on_node(node, 64).base;
  switch (state) {
    case 'M':
      sys.write(owner, a);
      break;
    case 'E':
      sys.write(owner, a);
      sys.flush_line(a);
      sys.read(owner, a);
      break;
    default:
      break;
  }
  if (evict_owner_to_l3) sys.evict_core_caches(owner);
  return sys.read(reader, a).ns;
}

#define EXPECT_WITHIN(value, paper, tolerance)                        \
  EXPECT_NEAR(value, paper, (paper) * (tolerance))                    \
      << "paper reports " << (paper) << " ns"

TEST(CalibrationSourceSnoop, LocalHierarchy) {
  System sys(SystemConfig::source_snoop());
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  sys.write(0, a);
  EXPECT_WITHIN(sys.read(0, a).ns, 1.6, 0.01);  // L1
  sys.evict_core_caches(0);
  EXPECT_WITHIN(sys.read(0, a).ns, 21.2, 0.03);  // L3 (M written back)
}

TEST(CalibrationSourceSnoop, CoreToCoreSameSocket) {
  {
    System sys(SystemConfig::source_snoop());
    EXPECT_WITHIN(one_line(sys, 0, 1, 0, 'M', false), 53.0, 0.03);
  }
  {
    System sys(SystemConfig::source_snoop());
    EXPECT_WITHIN(one_line(sys, 0, 2, 0, 'E', true), 44.4, 0.03);
  }
  {
    // Own exclusive line evicted: no snoop penalty.
    System sys(SystemConfig::source_snoop());
    EXPECT_WITHIN(one_line(sys, 0, 0, 0, 'E', true), 21.2, 0.03);
  }
}

TEST(CalibrationSourceSnoop, CrossSocket) {
  {
    System sys(SystemConfig::source_snoop());
    EXPECT_WITHIN(one_line(sys, 0, 12, 1, 'M', false), 113.0, 0.03);
  }
  {
    System sys(SystemConfig::source_snoop());
    EXPECT_WITHIN(one_line(sys, 0, 12, 1, 'M', true), 86.0, 0.03);
  }
  {
    System sys(SystemConfig::source_snoop());
    EXPECT_WITHIN(one_line(sys, 0, 12, 1, 'E', true), 104.0, 0.03);
  }
}

TEST(CalibrationSourceSnoop, MemoryLatencyFromChase) {
  // Steady-state pointer chase over an out-of-cache buffer (row-buffer
  // conflicts dominate), exactly like the paper's latency benchmark.
  SystemConfig config = SystemConfig::source_snoop();
  for (auto [node, paper] : {std::pair{0, 96.4}, {1, 146.0}}) {
    System sys(config);
    LatencyConfig lc;
    lc.reader_core = 0;
    lc.placement = {.owner_core = 0, .memory_node = node,
                    .state = Mesif::kModified, .sharers = {},
                    .level = CacheLevel::kMemory};
    lc.buffer_bytes = mib(4);
    lc.max_measured_lines = 4096;
    EXPECT_WITHIN(measure_latency(sys, lc).mean_ns, paper, 0.04);
  }
}

TEST(CalibrationHomeSnoop, TableIII) {
  {
    System sys(SystemConfig::home_snoop());
    EXPECT_WITHIN(one_line(sys, 0, 12, 1, 'E', true), 115.0, 0.05);
  }
  for (auto [node, paper] : {std::pair{0, 108.0}, {1, 148.0}}) {
    System sys(SystemConfig::home_snoop());
    LatencyConfig lc;
    lc.reader_core = 0;
    lc.placement = {.owner_core = 0, .memory_node = node,
                    .state = Mesif::kModified, .sharers = {},
                    .level = CacheLevel::kMemory};
    lc.buffer_bytes = mib(4);
    lc.max_measured_lines = 4096;
    EXPECT_WITHIN(measure_latency(sys, lc).mean_ns, paper, 0.05);
  }
}

TEST(CalibrationCod, LocalL3PerCoreGroups) {
  // Table III: the asymmetric rings under a balanced NUMA split give each
  // core group its own local-L3 latency.
  struct Case {
    int reader, owner, node;
    double paper;
  };
  for (const Case& c : {Case{0, 1, 0, 18.0},    // first node
                        Case{6, 7, 1, 20.0},    // second node, ring 0
                        Case{8, 9, 1, 18.4}}) { // second node, ring 1
    System sys(SystemConfig::cluster_on_die());
    EXPECT_WITHIN(one_line(sys, c.reader, c.owner, c.node, 'M', true),
                  c.paper, 0.06);
  }
}

TEST(CalibrationCod, CrossNodeL3) {
  struct Case {
    int owner_node;
    char state;
    double paper;
    double tolerance;
  };
  // Fig. 6: on-chip vs 1-hop vs 2-hop QPI, modified and exclusive.
  for (const Case& c : {Case{1, 'M', 57.2, 0.12}, Case{1, 'E', 73.6, 0.12},
                        Case{2, 'M', 90.0, 0.08}, Case{2, 'E', 104.0, 0.10},
                        Case{3, 'M', 96.0, 0.16}, Case{3, 'E', 111.0, 0.16}}) {
    System sys(SystemConfig::cluster_on_die());
    const int owner = sys.topology().node(c.owner_node).cores[0];
    EXPECT_WITHIN(one_line(sys, 0, owner, c.owner_node, c.state, true),
                  c.paper, c.tolerance);
  }
}

TEST(CalibrationCod, MemoryLatencyByDistance) {
  // Table V diagonal: local, on-chip neighbour, 1-hop, 2-hop.
  struct Case {
    int reader, node;
    double paper;
  };
  for (const Case& c : {Case{0, 0, 89.6}, Case{0, 1, 96.0}, Case{0, 2, 141.0},
                        Case{0, 3, 147.0}, Case{6, 3, 153.0}}) {
    System sys(SystemConfig::cluster_on_die());
    LatencyConfig lc;
    lc.reader_core = c.reader;
    lc.placement = {.owner_core = c.reader, .memory_node = c.node,
                    .state = Mesif::kModified, .sharers = {},
                    .level = CacheLevel::kMemory};
    lc.buffer_bytes = mib(4);
    lc.max_measured_lines = 4096;
    EXPECT_WITHIN(measure_latency(sys, lc).mean_ns, c.paper, 0.07);
  }
}

TEST(Calibration, HomeSnoopCostsLocalMemoryLatency) {
  // The paper's headline home-snoop observation: +12% local memory latency,
  // unchanged remote latency, unchanged local L3.
  auto chase = [](const SystemConfig& config, int node) {
    System sys(config);
    LatencyConfig lc;
    lc.reader_core = 0;
    lc.placement = {.owner_core = 0, .memory_node = node,
                    .state = Mesif::kModified, .sharers = {},
                    .level = CacheLevel::kMemory};
    lc.buffer_bytes = mib(4);
    lc.max_measured_lines = 4096;
    return measure_latency(sys, lc).mean_ns;
  };
  const double source_local = chase(SystemConfig::source_snoop(), 0);
  const double home_local = chase(SystemConfig::home_snoop(), 0);
  const double ratio = home_local / source_local;
  EXPECT_GT(ratio, 1.08);
  EXPECT_LT(ratio, 1.18);

  const double source_remote = chase(SystemConfig::source_snoop(), 1);
  const double home_remote = chase(SystemConfig::home_snoop(), 1);
  EXPECT_NEAR(home_remote / source_remote, 1.0, 0.03);
}

TEST(Calibration, CodReducesLocalMemoryLatency) {
  auto chase = [](const SystemConfig& config) {
    System sys(config);
    LatencyConfig lc;
    lc.reader_core = 0;
    lc.placement = {.owner_core = 0, .memory_node = 0,
                    .state = Mesif::kModified, .sharers = {},
                    .level = CacheLevel::kMemory};
    lc.buffer_bytes = mib(4);
    lc.max_measured_lines = 4096;
    return measure_latency(sys, lc).mean_ns;
  };
  const double source = chase(SystemConfig::source_snoop());
  const double cod = chase(SystemConfig::cluster_on_die());
  // Paper: 96.4 -> 89.6 (-7.1%).
  EXPECT_LT(cod, source);
  EXPECT_NEAR(cod / source, 0.93, 0.04);
}

}  // namespace
}  // namespace hsw
