#include "machine/system.h"

#include <gtest/gtest.h>

#include "machine/specs.h"

namespace hsw {
namespace {

TEST(SystemConfig, Presets) {
  EXPECT_EQ(SystemConfig::source_snoop().snoop_mode, SnoopMode::kSourceSnoop);
  EXPECT_EQ(SystemConfig::home_snoop().snoop_mode, SnoopMode::kHomeSnoop);
  EXPECT_EQ(SystemConfig::cluster_on_die().snoop_mode, SnoopMode::kCod);
}

TEST(SystemConfig, DescribeMentionsKeyFacts) {
  const std::string text = SystemConfig::cluster_on_die().describe();
  EXPECT_NE(text.find("12-core"), std::string::npos);
  EXPECT_NE(text.find("Cluster-on-Die"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
}

TEST(System, FeatureFlagsFollowSnoopMode) {
  EXPECT_FALSE(System(SystemConfig::source_snoop()).state().features.directory);
  EXPECT_FALSE(System(SystemConfig::home_snoop()).state().features.directory);
  EXPECT_TRUE(System(SystemConfig::cluster_on_die()).state().features.directory);
  EXPECT_TRUE(System(SystemConfig::cluster_on_die()).state().features.hitme);
}

TEST(System, FeatureOverrideWins) {
  SystemConfig config = SystemConfig::source_snoop();
  ProtocolFeatures features;
  features.directory = true;
  features.core_valid_bits = false;
  config.feature_override = features;
  System sys(config);
  EXPECT_TRUE(sys.state().features.directory);
  EXPECT_FALSE(sys.state().features.core_valid_bits);
}

TEST(System, NodeL3Capacity) {
  System non_cod(SystemConfig::source_snoop());
  EXPECT_EQ(non_cod.node_l3_bytes(0), 12u * 2560 * 1024);  // 30 MiB
  System cod(SystemConfig::cluster_on_die());
  EXPECT_EQ(cod.node_l3_bytes(0), 6u * 2560 * 1024);  // 15 MiB
}

TEST(System, NodeDramBandwidthMatchesTableII) {
  System non_cod(SystemConfig::source_snoop());
  EXPECT_NEAR(non_cod.node_dram_bandwidth_gbps(0), 68.3, 0.3);  // 4 channels
  System cod(SystemConfig::cluster_on_die());
  EXPECT_NEAR(cod.node_dram_bandwidth_gbps(0), 34.1, 0.2);  // 2 channels
}

TEST(System, AllocationsLandOnRequestedNode) {
  System sys(SystemConfig::cluster_on_die());
  for (int node = 0; node < sys.node_count(); ++node) {
    const MemRegion region = sys.alloc_on_node(node, 4096);
    EXPECT_EQ(home_node_of(region.base), node);
  }
}

TEST(System, DropAllCachesLeavesNothingResident) {
  System sys(SystemConfig::source_snoop());
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  sys.write(0, a);
  sys.drop_all_caches();
  EXPECT_EQ(sys.read(0, a).source, ServiceSource::kLocalDram);
}

TEST(Specs, TableIValuesMatchPaper) {
  const UarchSpec& snb = sandy_bridge_spec();
  const UarchSpec& hsx = haswell_spec();
  EXPECT_EQ(snb.rob_entries, 168);
  EXPECT_EQ(hsx.rob_entries, 192);
  EXPECT_EQ(snb.flops_per_cycle_dp, 8);
  EXPECT_EQ(hsx.flops_per_cycle_dp, 16);
  EXPECT_EQ(hsx.execute_uops_per_cycle, 8);
  EXPECT_DOUBLE_EQ(hsx.qpi_speed_gts, 9.6);
}

TEST(Specs, TestSystemMatchesTableII) {
  const TestSystemSpec& spec = test_system_spec();
  EXPECT_EQ(spec.cores_per_socket, 12);
  EXPECT_DOUBLE_EQ(spec.base_ghz, 2.5);
}

}  // namespace
}  // namespace hsw
