// Unit tests of the per-resource queueing telemetry (obs/resource_stats.h):
// exact FIFO accounting on hand-driven services, the Little's-law
// self-check (L = lambda x W) on both hand-driven and real closed-loop
// runs, the deterministic stream-ordered hub fold, depth-series
// decimation, and the report writer's failure path.  Engine integration
// (which closed loop feeds which recorder) is covered by the
// bottleneck_knee golden and the resstats determinism ctest script.
#include "obs/resource_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "bw/model.h"
#include "exec/engine.h"
#include "metrics/report.h"

namespace {

using hsw::obs::MergedResourceStats;
using hsw::obs::ResourceStatsHub;
using hsw::obs::ResourceStatsRecorder;
using hsw::obs::ResourceUsage;

ResourceStatsRecorder two_resource_recorder(std::uint32_t stream = 0) {
  ResourceStatsRecorder recorder(stream);
  recorder.bind({"A", "B"}, {10.0, 20.0});
  return recorder;
}

TEST(ResourceStats, HandDrivenAccountingIsExact) {
  ResourceStatsRecorder recorder = two_resource_recorder();
  // Two services on A: back-to-back, the second arrives while the first is
  // still in service and waits 1 ns.
  recorder.on_service(0, /*arrival=*/0.0, /*start=*/0.0, /*done=*/2.0, 64.0);
  recorder.on_service(0, /*arrival=*/1.0, /*start=*/2.0, /*done=*/4.0, 64.0);
  recorder.finalize(10.0);

  const ResourceUsage& a = recorder.usage()[0];
  EXPECT_DOUBLE_EQ(a.busy_ns, 4.0);        // service intervals never overlap
  EXPECT_EQ(a.services, 2u);
  EXPECT_DOUBLE_EQ(a.bytes, 128.0);
  EXPECT_DOUBLE_EQ(a.wait_ns, 1.0);
  EXPECT_DOUBLE_EQ(a.wait_max_ns, 1.0);
  EXPECT_DOUBLE_EQ(a.residence_ns, 5.0);   // (2-0) + (4-1)
  // Depth integral: depth 1 over [0,1), 2 over [1,2), 1 over [2,4), 0 after.
  EXPECT_DOUBLE_EQ(a.depth_area, 5.0);
  EXPECT_EQ(a.depth_max, 2u);
  EXPECT_DOUBLE_EQ(a.mean_wait_ns(), 0.5);
  EXPECT_DOUBLE_EQ(a.mean_service_ns(), 2.0);

  const ResourceUsage& b = recorder.usage()[1];
  EXPECT_EQ(b.services, 0u);
  EXPECT_DOUBLE_EQ(b.busy_ns, 0.0);
  EXPECT_DOUBLE_EQ(recorder.elapsed_ns(), 10.0);
}

TEST(ResourceStats, LittlesLawExactForDrainedHandDrivenRun) {
  ResourceStatsRecorder recorder = two_resource_recorder();
  recorder.on_service(0, 0.0, 0.0, 2.0, 64.0);
  recorder.on_service(0, 1.0, 2.0, 4.0, 64.0);
  recorder.on_service(1, 3.0, 3.0, 3.5, 64.0);
  recorder.finalize(10.0);

  ResourceStatsHub hub;
  hub.absorb(std::move(recorder));
  const MergedResourceStats m = hub.merged();
  // Every request drained before the end, so the time integral of queue
  // depth equals total residence exactly: L == lambda x W, not just within
  // tolerance.
  for (std::size_t r = 0; r < m.usage.size(); ++r) {
    EXPECT_DOUBLE_EQ(m.mean_depth(r), m.littles_depth(r)) << m.names[r];
  }
  EXPECT_DOUBLE_EQ(m.utilization(0), 0.4);  // 4 busy ns over 10 elapsed
}

TEST(ResourceStats, LittlesLawHoldsOnRealClosedLoops) {
  // Four saturated streams on one 10 GB/s box: heavy queueing, thousands of
  // services, FIFO back-pressure — the invariant must survive the real
  // engine, not only hand-picked numbers.
  std::vector<hsw::exec::StreamTask> tasks(4);
  for (std::size_t f = 0; f < tasks.size(); ++f) {
    tasks[f].core = static_cast<int>(f);
    tasks[f].demand_gbps = 8.0;
    tasks[f].latency_ns = 50.0;
    tasks[f].path = {{0, 1.0}};
  }
  ResourceStatsRecorder recorder;
  hsw::exec::ClosedLoopConfig config;
  config.resstats = &recorder;
  const hsw::exec::ClosedLoopResult result =
      hsw::exec::run_closed_loop(tasks, {10.0}, config);
  EXPECT_NEAR(result.total_gbps, 10.0, 0.5);  // the box caps the aggregate

  ResourceStatsHub hub;
  hub.absorb(std::move(recorder));
  const MergedResourceStats m = hub.merged();
  ASSERT_EQ(m.usage.size(), 1u);
  EXPECT_GT(m.usage[0].services, 1000u);
  EXPECT_GT(m.utilization(0), 0.95);  // saturated
  // L vs lambda x W: equal up to floating-point accumulation order.
  const double l = m.mean_depth(0);
  const double lw = m.littles_depth(0);
  ASSERT_GT(lw, 0.0);
  EXPECT_NEAR(l / lw, 1.0, 1e-9);
  // Busy time also equals services x service time exactly (FIFO servers
  // never overlap service intervals).
  EXPECT_NEAR(m.usage[0].busy_ns,
              static_cast<double>(m.usage[0].services) * (64.0 / 10.0),
              1e-6 * m.usage[0].busy_ns);
}

TEST(ResourceStats, HubFoldsInStreamOrderRegardlessOfAbsorbOrder) {
  auto make = [](std::uint32_t stream, double shift) {
    ResourceStatsRecorder r(stream);
    r.bind({"A", "B"}, {10.0, 20.0});
    r.on_service(0, shift, shift, shift + 2.0, 64.0);
    r.on_service(1, shift + 1.0, shift + 2.0, shift + 3.0, 128.0);
    r.finalize(shift + 5.0);
    return r;
  };
  ResourceStatsHub forward;
  forward.absorb(make(1, 0.0));
  forward.absorb(make(2, 10.0));
  ResourceStatsHub reverse;
  reverse.absorb(make(2, 10.0));
  reverse.absorb(make(1, 0.0));

  EXPECT_EQ(hsw::obs::render_resources_section(forward.merged()),
            hsw::obs::render_resources_section(reverse.merged()));
  const MergedResourceStats m = forward.merged();
  EXPECT_EQ(m.streams, 2u);
  EXPECT_EQ(m.usage[0].services, 2u);
  EXPECT_DOUBLE_EQ(m.elapsed_ns, 20.0);  // 5 + 15: per-run lengths summed
}

TEST(ResourceStats, DepthSeriesDecimationIsDeterministicAndBounded) {
  auto drive = [](int events) {
    ResourceStatsRecorder r;
    r.bind({"A"}, {10.0});
    double t = 0.0;
    for (int i = 0; i < events; ++i) {
      r.on_service(0, t, t, t + 1.0, 64.0);
      t += 1.5;
    }
    r.finalize(t + 10.0);
    return r;
  };
  const ResourceStatsRecorder a = drive(5000);
  const ResourceStatsRecorder b = drive(5000);
  const auto& series_a = a.usage()[0].depth_series;
  const auto& series_b = b.usage()[0].depth_series;
  // Stride-doubling keeps the series bounded at twice the target cap...
  EXPECT_LE(series_a.size(), 2 * hsw::obs::kDepthSeriesCap);
  EXPECT_GE(series_a.size(), hsw::obs::kDepthSeriesCap / 2);
  // ...and the retained points are a pure function of the event order.
  ASSERT_EQ(series_a.size(), series_b.size());
  for (std::size_t i = 0; i < series_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(series_a[i].ns, series_b[i].ns);
    EXPECT_EQ(series_a[i].depth, series_b[i].depth);
  }
  // Timestamps are nondecreasing (event order, not reshuffled).
  for (std::size_t i = 1; i < series_a.size(); ++i) {
    EXPECT_GE(series_a[i].ns, series_a[i - 1].ns);
  }
}

TEST(ResourceStats, MergedDepthSeriesKeptOnlyForSingleStream) {
  auto make = [](std::uint32_t stream) {
    ResourceStatsRecorder r(stream);
    r.bind({"A"}, {10.0});
    r.on_service(0, 0.0, 0.0, 1.0, 64.0);
    r.finalize(2.0);
    return r;
  };
  ResourceStatsHub one;
  one.absorb(make(1));
  EXPECT_FALSE(one.merged().usage[0].depth_series.empty());

  ResourceStatsHub two;
  two.absorb(make(1));
  two.absorb(make(2));
  // Concatenating event-time series from independent runs would interleave
  // unrelated clocks, so the merged view drops them.
  EXPECT_TRUE(two.merged().usage[0].depth_series.empty());
}

TEST(ResourceStats, FinalizedRecorderIgnoresLateServices) {
  ResourceStatsRecorder recorder = two_resource_recorder();
  recorder.on_service(0, 0.0, 0.0, 2.0, 64.0);
  recorder.finalize(5.0);
  // The event clock restarts at 0 for the next run; accepting this service
  // would corrupt the settled depth marks.
  recorder.on_service(0, 0.0, 0.0, 2.0, 64.0);
  EXPECT_EQ(recorder.usage()[0].services, 1u);
  EXPECT_DOUBLE_EQ(recorder.elapsed_ns(), 5.0);
}

TEST(ResourceStats, ResourceNamesMatchModelLayoutWithFallback) {
  // 2-node layout: 2 rings, 2 iMCs, 2 QPI directions, 2 bridges.
  const std::vector<std::string> names = hsw::bw::resource_names(8);
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names[0], "RING_0");
  EXPECT_EQ(names[2], "IMC_0");
  EXPECT_EQ(names[4], "QPI_0");
  EXPECT_EQ(names[6], "BRIDGE_0");
  // A hand-built solver scenario gets positional names.
  const std::vector<std::string> fallback = hsw::bw::resource_names(3);
  ASSERT_EQ(fallback.size(), 3u);
  EXPECT_EQ(fallback[0], "RES_0");
  EXPECT_EQ(fallback[2], "RES_2");
}

TEST(ResourceStats, ReportWriterFailsLoudlyOnBadPath) {
  ResourceStatsHub hub;
  hub.absorb(two_resource_recorder());
  hsw::metrics::ReportManifest manifest;
  manifest.tool = "resource_stats_test";
  EXPECT_FALSE(hsw::obs::write_resources_report(
      "/nonexistent-dir/resources.json", manifest, hub.merged()));
}

}  // namespace
