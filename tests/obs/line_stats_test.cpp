// Unit tests of the per-line coherence flight recorder (obs/line_stats.h):
// the episode-based sharing-pattern classifier, the transition matrix and
// L3 residency clock, the deterministic hub merge, and the report writer's
// failure path.  Engine integration (which hooks fire where) is covered by
// the sharing_patterns golden and the determinism ctest scripts.
#include "obs/line_stats.h"

#include <gtest/gtest.h>

#include <utility>

#include "machine/system.h"
#include "metrics/report.h"

namespace {

using hsw::Mesif;
using hsw::obs::Level;
using hsw::obs::LineOp;
using hsw::obs::LineStatsHub;
using hsw::obs::LineStatsRecorder;
using hsw::obs::MergedLineStats;
using hsw::obs::SharingPattern;

// Classify one line's history as driven through the recorder's episode
// machinery (not a hand-built LineRecord: finalize() must close episodes).
SharingPattern classify_history(
    const std::vector<std::pair<int, bool>>& accesses) {
  LineStatsRecorder recorder(hsw::Protocol::kMesif);
  for (const auto& [core, is_write] : accesses) {
    recorder.on_access(core, /*line=*/7, is_write, 1.0);
  }
  recorder.finalize();
  return hsw::obs::classify(recorder.lines().at(7));
}

constexpr bool kR = false;
constexpr bool kW = true;

TEST(LineStatsClassifier, SingleCoreIsPrivate) {
  EXPECT_EQ(classify_history({{0, kR}, {0, kW}, {0, kR}, {0, kW}}),
            SharingPattern::kPrivate);
}

TEST(LineStatsClassifier, MultiCoreReadOnlyIsReadShared) {
  EXPECT_EQ(classify_history({{0, kR}, {1, kR}, {2, kR}, {1, kR}}),
            SharingPattern::kReadShared);
}

TEST(LineStatsClassifier, ReadModifyWriteHandoffsAreMigratory) {
  // A lock word: each core's episode reads the line, then writes it.
  EXPECT_EQ(classify_history({{0, kR}, {0, kW}, {1, kR}, {1, kW},
                              {2, kR}, {2, kW}, {0, kR}, {0, kW}}),
            SharingPattern::kMigratory);
}

TEST(LineStatsClassifier, AlternatingPureEpisodesArePingPong) {
  // A mailbox: the producer's episodes are pure writes, the consumer's are
  // pure reads, and no episode mixes the two.
  EXPECT_EQ(classify_history({{0, kW}, {1, kR}, {0, kW}, {1, kR}, {0, kW}}),
            SharingPattern::kPingPong);
}

TEST(LineStatsClassifier, MultiWriterNoReaderIsFalseShared) {
  EXPECT_EQ(classify_history({{0, kW}, {1, kW}, {0, kW}, {1, kW}}),
            SharingPattern::kFalseShared);
}

TEST(LineStatsClassifier, UnstructuredMultiCoreTrafficIsMixed) {
  // Mixed episodes without the migratory read-first signature.
  EXPECT_EQ(classify_history({{0, kW}, {0, kR}, {0, kW}, {1, kR},
                              {0, kW}, {0, kR}}),
            SharingPattern::kMixed);
}

TEST(LineStatsRecorderTest, EpisodeCountersFollowHandoffs) {
  LineStatsRecorder recorder(hsw::Protocol::kMesif);
  // core 0: R W (rmw) | core 1: R | core 0: W | finalize closes the last.
  recorder.on_access(0, 3, kR, 1.0);
  recorder.on_access(0, 3, kW, 1.0);
  recorder.on_access(1, 3, kR, 1.0);
  recorder.on_access(0, 3, kW, 1.0);
  recorder.finalize();
  const hsw::obs::LineRecord& r = recorder.lines().at(3);
  EXPECT_EQ(r.episodes, 3u);
  EXPECT_EQ(r.handoffs, 2u);   // the final episode closes without a handoff
  EXPECT_EQ(r.rmw_handoffs, 1u);
  EXPECT_EQ(r.pure_read_episodes, 1u);
  EXPECT_EQ(r.pure_write_episodes, 1u);
  EXPECT_EQ(r.mixed_episodes, 1u);
  EXPECT_EQ(r.cores_seen(), 2);
}

TEST(LineStatsRecorderTest, ExternalClockDrivesResidency) {
  LineStatsRecorder recorder(hsw::Protocol::kMesif);
  recorder.set_now(0.0);
  recorder.on_transition(Level::kL3, /*unit=*/0, /*line=*/9, Mesif::kInvalid,
                         LineOp::kLocalRead, Mesif::kExclusive);
  recorder.set_now(100.0);
  recorder.on_transition(Level::kL3, 0, 9, Mesif::kExclusive,
                         LineOp::kSnoopRead, Mesif::kShared);
  recorder.set_now(250.0);
  recorder.finalize();
  const hsw::obs::LineRecord& r = recorder.lines().at(9);
  EXPECT_DOUBLE_EQ(r.residency_ns[hsw::protocol::idx(Mesif::kExclusive)],
                   100.0);
  EXPECT_DOUBLE_EQ(r.residency_ns[hsw::protocol::idx(Mesif::kShared)], 150.0);
  EXPECT_DOUBLE_EQ(r.residency_ns[hsw::protocol::idx(Mesif::kModified)], 0.0);
}

TEST(LineStatsRecorderTest, FinalizeIsIdempotent) {
  LineStatsRecorder recorder(hsw::Protocol::kMesif);
  recorder.on_access(0, 1, kW, 1.0);
  recorder.finalize();
  recorder.finalize();
  EXPECT_EQ(recorder.lines().at(1).episodes, 1u);
}

TEST(LineStatsRecorderTest, EngineRecordsOwnerDemotionAndForward) {
  // One cross-socket producer/consumer handoff through the real engine:
  // core 0 dirties a line, core 12 (other socket) reads it.  MESIF demotes
  // the owner to Shared on the read snoop and the holder forwards data.
  hsw::System sys(hsw::SystemConfig::source_snoop());
  hsw::obs::LineStatsRecorder recorder(sys.config().protocol, /*stream=*/0);
  sys.attach_linestats(recorder);
  const hsw::PhysAddr addr = sys.alloc_on_node(0, 64).base;
  sys.write(0, addr);
  sys.read(12, addr);
  sys.detach_linestats();

  EXPECT_EQ(recorder.accesses(), 2u);
  const hsw::obs::LineRecord& r = recorder.lines().at(hsw::line_of(addr));
  EXPECT_EQ(r.writes, 1u);
  EXPECT_EQ(r.reads, 1u);
  EXPECT_EQ(r.cores_seen(), 2);
  EXPECT_GE(r.forwards, 1u);
  // The owner-demotion cell: the holding node's L3 leaves {E,M} for S.
  std::uint64_t demotions = 0;
  for (const Mesif from : {Mesif::kExclusive, Mesif::kModified}) {
    demotions += recorder.transitions(Level::kL3, from, LineOp::kSnoopRead,
                                      Mesif::kShared);
  }
  EXPECT_GE(demotions, 1u);
  // Residency accrued somewhere: the access latencies advanced the clock.
  double total = 0.0;
  for (const double ns : r.residency_ns) total += ns;
  EXPECT_GT(total, 0.0);
}

TEST(LineStatsHubTest, MergeIsAbsorbOrderIndependent) {
  const auto make = [](std::uint32_t stream, int core) {
    LineStatsRecorder r(hsw::Protocol::kMesif, stream);
    r.on_access(core, 11, kW, 1.0);
    r.on_access(core + 1, 11, kR, 2.0);
    r.on_transition(Level::kL3, 0, 11, Mesif::kInvalid, LineOp::kLocalStore,
                    Mesif::kModified);
    return r;
  };
  LineStatsHub forward;
  forward.absorb(make(0, 0));
  forward.absorb(make(1, 4));
  LineStatsHub reverse;
  reverse.absorb(make(1, 4));
  reverse.absorb(make(0, 0));
  EXPECT_EQ(hsw::obs::render_linestats_section(forward.merged()),
            hsw::obs::render_linestats_section(reverse.merged()));
  EXPECT_EQ(forward.merged().streams, 2u);
  EXPECT_EQ(forward.merged().accesses, 4u);
}

TEST(LineStatsHubTest, TopLinesRankByContention) {
  LineStatsRecorder r(hsw::Protocol::kMesif, 0);
  // Line 1: quiet.  Line 2: two invalidating snoops of a held copy.
  r.on_access(0, 1, kR, 1.0);
  r.on_transition(Level::kL3, 0, 2, Mesif::kShared, LineOp::kSnoopInvalidate,
                  Mesif::kInvalid);
  r.on_transition(Level::kL3, 0, 2, Mesif::kShared, LineOp::kSnoopInvalidate,
                  Mesif::kInvalid);
  LineStatsHub hub;
  hub.absorb(std::move(r));
  const MergedLineStats m = hub.merged();
  ASSERT_EQ(m.top_lines.size(), 2u);
  EXPECT_EQ(m.top_lines[0].line, 2u);
  EXPECT_EQ(m.top_lines[0].record.invalidations, 2u);
  EXPECT_EQ(m.top_lines[1].line, 1u);
}

TEST(LineStatsHubTest, EmptyHubMergesClean) {
  LineStatsHub hub;
  const MergedLineStats m = hub.merged();
  EXPECT_EQ(m.streams, 0u);
  EXPECT_EQ(m.accesses, 0u);
  EXPECT_TRUE(m.top_lines.empty());
}

TEST(LineStatsReportTest, SectionCarriesVersionAndNonzeroCellsOnly) {
  LineStatsRecorder r(hsw::Protocol::kMesif, 0);
  r.on_transition(Level::kL1, 0, 1, Mesif::kInvalid, LineOp::kLocalStore,
                  Mesif::kModified);
  LineStatsHub hub;
  hub.absorb(std::move(r));
  const std::string section =
      hsw::obs::render_linestats_section(hub.merged());
  EXPECT_NE(section.find("\"hswsim_linestats_version\": 1"),
            std::string::npos);
  EXPECT_NE(section.find("\"I.LocalStore.M\": 1"), std::string::npos);
  // Zero transition cells are omitted, not printed as zero.
  EXPECT_EQ(section.find("\"I.LocalRead.I\""), std::string::npos);
  EXPECT_EQ(section.find("\"M.Evict.I\""), std::string::npos);
}

TEST(LineStatsReportTest, WriteFailsCleanlyOnBadPath) {
  hsw::metrics::ReportManifest manifest;
  EXPECT_FALSE(hsw::obs::write_linestats_report(
      "/nonexistent-dir/line_stats.json", manifest, MergedLineStats{}));
}

}  // namespace
