// Every TimingParams constant must be observable: perturbing it by 10% has
// to move at least one latency probe.  A constant no probe can see is either
// dead (the engine never reads it) or the probe battery has a coverage hole —
// both are bugs worth failing on, because the golden-figure regression can
// only pin constants that reach an output.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "coh/timing.h"
#include "core/latency.h"
#include "core/placement.h"
#include "machine/system.h"
#include "util/units.h"

namespace hsw {
namespace {

double probe_latency(const SystemConfig& config, int reader, int owner,
                     int node, Mesif state, CacheLevel level,
                     std::uint64_t buffer, std::vector<int> sharers = {}) {
  System sys(config);
  LatencyConfig lc;
  lc.reader_core = reader;
  lc.placement.owner_core = owner;
  lc.placement.memory_node = node;
  lc.placement.state = state;
  lc.placement.level = level;
  lc.placement.sharers = std::move(sharers);
  lc.buffer_bytes = buffer;
  lc.max_measured_lines = 512;
  lc.seed = 1;
  return measure_latency(sys, lc).mean_ns;
}

// Sixty-four consecutive lines in one DRAM page: the first access opens the
// row, the rest are guaranteed page hits (the random chase above almost
// never produces two same-row accesses in a row).
double sequential_page_probe(const SystemConfig& config) {
  System sys(config);
  const MemRegion region = sys.alloc_on_node(0, kib(4));
  double total = 0.0;
  for (std::uint64_t i = 0; i < region.line_count(); ++i) {
    total += sys.read(0, region.addr_at(i * kLineSize)).ns;
  }
  return total;
}

// The battery: one probe per distinct protocol path the timing model prices.
std::vector<double> probe_battery(const TimingParams& timing) {
  SystemConfig source = SystemConfig::source_snoop();
  SystemConfig home = SystemConfig::home_snoop();
  SystemConfig cod = SystemConfig::cluster_on_die();
  source.timing = timing;
  home.timing = timing;
  cod.timing = timing;

  System topo_probe(cod);
  const SystemTopology& topo = topo_probe.topology();
  const int remote_core = topo.node(1).cores[1];
  const auto E = Mesif::kExclusive;
  const auto M = Mesif::kModified;
  const auto S = Mesif::kShared;

  std::vector<double> probes;
  // Core-local hierarchy.
  probes.push_back(probe_latency(source, 0, 0, 0, E, CacheLevel::kL1L2, kib(16)));
  probes.push_back(probe_latency(source, 0, 0, 0, E, CacheLevel::kL1L2, kib(128)));
  // Local L3, clean-exclusive and dirty in another core (L1-sized and
  // L2-sized working sets move the dirty data out of L1 or L2).
  probes.push_back(probe_latency(source, 0, 1, 0, E, CacheLevel::kL3, kib(512)));
  probes.push_back(probe_latency(source, 0, 1, 0, E, CacheLevel::kL1L2, kib(16)));
  probes.push_back(probe_latency(source, 0, 1, 0, M, CacheLevel::kL1L2, kib(16)));
  probes.push_back(probe_latency(source, 0, 1, 0, M, CacheLevel::kL1L2, kib(128)));
  // Remote L3 over QPI, clean and dirty.
  probes.push_back(probe_latency(source, 0, 12, 1, E, CacheLevel::kL3, kib(512)));
  probes.push_back(probe_latency(source, 0, 12, 1, M, CacheLevel::kL1L2, kib(16)));
  // Memory, local and remote, in all three BIOS modes.
  probes.push_back(probe_latency(source, 0, 0, 0, M, CacheLevel::kMemory, mib(1)));
  probes.push_back(probe_latency(source, 0, 0, 1, M, CacheLevel::kMemory, mib(1)));
  probes.push_back(probe_latency(home, 0, 0, 0, M, CacheLevel::kMemory, mib(1)));
  probes.push_back(probe_latency(home, 0, 0, 1, M, CacheLevel::kMemory, mib(1)));
  probes.push_back(probe_latency(cod, 0, 0, 0, M, CacheLevel::kMemory, mib(1)));
  probes.push_back(probe_latency(cod, 0, remote_core, 1, M,
                                 CacheLevel::kMemory, mib(1)));
  // COD shared-line matrix points (three-node L3 forward; stale-directory
  // memory broadcast; HitME-covered migratory set).
  probes.push_back(probe_latency(cod, 0, topo.node(1).cores[1], 1, S,
                                 CacheLevel::kL3, mib(2),
                                 {topo.node(2).cores[1]}));
  probes.push_back(probe_latency(cod, 0, topo.node(1).cores[1], 1, S,
                                 CacheLevel::kMemory, mib(2),
                                 {topo.node(2).cores[1]}));
  probes.push_back(probe_latency(cod, 0, topo.node(1).cores[1], 1, S,
                                 CacheLevel::kMemory, kib(64),
                                 {topo.node(2).cores[1]}));
  // Guaranteed DRAM page hits.
  probes.push_back(sequential_page_probe(source));
  // core_ghz only converts ns to cycles for display.
  probes.push_back(timing.cycles(100.0));
  return probes;
}

TEST(TimingSensitivity, VisitorCoversEveryField) {
  TimingParams timing;
  std::size_t fields = 0;
  for_each_timing_field(timing, [&](const char*, double&) { ++fields; });
  // TimingParams is doubles only; a new field that is not added to
  // for_each_timing_field would make these diverge.
  EXPECT_EQ(fields * sizeof(double), sizeof(TimingParams));
}

TEST(TimingSensitivity, EveryConstantMovesAtLeastOneProbe) {
  const TimingParams baseline_params = TimingParams::haswell_ep();
  const std::vector<double> baseline = probe_battery(baseline_params);

  std::vector<const char*> names;
  {
    TimingParams t;
    for_each_timing_field(t, [&](const char* name, double&) {
      names.push_back(name);
    });
  }

  for (std::size_t field = 0; field < names.size(); ++field) {
    TimingParams perturbed = baseline_params;
    std::size_t i = 0;
    for_each_timing_field(perturbed, [&](const char*, double& value) {
      if (i++ == field) value *= 1.1;
    });
    const std::vector<double> probes = probe_battery(perturbed);
    ASSERT_EQ(probes.size(), baseline.size());
    bool moved = false;
    for (std::size_t p = 0; p < probes.size(); ++p) {
      if (probes[p] != baseline[p]) {
        moved = true;
        break;
      }
    }
    EXPECT_TRUE(moved) << "timing constant '" << names[field]
                       << "' x1.1 moved no probe: it is dead or the battery "
                          "has a coverage hole";
  }
}

}  // namespace
}  // namespace hsw
