// Cross-protocol equivalence: four protocol families, one functional
// contract.  MESIF, MESI, MOESI, and Dragon trade *when* data moves
// (demotions, deferred writebacks, update broadcasts), never *what* value a
// line ends up holding.  The reference family's value oracle makes that
// checkable: every store stamps a fresh serial, only modeled writebacks
// advance the memory image, and after flush_all() a correct protocol has
// pushed every line's newest serial home.  The engine itself is covered
// transitively — the differential oracle (differential_test.cpp) proves
// engine == reference per protocol, and this suite proves the references
// agree with each other.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "check/differential.h"
#include "check/reference_model.h"
#include "machine/system.h"
#include "support/test_seed.h"

namespace hsw::check {
namespace {

constexpr Protocol kInvalidating[] = {Protocol::kMesif, Protocol::kMesi,
                                      Protocol::kMoesi};
constexpr Protocol kAll[] = {Protocol::kMesif, Protocol::kMesi,
                             Protocol::kMoesi, Protocol::kDragon};

// One reference model run: replay `ops` on a fresh model for `protocol`,
// then flush everything so deferred writebacks (MOESI Owned, Dragon's
// dirty-shared lines) reach memory.
struct ProtocolRun {
  // The System exists to derive topology + features exactly the way the
  // differential driver does; the replay itself only drives the reference.
  System sys;
  ReferenceModel ref;

  ProtocolRun(const DiffConfig& config, Protocol protocol)
      : sys([&] {
          DiffConfig c = config;
          c.protocol = protocol;
          return system_config_for(c);
        }()),
        ref(sys.topology(), sys.state().features) {}

  void replay(const std::vector<DiffOp>& ops) {
    for (const DiffOp& op : ops) {
      switch (op.kind) {
        case DiffOp::Kind::kRead:
          ref.read(op.core, op.line);
          break;
        case DiffOp::Kind::kWrite:
          ref.write(op.core, op.line);
          break;
        case DiffOp::Kind::kFlush:
          ref.flush_line(op.line);
          break;
        case DiffOp::Kind::kEvictCore:
          ref.evict_core_caches(op.core);
          break;
        case DiffOp::Kind::kFlushNode:
          ref.flush_node_l3(sys.topology().node_of_core(op.core));
          break;
      }
    }
    ref.flush_all();
  }
};

DiffConfig base_config(SnoopMode mode, std::uint64_t seed) {
  DiffConfig config;
  config.mode = mode;
  config.seed = hswtest::effective_seed(seed);
  config.steps = 1500;
  return config;
}

TEST(ProtocolEquivalence, InvalidatingProtocolsAgreeOnFinalMemoryImages) {
  for (const SnoopMode mode :
       {SnoopMode::kSourceSnoop, SnoopMode::kHomeSnoop, SnoopMode::kCod}) {
    const DiffConfig config = base_config(mode, 1);
    // The trace only depends on topology/seed, so every protocol replays
    // the exact same operation sequence.
    const std::vector<DiffOp> ops = random_trace(config);

    ProtocolRun mesif(config, Protocol::kMesif);
    mesif.replay(ops);
    const std::map<LineAddr, ReferenceModel::MemoryCell> golden =
        mesif.ref.memory_image();
    ASSERT_FALSE(golden.empty());

    for (const Protocol p : kInvalidating) {
      if (p == Protocol::kMesif) continue;
      ProtocolRun run(config, p);
      run.replay(ops);
      EXPECT_EQ(run.ref.memory_image(), golden)
          << to_string(p) << " diverged from mesif under mode "
          << static_cast<int>(mode);
    }
  }
}

TEST(ProtocolEquivalence, DragonMatchesTheInvalidatingFinalValueOracle) {
  // Dragon never invalidates on a store, yet the final values must be the
  // ones the invalidate-based protocols settle on: same newest serial, same
  // last writer, per line.
  const DiffConfig config = base_config(SnoopMode::kSourceSnoop, 2);
  const std::vector<DiffOp> ops = random_trace(config);

  ProtocolRun mesif(config, Protocol::kMesif);
  ProtocolRun dragon(config, Protocol::kDragon);
  mesif.replay(ops);
  dragon.replay(ops);
  EXPECT_EQ(dragon.ref.memory_image(), mesif.ref.memory_image());
}

TEST(ProtocolEquivalence, FlushAllDrainsEveryDirtyCopyInEveryProtocol) {
  // The conservation law behind the oracle: dirtiness is never dropped,
  // only written back or migrated.  After flush_all() the memory image
  // holds every line's newest serial — in particular MOESI's Owned lines,
  // whose writeback was deferred past the demotion that created them.
  const DiffConfig config = base_config(SnoopMode::kCod, 3);
  const std::vector<DiffOp> ops = random_trace(config);

  for (const Protocol p : kAll) {
    ProtocolRun run(config, p);
    run.replay(ops);
    for (const LineAddr line : tracked_lines(config)) {
      const ReferenceLine& ls = run.ref.line_state(line);
      EXPECT_EQ(ls.mem_value, ls.newest_value)
          << to_string(p) << " lost the newest version of line " << line;
    }
  }
}

TEST(ProtocolEquivalence, MoesiDefersWritebacksMesifPaysEagerly) {
  // The MOESI headline on a sharing-heavy pattern: every MESIF read snoop
  // that hits a dirty copy writes memory back; MOESI demotes M -> O and
  // keeps the dirty data on-chip.  Writers keep re-dirtying the same lines,
  // so MESIF pays per sharing round while MOESI pays once per line at the
  // final flush — strictly fewer iMC writes, identical final values.
  const DiffConfig config = base_config(SnoopMode::kSourceSnoop, 4);

  std::vector<DiffOp> ops;
  const std::vector<LineAddr> lines = tracked_lines(config);
  const int rounds = 40;
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < 8; ++i) {
      const LineAddr line = lines[static_cast<std::size_t>(i)];
      ops.push_back({DiffOp::Kind::kWrite, 0, line});
      ops.push_back({DiffOp::Kind::kRead, 12, line});   // cross-node reader
      ops.push_back({DiffOp::Kind::kRead, 5, line});    // same-node reader
    }
  }

  ProtocolRun mesif(config, Protocol::kMesif);
  ProtocolRun moesi(config, Protocol::kMoesi);
  mesif.replay(ops);
  moesi.replay(ops);

  EXPECT_LT(moesi.ref.counters().dram_writes, mesif.ref.counters().dram_writes)
      << "MOESI's Owned state should suppress the per-demotion writebacks";
  EXPECT_EQ(moesi.ref.memory_image(), mesif.ref.memory_image());
}

}  // namespace
}  // namespace hsw::check
