// Differential oracle: the timing-free ReferenceModel and the real
// System/CoherenceEngine must agree on every coherence-visible fact after
// every step of a randomized trace, in every protocol configuration.  The
// injectable reference faults validate that the comparator catches real
// divergences and that the ddmin minimizer shrinks them to tiny repros.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "check/differential.h"
#include "support/test_seed.h"

namespace hsw::check {
namespace {

struct OracleScenario {
  const char* name;
  SnoopMode mode;
  bool das;
  std::uint64_t seed;
  Protocol protocol = Protocol::kMesif;
};

std::string oracle_name(const ::testing::TestParamInfo<OracleScenario>& info) {
  return std::string(info.param.name) + "_seed" +
         std::to_string(info.param.seed);
}

class DifferentialOracle : public ::testing::TestWithParam<OracleScenario> {};

TEST_P(DifferentialOracle, EngineMatchesReferenceOverRandomTrace) {
  const OracleScenario scenario = GetParam();
  SCOPED_TRACE(hswtest::seed_note(scenario.seed));

  DiffConfig config;
  config.mode = scenario.mode;
  config.protocol = scenario.protocol;
  config.das = scenario.das;
  config.seed = hswtest::effective_seed(scenario.seed);
  config.steps = 1200;  // acceptance floor: >= 1000 steps per configuration

  const std::vector<DiffOp> trace = random_trace(config);
  const std::optional<Divergence> divergence = run_differential(config, trace);
  if (divergence) {
    const std::vector<DiffOp> repro = minimize(config, trace);
    FAIL() << divergence->description << "\nminimized to " << repro.size()
           << " ops:\n"
           << format_replay(config, repro);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, DifferentialOracle,
    ::testing::Values(
        OracleScenario{"source", SnoopMode::kSourceSnoop, false, 1},
        OracleScenario{"source", SnoopMode::kSourceSnoop, false, 2},
        OracleScenario{"home", SnoopMode::kHomeSnoop, false, 1},
        OracleScenario{"home", SnoopMode::kHomeSnoop, false, 2},
        OracleScenario{"home_dir", SnoopMode::kHomeSnoop, true, 1},
        OracleScenario{"cod", SnoopMode::kCod, false, 1},
        OracleScenario{"cod", SnoopMode::kCod, false, 2},
        OracleScenario{"cod_das", SnoopMode::kCod, true, 1}),
    oracle_name);

// Every protocol family runs against its reference across the snoop-mode
// grid: the engine's policy gates and the reference's mirrored tables must
// agree cell by cell, not just under MESIF.
INSTANTIATE_TEST_SUITE_P(
    AllProtocols, DifferentialOracle,
    ::testing::Values(
        OracleScenario{"mesi_source", SnoopMode::kSourceSnoop, false, 1,
                       Protocol::kMesi},
        OracleScenario{"mesi_home", SnoopMode::kHomeSnoop, false, 1,
                       Protocol::kMesi},
        OracleScenario{"mesi_cod", SnoopMode::kCod, false, 1, Protocol::kMesi},
        OracleScenario{"mesi_cod_das", SnoopMode::kCod, true, 1,
                       Protocol::kMesi},
        OracleScenario{"mesi_home_dir", SnoopMode::kHomeSnoop, true, 1,
                       Protocol::kMesi},
        OracleScenario{"moesi_source", SnoopMode::kSourceSnoop, false, 1,
                       Protocol::kMoesi},
        OracleScenario{"moesi_home", SnoopMode::kHomeSnoop, false, 1,
                       Protocol::kMoesi},
        OracleScenario{"moesi_cod", SnoopMode::kCod, false, 1,
                       Protocol::kMoesi},
        OracleScenario{"moesi_cod_das", SnoopMode::kCod, true, 1,
                       Protocol::kMoesi},
        OracleScenario{"moesi_home_dir", SnoopMode::kHomeSnoop, true, 1,
                       Protocol::kMoesi},
        OracleScenario{"dragon_source", SnoopMode::kSourceSnoop, false, 1,
                       Protocol::kDragon},
        OracleScenario{"dragon_home", SnoopMode::kHomeSnoop, false, 1,
                       Protocol::kDragon},
        OracleScenario{"dragon_cod", SnoopMode::kCod, false, 1,
                       Protocol::kDragon},
        OracleScenario{"dragon_cod_das", SnoopMode::kCod, true, 1,
                       Protocol::kDragon},
        OracleScenario{"dragon_home_dir", SnoopMode::kHomeSnoop, true, 1,
                       Protocol::kDragon}),
    oracle_name);

// --- testing the tester ----------------------------------------------------

struct FaultScenario {
  const char* name;
  ReferenceFault fault;
  SnoopMode mode;
  Protocol protocol = Protocol::kMesif;
};

std::string fault_name(const ::testing::TestParamInfo<FaultScenario>& info) {
  return info.param.name;
}

class InjectedFault : public ::testing::TestWithParam<FaultScenario> {
 protected:
  // Some faults only fire on rarer protocol shapes (e.g. a Shared copy
  // surviving its Forward peer's eviction), so scan a few seeds for a
  // diverging trace rather than betting on one.
  static constexpr int kSeedScan = 10;

  static DiffConfig config_for(const FaultScenario& scenario,
                               std::uint64_t seed) {
    DiffConfig config;
    config.mode = scenario.mode;
    config.protocol = scenario.protocol;
    config.fault = scenario.fault;
    config.seed = seed;
    config.steps = 1500;
    return config;
  }

  static std::optional<DiffConfig> find_diverging_config(
      const FaultScenario& scenario) {
    for (int s = 1; s <= kSeedScan; ++s) {
      DiffConfig config =
          config_for(scenario, static_cast<std::uint64_t>(s));
      if (run_differential(config, random_trace(config))) return config;
    }
    return std::nullopt;
  }
};

TEST_P(InjectedFault, ComparatorDetectsDivergence) {
  const std::optional<DiffConfig> config = find_diverging_config(GetParam());
  ASSERT_TRUE(config.has_value())
      << "injected fault " << GetParam().name << " went undetected over "
      << kSeedScan << " seeds";
  const std::optional<Divergence> divergence =
      run_differential(*config, random_trace(*config));
  ASSERT_TRUE(divergence.has_value());
  EXPECT_FALSE(divergence->description.empty());
}

TEST_P(InjectedFault, MinimizerShrinksToTinyOneMinimalRepro) {
  const std::optional<DiffConfig> found = find_diverging_config(GetParam());
  ASSERT_TRUE(found.has_value());
  const DiffConfig config = *found;
  const std::vector<DiffOp> trace = random_trace(config);
  ASSERT_TRUE(run_differential(config, trace).has_value());

  const std::vector<DiffOp> repro = minimize(config, trace);
  ASSERT_FALSE(repro.empty());
  // Acceptance criterion: an injected divergence shrinks to <= 10 steps.
  EXPECT_LE(repro.size(), 10u) << format_replay(config, repro);
  // Still a repro ...
  EXPECT_TRUE(run_differential(config, repro).has_value());
  // ... and 1-minimal: removing any single op loses the divergence.
  for (std::size_t skip = 0; skip < repro.size(); ++skip) {
    std::vector<DiffOp> reduced;
    for (std::size_t i = 0; i < repro.size(); ++i) {
      if (i != skip) reduced.push_back(repro[i]);
    }
    if (reduced.empty()) continue;
    EXPECT_FALSE(run_differential(config, reduced).has_value())
        << "op " << skip << " is removable from the 'minimal' repro:\n"
        << format_replay(config, repro);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, InjectedFault,
    ::testing::Values(FaultScenario{"flush_drops_writeback",
                                    ReferenceFault::kFlushDropsWriteback,
                                    SnoopMode::kSourceSnoop},
                      FaultScenario{"write_skips_directory",
                                    ReferenceFault::kWriteSkipsDirectoryUpdate,
                                    SnoopMode::kCod},
                      FaultScenario{"read_always_exclusive",
                                    ReferenceFault::kReadAlwaysExclusive,
                                    SnoopMode::kSourceSnoop},
                      // The protocol-specific failure modes: an Owned line
                      // that forgets its deferred writeback (the MOESI
                      // hazard MESIF cannot express), and a dropped Dragon
                      // update broadcast (peers keep stale copies).
                      FaultScenario{"moesi_lost_owned_writeback",
                                    ReferenceFault::kMoesiLostOwnedWriteback,
                                    SnoopMode::kSourceSnoop,
                                    Protocol::kMoesi},
                      FaultScenario{"dragon_dropped_update",
                                    ReferenceFault::kDragonDroppedUpdate,
                                    SnoopMode::kSourceSnoop,
                                    Protocol::kDragon}),
    fault_name);

TEST(DifferentialTrace, ReplayFormatIsCompilableLiteral) {
  DiffConfig config;
  config.mode = SnoopMode::kCod;
  config.das = true;
  const std::vector<DiffOp> ops = {
      {DiffOp::Kind::kWrite, 3, 0x40ull},
      {DiffOp::Kind::kFlush, 0, 0x40ull},
  };
  const std::string replay = format_replay(config, ops);
  EXPECT_NE(replay.find("SnoopMode::kCod"), std::string::npos);
  EXPECT_NE(replay.find("config.das = true"), std::string::npos);
  EXPECT_NE(replay.find("Kind::kWrite, 3, 0x40ull"), std::string::npos);
  EXPECT_NE(replay.find("Kind::kFlush, 0, 0x40ull"), std::string::npos);
  // MESIF is the default: the replay literal stays minimal.
  EXPECT_EQ(replay.find("config.protocol"), std::string::npos);

  config.protocol = Protocol::kDragon;
  const std::string dragon_replay = format_replay(config, ops);
  EXPECT_NE(dragon_replay.find("config.protocol = hsw::Protocol::kDragon;"),
            std::string::npos);
}

TEST(DifferentialTrace, TraceIsDeterministicPerSeedAndCoversAllOps) {
  DiffConfig config;
  config.steps = 2000;
  const std::vector<DiffOp> trace = random_trace(config);
  EXPECT_EQ(trace, random_trace(config));
  DiffConfig other = config;
  other.seed = 99;
  EXPECT_NE(trace, random_trace(other));

  bool seen[5] = {};
  for (const DiffOp& op : trace) {
    seen[static_cast<std::size_t>(op.kind)] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace hsw::check
