// Unit tests for the tolerance-aware golden-CSV comparator.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "check/golden.h"

namespace hsw::check {
namespace {

TEST(SplitCsvRecord, PlainFields) {
  EXPECT_EQ(split_csv_record("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv_record(""), (std::vector<std::string>{""}));
  EXPECT_EQ(split_csv_record("a,,c"),
            (std::vector<std::string>{"a", "", "c"}));
}

TEST(SplitCsvRecord, QuotedFields) {
  EXPECT_EQ(split_csv_record("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(split_csv_record("\"say \"\"hi\"\"\",2"),
            (std::vector<std::string>{"say \"hi\"", "2"}));
  EXPECT_EQ(split_csv_record("\"12 per socket, 2.5 GHz\",x"),
            (std::vector<std::string>{"12 per socket, 2.5 GHz", "x"}));
}

TEST(CellsMatch, NumericWithinTolerance) {
  const GoldenTolerance tol;  // rel 1e-3, abs 5e-3
  EXPECT_TRUE(cells_match("100.0", "100.0", tol));
  EXPECT_TRUE(cells_match("100.0", "100.05", tol));   // rel 5e-4
  EXPECT_FALSE(cells_match("100.0", "100.2", tol));   // rel 2e-3
  EXPECT_TRUE(cells_match("0.000", "0.004", tol));    // abs guard near zero
  EXPECT_FALSE(cells_match("0.000", "0.010", tol));
}

TEST(CellsMatch, NonNumericIsExact) {
  const GoldenTolerance tol;
  EXPECT_TRUE(cells_match("16 KiB", "16 KiB", tol));
  EXPECT_FALSE(cells_match("16 KiB", "16 kib", tol));
  // Partial numeric prefixes must not be treated as numbers.
  EXPECT_FALSE(cells_match("12 cores", "12.0001 cores", tol));
  EXPECT_FALSE(cells_match("1e3", "1000x", tol));
}

class CompareCsvFiles : public ::testing::Test {
 protected:
  std::string write_file(const char* name, const std::string& content) {
    const std::string path =
        ::testing::TempDir() + "hswsim_golden_" + name + ".csv";
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;
    return path;
  }
};

TEST_F(CompareCsvFiles, IdenticalFilesMatch) {
  const std::string a = write_file("a", "h1,h2\n1.0,x\n");
  const std::string b = write_file("b", "h1,h2\n1.0,x\n");
  EXPECT_TRUE(compare_csv_files(a, b, {}).ok);
}

TEST_F(CompareCsvFiles, ToleratesLastDigitDrift) {
  const std::string a = write_file("c", "size,ns\n16384,21.200\n");
  const std::string b = write_file("d", "size,ns\n16384,21.201\n");
  EXPECT_TRUE(compare_csv_files(a, b, {}).ok);
}

TEST_F(CompareCsvFiles, ReportsFirstMismatchWithLocation) {
  const std::string a = write_file("e", "size,ns\n16384,21.2\n32768,23.0\n");
  const std::string b = write_file("f", "size,ns\n16384,21.2\n32768,42.0\n");
  const GoldenDiff diff = compare_csv_files(a, b, {});
  EXPECT_FALSE(diff.ok);
  EXPECT_NE(diff.message.find("42"), std::string::npos) << diff.message;
}

TEST_F(CompareCsvFiles, RowAndColumnCountMismatches) {
  const std::string a = write_file("g", "h\n1\n2\n");
  const std::string b = write_file("h", "h\n1\n");
  EXPECT_FALSE(compare_csv_files(a, b, {}).ok);
  const std::string c = write_file("i", "h,extra\n1,2\n");
  EXPECT_FALSE(compare_csv_files(a, c, {}).ok);
}

TEST_F(CompareCsvFiles, MissingFileIsAnError) {
  const std::string a = write_file("j", "h\n1\n");
  const GoldenDiff diff =
      compare_csv_files(a, ::testing::TempDir() + "does_not_exist.csv", {});
  EXPECT_FALSE(diff.ok);
  EXPECT_FALSE(diff.message.empty());
}

TEST_F(CompareCsvFiles, IgnoresTrailingCarriageReturns) {
  const std::string a = write_file("k", "h1,h2\n1.0,x\n");
  const std::string b = write_file("l", "h1,h2\r\n1.0,x\r\n");
  EXPECT_TRUE(compare_csv_files(a, b, {}).ok);
}

}  // namespace
}  // namespace hsw::check
