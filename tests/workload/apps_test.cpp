#include "workload/apps.h"

#include <gtest/gtest.h>

#include <set>

namespace hsw {
namespace {

TEST(Suites, SizesMatchThePaper) {
  EXPECT_EQ(spec_omp2012().size(), 14u);   // SPEC OMP2012: 14 applications
  EXPECT_EQ(spec_mpi2007().size(), 13u);   // SPEC MPI2007: 13 applications
}

TEST(Suites, NamesAreUniqueAndSuiteTagged) {
  std::set<std::string> names;
  for (const AppProfile& app : spec_omp2012()) {
    EXPECT_EQ(app.suite, "OMP2012");
    names.insert(app.name);
  }
  for (const AppProfile& app : spec_mpi2007()) {
    EXPECT_EQ(app.suite, "MPI2007");
    names.insert(app.name);
  }
  EXPECT_EQ(names.size(), 27u);
}

TEST(Suites, ProfilesAreWellFormed) {
  for (const auto* suite : {&spec_omp2012(), &spec_mpi2007()}) {
    for (const AppProfile& app : *suite) {
      EXPECT_GT(app.compute_fraction, 0.0) << app.name;
      EXPECT_LT(app.compute_fraction, 1.0) << app.name;
      EXPECT_LE(app.f_l2 + app.f_l3 + app.f_dram + app.sharing, 1.0) << app.name;
      EXPECT_GE(app.numa_locality, 0.0) << app.name;
      EXPECT_LE(app.numa_locality, 1.0) << app.name;
      EXPECT_GE(app.mlp, 1.0) << app.name;
    }
  }
}

TEST(Runtime, PositiveAndDecomposed) {
  const AppRunResult r =
      estimate_runtime(spec_omp2012().front(), SystemConfig::source_snoop());
  EXPECT_GT(r.runtime, 0.0);
  EXPECT_GT(r.memory_time, 0.0);
  EXPECT_LE(r.sharing_time, r.memory_time);
}

TEST(Runtime, ColdAppInsensitiveToMode) {
  // 350.md is compute-bound: configuration changes must barely move it.
  const AppProfile& md = spec_omp2012().front();
  ASSERT_EQ(md.name, "350.md");
  const double base = estimate_runtime(md, SystemConfig::source_snoop()).runtime;
  const double cod = estimate_runtime(md, SystemConfig::cluster_on_die()).runtime;
  EXPECT_NEAR(cod / base, 1.0, 0.02);
}

TEST(Runtime, AppluDegradesUnderCod) {
  // The paper's headline Fig. 10 result: 371.applu331 slows by up to 23%
  // in COD mode.
  const AppProfile* applu = nullptr;
  for (const AppProfile& app : spec_omp2012()) {
    if (app.name == "371.applu331") applu = &app;
  }
  ASSERT_NE(applu, nullptr);
  const double base = estimate_runtime(*applu, SystemConfig::source_snoop()).runtime;
  const double cod = estimate_runtime(*applu, SystemConfig::cluster_on_die()).runtime;
  EXPECT_GT(cod / base, 1.10);
  EXPECT_LT(cod / base, 1.30);
}

TEST(Runtime, MpiSuiteLikesCod) {
  // MPI ranks use local memory; COD's lower local latency should help (or
  // at least not hurt) most MPI codes.
  int improved = 0;
  for (const AppProfile& app : spec_mpi2007()) {
    const double base =
        estimate_runtime(app, SystemConfig::source_snoop()).runtime;
    const double cod =
        estimate_runtime(app, SystemConfig::cluster_on_die()).runtime;
    if (cod <= base * 1.001) ++improved;
  }
  EXPECT_GE(improved, 10);
}

TEST(Runtime, HomeSnoopRoughlyNeutralForOmp) {
  // Paper: 12 of 14 OMP apps within +/-2% under home snoop; our model keeps
  // at least 10 of 14 within +/-3.5% (EXPERIMENTS.md discusses the rest —
  // the model charges sharing-heavy apps the higher remote-cache latency
  // without crediting the doubled cross-socket bandwidth in full).
  int within = 0;
  for (const AppProfile& app : spec_omp2012()) {
    const double base =
        estimate_runtime(app, SystemConfig::source_snoop()).runtime;
    const double home =
        estimate_runtime(app, SystemConfig::home_snoop()).runtime;
    if (std::abs(home / base - 1.0) < 0.035) ++within;
  }
  EXPECT_GE(within, 10);
}

}  // namespace
}  // namespace hsw
