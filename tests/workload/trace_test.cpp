#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/units.h"

namespace hsw {
namespace {

TEST(TraceRoundTrip, SerializeParse) {
  Trace trace{{0, TraceOp::kRead, 0x1000},
              {12, TraceOp::kWrite, 0x100000002040ull},
              {3, TraceOp::kFlush, 0x40}};
  std::stringstream buffer;
  write_trace(buffer, trace);
  Trace parsed;
  ASSERT_TRUE(read_trace(buffer, parsed));
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].core, trace[i].core);
    EXPECT_EQ(parsed[i].op, trace[i].op);
    EXPECT_EQ(parsed[i].addr, trace[i].addr);
  }
}

TEST(TraceRoundTrip, RejectsMalformedInput) {
  std::stringstream bad("0 X 1000\n");
  Trace parsed;
  EXPECT_FALSE(read_trace(bad, parsed));
}

TEST(TraceReplay, CountsAndClassifies) {
  System sys(SystemConfig::source_snoop());
  const MemRegion region = sys.alloc_on_node(0, kib(4));
  Trace trace;
  for (std::uint64_t l = 0; l < region.line_count(); ++l) {
    trace.push_back({0, TraceOp::kWrite, region.addr_at(l * kLineSize)});
    trace.push_back({0, TraceOp::kRead, region.addr_at(l * kLineSize)});
  }
  const ReplayStats stats = replay(sys, trace);
  EXPECT_EQ(stats.events, trace.size());
  // The second access of each pair is an L1 hit.
  EXPECT_GE(stats.source_fraction(ServiceSource::kL1), 0.5);
  EXPECT_GT(stats.mean_ns(), 0.0);
}

TEST(TraceGenerators, StreamCoversTheBuffers) {
  System sys(SystemConfig::source_snoop());
  const Trace trace = make_stream_trace(sys, {0, 1}, kib(8), 0.25, 3);
  EXPECT_EQ(trace.size(), 2u * kib(8) / kLineSize);
  std::size_t writes = 0;
  for (const TraceEvent& e : trace) writes += e.op == TraceOp::kWrite;
  EXPECT_GT(writes, trace.size() / 8);
  EXPECT_LT(writes, trace.size() / 2);
}

TEST(TraceGenerators, ChaseRespectsAccessCount) {
  System sys(SystemConfig::source_snoop());
  const Trace trace = make_chase_trace(sys, {0, 1, 2}, kib(64), 100, 3);
  EXPECT_EQ(trace.size(), 300u);
  for (const TraceEvent& e : trace) EXPECT_EQ(e.op, TraceOp::kRead);
}

TEST(TraceGenerators, ProducerConsumerPingPongs) {
  System sys(SystemConfig::source_snoop());
  const Trace trace =
      make_producer_consumer_trace(sys, 0, 12, kib(1), /*rounds=*/4, 1);
  const ReplayStats stats = replay(sys, trace);
  // Consumer reads must be serviced by cross-socket forwards after round 1.
  EXPECT_GT(stats.source_fraction(ServiceSource::kRemoteFwd), 0.2);
  EXPECT_GT(
      stats.counters[static_cast<std::size_t>(Ctr::kLoadsRemoteFwd)], 0u);
}

TEST(TraceGenerators, HotsetContentionSnoopsHeavily) {
  System sys(SystemConfig::source_snoop());
  std::vector<int> cores{0, 1, 12, 13};  // both sockets fight
  const Trace trace = make_hotset_trace(sys, cores, 16, 4000, 0.5, 7);
  const ReplayStats stats = replay(sys, trace);
  EXPECT_GT(stats.counters[static_cast<std::size_t>(Ctr::kSnoopsSent)], 500u);
  // Contended lines cost far more than private L1 hits on average.
  EXPECT_GT(stats.mean_ns(), 20.0);
}

TEST(TraceReplay, CodVsSourceOnMigratoryPattern) {
  // A producer-consumer pattern across on-chip clusters: COD routes it via
  // the home agent, the default mode forwards directly — COD should not be
  // catastrophically worse thanks to the HitME cache.
  auto run = [](const SystemConfig& config) {
    System sys(config);
    const Trace trace = make_producer_consumer_trace(
        sys, 0, sys.topology().cod() ? 6 : 1, kib(4), 6, 1);
    return replay(sys, trace).mean_ns();
  };
  const double source = run(SystemConfig::source_snoop());
  const double cod = run(SystemConfig::cluster_on_die());
  EXPECT_GT(cod, 0.0);
  EXPECT_LT(cod, source * 3.0);
}

}  // namespace
}  // namespace hsw
