// Tests for the event-driven concurrent execution engine: closed-loop
// calibration, saturation behaviour, program interleaving, and the
// determinism contract (pure function of inputs).
#include "exec/engine.h"

#include <gtest/gtest.h>

#include "core/hswbench.h"
#include "workload/trace.h"

namespace hsw {
namespace {

exec::StreamTask local_reader(int core, double demand, double latency) {
  exec::StreamTask task;
  task.core = core;
  task.demand_gbps = demand;
  task.latency_ns = latency;
  task.path = {{0, 1.0}};
  return task;
}

TEST(ClosedLoop, UnloadedRateEqualsDemand) {
  // One stream far below the shared capacity: the idle-pad calibration must
  // reproduce the MLP-limited demand, not the raw slot throughput.
  const auto r = exec::run_closed_loop({local_reader(0, 11.2, 96.4)}, {62.8});
  ASSERT_EQ(r.gbps.size(), 1u);
  EXPECT_NEAR(r.gbps[0], 11.2, 0.05);
  EXPECT_NEAR(r.mean_queue_ns[0], 0.0, 0.5);
}

TEST(ClosedLoop, UnsaturatedStreamsAddUp) {
  std::vector<exec::StreamTask> tasks;
  for (int c = 0; c < 3; ++c) tasks.push_back(local_reader(c, 11.2, 96.4));
  const auto r = exec::run_closed_loop(tasks, {62.8});
  EXPECT_NEAR(r.total_gbps, 3 * 11.2, 0.2);
}

TEST(ClosedLoop, SaturationCapsAtCapacity) {
  // Table VII: 12 local readers against one 62.8 GB/s DRAM node.  The FIFO
  // back-pressure must flatten the aggregate at capacity, and the queueing
  // delay must become visible.
  std::vector<exec::StreamTask> tasks;
  for (int c = 0; c < 12; ++c) tasks.push_back(local_reader(c, 11.2, 96.4));
  const auto r = exec::run_closed_loop(tasks, {62.8});
  EXPECT_LE(r.total_gbps, 62.8 * 1.005);
  EXPECT_GT(r.total_gbps, 62.8 * 0.97);
  double queued = 0.0;
  for (double q : r.mean_queue_ns) queued += q;
  EXPECT_GT(queued, 1.0);
}

TEST(ClosedLoop, ProtocolWeightConsumesExtraCapacity) {
  // A 2x protocol weight (source-snoop QPI) must halve the saturated rate.
  std::vector<exec::StreamTask> tasks;
  for (int c = 0; c < 8; ++c) {
    exec::StreamTask t = local_reader(c, 8.4, 146.0);
    t.path = {{0, 2.0}};
    tasks.push_back(t);
  }
  const auto r = exec::run_closed_loop(tasks, {38.4});
  EXPECT_NEAR(r.total_gbps, 38.4 / 2.0, 0.6);
}

TEST(ClosedLoop, DeterministicAcrossRuns) {
  std::vector<exec::StreamTask> tasks;
  for (int c = 0; c < 6; ++c) tasks.push_back(local_reader(c, 11.2, 96.4));
  const auto a = exec::run_closed_loop(tasks, {62.8});
  const auto b = exec::run_closed_loop(tasks, {62.8});
  EXPECT_EQ(a.lines_retired, b.lines_retired);
  ASSERT_EQ(a.gbps.size(), b.gbps.size());
  for (std::size_t i = 0; i < a.gbps.size(); ++i) {
    EXPECT_EQ(a.gbps[i], b.gbps[i]);  // bitwise: pure function of inputs
  }
}

TEST(SimulatedBandwidth, MatchesAnalyticOnLocalReaders) {
  // The measure_bandwidth integration of the closed loop: both engines see
  // the same flows and capacities, so a Table VII point must agree.
  for (int cores : {1, 4, 12}) {
    double total[2] = {0.0, 0.0};
    int slot = 0;
    for (auto engine :
         {BandwidthEngine::kAnalytic, BandwidthEngine::kSimulated}) {
      System sys(SystemConfig::source_snoop());
      BandwidthConfig bc;
      for (int c = 0; c < cores; ++c) {
        StreamConfig stream;
        stream.core = c;
        stream.placement.owner_core = c;
        stream.placement.memory_node = 0;
        stream.placement.state = Mesif::kModified;
        stream.placement.level = CacheLevel::kMemory;
        bc.streams.push_back(stream);
      }
      bc.buffer_bytes = mib(2);
      bc.engine = engine;
      total[slot++] = measure_bandwidth(sys, bc).total_gbps;
    }
    EXPECT_NEAR(total[1] / total[0], 1.0, 0.05) << cores << " cores";
  }
}

TEST(SimulatedBandwidth, ReportsQueueDelayWhenSaturated) {
  System sys(SystemConfig::source_snoop());
  BandwidthConfig bc;
  for (int c = 0; c < 12; ++c) {
    StreamConfig stream;
    stream.core = c;
    stream.placement.owner_core = c;
    stream.placement.memory_node = 0;
    stream.placement.state = Mesif::kModified;
    stream.placement.level = CacheLevel::kMemory;
    bc.streams.push_back(stream);
  }
  bc.buffer_bytes = mib(2);
  bc.engine = BandwidthEngine::kSimulated;
  const BandwidthResult r = measure_bandwidth(sys, bc);
  ASSERT_EQ(r.streams.size(), 12u);
  double queued = 0.0;
  for (const StreamResult& s : r.streams) queued += s.queue_ns;
  EXPECT_GT(queued, 1.0);
}

exec::Program stride_program(int core, PhysAddr base, int lines) {
  exec::Program p;
  p.core = core;
  for (int i = 0; i < lines; ++i) {
    p.ops.push_back({exec::OpKind::kRead,
                     base + static_cast<PhysAddr>(i) * kLineSize});
  }
  return p;
}

TEST(RunPrograms, DeterministicAcrossRuns) {
  auto run = [] {
    System sys(SystemConfig::source_snoop());
    std::vector<exec::Program> programs;
    for (int c = 0; c < 4; ++c) {
      const MemRegion region = sys.alloc_on_node(c % 2, kib(64));
      programs.push_back(stride_program(c, region.base, 512));
    }
    return exec::run_programs(sys, programs);
  };
  const exec::ProgramExecStats a = run();
  const exec::ProgramExecStats b = run();
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);  // bitwise
  EXPECT_EQ(a.access_ns, b.access_ns);
  EXPECT_EQ(a.queue_ns, b.queue_ns);
  EXPECT_EQ(a.by_source, b.by_source);
  for (std::size_t i = 0; i < kCtrCount; ++i) {
    EXPECT_EQ(a.counters[i], b.counters[i]) << ctr_name(static_cast<Ctr>(i));
  }
  ASSERT_EQ(a.per_core.size(), b.per_core.size());
  for (std::size_t c = 0; c < a.per_core.size(); ++c) {
    EXPECT_EQ(a.per_core[c].finish_ns, b.per_core[c].finish_ns);
  }
}

TEST(RunPrograms, WiderWindowOverlapsLatency) {
  // Independent miss streams: with one outstanding miss the makespan is the
  // latency sum; with ten the misses overlap and the makespan collapses.
  auto makespan = [](int window) {
    System sys(SystemConfig::source_snoop());
    const MemRegion region = sys.alloc_on_node(0, kib(64));
    std::vector<exec::Program> programs{stride_program(0, region.base, 512)};
    exec::ProgramExecConfig config;
    config.window = window;
    return exec::run_programs(sys, programs, config).makespan_ns;
  };
  const double serial = makespan(1);
  const double overlapped = makespan(10);
  EXPECT_LT(overlapped, serial * 0.5);
}

TEST(RunPrograms, FlushesExecuteButDoNotOccupySlots) {
  System sys(SystemConfig::source_snoop());
  const MemRegion region = sys.alloc_on_node(0, kib(4));
  exec::Program p;
  p.core = 0;
  for (int i = 0; i < 64; ++i) {
    const PhysAddr addr = region.base + static_cast<PhysAddr>(i) * kLineSize;
    p.ops.push_back({exec::OpKind::kWrite, addr});
    p.ops.push_back({exec::OpKind::kFlush, addr});
  }
  const exec::ProgramExecStats r = exec::run_programs(sys, {p});
  EXPECT_EQ(r.accesses, 64u);
  EXPECT_EQ(r.flushes, 64u);
  // Flushed lines must actually have left the hierarchy: re-reading one
  // through the same system misses to DRAM.
  const AccessResult back = sys.read(0, region.base);
  EXPECT_EQ(back.source, ServiceSource::kLocalDram);
}

TEST(ReplayConcurrent, SingleCoreMatchesSerialReplay) {
  // With one core there is no interleaving freedom: the concurrent replayer
  // must visit the same lines in the same order as the serial one and land
  // on identical service sources and latency sums.
  System serial_sys(SystemConfig::source_snoop());
  const Trace trace = make_chase_trace(serial_sys, {0}, mib(1), 4096, 7);
  const ReplayStats serial = replay(serial_sys, trace);

  System conc_sys(SystemConfig::source_snoop());
  const exec::ProgramExecStats conc = replay_concurrent(conc_sys, trace);
  EXPECT_EQ(conc.accesses, serial.events);
  EXPECT_EQ(conc.by_source, serial.by_source);
  EXPECT_DOUBLE_EQ(conc.access_ns, serial.total_ns);
}

TEST(ReplayConcurrent, PingpongForwardsBetweenCores) {
  System sys(SystemConfig::source_snoop());
  const Trace trace = make_pingpong_trace(sys, 0, 12, 500);
  const exec::ProgramExecStats r = replay_concurrent(sys, trace);
  // The mailbox line migrates between the sockets: a substantial fraction
  // of the accesses must be serviced by forwards, not by local caches.
  const double forwarded = r.source_fraction(ServiceSource::kCoreFwd) +
                           r.source_fraction(ServiceSource::kRemoteFwd);
  EXPECT_GT(forwarded, 0.25);
  EXPECT_EQ(r.accesses + r.flushes, trace.size());
}

TEST(ReplayConcurrent, FalseSharingCostsMoreThanPadded) {
  const std::vector<int> cores = {0, 1, 12, 13};
  auto run = [&](bool padded) {
    System sys(SystemConfig::source_snoop());
    const Trace trace = make_false_sharing_trace(sys, cores, 400, padded);
    return replay_concurrent(sys, trace);
  };
  const exec::ProgramExecStats shared = run(false);
  const exec::ProgramExecStats padded = run(true);
  EXPECT_EQ(shared.accesses, padded.accesses);
  // Ownership ping-pong on the shared line must show up as both a higher
  // per-write cost and a longer makespan.
  EXPECT_GT(shared.mean_access_ns(), 3.0 * padded.mean_access_ns());
  EXPECT_GT(shared.makespan_ns, padded.makespan_ns);
}

TEST(ReplayConcurrent, LockTraceHammersTheLockLine) {
  System sys(SystemConfig::source_snoop());
  const std::vector<int> cores = {0, 3, 12, 15};
  const Trace trace = make_lock_trace(sys, cores, 2, 300, 11);
  const exec::ProgramExecStats r = replay_concurrent(sys, trace);
  EXPECT_GT(r.accesses, 0u);
  // Every acquisition bounces the lock line between cores, so forwards must
  // dominate over DRAM services.
  const double forwarded = r.source_fraction(ServiceSource::kCoreFwd) +
                           r.source_fraction(ServiceSource::kRemoteFwd);
  const double dram = r.source_fraction(ServiceSource::kLocalDram) +
                      r.source_fraction(ServiceSource::kRemoteDram);
  EXPECT_GT(forwarded, dram);
}

}  // namespace
}  // namespace hsw
