// End-to-end shape tests: the qualitative structure of every figure —
// level staircases, protocol crossovers, HitME size dependence — must hold
// for the reproduction to be meaningful, independent of exact calibration.
#include <gtest/gtest.h>

#include "core/hswbench.h"
#include "workload/apps.h"

namespace hsw {
namespace {

LatencySweepConfig base_sweep(const SystemConfig& system, int reader,
                              Placement placement,
                              std::vector<std::uint64_t> sizes) {
  LatencySweepConfig config;
  config.system = system;
  config.reader_core = reader;
  config.placement = std::move(placement);
  config.sizes = std::move(sizes);
  config.max_measured_lines = 4096;
  return config;
}

TEST(Fig4Shape, LocalStaircaseHasFourPlateaus) {
  const auto points = latency_sweep(base_sweep(
      SystemConfig::source_snoop(), 0,
      Placement{.owner_core = 0, .memory_node = 0, .state = Mesif::kModified,
                .sharers = {}, .level = CacheLevel::kL1L2},
      {kib(16), kib(128), mib(2), mib(48)}));
  const double l1 = points[0].result.mean_ns;
  const double l2 = points[1].result.mean_ns;
  const double l3 = points[2].result.mean_ns;
  const double mem = points[3].result.mean_ns;
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
  EXPECT_LT(l3, mem);
  // The paper's ratios: L2/L1 = 3, L3/L2 ~ 4.4, mem/L3 ~ 4.5.
  EXPECT_NEAR(l2 / l1, 3.0, 0.8);
  EXPECT_GT(l3 / l2, 3.0);
  EXPECT_GT(mem / l3, 3.0);
}

TEST(Fig4Shape, CapacityTransitionsAtTheRightSizes) {
  // 32 KiB L1, 256 KiB L2, 30 MiB socket L3.
  const auto points = latency_sweep(base_sweep(
      SystemConfig::source_snoop(), 0,
      Placement{.owner_core = 0, .memory_node = 0, .state = Mesif::kModified,
                .sharers = {}, .level = CacheLevel::kL1L2},
      {kib(32), kib(48), kib(256), kib(384)}));
  // Within L1 vs just beyond.
  EXPECT_NEAR(points[0].result.mean_ns, 1.6, 0.01);
  EXPECT_GT(points[1].result.mean_ns, points[0].result.mean_ns * 1.2);
  // Within L2 reach vs just beyond.
  EXPECT_GT(points[3].result.mean_ns, points[2].result.mean_ns * 1.5);
}

TEST(Fig4Shape, StateOrderingWithinNode) {
  // For cache-resident sets read from another core: M (core forward) is the
  // slowest, E (L3 + snoop) next, S (plain L3) fastest.
  auto mean = [&](Mesif state, std::vector<int> sharers) {
    System sys(SystemConfig::source_snoop());
    LatencyConfig lc;
    lc.reader_core = 0;
    lc.placement = Placement{.owner_core = 1, .memory_node = 0, .state = state,
                             .sharers = std::move(sharers),
                             .level = CacheLevel::kL1L2};
    lc.buffer_bytes = kib(64);
    lc.max_measured_lines = 1024;
    return measure_latency(sys, lc).mean_ns;
  };
  const double m = mean(Mesif::kModified, {});
  const double e = mean(Mesif::kExclusive, {});
  const double s = mean(Mesif::kShared, {2});
  EXPECT_GT(m, e);
  EXPECT_GT(e, s);
  EXPECT_NEAR(m, 53.0, 3.0);
  EXPECT_NEAR(s, 21.2, 2.0);
}

TEST(Fig5Shape, HomeSnoopPenaltyOnlyWhereExpected) {
  auto l3_local = [](const SystemConfig& c) {
    System sys(c);
    LatencyConfig lc;
    lc.reader_core = 0;
    lc.placement = Placement{.owner_core = 0, .memory_node = 0,
                             .state = Mesif::kExclusive, .sharers = {},
                             .level = CacheLevel::kL3};
    lc.buffer_bytes = kib(256);
    lc.max_measured_lines = 1024;
    return measure_latency(sys, lc).mean_ns;
  };
  // Local L3 identical in both modes (no external requests involved).
  EXPECT_DOUBLE_EQ(l3_local(SystemConfig::source_snoop()),
                   l3_local(SystemConfig::home_snoop()));
}

TEST(Fig6Shape, LatencyGrowsWithHopCount) {
  System probe(SystemConfig::cluster_on_die());
  const SystemTopology& topo = probe.topology();
  std::vector<double> by_hops;
  for (int node : {0, 1, 2, 3}) {
    System sys(SystemConfig::cluster_on_die());
    LatencyConfig lc;
    lc.reader_core = 0;
    const int owner = node == 0 ? 1 : topo.node(node).cores[0];
    lc.placement = Placement{.owner_core = owner, .memory_node = node,
                             .state = Mesif::kModified, .sharers = {},
                             .level = CacheLevel::kL3};
    lc.buffer_bytes = kib(256);
    lc.max_measured_lines = 1024;
    by_hops.push_back(measure_latency(sys, lc).mean_ns);
  }
  // local < on-chip < 1-hop QPI < 2-hop.
  EXPECT_LT(by_hops[0], by_hops[1]);
  EXPECT_LT(by_hops[1], by_hops[2]);
  EXPECT_LT(by_hops[2], by_hops[3]);
}

TEST(Fig7Shape, HitmeCrossoverWithSize) {
  // Small shared sets: served by home memory (REMOTE_DRAM); large sets:
  // forwarded by the F-holder (REMOTE_FWD) at higher latency.
  auto run = [&](std::uint64_t bytes) {
    System sys(SystemConfig::cluster_on_die());
    const SystemTopology& topo = sys.topology();
    LatencyConfig lc;
    lc.reader_core = 0;
    lc.placement = Placement{.owner_core = topo.node(1).cores[1],
                             .memory_node = 1, .state = Mesif::kShared,
                             .sharers = {topo.node(2).cores[1]},
                             .level = CacheLevel::kL3};
    lc.buffer_bytes = bytes;
    lc.max_measured_lines = 2048;
    return measure_latency(sys, lc);
  };
  const LatencyResult small = run(kib(128));
  const LatencyResult large = run(mib(4));
  EXPECT_GT(small.source_fraction(ServiceSource::kRemoteDram), 0.9);
  EXPECT_GT(large.source_fraction(ServiceSource::kRemoteFwd), 0.9);
  EXPECT_GT(large.mean_ns, small.mean_ns * 1.5);
  EXPECT_GT(small.counters[static_cast<std::size_t>(Ctr::kHitmeHit)], 0u);
}

TEST(Fig8Shape, BandwidthStaircaseInvertsLatencyStaircase) {
  BandwidthSweepConfig config;
  config.system = SystemConfig::source_snoop();
  config.stream.core = 0;
  config.stream.placement =
      Placement{.owner_core = 0, .memory_node = 0, .state = Mesif::kModified,
                .sharers = {}, .level = CacheLevel::kL1L2};
  config.sizes = {kib(16), kib(128), mib(2), mib(48)};
  const auto points = bandwidth_sweep(config);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].gbps, points[i - 1].gbps);
  }
  EXPECT_NEAR(points.back().gbps, 10.3, 1.5);  // memory plateau
}

TEST(Fig10Shape, CodWinnersAndLosers) {
  // COD must hurt the sharing-heavy OMP codes and help (or be neutral for)
  // the NUMA-local MPI codes — the paper's overall conclusion.
  double worst_omp = 0.0;
  for (const AppProfile& app : spec_omp2012()) {
    const double rel =
        estimate_runtime(app, SystemConfig::cluster_on_die()).runtime /
        estimate_runtime(app, SystemConfig::source_snoop()).runtime;
    worst_omp = std::max(worst_omp, rel);
  }
  EXPECT_GT(worst_omp, 1.10);

  double mean_mpi = 0.0;
  for (const AppProfile& app : spec_mpi2007()) {
    mean_mpi += estimate_runtime(app, SystemConfig::cluster_on_die()).runtime /
                estimate_runtime(app, SystemConfig::source_snoop()).runtime;
  }
  mean_mpi /= static_cast<double>(spec_mpi2007().size());
  EXPECT_LT(mean_mpi, 1.01);
}

}  // namespace
}  // namespace hsw
