// Tables IV and V as end-to-end tests: the full 4x4 matrices produced by
// the same placement recipes the benches use, compared cell-by-cell against
// the paper within coarse tolerances.
#include <gtest/gtest.h>

#include "core/hswbench.h"

namespace hsw {
namespace {

double shared_l3_cell(int f, int h, std::uint64_t seed) {
  System sys(SystemConfig::cluster_on_die());
  const SystemTopology& topo = sys.topology();
  LatencyConfig lc;
  lc.reader_core = 0;
  lc.placement.owner_core = topo.node(h).cores[1];
  lc.placement.memory_node = h;
  lc.placement.state = Mesif::kShared;
  lc.placement.sharers = {f == h ? topo.node(f).cores[2]
                                 : topo.node(f).cores[1]};
  lc.placement.level = CacheLevel::kL3;
  lc.buffer_bytes = mib(4);  // beyond the HitME coverage
  lc.max_measured_lines = 2048;
  lc.seed = seed;
  return measure_latency(sys, lc).mean_ns;
}

double stale_memory_cell(int f, int h, std::uint64_t seed) {
  System sys(SystemConfig::cluster_on_die());
  const SystemTopology& topo = sys.topology();
  LatencyConfig lc;
  lc.reader_core = 0;
  lc.placement.owner_core = topo.node(h).cores[1];
  lc.placement.memory_node = h;
  lc.placement.state = Mesif::kShared;
  lc.placement.sharers = {f == h ? topo.node(f).cores[2]
                                 : topo.node(f).cores[1]};
  lc.placement.level = CacheLevel::kMemory;
  lc.buffer_bytes = mib(6);
  lc.max_measured_lines = 2048;
  lc.seed = seed;
  return measure_latency(sys, lc).mean_ns;
}

TEST(TableIV, FullMatrixWithinTolerance) {
  // Paper values; rows = F node, cols = home node, reader in node0.
  const double paper[4][4] = {{18.0, 18.0, 18.0, 18.0},
                              {18.0, 57.2, 170.0, 177.0},
                              {18.0, 166.0, 90.0, 166.0},
                              {18.0, 169.0, 162.0, 96.0}};
  for (int f = 0; f < 4; ++f) {
    for (int h = 0; h < 4; ++h) {
      const double sim = shared_l3_cell(f, h, 3);
      EXPECT_NEAR(sim, paper[f][h], paper[f][h] * 0.15)
          << "F:node" << f << " H:node" << h;
    }
  }
}

TEST(TableIV, ThreeNodeWorstCaseDoublesTheDefault) {
  // Paper §VI-C: 177 ns is more than twice the 86 ns of the default mode.
  const double worst = shared_l3_cell(1, 3, 3);
  System source(SystemConfig::source_snoop());
  LatencyConfig lc;
  lc.reader_core = 0;
  lc.placement = Placement{.owner_core = 12, .memory_node = 1,
                           .state = Mesif::kModified, .sharers = {},
                           .level = CacheLevel::kL3};
  lc.buffer_bytes = kib(512);
  lc.max_measured_lines = 1024;
  const double default_remote = measure_latency(source, lc).mean_ns;
  EXPECT_GT(worst, 2.0 * default_remote * 0.9);
}

TEST(TableV, FullMatrixWithinTolerance) {
  const double paper[4][4] = {{89.6, 182.0, 222.0, 236.0},
                              {168.0, 96.0, 222.0, 236.0},
                              {168.0, 182.0, 141.0, 236.0},
                              {168.0, 182.0, 222.0, 147.0}};
  for (int f = 0; f < 4; ++f) {
    for (int h = 0; h < 4; ++h) {
      const double sim = stale_memory_cell(f, h, 5);
      EXPECT_NEAR(sim, paper[f][h], paper[f][h] * 0.12)
          << "F:node" << f << " H:node" << h;
    }
  }
}

TEST(TableV, BroadcastPenaltyInPaperBand) {
  // The stale-directory broadcast adds 78-89 ns over the clean diagonal.
  for (int h = 0; h < 4; ++h) {
    const double clean = stale_memory_cell(h, h, 7);
    const int f = (h + 1) % 4;
    const double stale = stale_memory_cell(f, h, 7);
    const double penalty = stale - clean;
    EXPECT_GT(penalty, 60.0) << "home node " << h;
    EXPECT_LT(penalty, 100.0) << "home node " << h;
  }
}

}  // namespace
}  // namespace hsw
