# Asserts a bench's exported trace is byte-identical regardless of the
# worker thread count: stream ids come from the sweep configuration (plan x
# size index), sequence numbers are per-stream, and the sink merges by
# (stream, seq) — so --jobs must never change a single byte of the trace,
# in either export format.
#
# Usage: cmake -DBENCH=<bench-binary> -DOUT_DIR=<dir> -P trace_determinism.cmake

foreach(var BENCH OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "trace_determinism.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
get_filename_component(bench_name "${BENCH}" NAME)

foreach(ext json csv)
  foreach(jobs 1 8)
    execute_process(
      COMMAND "${BENCH}" --quick --seed 1 --jobs ${jobs}
              --trace "${OUT_DIR}/${bench_name}.jobs${jobs}.trace.${ext}"
      RESULT_VARIABLE rc
      OUTPUT_QUIET ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "bench --jobs ${jobs} failed (rc=${rc}):\n${err}")
    endif()
  endforeach()

  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/${bench_name}.jobs1.trace.${ext}"
            "${OUT_DIR}/${bench_name}.jobs8.trace.${ext}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${bench_name}: --jobs 1 and --jobs 8 produced different "
      "trace bytes (.${ext})")
  endif()
endforeach()
