# --spec on the benches: a spec whose shared knobs match the flag defaults
# must leave the CSV artifact byte-identical to a plain run (the spec
# overrides seed/engine/protocol/sampling, never the sweep geometry), and a
# spec asking for a non-MESIF family must trip the same pin policy as
# --protocol (exit 1).
#
# Usage: cmake -DBENCH=<fig-bench-binary> -DOUT_DIR=<dir>
#              -P spec_override.cmake

foreach(var BENCH OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "spec_override.cmake: missing -D${var}=...")
  endif()
endforeach()

set(work "${OUT_DIR}/spec_override")
file(REMOVE_RECURSE "${work}")
file(MAKE_DIRECTORY "${work}")

# The default shared knobs, spelled as a spec document.
file(WRITE "${work}/defaults.json"
  "{\n  \"hswsim_spec_version\": 1,\n  \"kind\": \"latency\",\n  \"seed\": 1,\n  \"engine\": \"analytic\",\n  \"protocol\": \"mesif\",\n  \"sample_ratio\": 1.0,\n  \"sample_seed\": 0\n}\n")

execute_process(
  COMMAND "${BENCH}" --quick --csv "${work}/plain.csv"
  OUTPUT_QUIET ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "plain run failed (${rc}):\n${err}")
endif()
execute_process(
  COMMAND "${BENCH}" --quick --spec "${work}/defaults.json"
          --csv "${work}/spec.csv"
  OUTPUT_QUIET ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--spec run failed (${rc}):\n${err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${work}/plain.csv" "${work}/spec.csv"
  RESULT_VARIABLE differs)
if(differs)
  message(FATAL_ERROR
    "--spec with default knobs changed the CSV artifact; the spec must only "
    "override seed/engine/protocol/sampling")
endif()

# A non-MESIF spec on a pinned paper bench must refuse, exactly like
# --protocol moesi does.
file(WRITE "${work}/moesi.json"
  "{\n  \"hswsim_spec_version\": 1,\n  \"protocol\": \"moesi\"\n}\n")
execute_process(
  COMMAND "${BENCH}" --quick --spec "${work}/moesi.json"
  OUTPUT_QUIET ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "a moesi spec on a MESIF-pinned bench must exit nonzero")
endif()
if(NOT err MATCHES "MESIF")
  message(FATAL_ERROR
    "the refusal should name the MESIF pin:\n${err}")
endif()
