# Asserts a bench's --resstats per-resource telemetry report is
# byte-identical regardless of the worker thread count: recorder stream ids
# come from the sweep configuration, ResourceStatsHub folds them in
# stream-id order, and the renderer prints items in fixed index order.
# Only the manifest's own "jobs" line legitimately differs between the two
# runs, so it is masked before the comparison (same discipline as
# linestats_determinism.cmake).
#
# Usage: cmake -DBENCH=<bench-binary> -DOUT_DIR=<dir>
#              [-DEXTRA_ARGS=<space-separated flags>] [-DTAG=<suffix>]
#              -P resstats_determinism.cmake

foreach(var BENCH OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "resstats_determinism.cmake: missing -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()
separate_arguments(EXTRA_ARGS)

file(MAKE_DIRECTORY "${OUT_DIR}")
get_filename_component(bench_name "${BENCH}" NAME)
if(DEFINED TAG)
  set(bench_name "${bench_name}.${TAG}")
endif()

foreach(jobs 1 8)
  set(report "${OUT_DIR}/${bench_name}.jobs${jobs}.resstats.json")
  execute_process(
    COMMAND "${BENCH}" --quick --seed 1 --jobs ${jobs} ${EXTRA_ARGS}
            --resstats "${report}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench --jobs ${jobs} failed (rc=${rc}):\n${err}")
  endif()
  file(READ "${report}" text)
  string(REGEX REPLACE "\"jobs\": *[0-9]+" "\"jobs\": MASKED" text "${text}")
  file(WRITE "${report}.masked" "${text}")
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${OUT_DIR}/${bench_name}.jobs1.resstats.json.masked"
          "${OUT_DIR}/${bench_name}.jobs8.resstats.json.masked"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "${bench_name}: --jobs 1 and --jobs 8 produced different resources "
    "report bytes (beyond the masked manifest jobs line)")
endif()
