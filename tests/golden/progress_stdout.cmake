# Asserts --progress leaves stdout untouched: the heartbeat is stderr-only,
# so a run with the flag must produce byte-identical stdout AND an
# identical CSV artifact to a run without it.  Anything else would let an
# interactive convenience flag corrupt piped/golden output.
#
# Usage: cmake -DBENCH=<bench-binary> -DOUT_DIR=<dir> -P progress_stdout.cmake

foreach(var BENCH OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "progress_stdout.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
get_filename_component(bench_name "${BENCH}" NAME)

foreach(variant plain progress)
  if(variant STREQUAL "progress")
    set(flag "--progress")
  else()
    set(flag "")
  endif()
  separate_arguments(flag)
  execute_process(
    COMMAND "${BENCH}" --quick --seed 1 --jobs 2 ${flag}
            --csv "${OUT_DIR}/${bench_name}.${variant}.csv"
    RESULT_VARIABLE rc
    OUTPUT_FILE "${OUT_DIR}/${bench_name}.${variant}.stdout"
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench (${variant}) failed (rc=${rc}):\n${err}")
  endif()
  # The two runs name different --csv files, so the trailing "wrote <path>"
  # confirmation legitimately differs; neutralize it before comparing.
  file(READ "${OUT_DIR}/${bench_name}.${variant}.stdout" text)
  string(REPLACE "${bench_name}.${variant}.csv" "${bench_name}.csv"
         text "${text}")
  file(WRITE "${OUT_DIR}/${bench_name}.${variant}.stdout" "${text}")
endforeach()

foreach(artifact stdout csv)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/${bench_name}.plain.${artifact}"
            "${OUT_DIR}/${bench_name}.progress.${artifact}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${bench_name}: --progress changed the ${artifact} bytes beyond the "
      "--csv filename echo (the heartbeat must write to stderr only)")
  endif()
endforeach()
