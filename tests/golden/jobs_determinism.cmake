# Asserts a bench's CSV output is byte-identical regardless of the worker
# thread count: the parallel sweep writes pre-assigned slots, so --jobs must
# never change a single byte of the result.
#
# Usage: cmake -DBENCH=<bench-binary> -DOUT_DIR=<dir>
#              [-DEXTRA_ARGS=<space-separated flags>] [-DTAG=<suffix>]
#              -P jobs_determinism.cmake
# EXTRA_ARGS is appended to every bench invocation (e.g. "--engine simulated");
# TAG keeps the output files of parameterized variants apart.

foreach(var BENCH OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "jobs_determinism.cmake: missing -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()
separate_arguments(EXTRA_ARGS)

file(MAKE_DIRECTORY "${OUT_DIR}")
get_filename_component(bench_name "${BENCH}" NAME)
if(DEFINED TAG)
  set(bench_name "${bench_name}.${TAG}")
endif()

foreach(jobs 1 8)
  execute_process(
    COMMAND "${BENCH}" --quick --seed 1 --jobs ${jobs} ${EXTRA_ARGS}
            --csv "${OUT_DIR}/${bench_name}.jobs${jobs}.csv"
    RESULT_VARIABLE rc
    OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench --jobs ${jobs} failed (rc=${rc}):\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${OUT_DIR}/${bench_name}.jobs1.csv"
          "${OUT_DIR}/${bench_name}.jobs8.csv"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "${bench_name}: --jobs 1 and --jobs 8 produced different CSV bytes")
endif()
