# Runs one bench binary in its deterministic quick configuration and diffs
# the CSV it writes against the checked-in golden.
#
# Usage (see hswsim_golden_test in tests/CMakeLists.txt):
#   cmake -DBENCH=<bench-binary> -DGOLDEN=<golden.csv> -DOUT=<actual.csv>
#         -DDIFF=<golden_diff-binary> -P run_golden.cmake
#
# To refresh the goldens after an intentional model change, run
# scripts/update_goldens.sh and review the diff like any other code change.

foreach(var BENCH GOLDEN OUT DIFF)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_golden.cmake: missing -D${var}=...")
  endif()
endforeach()

get_filename_component(out_dir "${OUT}" DIRECTORY)
file(MAKE_DIRECTORY "${out_dir}")

execute_process(
  COMMAND "${BENCH}" --quick --seed 1 --jobs 2 --csv "${OUT}"
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench failed (rc=${bench_rc}):\n${bench_out}${bench_err}")
endif()

if(NOT EXISTS "${GOLDEN}")
  message(FATAL_ERROR
    "golden file missing: ${GOLDEN}\n"
    "Generate it with scripts/update_goldens.sh and commit the result.")
endif()

execute_process(
  COMMAND "${DIFF}" "${GOLDEN}" "${OUT}"
  RESULT_VARIABLE diff_rc
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_err)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "golden mismatch:\n${diff_out}${diff_err}")
endif()
