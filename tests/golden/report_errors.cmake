# Asserts hswsim-report fails loudly (exit code exactly 1, with a message
# naming the problem) on the three broken-input classes: a missing file,
# malformed JSON, and a report with an unrecognized schema version.  Exit
# code 2 is reserved for usage errors, so each case checks for 1 precisely.
#
# Usage: cmake -DREPORT=<hswsim-report-binary> -DOUT_DIR=<dir>
#              -P report_errors.cmake

foreach(var REPORT OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "report_errors.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

function(expect_rc1 label expect_msg)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "${label}: expected exit code 1, got ${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  if(NOT err MATCHES "${expect_msg}")
    message(FATAL_ERROR
      "${label}: stderr does not explain the failure (wanted it to match "
      "'${expect_msg}'):\n${err}")
  endif()
endfunction()

# 1. Missing file.
expect_rc1("missing file" "cannot read"
  "${REPORT}" show "${OUT_DIR}/does_not_exist.json")

# 2. Malformed JSON (truncated mid-object).
file(WRITE "${OUT_DIR}/malformed.json" "{\n  \"hswsim_metrics_version\": 1,\n  \"manifest\": {\"tool\"")
expect_rc1("malformed JSON" "not a valid report"
  "${REPORT}" show "${OUT_DIR}/malformed.json")

# 3. Valid JSON, unknown schema version.
file(WRITE "${OUT_DIR}/future.json" "{\n  \"hswsim_metrics_version\": 999,\n  \"manifest\": {\"tool\": \"test\"}\n}\n")
expect_rc1("unknown version" "unknown report version"
  "${REPORT}" show "${OUT_DIR}/future.json")

# The same three classes through the diff entry point (good file first).
file(WRITE "${OUT_DIR}/future2.json" "{\n  \"hswsim_linestats_version\": 999\n}\n")
expect_rc1("diff with unknown version" "unknown report version"
  "${REPORT}" diff "${OUT_DIR}/future.json" "${OUT_DIR}/future2.json")

# The cache view shares the loader, so the same three classes fail with the
# same cause-specific messages — plus its own fourth: a well-formed report
# of a different flavour is not a cache stats dump.
expect_rc1("cache: missing file" "cannot read"
  "${REPORT}" cache "${OUT_DIR}/does_not_exist.json")
expect_rc1("cache: malformed JSON" "not a valid report"
  "${REPORT}" cache "${OUT_DIR}/malformed.json")
file(WRITE "${OUT_DIR}/cache_future.json" "{\n  \"hswsim_cache_version\": 999\n}\n")
expect_rc1("cache: unknown version" "unknown report version"
  "${REPORT}" cache "${OUT_DIR}/cache_future.json")
file(WRITE "${OUT_DIR}/not_cache.json" "{\n  \"hswsim_metrics_version\": 1\n}\n")
expect_rc1("cache: wrong flavour" "not a cache stats dump"
  "${REPORT}" cache "${OUT_DIR}/not_cache.json")

# A genuine (hand-rolled but schema-true) stats dump renders and exits 0.
file(WRITE "${OUT_DIR}/cache_ok.json" "{\n  \"hswsim_cache_version\": 1,\n  \"entries\": 2,\n  \"bytes\": 440,\n  \"capacity_bytes\": 1048576,\n  \"hits\": 3,\n  \"misses\": 1,\n  \"insertions\": 1,\n  \"evictions\": 0,\n  \"items\": [\n    {\"key\": \"aaaa-bbbb\", \"bytes\": 220},\n    {\"key\": \"cccc-dddd\", \"bytes\": 220}\n  ]\n}\n")
execute_process(
  COMMAND "${REPORT}" cache "${OUT_DIR}/cache_ok.json"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "cache view on a valid dump: expected exit 0, got ${rc}\n${out}\n${err}")
endif()
foreach(needle "hits" "75.0%" "aaaa-bbbb" "cccc-dddd")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR
      "cache view output is missing '${needle}':\n${out}")
  endif()
endforeach()
