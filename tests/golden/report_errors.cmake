# Asserts hswsim-report fails loudly (exit code exactly 1, with a message
# naming the problem) on the three broken-input classes: a missing file,
# malformed JSON, and a report with an unrecognized schema version.  Exit
# code 2 is reserved for usage errors, so each case checks for 1 precisely.
#
# Usage: cmake -DREPORT=<hswsim-report-binary> -DOUT_DIR=<dir>
#              -P report_errors.cmake

foreach(var REPORT OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "report_errors.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

function(expect_rc1 label expect_msg)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "${label}: expected exit code 1, got ${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  if(NOT err MATCHES "${expect_msg}")
    message(FATAL_ERROR
      "${label}: stderr does not explain the failure (wanted it to match "
      "'${expect_msg}'):\n${err}")
  endif()
endfunction()

# 1. Missing file.
expect_rc1("missing file" "cannot read"
  "${REPORT}" show "${OUT_DIR}/does_not_exist.json")

# 2. Malformed JSON (truncated mid-object).
file(WRITE "${OUT_DIR}/malformed.json" "{\n  \"hswsim_metrics_version\": 1,\n  \"manifest\": {\"tool\"")
expect_rc1("malformed JSON" "not a valid report"
  "${REPORT}" show "${OUT_DIR}/malformed.json")

# 3. Valid JSON, unknown schema version.
file(WRITE "${OUT_DIR}/future.json" "{\n  \"hswsim_metrics_version\": 999,\n  \"manifest\": {\"tool\": \"test\"}\n}\n")
expect_rc1("unknown version" "unknown report version"
  "${REPORT}" show "${OUT_DIR}/future.json")

# The same three classes through the diff entry point (good file first).
file(WRITE "${OUT_DIR}/future2.json" "{\n  \"hswsim_linestats_version\": 999\n}\n")
expect_rc1("diff with unknown version" "unknown report version"
  "${REPORT}" diff "${OUT_DIR}/future.json" "${OUT_DIR}/future2.json")
