// Unit tests for the span-tree builder, fold/attribution arithmetic, the
// (stream, seq) merge, and the exporters.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/sink.h"
#include "trace/span.h"
#include "trace/tracer.h"

namespace hsw::trace {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(Fold, SerialLeavesAddLeftAssociated) {
  Tracer t;
  t.begin_access('R', 0, 42);
  t.leaf(Component::kCore, "l1", 1.3);
  t.leaf(Component::kCbo, "cbo", 2.7);
  t.leaf(Component::kRing, "ring", 0.9);
  t.end_access((1.3 + 2.7) + 0.9, "L3");
  const TraceRecord* r = t.last_record();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(fold(0.0, r->spans), (1.3 + 2.7) + 0.9);
  EXPECT_TRUE(recomposes_exactly(*r));
}

TEST(Fold, GroupChildrenMustReproduceItsCost) {
  Tracer t;
  t.begin_access('R', 0, 1);
  t.open_group(Component::kCbo, "peer_ca_handling");
  t.leaf(Component::kCbo, "lookup", 2.0);
  t.leaf(Component::kCore, "extract", 3.5);
  t.close_group(2.0 + 3.5);
  t.end_access(0.0 + (2.0 + 3.5), "L3_other_node");
  ASSERT_NE(t.last_record(), nullptr);
  EXPECT_TRUE(recomposes_exactly(*t.last_record()));

  // A group whose children do NOT sum to its cost is caught.
  Tracer bad;
  bad.begin_access('R', 0, 2);
  bad.open_group(Component::kCbo, "broken");
  bad.leaf(Component::kCbo, "lookup", 2.0);
  bad.close_group(5.0);  // children fold to 2.0, not 5.0
  bad.end_access(5.0, "L3");
  ASSERT_NE(bad.last_record(), nullptr);
  EXPECT_FALSE(recomposes_exactly(*bad.last_record()));
}

TEST(Fold, ParallelJoinIsMaxOverGatingLegs) {
  Tracer t;
  t.begin_access('R', 3, 7);
  t.leaf(Component::kCbo, "prefix", 10.0);
  t.open_parallel("race");
  t.open_leg("snoop");
  t.leaf(Component::kRing, "out", 4.0);
  t.leaf(Component::kCoreSnoop, "probe", 9.0);
  t.close_leg();
  t.open_leg("memory");
  t.leaf(Component::kDram, "dram", 6.0);
  t.close_leg();
  t.close_parallel(Tracer::Join::kAll);
  t.end_access(10.0 + std::max(4.0 + 9.0, 6.0), "LocalDram");
  ASSERT_NE(t.last_record(), nullptr);
  // Fork at 10, legs end at 23 and 16, join = 23.
  EXPECT_EQ(fold(0.0, t.last_record()->spans), 23.0);
  EXPECT_TRUE(recomposes_exactly(*t.last_record()));
}

TEST(Fold, WinnerJoinIgnoresNonGatingLegs) {
  Tracer t;
  t.begin_access('R', 0, 9);
  t.open_parallel("race");
  t.open_leg("memory");
  t.leaf(Component::kDram, "dram", 50.0);
  t.close_leg();
  t.open_leg("forward");
  t.leaf(Component::kQpi, "qpi", 20.0);
  t.close_leg();
  // kWinner: only the most recently closed leg (forward) gates the join.
  t.close_parallel(Tracer::Join::kWinner);
  t.end_access(20.0, "L3_other_node");
  ASSERT_NE(t.last_record(), nullptr);
  EXPECT_EQ(fold(0.0, t.last_record()->spans), 20.0);
  EXPECT_TRUE(recomposes_exactly(*t.last_record()));
  // The losing leg is retained for visibility but marked non-gating.
  const Span& par = t.last_record()->spans.front();
  ASSERT_EQ(par.children.size(), 2u);
  EXPECT_FALSE(par.children[0].gating);
  EXPECT_TRUE(par.children[1].gating);
}

TEST(Fold, NoneJoinIsAnAside) {
  Tracer t;
  t.begin_access('R', 0, 9);
  t.leaf(Component::kHa, "ha", 5.0);
  t.open_parallel("aside");
  t.open_leg("snoop");
  t.leaf(Component::kRing, "out", 100.0);
  t.close_leg();
  t.close_parallel(Tracer::Join::kNone);
  t.leaf(Component::kDram, "dram", 3.0);
  t.end_access(5.0 + 3.0, "LocalDram");
  ASSERT_NE(t.last_record(), nullptr);
  EXPECT_EQ(fold(0.0, t.last_record()->spans), 8.0);
  EXPECT_TRUE(recomposes_exactly(*t.last_record()));
}

TEST(Attribution, BucketsSumOverCriticalPathOnly) {
  Tracer t;
  t.begin_access('R', 0, 1);
  t.leaf(Component::kCbo, "cbo", 2.0);
  t.open_parallel("race");
  t.open_leg("loser");
  t.leaf(Component::kQpi, "qpi", 1.0);
  t.close_leg();
  t.open_leg("winner");
  t.leaf(Component::kDram, "dram", 7.0);
  t.close_leg();
  t.close_parallel(Tracer::Join::kAll);
  const AccessAttribution* a = t.end_access(2.0 + 7.0, "LocalDram");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->total, 9.0);
  EXPECT_EQ(a->component(Component::kCbo), 2.0);
  EXPECT_EQ(a->component(Component::kDram), 7.0);
  // The losing QPI leg is off the critical path: not attributed.
  EXPECT_EQ(a->component(Component::kQpi), 0.0);
}

TEST(Tracer, EmissionsOutsideAnAccessAreNoOps) {
  Tracer t;
  t.leaf(Component::kDram, "stray", 5.0);
  t.open_group(Component::kCbo, "stray");
  t.close_group(1.0);
  EXPECT_EQ(t.records().size(), 0u);
  t.begin_access('W', 1, 2);
  t.leaf(Component::kCore, "l1", 1.0);
  t.end_access(1.0, "L1");
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records().front().spans.size(), 1u);
}

TEST(Tracer, AttributionModeRetainsNoRecords) {
  Tracer t(Tracer::Mode::kAttribution);
  t.begin_access('R', 0, 1);
  t.leaf(Component::kDram, "dram", 4.0);
  const AccessAttribution* a = t.end_access(4.0, "LocalDram");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->total, 4.0);
  EXPECT_EQ(t.records().size(), 0u);
}

TEST(Tracer, BoundedBufferDropsOldestDeterministically) {
  Tracer t(Tracer::Mode::kFull, 0, 4);
  for (int i = 0; i < 10; ++i) {
    t.begin_access('R', 0, static_cast<std::uint64_t>(i));
    t.leaf(Component::kCore, "l1", 1.0);
    t.end_access(1.0, "L1");
  }
  EXPECT_EQ(t.records().size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // The survivors are the newest records, in sequence order.
  EXPECT_EQ(t.records().front().seq, 6u);
  EXPECT_EQ(t.records().back().seq, 9u);
}

TEST(Sink, MergeIsStableByStreamAndSeq) {
  TraceSink sink;
  // Absorb out of order (stream 2 before stream 1), as parallel workers do.
  Tracer t2(Tracer::Mode::kFull, 2);
  for (int i = 0; i < 3; ++i) {
    t2.begin_access('R', 0, 20 + static_cast<std::uint64_t>(i));
    t2.leaf(Component::kCore, "l1", 1.0);
    t2.end_access(1.0, "L1");
  }
  Tracer t1(Tracer::Mode::kFull, 1);
  for (int i = 0; i < 2; ++i) {
    t1.begin_access('R', 0, 10 + static_cast<std::uint64_t>(i));
    t1.leaf(Component::kCore, "l1", 1.0);
    t1.end_access(1.0, "L1");
  }
  sink.absorb(std::move(t2));
  sink.absorb(std::move(t1));
  const std::vector<TraceRecord> merged = sink.merged();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].stream, 1u);
  EXPECT_EQ(merged[0].seq, 0u);
  EXPECT_EQ(merged[1].stream, 1u);
  EXPECT_EQ(merged[1].seq, 1u);
  EXPECT_EQ(merged[2].stream, 2u);
  EXPECT_EQ(merged[4].line, 22u);
}

TEST(Sink, ExportersWriteNamedSpans) {
  TraceSink sink;
  Tracer t(Tracer::Mode::kFull, 7);
  t.begin_access('R', 5, 123);
  t.leaf(Component::kDirectory, "dir_lookup", 2.5);
  t.open_parallel("hitme_shortcut");
  t.open_leg("memory");
  t.leaf(Component::kDram, "dram_page_hit", 40.0);
  t.close_leg();
  t.close_parallel(Tracer::Join::kAll);
  t.end_access(2.5 + 40.0, "LocalDram");
  sink.absorb(std::move(t));

  const std::string json_path = temp_path("trace_test.json");
  const std::string csv_path = temp_path("trace_test.csv");
  ASSERT_TRUE(sink.write(json_path));
  ASSERT_TRUE(sink.write(csv_path));

  const std::string json = slurp(json_path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("dir_lookup"), std::string::npos);
  EXPECT_NE(json.find("dram_page_hit"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":7"), std::string::npos);

  const std::string csv = slurp(csv_path);
  EXPECT_NE(csv.find("stream,seq,op,core,line,source,total_ns"),
            std::string::npos);
  EXPECT_NE(csv.find("dir_lookup"), std::string::npos);
  EXPECT_NE(csv.find("directory"), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(Sink, ExportBytesIndependentOfAbsorbOrder) {
  auto make_tracer = [](std::uint32_t stream) {
    Tracer t(Tracer::Mode::kFull, stream);
    t.begin_access('R', 0, stream);
    t.leaf(Component::kRing, "ring", 1.5 * stream);
    t.end_access(1.5 * stream, "L3");
    return t;
  };
  TraceSink forward;
  forward.absorb(make_tracer(1));
  forward.absorb(make_tracer(2));
  forward.absorb(make_tracer(3));
  TraceSink reverse;
  reverse.absorb(make_tracer(3));
  reverse.absorb(make_tracer(1));
  reverse.absorb(make_tracer(2));
  const std::string a = temp_path("trace_fwd.json");
  const std::string b = temp_path("trace_rev.json");
  ASSERT_TRUE(forward.write(a));
  ASSERT_TRUE(reverse.write(b));
  EXPECT_EQ(slurp(a), slurp(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

}  // namespace
}  // namespace hsw::trace
