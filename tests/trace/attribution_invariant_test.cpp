// The exactness invariant behind latency attribution: for EVERY traced
// access, in EVERY protocol configuration, the span tree replays the
// engine's latency arithmetic bit for bit —
//
//   * fold(0, spans) == AccessResult.ns with exact double equality
//     (serial terms re-added left-associated, parallel joins re-max()-ed);
//   * every kGroup's children fold from zero to exactly its cost;
//   * AccessAttribution::total (the critical-path walk) equals ns exactly.
//
// Randomized operation soup over all four protocol configurations (source
// snoop, home snoop, COD, and the COD directory-without-HitME ablation),
// with flushes/evictions mixed in so accesses hit every engine path: L1/L2
// hits, clean and dirty L3 forwards, local/remote DRAM with all three page
// outcomes, directory hits and stale-directory broadcasts, HitME hits.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "machine/system.h"
#include "support/test_seed.h"
#include "trace/span.h"
#include "trace/tracer.h"
#include "util/rng.h"

namespace hsw {
namespace {

struct Scenario {
  const char* name;
  SnoopMode mode;
  bool das_ablation;  // directory on, HitME off (SystemConfig::feature_override)
  std::uint64_t seed;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  return std::string(info.param.name) + "_seed" +
         std::to_string(info.param.seed);
}

SystemConfig config_for(const Scenario& s) {
  SystemConfig config;
  config.snoop_mode = s.mode;
  if (s.das_ablation) {
    ProtocolFeatures features = ProtocolFeatures::for_mode(s.mode);
    features.directory = true;
    features.hitme = false;
    config.feature_override = features;
  }
  return config;
}

class AttributionInvariant : public ::testing::TestWithParam<Scenario> {};

TEST_P(AttributionInvariant, EveryAccessRecomposesExactly) {
  const Scenario scenario = GetParam();
  SCOPED_TRACE(hswtest::seed_note(scenario.seed));
  System sys(config_for(scenario));
  Xoshiro256 rng(hswtest::effective_seed(scenario.seed) ^ 0x5117ce);

  // Retain every record: capacity above the access count.
  trace::Tracer tracer(trace::Tracer::Mode::kFull, 0, 1u << 15);
  sys.set_tracer(&tracer);

  // Two small regions (home on the first and last node) so lines collide,
  // migrate, and exercise both the local and the QPI-crossing paths.
  const MemRegion region_a = sys.alloc_on_node(0, 64 * 96);
  const MemRegion region_b = sys.alloc_on_node(sys.node_count() - 1, 64 * 96);
  const int cores = sys.core_count();

  constexpr int kOps = 12000;
  int traced = 0;
  int flushes = 0;
  for (int step = 0; step < kOps; ++step) {
    const MemRegion& region = rng.bernoulli(0.5) ? region_a : region_b;
    const PhysAddr addr =
        region.addr_at(rng.bounded(region.line_count()) * kLineSize);
    const int core =
        static_cast<int>(rng.bounded(static_cast<std::uint64_t>(cores)));
    const double dice = rng.uniform();
    AccessResult access;
    if (dice < 0.48) {
      access = sys.read(core, addr);
    } else if (dice < 0.90) {
      access = sys.write(core, addr);
    } else if (dice < 0.95) {
      // Placement-style churn between accesses: pushes lines down the
      // hierarchy so later accesses take the memory/directory paths.
      // (Flushes are traced too, as op 'F' records.)
      sys.flush_line(addr);
      ++flushes;
      ASSERT_TRUE(trace::recomposes_exactly(*tracer.last_record()))
          << "flush recomposition failure at step " << step;
      continue;
    } else {
      sys.evict_core_caches(core);
      continue;
    }
    ++traced;

    ASSERT_NE(access.attribution, nullptr) << "step " << step;
    const trace::TraceRecord* record = tracer.last_record();
    ASSERT_NE(record, nullptr) << "step " << step;

    // The three exactness checks.  No tolerance: bit-for-bit equality.
    ASSERT_EQ(trace::fold(0.0, record->spans), access.ns)
        << "fold mismatch at step " << step << " (op " << record->op
        << ", source " << record->source << ")";
    ASSERT_TRUE(trace::recomposes_exactly(*record))
        << "group-consistency failure at step " << step << " (op "
        << record->op << ", source " << record->source << ")";
    ASSERT_EQ(access.attribution->total, access.ns)
        << "attribution total mismatch at step " << step << " (op "
        << record->op << ", source " << record->source << ")";
  }
  sys.set_tracer(nullptr);
  // Sanity: the soup actually traced a large sample.
  EXPECT_GT(traced, 10000);
  EXPECT_EQ(tracer.records().size(),
            static_cast<std::size_t>(traced + flushes));
  EXPECT_EQ(tracer.dropped(), 0u);
}

// The per-flow latencies the benches report must be reproduced by the
// attribution machinery end to end: flush-heavy single-line ping-pong that
// leans on the dirty-forward and writeback paths.
TEST_P(AttributionInvariant, DirtyPingPongRecomposesExactly) {
  const Scenario scenario = GetParam();
  SCOPED_TRACE(hswtest::seed_note(scenario.seed));
  System sys(config_for(scenario));
  trace::Tracer tracer(trace::Tracer::Mode::kFull, 0, 1024);
  sys.set_tracer(&tracer);

  const MemRegion region = sys.alloc_on_node(0, 64 * 4);
  const PhysAddr addr = region.addr_at(0);
  const int far_core = sys.core_count() - 1;
  for (int round = 0; round < 64; ++round) {
    for (const int core : {0, far_core}) {
      const AccessResult w = sys.write(core, addr);
      ASSERT_NE(w.attribution, nullptr);
      ASSERT_EQ(w.attribution->total, w.ns) << "round " << round;
      ASSERT_TRUE(trace::recomposes_exactly(*tracer.last_record()));
      const AccessResult r = sys.read(core == 0 ? far_core : 0, addr);
      ASSERT_EQ(r.attribution->total, r.ns) << "round " << round;
      ASSERT_TRUE(trace::recomposes_exactly(*tracer.last_record()));
    }
    if (round % 8 == 0) sys.flush_line(addr);
  }
  sys.set_tracer(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, AttributionInvariant,
    ::testing::Values(
        Scenario{"source", SnoopMode::kSourceSnoop, false, 1},
        Scenario{"source", SnoopMode::kSourceSnoop, false, 2},
        Scenario{"home", SnoopMode::kHomeSnoop, false, 1},
        Scenario{"home", SnoopMode::kHomeSnoop, false, 2},
        Scenario{"cod", SnoopMode::kCod, false, 1},
        Scenario{"cod", SnoopMode::kCod, false, 2},
        Scenario{"cod_das", SnoopMode::kCod, true, 1},
        Scenario{"cod_das", SnoopMode::kCod, true, 2}),
    scenario_name);

}  // namespace
}  // namespace hsw
