#include "topo/topology.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

TopologyConfig twelve_core(SnoopMode mode, int sockets = 2) {
  return TopologyConfig{DieSku::kTwelveCore, sockets, mode};
}

TEST(Die, SkuProperties) {
  EXPECT_EQ(cores_per_die(DieSku::kEightCore), 8);
  EXPECT_EQ(cores_per_die(DieSku::kTwelveCore), 12);
  EXPECT_EQ(cores_per_die(DieSku::kEighteenCore), 18);
  EXPECT_EQ(imcs_per_die(DieSku::kEightCore), 1);
  EXPECT_EQ(imcs_per_die(DieSku::kTwelveCore), 2);
}

TEST(Die, TwelveCoreRingSplit) {
  Die die(DieSku::kTwelveCore);
  // Paper Fig. 1: cores 0-7 on ring 0, cores 8-11 on ring 1.
  for (int c = 0; c < 8; ++c) EXPECT_EQ(die.ring_of_core(c), 0) << c;
  for (int c = 8; c < 12; ++c) EXPECT_EQ(die.ring_of_core(c), 1) << c;
  EXPECT_EQ(die.imc_stop(0).ring, 0);
  EXPECT_EQ(die.imc_stop(1).ring, 1);
  EXPECT_EQ(die.qpi_stop().ring, 0);
}

TEST(Die, CodClusterSplitDoesNotMatchRingSplit) {
  Die die(DieSku::kTwelveCore);
  // COD clusters are 0-5 / 6-11: cluster 1 spans both rings (the source of
  // the paper's Table III asymmetry).
  EXPECT_EQ(die.cod_cluster_cores(0), (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(die.cod_cluster_cores(1), (std::vector<int>{6, 7, 8, 9, 10, 11}));
  EXPECT_EQ(die.ring_of_core(6), 0);
  EXPECT_EQ(die.ring_of_core(8), 1);
}

TEST(Die, EightCoreCannotCod) {
  Die die(DieSku::kEightCore);
  EXPECT_FALSE(die.supports_cod());
}

TEST(Topology, NonCodHasOneNodePerSocket) {
  SystemTopology topo(twelve_core(SnoopMode::kSourceSnoop));
  EXPECT_EQ(topo.node_count(), 2);
  EXPECT_EQ(topo.core_count(), 24);
  EXPECT_EQ(topo.node(0).cores.size(), 12u);
  EXPECT_EQ(topo.node(0).imcs.size(), 2u);
  EXPECT_EQ(topo.node_of_core(0), 0);
  EXPECT_EQ(topo.node_of_core(12), 1);
}

TEST(Topology, CodSplitsEachSocket) {
  SystemTopology topo(twelve_core(SnoopMode::kCod));
  EXPECT_EQ(topo.node_count(), 4);
  // Paper numbering: node0/1 = socket 0 clusters, node2/3 = socket 1.
  EXPECT_EQ(topo.node(0).socket, 0);
  EXPECT_EQ(topo.node(1).socket, 0);
  EXPECT_EQ(topo.node(2).socket, 1);
  EXPECT_EQ(topo.node(3).socket, 1);
  EXPECT_EQ(topo.node(1).cluster, 1);
  EXPECT_EQ(topo.node(0).cores, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(topo.node(1).cores, (std::vector<int>{6, 7, 8, 9, 10, 11}));
  EXPECT_EQ(topo.node(1).imcs, (std::vector<int>{1}));
  EXPECT_EQ(topo.node_of_core(7), 1);
  EXPECT_EQ(topo.node_of_core(14), 2);
}

TEST(Topology, CodRequiresTwoImcs) {
  EXPECT_THROW(SystemTopology(TopologyConfig{DieSku::kEightCore, 2,
                                             SnoopMode::kCod}),
               std::invalid_argument);
}

TEST(Topology, InternodeHopsMatchPaperFig6Taxonomy) {
  SystemTopology topo(twelve_core(SnoopMode::kCod));
  EXPECT_EQ(topo.internode_hops(0, 0), 0);
  EXPECT_EQ(topo.internode_hops(0, 1), 1);  // on-chip
  EXPECT_EQ(topo.internode_hops(0, 2), 1);  // 1 hop QPI
  EXPECT_EQ(topo.internode_hops(0, 3), 2);  // QPI + cluster crossing
  EXPECT_EQ(topo.internode_hops(1, 2), 2);
  EXPECT_EQ(topo.internode_hops(1, 3), 3);  // worst case in the paper
  EXPECT_EQ(topo.internode_hops(3, 1), 3);
}

TEST(Topology, CrossesQpi) {
  SystemTopology topo(twelve_core(SnoopMode::kCod));
  EXPECT_FALSE(topo.crosses_qpi(0, 1));
  EXPECT_TRUE(topo.crosses_qpi(0, 2));
  EXPECT_TRUE(topo.crosses_qpi(1, 3));
}

TEST(Topology, MeanCaDistanceOrderingDrivesTableIII) {
  // The per-core L3 latency differences in COD mode follow the mean ring
  // distance from a core to its node's six CA slices: the second node's
  // ring-0 cores (6, 7) are farthest from their slices.
  SystemTopology topo(twelve_core(SnoopMode::kCod));
  auto group_mean = [&](std::initializer_list<int> cores) {
    double total = 0.0;
    for (int c : cores) total += topo.mean_core_to_ca_hops(c);
    return total / static_cast<double>(cores.size());
  };
  const double first_node = group_mean({0, 1, 2, 3, 4, 5});
  const double second_ring0 = group_mean({6, 7});
  const double second_ring1 = group_mean({8, 9, 10, 11});
  EXPECT_LT(first_node, second_ring0);
  EXPECT_LT(second_ring1, second_ring0);
}

TEST(Topology, NonCodMeanCaDistanceExceedsCod) {
  SystemTopology non_cod(twelve_core(SnoopMode::kSourceSnoop));
  SystemTopology cod(twelve_core(SnoopMode::kCod));
  // Interleaving over all 12 slices reaches farther than over 6 local ones.
  EXPECT_GT(non_cod.mean_core_to_ca_hops(0), cod.mean_core_to_ca_hops(0));
}

TEST(Topology, SingleSocketSupported) {
  SystemTopology topo(twelve_core(SnoopMode::kSourceSnoop, 1));
  EXPECT_EQ(topo.node_count(), 1);
  EXPECT_EQ(topo.core_count(), 12);
}

TEST(Topology, RejectsBadSocketCounts) {
  EXPECT_THROW(SystemTopology(twelve_core(SnoopMode::kSourceSnoop, 0)),
               std::invalid_argument);
  EXPECT_THROW(SystemTopology(twelve_core(SnoopMode::kSourceSnoop, 3)),
               std::invalid_argument);
}

TEST(Topology, GlobalLocalCoreRoundTrip) {
  SystemTopology topo(twelve_core(SnoopMode::kSourceSnoop));
  for (int c = 0; c < topo.core_count(); ++c) {
    EXPECT_EQ(topo.global_core(topo.socket_of_core(c), topo.local_core(c)), c);
  }
}

}  // namespace
}  // namespace hsw
