#include "topo/ring.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

TEST(Ring, DistanceTakesShorterDirection) {
  Ring ring(11);
  EXPECT_EQ(ring.distance(0, 0), 0);
  EXPECT_EQ(ring.distance(0, 1), 1);
  EXPECT_EQ(ring.distance(0, 5), 5);
  EXPECT_EQ(ring.distance(0, 6), 5);   // around the back
  EXPECT_EQ(ring.distance(0, 10), 1);  // neighbour the other way
  EXPECT_EQ(ring.distance(3, 9), 5);
}

TEST(Ring, DistanceIsSymmetric) {
  Ring ring(7);
  for (int a = 0; a < 7; ++a) {
    for (int b = 0; b < 7; ++b) {
      EXPECT_EQ(ring.distance(a, b), ring.distance(b, a));
    }
  }
}

TEST(Ring, MeanDistance) {
  Ring ring(8);
  const int targets[] = {0, 2, 4};
  EXPECT_DOUBLE_EQ(ring.mean_distance(0, targets), (0 + 2 + 4) / 3.0);
  EXPECT_DOUBLE_EQ(ring.mean_distance(0, std::span<const int>{}), 0.0);
}

TEST(RingFabric, SameRingUsesRingDistance) {
  RingFabric fabric({Ring(11), Ring(5)},
                    {RingBridge{{0, 0}, {1, 0}}, RingBridge{{0, 7}, {1, 3}}},
                    2.0);
  EXPECT_DOUBLE_EQ(fabric.distance({0, 2}, {0, 6}), 4.0);
  EXPECT_DOUBLE_EQ(fabric.distance({1, 1}, {1, 3}), 2.0);
}

TEST(RingFabric, CrossRingPicksBestBridge) {
  RingFabric fabric({Ring(11), Ring(5)},
                    {RingBridge{{0, 0}, {1, 0}}, RingBridge{{0, 7}, {1, 3}}},
                    2.0);
  // From (0,0) to (1,0): bridge 0 directly: 0 + 2 + 0.
  EXPECT_DOUBLE_EQ(fabric.distance({0, 0}, {1, 0}), 2.0);
  // From (0,6) to (1,3): bridge 1: 1 + 2 + 0 = 3 (bridge 0 would be 5+2+2).
  EXPECT_DOUBLE_EQ(fabric.distance({0, 6}, {1, 3}), 3.0);
}

TEST(RingFabric, CrossRingSymmetry) {
  RingFabric fabric({Ring(11), Ring(5)},
                    {RingBridge{{0, 0}, {1, 0}}, RingBridge{{0, 7}, {1, 3}}},
                    2.0);
  for (int a = 0; a < 11; ++a) {
    for (int b = 0; b < 5; ++b) {
      EXPECT_DOUBLE_EQ(fabric.distance({0, a}, {1, b}),
                       fabric.distance({1, b}, {0, a}));
    }
  }
}

TEST(RingFabric, CrossesBridge) {
  RingFabric fabric({Ring(4), Ring(4)}, {RingBridge{{0, 0}, {1, 0}}}, 1.0);
  EXPECT_FALSE(fabric.crosses_bridge({0, 1}, {0, 2}));
  EXPECT_TRUE(fabric.crosses_bridge({0, 1}, {1, 2}));
}

}  // namespace
}  // namespace hsw
