#include "bw/solver.h"

#include <gtest/gtest.h>

#include <numeric>

namespace hsw::bw {
namespace {

Flow flow(double demand, std::initializer_list<Flow::Use> uses) {
  Flow f;
  f.demand = demand;
  f.uses = uses;
  return f;
}

TEST(Solver, UnconstrainedFlowsReachDemand) {
  const auto rates = max_min_rates({flow(10.0, {}), flow(5.0, {})}, {});
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(Solver, SingleResourceSharedEqually) {
  const auto rates = max_min_rates(
      {flow(100.0, {{0, 1.0}}), flow(100.0, {{0, 1.0}})}, {30.0});
  EXPECT_DOUBLE_EQ(rates[0], 15.0);
  EXPECT_DOUBLE_EQ(rates[1], 15.0);
}

TEST(Solver, SmallDemandReleasesCapacityToOthers) {
  // Max-min fairness: the 5-unit flow is satisfied; the rest is split.
  const auto rates = max_min_rates(
      {flow(5.0, {{0, 1.0}}), flow(100.0, {{0, 1.0}}), flow(100.0, {{0, 1.0}})},
      {30.0});
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 12.5);
  EXPECT_DOUBLE_EQ(rates[2], 12.5);
}

TEST(Solver, WeightsScaleConsumption) {
  // A write stream consuming 2x the resource per unit saturates it earlier.
  const auto rates =
      max_min_rates({flow(100.0, {{0, 2.0}})}, {30.0});
  EXPECT_DOUBLE_EQ(rates[0], 15.0);
}

TEST(Solver, BottleneckOnlyThrottlesItsFlows) {
  // Flow 0 uses resource 0 (tight); flow 1 uses resource 1 (loose).
  const auto rates = max_min_rates(
      {flow(100.0, {{0, 1.0}}), flow(100.0, {{1, 1.0}})}, {10.0, 50.0});
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(Solver, MultiResourcePathTakesTightest) {
  const auto rates = max_min_rates(
      {flow(100.0, {{0, 1.0}, {1, 1.0}})}, {40.0, 15.0});
  EXPECT_DOUBLE_EQ(rates[0], 15.0);
}

TEST(Solver, CapacityConservation) {
  // Never allocate more than capacity, whatever the topology.
  std::vector<Flow> flows;
  for (int i = 0; i < 8; ++i) {
    flows.push_back(flow(7.0 + i, {{0, 1.0}, {1 + (i % 2), 1.0}}));
  }
  const std::vector<double> caps = {40.0, 25.0, 18.0};
  const auto rates = max_min_rates(flows, caps);
  std::vector<double> used(caps.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_LE(rates[f], flows[f].demand + 1e-9);
    for (const Flow::Use& use : flows[f].uses) {
      used[static_cast<std::size_t>(use.resource)] += rates[f] * use.weight;
    }
  }
  for (std::size_t r = 0; r < caps.size(); ++r) {
    EXPECT_LE(used[r], caps[r] + 1e-6) << "resource " << r;
  }
}

TEST(Solver, SaturatingShapeLikeTableVII) {
  // N identical local-memory streams against one 62.8 GB/s DRAM resource:
  // linear ramp at 11.2 GB/s per core, flat at the DRAM limit afterwards —
  // the shape of Table VII.
  for (int n = 1; n <= 12; ++n) {
    std::vector<Flow> flows(static_cast<std::size_t>(n),
                            flow(11.2, {{0, 1.0}}));
    const auto rates = max_min_rates(flows, {62.8});
    const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
    if (n <= 5) {
      EXPECT_NEAR(total, 11.2 * n, 1e-9);
    } else {
      EXPECT_NEAR(total, 62.8, 1e-9);
    }
  }
}

TEST(Solver, ZeroDemandFlows) {
  const auto rates = max_min_rates({flow(0.0, {{0, 1.0}}), flow(9.0, {{0, 1.0}})},
                                   {30.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 9.0);
}

TEST(Solver, EmptyInputs) {
  EXPECT_TRUE(max_min_rates({}, {10.0}).empty());
  const auto rates = max_min_rates({flow(5.0, {})}, {});
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
}

}  // namespace
}  // namespace hsw::bw
