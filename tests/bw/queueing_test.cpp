#include "bw/queueing.h"

#include <gtest/gtest.h>

#include <numeric>

#include "bw/solver.h"

namespace hsw::bw {
namespace {

double total(const std::vector<double>& rates) {
  return std::accumulate(rates.begin(), rates.end(), 0.0);
}

QueueFlow closed_loop(double demand_gbps, double latency_ns,
                      std::initializer_list<QueueFlow::Visit> visits) {
  QueueFlow flow;
  flow.mlp = demand_gbps * latency_ns / 64.0;
  flow.base_latency_ns = latency_ns;
  flow.visits = visits;
  return flow;
}

TEST(Queueing, SingleFlowReachesItsDemand) {
  QueueingSimulator sim({1000.0});  // effectively uncontended
  const auto result = sim.run({closed_loop(10.0, 96.0, {{0, 1.0}})}, 1e6);
  EXPECT_NEAR(result.gbps[0], 10.0, 0.7);
}

TEST(Queueing, SaturatedResourceCapsThroughput) {
  std::vector<QueueFlow> flows(12, closed_loop(11.2, 96.4, {{0, 1.0}}));
  QueueingSimulator sim({62.8});
  const auto result = sim.run(flows, 1e6);
  EXPECT_NEAR(total(result.gbps), 62.8, 0.7);
  // Fair sharing: every flow within 10% of the mean.
  for (double r : result.gbps) {
    EXPECT_NEAR(r, 62.8 / 12.0, 0.55);
  }
}

TEST(Queueing, WeightsActAsProtocolOverhead) {
  // Weight 2.29 on a 38.4 GB/s link -> ~16.8 GB/s payload (source snoop).
  std::vector<QueueFlow> flows(6, closed_loop(8.4, 146.0, {{0, 2.29}}));
  QueueingSimulator sim({38.4});
  const auto result = sim.run(flows, 1e6);
  EXPECT_NEAR(total(result.gbps), 16.8, 0.5);
}

TEST(Queueing, AgreesWithFluidModelAcrossLoadLevels) {
  for (int n = 1; n <= 12; ++n) {
    std::vector<Flow> fluid_flows(
        static_cast<std::size_t>(n), Flow{11.2, {{0, 1.0}}});
    const double fluid = total(max_min_rates(fluid_flows, {62.8}));

    std::vector<QueueFlow> queue_flows(
        static_cast<std::size_t>(n), closed_loop(11.2, 96.4, {{0, 1.0}}));
    QueueingSimulator sim({62.8});
    const double des = total(sim.run(queue_flows, 1e6).gbps);
    EXPECT_NEAR(des, fluid, fluid * 0.05) << n << " flows";
  }
}

TEST(Queueing, TwoStagePathBottleneckedByTighterStage) {
  std::vector<QueueFlow> flows(8, closed_loop(12.0, 100.0, {{0, 1.0}, {1, 1.0}}));
  QueueingSimulator sim({200.0, 30.0});
  const auto result = sim.run(flows, 1e6);
  EXPECT_NEAR(total(result.gbps), 30.0, 0.5);
}

TEST(Queueing, ReportsRetiredLines) {
  QueueingSimulator sim({100.0});
  const auto result = sim.run({closed_loop(5.0, 80.0, {{0, 1.0}})}, 1e5);
  EXPECT_GT(result.lines_retired, 0u);
  EXPECT_DOUBLE_EQ(result.simulated_ns, 1e5);
}

}  // namespace
}  // namespace hsw::bw
