// Bandwidth-model tests against the paper's Table VI-VIII anchors.
#include "bw/model.h"

#include <gtest/gtest.h>

namespace hsw::bw {
namespace {

StreamSpec spec(int core, ServiceSource source, double latency, int home = 0,
                int source_node = 0) {
  StreamSpec s;
  s.core = core;
  s.source = source;
  s.latency_ns = latency;
  s.home_node = home;
  s.source_node = source_node;
  return s;
}

class ModelTest : public ::testing::Test {
 protected:
  System source_{SystemConfig::source_snoop()};
  System home_{SystemConfig::home_snoop()};
};

TEST_F(ModelTest, CacheWidthLimits) {
  BandwidthModel model(source_);
  StreamSpec l1 = spec(0, ServiceSource::kL1, 1.6);
  EXPECT_NEAR(model.single_stream(l1), 127.2, 0.1);
  l1.width = LoadWidth::kSse128;
  EXPECT_NEAR(model.single_stream(l1), 77.1, 0.1);
  StreamSpec l2 = spec(0, ServiceSource::kL2, 4.8);
  EXPECT_NEAR(model.single_stream(l2), 69.1, 0.1);
  l2.width = LoadWidth::kSse128;
  EXPECT_NEAR(model.single_stream(l2), 48.2, 0.1);
}

TEST_F(ModelTest, L3SingleStreamIsMlpLimited) {
  BandwidthModel model(source_);
  // 8.7 outstanding lines at 21.2 ns ~ 26.2 GB/s (paper Fig. 8).
  EXPECT_NEAR(model.single_stream(spec(0, ServiceSource::kL3, 21.2)), 26.2,
              1.0);
}

TEST_F(ModelTest, RemoteCacheStreamMatchesPaper) {
  BandwidthModel model(source_);
  // M forwarded from the remote L3: 9.1 GB/s at 86 ns.
  EXPECT_NEAR(
      model.single_stream(spec(0, ServiceSource::kRemoteFwd, 86.0, 1, 1)),
      9.1, 0.7);
  // E with a remote core snoop: 8.8 GB/s at 104 ns.
  EXPECT_NEAR(
      model.single_stream(spec(0, ServiceSource::kRemoteFwd, 104.0, 1, 1)),
      8.8, 0.7);
}

TEST_F(ModelTest, LocalMemorySingleStream) {
  BandwidthModel model(source_);
  EXPECT_NEAR(
      model.single_stream(spec(0, ServiceSource::kLocalDram, 96.4)), 10.3,
      1.1);
}

TEST_F(ModelTest, LocalMemoryAggregateSaturatesNear63) {
  BandwidthModel model(source_);
  std::vector<StreamSpec> streams;
  for (int c = 0; c < 12; ++c) {
    streams.push_back(spec(c, ServiceSource::kLocalDram, 96.4));
  }
  const auto rates = model.concurrent(streams);
  double total = 0.0;
  for (double r : rates) total += r;
  EXPECT_NEAR(total, 62.8, 1.0);  // paper: ~63 GB/s
}

TEST_F(ModelTest, QpiEfficiencyByMode) {
  // Source snoop: remote reads cap at ~16.8 GB/s; home snoop: ~30.6.
  auto remote_total = [&](System& sys, double latency) {
    BandwidthModel model(sys);
    std::vector<StreamSpec> streams;
    for (int c = 0; c < 12; ++c) {
      streams.push_back(spec(c, ServiceSource::kRemoteDram, latency, 1, 1));
    }
    double total = 0.0;
    for (double r : model.concurrent(streams)) total += r;
    return total;
  };
  EXPECT_NEAR(remote_total(source_, 146.0), 16.8, 0.5);
  EXPECT_NEAR(remote_total(home_, 146.0), 30.7, 0.7);
}

TEST_F(ModelTest, WriteStreamsAmplifyDramTraffic) {
  BandwidthModel model(source_);
  StreamSpec write = spec(0, ServiceSource::kLocalDram, 96.4);
  write.write = true;
  EXPECT_NEAR(model.single_stream(write), 7.7, 0.1);
  std::vector<StreamSpec> streams(12, write);
  for (int c = 0; c < 12; ++c) streams[static_cast<std::size_t>(c)].core = c;
  double total = 0.0;
  for (double r : model.concurrent(streams)) total += r;
  EXPECT_NEAR(total, 25.9, 0.8);  // paper: 25.8-26.5 GB/s
}

TEST(ModelCod, StaleDirectoryStreamsThrottleQpi) {
  System cod(SystemConfig::cluster_on_die());
  BandwidthModel model(cod);
  auto remote = [&](bool stale) {
    StreamSpec s = spec(0, ServiceSource::kRemoteDram, 141.0, 2, 2);
    s.stale_directory = stale;
    std::vector<StreamSpec> streams(6, s);
    for (int c = 0; c < 6; ++c) streams[static_cast<std::size_t>(c)].core = c;
    double total = 0.0;
    for (double r : model.concurrent(streams)) total += r;
    return total;
  };
  EXPECT_LT(remote(true), remote(false));
  EXPECT_NEAR(remote(true), 15.6, 1.0);  // Table VIII node0->node2
}

TEST(ModelCod, BridgeLimitsCrossClusterStreams) {
  System cod(SystemConfig::cluster_on_die());
  BandwidthModel model(cod);
  std::vector<StreamSpec> streams;
  for (int c = 0; c < 6; ++c) {
    streams.push_back(spec(c, ServiceSource::kRemoteDram, 96.0, 1, 1));
  }
  double total = 0.0;
  for (double r : model.concurrent(streams)) total += r;
  EXPECT_NEAR(total, 18.8, 0.5);  // Table VIII node0->node1
}

TEST(ModelCod, LocalNodeDramCap) {
  System cod(SystemConfig::cluster_on_die());
  BandwidthModel model(cod);
  std::vector<StreamSpec> streams;
  for (int c = 0; c < 6; ++c) {
    streams.push_back(spec(c, ServiceSource::kLocalDram, 89.6));
  }
  double total = 0.0;
  for (double r : model.concurrent(streams)) total += r;
  EXPECT_NEAR(total, 32.4, 0.6);  // Table VIII local: 32.5 GB/s
}

TEST_F(ModelTest, L3AggregateScalesAndSaturates) {
  BandwidthModel model(source_);
  auto total_for = [&](int cores) {
    std::vector<StreamSpec> streams;
    for (int c = 0; c < cores; ++c) {
      streams.push_back(spec(c, ServiceSource::kL3, 21.2));
    }
    double total = 0.0;
    for (double r : model.concurrent(streams)) total += r;
    return total;
  };
  EXPECT_NEAR(total_for(1), 26.2, 1.0);
  EXPECT_NEAR(total_for(12), 278.0, 25.0);  // paper: 278 GB/s
  EXPECT_GT(total_for(12), total_for(6));
}

}  // namespace
}  // namespace hsw::bw
