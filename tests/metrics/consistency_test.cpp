// Acceptance cross-check: the uncore metric counters must tell the same
// story as the engine's perf-style counters and the attribution rows for
// the paper's two signature COD effects — Table V's stale-directory
// broadcasts and Fig. 7's HitME short-circuit (the regimes
// bench/attribution_breakdown.cpp names "stale shared DRAM" and
// "migratory S").
#include <gtest/gtest.h>

#include <cstddef>

#include "core/latency.h"
#include "machine/system.h"
#include "metrics/registry.h"
#include "util/units.h"

namespace hsw {
namespace {

std::uint64_t mctr(const metrics::MetricsRegistry& reg, metrics::MCtr c) {
  return reg.counters()[static_cast<std::size_t>(c)];
}

std::uint64_t engine_ctr(const metrics::MetricsRegistry& reg, Ctr c) {
  return reg.engine_counters()[static_cast<std::size_t>(c)];
}

// Runs one COD latency measurement with a metrics registry attached and
// returns the registry (counters + captured engine delta, same scope).
metrics::MetricsRegistry measure_cod(const LatencyConfig& lc) {
  System sys(SystemConfig::cluster_on_die());
  metrics::MetricsRegistry registry(0, 0);
  LatencyConfig config = lc;
  config.instrumentation.metrics = &registry;
  const LatencyResult r = measure_latency(sys, config);
  EXPECT_GT(r.lines_measured, 0u);
  return registry;
}

TEST(MetricsConsistency, StaleSharedDramPaysDirectoryBroadcasts) {
  System probe(SystemConfig::cluster_on_die());
  const SystemTopology& topo = probe.topology();
  const int last = probe.node_count() - 1;

  // Table V regime: lines shared across nodes then silently evicted, set
  // larger than the HitME coverage — the in-memory directory still says
  // snoop-all, so every miss broadcasts and nobody answers.
  LatencyConfig lc;
  lc.reader_core = 0;
  lc.placement.state = Mesif::kShared;
  lc.placement.level = CacheLevel::kMemory;
  lc.placement.owner_core = topo.node(last).cores[1];
  lc.placement.memory_node = last;
  lc.placement.sharers = {topo.node(0).cores[2]};
  lc.buffer_bytes = mib(2);
  lc.max_measured_lines = 2048;

  const metrics::MetricsRegistry reg = measure_cod(lc);
  using MC = metrics::MCtr;
  const std::uint64_t stale = mctr(reg, MC::kHaStaleBroadcast);
  const std::uint64_t snoop_all = mctr(reg, MC::kHaSnoopAllBroadcast);
  EXPECT_GT(stale, 0u);
  // Every stale broadcast is a snoop-all broadcast that came up empty.
  EXPECT_LE(stale, snoop_all);
  // A broadcast fans out to at least one peer, visible to the engine too.
  EXPECT_GE(engine_ctr(reg, Ctr::kSnoopBroadcasts), snoop_all);
  // Directory lookups are exactly the engine's count (same event, two
  // vocabularies), and every broadcast followed a lookup.
  EXPECT_EQ(mctr(reg, MC::kHaDirectoryLookup),
            engine_ctr(reg, Ctr::kDirectoryLookups));
  EXPECT_LE(snoop_all, mctr(reg, MC::kHaDirectoryLookup));
}

TEST(MetricsConsistency, MigratorySharedHitsTheHitmeCache) {
  System probe(SystemConfig::cluster_on_die());
  const SystemTopology& topo = probe.topology();
  const int last = probe.node_count() - 1;
  const int fwd = last >= 2 ? 2 : 1;

  // Fig. 7 small-set regime: shared lines within the HitME coverage — the
  // home agent short-circuits to memory without waiting on snoops.
  LatencyConfig lc;
  lc.reader_core = 0;
  lc.placement.state = Mesif::kShared;
  lc.placement.level = CacheLevel::kL3;
  lc.placement.owner_core = topo.node(1).cores[1];
  lc.placement.memory_node = 1;
  lc.placement.sharers = {fwd == 1 ? topo.node(1).cores[2]
                                   : topo.node(fwd).cores[1]};
  lc.buffer_bytes = kib(128);
  lc.max_measured_lines = 2048;

  const metrics::MetricsRegistry reg = measure_cod(lc);
  using MC = metrics::MCtr;
  const std::uint64_t hitme_hit = mctr(reg, MC::kHaHitmeHit);
  EXPECT_GT(hitme_hit, 0u);
  // Same event in both vocabularies, and every hit bypassed the snoops.
  EXPECT_EQ(hitme_hit, engine_ctr(reg, Ctr::kHitmeHit));
  EXPECT_GE(mctr(reg, MC::kHaBypass), hitme_hit);
}

TEST(MetricsConsistency, ImcPageOutcomesSumToEngineDramReads) {
  System probe(SystemConfig::cluster_on_die());
  const int last = probe.node_count() - 1;

  LatencyConfig lc;
  lc.reader_core = 0;
  lc.placement.state = Mesif::kModified;
  lc.placement.level = CacheLevel::kMemory;
  lc.placement.owner_core = 0;
  lc.placement.memory_node = last;
  lc.buffer_bytes = mib(1);
  lc.max_measured_lines = 2048;

  const metrics::MetricsRegistry reg = measure_cod(lc);
  using MC = metrics::MCtr;
  const std::uint64_t pages = mctr(reg, MC::kImcPageHit) +
                              mctr(reg, MC::kImcPageEmpty) +
                              mctr(reg, MC::kImcPageConflict);
  EXPECT_GT(pages, 0u);
  // Every directed DRAM read resolves to exactly one row-buffer outcome.
  EXPECT_EQ(pages, engine_ctr(reg, Ctr::kDramReads));
  // SAD decoded every home request as remote (memory lives on `last`).
  EXPECT_GT(mctr(reg, MC::kSadRemoteHome), 0u);
  EXPECT_EQ(mctr(reg, MC::kSadLocalHome), 0u);
}

}  // namespace
}  // namespace hsw
