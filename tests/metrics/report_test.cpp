// Run-report round trip: write_report's JSON must parse back (via the
// flat parser the differ uses) with every schema section present, exact
// counter values, and stable float formatting; unwritable paths must fail
// loudly instead of silently dropping the report.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "coh/timing.h"
#include "metrics/report.h"

namespace hsw::metrics {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "hswsim_report_test.json";
  void TearDown() override { std::remove(path_.c_str()); }
};

MergedMetrics sample_metrics() {
  MetricsHub hub;
  MetricsRegistry reg(3, 2);
  reg.bump(MCtr::kHaHitmeHit, 17);
  reg.bump(MCtr::kHaStaleBroadcast, 5);
  reg.meter(MMeter::kRingHops, 12.5);
  reg.bump_family(MFamily::kQpiLinkBytes, 0, 72);
  reg.bump_family(MFamily::kQpiLinkBytes, 1, 144);
  reg.observe(MHist::kAccessNs, 96.0);
  for (int i = 0; i < 4; ++i) {
    if (reg.access_tick()) {
      reg.set_gauge(MGauge::kHitmeEntries, 2 + i);
      reg.take_sample();
    }
  }
  hub.absorb(std::move(reg));
  return hub.merged();
}

ReportManifest sample_manifest() {
  ReportManifest m;
  m.tool = "report_test";
  m.config = "unit \"quoted\" summary";
  m.protocol = "moesi";
  m.timing_hash = timing_fingerprint(TimingParams::haswell_ep(), m.protocol);
  m.seed = 9;
  m.jobs = 4;
  m.quick = true;
  m.git = "unknown";
  return m;
}

TEST_F(ReportTest, WriteThenParseRoundTrips) {
  ASSERT_TRUE(write_report(path_, sample_manifest(), sample_metrics()));

  const auto flat = parse_report_flat(path_);
  ASSERT_TRUE(flat.has_value());
  const auto& map = *flat;

  EXPECT_EQ(map.at("hswsim_metrics_version"), "1");
  EXPECT_EQ(map.at("manifest.tool"), "report_test");
  EXPECT_EQ(map.at("manifest.config"), "unit \"quoted\" summary");
  EXPECT_EQ(map.at("manifest.seed"), "9");
  EXPECT_EQ(map.at("manifest.jobs"), "4");
  EXPECT_EQ(map.at("manifest.quick"), "true");
  EXPECT_EQ(map.at("manifest.protocol"), "moesi");
  ASSERT_EQ(map.at("manifest.timing_hash").size(), 16u);

  EXPECT_EQ(map.at("counters.HA_HITME_HIT"), "17");
  EXPECT_EQ(map.at("counters.HA_DIRECTORY_STALE_BCAST"), "5");
  // Schema is complete even for untouched events.
  EXPECT_EQ(map.at("counters.IMC_PAGE_CONFLICT"), "0");
  EXPECT_EQ(map.at("engine_counters.uncore_ha.hitme_hit"), "0");

  // Fixed %.6f float formatting.
  EXPECT_EQ(map.at("meters.RING_HOPS"), "12.500000");
  EXPECT_EQ(map.at("families.QPI_LINK_BYTES.0"), "72");
  EXPECT_EQ(map.at("families.QPI_LINK_BYTES.1"), "144");
  EXPECT_EQ(map.at("histograms.ACCESS_LATENCY_NS.total"), "1");

  // The sampler fired at accesses 2 and 4 (interval 2, 4 ticks).
  EXPECT_EQ(map.at("samples.0.stream"), "3");
  EXPECT_EQ(map.at("samples.0.access"), "2");
  EXPECT_EQ(map.at("samples.1.seq"), "1");
  const auto gauge_index =
      std::to_string(static_cast<std::size_t>(MGauge::kHitmeEntries));
  EXPECT_EQ(map.at("samples.1.g." + gauge_index), "5");
}

TEST_F(ReportTest, IdenticalInputsProduceIdenticalBytes) {
  const std::string other = ::testing::TempDir() + "hswsim_report_test2.json";
  ASSERT_TRUE(write_report(path_, sample_manifest(), sample_metrics()));
  ASSERT_TRUE(write_report(other, sample_manifest(), sample_metrics()));

  const auto slurp = [](const std::string& p) {
    std::FILE* f = std::fopen(p.c_str(), "rb");
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
    return text;
  };
  EXPECT_EQ(slurp(path_), slurp(other));
  std::remove(other.c_str());
}

TEST_F(ReportTest, UnwritablePathFailsLoudly) {
  EXPECT_FALSE(write_report("/nonexistent_dir/report.json", sample_manifest(),
                            sample_metrics()));
}

TEST_F(ReportTest, ParseRejectsNonReports) {
  EXPECT_FALSE(parse_report_flat(path_ + ".missing").has_value());
  std::FILE* f = std::fopen(path_.c_str(), "w");
  std::fputs("{\"not_a_report\": 1}\n", f);
  std::fclose(f);
  EXPECT_FALSE(parse_report_flat(path_).has_value());
}

TEST_F(ReportTest, TimingFingerprintTracksConstants) {
  const TimingParams base = TimingParams::haswell_ep();
  TimingParams tweaked = base;
  tweaked.dram_page_hit += 0.1;
  EXPECT_EQ(timing_fingerprint(base), timing_fingerprint(base));
  EXPECT_NE(timing_fingerprint(base), timing_fingerprint(tweaked));
}

TEST_F(ReportTest, TimingFingerprintTracksProtocolTag) {
  // Same constants under different coherence protocols must not
  // fingerprint-match: the counters the reports carry are not comparable.
  const TimingParams base = TimingParams::haswell_ep();
  EXPECT_EQ(timing_fingerprint(base, "mesif"), timing_fingerprint(base, "mesif"));
  EXPECT_NE(timing_fingerprint(base, "mesif"), timing_fingerprint(base, "moesi"));
  EXPECT_NE(timing_fingerprint(base, "mesif"), timing_fingerprint(base));
}

}  // namespace
}  // namespace hsw::metrics
