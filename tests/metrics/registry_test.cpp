// MetricsRegistry / MetricsHub unit tests: hot-path semantics, family
// auto-sizing, sampling cadence, and — the property the jobs-determinism
// CTests rely on — absorb-order independence of the merged result.
#include <gtest/gtest.h>

#include <utility>

#include "metrics/hub.h"
#include "metrics/registry.h"

namespace hsw::metrics {
namespace {

TEST(MetricsRegistry, BumpsAccumulateAcrossEveryKind) {
  MetricsRegistry reg(7, 0);
  reg.bump(MCtr::kHaHitmeHit);
  reg.bump(MCtr::kHaHitmeHit, 4);
  reg.meter(MMeter::kRingHops, 2.5);
  reg.meter(MMeter::kRingHops, 1.5);
  reg.set_gauge(MGauge::kHitmeEntries, 42);
  reg.observe(MHist::kAccessNs, 100.0);
  reg.observe(MHist::kAccessNs, 250.0);

  EXPECT_EQ(reg.stream(), 7u);
  EXPECT_EQ(reg.counters()[static_cast<std::size_t>(MCtr::kHaHitmeHit)], 5u);
  EXPECT_DOUBLE_EQ(reg.meters()[static_cast<std::size_t>(MMeter::kRingHops)],
                   4.0);
  EXPECT_EQ(reg.gauges()[static_cast<std::size_t>(MGauge::kHitmeEntries)], 42);
  EXPECT_EQ(
      reg.histograms()[static_cast<std::size_t>(MHist::kAccessNs)].total(),
      2u);
}

TEST(MetricsRegistry, FamiliesAutoSizeAndPreSize) {
  MetricsRegistry reg(0, 0);
  // bump_family grows the vector on demand...
  reg.bump_family(MFamily::kQpiLinkBytes, 3, 72);
  const auto& bytes =
      reg.families()[static_cast<std::size_t>(MFamily::kQpiLinkBytes)];
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[3], 72u);
  EXPECT_EQ(bytes[0], 0u);

  // ...size_family pre-sizes from the topology but never truncates.
  reg.size_family(MFamily::kQpiLinkBytes, 6);
  EXPECT_EQ(bytes.size(), 6u);
  reg.size_family(MFamily::kQpiLinkBytes, 2);
  EXPECT_EQ(bytes.size(), 6u);
  EXPECT_EQ(bytes[3], 72u);
}

TEST(MetricsRegistry, SamplerFiresOnIntervalAndNeverForZero) {
  MetricsRegistry off(0, 0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(off.access_tick());
  off.take_final_sample();  // interval 0: must stay empty
  EXPECT_TRUE(off.samples().empty());

  MetricsRegistry on(0, 4);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (on.access_tick()) {
      on.set_gauge(MGauge::kHitmeEntries, fired);
      on.take_sample();
      ++fired;
    }
  }
  EXPECT_EQ(fired, 2);  // accesses 4 and 8
  ASSERT_EQ(on.samples().size(), 2u);
  EXPECT_EQ(on.samples()[0].access, 4u);
  EXPECT_EQ(on.samples()[1].access, 8u);
  EXPECT_EQ(on.samples()[1].seq, 1u);

  // The detach-time census appends the tail...
  on.take_final_sample();
  ASSERT_EQ(on.samples().size(), 3u);
  EXPECT_EQ(on.samples()[2].access, 10u);
  // ...but not twice when the run ended exactly on the interval.
  MetricsRegistry exact(0, 5);
  for (int i = 0; i < 5; ++i) {
    if (exact.access_tick()) exact.take_sample();
  }
  exact.take_final_sample();
  EXPECT_EQ(exact.samples().size(), 1u);
}

MetricsRegistry make_registry(std::uint32_t stream) {
  MetricsRegistry reg(stream, 2);
  for (std::uint32_t i = 0; i < 6; ++i) {
    reg.bump(MCtr::kImcPageHit, stream + 1);
    reg.meter(MMeter::kRingHops, 0.25 * static_cast<double>(stream + 1));
    reg.bump_family(MFamily::kRingStopCbo, stream % 3);
    reg.observe(MHist::kAccessNs, 50.0 * static_cast<double>(stream + 1));
    if (reg.access_tick()) {
      reg.set_gauge(MGauge::kDirectoryTracked,
                    static_cast<std::int64_t>(stream * 10 + i));
      reg.take_sample();
    }
  }
  return reg;
}

TEST(MetricsHub, MergeIsIndependentOfAbsorbOrder) {
  MetricsHub forward;
  MetricsHub reverse;
  for (std::uint32_t s = 0; s < 5; ++s) forward.absorb(make_registry(s));
  for (std::uint32_t s = 5; s-- > 0;) reverse.absorb(make_registry(s));

  const MergedMetrics a = forward.merged();
  const MergedMetrics b = reverse.merged();
  EXPECT_EQ(a.streams, 5u);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  // Double summation order is part of the determinism contract: the hub
  // folds registries in stream-id order, so the bit patterns must match.
  EXPECT_EQ(a.meters, b.meters);
  EXPECT_EQ(a.families, b.families);
  EXPECT_EQ(a.histograms[0].buckets(), b.histograms[0].buckets());

  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].stream, b.samples[i].stream);
    EXPECT_EQ(a.samples[i].seq, b.samples[i].seq);
    EXPECT_EQ(a.samples[i].gauges, b.samples[i].gauges);
    if (i > 0) {
      // Sorted by (stream, seq): the series is monotone in that key.
      const bool ordered =
          a.samples[i - 1].stream < a.samples[i].stream ||
          (a.samples[i - 1].stream == a.samples[i].stream &&
           a.samples[i - 1].seq < a.samples[i].seq);
      EXPECT_TRUE(ordered) << "sample " << i << " out of (stream, seq) order";
    }
  }
}

}  // namespace
}  // namespace hsw::metrics
