// MetricsSampler edge cases: runs that never tick, a sample interval that
// lands exactly on the run length (the final census must not duplicate the
// periodic one), and gauges that first change after sampling has already
// produced samples.
#include "metrics/sampler.h"

#include <gtest/gtest.h>

#include "metrics/registry.h"

namespace {

using hsw::metrics::MetricsRegistry;
using hsw::metrics::MetricsSample;
using hsw::metrics::MGauge;

TEST(MetricsSampler, ZeroAccessRunProducesNoSamples) {
  MetricsRegistry registry(/*stream=*/0, /*sample_interval=*/16);
  // A sweep point that never touched the system: the detach-time census
  // must not fabricate a sample for an idle registry.
  registry.take_final_sample();
  EXPECT_TRUE(registry.samples().empty());
}

TEST(MetricsSampler, IntervalEqualToRunLengthSamplesExactlyOnce) {
  constexpr std::uint64_t kInterval = 8;
  MetricsRegistry registry(/*stream=*/0, kInterval);
  for (std::uint64_t i = 0; i < kInterval; ++i) {
    if (registry.access_tick()) registry.take_sample();
  }
  ASSERT_EQ(registry.samples().size(), 1u);
  EXPECT_EQ(registry.samples()[0].access, kInterval);
  // The final census lands on the same access count as the periodic sample
  // that just fired; it must deduplicate, not append a twin.
  registry.take_final_sample();
  ASSERT_EQ(registry.samples().size(), 1u);
  EXPECT_EQ(registry.samples()[0].seq, 0u);
}

TEST(MetricsSampler, GaugeSetAfterSamplingStartedAppearsInLaterSamples) {
  constexpr std::uint64_t kInterval = 4;
  MetricsRegistry registry(/*stream=*/0, kInterval);
  // First window: the gauge still has its startup value.
  for (std::uint64_t i = 0; i < kInterval; ++i) {
    if (registry.access_tick()) registry.take_sample();
  }
  // The gauge first moves after the first census has already been taken.
  registry.set_gauge(MGauge::kL1OccModified, 42);
  for (std::uint64_t i = 0; i < kInterval; ++i) {
    if (registry.access_tick()) registry.take_sample();
  }
  ASSERT_EQ(registry.samples().size(), 2u);
  const auto g = static_cast<std::size_t>(MGauge::kL1OccModified);
  EXPECT_EQ(registry.samples()[0].gauges[g], 0);   // before the change
  EXPECT_EQ(registry.samples()[1].gauges[g], 42);  // after it
  EXPECT_EQ(registry.samples()[1].seq, 1u);
}

TEST(MetricsSampler, DisabledSamplingNeverTicks) {
  MetricsRegistry registry(/*stream=*/0, /*sample_interval=*/0);
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(registry.access_tick());
  registry.take_final_sample();
  EXPECT_TRUE(registry.samples().empty());
  EXPECT_EQ(registry.accesses(), 64u);
}

}  // namespace
