// Property-based coherence invariants: random operation sequences from
// random cores must never violate MESIF single-writer / inclusivity /
// directory-soundness invariants, in any protocol configuration.
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <vector>

#include "coh/engine.h"
#include "machine/system.h"
#include "support/test_seed.h"
#include "util/rng.h"

namespace hsw {
namespace {

enum class Variant { kStock, kDirectoryNoHitme, kNoCoreValid };

struct Scenario {
  const char* name;
  SnoopMode mode;
  std::uint64_t seed;
  Variant variant = Variant::kStock;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  return std::string(info.param.name) + "_seed" +
         std::to_string(info.param.seed);
}

class CoherenceInvariants : public ::testing::TestWithParam<Scenario> {
 protected:
  static SystemConfig config_for(SnoopMode mode,
                                 Variant variant = Variant::kStock) {
    SystemConfig config;
    config.snoop_mode = mode;
    if (variant == Variant::kDirectoryNoHitme) {
      ProtocolFeatures features = ProtocolFeatures::for_mode(mode);
      features.directory = true;
      features.hitme = false;
      config.feature_override = features;
    } else if (variant == Variant::kNoCoreValid) {
      ProtocolFeatures features = ProtocolFeatures::for_mode(mode);
      features.core_valid_bits = false;
      config.feature_override = features;
    }
    return config;
  }

  struct LineView {
    int m_holders = 0;
    int f_nodes = 0;
    int em_nodes = 0;
    int valid_nodes = 0;
    bool remote_copy = false;  // valid L3 entry outside the home node
  };

  static void check_invariants(System& sys, const MemRegion& region) {
    MachineState& m = sys.state();
    const SystemTopology& topo = m.topo;
    for (LineAddr line = region.first_line();
         line < region.first_line() + region.line_count(); ++line) {
      LineView view;
      const int home = home_node_of_line(line);
      for (const NumaNode& node : topo.nodes()) {
        const std::optional<CacheEntry> entry =
            m.l3[static_cast<std::size_t>(node.socket)]
                [static_cast<std::size_t>(m.slice_for(node.id, line))]
                    .peek(line);
        if (entry.has_value()) {
          ++view.valid_nodes;
          if (entry->state == Mesif::kForward) ++view.f_nodes;
          if (entry->state == Mesif::kExclusive ||
              entry->state == Mesif::kModified) {
            ++view.em_nodes;
          }
          if (node.id != home) view.remote_copy = true;
        }
        for (int core : node.cores) {
          const CoreCaches& cc = m.cores[static_cast<std::size_t>(core)];
          const std::optional<CacheEntry> l1 = cc.l1.peek(line);
          const std::optional<CacheEntry> l2 = cc.l2.peek(line);
          const bool dirty = (l1 && l1->state == Mesif::kModified) ||
                             (l2 && l2->state == Mesif::kModified);
          if (dirty) ++view.m_holders;
          if (l1 || l2) {
            // Inclusivity: a core copy requires the node L3 entry with the
            // core's valid bit.
            ASSERT_TRUE(entry.has_value())
                << "core " << core << " holds line " << line
                << " without an L3 entry in its node";
            ASSERT_TRUE(entry->core_valid &
                        (1u << static_cast<unsigned>(topo.local_core(core))))
                << "core " << core << " holds line " << line
                << " without its core-valid bit";
            if (dirty && m.features.core_valid_bits) {
              // The CA must be able to find the single dirty copy.  (The
              // no-core-valid ablation intentionally gives this guarantee
              // up — that is exactly what the bits buy.)
              ASSERT_EQ(std::popcount(entry->core_valid), 1)
                  << "dirty core copy with multiple core-valid bits, line "
                  << line;
              ASSERT_TRUE(entry->state == Mesif::kExclusive ||
                          entry->state == Mesif::kModified)
                  << "dirty core copy under a shared L3 state, line " << line;
            }
          }
        }
      }
      ASSERT_LE(view.m_holders, 1) << "two modified copies of line " << line;
      ASSERT_LE(view.f_nodes, 1) << "two forward copies of line " << line;
      if (view.em_nodes > 0 && m.features.core_valid_bits) {
        // Node-level exclusivity.  The no-core-valid ablation knowingly
        // loses this: without the bits a CA cannot find a silently
        // modified core copy, so a peer can be granted a (stale) share
        // while dirty data hides in a core — which is precisely why the
        // hardware pays the 23.2 ns snoop penalty to keep them.
        ASSERT_EQ(view.valid_nodes, 1)
            << "exclusive/modified node coexists with other copies, line "
            << line;
      }
      if (m.features.directory && view.remote_copy) {
        const DirState dir = m.home_of(line).ha->directory.get(line);
        ASSERT_NE(dir, DirState::kRemoteInvalid)
            << "remote copy of line " << line
            << " while the directory says remote-invalid";
      }
    }
  }
};

TEST_P(CoherenceInvariants, RandomOperationFuzz) {
  const Scenario scenario = GetParam();
  SCOPED_TRACE(hswtest::seed_note(scenario.seed));
  System sys(config_for(scenario.mode, scenario.variant));
  Xoshiro256 rng(hswtest::effective_seed(scenario.seed));

  // A small region so lines collide in interesting ways, spread over the
  // first two nodes' memory.
  const MemRegion region_a = sys.alloc_on_node(0, 64 * 64);
  const MemRegion region_b =
      sys.alloc_on_node(sys.node_count() - 1, 64 * 64);

  const int cores = sys.core_count();
  for (int step = 0; step < 4000; ++step) {
    const MemRegion& region = rng.bernoulli(0.5) ? region_a : region_b;
    const PhysAddr addr =
        region.addr_at(rng.bounded(region.line_count()) * kLineSize);
    const int core = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(cores)));
    const double dice = rng.uniform();
    if (dice < 0.45) {
      sys.read(core, addr);
    } else if (dice < 0.85) {
      sys.write(core, addr);
    } else if (dice < 0.92) {
      sys.flush_line(addr);
    } else if (dice < 0.97) {
      sys.evict_core_caches(core);
    } else {
      sys.flush_node_l3(sys.topology().node_of_core(core));
    }
    if (step % 250 == 0) {
      check_invariants(sys, region_a);
      check_invariants(sys, region_b);
      if (HasFatalFailure()) return;
    }
  }
  check_invariants(sys, region_a);
  check_invariants(sys, region_b);
}

TEST_P(CoherenceInvariants, LatenciesAreAlwaysPositiveAndBounded) {
  const Scenario scenario = GetParam();
  SCOPED_TRACE(hswtest::seed_note(scenario.seed));
  System sys(config_for(scenario.mode, scenario.variant));
  Xoshiro256 rng(hswtest::effective_seed(scenario.seed) ^ 0xabcdef);
  const MemRegion region = sys.alloc_on_node(0, 64 * 256);
  for (int step = 0; step < 2000; ++step) {
    const PhysAddr addr =
        region.addr_at(rng.bounded(region.line_count()) * kLineSize);
    const int core = static_cast<int>(
        rng.bounded(static_cast<std::uint64_t>(sys.core_count())));
    const AccessResult r =
        rng.bernoulli(0.5) ? sys.read(core, addr) : sys.write(core, addr);
    ASSERT_GT(r.ns, 0.0);
    ASSERT_LT(r.ns, 500.0) << "implausible latency at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CoherenceInvariants,
    ::testing::Values(Scenario{"source", SnoopMode::kSourceSnoop, 1},
                      Scenario{"source", SnoopMode::kSourceSnoop, 2},
                      Scenario{"source", SnoopMode::kSourceSnoop, 3},
                      Scenario{"home", SnoopMode::kHomeSnoop, 1},
                      Scenario{"home", SnoopMode::kHomeSnoop, 2},
                      Scenario{"home", SnoopMode::kHomeSnoop, 3},
                      Scenario{"cod", SnoopMode::kCod, 1},
                      Scenario{"cod", SnoopMode::kCod, 2},
                      Scenario{"cod", SnoopMode::kCod, 3},
                      Scenario{"cod_das", SnoopMode::kCod, 1,
                               Variant::kDirectoryNoHitme},
                      Scenario{"cod_das", SnoopMode::kCod, 2,
                               Variant::kDirectoryNoHitme},
                      Scenario{"source_nocv", SnoopMode::kSourceSnoop, 1,
                               Variant::kNoCoreValid},
                      Scenario{"home_dir", SnoopMode::kHomeSnoop, 1,
                               Variant::kDirectoryNoHitme}),
    scenario_name);

}  // namespace
}  // namespace hsw
