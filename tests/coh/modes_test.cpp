// Cross-mode behavioural tests: the same access sequence under source
// snoop, home snoop, and COD must produce identical *functional* state and
// the mode-specific traffic the paper describes.
#include <gtest/gtest.h>

#include "coh/engine.h"
#include "machine/system.h"

namespace hsw {
namespace {

SystemConfig config_for(SnoopMode mode) {
  SystemConfig config;
  config.snoop_mode = mode;
  return config;
}

class ModesTest : public ::testing::TestWithParam<SnoopMode> {};

TEST_P(ModesTest, FunctionalResultIndependentOfMode) {
  System sys(config_for(GetParam()));
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  const int remote = sys.topology().node(sys.node_count() - 1).cores[0];

  sys.write(0, a);
  AccessResult r = sys.read(remote, a);
  EXPECT_EQ(r.source, ServiceSource::kRemoteFwd);  // dirty forward

  // Write from the remote side: everyone else invalidated.
  sys.write(remote, a);
  r = sys.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kRemoteFwd);

  // Flush: memory is the only copy, and it is current.
  sys.flush_line(a);
  r = sys.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kLocalDram);
}

TEST_P(ModesTest, LatencyLadderOrderingHolds) {
  System sys(config_for(GetParam()));
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  sys.write(0, a);
  const double l1 = sys.read(0, a).ns;
  sys.evict_core_caches(0);
  const double l3 = sys.read(0, a).ns;
  sys.flush_line(a);
  const double mem = sys.read(0, a).ns;
  EXPECT_LT(l1, l3);
  EXPECT_LT(l3, mem);
}

TEST_P(ModesTest, SnoopTrafficMatchesTheModesDesign) {
  System sys(config_for(GetParam()));
  const PhysAddr local = sys.alloc_on_node(0, 64).base;
  sys.counters().reset();
  sys.read(0, local);  // cold local read

  const std::uint64_t broadcasts = sys.counters().value(Ctr::kSnoopBroadcasts);
  switch (GetParam()) {
    case SnoopMode::kSourceSnoop:
    case SnoopMode::kHomeSnoop:
      // Without a directory every miss snoops the peer(s).
      EXPECT_GT(broadcasts, 0u);
      break;
    case SnoopMode::kCod:
      // Remote-invalid lines are served without any snoop (the whole point
      // of the directory).
      EXPECT_EQ(broadcasts, 0u);
      break;
  }
}

TEST_P(ModesTest, WriteMakesSubsequentLocalWritesCheap) {
  System sys(config_for(GetParam()));
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  sys.write(0, a);
  // Second write: M in L1, pure L1 hit in every mode.
  EXPECT_DOUBLE_EQ(sys.write(0, a).ns, sys.timing().l1_hit);
}

TEST_P(ModesTest, PingPongCostsMoreAcrossSocketsThanWithin) {
  System sys(config_for(GetParam()));
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  const int neighbour = 1;
  const int remote = sys.topology().global_core(1, 0);
  auto exchange = [&](int partner) {
    sys.write(0, a);
    return sys.write(partner, a).ns;
  };
  EXPECT_LT(exchange(neighbour), exchange(remote));
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ModesTest,
    ::testing::Values(SnoopMode::kSourceSnoop, SnoopMode::kHomeSnoop,
                      SnoopMode::kCod),
    [](const ::testing::TestParamInfo<SnoopMode>& param_info) {
      switch (param_info.param) {
        case SnoopMode::kSourceSnoop: return "source";
        case SnoopMode::kHomeSnoop: return "home";
        case SnoopMode::kCod: return "cod";
      }
      return "unknown";
    });

// Mode-specific counter semantics.
TEST(ModeCounters, SourceSnoopBroadcastsFromTheRequester) {
  System sys(config_for(SnoopMode::kSourceSnoop));
  const PhysAddr remote = sys.alloc_on_node(1, 64).base;
  sys.counters().reset();
  sys.read(0, remote);
  // The request to the remote home snoops its CA; QPI carries snoop flits.
  EXPECT_GT(sys.counters().value(Ctr::kSnoopsSent), 0u);
  EXPECT_GT(sys.counters().value(Ctr::kQpiSnoopFlits), 0u);
  EXPECT_EQ(sys.counters().value(Ctr::kDirectoryLookups), 0u);
}

TEST(ModeCounters, CodConsultsTheDirectoryOncePerMiss) {
  System sys(config_for(SnoopMode::kCod));
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  sys.counters().reset();
  sys.read(0, a);
  EXPECT_EQ(sys.counters().value(Ctr::kDirectoryLookups), 1u);
  EXPECT_EQ(sys.counters().value(Ctr::kHitmeMiss), 1u);
  sys.read(0, a);  // L1 hit: no uncore traffic
  EXPECT_EQ(sys.counters().value(Ctr::kDirectoryLookups), 1u);
}

TEST(ModeCounters, DramCountersTrackReadsAndWritebacks) {
  System sys(config_for(SnoopMode::kSourceSnoop));
  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  sys.counters().reset();
  sys.write(0, a);  // RFO: one DRAM read
  EXPECT_EQ(sys.counters().value(Ctr::kDramReads), 1u);
  sys.flush_line(a);  // dirty flush: one DRAM write
  EXPECT_EQ(sys.counters().value(Ctr::kDramWrites), 1u);
}

}  // namespace
}  // namespace hsw
