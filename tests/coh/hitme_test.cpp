#include "coh/hitme.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

TEST(Hitme, MissOnEmpty) {
  HitmeCache cache;
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.contains(1));
}

TEST(Hitme, PutAndLookupPresence) {
  HitmeCache cache;
  EXPECT_FALSE(cache.put(10, 0b0101));
  auto entry = cache.lookup(10);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->presence, 0b0101);
}

TEST(Hitme, PutUpdatesExistingEntry) {
  HitmeCache cache;
  cache.put(10, 0b0001);
  EXPECT_FALSE(cache.put(10, 0b0011));
  EXPECT_EQ(cache.lookup(10)->presence, 0b0011);
  EXPECT_EQ(cache.valid_entries(), 1u);
}

TEST(Hitme, Erase) {
  HitmeCache cache;
  cache.put(10, 1);
  cache.erase(10);
  EXPECT_FALSE(cache.lookup(10).has_value());
}

TEST(Hitme, CapacityMatchesPaper) {
  // 14 KiB per home agent at ~3.5 B/entry = 4096 entries = 256 KiB of
  // 64-B lines covered, matching the paper's Fig. 7 threshold.
  HitmeCache cache;
  EXPECT_EQ(cache.capacity_entries(), 4096u);
}

TEST(Hitme, EvictsWhenSetOverflows) {
  HitmeConfig config;
  config.entries = 16;
  config.associativity = 4;  // 4 sets
  HitmeCache cache(config);
  bool evicted = false;
  // 8 lines mapping to set 0 (stride = set count = 4).
  for (LineAddr i = 0; i < 8; ++i) {
    evicted |= cache.put(i * 4, 1);
  }
  EXPECT_TRUE(evicted);
  EXPECT_LE(cache.valid_entries(), 16u);
}

TEST(Hitme, HitRateDegradesBeyondCapacity) {
  HitmeCache cache;  // 4096 entries
  const std::uint64_t lines = 3 * 4096;  // 3x capacity
  for (LineAddr l = 0; l < lines; ++l) cache.put(l, 1);
  std::size_t hits = 0;
  for (LineAddr l = 0; l < lines; ++l) {
    if (cache.contains(l)) ++hits;
  }
  const double hit_rate = static_cast<double>(hits) / static_cast<double>(lines);
  EXPECT_LT(hit_rate, 0.5);
  EXPECT_GT(hit_rate, 0.2);
}

TEST(Hitme, ClearEmptiesEverything) {
  HitmeCache cache;
  for (LineAddr l = 0; l < 100; ++l) cache.put(l, 1);
  cache.clear();
  EXPECT_EQ(cache.valid_entries(), 0u);
}

}  // namespace
}  // namespace hsw
