// Exhaustive check of the MESIF transition tables (coh/protocol.h) against
// an independent straight-line reference written from the paper's protocol
// description (§II-B, Table I).  The engine's hot paths index the tables;
// this test is what keeps them honest when someone edits an entry.
#include "coh/protocol.h"

#include <gtest/gtest.h>

#include <array>

#include "mem/line.h"

namespace hsw::protocol {
namespace {

constexpr std::array<Mesif, kStateCount> kAllStates = {
    Mesif::kInvalid, Mesif::kShared, Mesif::kForward, Mesif::kExclusive,
    Mesif::kModified};
constexpr std::array<Op, kOpCount> kAllOps = {
    Op::kLocalRead, Op::kLocalStore, Op::kSnoopRead, Op::kSnoopInvalidate};

// Reference semantics, written as explicit control flow (no tables) so a
// typo in kNextState cannot also hide here.
Mesif reference_next_state(Mesif s, Op op) {
  if (s == Mesif::kInvalid) return Mesif::kInvalid;
  switch (op) {
    case Op::kLocalRead:
      return s;  // a load hit never changes the holder's state
    case Op::kLocalStore:
      // Only an owner upgrades silently (E->M, M->M).  S/F must fetch
      // ownership through the CA first — the table records "no change".
      if (s == Mesif::kExclusive || s == Mesif::kModified) {
        return Mesif::kModified;
      }
      return s;
    case Op::kSnoopRead:
      // Read snoops demote every valid state to Shared (the forwarder hands
      // over F; an owner writes back and keeps a Shared copy).
      return Mesif::kShared;
    case Op::kSnoopInvalidate:
      return Mesif::kInvalid;
  }
  return Mesif::kInvalid;
}

TEST(ProtocolTable, NextStateMatchesReferenceForAllStateOpPairs) {
  for (Mesif s : kAllStates) {
    for (Op op : kAllOps) {
      EXPECT_EQ(next_state(s, op), reference_next_state(s, op))
          << "state=" << to_string(s) << " op=" << static_cast<int>(op);
    }
  }
}

TEST(ProtocolTable, SnoopReadReactionMatchesForwardObligation) {
  // Exactly the can_forward() states supply data; Shared answers without
  // data; Invalid does neither.
  for (Mesif s : kAllStates) {
    const SnoopReadReaction& rx = snoop_read_reaction(s);
    EXPECT_EQ(rx.forwards, can_forward(s)) << to_string(s);
    EXPECT_EQ(rx.responds_shared, s == Mesif::kShared) << to_string(s);
    // A data response and a shared response are mutually exclusive.
    EXPECT_FALSE(rx.forwards && rx.responds_shared) << to_string(s);
  }
}

TEST(ProtocolTable, OnlyOwnersMayHideNewerCoreCopies) {
  // The core-valid chase only applies where a core above could have
  // silently upgraded: node-owner states.  F/S copies are clean by
  // construction, so chasing them would be wasted snoops.
  for (Mesif s : kAllStates) {
    EXPECT_EQ(snoop_read_reaction(s).may_hold_newer, node_owns(s))
        << to_string(s);
  }
}

TEST(ProtocolTable, StoreHitSilentExactlyInOwnerStates) {
  for (Mesif s : kAllStates) {
    EXPECT_EQ(store_hit_is_silent(s),
              s == Mesif::kExclusive || s == Mesif::kModified)
        << to_string(s);
    if (store_hit_is_silent(s)) {
      // A silent store must land in Modified — nothing else would make the
      // dirty data reach a writeback later.
      EXPECT_EQ(next_state(s, Op::kLocalStore), Mesif::kModified)
          << to_string(s);
    } else {
      // Non-silent states leave the upgrade to the CA: no table transition.
      EXPECT_EQ(next_state(s, Op::kLocalStore), s) << to_string(s);
    }
  }
}

TEST(ProtocolTable, InvalidatingSnoopAlwaysLandsInInvalid) {
  for (Mesif s : kAllStates) {
    EXPECT_EQ(next_state(s, Op::kSnoopInvalidate), Mesif::kInvalid)
        << to_string(s);
  }
}

TEST(ProtocolTable, InvalidIsAbsorbing) {
  for (Op op : kAllOps) {
    EXPECT_EQ(next_state(Mesif::kInvalid, op), Mesif::kInvalid);
  }
  EXPECT_FALSE(node_owns(Mesif::kInvalid));
  EXPECT_FALSE(store_hit_is_silent(Mesif::kInvalid));
}

TEST(ProtocolTable, DirtyStatesAreExactlyModified) {
  // The engine keys writebacks off is_dirty(); the tables must never route
  // a dirty line into a state that drops that obligation silently except
  // via the explicit snoop-read demotion (which writes back first).
  for (Mesif s : kAllStates) {
    EXPECT_EQ(is_dirty(s), s == Mesif::kModified) << to_string(s);
  }
}

}  // namespace
}  // namespace hsw::protocol
