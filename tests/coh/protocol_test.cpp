// Exhaustive check of the protocol policy tables (coh/protocol.h) against
// independent straight-line references written from the protocol
// descriptions (MESIF: paper §II-B, Table I; MOESI/Dragon: the classic
// invalidate- and update-based formulations).  The engine's hot paths index
// the tables; this test is what keeps them honest when someone edits an
// entry.
#include "coh/protocol.h"

#include <gtest/gtest.h>

#include <array>

#include "mem/line.h"

namespace hsw::protocol {
namespace {

constexpr std::array<Mesif, kStateCount> kAllStates = {
    Mesif::kInvalid,   Mesif::kShared,   Mesif::kForward,
    Mesif::kExclusive, Mesif::kModified, Mesif::kOwned};
constexpr std::array<Op, kOpCount> kAllOps = {
    Op::kLocalRead, Op::kLocalStore, Op::kSnoopRead, Op::kSnoopInvalidate,
    Op::kSnoopUpdate};
constexpr std::array<Protocol, kProtocolCount> kAllProtocols = {
    Protocol::kMesif, Protocol::kMesi, Protocol::kMoesi, Protocol::kDragon};

// Reference semantics, written as explicit control flow (no tables) so a
// typo in a policy table cannot also hide here.  `demotes_to_owned` covers
// the one transition family the protocols disagree on: what a dirty
// supplier becomes on a read snoop.
Mesif reference_next_state(Mesif s, Op op, bool demotes_to_owned) {
  if (s == Mesif::kInvalid) return Mesif::kInvalid;
  switch (op) {
    case Op::kLocalRead:
      return s;  // a load hit never changes the holder's state
    case Op::kLocalStore:
      // Only an exclusive owner upgrades silently (E->M, M->M).  S/F must
      // fetch ownership through the CA first, and Owned implies sharers —
      // the table records "no change" for all of them.
      if (s == Mesif::kExclusive || s == Mesif::kModified) {
        return Mesif::kModified;
      }
      return s;
    case Op::kSnoopRead:
      // Read snoops demote clean suppliers to Shared.  Dirty suppliers
      // either write back and demote to Shared (MESIF/MESI) or keep the
      // only valid copy as Owned (MOESI/Dragon).
      if (demotes_to_owned && is_dirty(s)) return Mesif::kOwned;
      return Mesif::kShared;
    case Op::kSnoopInvalidate:
      return Mesif::kInvalid;
    case Op::kSnoopUpdate:
      // A peer's update broadcast refreshes the data in place: every valid
      // holder ends up with a clean Shared copy of the new version.
      return Mesif::kShared;
  }
  return Mesif::kInvalid;
}

TEST(ProtocolTable, NextStateMatchesReferenceForAllProtocolStateOpTriples) {
  for (Protocol p : kAllProtocols) {
    const ProtocolPolicy& pol = policy(p);
    const bool owned = !pol.writeback_on_read_snoop;
    for (Mesif s : kAllStates) {
      for (Op op : kAllOps) {
        EXPECT_EQ(pol.next(s, op), reference_next_state(s, op, owned))
            << pol.name << " state=" << to_string(s)
            << " op=" << static_cast<int>(op);
      }
    }
  }
}

TEST(ProtocolTable, PolicyRegistryRoundTrips) {
  for (Protocol p : kAllProtocols) {
    EXPECT_EQ(policy(p).id, p);
    EXPECT_EQ(policy(p).name, to_string(p));
  }
}

TEST(ProtocolTable, FlowFlagsMatchTheProtocolFamilies) {
  EXPECT_TRUE(kMesifPolicy.has_forward);
  EXPECT_EQ(kMesifPolicy.clean_shared_grant, Mesif::kForward);
  for (Protocol p : {Protocol::kMesi, Protocol::kMoesi, Protocol::kDragon}) {
    EXPECT_FALSE(policy(p).has_forward) << to_string(p);
    EXPECT_EQ(policy(p).clean_shared_grant, Mesif::kShared) << to_string(p);
  }
  EXPECT_TRUE(kMesifPolicy.writeback_on_read_snoop);
  EXPECT_TRUE(kMesiPolicy.writeback_on_read_snoop);
  EXPECT_FALSE(kMoesiPolicy.writeback_on_read_snoop);
  EXPECT_FALSE(kDragonPolicy.writeback_on_read_snoop);
  for (Protocol p : {Protocol::kMesif, Protocol::kMesi, Protocol::kMoesi}) {
    EXPECT_FALSE(policy(p).update_based) << to_string(p);
  }
  EXPECT_TRUE(kDragonPolicy.update_based);
}

TEST(ProtocolTable, SnoopReadReactionMatchesForwardObligation) {
  // Exactly the can_forward() states supply data; Shared answers without
  // data; Invalid does neither.  Holds for the whole family.
  for (Protocol p : kAllProtocols) {
    for (Mesif s : kAllStates) {
      const SnoopReadReaction& rx = policy(p).snoop_read(s);
      EXPECT_EQ(rx.forwards, can_forward(s)) << to_string(p) << " "
                                             << to_string(s);
      EXPECT_EQ(rx.responds_shared, s == Mesif::kShared) << to_string(s);
      // A data response and a shared response are mutually exclusive.
      EXPECT_FALSE(rx.forwards && rx.responds_shared) << to_string(s);
    }
  }
}

TEST(ProtocolTable, OnlyNodeOwnersMayHideNewerCoreCopies) {
  // The core-valid chase only applies where a core above could have
  // silently upgraded: node-owner states (E/M).  F/S copies are clean by
  // construction, and under a node-level Owned entry the cores hold at
  // most Shared — chasing any of them would be wasted snoops.
  for (Protocol p : kAllProtocols) {
    for (Mesif s : kAllStates) {
      EXPECT_EQ(policy(p).snoop_read(s).may_hold_newer, policy(p).owns(s))
          << to_string(p) << " " << to_string(s);
    }
  }
}

TEST(ProtocolTable, StoreHitSilentExactlyInExclusiveOwnerStates) {
  for (Protocol p : kAllProtocols) {
    const ProtocolPolicy& pol = policy(p);
    for (Mesif s : kAllStates) {
      EXPECT_EQ(pol.store_silent(s),
                s == Mesif::kExclusive || s == Mesif::kModified)
          << pol.name << " " << to_string(s);
      if (pol.store_silent(s)) {
        // A silent store must land in Modified — nothing else would make
        // the dirty data reach a writeback later.
        EXPECT_EQ(pol.next(s, Op::kLocalStore), Mesif::kModified)
            << to_string(s);
      } else {
        // Non-silent states leave the upgrade to the CA: no table
        // transition.
        EXPECT_EQ(pol.next(s, Op::kLocalStore), s) << to_string(s);
      }
    }
  }
}

TEST(ProtocolTable, InvalidatingSnoopAlwaysLandsInInvalid) {
  for (Protocol p : kAllProtocols) {
    for (Mesif s : kAllStates) {
      EXPECT_EQ(policy(p).next(s, Op::kSnoopInvalidate), Mesif::kInvalid)
          << to_string(p) << " " << to_string(s);
    }
  }
}

TEST(ProtocolTable, UpdateBroadcastLeavesCleanSharedCopies) {
  // After absorbing a peer's update, every valid holder is a clean sharer:
  // it must neither claim dirtiness nor node ownership, or the next local
  // store would skip the broadcast and lose the sharers.
  for (Protocol p : kAllProtocols) {
    for (Mesif s : kAllStates) {
      const Mesif next = policy(p).next(s, Op::kSnoopUpdate);
      if (s == Mesif::kInvalid) {
        EXPECT_EQ(next, Mesif::kInvalid);
      } else {
        EXPECT_EQ(next, Mesif::kShared) << to_string(p) << " " << to_string(s);
        EXPECT_FALSE(is_dirty(next));
        EXPECT_FALSE(policy(p).owns(next));
      }
    }
  }
}

TEST(ProtocolTable, InvalidIsAbsorbing) {
  for (Protocol p : kAllProtocols) {
    for (Op op : kAllOps) {
      EXPECT_EQ(policy(p).next(Mesif::kInvalid, op), Mesif::kInvalid);
    }
    EXPECT_FALSE(policy(p).owns(Mesif::kInvalid));
    EXPECT_FALSE(policy(p).store_silent(Mesif::kInvalid));
  }
}

TEST(ProtocolTable, DirtyStatesAreExactlyModifiedAndOwned) {
  // The engine keys writebacks off is_dirty(); the tables must never route
  // a dirty line into a state that drops that obligation silently except
  // via the explicit snoop-read demotion (which writes back first under
  // MESIF/MESI, or keeps Owned under MOESI/Dragon).
  for (Mesif s : kAllStates) {
    EXPECT_EQ(is_dirty(s), s == Mesif::kModified || s == Mesif::kOwned)
        << to_string(s);
  }
}

TEST(ProtocolTable, MoesiOwnedKeepsForwardingWithoutWriteback) {
  // The MOESI point: M demotes to O on a read snoop (no memory writeback),
  // and O keeps supplying data while staying O.
  EXPECT_EQ(kMoesiPolicy.next(Mesif::kModified, Op::kSnoopRead), Mesif::kOwned);
  EXPECT_EQ(kMoesiPolicy.next(Mesif::kOwned, Op::kSnoopRead), Mesif::kOwned);
  EXPECT_TRUE(kMoesiPolicy.snoop_read(Mesif::kOwned).forwards);
  EXPECT_FALSE(kMoesiPolicy.owns(Mesif::kOwned));  // sharers exist elsewhere
}

TEST(ProtocolTable, LegacyMesifFreeFunctionsAliasTheMesifPolicy) {
  for (Mesif s : kAllStates) {
    for (Op op : kAllOps) {
      EXPECT_EQ(next_state(s, op), kMesifPolicy.next(s, op));
    }
    EXPECT_EQ(snoop_read_reaction(s).forwards,
              kMesifPolicy.snoop_read(s).forwards);
    EXPECT_EQ(store_hit_is_silent(s), kMesifPolicy.store_silent(s));
    EXPECT_EQ(node_owns(s), kMesifPolicy.owns(s));
  }
}

}  // namespace
}  // namespace hsw::protocol
