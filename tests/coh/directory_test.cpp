// Directory and HitME-cache semantics in Cluster-on-Die mode: the paper's
// §IV-D / §VI-C mechanisms (AllocateShared policy, stale snoop-all state,
// memory forwarding of clean-shared lines).
#include <gtest/gtest.h>

#include "coh/engine.h"
#include "machine/system.h"

namespace hsw {
namespace {

class CodTest : public ::testing::Test {
 protected:
  System sys_{SystemConfig::cluster_on_die()};

  PhysAddr alloc(int node) { return sys_.alloc_on_node(node, 64).base; }

  HomeAgentState& home_agent(PhysAddr addr) {
    return *sys_.state().home_of(line_of(addr)).ha;
  }
  DirState dir(PhysAddr addr) {
    return home_agent(addr).directory.get(line_of(addr));
  }
  int core_in(int node, int idx = 0) {
    return sys_.topology().node(node).cores[static_cast<std::size_t>(idx)];
  }
};

TEST_F(CodTest, FourNodes) {
  EXPECT_EQ(sys_.node_count(), 4);
  EXPECT_TRUE(sys_.state().features.directory);
  EXPECT_TRUE(sys_.state().features.hitme);
}

TEST_F(CodTest, LocalAccessKeepsRemoteInvalid) {
  const PhysAddr a = alloc(0);
  sys_.read(core_in(0), a);
  EXPECT_EQ(dir(a), DirState::kRemoteInvalid);
  // No broadcast was needed.
  EXPECT_EQ(sys_.counters().value(Ctr::kSnoopBroadcasts), 0u);
}

TEST_F(CodTest, RemoteExclusiveGrantSetsSnoopAll) {
  const PhysAddr a = alloc(0);
  sys_.read(core_in(2), a);  // remote node reads cold line
  EXPECT_EQ(dir(a), DirState::kSnoopAll);
  // First access to a remote-invalid line must not allocate a HitME entry
  // (paper §IV-D).
  EXPECT_FALSE(home_agent(a).hitme.contains(line_of(a)));
  EXPECT_EQ(sys_.counters().value(Ctr::kHitmeAlloc), 0u);
}

TEST_F(CodTest, CrossNodeForwardAllocatesHitmeEntry) {
  const PhysAddr a = alloc(0);
  const int owner = core_in(0, 1);
  sys_.write(owner, a);
  sys_.flush_line(a);
  sys_.read(owner, a);        // E in node 0 (home)
  sys_.read(core_in(1), a);   // node 1 pulls the line: F forwarded cross-node
  EXPECT_TRUE(home_agent(a).hitme.contains(line_of(a)));
  EXPECT_EQ(dir(a), DirState::kSnoopAll);
  EXPECT_GE(sys_.counters().value(Ctr::kHitmeAlloc), 1u);
  const auto entry = home_agent(a).hitme.lookup(line_of(a));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->presence & 0b11u, 0b11u);  // nodes 0 and 1 present
}

TEST_F(CodTest, HitmeHitForwardsFromMemoryWithoutSnoops) {
  const PhysAddr a = alloc(1);
  const int owner = core_in(1);
  sys_.write(owner, a);
  sys_.flush_line(a);
  sys_.read(owner, a);
  sys_.read(core_in(2), a);  // allocates HitME entry at node 1's HA

  // A third node reads: HitME hit, data forwarded from home memory even
  // though caches hold copies (the Fig. 7 small-set behaviour).
  const std::uint64_t broadcasts = sys_.counters().value(Ctr::kSnoopBroadcasts);
  const AccessResult r = sys_.read(core_in(3), a);
  EXPECT_EQ(r.source, ServiceSource::kRemoteDram);
  EXPECT_GE(sys_.counters().value(Ctr::kHitmeHit), 1u);
  EXPECT_EQ(sys_.counters().value(Ctr::kSnoopBroadcasts), broadcasts);
  EXPECT_EQ(sys_.counters().value(Ctr::kLoadsRemoteDram), 1u);
}

TEST_F(CodTest, StaleDirectoryForcesUselessBroadcast) {
  const PhysAddr a = alloc(1);
  const int owner = core_in(1);
  sys_.write(owner, a);
  sys_.flush_line(a);
  sys_.read(owner, a);
  sys_.read(core_in(2), a);  // F in node 2, dir snoop-all, HitME entry

  // Everything silently evicted; the directory still says snoop-all.
  sys_.flush_node_l3(1);
  sys_.flush_node_l3(2);
  home_agent(a).hitme.clear();  // entry also evicted (tiny cache)
  EXPECT_EQ(dir(a), DirState::kSnoopAll);

  // The next read pays a full (useless) broadcast before memory answers.
  const PhysAddr clean = alloc(1);
  const AccessResult stale = sys_.read(core_in(0), a);
  const AccessResult fresh = sys_.read(core_in(0), clean);
  EXPECT_GT(stale.ns, fresh.ns + 50.0);  // paper: +78..89 ns
  EXPECT_GE(sys_.counters().value(Ctr::kSnoopBroadcasts), 2u);
}

TEST_F(CodTest, DirtyWritebackCleansDirectory) {
  const PhysAddr a = alloc(0);
  const int remote = core_in(2);
  sys_.write(remote, a);  // modified in node 2, dir snoop-all
  EXPECT_EQ(dir(a), DirState::kSnoopAll);
  sys_.evict_core_caches(remote);
  sys_.flush_node_l3(2);  // dirty line written back explicitly
  EXPECT_EQ(dir(a), DirState::kRemoteInvalid);
}

TEST_F(CodTest, RfoErasesHitmeEntry) {
  const PhysAddr a = alloc(0);
  sys_.write(core_in(0), a);
  sys_.flush_line(a);
  sys_.read(core_in(0), a);
  sys_.read(core_in(1), a);  // HitME entry allocated
  ASSERT_TRUE(home_agent(a).hitme.contains(line_of(a)));
  sys_.write(core_in(1), a);
  EXPECT_FALSE(home_agent(a).hitme.contains(line_of(a)));
  EXPECT_EQ(dir(a), DirState::kSnoopAll);
}

TEST_F(CodTest, LocalRfoResetsDirectoryToRemoteInvalid) {
  const PhysAddr a = alloc(0);
  sys_.read(core_in(2), a);  // remote copy, snoop-all
  sys_.write(core_in(0), a);  // home-node core takes ownership
  EXPECT_EQ(dir(a), DirState::kRemoteInvalid);
}

TEST_F(CodTest, ThreeNodeTransactionSlowerThanTwoNode) {
  // F copy in the home node vs F copy in a third node (Table IV).
  const PhysAddr two = alloc(1);
  sys_.write(core_in(1), two);
  sys_.flush_line(two);
  sys_.read(core_in(1), two);
  sys_.evict_core_caches(core_in(1));
  const AccessResult two_node = sys_.read(core_in(0), two);

  const PhysAddr three = alloc(1);
  sys_.write(core_in(1), three);
  sys_.flush_line(three);
  sys_.read(core_in(1), three);
  sys_.read(core_in(2), three);  // F now in node 2
  sys_.evict_core_caches(core_in(1));
  sys_.evict_core_caches(core_in(2));
  home_agent(three).hitme.clear();  // large-set regime
  const AccessResult three_node = sys_.read(core_in(0), three);

  EXPECT_EQ(two_node.source, ServiceSource::kRemoteFwd);
  EXPECT_EQ(three_node.source, ServiceSource::kRemoteFwd);
  EXPECT_GT(three_node.ns, two_node.ns + 50.0);  // paper: 57.2 vs 170
}

// Ablation plumbing: directory without HitME uses the classic DAS `shared`
// state for clean forwards.
TEST(CodAblation, DirectoryWithoutHitmeUsesSharedState) {
  SystemConfig config = SystemConfig::cluster_on_die();
  ProtocolFeatures features;
  features.directory = true;
  features.hitme = false;
  config.feature_override = features;
  System sys(config);

  const PhysAddr a = sys.alloc_on_node(0, 64).base;
  const int owner = sys.topology().node(0).cores[0];
  sys.write(owner, a);
  sys.flush_line(a);
  sys.read(owner, a);
  sys.read(sys.topology().node(1).cores[0], a);
  EXPECT_EQ(sys.state().home_of(line_of(a)).ha->directory.get(line_of(a)),
            DirState::kShared);

  // After silent eviction, a read is served from memory without broadcast.
  sys.flush_node_l3(0);
  sys.flush_node_l3(1);
  const std::uint64_t broadcasts = sys.counters().value(Ctr::kSnoopBroadcasts);
  sys.read(sys.topology().node(2).cores[0], a);
  EXPECT_EQ(sys.counters().value(Ctr::kSnoopBroadcasts), broadcasts);
}

}  // namespace
}  // namespace hsw
