// White-box tests of the MESIF transaction engine: state transitions,
// core-valid-bit behaviour, silent evictions, and service-source
// classification — the mechanisms behind every number in the paper.
#include "coh/engine.h"

#include <gtest/gtest.h>

#include <optional>

#include "coh/slice_hash.h"
#include "machine/system.h"

namespace hsw {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  System sys_{SystemConfig::source_snoop()};

  PhysAddr alloc(int node = 0) { return sys_.alloc_on_node(node, 64).base; }

  std::optional<CacheEntry> l3_entry(int node, PhysAddr addr) {
    const LineAddr line = line_of(addr);
    MachineState& m = sys_.state();
    const NumaNode& n = m.topo.node(node);
    return m.l3[static_cast<std::size_t>(n.socket)]
               [static_cast<std::size_t>(m.slice_for(node, line))]
        .peek(line);
  }
  std::optional<CacheEntry> l1_entry(int core, PhysAddr addr) {
    return sys_.state().cores[static_cast<std::size_t>(core)].l1.peek(
        line_of(addr));
  }
  std::optional<CacheEntry> l2_entry(int core, PhysAddr addr) {
    return sys_.state().cores[static_cast<std::size_t>(core)].l2.peek(
        line_of(addr));
  }
};

TEST_F(EngineTest, WriteInstallsModifiedInL1AndExclusiveInL3) {
  const PhysAddr a = alloc();
  const AccessResult r = sys_.write(0, a);
  EXPECT_GT(r.ns, 0.0);
  ASSERT_TRUE(l1_entry(0, a).has_value());
  EXPECT_EQ(l1_entry(0, a)->state, Mesif::kModified);
  const std::optional<CacheEntry> l3 = l3_entry(0, a);
  ASSERT_TRUE(l3.has_value());
  // The L3 believes the line is Exclusive; the M upgrade happened silently
  // in the core — this is why the CA must snoop on E hits.
  EXPECT_EQ(l3->state, Mesif::kExclusive);
  EXPECT_EQ(l3->core_valid, 1u);
}

TEST_F(EngineTest, ReadAfterFlushGrantsExclusive) {
  const PhysAddr a = alloc();
  sys_.write(0, a);
  sys_.flush_line(a);
  EXPECT_FALSE(l1_entry(0, a).has_value());
  const AccessResult r = sys_.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kLocalDram);
  EXPECT_EQ(l1_entry(0, a)->state, Mesif::kExclusive);
  EXPECT_EQ(l3_entry(0, a)->state, Mesif::kExclusive);
}

TEST_F(EngineTest, L1HitIsFast) {
  const PhysAddr a = alloc();
  sys_.write(0, a);
  const AccessResult r = sys_.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kL1);
  EXPECT_DOUBLE_EQ(r.ns, sys_.timing().l1_hit);
}

TEST_F(EngineTest, ReadOfAnotherCoresModifiedLineForwardsFromCore) {
  const PhysAddr a = alloc();
  sys_.write(1, a);
  const std::uint64_t snoops_before = sys_.counters().value(Ctr::kCoreSnoops);
  const AccessResult r = sys_.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kCoreFwd);
  EXPECT_EQ(sys_.counters().value(Ctr::kCoreSnoops), snoops_before + 1);
  // Owner demoted to Shared, L3 refreshed with the dirty data.
  EXPECT_EQ(l1_entry(1, a)->state, Mesif::kShared);
  EXPECT_EQ(l3_entry(0, a)->state, Mesif::kModified);
  // Both cores now have the line.
  EXPECT_EQ(l3_entry(0, a)->core_valid, 0b11u);
}

TEST_F(EngineTest, SecondReadServedByL3WithoutSnoop) {
  const PhysAddr a = alloc();
  sys_.write(1, a);
  sys_.read(0, a);  // forwards from core 1, demotes to shared
  sys_.state().cores[0].l1.erase(line_of(a));
  sys_.state().cores[0].l2.erase(line_of(a));
  const std::uint64_t snoops_before = sys_.counters().value(Ctr::kCoreSnoops);
  const AccessResult r = sys_.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kL3);
  // Multiple core-valid bits => shared-clean => no core snoop (paper §VI-A).
  EXPECT_EQ(sys_.counters().value(Ctr::kCoreSnoops), snoops_before);
}

TEST_F(EngineTest, DirtyL2EvictionClearsCoreValidBit) {
  const PhysAddr a = alloc();
  sys_.write(0, a);
  sys_.evict_core_caches(0);
  EXPECT_FALSE(l1_entry(0, a).has_value());
  EXPECT_FALSE(l2_entry(0, a).has_value());
  const std::optional<CacheEntry> l3 = l3_entry(0, a);
  ASSERT_TRUE(l3.has_value());
  EXPECT_EQ(l3->state, Mesif::kModified);
  EXPECT_EQ(l3->core_valid, 0u);  // write-back clears the bit (paper §VI-A)
}

TEST_F(EngineTest, CleanEvictionIsSilentAndLeavesStaleCoreValidBit) {
  const PhysAddr a = alloc();
  sys_.write(0, a);
  sys_.flush_line(a);
  sys_.read(0, a);  // Exclusive in core 0
  sys_.evict_core_caches(0);
  const std::optional<CacheEntry> l3 = l3_entry(0, a);
  ASSERT_TRUE(l3.has_value());
  EXPECT_EQ(l3->state, Mesif::kExclusive);
  EXPECT_EQ(l3->core_valid, 1u);  // silent eviction: bit still set

  // The stale bit forces a useless core snoop on the next access from
  // another core — the paper's 44.4 ns E-state penalty.
  const std::uint64_t snoops_before = sys_.counters().value(Ctr::kCoreSnoops);
  const AccessResult r = sys_.read(1, a);
  EXPECT_EQ(r.source, ServiceSource::kL3);
  EXPECT_EQ(sys_.counters().value(Ctr::kCoreSnoops), snoops_before + 1);
}

TEST_F(EngineTest, EStateSnoopPenaltyMatchesPaperDelta) {
  // E line placed by core 2, still resident: reading from core 0 costs a
  // core snoop over the plain L3 hit.
  const PhysAddr a = alloc();
  sys_.write(2, a);
  sys_.flush_line(a);
  sys_.read(2, a);
  const AccessResult with_snoop = sys_.read(0, a);

  // M line evicted to L3 (core-valid clear): plain hit.
  const PhysAddr b = alloc();
  sys_.write(2, b);
  sys_.evict_core_caches(2);
  const AccessResult plain = sys_.read(0, b);

  EXPECT_NEAR(with_snoop.ns - plain.ns, sys_.timing().core_snoop_local, 1e-9);
}

TEST_F(EngineTest, CrossSocketModifiedForwarding) {
  const PhysAddr a = alloc(1);  // homed on socket 1
  sys_.write(12, a);            // core on socket 1
  const AccessResult r = sys_.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kRemoteFwd);
  EXPECT_EQ(r.source_node, 1);
  EXPECT_EQ(sys_.counters().value(Ctr::kLoadsRemoteFwd), 1u);
  // Dirty cross-node forward writes back to the home memory.
  EXPECT_GE(sys_.counters().value(Ctr::kDramWrites), 1u);
  // Requester's node now holds the line in Forward state.
  EXPECT_EQ(l3_entry(0, a)->state, Mesif::kForward);
  EXPECT_EQ(l3_entry(1, a)->state, Mesif::kShared);
}

TEST_F(EngineTest, ForwardMigratesToMostRecentReader) {
  const PhysAddr a = alloc(0);
  sys_.write(0, a);
  sys_.flush_line(a);
  sys_.read(0, a);   // node 0: E
  sys_.read(12, a);  // node 1 reads: F moves to node 1
  EXPECT_EQ(l3_entry(1, a)->state, Mesif::kForward);
  EXPECT_EQ(l3_entry(0, a)->state, Mesif::kShared);
}

TEST_F(EngineTest, SharedL1HitWithRemoteForwardCostsL3Trip) {
  const PhysAddr a = alloc(0);
  sys_.write(0, a);
  sys_.flush_line(a);
  sys_.read(0, a);   // node 0: E in core 0
  sys_.read(12, a);  // node 1 takes F; node 0 demoted to S
  ASSERT_EQ(l1_entry(0, a)->state, Mesif::kShared);
  // Core 0 still has the line in L1, but its node lost the Forward copy:
  // the read is serviced at L3 latency (paper Table IV / Fig. 9).
  const AccessResult r = sys_.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kL3);
  EXPECT_GT(r.ns, sys_.timing().l2_hit);
}

TEST_F(EngineTest, SharedL1HitWithLocalForwardIsFullSpeed) {
  const PhysAddr a = alloc(0);
  sys_.write(1, a);
  sys_.flush_line(a);
  sys_.read(1, a);  // E in core 1
  sys_.read(0, a);  // shared within node 0; node keeps exclusivity
  const AccessResult r = sys_.read(0, a);
  EXPECT_EQ(r.source, ServiceSource::kL1);
  EXPECT_DOUBLE_EQ(r.ns, sys_.timing().l1_hit);
}

TEST_F(EngineTest, RfoInvalidatesAllOtherCopies) {
  const PhysAddr a = alloc(0);
  sys_.write(0, a);
  sys_.read(1, a);
  sys_.read(12, a);  // copies in both sockets
  sys_.write(5, a);  // core 5 takes ownership
  EXPECT_FALSE(l1_entry(0, a).has_value());
  EXPECT_FALSE(l1_entry(1, a).has_value());
  EXPECT_FALSE(l1_entry(12, a).has_value());
  EXPECT_FALSE(l3_entry(1, a).has_value());  // peer node fully invalidated
  EXPECT_EQ(l1_entry(5, a)->state, Mesif::kModified);
  const std::optional<CacheEntry> l3 = l3_entry(0, a);
  ASSERT_TRUE(l3.has_value());
  EXPECT_EQ(l3->core_valid, 1u << 5);
}

TEST_F(EngineTest, WriteToExclusiveIsSilentUpgrade) {
  const PhysAddr a = alloc(0);
  sys_.write(0, a);
  sys_.flush_line(a);
  sys_.read(0, a);  // E
  const AccessResult r = sys_.write(0, a);
  EXPECT_DOUBLE_EQ(r.ns, sys_.timing().l1_hit);
  EXPECT_EQ(l1_entry(0, a)->state, Mesif::kModified);
  // The L3 still says Exclusive — it was not told.
  EXPECT_EQ(l3_entry(0, a)->state, Mesif::kExclusive);
}

TEST_F(EngineTest, FlushLineWritesBackDirtyData) {
  const PhysAddr a = alloc(0);
  sys_.write(0, a);
  const std::uint64_t writes_before = sys_.counters().value(Ctr::kDramWrites);
  sys_.flush_line(a);
  EXPECT_EQ(sys_.counters().value(Ctr::kDramWrites), writes_before + 1);
  EXPECT_FALSE(l3_entry(0, a).has_value());
  EXPECT_FALSE(l1_entry(0, a).has_value());
}

TEST_F(EngineTest, InclusiveL3BackInvalidatesCores) {
  // Fill one L3 set past capacity and verify the victim's core copies die.
  MachineState& m = sys_.state();
  const int slices = 12;
  const unsigned assoc = m.geometry.l3_assoc;
  const std::uint64_t sets =
      m.geometry.l3_slice_bytes / (assoc * kLineSize);
  // Find many lines mapping to slice 0, set 0 of node 0.
  std::vector<PhysAddr> lines;
  const MemRegion region = sys_.alloc_on_node(0, (assoc + 2) * sets * slices * 64 * 4);
  for (LineAddr line = region.first_line();
       line < region.first_line() + region.line_count() && lines.size() < assoc + 1;
       ++line) {
    if (m.slice_for(0, line) == 0 && (line & (sets - 1)) == 0) {
      lines.push_back(addr_of(line));
    }
  }
  ASSERT_EQ(lines.size(), assoc + 1);
  for (PhysAddr addr : lines) sys_.write(0, addr);
  // Exactly one line fell out of the 20-way L3 set; the inclusive design
  // requires that its core copies died with it and that the dirty data was
  // written back to memory.
  std::size_t l3_resident = 0;
  for (PhysAddr addr : lines) {
    if (l3_entry(0, addr).has_value()) {
      ++l3_resident;
    } else {
      EXPECT_FALSE(l1_entry(0, addr).has_value());
      EXPECT_FALSE(l2_entry(0, addr).has_value());
    }
  }
  EXPECT_EQ(l3_resident, assoc);
  EXPECT_GE(sys_.counters().value(Ctr::kL3Evictions), 1u);
  EXPECT_GE(sys_.counters().value(Ctr::kDramWrites), 1u);
}

TEST_F(EngineTest, SourceCountersClassifyLoads) {
  const PhysAddr local = alloc(0);
  const PhysAddr remote = alloc(1);
  sys_.read(0, local);
  sys_.read(0, remote);
  EXPECT_EQ(sys_.counters().value(Ctr::kLoadsLocalDram), 1u);
  EXPECT_EQ(sys_.counters().value(Ctr::kLoadsRemoteDram), 1u);
  sys_.read(0, local);
  EXPECT_EQ(sys_.counters().value(Ctr::kLoadsL1Hit), 1u);
}

}  // namespace
}  // namespace hsw
