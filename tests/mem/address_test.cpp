#include "mem/address.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

TEST(Address, LineConversionRoundTrip) {
  const PhysAddr addr = 0x1234567890ull;
  EXPECT_EQ(addr_of(line_of(addr)), addr & ~(kLineSize - 1));
  EXPECT_EQ(line_of(addr_of(42)), 42u);
}

TEST(AddressSpace, EncodesHomeNode) {
  AddressSpace space;
  for (int node = 0; node < 4; ++node) {
    const MemRegion region = space.alloc(node, 4096);
    EXPECT_EQ(home_node_of(region.base), node);
    EXPECT_EQ(home_node_of_line(region.first_line()), node);
    EXPECT_EQ(home_node_of(region.base + region.bytes - 1), node);
  }
}

TEST(AddressSpace, RegionsDoNotOverlap) {
  AddressSpace space;
  const MemRegion a = space.alloc(0, 4096);
  const MemRegion b = space.alloc(0, 4096);
  EXPECT_GE(b.base, a.base + a.bytes);
  EXPECT_FALSE(a.contains(b.base));
  EXPECT_TRUE(a.contains(a.base + 100));
}

TEST(AddressSpace, RoundsUpToLines) {
  AddressSpace space;
  const MemRegion region = space.alloc(0, 65);
  EXPECT_EQ(region.bytes, 2 * kLineSize);
  EXPECT_EQ(region.line_count(), 2u);
}

TEST(AddressSpace, RejectsBadNode) {
  AddressSpace space;
  EXPECT_THROW(space.alloc(-1, 64), std::out_of_range);
  EXPECT_THROW(space.alloc(8, 64), std::out_of_range);
}

TEST(AddressSpace, ResetReusesAddresses) {
  AddressSpace space;
  const MemRegion a = space.alloc(1, 4096);
  space.reset();
  const MemRegion b = space.alloc(1, 4096);
  EXPECT_EQ(a.base, b.base);
}

TEST(MemRegion, AddrAt) {
  AddressSpace space;
  const MemRegion region = space.alloc(2, 4096);
  EXPECT_EQ(region.addr_at(0), region.base);
  EXPECT_EQ(region.addr_at(128), region.base + 128);
}

}  // namespace
}  // namespace hsw
