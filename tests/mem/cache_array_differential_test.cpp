// Differential property test: the SoA CacheArray against the frozen AoS
// reference (tests/support/legacy_cache_array.h).
//
// The SoA rewrite re-laid the metadata into parallel stripes and made the
// tag scan branch-free; none of that may change *behaviour*.  Randomized
// interleavings of lookup / peek / contains / insert / erase / flush /
// metadata writes are replayed against both arrays, and every observable —
// hit/miss, returned metadata, valid counts, the replacement-victim preview,
// and the exact victim sequence — must match, across associativities 1..16
// and both replacement policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "mem/cache_array.h"
#include "support/legacy_cache_array.h"
#include "support/test_seed.h"
#include "util/rng.h"

namespace hsw {
namespace {

bool same_entry(const CacheEntry& a, const CacheEntry& b) {
  return a.line == b.line && a.state == b.state &&
         a.core_valid == b.core_valid && a.payload == b.payload;
}

Mesif random_valid_state(Xoshiro256& rng) {
  static constexpr Mesif kStates[] = {Mesif::kModified, Mesif::kExclusive,
                                      Mesif::kShared, Mesif::kForward};
  return kStates[rng() % 4];
}

// Drives both arrays through `ops` random operations and checks every
// observable after every step.
void run_differential(unsigned assoc, Replacement replacement,
                      std::uint64_t seed) {
  const std::size_t sets = 8;
  const std::uint64_t capacity = sets * assoc * kLineSize;
  CacheArray soa(capacity, assoc, replacement);
  hswtest::LegacyCacheArray aos(capacity, assoc, replacement);

  // 4x the line count of the array: plenty of conflict misses.
  const LineAddr address_space = 4 * sets * assoc;
  Xoshiro256 rng(seed ^ hswtest::seed_override());

  for (int op = 0; op < 4000; ++op) {
    const LineAddr line = rng() % address_space;
    switch (rng() % 8) {
      case 0:    // touching lookup
      case 1: {  // (twice as likely: the dominant production op)
        CacheArray::Ref ref = soa.lookup(line);
        CacheEntry* legacy = aos.lookup(line);
        ASSERT_EQ(static_cast<bool>(ref), legacy != nullptr);
        if (ref) {
          ASSERT_TRUE(same_entry(ref.entry(), *legacy));
        }
        break;
      }
      case 2: {  // non-touching lookup (must not perturb recency)
        CacheArray::Ref ref = soa.lookup(line, /*touch=*/false);
        CacheEntry* legacy = aos.lookup(line, /*touch=*/false);
        ASSERT_EQ(static_cast<bool>(ref), legacy != nullptr);
        if (ref) {
          ASSERT_TRUE(same_entry(ref.entry(), *legacy));
        }
        break;
      }
      case 3: {  // peek + contains
        const std::optional<CacheEntry> entry = soa.peek(line);
        const CacheEntry* legacy = aos.peek(line);
        ASSERT_EQ(entry.has_value(), legacy != nullptr);
        if (entry) {
          ASSERT_TRUE(same_entry(*entry, *legacy));
        }
        ASSERT_EQ(soa.contains(line), aos.contains(line));
        break;
      }
      case 4: {  // insert-if-absent; victims must agree exactly
        if (soa.contains(line)) break;
        // The victim preview must agree with what insert then evicts.
        const std::optional<CacheEntry> preview = soa.replacement_victim(line);
        const CacheEntry* legacy_preview = aos.replacement_victim(line);
        ASSERT_EQ(preview.has_value(), legacy_preview != nullptr);
        if (preview) {
          ASSERT_TRUE(same_entry(*preview, *legacy_preview));
        }

        const Mesif state = random_valid_state(rng);
        CacheArray::InsertResult ins = soa.insert(line, state);
        hswtest::LegacyCacheArray::InsertResult legacy = aos.insert(line, state);
        ASSERT_EQ(ins.victim.has_value(), legacy.victim.has_value());
        if (ins.victim) {
          ASSERT_TRUE(same_entry(*ins.victim, *legacy.victim));
        }
        break;
      }
      case 5: {  // erase
        const std::optional<CacheEntry> prior = soa.erase(line);
        const std::optional<CacheEntry> legacy_prior = aos.erase(line);
        ASSERT_EQ(prior.has_value(), legacy_prior.has_value());
        if (prior) {
          ASSERT_TRUE(same_entry(*prior, *legacy_prior));
        }
        break;
      }
      case 6: {  // metadata writes through the hit handle
        CacheArray::Ref ref = soa.lookup(line);
        CacheEntry* legacy = aos.lookup(line);
        ASSERT_EQ(static_cast<bool>(ref), legacy != nullptr);
        if (ref) {
          const Mesif state = random_valid_state(rng);
          const auto cv = static_cast<std::uint32_t>(rng() & 0x3ffff);
          const auto payload = static_cast<std::uint8_t>(rng());
          ref.state() = state;
          ref.core_valid() = cv;
          ref.payload() = payload;
          legacy->state = state;
          legacy->core_valid = cv;
          legacy->payload = payload;
        }
        break;
      }
      case 7: {  // rare flush: evicted sets must be identical
        if (rng() % 50 != 0) break;
        std::vector<CacheEntry> soa_evicted;
        std::vector<CacheEntry> aos_evicted;
        soa.flush([&](const CacheEntry& e) { soa_evicted.push_back(e); });
        aos.flush([&](const CacheEntry& e) { aos_evicted.push_back(e); });
        // Walk orders differ (bitmask walk vs serial scan); compare as sets.
        auto by_line = [](const CacheEntry& a, const CacheEntry& b) {
          return a.line < b.line;
        };
        std::sort(soa_evicted.begin(), soa_evicted.end(), by_line);
        std::sort(aos_evicted.begin(), aos_evicted.end(), by_line);
        ASSERT_EQ(soa_evicted.size(), aos_evicted.size());
        for (std::size_t i = 0; i < soa_evicted.size(); ++i) {
          ASSERT_TRUE(same_entry(soa_evicted[i], aos_evicted[i]));
        }
        break;
      }
    }
    ASSERT_EQ(soa.valid_count(), aos.valid_count()) << "op " << op;
  }

  // Final structural agreement: census vs a manual walk of the legacy array.
  const CacheArray::Census census = soa.census();
  ASSERT_EQ(census.valid, aos.valid_count());
  for (LineAddr line = 0; line < address_space; ++line) {
    ASSERT_EQ(soa.contains(line), aos.contains(line)) << "line " << line;
  }
}

TEST(CacheArrayDifferential, LruMatchesLegacyAcrossAssociativities) {
  for (unsigned assoc : {1u, 2u, 3u, 4u, 8u, 16u}) {
    SCOPED_TRACE("assoc " + std::to_string(assoc));
    run_differential(assoc, Replacement::kLru, 0x1234 + assoc);
  }
}

TEST(CacheArrayDifferential, TreePlruMatchesLegacyAcrossAssociativities) {
  // PLRU requires power-of-two associativity.
  for (unsigned assoc : {1u, 2u, 4u, 8u, 16u}) {
    SCOPED_TRACE("assoc " + std::to_string(assoc));
    run_differential(assoc, Replacement::kTreePlru, 0x9876 + assoc);
  }
}

}  // namespace
}  // namespace hsw
