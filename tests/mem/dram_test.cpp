#include "mem/dram.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

TEST(DramChannel, FirstAccessOpensPage) {
  DramChannel channel;
  EXPECT_EQ(channel.access(0), RowBufferOutcome::kEmpty);
}

TEST(DramChannel, SequentialLinesHitOpenRow) {
  DramChannel channel;
  channel.access(0);
  const std::uint64_t lines_per_row = channel.geometry().lines_per_row();
  for (std::uint64_t l = 1; l < lines_per_row; ++l) {
    EXPECT_EQ(channel.access(l), RowBufferOutcome::kHit) << l;
  }
}

TEST(DramChannel, NextRowSameBankConflicts) {
  DramChannel channel;
  const DramGeometry& g = channel.geometry();
  const std::uint64_t lines_per_row = g.lines_per_row();
  channel.access(0);  // row 0, bank 0
  // Row `banks` lands on bank 0 again with a different row.
  EXPECT_EQ(channel.access(lines_per_row * g.banks), RowBufferOutcome::kConflict);
}

TEST(DramChannel, AdjacentRowsMapToDifferentBanks) {
  DramChannel channel;
  const std::uint64_t lines_per_row = channel.geometry().lines_per_row();
  EXPECT_EQ(channel.access(0), RowBufferOutcome::kEmpty);
  EXPECT_EQ(channel.access(lines_per_row), RowBufferOutcome::kEmpty);
  // Both rows stay open simultaneously.
  EXPECT_EQ(channel.access(1), RowBufferOutcome::kHit);
  EXPECT_EQ(channel.access(lines_per_row + 1), RowBufferOutcome::kHit);
}

TEST(DramChannel, CloseAllPrecharges) {
  DramChannel channel;
  channel.access(0);
  channel.close_all();
  EXPECT_EQ(channel.access(0), RowBufferOutcome::kEmpty);
}

TEST(DramChannel, OpenPageCoverage) {
  // 16 banks x 8 KiB rows = 128 KiB of simultaneously open rows per channel;
  // with 2 channels per COD node that is the paper's footnote-7 observation
  // that sub-256 KiB sets behave differently.
  DramChannel channel;
  const DramGeometry& g = channel.geometry();
  EXPECT_EQ(g.banks * g.row_bytes, 128u * 1024);
}

TEST(Directory, DefaultsToRemoteInvalid) {
  DirectoryStore dir;
  EXPECT_EQ(dir.get(123), DirState::kRemoteInvalid);
  EXPECT_EQ(dir.tracked_lines(), 0u);
}

TEST(Directory, SetAndGet) {
  DirectoryStore dir;
  EXPECT_TRUE(dir.set(1, DirState::kSnoopAll));
  EXPECT_EQ(dir.get(1), DirState::kSnoopAll);
  EXPECT_TRUE(dir.set(1, DirState::kShared));
  EXPECT_EQ(dir.get(1), DirState::kShared);
  EXPECT_EQ(dir.tracked_lines(), 1u);
}

TEST(Directory, RemoteInvalidErasesTracking) {
  DirectoryStore dir;
  dir.set(1, DirState::kSnoopAll);
  EXPECT_TRUE(dir.set(1, DirState::kRemoteInvalid));
  EXPECT_EQ(dir.tracked_lines(), 0u);
  // Clearing an untracked line is a no-op.
  EXPECT_FALSE(dir.set(2, DirState::kRemoteInvalid));
}

}  // namespace
}  // namespace hsw
