#include "mem/cache_array.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "util/rng.h"

namespace hsw {
namespace {

// A tiny 4-set, 2-way array: capacity = 4 * 2 * 64 = 512 B.
CacheArray tiny() { return CacheArray(512, 2); }

TEST(CacheArray, RejectsBadGeometry) {
  EXPECT_THROW(CacheArray(100, 2), std::invalid_argument);
  EXPECT_THROW(CacheArray(0, 2), std::invalid_argument);
  EXPECT_THROW(CacheArray(3 * 2 * 64, 2), std::invalid_argument);  // 3 sets
  EXPECT_NO_THROW(CacheArray(512, 2));
  // PLRU needs power-of-two associativity (the 20-way L3 must use LRU).
  EXPECT_THROW(CacheArray(64 * 4 * 20, 20, Replacement::kTreePlru),
               std::invalid_argument);
  EXPECT_NO_THROW(CacheArray(1024, 4, Replacement::kTreePlru));
}

TEST(CacheArray, InsertAndLookup) {
  CacheArray cache = tiny();
  EXPECT_FALSE(cache.lookup(7));
  auto ins = cache.insert(7, Mesif::kExclusive);
  EXPECT_FALSE(ins.victim.has_value());
  ASSERT_TRUE(cache.lookup(7));
  EXPECT_EQ(cache.lookup(7).state(), Mesif::kExclusive);
  EXPECT_EQ(cache.valid_count(), 1u);
}

TEST(CacheArray, EraseReturnsPriorEntry) {
  CacheArray cache = tiny();
  cache.insert(5, Mesif::kModified);
  auto prior = cache.erase(5);
  ASSERT_TRUE(prior.has_value());
  EXPECT_EQ(prior->state, Mesif::kModified);
  EXPECT_FALSE(cache.contains(5));
  EXPECT_FALSE(cache.erase(5).has_value());
}

TEST(CacheArray, LruEvictsLeastRecentlyUsed) {
  CacheArray cache = tiny();  // sets indexed by line % 4
  cache.insert(0, Mesif::kExclusive);   // set 0
  cache.insert(4, Mesif::kExclusive);   // set 0 -> full
  cache.lookup(0);                      // refresh line 0
  auto ins = cache.insert(8, Mesif::kExclusive);  // set 0 -> evict 4
  ASSERT_TRUE(ins.victim.has_value());
  EXPECT_EQ(ins.victim->line, 4u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(8));
}

TEST(CacheArray, UntouchedLookupDoesNotRefresh) {
  CacheArray cache = tiny();
  cache.insert(0, Mesif::kExclusive);
  cache.insert(4, Mesif::kExclusive);
  cache.lookup(0, /*touch=*/false);  // must NOT refresh
  auto ins = cache.insert(8, Mesif::kExclusive);
  ASSERT_TRUE(ins.victim.has_value());
  EXPECT_EQ(ins.victim->line, 0u);
}

TEST(CacheArray, VictimPreviewMatchesEviction) {
  CacheArray cache = tiny();
  EXPECT_FALSE(cache.replacement_victim(0).has_value());  // set not full
  cache.insert(0, Mesif::kExclusive);
  cache.insert(4, Mesif::kExclusive);
  const std::optional<CacheEntry> victim = cache.replacement_victim(0);
  ASSERT_TRUE(victim.has_value());
  const LineAddr predicted = victim->line;
  auto ins = cache.insert(8, Mesif::kExclusive);
  ASSERT_TRUE(ins.victim.has_value());
  EXPECT_EQ(ins.victim->line, predicted);
}

TEST(CacheArray, FlushInvokesCallbackForValidEntries) {
  CacheArray cache = tiny();
  cache.insert(1, Mesif::kModified);
  cache.insert(2, Mesif::kShared);
  std::set<LineAddr> flushed;
  cache.flush([&](const CacheEntry& e) { flushed.insert(e.line); });
  EXPECT_EQ(flushed, (std::set<LineAddr>{1, 2}));
  EXPECT_EQ(cache.valid_count(), 0u);
}

TEST(CacheArray, CapacityWorksAtScale) {
  // L3-slice geometry: 2.5 MiB, 20-way.
  CacheArray slice(2560 * 1024, 20);
  EXPECT_EQ(slice.set_count(), 2048u);
  for (LineAddr line = 0; line < slice.capacity_bytes() / kLineSize; ++line) {
    slice.insert(line, Mesif::kExclusive);
  }
  EXPECT_EQ(slice.valid_count(), slice.capacity_bytes() / kLineSize);
  // One more insert in any set must evict exactly one line.
  auto ins = slice.insert(1u << 30, Mesif::kExclusive);
  EXPECT_TRUE(ins.victim.has_value());
  EXPECT_EQ(slice.valid_count(), slice.capacity_bytes() / kLineSize);
}

TEST(CacheArrayPlru, TouchedWaySurvives) {
  CacheArray cache(64 * 4 * 8, 8, Replacement::kTreePlru);  // 4 sets, 8-way
  for (LineAddr i = 0; i < 8; ++i) cache.insert(i * 4, Mesif::kExclusive);
  cache.lookup(0);  // make line 0 most recently used
  auto ins = cache.insert(8 * 4, Mesif::kExclusive);
  ASSERT_TRUE(ins.victim.has_value());
  EXPECT_NE(ins.victim->line, 0u);
  EXPECT_TRUE(cache.contains(0));
}

TEST(CacheArrayPlru, BehavesSanelyUnderRandomWorkload) {
  CacheArray plru(64 * 16 * 8, 8, Replacement::kTreePlru);
  Xoshiro256 rng(3);
  std::size_t hits = 0;
  const std::uint64_t lines = 64;  // half the capacity: should mostly hit
  for (int i = 0; i < 20000; ++i) {
    const LineAddr line = rng.bounded(lines);
    if (plru.lookup(line)) {
      ++hits;
    } else {
      plru.insert(line, Mesif::kExclusive);
    }
  }
  EXPECT_GT(hits, 19000u);
}

TEST(CacheArray, DirectMappedEvictsResidentOnEveryConflict) {
  CacheArray cache(4 * 64, 1);  // 4 sets, 1 way: fully direct-mapped
  EXPECT_EQ(cache.associativity(), 1u);
  auto first = cache.insert(0, Mesif::kExclusive);
  EXPECT_FALSE(first.victim.has_value());
  // Same set, different tag: the resident line must always be the victim.
  for (LineAddr line = 4; line <= 40; line += 4) {
    auto ins = cache.insert(line, Mesif::kShared);
    ASSERT_TRUE(ins.victim.has_value());
    EXPECT_EQ(ins.victim->line, line - 4);
    EXPECT_FALSE(cache.contains(line - 4));
    EXPECT_TRUE(cache.contains(line));
    EXPECT_EQ(cache.valid_count(), 1u);
  }
  // A different set is untouched by the conflict churn.
  cache.insert(1, Mesif::kModified);
  EXPECT_EQ(cache.valid_count(), 2u);
}

TEST(CacheArray, FullSetEvictionCyclesKeepExactlyOneVictimPerInsert) {
  CacheArray cache = tiny();  // 4 sets, 2 ways
  cache.insert(0, Mesif::kExclusive);
  cache.insert(4, Mesif::kExclusive);
  // 50 conflicting inserts into the full set: each one must evict exactly
  // the LRU resident, never an invalid way, never more than one line.
  LineAddr expected_victim = 0;
  for (LineAddr line = 8; line < 8 + 50 * 4; line += 4) {
    auto ins = cache.insert(line, Mesif::kExclusive);
    ASSERT_TRUE(ins.victim.has_value()) << "line " << line;
    EXPECT_EQ(ins.victim->line, expected_victim);
    EXPECT_EQ(cache.valid_count(), 2u);
    expected_victim = line - 4;  // the other resident becomes LRU
  }
}

TEST(CacheArray, EraseFreesTheWayForTheNextInsert) {
  CacheArray cache = tiny();
  cache.insert(0, Mesif::kExclusive);
  cache.insert(4, Mesif::kExclusive);  // set 0 full
  ASSERT_TRUE(cache.erase(0).has_value());
  // With a free way the set must not report a replacement victim, and the
  // next insert must use the freed way instead of evicting line 4.
  EXPECT_FALSE(cache.replacement_victim(0).has_value());
  auto ins = cache.insert(8, Mesif::kExclusive);
  EXPECT_FALSE(ins.victim.has_value());
  EXPECT_TRUE(cache.contains(4));
  EXPECT_TRUE(cache.contains(8));
}

TEST(CacheArray, FlushInterleavedWithLookupsAndReinserts) {
  CacheArray cache = tiny();
  for (int cycle = 0; cycle < 4; ++cycle) {
    // Repopulate every set fully, with lookups refreshing half the lines.
    for (LineAddr line = 0; line < 8; ++line) {
      EXPECT_FALSE(cache.lookup(line)) << "cycle " << cycle;
      auto ins = cache.insert(line, Mesif::kModified);
      EXPECT_FALSE(ins.victim.has_value()) << "cycle " << cycle;
      if (line % 2 == 0) {
        EXPECT_TRUE(cache.lookup(line));
      }
    }
    EXPECT_EQ(cache.valid_count(), 8u);
    std::size_t flushed = 0;
    cache.flush([&](const CacheEntry& e) {
      ++flushed;
      EXPECT_EQ(e.state, Mesif::kModified);
    });
    EXPECT_EQ(flushed, 8u);
    EXPECT_EQ(cache.valid_count(), 0u);
  }
}

TEST(CacheArray, ValidWayMaskStaysCoherentAcrossInsertFlushCycles) {
  // If the per-set valid-way bitmask went stale, an insert after a flush
  // would either evict a phantom resident or silently overwrite a valid
  // way.  Exercise full fill -> flush -> refill with disjoint tags.
  CacheArray cache = tiny();
  for (int cycle = 0; cycle < 6; ++cycle) {
    const LineAddr tag_base = static_cast<LineAddr>(cycle) * 64;
    for (LineAddr i = 0; i < 8; ++i) {
      auto ins = cache.insert(tag_base + i, Mesif::kExclusive);
      EXPECT_FALSE(ins.victim.has_value())
          << "phantom victim in cycle " << cycle << ", line " << i;
    }
    // Now every set is full again: one more insert per set must evict.
    for (LineAddr set = 0; set < 4; ++set) {
      auto ins = cache.insert(tag_base + 32 + set, Mesif::kExclusive);
      EXPECT_TRUE(ins.victim.has_value());
    }
    cache.flush([](const CacheEntry&) {});
    EXPECT_EQ(cache.valid_count(), 0u);
    for (LineAddr i = 0; i < 8; ++i) {
      EXPECT_FALSE(cache.contains(tag_base + i));
    }
  }
}

// The valid-mask front door: peek/contains/lookup on an empty set must
// miss from the mask alone, and a stale tag left in the tag stripe by
// erase/flush must never match (the mask, not the tag, is the authority).
TEST(CacheArray, EmptySetFastPathMissesAndIgnoresStaleTags) {
  CacheArray cache = tiny();
  // Entirely empty array: every probe misses.
  for (LineAddr line = 0; line < 16; ++line) {
    EXPECT_FALSE(cache.contains(line));
    EXPECT_FALSE(cache.peek(line).has_value());
    EXPECT_FALSE(cache.lookup(line));
  }
  // Erase leaves the tag bytes in the stripe; the probe must still miss.
  cache.insert(5, Mesif::kModified);
  ASSERT_TRUE(cache.contains(5));
  cache.erase(5);
  EXPECT_FALSE(cache.contains(5));
  EXPECT_FALSE(cache.peek(5).has_value());
  EXPECT_FALSE(cache.lookup(5));
  // Same through flush, including sets that were full.
  cache.insert(1, Mesif::kExclusive);
  cache.insert(1 + 4, Mesif::kShared);  // same set, second way
  cache.flush([](const CacheEntry&) {});
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(1 + 4));
  EXPECT_EQ(cache.valid_count(), 0u);
  // And the array is fully usable afterwards.
  cache.insert(1, Mesif::kForward);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.peek(1)->state, Mesif::kForward);
}

TEST(CacheArray, PayloadAndCoreValidPersist) {
  CacheArray cache = tiny();
  auto ins = cache.insert(3, Mesif::kExclusive);
  ins.entry.core_valid() = 0b1010;
  ins.entry.payload() = 0x5a;
  EXPECT_EQ(cache.lookup(3).core_valid(), 0b1010u);
  EXPECT_EQ(cache.lookup(3).payload(), 0x5a);
}

}  // namespace
}  // namespace hsw
