#include "util/units.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

TEST(Units, Constants) {
  EXPECT_EQ(kib(1), 1024u);
  EXPECT_EQ(mib(2), 2u * 1024 * 1024);
  EXPECT_EQ(gib(1), 1024ull * 1024 * 1024);
}

TEST(Units, GbpsIsBytesPerNanosecond) {
  EXPECT_DOUBLE_EQ(gbps(64.0, 2.0), 32.0);
  EXPECT_DOUBLE_EQ(gbps(100.0, 0.0), 0.0);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(kib(16)), "16 KiB");
  EXPECT_EQ(format_bytes(mib(2) + mib(1) / 2), "2.50 MiB");
  EXPECT_EQ(format_bytes(gib(1)), "1 GiB");
}

TEST(Units, FormatNs) {
  EXPECT_EQ(format_ns(1.6), "1.60 ns");
  EXPECT_EQ(format_ns(21.2), "21.2 ns");
  EXPECT_EQ(format_ns(146.0), "146 ns");
}

TEST(Units, ParseBytesPlain) {
  EXPECT_EQ(parse_bytes("64"), 64u);
  EXPECT_EQ(parse_bytes("  128  "), 128u);
}

TEST(Units, ParseBytesSuffixes) {
  EXPECT_EQ(parse_bytes("64KiB"), kib(64));
  EXPECT_EQ(parse_bytes("64k"), kib(64));
  EXPECT_EQ(parse_bytes("64 KB"), kib(64));
  EXPECT_EQ(parse_bytes("2.5MiB"), mib(2) + kib(512));
  EXPECT_EQ(parse_bytes("1g"), gib(1));
}

TEST(Units, ParseBytesRejectsGarbage) {
  EXPECT_FALSE(parse_bytes("").has_value());
  EXPECT_FALSE(parse_bytes("abc").has_value());
  EXPECT_FALSE(parse_bytes("12parsecs").has_value());
  EXPECT_FALSE(parse_bytes("-5KiB").has_value());
}

TEST(Units, ParseBytesRejectsOverflow) {
  EXPECT_FALSE(parse_bytes("99999999999GiB").has_value());
}

}  // namespace
}  // namespace hsw
