#include "util/cli.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace hsw {
namespace {

TEST(CommandLine, ParsesAllTypes) {
  std::string s = "default";
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
  std::uint64_t bytes = 0;
  CommandLine cli("test");
  cli.add_string("name", &s, "");
  cli.add_int("count", &i, "");
  cli.add_double("ratio", &d, "");
  cli.add_bool("flag", &b, "");
  cli.add_bytes("size", &bytes, "");

  const char* argv[] = {"prog", "--name", "x",    "--count", "42",
                        "--ratio", "2.5", "--flag", "--size",  "64KiB"};
  ASSERT_TRUE(cli.parse(10, argv));
  EXPECT_EQ(s, "x");
  EXPECT_EQ(i, 42);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(bytes, kib(64));
}

TEST(CommandLine, EqualsSyntax) {
  std::int64_t i = 0;
  CommandLine cli("test");
  cli.add_int("n", &i, "");
  const char* argv[] = {"prog", "--n=7"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(i, 7);
}

TEST(CommandLine, NegatedBool) {
  bool b = true;
  CommandLine cli("test");
  cli.add_bool("verbose", &b, "");
  const char* argv[] = {"prog", "--no-verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(b);
}

TEST(CommandLine, UnknownFlagFails) {
  CommandLine cli("test");
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CommandLine, MissingValueFails) {
  std::int64_t i = 0;
  CommandLine cli("test");
  cli.add_int("n", &i, "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CommandLine, BadValueFails) {
  std::int64_t i = 0;
  CommandLine cli("test");
  cli.add_int("n", &i, "");
  const char* argv[] = {"prog", "--n", "seven"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(CommandLine, PositionalArguments) {
  CommandLine cli("test");
  const char* argv[] = {"prog", "one", "two"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"one", "two"}));
}

TEST(CommandLine, ParseStatusDistinguishesHelpFromErrors) {
  // Callers exit 0 on kHelp and nonzero on kError, so the two must be
  // distinguishable (a typo in a CI invocation has to fail the job).
  std::int64_t i = 0;
  {
    CommandLine cli("test");
    cli.add_int("n", &i, "");
    const char* argv[] = {"prog", "--help"};
    EXPECT_EQ(cli.parse_status(2, argv), CommandLine::ParseStatus::kHelp);
  }
  {
    CommandLine cli("test");
    cli.add_int("n", &i, "");
    const char* argv[] = {"prog", "--bogus"};
    EXPECT_EQ(cli.parse_status(2, argv), CommandLine::ParseStatus::kError);
  }
  {
    CommandLine cli("test");
    cli.add_int("n", &i, "");
    const char* argv[] = {"prog", "--n", "4"};
    EXPECT_EQ(cli.parse_status(3, argv), CommandLine::ParseStatus::kOk);
    EXPECT_EQ(i, 4);
  }
}

TEST(CommandLine, HelpContainsFlagsAndDefaults) {
  std::int64_t i = 3;
  CommandLine cli("my summary");
  cli.add_int("iterations", &i, "how many");
  const std::string help = cli.help();
  EXPECT_NE(help.find("my summary"), std::string::npos);
  EXPECT_NE(help.find("--iterations"), std::string::npos);
  EXPECT_NE(help.find("default: 3"), std::string::npos);
}

}  // namespace
}  // namespace hsw
