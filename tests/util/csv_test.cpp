#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hsw {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_ =
      (std::filesystem::temp_directory_path() / "hswsim_csv_test.csv").string();
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"size", "latency"});
    ASSERT_TRUE(csv.ok());
    csv.add_row({"16384", "1.6"});
    csv.add_row({"65536", "4.8"});
  }
  EXPECT_EQ(slurp(path_), "size,latency\n16384,1.6\n65536,4.8\n");
}

TEST_F(CsvTest, PadsAndTruncatesToHeaderWidth) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.add_row({"1"});
    csv.add_row({"1", "2", "3"});
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,\n1,2\n");
}

TEST(CsvEscape, QuotesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, UnwritablePathIsNotOk) {
  CsvWriter csv("/nonexistent-dir/x.csv", {"a"});
  EXPECT_FALSE(csv.ok());
  csv.add_row({"1"});  // must not crash
}

}  // namespace
}  // namespace hsw
