#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hsw {
namespace {

TEST(Accumulator, BasicOrderStatistics) {
  Accumulator acc;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.median(), 3.0);
}

TEST(Accumulator, PercentileInterpolates) {
  Accumulator acc;
  acc.add(0.0);
  acc.add(10.0);
  EXPECT_DOUBLE_EQ(acc.percentile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(acc.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(acc.percentile(1.0), 10.0);
}

TEST(Accumulator, MedianOfEvenCount) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.median(), 2.5);
}

TEST(Accumulator, AddAfterPercentileResorts) {
  Accumulator acc;
  acc.add(10.0);
  EXPECT_DOUBLE_EQ(acc.median(), 10.0);
  acc.add(0.0);
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.median(), 5.0);
}

TEST(Accumulator, Clear) {
  Accumulator acc;
  acc.add(1.0);
  acc.clear();
  EXPECT_TRUE(acc.empty());
}

TEST(Welford, MeanAndVariance) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, FewSamplesHaveZeroVariance) {
  Welford w;
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  w.add(42.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.mean(), 42.0);
}

TEST(Welford, MergeMatchesSequential) {
  Welford a;
  Welford b;
  Welford all;
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmpty) {
  Welford a;
  a.add(1.0);
  Welford empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

}  // namespace
}  // namespace hsw
