#include "util/table.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| beta  |    22 |"), std::string::npos);
}

TEST(Table, FirstColumnLeftAlignedOthersRight) {
  Table table({"k", "v"});
  table.add_row({"a", "1"});
  table.add_row({"long", "1234"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| a    |    1 |"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table table({"a", "b", "c"});
  table.add_row({"x"});
  EXPECT_EQ(table.rows(), 1u);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| x |   |   |"), std::string::npos);
}

TEST(Table, SeparatorEmitsRule) {
  Table table({"a"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.to_string();
  // 5 rules: top, under header, separator, bottom... plus the one above data.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Table, SetAlign) {
  Table table({"a", "b"});
  table.set_align(1, Table::Align::kLeft);
  table.add_row({"x", "1"});
  table.add_row({"y", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| x | 1  |"), std::string::npos);
}

TEST(TableCell, Precision) {
  EXPECT_EQ(cell(21.24, 1), "21.2");
  EXPECT_EQ(cell(96.4, 0), "96");
  EXPECT_EQ(cell(1.556, 2), "1.56");
}

}  // namespace
}  // namespace hsw
