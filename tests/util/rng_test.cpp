#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hsw {
namespace {

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro, BoundedCoversRange) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, BernoulliFrequency) {
  Xoshiro256 rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Xoshiro, SplitStreamsDecorrelated) {
  Xoshiro256 parent(9);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace hsw
