// ResultCache: content-addressed lookup, size-capped LRU eviction, and the
// on-disk persistence of both payloads and recency order.
#include "serve/cache.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include "gtest/gtest.h"

namespace hsw::serve {
namespace {

// A fresh, empty directory per test (removed up front so a crashed earlier
// run cannot leak state in).
std::string fresh_dir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("hswsim_cache_test_") + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

CacheConfig config_for(const std::string& dir, std::uint64_t cap) {
  CacheConfig config;
  config.dir = dir;
  config.capacity_bytes = cap;
  return config;
}

TEST(ResultCache, MissThenHitRoundTripsPayload) {
  ResultCache cache(config_for(fresh_dir("roundtrip"), 1 << 20));
  EXPECT_FALSE(cache.lookup("aaaa-bbbb").has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert("aaaa-bbbb", "{\"payload\":1}");
  const auto hit = cache.lookup("aaaa-bbbb");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "{\"payload\":1}");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), hit->size());
}

TEST(ResultCache, EvictsLeastRecentlyUsedFirst) {
  // Three 40-byte payloads fit a 100-byte cap two at a time.
  const std::string payload(40, 'x');
  ResultCache cache(config_for(fresh_dir("lru"), 100));
  cache.insert("a", payload);
  cache.insert("b", payload);
  // Touch "a" so "b" becomes the LRU entry.
  ASSERT_TRUE(cache.lookup("a").has_value());
  cache.insert("c", payload);

  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
}

TEST(ResultCache, NewestEntrySurvivesEvenOverCapacity) {
  ResultCache cache(config_for(fresh_dir("oversize"), 16));
  cache.insert("big", std::string(64, 'x'));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_TRUE(cache.lookup("big").has_value());
}

TEST(ResultCache, PersistsPayloadsAndRecencyAcrossReopen) {
  const std::string dir = fresh_dir("persist");
  const std::string payload(40, 'p');
  {
    ResultCache cache(config_for(dir, 1 << 20));
    cache.insert("older", payload);
    cache.insert("newer", payload);
    // Touch "older" so the persisted LRU order is newer -> older.
    ASSERT_TRUE(cache.lookup("older").has_value());
  }
  ResultCache reopened(config_for(dir, 100));
  EXPECT_EQ(reopened.entries(), 2u);
  const auto hit = reopened.lookup("older");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);
  // The reopened cache kept the recency order: a capacity squeeze must
  // evict "newer" (least recently used after the touch), not "older".
  reopened.insert("third", payload);
  EXPECT_FALSE(reopened.lookup("newer").has_value());
  EXPECT_TRUE(reopened.lookup("older").has_value());
}

TEST(ResultCache, VanishedPayloadFileDegradesToMiss) {
  const std::string dir = fresh_dir("vanished");
  ResultCache cache(config_for(dir, 1 << 20));
  cache.insert("gone", "payload");
  std::filesystem::remove(std::filesystem::path(dir) / "gone.json");
  EXPECT_FALSE(cache.lookup("gone").has_value());
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCache, StatsJsonCarriesVersionCountersAndLruOrder) {
  ResultCache cache(config_for(fresh_dir("stats"), 1 << 20));
  cache.insert("first", "1234");
  cache.insert("second", "12345678");
  ASSERT_TRUE(cache.lookup("second").has_value());
  ASSERT_FALSE(cache.lookup("absent").has_value());

  const std::string stats = cache.stats_json(/*pretty=*/false);
  EXPECT_NE(stats.find("\"hswsim_cache_version\":1"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"entries\":2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"bytes\":12"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"hits\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"misses\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"insertions\":2"), std::string::npos) << stats;
  // Items list LRU first: "first" was never touched after "second"'s hit.
  EXPECT_LT(stats.find("\"first\""), stats.find("\"second\"")) << stats;
}

TEST(ResultCache, WriteStatsFailsCleanlyOnBadPath) {
  ResultCache cache(config_for(fresh_dir("badstats"), 1 << 20));
  EXPECT_FALSE(cache.write_stats("/nonexistent/dir/stats.json"));
}

TEST(ResultCache, OverwriteReplacesPayloadWithoutGrowingEntries) {
  ResultCache cache(config_for(fresh_dir("overwrite"), 1 << 20));
  cache.insert("key", "old-payload");
  cache.insert("key", "new");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 3u);
  const auto hit = cache.lookup("key");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "new");
}

}  // namespace
}  // namespace hsw::serve
