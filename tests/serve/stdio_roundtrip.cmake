# End-to-end NDJSON round trip over the hswsim-serve binary's --stdio
# transport: the same 2-spec batch runs in two daemon processes sharing one
# cache directory.  Run 1 simulates (cached=false); run 2 must be served
# 100% from the cache (cached=true) with byte-identical payload lines, and
# its shutdown stats dump must show two hits and no misses.
#
# Usage: cmake -DSERVE=<hswsim-serve-binary> -DOUT_DIR=<dir>
#              -P stdio_roundtrip.cmake

foreach(var SERVE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "stdio_roundtrip.cmake: missing -D${var}=...")
  endif()
endforeach()

set(work "${OUT_DIR}/stdio_roundtrip")
file(REMOVE_RECURSE "${work}")
file(MAKE_DIRECTORY "${work}")

file(WRITE "${work}/requests.ndjson"
  "{\"op\":\"submit\",\"specs\":[{\"hswsim_spec_version\":1,\"kind\":\"latency\",\"sizes\":[16384],\"max_measured_lines\":256},{\"hswsim_spec_version\":1,\"kind\":\"bandwidth\",\"sizes\":[1048576]}]}\n{\"op\":\"shutdown\"}\n")

function(run_serve round)
  execute_process(
    COMMAND "${SERVE}" --stdio --cache-dir "${work}/cache"
            --stats "${work}/stats${round}.json"
    INPUT_FILE "${work}/requests.ndjson"
    OUTPUT_FILE "${work}/events${round}.ndjson"
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "round ${round}: hswsim-serve exited ${rc}\n${err}")
  endif()
endfunction()

run_serve(1)
run_serve(2)

# Extract the result lines (strip progress heartbeats, which legitimately
# differ in pacing) from each round.
foreach(round 1 2)
  file(STRINGS "${work}/events${round}.ndjson" lines)
  set(results "")
  foreach(line IN LISTS lines)
    if(line MATCHES "\"event\":\"result\"")
      string(APPEND results "${line}\n")
    endif()
    if(line MATCHES "\"event\":\"error\"")
      message(FATAL_ERROR "round ${round} emitted an error event: ${line}")
    endif()
  endforeach()
  file(WRITE "${work}/results${round}.txt" "${results}")
endforeach()

file(READ "${work}/results1.txt" round1)
file(READ "${work}/results2.txt" round2)

# Round 1 simulated both specs; round 2 hit the cache for both.
string(REGEX MATCHALL "\"cached\":false" fresh "${round1}")
list(LENGTH fresh fresh_count)
if(NOT fresh_count EQUAL 2)
  message(FATAL_ERROR
    "round 1: expected 2 fresh results, saw ${fresh_count}:\n${round1}")
endif()
string(REGEX MATCHALL "\"cached\":true" hits "${round2}")
list(LENGTH hits hit_count)
if(NOT hit_count EQUAL 2)
  message(FATAL_ERROR
    "round 2: expected 2 cached results (100% hit rate), saw "
    "${hit_count}:\n${round2}")
endif()

# Byte identity: apart from the cached flag flipping, the result lines —
# payloads included — must match exactly.
string(REPLACE "\"cached\":false" "\"cached\":true" round1_as_cached
  "${round1}")
if(NOT round1_as_cached STREQUAL round2)
  message(FATAL_ERROR
    "cached results are not byte-identical to the fresh ones\n"
    "round 1 (fresh):\n${round1}\nround 2 (cached):\n${round2}")
endif()

# Round 2's shutdown stats dump: two hits, no misses.
file(READ "${work}/stats2.json" stats)
if(NOT stats MATCHES "\"hits\": 2")
  message(FATAL_ERROR "round 2 stats do not show 2 hits:\n${stats}")
endif()
if(NOT stats MATCHES "\"misses\": 0")
  message(FATAL_ERROR "round 2 stats do not show 0 misses:\n${stats}")
endif()
