// ExperimentSpec: round-trip, canonical-hash stability, and the cache-key
// contract (any spec field, any timing constant, and the protocol family
// each perturb the key).
#include <map>
#include <set>
#include <string>
#include <vector>

#include "coh/timing.h"
#include "core/experiment.h"
#include "gtest/gtest.h"

namespace hsw {
namespace {

ExperimentSpec busy_spec() {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::kBandwidth;
  spec.mode = SnoopMode::kCod;
  spec.protocol = Protocol::kMesi;
  spec.engine = BandwidthEngine::kSimulated;
  spec.seed = 42;
  spec.sample_ratio = 0.25;
  spec.sample_seed = 7;
  spec.core = 3;
  spec.write = true;
  spec.width = bw::LoadWidth::kSse128;
  spec.owner_core = 13;
  spec.memory_node = 2;
  spec.state = Mesif::kShared;
  spec.sharers = {1, 14};
  spec.sizes = {16384, 1048576};
  spec.max_measured_lines = 512;
  return spec;
}

TEST(ExperimentSpec, PrettyJsonRoundTripsExactly) {
  const ExperimentSpec spec = busy_spec();
  std::string error;
  const auto parsed = spec_from_json(spec.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(spec, *parsed);
}

TEST(ExperimentSpec, CanonicalRoundTripsExactly) {
  const ExperimentSpec spec = busy_spec();
  std::string error;
  const auto parsed = spec_from_json(spec.canonical(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(spec, *parsed);
  EXPECT_EQ(spec.canonical(), parsed->canonical());
}

TEST(ExperimentSpec, DefaultSpecRoundTrips) {
  const ExperimentSpec spec;
  std::string error;
  const auto parsed = spec_from_json(spec.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(spec, *parsed);
}

TEST(ExperimentSpec, OmittedFieldsKeepDefaults) {
  std::string error;
  const auto parsed = spec_from_json(
      "{\"hswsim_spec_version\": 1, \"kind\": \"latency\"}", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(ExperimentSpec{}, *parsed);
  EXPECT_EQ(std::vector<std::uint64_t>{64 * 1024}, parsed->sizes);
}

// The hash is over the *parsed* document's canonical form, so key order and
// whitespace cannot reach it.
TEST(ExperimentSpec, HashIndependentOfKeyOrderAndWhitespace) {
  const ExperimentSpec spec = busy_spec();
  const std::string reordered =
      "{ \"sizes\" : [ 16384 , 1048576 ],\n"
      "  \"max_measured_lines\": 512,\n"
      "  \"placement\": { \"state\": \"S\", \"sharers\": [1, 14],\n"
      "                   \"memory_node\": 2, \"owner_core\": 13 },\n"
      "  \"width\": \"sse128\", \"write\": true, \"core\": 3,\n"
      "  \"sample_seed\": 7, \"sample_ratio\": 0.25, \"seed\": 42,\n"
      "  \"engine\": \"simulated\", \"protocol\": \"mesi\",\n"
      "  \"mode\": \"cod\", \"kind\": \"bandwidth\",\n"
      "  \"hswsim_spec_version\": 1 }";
  std::string error;
  const auto parsed = spec_from_json(reordered, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(spec, *parsed);
  EXPECT_EQ(spec.hash(), parsed->hash());
}

// Every spec field participates in the hash: perturbing each one (and only
// it) must produce a distinct value.
TEST(ExperimentSpec, EveryFieldPerturbsTheHash) {
  const ExperimentSpec base = busy_spec();
  std::vector<ExperimentSpec> variants(16, base);
  variants[0].kind = ExperimentKind::kLatency;
  variants[1].mode = SnoopMode::kHomeSnoop;
  variants[2].protocol = Protocol::kMoesi;
  variants[3].engine = BandwidthEngine::kAnalytic;
  variants[4].seed = 43;
  variants[5].sample_ratio = 0.5;
  variants[6].sample_seed = 8;
  variants[7].core = 4;
  variants[8].write = false;
  variants[9].width = bw::LoadWidth::kAvx256;
  variants[10].owner_core = 12;
  variants[11].memory_node = 1;
  variants[12].state = Mesif::kExclusive;
  variants[13].sharers = {1};
  variants[14].sizes = {16384};
  variants[15].max_measured_lines = 1024;

  std::set<std::string> hashes{base.hash()};
  for (const ExperimentSpec& variant : variants) {
    EXPECT_NE(variant, base);
    hashes.insert(variant.hash());
  }
  // Baseline plus 16 single-field perturbations, all distinct.
  EXPECT_EQ(hashes.size(), 17u);
}

TEST(ExperimentSpec, SeedOnlyVariantsDoNotCollide) {
  ExperimentSpec spec;
  std::set<std::string> hashes;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    spec.seed = seed;
    hashes.insert(spec.hash());
  }
  EXPECT_EQ(hashes.size(), 64u);
}

// The cache key is timing_fingerprint x spec hash: changing any of the ~25
// timing constants must yield a fresh key even for an identical spec.
TEST(ExperimentCacheKey, TracksEveryTimingConstant) {
  const ExperimentSpec spec = busy_spec();
  const TimingParams base = TimingParams::haswell_ep();
  const std::string base_key = experiment_cache_key(spec, base);

  std::set<std::string> keys{base_key};
  std::size_t fields = 0;
  TimingParams probe = base;
  for_each_timing_field(probe, [&](const char* name, double& value) {
    const double saved = value;
    value = saved + 1.0;
    const std::string key = experiment_cache_key(spec, probe);
    EXPECT_NE(key, base_key) << "timing field " << name
                             << " does not perturb the cache key";
    keys.insert(key);
    value = saved;
    ++fields;
  });
  EXPECT_GE(fields, 20u);
  EXPECT_EQ(keys.size(), fields + 1);
}

TEST(ExperimentCacheKey, TracksProtocolFamily) {
  ExperimentSpec spec = busy_spec();
  const TimingParams timing = TimingParams::haswell_ep();
  const std::string mesi_key = experiment_cache_key(spec, timing);
  spec.protocol = Protocol::kMesif;
  EXPECT_NE(mesi_key, experiment_cache_key(spec, timing));
}

TEST(ExperimentCacheKey, IsFilenameSafe) {
  const std::string key =
      experiment_cache_key(busy_spec(), TimingParams::haswell_ep());
  EXPECT_EQ(key.size(), 33u);  // 16 hex + '-' + 16 hex
  for (const char c : key) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || c == '-')
        << "character '" << c << "' in key " << key;
  }
}

struct BadDoc {
  const char* label;
  const char* text;
  const char* message_fragment;
};

TEST(ExperimentSpecErrors, EachFailureNamesItself) {
  const BadDoc docs[] = {
      {"malformed JSON", "{\"hswsim_spec_version\": 1,", "not valid JSON"},
      {"missing version", "{\"kind\": \"latency\"}",
       "missing hswsim_spec_version"},
      {"unknown version", "{\"hswsim_spec_version\": 99}",
       "unknown hswsim_spec_version"},
      {"unknown key", "{\"hswsim_spec_version\": 1, \"knid\": \"latency\"}",
       "unknown key"},
      {"bad kind", "{\"hswsim_spec_version\": 1, \"kind\": \"both\"}",
       "unknown kind"},
      {"bad mode", "{\"hswsim_spec_version\": 1, \"mode\": \"snoopy\"}",
       "unknown mode"},
      {"bad protocol", "{\"hswsim_spec_version\": 1, \"protocol\": \"mosei\"}",
       "unknown protocol"},
      {"bad engine", "{\"hswsim_spec_version\": 1, \"engine\": \"exact\"}",
       "unknown engine"},
      {"zero sample ratio",
       "{\"hswsim_spec_version\": 1, \"sample_ratio\": 0}", "sample_ratio"},
      {"state I", "{\"hswsim_spec_version\": 1, \"placement\": {\"state\": "
                  "\"I\"}}",
       "placement state"},
      {"core out of range", "{\"hswsim_spec_version\": 1, \"core\": 512}",
       "core"},
      {"node out of range",
       "{\"hswsim_spec_version\": 1, \"placement\": {\"memory_node\": 9}}",
       "memory_node"},
      {"size too small", "{\"hswsim_spec_version\": 1, \"sizes\": [64]}",
       "must be in [4096, 1GiB]"},
  };
  for (const BadDoc& doc : docs) {
    std::string error;
    const auto parsed = spec_from_json(doc.text, &error);
    EXPECT_FALSE(parsed.has_value()) << doc.label;
    EXPECT_NE(error.find(doc.message_fragment), std::string::npos)
        << doc.label << ": error was '" << error << "'";
  }
}

TEST(ExperimentSpecErrors, MissingFileReportsPath) {
  std::string error;
  const auto parsed =
      spec_from_file("/nonexistent/spec_test_nowhere.json", &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(error.find("cannot read"), std::string::npos) << error;
}

}  // namespace
}  // namespace hsw
