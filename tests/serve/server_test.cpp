// Server: batch submit over the NDJSON protocol, the streaming progress
// contract, and the cache-correctness gate — a cached response is
// byte-identical to a fresh simulation, and a perturbed timing constant
// forces a miss.
#include "serve/server.h"

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "gtest/gtest.h"
#include "serve/runner.h"

namespace hsw::serve {
namespace {

std::string fresh_dir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("hswsim_server_test_") + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

ServerConfig config_for(const std::string& dir) {
  ServerConfig config;
  config.cache.dir = dir;
  config.jobs = 2;
  return config;
}

// Collects every emitted event line.
struct Events {
  std::vector<std::string> lines;
  std::function<void(const std::string&)> sink() {
    return [this](const std::string& event) { lines.push_back(event); };
  }
  [[nodiscard]] std::vector<std::string> of_kind(const std::string& kind) const {
    std::vector<std::string> out;
    const std::string tag = "\"event\":\"" + kind + "\"";
    for (const std::string& line : lines) {
      if (line.find(tag) != std::string::npos) out.push_back(line);
    }
    return out;
  }
};

// The payload is the last field of a result event: its verbatim bytes are
// the span between `"payload":` and the closing brace (the same extraction
// hswsim-submit --payload-dir uses).
std::optional<std::string> payload_of(const std::string& event) {
  const std::size_t at = event.find("\"payload\":");
  if (at == std::string::npos || event.empty() || event.back() != '}') {
    return std::nullopt;
  }
  return event.substr(at + 10, event.size() - (at + 10) - 1);
}

// Two small specs (one latency, one bandwidth) kept fast for CI.
std::string small_batch() {
  return "{\"op\":\"submit\",\"specs\":["
         "{\"hswsim_spec_version\":1,\"kind\":\"latency\","
         "\"sizes\":[16384],\"max_measured_lines\":256},"
         "{\"hswsim_spec_version\":1,\"kind\":\"bandwidth\","
         "\"sizes\":[1048576]}]}";
}

TEST(Server, SubmitEmitsProgressAndResultsInSpecOrder) {
  Server server(config_for(fresh_dir("submit")));
  Events events;
  EXPECT_TRUE(server.handle_request(small_batch(), events.sink()));

  const auto results = events.of_kind("result");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].find("\"spec\":0,\"cached\":false"), std::string::npos)
      << results[0];
  EXPECT_NE(results[1].find("\"spec\":1,\"cached\":false"), std::string::npos)
      << results[1];
  // Each spec has one sweep point, so its final heartbeat is 1/1.
  const auto progress = events.of_kind("progress");
  EXPECT_GE(progress.size(), 2u);
  // Both payloads are versioned single-line documents.
  for (const std::string& result : results) {
    const auto payload = payload_of(result);
    ASSERT_TRUE(payload.has_value());
    EXPECT_NE(payload->find("\"hswsim_result_version\":1"), std::string::npos);
    EXPECT_EQ(payload->find('\n'), std::string::npos);
  }
}

// THE cache gate: the second submit of the same batch is served entirely
// from the cache, and each cached payload is byte-identical both to the
// first (fresh) response and to a direct single-job simulation.
TEST(Server, CachedResponseIsByteIdenticalToFreshSimulation) {
  Server server(config_for(fresh_dir("identical")));
  Events first;
  EXPECT_TRUE(server.handle_request(small_batch(), first.sink()));
  Events second;
  EXPECT_TRUE(server.handle_request(small_batch(), second.sink()));

  const auto fresh = first.of_kind("result");
  const auto cached = second.of_kind("result");
  ASSERT_EQ(fresh.size(), 2u);
  ASSERT_EQ(cached.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NE(cached[i].find("\"cached\":true"), std::string::npos)
        << cached[i];
    const auto fresh_payload = payload_of(fresh[i]);
    const auto cached_payload = payload_of(cached[i]);
    ASSERT_TRUE(fresh_payload.has_value());
    ASSERT_TRUE(cached_payload.has_value());
    EXPECT_EQ(*fresh_payload, *cached_payload) << "spec " << i;
  }
  EXPECT_EQ(server.cache().hits(), 2u);

  // Direct, serial re-simulation under the server's timing reproduces the
  // cached bytes exactly — the determinism the cache depends on.
  std::string error;
  const auto spec0 = spec_from_json(
      "{\"hswsim_spec_version\":1,\"kind\":\"latency\","
      "\"sizes\":[16384],\"max_measured_lines\":256}",
      &error);
  ASSERT_TRUE(spec0.has_value()) << error;
  RunOptions options;
  options.timing = server.config().timing;
  EXPECT_EQ(run_experiment(*spec0, options), *payload_of(cached[0]));
}

TEST(Server, BatchLocalDuplicatesSimulateOnce) {
  Server server(config_for(fresh_dir("dupes")));
  Events events;
  const std::string spec =
      "{\"hswsim_spec_version\":1,\"kind\":\"latency\","
      "\"sizes\":[16384],\"max_measured_lines\":256}";
  EXPECT_TRUE(server.handle_request(
      "{\"op\":\"submit\",\"specs\":[" + spec + "," + spec + "]}",
      events.sink()));
  const auto results = events.of_kind("result");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].find("\"cached\":false"), std::string::npos);
  EXPECT_NE(results[1].find("\"cached\":true"), std::string::npos);
  EXPECT_EQ(*payload_of(results[0]), *payload_of(results[1]));
  // The duplicate neither hit nor missed: it never reached the cache.
  EXPECT_EQ(server.cache().misses(), 1u);
  EXPECT_EQ(server.cache().hits(), 0u);
}

// A formatting-only change to the request must not change the key: the
// cache hashes the parsed document, not the request bytes.
TEST(Server, SpecFormattingDoesNotChangeTheKey) {
  Server server(config_for(fresh_dir("formatting")));
  Events first;
  EXPECT_TRUE(server.handle_request(
      "{\"op\":\"submit\",\"specs\":[{\"hswsim_spec_version\":1,"
      "\"kind\":\"latency\",\"sizes\":[16384],\"max_measured_lines\":256}]}",
      first.sink()));
  Events second;
  EXPECT_TRUE(server.handle_request(
      "{ \"op\": \"submit\", \"specs\": [ { \"max_measured_lines\": 256, "
      "\"sizes\": [ 16384 ], \"kind\": \"latency\", "
      "\"hswsim_spec_version\": 1 } ] }",
      second.sink()));
  const auto cached = second.of_kind("result");
  ASSERT_EQ(cached.size(), 1u);
  EXPECT_NE(cached[0].find("\"cached\":true"), std::string::npos) << cached[0];
}

// Changing one timing constant changes the fingerprint half of the key, so
// a second server over the same cache directory must re-simulate.
TEST(Server, PerturbedTimingConstantForcesMiss) {
  const std::string dir = fresh_dir("timing");
  {
    Server server(config_for(dir));
    Events events;
    EXPECT_TRUE(server.handle_request(small_batch(), events.sink()));
  }
  ServerConfig perturbed = config_for(dir);
  perturbed.timing.l3_base += 1.0;
  Server server(perturbed);
  Events events;
  EXPECT_TRUE(server.handle_request(small_batch(), events.sink()));
  for (const std::string& result : events.of_kind("result")) {
    EXPECT_NE(result.find("\"cached\":false"), std::string::npos) << result;
  }
  // Four entries now coexist: two per timing calibration.
  EXPECT_EQ(server.cache().entries(), 4u);
}

TEST(Server, MalformedRequestEmitsErrorNotExit) {
  Server server(config_for(fresh_dir("malformed")));
  Events events;
  EXPECT_TRUE(server.handle_request("{\"op\":\"submit\",", events.sink()));
  const auto errors = events.of_kind("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("not valid JSON"), std::string::npos) << errors[0];
}

TEST(Server, BadSpecFailsTheWholeBatch) {
  Server server(config_for(fresh_dir("badspec")));
  Events events;
  EXPECT_TRUE(server.handle_request(
      "{\"op\":\"submit\",\"specs\":["
      "{\"hswsim_spec_version\":1,\"kind\":\"latency\",\"sizes\":[16384]},"
      "{\"hswsim_spec_version\":1,\"kind\":\"nonsense\"}]}",
      events.sink()));
  const auto errors = events.of_kind("error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("spec 1"), std::string::npos) << errors[0];
  EXPECT_TRUE(events.of_kind("result").empty());
  // All-or-nothing: spec 0 was not simulated either.
  EXPECT_EQ(server.cache().entries(), 0u);
}

TEST(Server, UnknownOpAndEmptySubmitAreErrors) {
  Server server(config_for(fresh_dir("ops")));
  Events events;
  EXPECT_TRUE(server.handle_request("{\"op\":\"frobnicate\"}", events.sink()));
  EXPECT_TRUE(
      server.handle_request("{\"op\":\"submit\",\"specs\":[]}", events.sink()));
  EXPECT_EQ(events.of_kind("error").size(), 2u);
}

TEST(Server, PingStatsAndShutdown) {
  Server server(config_for(fresh_dir("control")));
  Events events;
  EXPECT_TRUE(server.handle_request("{\"op\":\"ping\"}", events.sink()));
  EXPECT_EQ(events.of_kind("pong").size(), 1u);

  EXPECT_TRUE(server.handle_request("{\"op\":\"stats\"}", events.sink()));
  const auto stats = events.of_kind("stats");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_NE(stats[0].find("\"hswsim_cache_version\":1"), std::string::npos);

  EXPECT_FALSE(server.handle_request("{\"op\":\"shutdown\"}", events.sink()));
  EXPECT_EQ(events.of_kind("bye").size(), 1u);
}

}  // namespace
}  // namespace hsw::serve
