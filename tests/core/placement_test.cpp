#include "core/placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "coh/slice_hash.h"

namespace hsw {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  System sys_{SystemConfig::source_snoop()};

  std::optional<CacheEntry> l3_entry(int node, LineAddr line) {
    MachineState& m = sys_.state();
    const NumaNode& n = m.topo.node(node);
    return m.l3[static_cast<std::size_t>(n.socket)]
               [static_cast<std::size_t>(m.slice_for(node, line))]
        .peek(line);
  }
};

TEST(ChaseOrder, IsAPermutationOfTheRegion) {
  AddressSpace space;
  const MemRegion region = space.alloc(0, 64 * 128);
  const auto order = chase_order(region, 7);
  EXPECT_EQ(order.size(), 128u);
  std::set<LineAddr> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 128u);
  EXPECT_EQ(*unique.begin(), region.first_line());
  EXPECT_EQ(*unique.rbegin(), region.first_line() + 127);
}

TEST(ChaseOrder, SeedChangesOrderDeterministically) {
  AddressSpace space;
  const MemRegion region = space.alloc(0, 64 * 128);
  EXPECT_EQ(chase_order(region, 3), chase_order(region, 3));
  EXPECT_NE(chase_order(region, 3), chase_order(region, 4));
}

TEST_F(PlacementTest, ModifiedPlacementLeavesDirtyCoreCopies) {
  const MemRegion region = sys_.alloc_on_node(0, 64 * 16);
  place(sys_, region, Placement{.owner_core = 1, .memory_node = 0,
                                .state = Mesif::kModified, .sharers = {},
                                .level = CacheLevel::kL1L2});
  const CoreCaches& cc = sys_.state().cores[1];
  for (LineAddr line = region.first_line();
       line < region.first_line() + region.line_count(); ++line) {
    const std::optional<CacheEntry> entry = cc.l1.peek(line);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->state, Mesif::kModified);
  }
}

TEST_F(PlacementTest, ExclusivePlacementLeavesCleanExclusive) {
  const MemRegion region = sys_.alloc_on_node(0, 64 * 16);
  place(sys_, region, Placement{.owner_core = 1, .memory_node = 0,
                                .state = Mesif::kExclusive, .sharers = {},
                                .level = CacheLevel::kL1L2});
  const CoreCaches& cc = sys_.state().cores[1];
  for (LineAddr line = region.first_line();
       line < region.first_line() + region.line_count(); ++line) {
    const std::optional<CacheEntry> entry = cc.l1.peek(line);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->state, Mesif::kExclusive);
    EXPECT_EQ(l3_entry(0, line)->state, Mesif::kExclusive);
  }
}

TEST_F(PlacementTest, SharedPlacementPutsForwardInLastReadersNode) {
  const MemRegion region = sys_.alloc_on_node(0, 64 * 16);
  Placement placement;
  placement.owner_core = 1;
  placement.memory_node = 0;
  placement.state = Mesif::kShared;
  placement.sharers = {12};  // socket 1 reads last -> holds Forward
  place(sys_, region, placement);
  for (LineAddr line = region.first_line();
       line < region.first_line() + region.line_count(); ++line) {
    ASSERT_TRUE(l3_entry(0, line).has_value());
    ASSERT_TRUE(l3_entry(1, line).has_value());
    EXPECT_EQ(l3_entry(0, line)->state, Mesif::kShared);
    EXPECT_EQ(l3_entry(1, line)->state, Mesif::kForward);
  }
}

TEST_F(PlacementTest, L3LevelEvictsCoreCachesOnly) {
  const MemRegion region = sys_.alloc_on_node(0, 64 * 16);
  place(sys_, region, Placement{.owner_core = 1, .memory_node = 0,
                                .state = Mesif::kModified, .sharers = {},
                                .level = CacheLevel::kL3});
  const CoreCaches& cc = sys_.state().cores[1];
  for (LineAddr line = region.first_line();
       line < region.first_line() + region.line_count(); ++line) {
    EXPECT_FALSE(cc.l1.peek(line).has_value());
    EXPECT_FALSE(cc.l2.peek(line).has_value());
    const std::optional<CacheEntry> entry = l3_entry(0, line);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->state, Mesif::kModified);  // written back
    EXPECT_EQ(entry->core_valid, 0u);
  }
}

TEST_F(PlacementTest, MemoryLevelLeavesNothingCached) {
  const MemRegion region = sys_.alloc_on_node(0, 64 * 16);
  place(sys_, region, Placement{.owner_core = 1, .memory_node = 0,
                                .state = Mesif::kExclusive, .sharers = {},
                                .level = CacheLevel::kMemory});
  for (LineAddr line = region.first_line();
       line < region.first_line() + region.line_count(); ++line) {
    EXPECT_FALSE(l3_entry(0, line).has_value());
    EXPECT_FALSE(sys_.state().cores[1].l1.peek(line).has_value());
  }
}

}  // namespace
}  // namespace hsw
