#include "core/bandwidth.h"

#include "util/units.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

StreamConfig stream(int core, int node, Mesif state, CacheLevel level,
                    bool write = false) {
  StreamConfig s;
  s.core = core;
  s.write = write;
  s.placement = Placement{.owner_core = core, .memory_node = node,
                          .state = state, .sharers = {}, .level = level};
  return s;
}

TEST(Bandwidth, SingleL1Stream) {
  System sys(SystemConfig::source_snoop());
  BandwidthConfig bc;
  bc.streams = {stream(0, 0, Mesif::kModified, CacheLevel::kL1L2)};
  bc.buffer_bytes = kib(16);
  const BandwidthResult r = measure_bandwidth(sys, bc);
  EXPECT_NEAR(r.total_gbps, 127.2, 0.5);
  EXPECT_EQ(r.streams.front().source, ServiceSource::kL1);
}

TEST(Bandwidth, SseWidthHalvesL1) {
  System sys(SystemConfig::source_snoop());
  BandwidthConfig bc;
  StreamConfig s = stream(0, 0, Mesif::kModified, CacheLevel::kL1L2);
  s.width = bw::LoadWidth::kSse128;
  bc.streams = {s};
  bc.buffer_bytes = kib(16);
  EXPECT_NEAR(measure_bandwidth(sys, bc).total_gbps, 77.1, 0.5);
}

TEST(Bandwidth, MemoryStreamUsesSteadyState) {
  System sys(SystemConfig::source_snoop());
  BandwidthConfig bc;
  bc.streams = {stream(0, 0, Mesif::kModified, CacheLevel::kMemory)};
  bc.buffer_bytes = mib(2);
  const BandwidthResult r = measure_bandwidth(sys, bc);
  EXPECT_EQ(r.streams.front().source, ServiceSource::kLocalDram);
  EXPECT_NEAR(r.total_gbps, 10.6, 1.2);  // paper: 10.3 GB/s
}

TEST(Bandwidth, TwelveLocalReadersSaturateTheSocket) {
  System sys(SystemConfig::source_snoop());
  BandwidthConfig bc;
  for (int c = 0; c < 12; ++c) {
    bc.streams.push_back(stream(c, 0, Mesif::kModified, CacheLevel::kMemory));
  }
  bc.buffer_bytes = mib(1);
  const BandwidthResult r = measure_bandwidth(sys, bc);
  EXPECT_NEAR(r.total_gbps, 62.8, 1.5);  // paper: ~63 GB/s
  // Max-min fairness: every stream gets an equal share.
  for (const StreamResult& s : r.streams) {
    EXPECT_NEAR(s.gbps, r.total_gbps / 12.0, 0.5);
  }
}

TEST(Bandwidth, RemoteStreamsLimitedByQpiMode) {
  auto remote_total = [](const SystemConfig& config) {
    System sys(config);
    BandwidthConfig bc;
    for (int c = 0; c < 6; ++c) {
      bc.streams.push_back(stream(c, 1, Mesif::kModified, CacheLevel::kMemory));
    }
    bc.buffer_bytes = mib(1);
    return measure_bandwidth(sys, bc).total_gbps;
  };
  const double source = remote_total(SystemConfig::source_snoop());
  const double home = remote_total(SystemConfig::home_snoop());
  EXPECT_NEAR(source, 16.8, 0.7);  // Table VII
  EXPECT_NEAR(home, 30.7, 1.0);
  EXPECT_GT(home, source * 1.6);
}

TEST(Bandwidth, CodRemoteStreamsDetectStaleDirectory) {
  System sys(SystemConfig::cluster_on_die());
  BandwidthConfig bc;
  bc.streams = {stream(0, 2, Mesif::kModified, CacheLevel::kMemory)};
  bc.buffer_bytes = mib(1);
  const BandwidthResult r = measure_bandwidth(sys, bc);
  EXPECT_TRUE(r.streams.front().stale_directory);
}

TEST(Bandwidth, WriteStreamSlowerThanRead) {
  System sys(SystemConfig::source_snoop());
  BandwidthConfig bc;
  bc.streams = {stream(0, 0, Mesif::kModified, CacheLevel::kMemory, true)};
  bc.buffer_bytes = mib(1);
  const BandwidthResult r = measure_bandwidth(sys, bc);
  EXPECT_NEAR(r.total_gbps, 7.7, 0.2);  // Table VII single-core write
}

}  // namespace
}  // namespace hsw
