#include "core/latency.h"

#include "util/units.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

LatencyConfig config(int reader, int owner, Mesif state, std::uint64_t bytes,
                     CacheLevel level = CacheLevel::kL1L2) {
  LatencyConfig lc;
  lc.reader_core = reader;
  lc.placement = Placement{.owner_core = owner, .memory_node = 0,
                           .state = state, .sharers = {}, .level = level};
  lc.buffer_bytes = bytes;
  lc.max_measured_lines = 4096;
  return lc;
}

TEST(Latency, L1ResidentSet) {
  System sys(SystemConfig::source_snoop());
  const LatencyResult r =
      measure_latency(sys, config(0, 0, Mesif::kModified, kib(16)));
  EXPECT_NEAR(r.mean_ns, 1.6, 0.01);
  EXPECT_EQ(r.dominant_source, ServiceSource::kL1);
  EXPECT_DOUBLE_EQ(r.source_fraction(ServiceSource::kL1), 1.0);
  EXPECT_EQ(r.lines_measured, kib(16) / kLineSize);
}

TEST(Latency, L2ResidentSetIsAllL2) {
  // A cyclic chase over a >L1 set defeats LRU entirely — the paper's Fig. 4
  // plateau between 32 KiB and 256 KiB sits flat at the L2 latency.
  System sys(SystemConfig::source_snoop());
  const LatencyResult r =
      measure_latency(sys, config(0, 0, Mesif::kModified, kib(128)));
  EXPECT_EQ(r.dominant_source, ServiceSource::kL2);
  EXPECT_GT(r.source_fraction(ServiceSource::kL2), 0.9);
  EXPECT_NEAR(r.mean_ns, 4.8, 0.1);
}

TEST(Latency, L3ResidentSet) {
  System sys(SystemConfig::source_snoop());
  const LatencyResult r =
      measure_latency(sys, config(0, 0, Mesif::kModified, mib(4)));
  EXPECT_EQ(r.dominant_source, ServiceSource::kL3);
  EXPECT_NEAR(r.mean_ns, 21.2, 3.0);
}

TEST(Latency, BeyondL3GoesToMemory) {
  System sys(SystemConfig::source_snoop());
  const LatencyResult r = measure_latency(
      sys, config(0, 0, Mesif::kModified, mib(4), CacheLevel::kMemory));
  EXPECT_EQ(r.dominant_source, ServiceSource::kLocalDram);
  EXPECT_NEAR(r.mean_ns, 96.4, 5.0);
}

TEST(Latency, MonotoneAcrossLevels) {
  double previous = 0.0;
  for (std::uint64_t bytes : {kib(16), kib(128), mib(1)}) {
    System sys(SystemConfig::source_snoop());
    const double mean =
        measure_latency(sys, config(0, 0, Mesif::kModified, bytes)).mean_ns;
    EXPECT_GT(mean, previous) << format_bytes(bytes);
    previous = mean;
  }
}

TEST(Latency, CountersMatchSourceCounts) {
  System sys(SystemConfig::source_snoop());
  const LatencyResult r = measure_latency(
      sys, config(0, 12, Mesif::kModified, kib(64), CacheLevel::kL3));
  EXPECT_EQ(r.dominant_source, ServiceSource::kRemoteFwd);
  EXPECT_EQ(r.counters[static_cast<std::size_t>(Ctr::kLoadsRemoteFwd)],
            r.source_counts[static_cast<std::size_t>(ServiceSource::kRemoteFwd)]);
}

TEST(Latency, MeasuredLinesCapped) {
  System sys(SystemConfig::source_snoop());
  LatencyConfig lc = config(0, 0, Mesif::kModified, mib(1));
  lc.max_measured_lines = 100;
  const LatencyResult r = measure_latency(sys, lc);
  EXPECT_EQ(r.lines_measured, 100u);
}

TEST(Latency, MinMaxBracketMean) {
  System sys(SystemConfig::source_snoop());
  // Memory chase: DRAM row-buffer hits vs conflicts spread the samples.
  const LatencyResult r = measure_latency(
      sys, config(0, 0, Mesif::kModified, mib(2), CacheLevel::kMemory));
  EXPECT_LE(r.min_ns, r.mean_ns);
  EXPECT_GE(r.max_ns, r.mean_ns);
  EXPECT_LT(r.min_ns, r.max_ns);  // page-hit vs page-conflict accesses
}

}  // namespace
}  // namespace hsw
