// Determinism contract of the parallel sweep path: for identical configs
// and seeds, --jobs 1 and --jobs 8 must produce bit-identical points.  This
// test is also the ThreadSanitizer workout for the sweep harness (build
// with -DHSWSIM_SANITIZE=thread).
#include "core/sweep.h"

#include "util/units.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

LatencySweepConfig latency_config() {
  LatencySweepConfig config;
  config.system = SystemConfig::source_snoop();
  config.reader_core = 0;
  config.placement = Placement{.owner_core = 1, .memory_node = 0,
                               .state = Mesif::kModified, .sharers = {},
                               .level = CacheLevel::kL1L2};
  config.sizes = sweep_sizes(kib(16), mib(2));
  config.max_measured_lines = 2048;
  config.seed = 7;
  return config;
}

TEST(ParallelSweep, LatencyPointsBitIdenticalAcrossJobCounts) {
  LatencySweepConfig serial = latency_config();
  serial.jobs = 1;
  LatencySweepConfig parallel = latency_config();
  parallel.jobs = 8;

  const auto a = latency_sweep(serial);
  const auto b = latency_sweep(parallel);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    // Bit-identical, not approximately equal: the parallel path must run
    // the exact same computation per slot.
    EXPECT_EQ(a[i].result.mean_ns, b[i].result.mean_ns);
    EXPECT_EQ(a[i].result.min_ns, b[i].result.min_ns);
    EXPECT_EQ(a[i].result.max_ns, b[i].result.max_ns);
    EXPECT_EQ(a[i].result.lines_measured, b[i].result.lines_measured);
    EXPECT_EQ(a[i].result.source_counts, b[i].result.source_counts);
    EXPECT_EQ(a[i].result.dominant_source, b[i].result.dominant_source);
  }
}

TEST(ParallelSweep, BandwidthPointsBitIdenticalAcrossJobCounts) {
  BandwidthSweepConfig config;
  config.system = SystemConfig::source_snoop();
  config.stream.core = 0;
  config.stream.placement = Placement{.owner_core = 1, .memory_node = 0,
                                      .state = Mesif::kExclusive,
                                      .sharers = {},
                                      .level = CacheLevel::kL1L2};
  config.sizes = sweep_sizes(kib(16), mib(2));
  config.seed = 7;

  BandwidthSweepConfig serial = config;
  serial.jobs = 1;
  BandwidthSweepConfig parallel = config;
  parallel.jobs = 8;

  const auto a = bandwidth_sweep(serial);
  const auto b = bandwidth_sweep(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].gbps, b[i].gbps);
    EXPECT_EQ(a[i].source, b[i].source);
  }
}

TEST(ParallelSweep, PointFunctionMatchesTheFullSweep) {
  LatencySweepConfig config = latency_config();
  config.jobs = 1;
  const auto points = latency_sweep(config);
  const auto lone = latency_sweep_point(config, config.sizes[2]);
  EXPECT_EQ(lone.bytes, points[2].bytes);
  EXPECT_EQ(lone.result.mean_ns, points[2].result.mean_ns);
}

TEST(ParallelSweep, RejectsAnExplicitPlacementLevel) {
  LatencySweepConfig config = latency_config();
  config.placement.level = CacheLevel::kL3;
  EXPECT_THROW(latency_sweep(config), std::invalid_argument);

  BandwidthSweepConfig bw;
  bw.system = SystemConfig::source_snoop();
  bw.stream.placement.level = CacheLevel::kMemory;
  bw.sizes = {kib(64)};
  EXPECT_THROW(bandwidth_sweep(bw), std::invalid_argument);
}

}  // namespace
}  // namespace hsw
