// Unit tests for the set-sampling primitives (core/sampling.h): denominator
// rounding, the min-sampled-bytes floor, geometry/counter/measured-lines
// scaling, seed mixing, and configuration validation.  The end-to-end
// accuracy bound lives in bench/validate_sampling.cpp; sweep_test.cpp pins
// full-mode byte-identity.
#include "core/sampling.h"

#include <gtest/gtest.h>

#include "machine/system.h"
#include "util/units.h"

namespace hsw {
namespace {

TEST(SamplingConfigTest, DefaultIsExact) {
  const SamplingConfig config;
  EXPECT_FALSE(config.active());
  EXPECT_EQ(config.requested_denominator(), 1u);
  EXPECT_FALSE(config.plan(mib(64)).active());
}

TEST(SamplingConfigTest, RatioRoundsToNearestPowerOfTwoReciprocal) {
  SamplingConfig config;
  const struct {
    double ratio;
    std::uint64_t denominator;
  } cases[] = {
      {0.5, 2},     {0.25, 4},      {0.125, 8},  {0.0625, 16},
      {0.03125, 32}, {0.1, 8},      {0.06, 16},  {0.3, 4},
      {0.9, 2},      {0.001, 32},  // clamped at 1/32: the L1 keeps >= 2 sets
  };
  for (const auto& c : cases) {
    config.ratio = c.ratio;
    EXPECT_EQ(config.requested_denominator(), c.denominator)
        << "ratio " << c.ratio;
  }
}

TEST(SamplingConfigTest, FloorReducesDenominatorForSmallPoints) {
  SamplingConfig config;
  config.ratio = 1.0 / 16.0;
  config.min_sampled_bytes = 4 * 1024 * 1024;
  // 64 MiB / 16 = 4 MiB: exactly at the floor, full reduction.
  EXPECT_EQ(config.plan(mib(64)).denominator, 16u);
  // 32 MiB / 16 = 2 MiB < floor; halve until 32 MiB / d >= 4 MiB.
  EXPECT_EQ(config.plan(mib(32)).denominator, 8u);
  EXPECT_EQ(config.plan(mib(16)).denominator, 4u);
  EXPECT_EQ(config.plan(mib(8)).denominator, 2u);
  // At or below the floor the point runs exact.
  EXPECT_FALSE(config.plan(mib(4)).active());
  EXPECT_FALSE(config.plan(kib(64)).active());
}

TEST(SamplingPlanTest, ScaledGeometryDividesCachesAndDramRows) {
  const CacheGeometry full;
  const SamplingPlan plan{8};
  const CacheGeometry scaled = plan.scaled(full);
  EXPECT_EQ(scaled.l1_bytes, full.l1_bytes / 8);
  EXPECT_EQ(scaled.l2_bytes, full.l2_bytes / 8);
  EXPECT_EQ(scaled.l3_slice_bytes, full.l3_slice_bytes / 8);
  // Associativity and line size are untouched: per-set behaviour must be
  // identical to a full-machine set.
  EXPECT_EQ(scaled.l1_assoc, full.l1_assoc);
  EXPECT_EQ(scaled.l2_assoc, full.l2_assoc);
  EXPECT_EQ(scaled.l3_assoc, full.l3_assoc);
  // DRAM rows shrink with the sets so open-page hit rates match.
  EXPECT_EQ(scaled.dram.row_bytes, full.dram.row_bytes / 8);
  EXPECT_EQ(scaled.dram.banks, full.dram.banks);
}

TEST(SamplingPlanTest, DramRowsNeverShrinkBelowOneLine) {
  CacheGeometry g;
  g.dram.row_bytes = 2 * kLineSize;
  const SamplingPlan plan{32};
  EXPECT_EQ(plan.scaled(g).dram.row_bytes, kLineSize);
}

TEST(SamplingPlanTest, InactivePlanIsIdentity) {
  const SamplingPlan plan{1};
  const CacheGeometry g;
  const CacheGeometry scaled = plan.scaled(g);
  EXPECT_EQ(scaled.l1_bytes, g.l1_bytes);
  EXPECT_EQ(scaled.dram.row_bytes, g.dram.row_bytes);
  EXPECT_EQ(plan.scaled_bytes(12345), 12345u);
  EXPECT_EQ(plan.scaled_measured_lines(100), 100u);  // no 256-line clamp
  CounterSet::Snapshot counters{};
  counters[0] = 7;
  plan.scale_counters(counters);
  EXPECT_EQ(counters[0], 7u);  // exact integers stay exact
}

TEST(SamplingPlanTest, ScaledMeasuredLinesKeepsFractionWithFloor) {
  const SamplingPlan plan{16};
  EXPECT_EQ(plan.scaled_measured_lines(8192), 512u);
  // The statistical floor: never fewer than 256 measured lines.
  EXPECT_EQ(plan.scaled_measured_lines(1024), 256u);
}

TEST(SamplingPlanTest, ScaleCountersMultipliesByDenominator) {
  const SamplingPlan plan{4};
  CounterSet::Snapshot counters{};
  counters[0] = 100;
  counters[1] = 3;
  plan.scale_counters(counters);
  EXPECT_EQ(counters[0], 400u);
  EXPECT_EQ(counters[1], 12u);
}

TEST(SamplingConfigTest, MixSeedIsDeterministicAndSpreadsSeeds) {
  SamplingConfig a;
  a.ratio = 0.0625;
  a.seed = 1;
  SamplingConfig b = a;
  EXPECT_EQ(a.mix_seed(42), b.mix_seed(42));
  b.seed = 2;
  // Adjacent sampling seeds must draw unrelated realizations.
  EXPECT_NE(a.mix_seed(42), b.mix_seed(42));
  EXPECT_NE(a.mix_seed(42), a.mix_seed(43));
}

TEST(SamplingConfigTest, ValidateRejectsRatiosOutsideUnitInterval) {
  SamplingConfig config;
  config.ratio = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.ratio = -0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.ratio = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.ratio = 1.0;
  EXPECT_NO_THROW(config.validate());
  config.ratio = 0.03;
  EXPECT_NO_THROW(config.validate());
}

// Power-of-two set counts survive scaling: the scaled machine must
// construct (System asserts geometry invariants) at every denominator.
TEST(SamplingPlanTest, ScaledMachineConstructsAtEveryDenominator) {
  for (std::uint64_t d : {2u, 4u, 8u, 16u, 32u}) {
    const SamplingPlan plan{d};
    SystemConfig config = SystemConfig::source_snoop();
    config.geometry = plan.scaled(config.geometry);
    EXPECT_NO_THROW({ System system(config); }) << "denominator " << d;
  }
}

}  // namespace
}  // namespace hsw
