#include "core/sweep.h"

#include "util/units.h"

#include <gtest/gtest.h>

namespace hsw {
namespace {

TEST(SweepSizes, LogSpacedAndBounded) {
  const auto sizes = sweep_sizes(kib(16), kib(128));
  EXPECT_EQ(sizes.front(), kib(16));
  EXPECT_EQ(sizes.back(), kib(128));
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);
    EXPECT_LE(static_cast<double>(sizes[i]) / static_cast<double>(sizes[i - 1]),
              1.6);
  }
}

TEST(LatencySweep, ReproducesTheLevelStaircase) {
  LatencySweepConfig config;
  config.system = SystemConfig::source_snoop();
  config.reader_core = 0;
  config.placement = Placement{.owner_core = 0, .memory_node = 0,
                               .state = Mesif::kModified, .sharers = {},
                               .level = CacheLevel::kL1L2};
  config.sizes = {kib(16), kib(128), mib(2)};
  config.max_measured_lines = 4096;
  const auto points = latency_sweep(config);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_NEAR(points[0].result.mean_ns, 1.6, 0.01);     // L1
  EXPECT_LT(points[1].result.mean_ns, 4.8 + 0.01);      // mostly L2
  EXPECT_NEAR(points[2].result.mean_ns, 21.2, 3.0);     // L3
  EXPECT_EQ(points[0].bytes, kib(16));
}

TEST(LatencySweep, FreshSystemPerPoint) {
  // The same size measured twice must give identical results (no state
  // leaks between points).
  LatencySweepConfig config;
  config.system = SystemConfig::cluster_on_die();
  config.reader_core = 0;
  config.placement = Placement{.owner_core = 1, .memory_node = 0,
                               .state = Mesif::kExclusive, .sharers = {},
                               .level = CacheLevel::kL1L2};
  config.sizes = {kib(64), kib(64)};
  const auto points = latency_sweep(config);
  EXPECT_DOUBLE_EQ(points[0].result.mean_ns, points[1].result.mean_ns);
}

TEST(BandwidthSweep, WidthStaircase) {
  BandwidthSweepConfig config;
  config.system = SystemConfig::source_snoop();
  config.stream.core = 0;
  config.stream.placement = Placement{.owner_core = 0, .memory_node = 0,
                                      .state = Mesif::kModified, .sharers = {},
                                      .level = CacheLevel::kL1L2};
  config.sizes = {kib(16), kib(128), mib(2)};
  const auto points = bandwidth_sweep(config);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_NEAR(points[0].gbps, 127.2, 0.5);  // L1
  EXPECT_NEAR(points[1].gbps, 69.1, 0.5);   // L2
  EXPECT_NEAR(points[2].gbps, 26.2, 2.0);   // L3
  EXPECT_GT(points[0].gbps, points[1].gbps);
  EXPECT_GT(points[1].gbps, points[2].gbps);
}

}  // namespace
}  // namespace hsw
