file(REMOVE_RECURSE
  "CMakeFiles/hswsim_sim.dir/counters.cpp.o"
  "CMakeFiles/hswsim_sim.dir/counters.cpp.o.d"
  "CMakeFiles/hswsim_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hswsim_sim.dir/event_queue.cpp.o.d"
  "libhswsim_sim.a"
  "libhswsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hswsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
