# Empty dependencies file for hswsim_sim.
# This may be replaced when dependencies are built.
