file(REMOVE_RECURSE
  "libhswsim_sim.a"
)
