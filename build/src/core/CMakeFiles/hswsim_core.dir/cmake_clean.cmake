file(REMOVE_RECURSE
  "CMakeFiles/hswsim_core.dir/bandwidth.cpp.o"
  "CMakeFiles/hswsim_core.dir/bandwidth.cpp.o.d"
  "CMakeFiles/hswsim_core.dir/latency.cpp.o"
  "CMakeFiles/hswsim_core.dir/latency.cpp.o.d"
  "CMakeFiles/hswsim_core.dir/placement.cpp.o"
  "CMakeFiles/hswsim_core.dir/placement.cpp.o.d"
  "CMakeFiles/hswsim_core.dir/sweep.cpp.o"
  "CMakeFiles/hswsim_core.dir/sweep.cpp.o.d"
  "libhswsim_core.a"
  "libhswsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hswsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
