# Empty compiler generated dependencies file for hswsim_core.
# This may be replaced when dependencies are built.
