file(REMOVE_RECURSE
  "libhswsim_core.a"
)
