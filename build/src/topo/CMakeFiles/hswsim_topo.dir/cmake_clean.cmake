file(REMOVE_RECURSE
  "CMakeFiles/hswsim_topo.dir/ring.cpp.o"
  "CMakeFiles/hswsim_topo.dir/ring.cpp.o.d"
  "CMakeFiles/hswsim_topo.dir/topology.cpp.o"
  "CMakeFiles/hswsim_topo.dir/topology.cpp.o.d"
  "libhswsim_topo.a"
  "libhswsim_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hswsim_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
