# Empty compiler generated dependencies file for hswsim_topo.
# This may be replaced when dependencies are built.
