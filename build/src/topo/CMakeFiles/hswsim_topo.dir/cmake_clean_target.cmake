file(REMOVE_RECURSE
  "libhswsim_topo.a"
)
