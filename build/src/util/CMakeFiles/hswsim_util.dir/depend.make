# Empty dependencies file for hswsim_util.
# This may be replaced when dependencies are built.
