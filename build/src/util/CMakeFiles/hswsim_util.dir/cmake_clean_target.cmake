file(REMOVE_RECURSE
  "libhswsim_util.a"
)
