file(REMOVE_RECURSE
  "CMakeFiles/hswsim_util.dir/cli.cpp.o"
  "CMakeFiles/hswsim_util.dir/cli.cpp.o.d"
  "CMakeFiles/hswsim_util.dir/csv.cpp.o"
  "CMakeFiles/hswsim_util.dir/csv.cpp.o.d"
  "CMakeFiles/hswsim_util.dir/stats.cpp.o"
  "CMakeFiles/hswsim_util.dir/stats.cpp.o.d"
  "CMakeFiles/hswsim_util.dir/table.cpp.o"
  "CMakeFiles/hswsim_util.dir/table.cpp.o.d"
  "CMakeFiles/hswsim_util.dir/units.cpp.o"
  "CMakeFiles/hswsim_util.dir/units.cpp.o.d"
  "libhswsim_util.a"
  "libhswsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hswsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
