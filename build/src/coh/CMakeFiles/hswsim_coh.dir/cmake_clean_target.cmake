file(REMOVE_RECURSE
  "libhswsim_coh.a"
)
