file(REMOVE_RECURSE
  "CMakeFiles/hswsim_coh.dir/engine.cpp.o"
  "CMakeFiles/hswsim_coh.dir/engine.cpp.o.d"
  "CMakeFiles/hswsim_coh.dir/hitme.cpp.o"
  "CMakeFiles/hswsim_coh.dir/hitme.cpp.o.d"
  "CMakeFiles/hswsim_coh.dir/state.cpp.o"
  "CMakeFiles/hswsim_coh.dir/state.cpp.o.d"
  "CMakeFiles/hswsim_coh.dir/timing.cpp.o"
  "CMakeFiles/hswsim_coh.dir/timing.cpp.o.d"
  "libhswsim_coh.a"
  "libhswsim_coh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hswsim_coh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
