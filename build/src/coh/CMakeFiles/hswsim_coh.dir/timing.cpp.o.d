src/coh/CMakeFiles/hswsim_coh.dir/timing.cpp.o: \
 /root/repo/src/coh/timing.cpp /usr/include/stdc-predef.h \
 /root/repo/src/coh/timing.h
