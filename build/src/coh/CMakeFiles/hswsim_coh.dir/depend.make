# Empty dependencies file for hswsim_coh.
# This may be replaced when dependencies are built.
