# Empty compiler generated dependencies file for hswsim_bw.
# This may be replaced when dependencies are built.
