file(REMOVE_RECURSE
  "libhswsim_bw.a"
)
