file(REMOVE_RECURSE
  "CMakeFiles/hswsim_bw.dir/model.cpp.o"
  "CMakeFiles/hswsim_bw.dir/model.cpp.o.d"
  "CMakeFiles/hswsim_bw.dir/queueing.cpp.o"
  "CMakeFiles/hswsim_bw.dir/queueing.cpp.o.d"
  "CMakeFiles/hswsim_bw.dir/solver.cpp.o"
  "CMakeFiles/hswsim_bw.dir/solver.cpp.o.d"
  "libhswsim_bw.a"
  "libhswsim_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hswsim_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
