file(REMOVE_RECURSE
  "libhswsim_workload.a"
)
