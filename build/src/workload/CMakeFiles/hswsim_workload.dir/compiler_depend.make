# Empty compiler generated dependencies file for hswsim_workload.
# This may be replaced when dependencies are built.
