file(REMOVE_RECURSE
  "CMakeFiles/hswsim_workload.dir/apps.cpp.o"
  "CMakeFiles/hswsim_workload.dir/apps.cpp.o.d"
  "CMakeFiles/hswsim_workload.dir/trace.cpp.o"
  "CMakeFiles/hswsim_workload.dir/trace.cpp.o.d"
  "libhswsim_workload.a"
  "libhswsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hswsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
