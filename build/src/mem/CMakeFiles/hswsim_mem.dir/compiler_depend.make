# Empty compiler generated dependencies file for hswsim_mem.
# This may be replaced when dependencies are built.
