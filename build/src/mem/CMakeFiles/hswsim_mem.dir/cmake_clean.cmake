file(REMOVE_RECURSE
  "CMakeFiles/hswsim_mem.dir/cache_array.cpp.o"
  "CMakeFiles/hswsim_mem.dir/cache_array.cpp.o.d"
  "CMakeFiles/hswsim_mem.dir/dram.cpp.o"
  "CMakeFiles/hswsim_mem.dir/dram.cpp.o.d"
  "libhswsim_mem.a"
  "libhswsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hswsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
