file(REMOVE_RECURSE
  "libhswsim_mem.a"
)
