file(REMOVE_RECURSE
  "CMakeFiles/hswsim_machine.dir/specs.cpp.o"
  "CMakeFiles/hswsim_machine.dir/specs.cpp.o.d"
  "CMakeFiles/hswsim_machine.dir/system.cpp.o"
  "CMakeFiles/hswsim_machine.dir/system.cpp.o.d"
  "libhswsim_machine.a"
  "libhswsim_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hswsim_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
