# Empty dependencies file for hswsim_machine.
# This may be replaced when dependencies are built.
