file(REMOVE_RECURSE
  "libhswsim_machine.a"
)
