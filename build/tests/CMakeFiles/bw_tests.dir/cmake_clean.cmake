file(REMOVE_RECURSE
  "CMakeFiles/bw_tests.dir/bw/model_test.cpp.o"
  "CMakeFiles/bw_tests.dir/bw/model_test.cpp.o.d"
  "CMakeFiles/bw_tests.dir/bw/queueing_test.cpp.o"
  "CMakeFiles/bw_tests.dir/bw/queueing_test.cpp.o.d"
  "CMakeFiles/bw_tests.dir/bw/solver_test.cpp.o"
  "CMakeFiles/bw_tests.dir/bw/solver_test.cpp.o.d"
  "bw_tests"
  "bw_tests.pdb"
  "bw_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
