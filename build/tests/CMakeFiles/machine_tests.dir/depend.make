# Empty dependencies file for machine_tests.
# This may be replaced when dependencies are built.
