file(REMOVE_RECURSE
  "CMakeFiles/mem_tests.dir/mem/address_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/address_test.cpp.o.d"
  "CMakeFiles/mem_tests.dir/mem/cache_array_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/cache_array_test.cpp.o.d"
  "CMakeFiles/mem_tests.dir/mem/dram_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/dram_test.cpp.o.d"
  "mem_tests"
  "mem_tests.pdb"
  "mem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
