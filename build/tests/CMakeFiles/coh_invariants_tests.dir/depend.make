# Empty dependencies file for coh_invariants_tests.
# This may be replaced when dependencies are built.
