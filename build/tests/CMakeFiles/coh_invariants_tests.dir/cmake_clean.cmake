file(REMOVE_RECURSE
  "CMakeFiles/coh_invariants_tests.dir/coh/invariants_test.cpp.o"
  "CMakeFiles/coh_invariants_tests.dir/coh/invariants_test.cpp.o.d"
  "coh_invariants_tests"
  "coh_invariants_tests.pdb"
  "coh_invariants_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coh_invariants_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
