
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/util_tests.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/util_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/util_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/util_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/units_test.cpp" "tests/CMakeFiles/util_tests.dir/util/units_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hswsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hswsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bw/CMakeFiles/hswsim_bw.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/hswsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/coh/CMakeFiles/hswsim_coh.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hswsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/hswsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hswsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hswsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
