file(REMOVE_RECURSE
  "CMakeFiles/coh_tests.dir/coh/directory_test.cpp.o"
  "CMakeFiles/coh_tests.dir/coh/directory_test.cpp.o.d"
  "CMakeFiles/coh_tests.dir/coh/engine_test.cpp.o"
  "CMakeFiles/coh_tests.dir/coh/engine_test.cpp.o.d"
  "CMakeFiles/coh_tests.dir/coh/hitme_test.cpp.o"
  "CMakeFiles/coh_tests.dir/coh/hitme_test.cpp.o.d"
  "CMakeFiles/coh_tests.dir/coh/modes_test.cpp.o"
  "CMakeFiles/coh_tests.dir/coh/modes_test.cpp.o.d"
  "coh_tests"
  "coh_tests.pdb"
  "coh_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coh_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
