# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/topo_tests[1]_include.cmake")
include("/root/repo/build/tests/mem_tests[1]_include.cmake")
include("/root/repo/build/tests/coh_tests[1]_include.cmake")
include("/root/repo/build/tests/coh_invariants_tests[1]_include.cmake")
include("/root/repo/build/tests/machine_tests[1]_include.cmake")
include("/root/repo/build/tests/bw_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;68;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_false_sharing "/root/repo/build/examples/false_sharing_cost" "--iterations" "50")
set_tests_properties(example_false_sharing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;69;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_numa_tuning "/root/repo/build/examples/numa_tuning" "--locality" "0.5" "--sharing" "0.05")
set_tests_properties(example_numa_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;70;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_explorer_cod "/root/repo/build/examples/coherence_explorer" "--mode" "cod" "--level" "l3")
set_tests_properties(example_explorer_cod PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;71;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_cli_topo "/root/repo/build/examples/hswsim_cli" "topo" "--mode" "cod")
set_tests_properties(example_cli_topo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;72;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_cli_latency "/root/repo/build/examples/hswsim_cli" "latency" "--mode" "home" "--owner" "12" "--state" "E" "--level" "l3" "--size" "128KiB")
set_tests_properties(example_cli_latency PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_cli_bandwidth "/root/repo/build/examples/hswsim_cli" "bandwidth" "--mode" "source" "--cores" "4" "--size" "1MiB")
set_tests_properties(example_cli_bandwidth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_cli_trace "/root/repo/build/examples/hswsim_cli" "trace" "--pattern" "producer-consumer" "--accesses" "4000")
set_tests_properties(example_cli_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;75;add_test;/root/repo/tests/CMakeLists.txt;0;")
