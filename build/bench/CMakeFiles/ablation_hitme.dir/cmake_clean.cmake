file(REMOVE_RECURSE
  "CMakeFiles/ablation_hitme.dir/ablation_hitme.cpp.o"
  "CMakeFiles/ablation_hitme.dir/ablation_hitme.cpp.o.d"
  "ablation_hitme"
  "ablation_hitme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hitme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
