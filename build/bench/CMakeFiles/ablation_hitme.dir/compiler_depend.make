# Empty compiler generated dependencies file for ablation_hitme.
# This may be replaced when dependencies are built.
