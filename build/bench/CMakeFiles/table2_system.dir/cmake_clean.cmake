file(REMOVE_RECURSE
  "CMakeFiles/table2_system.dir/table2_system.cpp.o"
  "CMakeFiles/table2_system.dir/table2_system.cpp.o.d"
  "table2_system"
  "table2_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
