file(REMOVE_RECURSE
  "CMakeFiles/fig5_latency_homesnoop.dir/fig5_latency_homesnoop.cpp.o"
  "CMakeFiles/fig5_latency_homesnoop.dir/fig5_latency_homesnoop.cpp.o.d"
  "fig5_latency_homesnoop"
  "fig5_latency_homesnoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_latency_homesnoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
