# Empty dependencies file for fig5_latency_homesnoop.
# This may be replaced when dependencies are built.
