file(REMOVE_RECURSE
  "CMakeFiles/fig9_bandwidth_shared.dir/fig9_bandwidth_shared.cpp.o"
  "CMakeFiles/fig9_bandwidth_shared.dir/fig9_bandwidth_shared.cpp.o.d"
  "fig9_bandwidth_shared"
  "fig9_bandwidth_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_bandwidth_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
