# Empty dependencies file for fig9_bandwidth_shared.
# This may be replaced when dependencies are built.
