# Empty dependencies file for variability.
# This may be replaced when dependencies are built.
