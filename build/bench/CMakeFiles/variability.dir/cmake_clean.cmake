file(REMOVE_RECURSE
  "CMakeFiles/variability.dir/variability.cpp.o"
  "CMakeFiles/variability.dir/variability.cpp.o.d"
  "variability"
  "variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
