# Empty dependencies file for validate_bw_model.
# This may be replaced when dependencies are built.
