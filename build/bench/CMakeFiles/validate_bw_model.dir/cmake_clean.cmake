file(REMOVE_RECURSE
  "CMakeFiles/validate_bw_model.dir/validate_bw_model.cpp.o"
  "CMakeFiles/validate_bw_model.dir/validate_bw_model.cpp.o.d"
  "validate_bw_model"
  "validate_bw_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_bw_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
