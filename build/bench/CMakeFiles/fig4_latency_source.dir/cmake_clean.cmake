file(REMOVE_RECURSE
  "CMakeFiles/fig4_latency_source.dir/fig4_latency_source.cpp.o"
  "CMakeFiles/fig4_latency_source.dir/fig4_latency_source.cpp.o.d"
  "fig4_latency_source"
  "fig4_latency_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_latency_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
