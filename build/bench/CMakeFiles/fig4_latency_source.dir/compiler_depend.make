# Empty compiler generated dependencies file for fig4_latency_source.
# This may be replaced when dependencies are built.
