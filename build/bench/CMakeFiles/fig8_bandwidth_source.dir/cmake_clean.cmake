file(REMOVE_RECURSE
  "CMakeFiles/fig8_bandwidth_source.dir/fig8_bandwidth_source.cpp.o"
  "CMakeFiles/fig8_bandwidth_source.dir/fig8_bandwidth_source.cpp.o.d"
  "fig8_bandwidth_source"
  "fig8_bandwidth_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bandwidth_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
