# Empty dependencies file for fig8_bandwidth_source.
# This may be replaced when dependencies are built.
