# Empty dependencies file for l3_scaling.
# This may be replaced when dependencies are built.
