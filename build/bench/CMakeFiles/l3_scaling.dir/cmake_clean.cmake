file(REMOVE_RECURSE
  "CMakeFiles/l3_scaling.dir/l3_scaling.cpp.o"
  "CMakeFiles/l3_scaling.dir/l3_scaling.cpp.o.d"
  "l3_scaling"
  "l3_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l3_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
