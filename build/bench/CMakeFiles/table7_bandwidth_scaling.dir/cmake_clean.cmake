file(REMOVE_RECURSE
  "CMakeFiles/table7_bandwidth_scaling.dir/table7_bandwidth_scaling.cpp.o"
  "CMakeFiles/table7_bandwidth_scaling.dir/table7_bandwidth_scaling.cpp.o.d"
  "table7_bandwidth_scaling"
  "table7_bandwidth_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_bandwidth_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
