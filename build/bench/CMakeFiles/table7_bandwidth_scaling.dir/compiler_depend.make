# Empty compiler generated dependencies file for table7_bandwidth_scaling.
# This may be replaced when dependencies are built.
