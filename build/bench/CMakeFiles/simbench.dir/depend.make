# Empty dependencies file for simbench.
# This may be replaced when dependencies are built.
