file(REMOVE_RECURSE
  "CMakeFiles/simbench.dir/simbench.cpp.o"
  "CMakeFiles/simbench.dir/simbench.cpp.o.d"
  "simbench"
  "simbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
