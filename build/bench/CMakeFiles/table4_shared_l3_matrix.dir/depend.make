# Empty dependencies file for table4_shared_l3_matrix.
# This may be replaced when dependencies are built.
