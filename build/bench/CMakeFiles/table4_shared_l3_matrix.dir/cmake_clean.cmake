file(REMOVE_RECURSE
  "CMakeFiles/table4_shared_l3_matrix.dir/table4_shared_l3_matrix.cpp.o"
  "CMakeFiles/table4_shared_l3_matrix.dir/table4_shared_l3_matrix.cpp.o.d"
  "table4_shared_l3_matrix"
  "table4_shared_l3_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_shared_l3_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
