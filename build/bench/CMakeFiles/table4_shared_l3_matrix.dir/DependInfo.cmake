
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_shared_l3_matrix.cpp" "bench/CMakeFiles/table4_shared_l3_matrix.dir/table4_shared_l3_matrix.cpp.o" "gcc" "bench/CMakeFiles/table4_shared_l3_matrix.dir/table4_shared_l3_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hswsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hswsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bw/CMakeFiles/hswsim_bw.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/hswsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/coh/CMakeFiles/hswsim_coh.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hswsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/hswsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hswsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hswsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
