file(REMOVE_RECURSE
  "CMakeFiles/ablation_corevalid.dir/ablation_corevalid.cpp.o"
  "CMakeFiles/ablation_corevalid.dir/ablation_corevalid.cpp.o.d"
  "ablation_corevalid"
  "ablation_corevalid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_corevalid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
