# Empty compiler generated dependencies file for ablation_corevalid.
# This may be replaced when dependencies are built.
