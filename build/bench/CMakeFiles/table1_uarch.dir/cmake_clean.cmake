file(REMOVE_RECURSE
  "CMakeFiles/table1_uarch.dir/table1_uarch.cpp.o"
  "CMakeFiles/table1_uarch.dir/table1_uarch.cpp.o.d"
  "table1_uarch"
  "table1_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
