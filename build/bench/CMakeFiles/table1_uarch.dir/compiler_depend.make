# Empty compiler generated dependencies file for table1_uarch.
# This may be replaced when dependencies are built.
