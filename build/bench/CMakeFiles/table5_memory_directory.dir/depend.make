# Empty dependencies file for table5_memory_directory.
# This may be replaced when dependencies are built.
