file(REMOVE_RECURSE
  "CMakeFiles/table5_memory_directory.dir/table5_memory_directory.cpp.o"
  "CMakeFiles/table5_memory_directory.dir/table5_memory_directory.cpp.o.d"
  "table5_memory_directory"
  "table5_memory_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_memory_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
