file(REMOVE_RECURSE
  "CMakeFiles/fig6_latency_cod.dir/fig6_latency_cod.cpp.o"
  "CMakeFiles/fig6_latency_cod.dir/fig6_latency_cod.cpp.o.d"
  "fig6_latency_cod"
  "fig6_latency_cod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_latency_cod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
