# Empty compiler generated dependencies file for fig6_latency_cod.
# This may be replaced when dependencies are built.
