# Empty compiler generated dependencies file for table6_bandwidth_summary.
# This may be replaced when dependencies are built.
