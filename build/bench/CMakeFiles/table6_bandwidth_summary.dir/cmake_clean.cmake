file(REMOVE_RECURSE
  "CMakeFiles/table6_bandwidth_summary.dir/table6_bandwidth_summary.cpp.o"
  "CMakeFiles/table6_bandwidth_summary.dir/table6_bandwidth_summary.cpp.o.d"
  "table6_bandwidth_summary"
  "table6_bandwidth_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_bandwidth_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
