file(REMOVE_RECURSE
  "CMakeFiles/fig7_latency_shared.dir/fig7_latency_shared.cpp.o"
  "CMakeFiles/fig7_latency_shared.dir/fig7_latency_shared.cpp.o.d"
  "fig7_latency_shared"
  "fig7_latency_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_latency_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
