# Empty compiler generated dependencies file for fig7_latency_shared.
# This may be replaced when dependencies are built.
