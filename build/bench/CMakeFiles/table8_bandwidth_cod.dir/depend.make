# Empty dependencies file for table8_bandwidth_cod.
# This may be replaced when dependencies are built.
