file(REMOVE_RECURSE
  "CMakeFiles/table8_bandwidth_cod.dir/table8_bandwidth_cod.cpp.o"
  "CMakeFiles/table8_bandwidth_cod.dir/table8_bandwidth_cod.cpp.o.d"
  "table8_bandwidth_cod"
  "table8_bandwidth_cod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_bandwidth_cod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
