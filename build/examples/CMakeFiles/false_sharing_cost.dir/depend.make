# Empty dependencies file for false_sharing_cost.
# This may be replaced when dependencies are built.
