file(REMOVE_RECURSE
  "CMakeFiles/false_sharing_cost.dir/false_sharing_cost.cpp.o"
  "CMakeFiles/false_sharing_cost.dir/false_sharing_cost.cpp.o.d"
  "false_sharing_cost"
  "false_sharing_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_sharing_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
