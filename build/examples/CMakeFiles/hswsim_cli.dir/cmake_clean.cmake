file(REMOVE_RECURSE
  "CMakeFiles/hswsim_cli.dir/hswsim_cli.cpp.o"
  "CMakeFiles/hswsim_cli.dir/hswsim_cli.cpp.o.d"
  "hswsim_cli"
  "hswsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hswsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
