# Empty dependencies file for hswsim_cli.
# This may be replaced when dependencies are built.
