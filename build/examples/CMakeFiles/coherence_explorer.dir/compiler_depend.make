# Empty compiler generated dependencies file for coherence_explorer.
# This may be replaced when dependencies are built.
